# Empty compiler generated dependencies file for rma_counter.
# This may be replaced when dependencies are built.
