file(REMOVE_RECURSE
  "CMakeFiles/rma_counter.dir/rma_counter.cpp.o"
  "CMakeFiles/rma_counter.dir/rma_counter.cpp.o.d"
  "rma_counter"
  "rma_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
