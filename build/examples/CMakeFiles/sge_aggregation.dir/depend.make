# Empty dependencies file for sge_aggregation.
# This may be replaced when dependencies are built.
