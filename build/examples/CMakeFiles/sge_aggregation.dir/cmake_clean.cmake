file(REMOVE_RECURSE
  "CMakeFiles/sge_aggregation.dir/sge_aggregation.cpp.o"
  "CMakeFiles/sge_aggregation.dir/sge_aggregation.cpp.o.d"
  "sge_aggregation"
  "sge_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sge_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
