file(REMOVE_RECURSE
  "CMakeFiles/allocator_stats.dir/allocator_stats.cpp.o"
  "CMakeFiles/allocator_stats.dir/allocator_stats.cpp.o.d"
  "allocator_stats"
  "allocator_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocator_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
