# Empty dependencies file for allocator_stats.
# This may be replaced when dependencies are built.
