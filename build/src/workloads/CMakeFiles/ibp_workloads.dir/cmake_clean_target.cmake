file(REMOVE_RECURSE
  "libibp_workloads.a"
)
