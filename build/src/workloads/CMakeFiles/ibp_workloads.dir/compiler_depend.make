# Empty compiler generated dependencies file for ibp_workloads.
# This may be replaced when dependencies are built.
