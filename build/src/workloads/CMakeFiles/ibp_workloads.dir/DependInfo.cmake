
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/alloc_trace.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/alloc_trace.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/alloc_trace.cpp.o.d"
  "/root/repo/src/workloads/imb.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/imb.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/imb.cpp.o.d"
  "/root/repo/src/workloads/nas_cg.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_cg.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_cg.cpp.o.d"
  "/root/repo/src/workloads/nas_common.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_common.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_common.cpp.o.d"
  "/root/repo/src/workloads/nas_ep.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_ep.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_ep.cpp.o.d"
  "/root/repo/src/workloads/nas_ft.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_ft.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_ft.cpp.o.d"
  "/root/repo/src/workloads/nas_is.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_is.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_is.cpp.o.d"
  "/root/repo/src/workloads/nas_lu.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_lu.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_lu.cpp.o.d"
  "/root/repo/src/workloads/nas_mg.cpp" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_mg.cpp.o" "gcc" "src/workloads/CMakeFiles/ibp_workloads.dir/nas_mg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ibp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ibp_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/hugepage/CMakeFiles/ibp_hugepage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/ibp_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ibp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hca/CMakeFiles/ibp_hca.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ibp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
