file(REMOVE_RECURSE
  "CMakeFiles/ibp_workloads.dir/alloc_trace.cpp.o"
  "CMakeFiles/ibp_workloads.dir/alloc_trace.cpp.o.d"
  "CMakeFiles/ibp_workloads.dir/imb.cpp.o"
  "CMakeFiles/ibp_workloads.dir/imb.cpp.o.d"
  "CMakeFiles/ibp_workloads.dir/nas_cg.cpp.o"
  "CMakeFiles/ibp_workloads.dir/nas_cg.cpp.o.d"
  "CMakeFiles/ibp_workloads.dir/nas_common.cpp.o"
  "CMakeFiles/ibp_workloads.dir/nas_common.cpp.o.d"
  "CMakeFiles/ibp_workloads.dir/nas_ep.cpp.o"
  "CMakeFiles/ibp_workloads.dir/nas_ep.cpp.o.d"
  "CMakeFiles/ibp_workloads.dir/nas_ft.cpp.o"
  "CMakeFiles/ibp_workloads.dir/nas_ft.cpp.o.d"
  "CMakeFiles/ibp_workloads.dir/nas_is.cpp.o"
  "CMakeFiles/ibp_workloads.dir/nas_is.cpp.o.d"
  "CMakeFiles/ibp_workloads.dir/nas_lu.cpp.o"
  "CMakeFiles/ibp_workloads.dir/nas_lu.cpp.o.d"
  "CMakeFiles/ibp_workloads.dir/nas_mg.cpp.o"
  "CMakeFiles/ibp_workloads.dir/nas_mg.cpp.o.d"
  "libibp_workloads.a"
  "libibp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
