file(REMOVE_RECURSE
  "CMakeFiles/ibp_sim.dir/engine.cpp.o"
  "CMakeFiles/ibp_sim.dir/engine.cpp.o.d"
  "libibp_sim.a"
  "libibp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
