file(REMOVE_RECURSE
  "libibp_sim.a"
)
