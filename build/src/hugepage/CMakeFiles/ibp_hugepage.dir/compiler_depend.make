# Empty compiler generated dependencies file for ibp_hugepage.
# This may be replaced when dependencies are built.
