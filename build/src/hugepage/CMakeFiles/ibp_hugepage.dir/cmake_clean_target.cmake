file(REMOVE_RECURSE
  "libibp_hugepage.a"
)
