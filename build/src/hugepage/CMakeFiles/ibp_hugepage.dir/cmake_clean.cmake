file(REMOVE_RECURSE
  "CMakeFiles/ibp_hugepage.dir/heap.cpp.o"
  "CMakeFiles/ibp_hugepage.dir/heap.cpp.o.d"
  "CMakeFiles/ibp_hugepage.dir/libc_heap.cpp.o"
  "CMakeFiles/ibp_hugepage.dir/libc_heap.cpp.o.d"
  "libibp_hugepage.a"
  "libibp_hugepage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_hugepage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
