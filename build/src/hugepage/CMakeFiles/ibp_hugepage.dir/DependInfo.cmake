
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hugepage/heap.cpp" "src/hugepage/CMakeFiles/ibp_hugepage.dir/heap.cpp.o" "gcc" "src/hugepage/CMakeFiles/ibp_hugepage.dir/heap.cpp.o.d"
  "/root/repo/src/hugepage/libc_heap.cpp" "src/hugepage/CMakeFiles/ibp_hugepage.dir/libc_heap.cpp.o" "gcc" "src/hugepage/CMakeFiles/ibp_hugepage.dir/libc_heap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/ibp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
