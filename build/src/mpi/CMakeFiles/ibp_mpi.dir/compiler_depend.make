# Empty compiler generated dependencies file for ibp_mpi.
# This may be replaced when dependencies are built.
