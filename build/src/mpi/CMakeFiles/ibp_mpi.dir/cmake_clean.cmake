file(REMOVE_RECURSE
  "CMakeFiles/ibp_mpi.dir/comm.cpp.o"
  "CMakeFiles/ibp_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/ibp_mpi.dir/window.cpp.o"
  "CMakeFiles/ibp_mpi.dir/window.cpp.o.d"
  "libibp_mpi.a"
  "libibp_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
