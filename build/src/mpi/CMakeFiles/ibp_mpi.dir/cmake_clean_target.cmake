file(REMOVE_RECURSE
  "libibp_mpi.a"
)
