file(REMOVE_RECURSE
  "libibp_mem.a"
)
