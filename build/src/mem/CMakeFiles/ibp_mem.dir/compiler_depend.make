# Empty compiler generated dependencies file for ibp_mem.
# This may be replaced when dependencies are built.
