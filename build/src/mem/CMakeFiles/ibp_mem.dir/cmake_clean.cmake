file(REMOVE_RECURSE
  "CMakeFiles/ibp_mem.dir/address_space.cpp.o"
  "CMakeFiles/ibp_mem.dir/address_space.cpp.o.d"
  "CMakeFiles/ibp_mem.dir/physical.cpp.o"
  "CMakeFiles/ibp_mem.dir/physical.cpp.o.d"
  "libibp_mem.a"
  "libibp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
