file(REMOVE_RECURSE
  "CMakeFiles/ibp_core.dir/cluster.cpp.o"
  "CMakeFiles/ibp_core.dir/cluster.cpp.o.d"
  "libibp_core.a"
  "libibp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
