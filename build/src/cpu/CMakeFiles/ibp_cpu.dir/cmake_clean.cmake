file(REMOVE_RECURSE
  "CMakeFiles/ibp_cpu.dir/memory_system.cpp.o"
  "CMakeFiles/ibp_cpu.dir/memory_system.cpp.o.d"
  "libibp_cpu.a"
  "libibp_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
