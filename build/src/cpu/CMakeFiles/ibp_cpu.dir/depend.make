# Empty dependencies file for ibp_cpu.
# This may be replaced when dependencies are built.
