file(REMOVE_RECURSE
  "libibp_cpu.a"
)
