# Empty dependencies file for ibp_hca.
# This may be replaced when dependencies are built.
