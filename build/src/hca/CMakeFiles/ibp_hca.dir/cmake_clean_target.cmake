file(REMOVE_RECURSE
  "libibp_hca.a"
)
