file(REMOVE_RECURSE
  "CMakeFiles/ibp_hca.dir/adapter.cpp.o"
  "CMakeFiles/ibp_hca.dir/adapter.cpp.o.d"
  "libibp_hca.a"
  "libibp_hca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_hca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
