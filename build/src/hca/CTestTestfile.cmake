# CMake generated Testfile for 
# Source directory: /root/repo/src/hca
# Build directory: /root/repo/build/src/hca
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
