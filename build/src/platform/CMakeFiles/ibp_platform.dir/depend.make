# Empty dependencies file for ibp_platform.
# This may be replaced when dependencies are built.
