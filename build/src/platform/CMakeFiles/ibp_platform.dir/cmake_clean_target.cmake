file(REMOVE_RECURSE
  "libibp_platform.a"
)
