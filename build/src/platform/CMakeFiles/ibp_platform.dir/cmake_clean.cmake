file(REMOVE_RECURSE
  "CMakeFiles/ibp_platform.dir/platform.cpp.o"
  "CMakeFiles/ibp_platform.dir/platform.cpp.o.d"
  "libibp_platform.a"
  "libibp_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibp_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
