# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/nas_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/hca_test[1]_include.cmake")
include("/root/repo/build/tests/hugepage_test[1]_include.cmake")
include("/root/repo/build/tests/verbs_test[1]_include.cmake")
include("/root/repo/build/tests/regcache_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/paper_properties_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_protocol_test[1]_include.cmake")
include("/root/repo/build/tests/registration_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/engine_stress_test[1]_include.cmake")
include("/root/repo/build/tests/rdma_read_test[1]_include.cmake")
include("/root/repo/build/tests/datatype_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/tracer_test[1]_include.cmake")
include("/root/repo/build/tests/window_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/ud_test[1]_include.cmake")
