# Empty dependencies file for registration_sweep_test.
# This may be replaced when dependencies are built.
