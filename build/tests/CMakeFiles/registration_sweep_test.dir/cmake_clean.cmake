file(REMOVE_RECURSE
  "CMakeFiles/registration_sweep_test.dir/registration_sweep_test.cpp.o"
  "CMakeFiles/registration_sweep_test.dir/registration_sweep_test.cpp.o.d"
  "registration_sweep_test"
  "registration_sweep_test.pdb"
  "registration_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/registration_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
