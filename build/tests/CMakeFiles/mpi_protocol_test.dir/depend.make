# Empty dependencies file for mpi_protocol_test.
# This may be replaced when dependencies are built.
