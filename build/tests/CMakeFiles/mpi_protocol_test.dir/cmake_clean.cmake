file(REMOVE_RECURSE
  "CMakeFiles/mpi_protocol_test.dir/mpi_protocol_test.cpp.o"
  "CMakeFiles/mpi_protocol_test.dir/mpi_protocol_test.cpp.o.d"
  "mpi_protocol_test"
  "mpi_protocol_test.pdb"
  "mpi_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
