file(REMOVE_RECURSE
  "CMakeFiles/rdma_read_test.dir/rdma_read_test.cpp.o"
  "CMakeFiles/rdma_read_test.dir/rdma_read_test.cpp.o.d"
  "rdma_read_test"
  "rdma_read_test.pdb"
  "rdma_read_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_read_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
