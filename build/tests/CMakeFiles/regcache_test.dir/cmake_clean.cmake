file(REMOVE_RECURSE
  "CMakeFiles/regcache_test.dir/regcache_test.cpp.o"
  "CMakeFiles/regcache_test.dir/regcache_test.cpp.o.d"
  "regcache_test"
  "regcache_test.pdb"
  "regcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
