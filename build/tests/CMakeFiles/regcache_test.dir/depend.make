# Empty dependencies file for regcache_test.
# This may be replaced when dependencies are built.
