# Empty dependencies file for hca_test.
# This may be replaced when dependencies are built.
