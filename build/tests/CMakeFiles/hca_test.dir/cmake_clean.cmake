file(REMOVE_RECURSE
  "CMakeFiles/hca_test.dir/hca_test.cpp.o"
  "CMakeFiles/hca_test.dir/hca_test.cpp.o.d"
  "hca_test"
  "hca_test.pdb"
  "hca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
