file(REMOVE_RECURSE
  "CMakeFiles/hugepage_test.dir/hugepage_test.cpp.o"
  "CMakeFiles/hugepage_test.dir/hugepage_test.cpp.o.d"
  "hugepage_test"
  "hugepage_test.pdb"
  "hugepage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hugepage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
