file(REMOVE_RECURSE
  "CMakeFiles/mpi_fuzz_test.dir/mpi_fuzz_test.cpp.o"
  "CMakeFiles/mpi_fuzz_test.dir/mpi_fuzz_test.cpp.o.d"
  "mpi_fuzz_test"
  "mpi_fuzz_test.pdb"
  "mpi_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
