file(REMOVE_RECURSE
  "CMakeFiles/ud_test.dir/ud_test.cpp.o"
  "CMakeFiles/ud_test.dir/ud_test.cpp.o.d"
  "ud_test"
  "ud_test.pdb"
  "ud_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ud_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
