# Empty compiler generated dependencies file for ud_test.
# This may be replaced when dependencies are built.
