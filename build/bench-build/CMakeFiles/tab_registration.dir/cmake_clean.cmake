file(REMOVE_RECURSE
  "../bench/tab_registration"
  "../bench/tab_registration.pdb"
  "CMakeFiles/tab_registration.dir/tab_registration.cpp.o"
  "CMakeFiles/tab_registration.dir/tab_registration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
