# Empty dependencies file for tab_registration.
# This may be replaced when dependencies are built.
