file(REMOVE_RECURSE
  "../bench/ext_ud_eager"
  "../bench/ext_ud_eager.pdb"
  "CMakeFiles/ext_ud_eager.dir/ext_ud_eager.cpp.o"
  "CMakeFiles/ext_ud_eager.dir/ext_ud_eager.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ud_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
