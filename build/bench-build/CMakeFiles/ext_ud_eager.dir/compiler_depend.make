# Empty compiler generated dependencies file for ext_ud_eager.
# This may be replaced when dependencies are built.
