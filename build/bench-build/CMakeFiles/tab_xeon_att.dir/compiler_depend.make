# Empty compiler generated dependencies file for tab_xeon_att.
# This may be replaced when dependencies are built.
