
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_xeon_att.cpp" "bench-build/CMakeFiles/tab_xeon_att.dir/tab_xeon_att.cpp.o" "gcc" "bench-build/CMakeFiles/tab_xeon_att.dir/tab_xeon_att.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ibp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ibp_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ibp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/hugepage/CMakeFiles/ibp_hugepage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ibp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/ibp_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/ibp_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/hca/CMakeFiles/ibp_hca.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ibp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
