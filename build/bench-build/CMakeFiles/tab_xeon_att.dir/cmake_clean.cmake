file(REMOVE_RECURSE
  "../bench/tab_xeon_att"
  "../bench/tab_xeon_att.pdb"
  "CMakeFiles/tab_xeon_att.dir/tab_xeon_att.cpp.o"
  "CMakeFiles/tab_xeon_att.dir/tab_xeon_att.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_xeon_att.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
