file(REMOVE_RECURSE
  "../bench/fig4_offset_latency"
  "../bench/fig4_offset_latency.pdb"
  "CMakeFiles/fig4_offset_latency.dir/fig4_offset_latency.cpp.o"
  "CMakeFiles/fig4_offset_latency.dir/fig4_offset_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_offset_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
