# Empty compiler generated dependencies file for abl_rndv_protocol.
# This may be replaced when dependencies are built.
