file(REMOVE_RECURSE
  "../bench/abl_rndv_protocol"
  "../bench/abl_rndv_protocol.pdb"
  "CMakeFiles/abl_rndv_protocol.dir/abl_rndv_protocol.cpp.o"
  "CMakeFiles/abl_rndv_protocol.dir/abl_rndv_protocol.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_rndv_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
