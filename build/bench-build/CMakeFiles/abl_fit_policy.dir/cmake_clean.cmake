file(REMOVE_RECURSE
  "../bench/abl_fit_policy"
  "../bench/abl_fit_policy.pdb"
  "CMakeFiles/abl_fit_policy.dir/abl_fit_policy.cpp.o"
  "CMakeFiles/abl_fit_policy.dir/abl_fit_policy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fit_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
