# Empty compiler generated dependencies file for abl_fit_policy.
# This may be replaced when dependencies are built.
