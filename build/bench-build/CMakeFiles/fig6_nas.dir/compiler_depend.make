# Empty compiler generated dependencies file for fig6_nas.
# This may be replaced when dependencies are built.
