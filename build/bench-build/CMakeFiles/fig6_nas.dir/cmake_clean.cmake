file(REMOVE_RECURSE
  "../bench/fig6_nas"
  "../bench/fig6_nas.pdb"
  "CMakeFiles/fig6_nas.dir/fig6_nas.cpp.o"
  "CMakeFiles/fig6_nas.dir/fig6_nas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
