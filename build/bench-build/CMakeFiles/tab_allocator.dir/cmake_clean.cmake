file(REMOVE_RECURSE
  "../bench/tab_allocator"
  "../bench/tab_allocator.pdb"
  "CMakeFiles/tab_allocator.dir/tab_allocator.cpp.o"
  "CMakeFiles/tab_allocator.dir/tab_allocator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_allocator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
