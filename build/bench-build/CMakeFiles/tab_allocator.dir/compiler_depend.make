# Empty compiler generated dependencies file for tab_allocator.
# This may be replaced when dependencies are built.
