# Empty dependencies file for tab_post_overhead.
# This may be replaced when dependencies are built.
