file(REMOVE_RECURSE
  "../bench/tab_post_overhead"
  "../bench/tab_post_overhead.pdb"
  "CMakeFiles/tab_post_overhead.dir/tab_post_overhead.cpp.o"
  "CMakeFiles/tab_post_overhead.dir/tab_post_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_post_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
