# Empty compiler generated dependencies file for fig5_imb_sendrecv.
# This may be replaced when dependencies are built.
