file(REMOVE_RECURSE
  "../bench/fig5_imb_sendrecv"
  "../bench/fig5_imb_sendrecv.pdb"
  "CMakeFiles/fig5_imb_sendrecv.dir/fig5_imb_sendrecv.cpp.o"
  "CMakeFiles/fig5_imb_sendrecv.dir/fig5_imb_sendrecv.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_imb_sendrecv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
