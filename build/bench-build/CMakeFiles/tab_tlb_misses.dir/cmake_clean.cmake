file(REMOVE_RECURSE
  "../bench/tab_tlb_misses"
  "../bench/tab_tlb_misses.pdb"
  "CMakeFiles/tab_tlb_misses.dir/tab_tlb_misses.cpp.o"
  "CMakeFiles/tab_tlb_misses.dir/tab_tlb_misses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_tlb_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
