# Empty compiler generated dependencies file for tab_tlb_misses.
# This may be replaced when dependencies are built.
