# Empty dependencies file for ext_ft_nas.
# This may be replaced when dependencies are built.
