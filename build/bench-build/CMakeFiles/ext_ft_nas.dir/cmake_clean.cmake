file(REMOVE_RECURSE
  "../bench/ext_ft_nas"
  "../bench/ext_ft_nas.pdb"
  "CMakeFiles/ext_ft_nas.dir/ext_ft_nas.cpp.o"
  "CMakeFiles/ext_ft_nas.dir/ext_ft_nas.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ft_nas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
