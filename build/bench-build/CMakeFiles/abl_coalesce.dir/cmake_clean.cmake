file(REMOVE_RECURSE
  "../bench/abl_coalesce"
  "../bench/abl_coalesce.pdb"
  "CMakeFiles/abl_coalesce.dir/abl_coalesce.cpp.o"
  "CMakeFiles/abl_coalesce.dir/abl_coalesce.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
