# Empty compiler generated dependencies file for abl_coalesce.
# This may be replaced when dependencies are built.
