# Empty compiler generated dependencies file for abl_sge_mpi.
# This may be replaced when dependencies are built.
