file(REMOVE_RECURSE
  "../bench/abl_sge_mpi"
  "../bench/abl_sge_mpi.pdb"
  "CMakeFiles/abl_sge_mpi.dir/abl_sge_mpi.cpp.o"
  "CMakeFiles/abl_sge_mpi.dir/abl_sge_mpi.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sge_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
