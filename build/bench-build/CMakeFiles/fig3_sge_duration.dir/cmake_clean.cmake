file(REMOVE_RECURSE
  "../bench/fig3_sge_duration"
  "../bench/fig3_sge_duration.pdb"
  "CMakeFiles/fig3_sge_duration.dir/fig3_sge_duration.cpp.o"
  "CMakeFiles/fig3_sge_duration.dir/fig3_sge_duration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_sge_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
