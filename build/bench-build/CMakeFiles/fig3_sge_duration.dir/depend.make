# Empty dependencies file for fig3_sge_duration.
# This may be replaced when dependencies are built.
