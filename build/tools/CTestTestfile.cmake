# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_info "/root/repo/build/tools/ibplace" "info" "--platform=systemp")
set_tests_properties(cli_info PROPERTIES  PASS_REGULAR_EXPRESSION "platform systemp" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/ibplace")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_nas "/root/repo/build/tools/ibplace" "nas" "ep" "--nodes=2" "--rpn=2")
set_tests_properties(cli_nas PROPERTIES  PASS_REGULAR_EXPRESSION "improvement: comm" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_imb "/root/repo/build/tools/ibplace" "imb" "pingpong" "--nodes=2" "--rpn=1" "--iters=3")
set_tests_properties(cli_imb PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reg "/root/repo/build/tools/ibplace" "reg" "--platform=xeon")
set_tests_properties(cli_reg PROPERTIES  PASS_REGULAR_EXPRESSION "ratio" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
