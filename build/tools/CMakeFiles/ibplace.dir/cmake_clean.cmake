file(REMOVE_RECURSE
  "CMakeFiles/ibplace.dir/ibplace.cpp.o"
  "CMakeFiles/ibplace.dir/ibplace.cpp.o.d"
  "ibplace"
  "ibplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
