# Empty dependencies file for ibplace.
# This may be replaced when dependencies are built.
