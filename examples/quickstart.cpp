// Quickstart: bring up a two-node simulated InfiniBand cluster, allocate
// a message buffer through the paper's hugepage library, register it, and
// move data with a verbs-level RC send — printing where the time went.
//
//   $ ./examples/quickstart
//
// Everything here is simulated virtual time: deterministic across runs.

#include <cstdio>

#include "ibp/core/cluster.hpp"
#include "ibp/platform/platform.hpp"

using namespace ibp;

int main() {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = true;  // "LD_PRELOAD" the transparent allocator

  core::Cluster cluster(cfg);
  constexpr std::uint64_t kBytes = 4 * kMiB;

  cluster.run([&](core::RankEnv& env) {
    // 1. Allocate. Requests >= 32 KB land in hugepages transparently.
    const VirtAddr buf = env.alloc(kBytes);
    std::printf("[rank %d] buffer at 0x%llx — %s\n", env.rank(),
                static_cast<unsigned long long>(buf),
                env.lib().in_hugepages(buf) ? "hugepage-backed"
                                            : "small pages");

    // 2. Register with the HCA (this is the cost hugepages crush).
    const TimePs t0 = env.now();
    const verbs::Mr mr = env.verbs().reg_mr(buf, kBytes);
    std::printf("[rank %d] registered 4 MB in %.1f us\n", env.rank(),
                ps_to_us(env.now() - t0));

    // 3. Move data over the RC queue pair wired by the cluster.
    auto qp = env.verbs().wrap_qp(*env.state().qp_to[1 - env.rank()]);
    if (env.rank() == 0) {
      auto bytes = env.space().host_span(buf, kBytes);
      for (std::uint64_t i = 0; i < kBytes; ++i)
        bytes[i] = static_cast<std::uint8_t>(i * 131);
      hca::SendWr wr;
      wr.opcode = hca::Opcode::Send;
      wr.sges = {{buf, static_cast<std::uint32_t>(kBytes), mr.lkey}};
      const TimePs s0 = env.now();
      env.verbs().post_send(qp, wr);
      env.verbs().wait_send();
      std::printf("[rank 0] sent 4 MB in %.1f us (%.0f MB/s)\n",
                  ps_to_us(env.now() - s0),
                  kBytes / (ps_to_us(env.now() - s0)));
    } else {
      hca::RecvWr wr;
      wr.sges = {{buf, static_cast<std::uint32_t>(kBytes), mr.lkey}};
      env.verbs().post_recv(qp, wr);
      const hca::Cqe cqe = env.verbs().wait_recv();
      auto bytes = env.space().host_span(buf, kBytes);
      bool ok = cqe.byte_len == kBytes;
      for (std::uint64_t i = 0; i < kBytes && ok; i += 4099)
        ok = bytes[i] == static_cast<std::uint8_t>(i * 131);
      std::printf("[rank 1] received %u bytes at t=%.1f us — %s\n",
                  cqe.byte_len, ps_to_us(env.now()),
                  ok ? "payload verified" : "PAYLOAD CORRUPT");
    }
  });

  std::printf("run complete; makespan %.1f us\n",
              ps_to_us(cluster.makespan()));
  return 0;
}
