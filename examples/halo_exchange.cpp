// Halo exchange: the workload the paper's intro motivates — an iterative
// stencil application whose per-iteration boundary exchanges ride on the
// MPI layer. Runs the same 2D decomposition twice, with buffers placed by
// libc (small pages) and by the transparent hugepage library, and reports
// the communication/computation split both ways.
//
//   $ ./examples/halo_exchange

#include <cstdio>
#include <vector>

#include "ibp/mpi/comm.hpp"
#include "ibp/platform/platform.hpp"

using namespace ibp;

namespace {

struct Split {
  TimePs total = 0;
  TimePs comm = 0;
};

Split run_stencil(bool hugepages) {
  core::ClusterConfig cfg;
  cfg.platform = platform::systemp_gx_ehca();
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.hugepage_library = hugepages;
  core::Cluster cluster(cfg);

  constexpr std::uint64_t kNx = 512, kNy = 512;  // local tile
  constexpr int kIters = 30;
  Split out;

  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env);
    const int n = env.nranks();
    const int up = (env.rank() + 1) % n;
    const int dn = (env.rank() - 1 + n) % n;

    const VirtAddr grid = env.alloc(kNx * kNy * 8);
    const VirtAddr next = env.alloc(kNx * kNy * 8);
    const VirtAddr halo_tx = env.alloc(kNx * 8);
    const VirtAddr halo_rx = env.alloc(kNx * 8);

    double* g = env.host_ptr<double>(grid, kNx * kNy);
    double* t = env.host_ptr<double>(next, kNx * kNy);
    for (std::uint64_t i = 0; i < kNx * kNy; ++i)
      g[i] = static_cast<double>((i * 2654435761ull) % 97) / 97.0;

    comm.barrier();
    const TimePs t0 = env.now();
    const TimePs c0 = comm.profiler().total();

    for (int it = 0; it < kIters; ++it) {
      // Exchange top row with the ring neighbours.
      double* tx = env.host_ptr<double>(halo_tx, kNx);
      for (std::uint64_t i = 0; i < kNx; ++i) tx[i] = g[i];
      comm.sendrecv(halo_tx, kNx * 8, up, it, halo_rx, kNx * 8, dn, it);

      // Relax the interior (real arithmetic + charged memory traffic).
      for (std::uint64_t y = 1; y + 1 < kNy; ++y)
        for (std::uint64_t x = 1; x + 1 < kNx; ++x)
          t[y * kNx + x] = 0.25 * (g[y * kNx + x - 1] + g[y * kNx + x + 1] +
                                   g[(y - 1) * kNx + x] +
                                   g[(y + 1) * kNx + x]);
      env.compute(4 * kNx * kNy);
      env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
          {grid, kNx * kNy * 8}, {next, kNx * kNy * 8}});
      std::swap(g, t);
    }

    comm.barrier();
    if (env.rank() == 0) {
      out.total = env.now() - t0;
      out.comm = comm.profiler().total() - c0;
    }
  });
  return out;
}

}  // namespace

int main() {
  std::printf("halo_exchange: 512x512 tiles, 4 ranks on 2 nodes, 30 "
              "iterations\n\n");
  const Split small = run_stencil(false);
  const Split huge = run_stencil(true);

  std::printf("small pages : total %8.1f us  (comm %8.1f us)\n",
              ps_to_us(small.total), ps_to_us(small.comm));
  std::printf("hugepages   : total %8.1f us  (comm %8.1f us)\n",
              ps_to_us(huge.total), ps_to_us(huge.comm));
  std::printf("\nimprovement : total %+.1f %%, comm %+.1f %%\n",
              (1.0 - static_cast<double>(huge.total) /
                         static_cast<double>(small.total)) * 100.0,
              (1.0 - static_cast<double>(huge.comm) /
                         static_cast<double>(small.comm)) * 100.0);
  return 0;
}
