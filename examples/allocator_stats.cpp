// Allocator walkthrough: what the transparent hugepage library actually
// does with a stream of requests — the 32 KB threshold routing, hugepage
// sharing between buffers, the fork/COW reserve, and the fallback to libc
// when the hugeTLBfs pool runs dry (Figure 2 of the paper).
//
//   $ ./examples/allocator_stats

#include <cstdio>

#include "ibp/hugepage/library.hpp"
#include "ibp/mem/address_space.hpp"

using namespace ibp;

namespace {

const char* where(const hugepage::Library& lib, VirtAddr a) {
  return lib.in_hugepages(a) ? "hugepages" : "libc     ";
}

}  // namespace

int main() {
  // A deliberately tiny hugeTLBfs pool (24 x 2 MB) to show exhaustion.
  mem::PhysicalMemory phys(512 * kMiB, 24, 7);
  mem::HugeTlbFs fs(&phys, 24, /*fork reserve=*/2);
  mem::AddressSpace space(&phys, &fs);
  hugepage::Library lib(space, fs);

  std::printf("hugeTLBfs pool: %llu pages (%llu reserved for fork/COW)\n\n",
              static_cast<unsigned long long>(fs.pool_size()),
              static_cast<unsigned long long>(fs.fork_reserve()));

  struct {
    const char* what;
    std::uint64_t size;
  } requests[] = {
      {"tiny scalar block", 256},
      {"small lookup table", 24 * kKiB},
      {"wavefunction array", 3 * kMiB},
      {"work matrix", 640 * kKiB},
      {"another work matrix", 640 * kKiB},
      {"huge FFT scratch", 20 * kMiB},
      {"second FFT scratch (pool nearly dry)", 20 * kMiB},
  };

  VirtAddr addrs[8] = {};
  int i = 0;
  for (const auto& rq : requests) {
    const auto r = lib.malloc(rq.size);
    addrs[i++] = r.addr;
    std::printf("malloc(%8llu B) -> %s  cost %7.2f us   %s\n",
                static_cast<unsigned long long>(rq.size),
                where(lib, r.addr), ps_to_us(r.cost), rq.what);
  }

  const auto& hs = lib.huge_heap().stats();
  std::printf("\nhugepage heap: %llu regions mapped, %llu B live, "
              "free-list %llu blocks\n",
              static_cast<unsigned long long>(hs.regions_mapped),
              static_cast<unsigned long long>(hs.bytes_live),
              static_cast<unsigned long long>(lib.huge_heap().free_blocks()));
  std::printf("library stats: %llu hugepage allocs, %llu libc allocs "
              "(below 32 KB), %llu pool-exhausted fallbacks\n",
              static_cast<unsigned long long>(lib.stats().huge_allocs),
              static_cast<unsigned long long>(lib.stats().libc_allocs),
              static_cast<unsigned long long>(lib.stats().fallback_allocs));
  std::printf("pool now: %llu pages in use, %llu still available\n\n",
              static_cast<unsigned long long>(fs.used()),
              static_cast<unsigned long long>(fs.available()));

  // Locality: the two 640 KB matrices share hugepage-mapped space.
  std::printf("work matrices placed %llu KB apart — buffers share "
              "hugepages (unlike one-page-per-buffer allocators)\n",
              static_cast<unsigned long long>(
                  (addrs[4] - addrs[3]) / kKiB));

  // Same-size churn: free + realloc reuses the block without coalescing.
  const VirtAddr before = addrs[3];
  lib.free(addrs[3]);
  const auto again = lib.malloc(640 * kKiB);
  std::printf("free + malloc(640 KB) again -> %s (address-ordered first "
              "fit reuses the block)\n",
              again.addr == before ? "same address" : "different address");

  lib.check_invariants();
  std::printf("\nheap invariants hold.\n");
  return 0;
}
