// One-sided RMA: a distributed work-stealing counter. Rank 0 exposes a
// window holding a shared task counter plus a result board; every rank
// claims task indices with atomic fetch-add (no matching receive anywhere)
// and publishes its results with RDMA puts. A classic pattern that needs
// exactly the window/atomics machinery built on the simulated HCA.
//
//   $ ./examples/rma_counter

#include <cstdio>

#include "ibp/mpi/window.hpp"
#include "ibp/platform/platform.hpp"

using namespace ibp;

int main() {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.hugepage_library = true;
  core::Cluster cluster(cfg);

  constexpr std::uint64_t kTasks = 64;
  std::vector<int> tasks_done(4, 0);

  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env);
    // Window layout: [0..8) counter, [8..8+kTasks*8) result slots.
    const std::uint64_t win_bytes = 8 + kTasks * 8;
    const VirtAddr win_buf = env.alloc(win_bytes);
    auto* wb = env.host_ptr<std::uint64_t>(win_buf, 1 + kTasks);
    for (std::uint64_t i = 0; i <= kTasks; ++i) wb[i] = 0;
    mpi::Window win(comm, win_buf, win_bytes);
    win.fence();

    const VirtAddr scratch = env.alloc(64);
    int mine = 0;
    for (;;) {
      // Claim the next task from rank 0's counter.
      const std::uint64_t task = win.fetch_add(0, 0, 1);
      if (task >= kTasks) break;
      // "Work": a deterministic square, with compute time charged.
      env.compute(200000 + task * 1000);
      *env.host_ptr<std::uint64_t>(scratch) = (task + 1) * (task + 1);
      // Publish the result into rank 0's board.
      win.put(scratch, 8, 0, 8 + task * 8);
      ++mine;
    }
    win.fence();
    tasks_done[static_cast<std::size_t>(env.rank())] = mine;

    if (env.rank() == 0) {
      std::uint64_t sum = 0;
      bool all = true;
      for (std::uint64_t tsk = 0; tsk < kTasks; ++tsk) {
        all = all && wb[1 + tsk] == (tsk + 1) * (tsk + 1);
        sum += wb[1 + tsk];
      }
      std::printf("all %llu results present and correct: %s (checksum "
                  "%llu)\n",
                  static_cast<unsigned long long>(kTasks),
                  all ? "yes" : "NO",
                  static_cast<unsigned long long>(sum));
    }
    win.fence();
  });

  std::printf("work distribution:");
  for (int r = 0; r < 4; ++r)
    std::printf("  rank %d: %d tasks", r, tasks_done[static_cast<std::size_t>(r)]);
  std::printf("\n(faster ranks steal more — decided purely by atomic "
              "fetch-add order in virtual time)\n");
  return 0;
}
