// RPC echo: rank 0 serves, rank 1 submits batched echo requests plus one
// large response that takes the rendezvous path, then prints latency
// percentiles from the client's log-scale histogram.
//
//   $ ./examples/rpc_echo
//
// Everything is simulated virtual time: deterministic across runs.

#include <cstdio>
#include <vector>

#include "ibp/core/cluster.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/rpc/rpc.hpp"

using namespace ibp;

int main() {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  // Route the RPC slot rings through the paper's strategy while the
  // rest of the heap stays on the cluster-wide default.
  cfg.placement_role_policies = {{"rpc-ring", "paper-default"}};
  core::Cluster cluster(cfg);

  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;  // batches ride one SGE-list work request
    mpi::Comm comm(env, mc);
    rpc::RpcConfig rc;

    if (comm.rank() == 0) {
      rpc::RpcServer server(comm, {1}, rc);
      server.serve();
      const rpc::ServerStats& s = server.stats();
      std::printf("server: %llu requests in %llu batches, %llu served\n",
                  static_cast<unsigned long long>(s.requests_in),
                  static_cast<unsigned long long>(s.batches_in),
                  static_cast<unsigned long long>(s.served));
      return;
    }

    rpc::RpcClient client(comm, 0, rc);
    const std::vector<std::uint8_t> msg = {'h', 'e', 'l', 'l', 'o'};

    // A burst of small echoes: coalesced into gather batches.
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 64; ++i) ids.push_back(client.submit(msg));
    for (std::uint64_t id : ids) {
      const rpc::Completion& c = client.wait(id);
      if (c.payload.size() != msg.size() || c.payload[0] != 'h')
        std::printf("echo mismatch for id %llu!\n",
                    static_cast<unsigned long long>(id));
    }

    // One large response (64 KB): announced in-batch, body on its own
    // tag through the rendezvous path.
    const std::uint64_t big = client.submit(msg, 64 * 1024);
    const rpc::Completion& c = client.wait(big);
    std::printf("client: large response %zu B, status %s\n",
                c.payload.size(),
                c.status == rpc::Status::Ok ? "ok" : "overloaded");

    client.close();
    const rpc::ClientStats& s = client.stats();
    std::printf("client: %llu requests in %llu batches (%.1f req/WR)\n",
                static_cast<unsigned long long>(s.submitted),
                static_cast<unsigned long long>(s.batches),
                s.batches ? static_cast<double>(s.batched_requests) /
                                static_cast<double>(s.batches)
                          : 0.0);
    std::printf("client: echo latency p50 %.1f us  p99 %.1f us\n",
                client.latency().p50() / 1000.0,
                client.latency().p99() / 1000.0);
  });
  return 0;
}
