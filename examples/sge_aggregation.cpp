// Scatter/gather aggregation: sending the non-contiguous fields of a
// particle-exchange record (positions / velocities / charges living in
// separate arrays) as ONE work request with an SGE list, versus packing
// them first. This is the paper's §4 proposal and §7 future-work feature
// surfaced through the public MPI API (Comm::isend_gather).
//
//   $ ./examples/sge_aggregation

#include <cstdio>
#include <vector>

#include "ibp/mpi/comm.hpp"
#include "ibp/platform/platform.hpp"

using namespace ibp;

namespace {

TimePs run_exchange(bool sge_gather, int rounds) {
  core::ClusterConfig cfg;
  cfg.platform = platform::systemp_gx_ehca();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);

  mpi::CommConfig ccfg;
  ccfg.sge_gather = sge_gather;
  constexpr std::uint64_t kParticles = 64;

  TimePs elapsed = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    // Structure-of-arrays particle state.
    const VirtAddr pos = env.alloc(kParticles * 3 * 8);
    const VirtAddr vel = env.alloc(kParticles * 3 * 8);
    const VirtAddr chg = env.alloc(kParticles * 8);
    const std::uint64_t total = kParticles * 7 * 8;

    if (env.rank() == 0) {
      auto* p = env.host_ptr<double>(pos, kParticles * 3);
      auto* v = env.host_ptr<double>(vel, kParticles * 3);
      auto* c = env.host_ptr<double>(chg, kParticles);
      for (std::uint64_t i = 0; i < kParticles; ++i) {
        for (int d = 0; d < 3; ++d) {
          p[3 * i + d] = static_cast<double>(i) + 0.1 * d;
          v[3 * i + d] = -static_cast<double>(i) - 0.1 * d;
        }
        c[i] = i % 2 ? 1.0 : -1.0;
      }
      const std::vector<mpi::Seg> segs{{pos, kParticles * 3 * 8},
                                       {vel, kParticles * 3 * 8},
                                       {chg, kParticles * 8}};
      const TimePs t0 = env.now();
      for (int r = 0; r < rounds; ++r) {
        mpi::Req req = comm.isend_gather(segs, 1, r);
        comm.wait(req);
        comm.recv(pos, 8, 1, 10000 + r);  // ack: keep rounds serialized
      }
      elapsed = (env.now() - t0) / static_cast<std::uint64_t>(rounds);
    } else {
      const VirtAddr inbox = env.alloc(total + 64);
      for (int r = 0; r < rounds; ++r) {
        const mpi::RecvStatus st = comm.recv(inbox, total, 0, r);
        IBP_CHECK(st.len == total);
        comm.send(inbox, 8, 0, 10000 + r);
      }
      // Spot-check the gathered layout: charges follow the velocities.
      auto* c = env.host_ptr<double>(inbox + kParticles * 6 * 8, kParticles);
      IBP_CHECK(c[0] == -1.0 && c[1] == 1.0, "gather layout broken");
    }
  });
  return elapsed;
}

}  // namespace

int main() {
  constexpr int kRounds = 50;
  std::printf("sge_aggregation: 64-particle exchange (pos+vel+charge, 3 "
              "arrays, %d rounds)\n\n", kRounds);
  const TimePs pack = run_exchange(false, kRounds);
  const TimePs sge = run_exchange(true, kRounds);
  std::printf("pack-and-send : %.2f us per exchange\n", ps_to_us(pack));
  std::printf("SGE gather    : %.2f us per exchange\n", ps_to_us(sge));
  std::printf("\nthe NIC gathers all three arrays with one work request — "
              "%.1f %% faster, no CPU packing\n",
              (1.0 - static_cast<double>(sge) / static_cast<double>(pack)) *
                  100.0);
  return 0;
}
