// Timeline tracing: run a small multi-phase workload with tracing enabled
// and emit a Chrome trace-event JSON (load it at chrome://tracing or
// https://ui.perfetto.dev) showing every rank's MPI calls and application
// phases on the virtual-time axis.
//
//   $ ./examples/trace_timeline > timeline.json

#include <cstdio>
#include <iostream>

#include "ibp/mpi/comm.hpp"
#include "ibp/platform/platform.hpp"

using namespace ibp;

int main() {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  cfg.hugepage_library = true;
  cfg.enable_tracing = true;
  core::Cluster cluster(cfg);

  cluster.run([](core::RankEnv& env) {
    mpi::Comm comm(env);
    constexpr std::uint64_t kLen = 256 * kKiB;
    const VirtAddr buf = env.alloc(kLen * 2);
    const int right = (env.rank() + 1) % env.nranks();
    const int left = (env.rank() - 1 + env.nranks()) % env.nranks();

    for (int iter = 0; iter < 4; ++iter) {
      const TimePs t_compute = env.now();
      env.touch_stream(buf, kLen);
      env.compute(500000);
      env.trace("app", "stencil-compute", t_compute);

      comm.sendrecv(buf, kLen, right, iter, buf + kLen, kLen, left, iter);

      const TimePs t_reduce = env.now();
      const VirtAddr red = env.alloc(64);
      *env.host_ptr<double>(red) = static_cast<double>(iter);
      comm.allreduce<double>(red, red, 1, mpi::ReduceOp::Sum);
      env.dealloc(red);
      env.trace("app", "residual-reduce", t_reduce);
    }
  });

  cluster.tracer()->write_json(std::cout);
  std::fprintf(stderr,
               "wrote %zu trace events (load the JSON at chrome://tracing "
               "or ui.perfetto.dev)\n",
               cluster.tracer()->size());
  return 0;
}
