// ibplace — command-line driver for the simulator.
//
//   ibplace info                         platform parameter dump
//   ibplace imb <mode> [opts]            sendrecv | pingpong | exchange
//   ibplace nas <kernel> [opts]          cg|ep|is|lu|mg|ft, both placements
//   ibplace reg [opts]                   registration cost sweep
//   ibplace rpc <open|closed> [opts]     RPC serving layer under load
//   ibplace fabric [opts]                sharded fabric, striped bulk reads
//   ibplace trace-report <file>          stage breakdown of a request trace
//
// Common options:
//   --platform=opteron|xeon|systemp   (default opteron)
//   --nodes=N --rpn=R                 topology (default 2x4; imb 2x1)
//   --hugepages=0|1                   preload the hugepage library
//   --lazy=0|1                        lazy deregistration (default 1)
//   --patched=0|1                     driver hugepage passthrough (default 1)
//   --rndv-read=0|1                   RDMA-read rendezvous (default 0)
//   --iters=N  --scale=N
//   --placement=POLICY                placement policy (--list-policies)
//   --placement-role=ROLE=POLICY      override the policy for one buffer
//                                     role (repeatable; e.g.
//                                     --placement-role=rpc-ring=paper-default)
//   --fault=SPEC                      inline fault plan (see fault.hpp)
//   --fault-file=PATH                 fault plan from a file
//   --recovery=failfast|repost        MPI policy on error completions
//   --metrics-out=PATH                final metrics snapshot as JSON
//   --trace-out=PATH                  Chrome trace JSON (spans, counter
//                                     tracks, flow events)
//   --metrics-filter=PREFIX           restrict --metrics-out to a
//                                     namespace prefix (e.g. mpi.)
//   --json=PATH                       rpc/fabric result summary as JSON
//                                     (one schema family across both)
//   --request-trace-out=PATH          enable per-request tracing and write
//                                     the exemplar/stage JSONL stream
//                                     (read it back with trace-report)
//
// Fabric options (ibplace fabric):
//   --servers=N                       server ranks behind the client
//   --stripe=W                        stripe width (links per bulk read)
//   --shard-map=hash|range|affinity   tenant -> server strategy
//
//   ibplace --list-policies           registered placement policies
//
// Everything is deterministic; outputs are stable across runs — fault
// plans included (the injector draws from its own seeded RNG streams).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ibp/common/table.hpp"
#include "ibp/fabric/fabric.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/placement/placement.hpp"
#include "ibp/rpc/rpc.hpp"
#include "ibp/telemetry/reqtrace.hpp"
#include "ibp/telemetry/sink.hpp"
#include "ibp/workloads/imb.hpp"
#include "ibp/workloads/nas.hpp"

using namespace ibp;

namespace {

struct Options {
  std::string platform = "opteron";
  int nodes = 2;
  int rpn = 4;
  bool hugepages = false;
  bool lazy = true;
  bool patched = true;
  bool rndv_read = false;
  int iters = 10;
  int scale = 1;
  std::string placement = "paper-default";
  // Per-role policy overrides, (role name, policy name) pairs.
  std::vector<std::pair<std::string, std::string>> role_policies;
  std::string fault;       // inline fault-plan spec
  std::string fault_file;  // fault-plan file (appended to `fault`)
  std::string recovery = "failfast";
  std::string metrics_out;     // final metrics snapshot (JSON)
  std::string trace_out;       // Chrome trace JSON
  std::string metrics_filter;  // metric-name prefix for --metrics-out
  std::string json_out;        // rpc/fabric result summary (JSON)
  std::string request_trace_out;  // per-request trace JSONL (enables hub)
  int servers = 4;             // fabric: server ranks
  int stripe = 4;              // fabric: stripe width
  int fail_after = -1;         // fabric: consecutive losses before a link
                               // is declared dead (-1 = auto: 2 when the
                               // fault plan has crash directives, else off)
  std::string shard_map = "hash";  // fabric: tenant->server strategy
  int threads = 0;                 // rpc: server worker tracks (0 = inline)
  hca::ShareMode share_mode = hca::ShareMode::SharedLocked;  // rpc: QP/CQ
                                                             // sharing
  bool rdma_eager = false;  // rpc/fabric: one-sided ring channels
  bool ud_eager = false;    // rpc/fabric: hybrid UD datagram tier
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: ibplace <info|imb|nas|reg|rpc|fabric> [args] "
               "[--options]\n"
               "  ibplace info [--platform=P]\n"
               "  ibplace imb <sendrecv|pingpong|exchange> [--options]\n"
               "  ibplace nas <cg|ep|is|lu|mg|ft> [--options]\n"
               "  ibplace reg [--platform=P]\n"
               "  ibplace rpc <open|closed> [--options]\n"
               "  ibplace fabric [--servers=N --stripe=W "
               "--shard-map=hash|range|affinity\n"
               "                  --fail-after=K]\n"
               "  ibplace trace-report <trace.jsonl>\n"
               "  ibplace --list-policies\n"
               "options: --platform=opteron|xeon|systemp --nodes=N --rpn=R\n"
               "         --hugepages=0|1 --lazy=0|1 --patched=0|1\n"
               "         --rndv-read=0|1 --iters=N --scale=N\n"
               "         --placement=POLICY (see --list-policies)\n"
               "         --placement-role=ROLE=POLICY (repeatable)\n"
               "         --fault=SPEC --fault-file=PATH\n"
               "         --recovery=failfast|repost\n"
               "         --rdma-eager=0|1 --ud-eager=0|1 (rpc/fabric)\n"
               "         --metrics-out=PATH --trace-out=PATH\n"
               "         --metrics-filter=PREFIX --json=PATH\n"
               "         --request-trace-out=PATH\n"
               "fault SPEC: ';'-separated directives, e.g.\n"
               "  drop=0-1:0.01 | corrupt=*-*:0.001:50-200 |\n"
               "  storm=1:100-400 | qpkill=0:2:250 |\n"
               "  crash=2:1500 | recover=2:4000 | seed=7\n"
               "  (times in us; '*' = any node / open-ended window)\n");
  std::exit(2);
}

bool parse_flag(const char* arg, const char* name, std::string* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

Options parse_options(int argc, char** argv, int first) {
  Options o;
  for (int i = first; i < argc; ++i) {
    std::string v;
    if (parse_flag(argv[i], "--platform", &v)) {
      o.platform = v;
    } else if (parse_flag(argv[i], "--nodes", &v)) {
      o.nodes = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--rpn", &v)) {
      o.rpn = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--hugepages", &v)) {
      o.hugepages = v == "1";
    } else if (parse_flag(argv[i], "--lazy", &v)) {
      o.lazy = v == "1";
    } else if (parse_flag(argv[i], "--patched", &v)) {
      o.patched = v == "1";
    } else if (parse_flag(argv[i], "--rndv-read", &v)) {
      o.rndv_read = v == "1";
    } else if (parse_flag(argv[i], "--iters", &v)) {
      o.iters = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--scale", &v)) {
      o.scale = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--fault", &v)) {
      o.fault = v;
    } else if (parse_flag(argv[i], "--fault-file", &v)) {
      o.fault_file = v;
    } else if (parse_flag(argv[i], "--recovery", &v)) {
      o.recovery = v;
    } else if (parse_flag(argv[i], "--fail-after", &v)) {
      o.fail_after = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--placement-role", &v)) {
      const std::size_t eq = v.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == v.size())
        usage("--placement-role wants ROLE=POLICY");
      o.role_policies.emplace_back(v.substr(0, eq), v.substr(eq + 1));
    } else if (parse_flag(argv[i], "--placement", &v)) {
      o.placement = v;
    } else if (parse_flag(argv[i], "--metrics-out", &v)) {
      o.metrics_out = v;
    } else if (parse_flag(argv[i], "--trace-out", &v)) {
      o.trace_out = v;
    } else if (parse_flag(argv[i], "--metrics-filter", &v)) {
      o.metrics_filter = v;
    } else if (parse_flag(argv[i], "--json", &v)) {
      o.json_out = v;
    } else if (parse_flag(argv[i], "--request-trace-out", &v)) {
      o.request_trace_out = v;
    } else if (parse_flag(argv[i], "--servers", &v)) {
      o.servers = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--stripe", &v)) {
      o.stripe = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--shard-map", &v)) {
      o.shard_map = v;
    } else if (parse_flag(argv[i], "--threads", &v)) {
      o.threads = std::atoi(v.c_str());
    } else if (parse_flag(argv[i], "--rdma-eager", &v)) {
      o.rdma_eager = v == "1";
    } else if (parse_flag(argv[i], "--ud-eager", &v)) {
      o.ud_eager = v == "1";
    } else if (parse_flag(argv[i], "--share-mode", &v)) {
      if (!hca::share_mode_from_name(v, &o.share_mode))
        usage(("unknown share mode '" + v +
               "' (known: shared-locked, per-thread-qp, dispatcher)")
                  .c_str());
    } else {
      usage(("unknown option " + std::string(argv[i])).c_str());
    }
  }
  if (o.nodes < 1 || o.rpn < 1 || o.iters < 1 || o.scale < 1)
    usage("topology/iteration options must be positive");
  if (o.threads < 0 || o.threads > 64)
    usage("--threads must be 0..64");
  if (o.recovery != "failfast" && o.recovery != "repost")
    usage("--recovery must be failfast or repost");
  if (placement::make_policy(o.placement) == nullptr)
    usage(("unknown placement policy '" + o.placement + "' (known: " +
           placement::known_policy_names() + ")")
              .c_str());
  for (const auto& [role, policy] : o.role_policies) {
    if (!placement::role_from_name(role).has_value())
      usage(("unknown placement role '" + role + "' (known: " +
             placement::known_role_names() + ")")
                .c_str());
    if (placement::make_policy(policy) == nullptr)
      usage(("unknown placement policy '" + policy + "' for role '" + role +
             "' (known: " + placement::known_policy_names() + ")")
                .c_str());
  }
  return o;
}

core::ClusterConfig cluster_config(const Options& o) {
  core::ClusterConfig cfg;
  cfg.platform = platform::by_name(o.platform);
  cfg.nodes = o.nodes;
  cfg.ranks_per_node = o.rpn;
  cfg.hugepage_library = o.hugepages;
  cfg.lazy_deregistration = o.lazy;
  cfg.placement_policy = o.placement;
  cfg.placement_role_policies = o.role_policies;
  cfg.driver.hugepage_passthrough = o.patched;
  std::string spec = o.fault;
  if (!o.fault_file.empty()) {
    std::ifstream in(o.fault_file);
    if (!in) usage(("cannot open fault file " + o.fault_file).c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!spec.empty()) spec += ';';
    spec += ss.str();
  }
  if (!spec.empty()) cfg.fault = fault::parse_fault_plan(spec);
  if (!o.metrics_out.empty() || !o.trace_out.empty())
    cfg.telemetry.enabled = true;
  if (!o.request_trace_out.empty()) cfg.request_trace.enabled = true;
  return cfg;
}

/// Write --metrics-out / --trace-out files for a finished run.
void write_telemetry_outputs(core::Cluster& cluster, const Options& o) {
  if (!o.request_trace_out.empty()) {
    std::ofstream out(o.request_trace_out);
    if (!out) usage(("cannot open " + o.request_trace_out).c_str());
    telemetry::RequestTracer* hub = cluster.request_tracer();
    if (hub != nullptr) hub->write_jsonl(out);
  }
  if (o.metrics_out.empty() && o.trace_out.empty()) return;
  const telemetry::MetricsSnapshot snap = cluster.metrics().snapshot();
  telemetry::RunTelemetry run;
  run.tracer = cluster.tracer();
  run.metrics = &snap;
  run.metrics_filter = o.metrics_filter;
  if (!o.metrics_out.empty()) {
    std::ofstream out(o.metrics_out);
    if (!out) usage(("cannot open " + o.metrics_out).c_str());
    telemetry::MetricsJsonSink().write(run, out);
  }
  if (!o.trace_out.empty()) {
    std::ofstream out(o.trace_out);
    if (!out) usage(("cannot open " + o.trace_out).c_str());
    telemetry::ChromeTraceJsonSink().write(run, out);
  }
}

/// One-line transport-reliability summary after a faulted run.
void print_fault_summary(core::Cluster& cluster) {
  fault::FaultInjector* inj = cluster.fault();
  if (inj == nullptr) return;
  std::uint64_t retrans = 0, rnr = 0, qperr = 0, storm = 0;
  for (int n = 0; n < cluster.nodes(); ++n) {
    const hca::AdapterStats& s = cluster.node(n).adapter.stats();
    retrans += s.retransmits;
    rnr += s.rnr_naks;
    qperr += s.qp_errors;
    storm += s.storm_att_misses;
  }
  const fault::FaultStats& fs = inj->stats();
  std::printf("\nfault plan: %s\n", fault::describe(inj->plan()).c_str());
  std::printf("faults: %llu/%llu packets dropped, %llu corrupted; "
              "%llu retransmits, %llu RNR rounds, %llu QP errors, "
              "%llu storm ATT misses\n",
              static_cast<unsigned long long>(fs.packets_dropped),
              static_cast<unsigned long long>(fs.packets_judged),
              static_cast<unsigned long long>(fs.packets_corrupted),
              static_cast<unsigned long long>(retrans),
              static_cast<unsigned long long>(rnr),
              static_cast<unsigned long long>(qperr),
              static_cast<unsigned long long>(storm));
}

int cmd_info(const Options& o) {
  const auto p = platform::by_name(o.platform);
  std::printf("platform %s\n", p.name.c_str());
  TextTable t({"parameter", "value"});
  t.add_row("tbr frequency [MHz]", p.tbr_hz / 1e6);
  t.add_row("compute [ops/ns]", p.ops_per_ns);
  t.add_row("TLB 4K entries", static_cast<std::uint64_t>(p.tlb.small_entries));
  t.add_row("TLB 2M entries", static_cast<std::uint64_t>(p.tlb.huge_entries));
  t.add_row("DRAM stream [B/ns]", p.mem.stream_bw_bytes_per_ns);
  t.add_row("link [B/ns]", p.adapter.link_bw_bytes_per_ns);
  t.add_row("ATT entries", p.adapter.att_entries);
  t.add_row("ATT miss [ns]", ps_to_ns(p.adapter.att_miss));
  t.add_row("post base [ns]", ps_to_ns(p.adapter.post_base));
  t.add_row("pin/page [ns]", ps_to_ns(p.adapter.pin_per_page));
  t.print();
  return 0;
}

int cmd_imb(const std::string& mode, const Options& o) {
  Options opt = o;
  core::ClusterConfig cfg = cluster_config(opt);
  core::Cluster cluster(cfg);
  workloads::ImbConfig icfg;
  icfg.sizes = workloads::imb_default_sizes();
  icfg.iterations = opt.iters;
  icfg.comm.recovery = opt.recovery == "repost"
                           ? mpi::CommConfig::Recovery::Repost
                           : mpi::CommConfig::Recovery::FailFast;

  std::vector<workloads::ImbPoint> pts;
  if (mode == "sendrecv") {
    pts = workloads::run_sendrecv(cluster, icfg);
  } else if (mode == "pingpong") {
    pts = workloads::run_pingpong(cluster, icfg);
  } else if (mode == "exchange") {
    pts = workloads::run_exchange(cluster, icfg);
  } else {
    usage(("unknown imb mode " + mode).c_str());
  }

  std::printf("IMB %s  platform=%s %dx%d hugepages=%d lazy=%d patched=%d\n\n",
              mode.c_str(), opt.platform.c_str(), opt.nodes, opt.rpn,
              opt.hugepages, opt.lazy, opt.patched);
  TextTable t({"bytes", "t [us]", "MB/s"});
  for (const auto& p : pts)
    t.add_row(p.bytes, ps_to_us(p.avg_time), p.mbytes_per_sec);
  t.print();
  print_fault_summary(cluster);
  write_telemetry_outputs(cluster, opt);
  return 0;
}

int cmd_nas(const std::string& kernel, const Options& o) {
  std::printf("NAS %s  platform=%s %dx%d scale=%d (both placements)\n\n",
              kernel.c_str(), o.platform.c_str(), o.nodes, o.rpn, o.scale);
  workloads::NasResult r[2];
  // The hugepage cluster outlives the loop so --metrics-out/--trace-out
  // can snapshot the run the table's improvement line is about.
  std::optional<core::Cluster> telemetry_cluster;
  for (int huge = 0; huge < 2; ++huge) {
    Options opt = o;
    opt.hugepages = huge != 0;
    core::Cluster& cluster = telemetry_cluster.emplace(cluster_config(opt));
    r[huge] = workloads::run_nas(kernel, cluster,
                                 workloads::NasScale{o.scale});
  }
  TextTable t({"placement", "total [ms]", "comm [ms]", "other [ms]",
               "TLB misses", "verified"});
  const char* names[2] = {"small pages", "hugepages"};
  for (int i = 0; i < 2; ++i)
    t.add_row(names[i], static_cast<double>(r[i].total) / 1e9,
              static_cast<double>(r[i].comm_avg) / 1e9,
              static_cast<double>(r[i].other_avg) / 1e9, r[i].tlb_misses,
              r[i].verified ? "yes" : "NO");
  t.print();
  std::printf("\nimprovement: comm %+.1f %%, overall %+.1f %%\n",
              (1.0 - static_cast<double>(r[1].comm_avg) /
                         static_cast<double>(r[0].comm_avg)) * 100.0,
              (1.0 - static_cast<double>(r[1].total) /
                         static_cast<double>(r[0].total)) * 100.0);
  write_telemetry_outputs(*telemetry_cluster, o);
  return r[0].verified && r[1].verified ? 0 : 1;
}

int cmd_reg(const Options& o) {
  std::printf("registration cost  platform=%s patched=%d\n\n",
              o.platform.c_str(), o.patched);
  TextTable t({"bytes", "4K pages [us]", "hugepages [us]", "ratio %"});
  // Last sweep cluster kept for --metrics-out/--trace-out; the table is
  // computed exactly as before, telemetry observes without perturbing.
  std::optional<core::Cluster> telemetry_cluster;
  for (std::uint64_t bytes = 256 * kKiB; bytes <= 64 * kMiB; bytes *= 4) {
    TimePs cost[2];
    for (int huge = 0; huge < 2; ++huge) {
      core::ClusterConfig cfg = cluster_config(o);
      cfg.nodes = 1;
      cfg.ranks_per_node = 1;
      cfg.hugepages_per_node = 2048;
      core::Cluster& cluster = telemetry_cluster.emplace(cfg);
      TimePs dt = 0;
      cluster.run([&](core::RankEnv& env) {
        auto& m = env.space().map(bytes, huge ? mem::PageKind::Huge
                                              : mem::PageKind::Small);
        const TimePs t0 = env.now();
        env.verbs().reg_mr(m.va_base, bytes);
        dt = env.now() - t0;
      });
      cost[huge] = dt;
    }
    t.add_row(bytes, ps_to_us(cost[0]), ps_to_us(cost[1]),
              100.0 * static_cast<double>(cost[1]) /
                  static_cast<double>(cost[0]));
  }
  t.print();
  write_telemetry_outputs(*telemetry_cluster, o);
  return 0;
}

/// One load-generator run against a fresh 2-rank cluster. The cluster is
/// kept alive in `keep` so telemetry outputs can snapshot the last run.
loadgen::GenResult run_rpc_once(const Options& o, bool open, bool batching,
                                std::uint32_t workers,
                                std::uint64_t requests, double* req_per_wr,
                                rpc::ClientStats* client_stats,
                                std::optional<core::Cluster>& keep) {
  core::Cluster& cluster = keep.emplace(cluster_config(o));
  loadgen::GenResult gen;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mc.rdma_eager = o.rdma_eager;
    mc.ud_eager = o.ud_eager;
    mc.recovery = o.recovery == "repost" ? mpi::CommConfig::Recovery::Repost
                                         : mpi::CommConfig::Recovery::FailFast;
    mpi::Comm comm(env, mc);
    rpc::RpcConfig rc;
    rc.rdma_response = o.rdma_eager;
    rc.batching = batching;
    rc.max_payload = 256;
    rc.server_workers = static_cast<std::uint32_t>(o.threads);
    rc.share_mode = o.share_mode;
    if (open) {
      rc.service_base = ns(200);  // transport-bound
      rc.service_per_byte_ps = 0;
    } else {
      rc.server_queue_cap = 8;  // small admission queue: shed early
    }
    if (env.rank() == 0) {
      rpc::RpcServer server(comm, {1}, rc);
      server.serve();
      return;
    }
    rpc::RpcClient client(comm, 0, rc);
    loadgen::Workload w;
    w.request_bytes = 128;
    if (open) {
      loadgen::OpenLoopConfig oc;
      oc.rate_rps = 8e6;
      oc.requests = requests;
      oc.warmup = requests / 2;
      oc.seed = 7;
      gen = loadgen::run_open_loop(client, w, oc);
    } else {
      loadgen::ClosedLoopConfig cc;
      cc.workers = workers;
      cc.requests = requests;
      cc.warmup = requests / 4;
      cc.seed = 11;
      gen = loadgen::run_closed_loop(client, w, cc);
    }
    const rpc::ClientStats& cs = client.stats();
    *req_per_wr = cs.batches != 0
                      ? static_cast<double>(cs.batched_requests) /
                            static_cast<double>(cs.batches)
                      : 0.0;
    *client_stats = cs;
    client.close();
  });
  return gen;
}

/// One record in the shared rpc/fabric JSON schema family (the same
/// keys ext_rpc_loadgen and ext_fabric_scale emit, so dashboards parse
/// CLI and bench output with one reader).
void json_gen_record(std::ofstream& out, const char* key,
                     const loadgen::GenResult& gen,
                     const rpc::ClientStats& cs, double shed_total,
                     const char* indent) {
  char hash[32];
  std::snprintf(hash, sizeof(hash), "0x%016llx",
                static_cast<unsigned long long>(gen.trace_hash));
  out << indent << "\"" << key << "\": {\"issued\": " << gen.issued
      << ", \"ok\": " << gen.ok << ", \"shed\": " << gen.shed
      << ", \"rejected\": " << gen.rejected << ",\n"
      << indent << "  \"achieved_rps\": "
      << static_cast<std::uint64_t>(gen.achieved_rps())
      << ", \"p50_us\": " << gen.latency_ns.p50() / 1000.0
      << ", \"p95_us\": " << gen.latency_ns.p95() / 1000.0
      << ", \"p99_us\": " << gen.latency_ns.p99() / 1000.0 << ",\n"
      << indent << "  \"shed_total\": "
      << static_cast<std::uint64_t>(shed_total)
      << ", \"credit_stalls\": " << cs.credit_stalls
      << ", \"qos_stalls\": " << cs.qos_stalls
      << ", \"retries\": " << cs.retries
      << ", \"trace_hash\": \"" << hash << "\"}";
}

int cmd_rpc(const std::string& mode, const Options& o) {
  if (mode != "open" && mode != "closed")
    usage(("unknown rpc mode " + mode).c_str());
  if (o.nodes * o.rpn != 2)
    usage("rpc needs a 2-rank topology (one server, one client)");
  const bool open = mode == "open";
  std::printf("RPC %s loop  platform=%s %dx%d placement=%s",
              mode.c_str(), o.platform.c_str(), o.nodes, o.rpn,
              o.placement.c_str());
  if (o.threads > 0)
    std::printf(" threads=%d share=%s", o.threads,
                hca::share_mode_name(o.share_mode));
  if (o.rdma_eager) std::printf(" rdma-eager=on");
  std::printf("\n\n");

  std::optional<core::Cluster> last;
  TextTable t({"config", "ok", "shed", "rejected", "req/s", "p50 [us]",
               "p99 [us]", "req/WR"});
  const auto add_row = [&](const char* label,
                           const loadgen::GenResult& gen, double rpw) {
    t.add_row(label, gen.ok, gen.shed, gen.rejected,
              gen.achieved_rps(), gen.latency_ns.p50() / 1000.0,
              gen.latency_ns.p99() / 1000.0, rpw);
  };
  loadgen::GenResult gen[2];
  rpc::ClientStats cs[2];
  double rpw[2] = {0.0, 0.0};
  double shed_total[2] = {0.0, 0.0};
  const char* labels[2];
  if (open) {
    const std::uint64_t n = 1500 * static_cast<std::uint64_t>(o.scale);
    gen[0] = run_rpc_once(o, true, true, 0, n, &rpw[0], &cs[0], last);
    shed_total[0] = last->metrics().value("rpc.shed_total");
    gen[1] = run_rpc_once(o, true, false, 0, n, &rpw[1], &cs[1], last);
    shed_total[1] = last->metrics().value("rpc.shed_total");
    labels[0] = "batched";
    labels[1] = "unbatched";
  } else {
    const std::uint64_t n = 1200 * static_cast<std::uint64_t>(o.scale);
    gen[0] = run_rpc_once(o, false, true, 2, n, &rpw[0], &cs[0], last);
    shed_total[0] = last->metrics().value("rpc.shed_total");
    gen[1] = run_rpc_once(o, false, true, 32, n, &rpw[1], &cs[1], last);
    shed_total[1] = last->metrics().value("rpc.shed_total");
    labels[0] = "2 workers";
    labels[1] = "32 workers";
  }
  add_row(labels[0], gen[0], rpw[0]);
  add_row(labels[1], gen[1], rpw[1]);
  t.print();
  if (open) {
    std::printf("\nbatching speedup: %.2fx\n",
                gen[1].achieved_rps() > 0
                    ? gen[0].achieved_rps() / gen[1].achieved_rps()
                    : 0.0);
  } else {
    std::printf("\naccepted p99 under overload: %.2fx uncontended\n",
                gen[0].latency_ns.p99() > 0
                    ? gen[1].latency_ns.p99() / gen[0].latency_ns.p99()
                    : 0.0);
  }
  if (!o.json_out.empty()) {
    std::ofstream out(o.json_out);
    if (!out) usage(("cannot open " + o.json_out).c_str());
    out << "{\n  \"tool\": \"ibplace rpc\",\n  \"mode\": \"" << mode
        << "\",\n  \"placement\": \"" << o.placement << "\",\n";
    json_gen_record(out, open ? "batched" : "uncontended", gen[0], cs[0],
                    shed_total[0], "  ");
    out << ",\n";
    json_gen_record(out, open ? "unbatched" : "overload", gen[1], cs[1],
                    shed_total[1], "  ");
    out << "\n}\n";
  }
  print_fault_summary(*last);
  write_telemetry_outputs(*last, o);
  return 0;
}

int cmd_fabric(const Options& o) {
  if (o.servers < 1 || o.servers > 64) usage("--servers must be 1..64");
  if (o.stripe < 1 || o.stripe > o.servers)
    usage("--stripe must be 1..servers");
  const auto strategy = fabric::shard_strategy_from_name(o.shard_map);
  if (!strategy.has_value())
    usage("--shard-map must be hash, range, or affinity");

  std::printf(
      "fabric closed loop  platform=%s servers=%d stripe=%d shard=%s "
      "placement=%s%s\n\n",
      o.platform.c_str(), o.servers, o.stripe, o.shard_map.c_str(),
      o.placement.c_str(), o.rdma_eager ? " rdma-eager=on" : "");

  core::ClusterConfig cfg = cluster_config(o);
  cfg.nodes = o.servers + 1;  // rank 0 is the client
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);

  // Health monitor: explicit --fail-after wins; otherwise it arms itself
  // exactly when the fault plan can kill a server (a crashed server
  // black-holes requests, so without failover the closed loop hangs).
  const std::uint32_t fail_after =
      o.fail_after >= 0 ? static_cast<std::uint32_t>(o.fail_after)
                        : (cfg.fault.crashes.empty() ? 0u : 2u);

  constexpr std::uint32_t kBulkBytes = 64 * kKiB;
  loadgen::GenResult gen;
  fabric::FabricClientStats fs;
  rpc::ClientStats cs;
  std::uint64_t digest = 0;
  std::uint32_t epoch = 0;
  TimePs recovery_ps = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mc.rdma_eager = o.rdma_eager;
    mc.ud_eager = o.ud_eager;
    mc.recovery = o.recovery == "repost" ? mpi::CommConfig::Recovery::Repost
                                         : mpi::CommConfig::Recovery::FailFast;
    mpi::Comm comm(env, mc);
    fabric::FabricConfig fc;
    fc.rpc.rdma_response = o.rdma_eager;
    fc.stripe_width = static_cast<std::uint32_t>(o.stripe);
    fc.shard_strategy = *strategy;
    if (fail_after > 0) {
      fc.fail_after = fail_after;
      fc.rpc.request_timeout = us(4000);
      fc.rpc.max_retries = 1;
    }
    if (env.rank() != 0) {
      fabric::FabricServer server(comm, {0}, fc);
      server.serve();
      return;
    }
    std::vector<int> ranks;
    for (int s = 1; s <= o.servers; ++s) ranks.push_back(s);
    fabric::FabricClient client(comm, ranks, fc);
    digest = client.shard_map().digest();
    loadgen::Workload w;
    w.request_bytes = 64;
    w.tenants = 8;
    w.bulk_fraction = 1.0;
    w.bulk_response_bytes = kBulkBytes;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 4;
    cc.requests = 160 * static_cast<std::uint64_t>(o.scale);
    cc.warmup = cc.requests / 4;
    cc.seed = 13;
    gen = loadgen::run_closed_loop(client, w, cc);
    fs = client.stats();
    cs = client.link_stats();
    epoch = client.shard_map().epoch();
    recovery_ps = client.recovery_time();
    client.close();
  });
  const double shed_total = cluster.metrics().value("rpc.shed_total");
  const double mbps = gen.span > 0
                          ? static_cast<double>(fs.reassembled_bytes) * 1e12 /
                                static_cast<double>(gen.span) / 1e6
                          : 0.0;

  TextTable t({"ok", "shed", "rejected", "MB/s", "req/s", "p50 [us]",
               "p99 [us]", "stripes", "segments"});
  t.add_row(gen.ok, gen.shed, gen.rejected, mbps, gen.achieved_rps(),
            gen.latency_ns.p50() / 1000.0, gen.latency_ns.p99() / 1000.0,
            fs.stripes, fs.segments);
  t.print();
  std::printf("\nshard map: %s epoch %u digest 0x%016llx  "
              "adaptive skips %llu\n",
              o.shard_map.c_str(), epoch,
              static_cast<unsigned long long>(digest),
              static_cast<unsigned long long>(fs.adaptive_skips));
  if (fail_after > 0)
    std::printf("failover: failovers %llu rerouted %llu lost %llu "
                "probes %llu readmissions %llu recovery %.1f us\n",
                static_cast<unsigned long long>(fs.failovers),
                static_cast<unsigned long long>(fs.rerouted),
                static_cast<unsigned long long>(gen.timed_out),
                static_cast<unsigned long long>(fs.probes),
                static_cast<unsigned long long>(fs.readmissions),
                static_cast<double>(recovery_ps) / 1e6);

  if (!o.json_out.empty()) {
    std::ofstream out(o.json_out);
    if (!out) usage(("cannot open " + o.json_out).c_str());
    char dg[32];
    std::snprintf(dg, sizeof(dg), "0x%016llx",
                  static_cast<unsigned long long>(digest));
    out << "{\n  \"tool\": \"ibplace fabric\",\n  \"servers\": " << o.servers
        << ", \"width\": " << o.stripe << ", \"bulk_bytes\": " << kBulkBytes
        << ",\n  \"shard_map\": {\"strategy\": \"" << o.shard_map
        << "\", \"epoch\": " << epoch << ", \"digest\": \"" << dg
        << "\"},\n";
    json_gen_record(out, "closed", gen, cs, shed_total, "  ");
    out << ",\n  \"bulk_mbps\": " << static_cast<std::uint64_t>(mbps)
        << ", \"stripes\": " << fs.stripes
        << ", \"segments\": " << fs.segments
        << ", \"reassembled_bytes\": " << fs.reassembled_bytes
        << ", \"adaptive_skips\": " << fs.adaptive_skips;
    if (fail_after > 0)
      out << ",\n  \"failover\": {\"fail_after\": " << fail_after
          << ", \"failovers\": " << fs.failovers
          << ", \"rerouted\": " << fs.rerouted
          << ", \"lost\": " << gen.timed_out
          << ", \"probes\": " << fs.probes
          << ", \"readmissions\": " << fs.readmissions
          << ", \"recovery_us\": " << recovery_ps / 1000000 << "}";
    out << "\n}\n";
  }
  print_fault_summary(cluster);
  write_telemetry_outputs(cluster, o);
  return 0;
}

/// Minimal field extraction over the hub's own JSONL output. The writer
/// uses fixed `"key": value` formatting, so plain string search is exact
/// for this reader (it is not a general JSON parser).
double jsonl_num(const std::string& line, const std::string& key,
                 std::size_t from = 0) {
  const std::string pat = "\"" + key + "\": ";
  const std::size_t p = line.find(pat, from);
  return p == std::string::npos ? 0.0 : std::atof(line.c_str() + p + pat.size());
}

/// Per-stage queueing-vs-service-vs-transfer breakdown of a
/// --request-trace-out stream.
int cmd_trace_report(const std::string& path) {
  std::ifstream in(path);
  if (!in) usage(("cannot open " + path).c_str());
  std::string line, stages_line, slowest_line;
  std::uint64_t requests = 0, exemplars = 0;
  double slowest_ps = -1.0;
  while (std::getline(in, line)) {
    if (line.find("\"type\": \"meta\"") != std::string::npos) {
      requests = static_cast<std::uint64_t>(jsonl_num(line, "requests"));
    } else if (line.find("\"type\": \"request\"") != std::string::npos) {
      ++exemplars;
      const double lat = jsonl_num(line, "latency_ps");
      if (lat > slowest_ps) {
        slowest_ps = lat;
        slowest_line = line;
      }
    } else if (line.find("\"type\": \"stages\"") != std::string::npos) {
      stages_line = line;
    }
  }
  if (stages_line.empty())
    usage(("no stage summary in " + path +
           " (is it a --request-trace-out file?)").c_str());

  std::printf("trace report: %s\n", path.c_str());
  std::printf("requests: %llu   exemplars kept: %llu\n\n",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(exemplars));

  TextTable t({"stage", "count", "mean [us]", "p50 [us]", "p90 [us]",
               "p99 [us]", "max [us]"});
  const auto hist_row = [&](const char* label, const std::string& src,
                            std::size_t from) {
    t.add_row(label,
              static_cast<std::uint64_t>(jsonl_num(src, "count", from)),
              jsonl_num(src, "mean_us", from), jsonl_num(src, "p50_us", from),
              jsonl_num(src, "p90_us", from), jsonl_num(src, "p99_us", from),
              jsonl_num(src, "max_us", from));
  };
  // Walk the stage objects in order; each opens with {"stage": "<name>".
  double stage_weighted_us = 0.0;
  const std::string open = "{\"stage\": \"";
  std::size_t p = stages_line.find("\"stages\": [");
  while (p != std::string::npos &&
         (p = stages_line.find(open, p)) != std::string::npos) {
    const std::size_t name0 = p + open.size();
    const std::size_t name1 = stages_line.find('"', name0);
    const std::string name = stages_line.substr(name0, name1 - name0);
    hist_row(name.c_str(), stages_line, name1);
    stage_weighted_us += jsonl_num(stages_line, "count", name1) *
                         jsonl_num(stages_line, "mean_us", name1);
    p = name1;
  }
  hist_row("lock_arbitration", stages_line,
           stages_line.find("\"arbitration\": {"));
  hist_row("end-to-end", stages_line, stages_line.find("\"e2e\": {"));
  t.print();

  const std::size_t e2e = stages_line.find("\"e2e\": {");
  const double e2e_weighted_us = jsonl_num(stages_line, "count", e2e) *
                                 jsonl_num(stages_line, "mean_us", e2e);
  const double delta =
      e2e_weighted_us > 0.0
          ? (stage_weighted_us - e2e_weighted_us) / e2e_weighted_us * 100.0
          : 0.0;
  std::printf("\nbreakdown: stage total %.1f us vs end-to-end %.1f us "
              "(delta %+.2f %%)\n",
              stage_weighted_us, e2e_weighted_us, delta);

  if (!slowest_line.empty()) {
    std::printf("slowest exemplar: trace %llu, %.1f us:",
                static_cast<unsigned long long>(
                    jsonl_num(slowest_line, "trace")),
                slowest_ps / 1e6);
    std::size_t s = slowest_line.find("\"spans\": [");
    while (s != std::string::npos &&
           (s = slowest_line.find(open, s)) != std::string::npos) {
      const std::size_t n0 = s + open.size();
      const std::size_t n1 = slowest_line.find('"', n0);
      std::printf(" %s=%.1fus",
                  slowest_line.substr(n0, n1 - n0).c_str(),
                  jsonl_num(slowest_line, "dur_ps", n1) / 1e6);
      s = n1;
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_list_policies() {
  for (const placement::PolicyInfo& info :
       placement::registered_policies()) {
    std::printf("%-20s %.*s\n", std::string(info.name).c_str(),
                static_cast<int>(info.description.size()),
                info.description.data());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "--list-policies") return cmd_list_policies();
  try {
    if (cmd == "info") return cmd_info(parse_options(argc, argv, 2));
    if (cmd == "reg") return cmd_reg(parse_options(argc, argv, 2));
    if (cmd == "imb") {
      if (argc < 3) usage("imb needs a mode");
      Options o = parse_options(argc, argv, 3);
      if (o.nodes == 2 && o.rpn == 4) o.rpn = 1;  // friendlier default
      return cmd_imb(argv[2], o);
    }
    if (cmd == "nas") {
      if (argc < 3) usage("nas needs a kernel");
      return cmd_nas(argv[2], parse_options(argc, argv, 3));
    }
    if (cmd == "rpc") {
      if (argc < 3) usage("rpc needs a mode (open|closed)");
      Options o = parse_options(argc, argv, 3);
      if (o.nodes == 2 && o.rpn == 4) o.rpn = 1;  // friendlier default
      return cmd_rpc(argv[2], o);
    }
    if (cmd == "fabric") return cmd_fabric(parse_options(argc, argv, 2));
    if (cmd == "trace-report") {
      if (argc < 3) usage("trace-report needs a trace JSONL file");
      return cmd_trace_report(argv[2]);
    }
  } catch (const SimError& e) {
    std::fprintf(stderr, "simulation error: %s\n", e.what());
    return 1;
  }
  usage(("unknown command " + cmd).c_str());
}
