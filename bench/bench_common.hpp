#pragma once

// Shared helpers for the reproduction benches: a raw-verbs work-request
// timing fixture (Figures 3/4, post-overhead table) and small utilities.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "ibp/common/stats.hpp"
#include "ibp/common/table.hpp"
#include "ibp/common/types.hpp"
#include "ibp/core/cluster.hpp"
#include "ibp/cpu/timebase.hpp"
#include "ibp/hca/types.hpp"
#include "ibp/placement/placement.hpp"
#include "ibp/platform/platform.hpp"
#include "ibp/telemetry/sink.hpp"

namespace ibp::bench {

/// Sender-side timing of one work-request configuration, averaged over
/// iterations: `post` covers building/ringing the WQE (step 1 of §4),
/// `poll` covers transfer + completion + notification (steps 2-4).
struct WrTiming {
  TimePs post = 0;
  TimePs poll = 0;
  TimePs total() const { return post + poll; }
};

struct WrParams {
  std::uint32_t sges = 1;        // scatter-gather elements per WR
  std::uint32_t sge_size = 64;   // bytes per element
  std::uint32_t offset = 0;      // start offset of each buffer in its page
  int iterations = 40;
  int warmup = 5;
  mem::PageKind page_kind = mem::PageKind::Small;
};

/// Measure an RC send between two single-rank nodes of `platform`.
/// Each SGE lives in its own page at `offset`, matching the paper's §4
/// test case parameters (offset, sge_size, sges).
inline WrTiming measure_send(const platform::PlatformConfig& platform,
                             const WrParams& p) {
  core::ClusterConfig cfg;
  cfg.platform = platform;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);

  WrTiming out;
  cluster.run([&](core::RankEnv& env) {
    auto& vctx = env.verbs();
    const std::uint64_t page = page_size_of(p.page_kind);
    const std::uint64_t region_bytes =
        static_cast<std::uint64_t>(p.sges) * page + page;
    mem::Mapping& m = env.space().map(region_bytes, p.page_kind);
    const verbs::Mr mr = vctx.reg_mr(m.va_base, m.length);

    auto make_sges = [&](std::uint32_t len) {
      std::vector<hca::Sge> sges;
      for (std::uint32_t i = 0; i < p.sges; ++i)
        sges.push_back({m.va_base + i * page + p.offset, len, mr.lkey});
      return sges;
    };

    hca::QueuePair* qp = env.state().qp_to[1 - env.rank()];
    auto q = vctx.wrap_qp(*qp);

    if (env.rank() == 1) {
      // Receiver: prepost one matching multi-SGE receive per iteration.
      for (int it = 0; it < p.iterations + p.warmup; ++it) {
        hca::RecvWr wr;
        wr.wr_id = static_cast<std::uint64_t>(it);
        wr.sges = make_sges(static_cast<std::uint32_t>(page - p.offset));
        vctx.post_recv(q, wr);
      }
      for (int it = 0; it < p.iterations + p.warmup; ++it) vctx.wait_recv();
      return;
    }

    // Sender.
    RunningStats post_stats, poll_stats;
    for (int it = 0; it < p.iterations + p.warmup; ++it) {
      hca::SendWr wr;
      wr.wr_id = static_cast<std::uint64_t>(it);
      wr.opcode = hca::Opcode::Send;
      wr.sges = make_sges(p.sge_size);
      const TimePs t0 = env.now();
      vctx.post_send(q, wr);
      const TimePs t1 = env.now();
      vctx.wait_send();
      const TimePs t2 = env.now();
      if (it >= p.warmup) {
        post_stats.add(static_cast<double>(t1 - t0));
        poll_stats.add(static_cast<double>(t2 - t1));
      }
    }
    out.post = static_cast<TimePs>(post_stats.mean());
    out.poll = static_cast<TimePs>(poll_stats.mean());
  });
  return out;
}

inline std::string human_bytes(std::uint64_t b) {
  if (b >= kMiB && b % kMiB == 0) return std::to_string(b / kMiB) + " MB";
  if (b >= kKiB && b % kKiB == 0) return std::to_string(b / kKiB) + " KB";
  return std::to_string(b) + " B";
}

inline double pct_change(double baseline, double improved) {
  return (baseline - improved) / baseline * 100.0;
}

/// Shared placement-policy sweep: run `measure` once per registered
/// placement policy and print a table of the metric plus its change
/// relative to paper-default. New policies registered in ibp::placement
/// show up in every bench using this helper with no bench changes.
inline void run_policy_sweep(
    const char* metric_label,
    const std::function<TimePs(const placement::PolicyInfo&)>& measure) {
  TextTable t({"placement policy", metric_label, "vs paper-default"});
  TimePs ref = 0;
  for (const placement::PolicyInfo& info :
       placement::registered_policies()) {
    const TimePs v = measure(info);
    if (info.name == "paper-default") ref = v;
    char rel[32];
    if (ref != 0 && info.name != "paper-default") {
      std::snprintf(rel, sizeof rel, "%+.1f %%",
                    pct_change(static_cast<double>(ref),
                               static_cast<double>(v)));
    } else {
      std::snprintf(rel, sizeof rel, "-");
    }
    t.add_row(std::string(info.name), ps_to_us(v), std::string(rel));
  }
  t.print();
}

/// One named bench phase and the metric movement it caused.
struct PhaseDelta {
  std::string name;
  telemetry::MetricsDelta delta;
};

/// Phase-scoped metrics capture over a cluster's registry. Construct
/// before the measured work, then call phase(name) at each boundary
/// (e.g. from ImbConfig::phase_hook): the delta since the previous
/// boundary — or construction — is recorded under that name. Used by
/// benches to emit mpiP-style per-phase breakdowns in --json mode.
class TelemetryScope {
 public:
  explicit TelemetryScope(const telemetry::MetricsRegistry& reg)
      : reg_(&reg), last_(reg.snapshot()) {}

  /// Close the running phase under `name` and start the next one.
  void phase(std::string name) {
    telemetry::MetricsSnapshot now = reg_->snapshot();
    phases_.push_back({std::move(name), telemetry::diff(last_, now)});
    last_ = std::move(now);
  }

  const std::vector<PhaseDelta>& phases() const { return phases_; }

 private:
  const telemetry::MetricsRegistry* reg_;
  telemetry::MetricsSnapshot last_;
  std::vector<PhaseDelta> phases_;
};

/// JSON object {"phase name": {"metric": {before, after, delta}}, ...}
/// with continuation lines prefixed by `indent`.
inline void write_phases_json(const std::vector<PhaseDelta>& phases,
                              std::ostream& os, std::string_view indent) {
  os << "{";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << indent << "  \""
       << sim::Tracer::escaped(phases[i].name) << "\": ";
    telemetry::write_delta_json(phases[i].delta, os,
                                std::string(indent) + "  ");
  }
  if (!phases.empty()) os << "\n" << indent;
  os << "}";
}

/// A standalone PlacementEngine for heap-level benches (no cluster): the
/// named policy against a hugepage-enabled context.
inline placement::PlacementEngine make_bench_engine(
    std::string_view policy_name, std::uint64_t huge_threshold = 32 * kKiB) {
  auto policy = placement::make_policy(policy_name);
  IBP_CHECK(policy != nullptr, "unknown policy in bench sweep");
  placement::PolicyContext ctx;
  ctx.huge_threshold = huge_threshold;
  ctx.hugepages_enabled = true;
  return placement::PlacementEngine(std::move(policy), ctx);
}

}  // namespace ibp::bench
