// EXT-THREAD — extension: server thread scaling under the three QP/CQ
// share modes.
//
// A saturating closed-loop client drives one RPC server whose worker
// pool is swept over T in {1, 2, 4, 8} tracks, once per share mode:
//
//   * shared-locked — all workers post and poll one QP/CQ pair behind a
//     virtual lock: every verb pays lock acquisition, and consecutive
//     posts from different tracks pay the cache-line bounce of the
//     lock + doorbell moving between cores. Throughput flattens as T
//     grows because the verbs path serializes even while service time
//     overlaps.
//   * per-thread-qp — each worker owns a private response ring (QP and
//     slots), so posts never arbitrate; the cost is T x the
//     registration footprint, visible to the placement layer.
//   * dispatcher — workers hand finished responses to the dispatcher
//     track at a fixed hand-off cost; only the dispatcher touches the
//     QP, so there is no arbitration and batches aggregate across
//     workers, at the price of the hand-off latency on every response.
//
// Expected ordering at high T: per-thread-qp > dispatcher >
// shared-locked. The thread-smoke CI job asserts per-thread-qp beats
// shared-locked by >= 1.5x at T=4 and diffs two runs byte-for-byte.
//
// Optional arguments:
//   --short       fewer requests (CI smoke mode)
//   --json=PATH   also write results as JSON
//   --request-trace-out=PATH  enable per-request tracing; the file holds
//                 the last sweep cell's JSONL stream

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/rpc/rpc.hpp"
#include "ibp/telemetry/reqtrace.hpp"

using namespace ibp;

namespace {

std::string g_trace_out;  // --request-trace-out (empty = tracing off)

constexpr std::uint32_t kThreads[] = {1, 2, 4, 8};
constexpr hca::ShareMode kModes[] = {hca::ShareMode::SharedLocked,
                                     hca::ShareMode::PerThreadQp,
                                     hca::ShareMode::Dispatcher};

struct Cell {
  loadgen::GenResult gen;
  rpc::ServerStats server;
  TimePs makespan = 0;
  TimePs qp_contention_ps = 0;
  std::uint64_t cq_poll_contention = 0;
};

constexpr std::uint32_t kClients = 4;

/// One sweep point: rank 0 serves with a T-worker pool in `mode`; four
/// client ranks keep closed-loop workers pending against it, so the
/// server — not any single generator's ingest path — sets the pace.
Cell run_cell(std::uint32_t threads, hca::ShareMode mode,
              std::uint64_t requests) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 1 + kClients;
  cfg.ranks_per_node = 1;
  if (!g_trace_out.empty()) cfg.request_trace.enabled = true;
  core::Cluster cluster(cfg);
  Cell out;
  loadgen::GenResult gens[kClients];
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    rpc::RpcConfig rc;
    rc.max_payload = 256;  // right-size the slot rings to the workload
    // Short application service: the verbs path, not the handler, must
    // dominate so the share-mode arbitration costs are what the sweep
    // measures.
    rc.service_base = ns(200);
    rc.service_per_byte_ps = 0;
    rc.server_workers = threads;
    rc.share_mode = mode;
    if (env.rank() == 0) {
      // Per-request WRs on the response path: batching would amortise
      // posting across requests and hide exactly the per-post
      // arbitration cost this sweep measures.
      rc.batching = false;
      std::vector<int> clients(kClients);
      for (std::uint32_t i = 0; i < kClients; ++i)
        clients[i] = static_cast<int>(1 + i);
      rpc::RpcServer server(comm, clients, rc);
      server.serve();
      out.server = server.stats();
      const hca::AdapterStats& ad = env.state().node->adapter.stats();
      out.qp_contention_ps = ad.qp_contention_ps;
      out.cq_poll_contention = ad.cq_poll_contention;
      return;
    }
    // Clients keep request batching on: submission stays cheap per
    // request, so the generator fleet outruns every server config.
    rpc::RpcClient client(comm, 0, rc);
    loadgen::Workload w;
    w.request_bytes = 128;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 8;  // per client rank; 32 total across the fleet
    cc.requests = requests / kClients;
    cc.warmup = requests / (4 * kClients);
    cc.seed = 13 + static_cast<std::uint64_t>(env.rank());
    cc.tracked_workers = true;  // honest per-worker submit/wait tracks
    out.gen = loadgen::run_closed_loop(client, w, cc);
    gens[env.rank() - 1] = out.gen;
    client.close();
  });
  // Aggregate the fleet: total completions over the widest client span.
  out.gen = {};
  for (const loadgen::GenResult& g : gens) {
    out.gen.issued += g.issued;
    out.gen.ok += g.ok;
    out.gen.shed += g.shed;
    out.gen.rejected += g.rejected;
    out.gen.trace_hash ^= g.trace_hash;
    out.gen.latency_ns.merge(g.latency_ns);
    out.gen.span = std::max(out.gen.span, g.span);
  }
  out.makespan = cluster.makespan();
  if (!g_trace_out.empty()) {
    // Overwrite each cell; the last sweep cell's stream wins.
    std::ofstream tout(g_trace_out);
    if (cluster.request_tracer() != nullptr)
      cluster.request_tracer()->write_jsonl(tout);
  }
  return out;
}

double rps(const Cell& c) { return c.gen.achieved_rps(); }

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--request-trace-out=", 20) == 0) {
      g_trace_out = argv[i] + 20;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  const std::uint64_t requests = short_mode ? 1200 : 4800;

  std::printf("EXT-THREAD — worker tracks vs QP/CQ share mode\n\n");
  std::printf("  %-14s", "T");
  for (std::uint32_t t : kThreads) std::printf("  %10u", t);
  std::printf("\n");

  Cell cells[3][4];
  for (std::size_t m = 0; m < 3; ++m) {
    std::printf("  %-14s", hca::share_mode_name(kModes[m]));
    for (std::size_t ti = 0; ti < 4; ++ti) {
      cells[m][ti] = run_cell(kThreads[ti], kModes[m], requests);
      std::printf("  %7.0f k/s", rps(cells[m][ti]) / 1e3);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  const double t4_speedup =
      rps(cells[0][2]) > 0 ? rps(cells[1][2]) / rps(cells[0][2]) : 0.0;
  std::printf(
      "\n  per-thread-qp vs shared-locked at T=4: %.2fx "
      "(contention charged: %.1f us, %llu cq polls)\n",
      t4_speedup,
      static_cast<double>(cells[0][2].qp_contention_ps) / 1e6,
      static_cast<unsigned long long>(cells[0][2].cq_poll_contention));

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"ext_thread_scale\",\n  \"requests\": "
        << requests << ",\n  \"client_ranks\": " << kClients
        << ", \"client_workers\": 32,\n  \"modes\": {";
    for (std::size_t m = 0; m < 3; ++m) {
      out << (m == 0 ? "\n" : ",\n") << "    \""
          << hca::share_mode_name(kModes[m]) << "\": {";
      for (std::size_t ti = 0; ti < 4; ++ti) {
        const Cell& c = cells[m][ti];
        char hash[32];
        std::snprintf(hash, sizeof(hash), "0x%016llx",
                      static_cast<unsigned long long>(c.gen.trace_hash));
        out << (ti == 0 ? "\n" : ",\n") << "      \"t" << kThreads[ti]
            << "\": {\"ok\": " << c.gen.ok << ", \"shed\": " << c.gen.shed
            << ", \"achieved_rps\": "
            << static_cast<std::uint64_t>(rps(c))
            << ", \"p99_us\": " << c.gen.latency_ns.p99() / 1000.0
            << ", \"makespan_us\": " << c.makespan / 1000000.0
            << ",\n             \"qp_contention_us\": "
            << static_cast<double>(c.qp_contention_ps) / 1e6
            << ", \"cq_poll_contention\": " << c.cq_poll_contention
            << ", \"resp_batches\": " << c.server.resp_batches
            << ", \"trace_hash\": \"" << hash << "\"}";
      }
      out << "\n    }";
    }
    out << "\n  },\n  \"t4_speedup_perthread_vs_shared\": " << t4_speedup
        << "\n}\n";
  }
  return 0;
}
