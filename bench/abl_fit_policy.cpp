// ABL-FIT — ablation of the §3.2 #2 design choice: "The library uses an
// address-ordered first fit allocator, which shows best performance
// values due to a good locality (see Wilson et al.)". Compares
// address-ordered first fit (the paper's choice) against best fit and an
// unordered LIFO first fit on the Abinit-like trace, reporting cost,
// fragmentation (free-list block count / mapped bytes) and the locality
// proxy the paper cares about: how tightly the live blocks pack into
// hugepages.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ibp/hugepage/heap.hpp"
#include "ibp/workloads/alloc_trace.hpp"

using namespace ibp;

namespace {

struct Run {
  TimePs cost = 0;
  std::uint64_t scan_steps = 0;
  std::uint64_t free_blocks = 0;
  std::uint64_t mapped = 0;
  std::uint64_t live_peak = 0;
};

Run replay(hugepage::FitPolicy fit,
           const std::vector<workloads::TraceOp>& ops) {
  mem::PhysicalMemory phys(1 * kGiB, 512, 7);
  mem::HugeTlbFs fs(&phys, 512, 2);
  mem::AddressSpace space(&phys, &fs);
  hugepage::HugeHeapConfig cfg;
  cfg.fit = fit;
  hugepage::HugeHeap heap(space, fs, cfg);

  std::vector<VirtAddr> slots(workloads::trace_slot_count());
  Run r;
  for (const auto& op : ops) {
    if (op.kind == workloads::TraceOp::Kind::Malloc) {
      const auto res = heap.allocate(op.size);
      IBP_CHECK(res.addr != 0);
      slots[op.slot] = res.addr;
      r.cost += res.cost;
    } else {
      r.cost += heap.deallocate(slots[op.slot]).cost;
    }
  }
  heap.check_invariants();
  r.scan_steps = heap.stats().scan_steps;
  r.free_blocks = heap.free_blocks();
  r.mapped = heap.stats().bytes_mapped;
  r.live_peak = heap.stats().bytes_live_peak;
  return r;
}

/// Replay the trace through the full library with a placement policy
/// deciding backing and chunking per allocation.
TimePs replay_policy(const ibp::placement::PolicyInfo& info,
                     const std::vector<workloads::TraceOp>& ops) {
  mem::PhysicalMemory phys(1 * kGiB, 512, 7);
  mem::HugeTlbFs fs(&phys, 512, 2);
  mem::AddressSpace space(&phys, &fs);
  placement::PlacementEngine engine = bench::make_bench_engine(info.name);
  hugepage::Library lib(space, fs, {}, &engine);

  std::vector<VirtAddr> slots(workloads::trace_slot_count());
  TimePs cost = 0;
  for (const auto& op : ops) {
    if (op.kind == workloads::TraceOp::Kind::Malloc) {
      const auto res = lib.malloc(op.size);
      IBP_CHECK(res.addr != 0);
      slots[op.slot] = res.addr;
      cost += res.cost;
    } else {
      cost += lib.free(slots[op.slot]).cost;
    }
  }
  lib.check_invariants();
  return cost;
}

}  // namespace

int main() {
  std::printf("ABL-FIT: fit-policy ablation on the Abinit-like trace\n\n");
  workloads::TraceConfig tcfg;
  tcfg.odd_fraction = 0.25;  // mixed sizes stress placement quality
  const auto ops = workloads::make_abinit_trace(tcfg);

  TextTable t({"policy", "cost [us]", "scan steps", "free blocks (end)",
               "hugepages mapped", "peak live MB"});
  const struct {
    hugepage::FitPolicy fit;
    const char* name;
  } policies[] = {
      {hugepage::FitPolicy::AddressOrderedFirstFit,
       "address-ordered first fit (paper)"},
      {hugepage::FitPolicy::BestFit, "best fit"},
      {hugepage::FitPolicy::LifoFirstFit, "LIFO first fit"},
  };
  for (const auto& p : policies) {
    const Run r = replay(p.fit, ops);
    t.add_row(p.name, ps_to_us(r.cost), r.scan_steps, r.free_blocks,
              r.mapped / kHugePageSize,
              static_cast<double>(r.live_peak) / (1 << 20));
  }
  t.print();
  std::printf("\n(lower mapped-hugepage count at equal peak = better "
              "locality: buffers share hugepages, the paper's advantage "
              "over libhugepagealloc)\n");

  std::printf("\ntrace cost by placement policy (full library, policy "
              "decides backing/chunking):\n\n");
  bench::run_policy_sweep("trace cost [us]",
                          [&](const placement::PolicyInfo& info) {
                            return replay_policy(info, ops);
                          });
  return 0;
}
