// ABL-SGE — the paper's §7 future-work feature, implemented and measured:
// sending a strided datatype (k non-contiguous pieces) through the MPI
// layer either by packing into a contiguous staging buffer (MPI_Pack +
// send; the state of all 2006 InfiniBand MPIs) or as ONE work request
// whose scatter-gather list the NIC walks (§4's proposal).
//
// Shape target: for small messages the SGE path wins (no CPU pack copy,
// one WR, one CQE), consistent with Figure 3's sub-linear SGE scaling.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ibp/mpi/comm.hpp"

using namespace ibp;

namespace {

enum class Mode { Pack, Sge, Separate };

TimePs measure(Mode mode, std::uint32_t pieces, std::uint32_t piece_bytes,
               const std::string& policy = "paper-default") {
  core::ClusterConfig cfg;
  cfg.platform = platform::systemp_gx_ehca();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.placement_policy = policy;
  core::Cluster cluster(cfg);
  mpi::CommConfig ccfg;
  ccfg.sge_gather = mode == Mode::Sge;
  constexpr int kIters = 30;
  constexpr int kWarmup = 5;

  TimePs elapsed = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    // Pieces live one per page, like fields scattered through a struct
    // array.
    const std::uint64_t total = static_cast<std::uint64_t>(pieces) *
                                piece_bytes;
    if (env.rank() == 0) {
      std::vector<mpi::Seg> segs;
      const VirtAddr base = env.alloc(pieces * kSmallPageSize * 2);
      for (std::uint32_t p = 0; p < pieces; ++p)
        segs.push_back({base + p * kSmallPageSize, piece_bytes});
      for (int it = 0; it < kIters + kWarmup; ++it) {
        if (it == kWarmup) elapsed = env.now();
        if (mode == Mode::Separate) {
          std::vector<mpi::Req> rs;
          for (const auto& seg : segs)
            rs.push_back(comm.isend(seg.addr, seg.len, 1, 7));
          comm.waitall(rs);
        } else {
          mpi::Req r = comm.isend_gather(segs, 1, 7);
          comm.wait(r);
        }
        // Wait for the ack ping so iterations do not pipeline.
        comm.recv(base, 8, 1, 8);
      }
      elapsed = (env.now() - elapsed) / kIters;
    } else {
      const VirtAddr buf = env.alloc(std::max<std::uint64_t>(total, 64) + 64);
      for (int it = 0; it < kIters + kWarmup; ++it) {
        if (mode == Mode::Separate) {
          std::uint64_t off = 0;
          for (std::uint32_t p = 0; p < pieces; ++p) {
            comm.recv(buf + off, piece_bytes, 0, 7);
            off += piece_bytes;
          }
        } else {
          comm.recv(buf, total, 0, 7);
        }
        comm.send(buf, 8, 0, 8);
      }
    }
  });
  return elapsed;
}

}  // namespace

int main() {
  std::printf("ABL-SGE: strided send via pack-and-send vs NIC scatter/"
              "gather (platform=systemp, round-trip us)\n\n");
  TextTable t({"pieces x bytes", "separate sends [us]", "pack+send [us]",
               "SGE gather [us]", "SGE vs separate", "SGE vs pack"});
  const std::uint32_t shapes[][2] = {
      {2, 64}, {4, 64}, {8, 64}, {4, 256}, {8, 256}, {4, 1024}, {8, 512}};
  for (const auto& sh : shapes) {
    const TimePs sep = measure(Mode::Separate, sh[0], sh[1]);
    const TimePs pack = measure(Mode::Pack, sh[0], sh[1]);
    const TimePs sge = measure(Mode::Sge, sh[0], sh[1]);
    char label[32], r1[32], r2[32];
    std::snprintf(label, sizeof label, "%u x %u B", sh[0], sh[1]);
    std::snprintf(r1, sizeof r1, "%.2fx",
                  static_cast<double>(sep) / static_cast<double>(sge));
    std::snprintf(r2, sizeof r2, "%.2fx",
                  static_cast<double>(pack) / static_cast<double>(sge));
    t.add_row(std::string(label), ps_to_us(sep), ps_to_us(pack),
              ps_to_us(sge), std::string(r1), std::string(r2));
  }
  t.print();
  std::printf("\n(paper §4/§7: MPI implementations 'may benefit in a "
              "perceptible way' from mapping Pack/Unpack onto SGE lists)\n");

  std::printf("\nSGE gather 8 x 256 B by placement policy:\n\n");
  bench::run_policy_sweep(
      "round-trip [us]", [](const placement::PolicyInfo& info) {
        return measure(Mode::Sge, 8, 256, std::string(info.name));
      });
  return 0;
}
