// EXT-SCALE — extension: does the paper's hugepage benefit survive scale?
// The 2006 evaluation stops at 2 nodes; here the same kernels run on 2/4/8
// nodes (4 ranks each) over a 2:1-oversubscribed fat-tree (pods of 2
// nodes, one core link per pod pair), the configuration where fabric
// contention should amplify any per-byte adapter savings.

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/workloads/nas.hpp"

using namespace ibp;

namespace {

workloads::NasResult run_one(int nodes, const char* kernel, bool huge) {
  core::ClusterConfig cfg;
  cfg.platform = platform::systemp_gx_ehca();
  cfg.nodes = nodes;
  cfg.ranks_per_node = 4;
  cfg.hugepage_library = huge;
  if (nodes > 2) {
    cfg.fabric_pod_nodes = 2;
    cfg.fabric_core_links = nodes / 4;  // 2:1 oversubscription
  }
  core::Cluster cluster(cfg);
  return workloads::run_nas(kernel, cluster);
}

}  // namespace

int main() {
  std::printf("EXT-SCALE: hugepage benefit vs node count "
              "(systemp, 4 ranks/node, 2:1 oversubscribed beyond 2 "
              "nodes)\n\n");
  for (const char* kernel : {"mg", "cg"}) {
    std::printf("kernel=%s\n", kernel);
    TextTable t({"nodes", "ranks", "comm share %", "comm impr %",
                 "overall impr %", "verified"});
    for (int nodes : {2, 4, 8}) {
      const auto base = run_one(nodes, kernel, false);
      const auto huge = run_one(nodes, kernel, true);
      t.add_row(nodes, nodes * 4,
                100.0 * static_cast<double>(base.comm_avg) /
                    static_cast<double>(base.total),
                bench::pct_change(static_cast<double>(base.comm_avg),
                                  static_cast<double>(huge.comm_avg)),
                bench::pct_change(static_cast<double>(base.total),
                                  static_cast<double>(huge.total)),
                base.verified && huge.verified ? "yes" : "NO");
    }
    t.print();
    std::printf("\n");
  }
  return 0;
}
