// ABL-ALIGN — the paper's second small-buffer strategy ("we consider an
// aligned data placement", §1/§4) at the MPI level: gather-send latency
// when the NIC reads user buffers directly (SGE path) with buffers placed
// by memalign(64) versus buffers deliberately shifted to awkward offsets.
// This is Figure 4's mechanism surfaced through the allocator API.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ibp/mpi/comm.hpp"

using namespace ibp;

namespace {

TimePs measure(bool aligned, std::uint32_t pieces, std::uint32_t piece_bytes,
               const std::string& policy = "paper-default") {
  core::ClusterConfig cfg;
  cfg.platform = platform::systemp_gx_ehca();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.placement_policy = policy;
  core::Cluster cluster(cfg);
  mpi::CommConfig ccfg;
  ccfg.sge_gather = true;
  constexpr int kIters = 30;
  constexpr int kWarmup = 5;

  TimePs elapsed = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    const std::uint64_t total =
        static_cast<std::uint64_t>(pieces) * piece_bytes;
    if (env.rank() == 0) {
      std::vector<mpi::Seg> segs;
      for (std::uint32_t p = 0; p < pieces; ++p) {
        // Aligned: memalign(64). Misaligned: nudge each piece to a
        // different odd offset inside its cache line / burst window.
        const auto r = env.lib().memalign(64, piece_bytes + 128);
        env.sim().advance(r.cost);
        const VirtAddr addr =
            aligned ? r.addr : r.addr + 20 + (p % 6) * 17;
        segs.push_back({addr, piece_bytes});
      }
      const VirtAddr ack = env.alloc(64);
      for (int it = 0; it < kIters + kWarmup; ++it) {
        if (it == kWarmup) elapsed = env.now();
        mpi::Req r = comm.isend_gather(segs, 1, 7);
        comm.wait(r);
        comm.recv(ack, 8, 1, 8);
      }
      elapsed = (env.now() - elapsed) / kIters;
    } else {
      const VirtAddr buf = env.alloc(std::max<std::uint64_t>(total, 64) + 64);
      for (int it = 0; it < kIters + kWarmup; ++it) {
        comm.recv(buf, total, 0, 7);
        comm.send(buf, 8, 0, 8);
      }
    }
  });
  return elapsed;
}

}  // namespace

int main() {
  std::printf("ABL-ALIGN: SGE gather-send with memalign(64) buffers vs "
              "odd-offset buffers (platform=systemp, round-trip us)\n\n");
  TextTable t({"pieces x bytes", "misaligned [us]", "aligned [us]",
               "saved"});
  const std::uint32_t shapes[][2] = {
      {2, 32}, {4, 32}, {8, 32}, {4, 64}, {8, 64}, {4, 128}, {8, 128}};
  for (const auto& sh : shapes) {
    const TimePs mis = measure(false, sh[0], sh[1]);
    const TimePs al = measure(true, sh[0], sh[1]);
    char label[32], rel[32];
    std::snprintf(label, sizeof label, "%u x %u B", sh[0], sh[1]);
    std::snprintf(rel, sizeof rel, "%.1f %%",
                  (1.0 - static_cast<double>(al) / static_cast<double>(mis)) *
                      100.0);
    t.add_row(std::string(label), ps_to_us(mis), ps_to_us(al),
              std::string(rel));
  }
  t.print();
  std::printf("\n(§4: 'the memory access of the InfiniBand adapter ... is "
              "optimized for certain offsets' — aligned placement turns "
              "that into free latency)\n");

  std::printf("\nmisaligned 8 x 64 B gather by placement policy:\n\n");
  bench::run_policy_sweep(
      "round-trip [us]", [](const placement::PolicyInfo& info) {
        return measure(false, 8, 64, std::string(info.name));
      });
  return 0;
}
