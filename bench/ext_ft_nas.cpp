// EXT-FT — extension beyond the paper's evaluation: the placement study
// applied to an alltoall-dominated 3D-FFT kernel (NAS FT's pattern). FT
// moves nearly its whole dataset through the network every transpose, so
// it probes the bandwidth end of the spectrum the paper's five kernels
// leave thin. Expectation from the model: gains mirror IS (transfer-
// bound; adapter translation savings only where the DMA side binds).

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/workloads/nas.hpp"

using namespace ibp;

int main() {
  std::printf("EXT-FT: 3D-FFT kernel with the hugepage library (positive "
              "= hugepages faster)\n\n");
  TextTable t({"platform", "comm impr %", "other impr %", "overall impr %",
               "verified"});
  for (const auto& plat : {platform::opteron_pcie_infinihost(),
                           platform::systemp_gx_ehca()}) {
    workloads::NasResult r[2];
    for (int huge = 0; huge < 2; ++huge) {
      core::ClusterConfig cfg;
      cfg.platform = plat;
      cfg.nodes = 2;
      cfg.ranks_per_node = 4;
      cfg.hugepage_library = huge != 0;
      core::Cluster cluster(cfg);
      r[huge] = workloads::run_ft(cluster);
    }
    t.add_row(plat.name,
              bench::pct_change(static_cast<double>(r[0].comm_avg),
                                static_cast<double>(r[1].comm_avg)),
              bench::pct_change(static_cast<double>(r[0].other_avg),
                                static_cast<double>(r[1].other_avg)),
              bench::pct_change(static_cast<double>(r[0].total),
                                static_cast<double>(r[1].total)),
              r[0].verified && r[1].verified ? "yes" : "NO");
  }
  t.print();
  return 0;
}
