// EXT-FT — extension beyond the paper's evaluation: the placement study
// applied to an alltoall-dominated 3D-FFT kernel (NAS FT's pattern). FT
// moves nearly its whole dataset through the network every transpose, so
// it probes the bandwidth end of the spectrum the paper's five kernels
// leave thin. Expectation from the model: gains mirror IS (transfer-
// bound; adapter translation savings only where the DMA side binds).
//
// Optional arguments:
//   --json=PATH   per-platform improvements plus per-iteration "phases"
//                 metric deltas (captured on the hugepage run via
//                 NasScale::iter_hook)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ibp/workloads/nas.hpp"

using namespace ibp;

namespace {

struct PlatformRecord {
  std::string platform;
  double comm = 0.0;
  double other = 0.0;
  double overall = 0.0;
  bool verified = false;
  std::vector<bench::PhaseDelta> phases;  // per-iteration, hugepage run
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  std::printf("EXT-FT: 3D-FFT kernel with the hugepage library (positive "
              "= hugepages faster)\n\n");
  TextTable t({"platform", "comm impr %", "other impr %", "overall impr %",
               "verified"});
  std::vector<PlatformRecord> records;
  for (const auto& plat : {platform::opteron_pcie_infinihost(),
                           platform::systemp_gx_ehca()}) {
    workloads::NasResult r[2];
    std::vector<bench::PhaseDelta> phases;
    for (int huge = 0; huge < 2; ++huge) {
      core::ClusterConfig cfg;
      cfg.platform = plat;
      cfg.nodes = 2;
      cfg.ranks_per_node = 4;
      cfg.hugepage_library = huge != 0;
      core::Cluster cluster(cfg);
      workloads::NasScale s;
      // Per-iteration metric deltas on the hugepage run: the hook runs
      // on rank 0 at each iteration boundary, where a registry snapshot
      // is race-free.
      bench::TelemetryScope scope(cluster.metrics());
      if (huge != 0 && !json_path.empty()) {
        s.iter_hook = [&scope](int iter) {
          scope.phase("iter " + std::to_string(iter));
        };
      }
      r[huge] = workloads::run_ft(cluster, s);
      if (huge != 0) phases = scope.phases();
    }
    PlatformRecord rec;
    rec.platform = plat.name;
    rec.comm = bench::pct_change(static_cast<double>(r[0].comm_avg),
                                 static_cast<double>(r[1].comm_avg));
    rec.other = bench::pct_change(static_cast<double>(r[0].other_avg),
                                  static_cast<double>(r[1].other_avg));
    rec.overall = bench::pct_change(static_cast<double>(r[0].total),
                                    static_cast<double>(r[1].total));
    rec.verified = r[0].verified && r[1].verified;
    rec.phases = std::move(phases);
    t.add_row(rec.platform, rec.comm, rec.other, rec.overall,
              rec.verified ? "yes" : "NO");
    records.push_back(std::move(rec));
  }
  t.print();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"ext_ft_nas\",\n  \"platforms\": {";
    for (std::size_t p = 0; p < records.size(); ++p) {
      const PlatformRecord& r = records[p];
      out << (p == 0 ? "\n" : ",\n") << "    \""
          << sim::Tracer::escaped(r.platform)
          << "\": {\"comm_impr_pct\": " << r.comm
          << ", \"other_impr_pct\": " << r.other
          << ", \"overall_impr_pct\": " << r.overall << ", \"verified\": "
          << (r.verified ? "true" : "false") << ",\n      \"phases\": ";
      bench::write_phases_json(r.phases, out, "      ");
      out << "}";
    }
    out << "\n  }\n}\n";
  }
  return 0;
}
