// TAB-XEON — the §5.1 Xeon/PCI-X driver experiment: lazy deregistration
// on, buffers in hugepages; stock OpenIB driver (adapter sees pretend
// 4 KB pages) vs the paper's patched driver (real 2 MB translations).
//
// Paper shape target: up to ~+6 % bandwidth with 2 MB translations, from
// fewer ATT misses on the bus-limited PCI-X adapter. The same comparison
// on the PCIe Opteron shows no effect (printed for contrast).

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/workloads/imb.hpp"

using namespace ibp;

namespace {

std::vector<workloads::ImbPoint> run_config(
    const platform::PlatformConfig& plat, bool patched) {
  core::ClusterConfig cfg;
  cfg.platform = plat;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = true;
  cfg.lazy_deregistration = true;
  cfg.driver.hugepage_passthrough = patched;
  core::Cluster cluster(cfg);
  workloads::ImbConfig icfg;
  icfg.sizes = {256 * kKiB, 1 * kMiB, 4 * kMiB, 16 * kMiB};
  icfg.iterations = 10;
  return workloads::run_sendrecv(cluster, icfg);
}

void report(const char* name, const platform::PlatformConfig& plat) {
  const auto stock = run_config(plat, false);
  const auto patched = run_config(plat, true);
  std::printf("%s (hugepages, lazy dereg):\n", name);
  TextTable t({"msg size", "stock driver (4K trans)",
               "patched driver (2M trans)", "gain %"});
  for (std::size_t i = 0; i < stock.size(); ++i) {
    const double gain = (patched[i].mbytes_per_sec /
                         stock[i].mbytes_per_sec - 1.0) * 100.0;
    t.add_row(bench::human_bytes(stock[i].bytes), stock[i].mbytes_per_sec,
              patched[i].mbytes_per_sec, gain);
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("TAB-XEON: IMB SendRecv bandwidth vs driver translation "
              "granularity\n\n");
  report("xeon / PCI-X InfiniHost (paper: up to +6 %)",
         platform::xeon_pcix_infinihost());
  report("opteron / PCIe InfiniHost (paper: no visible effect)",
         platform::opteron_pcie_infinihost());
  return 0;
}
