// FIG6 — "NAS benchmarks with hugepages" (paper Figure 6). For each
// kernel (CG, EP, IS, LU, MG) on 2 nodes x 4 processes: the improvement
// from preloading the hugepage library, split mpiP-style into
// communication improvement, other (computation) improvement, and overall
// improvement, on the AMD Opteron and IBM System p platforms.
//
// Paper shape targets: communication improvements > 8 % for most kernels
// (MG and IS below that); every kernel improves overall except IS; the
// improvements combine faster registration/translation handling on the
// adapter with prefetch-friendly physical contiguity on the CPU side.
//
// Optional arguments:
//   --json=PATH   per-kernel improvements plus per-iteration "phases"
//                 metric deltas (captured on the hugepage run via
//                 NasScale::iter_hook)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ibp/workloads/nas.hpp"

using namespace ibp;

namespace {

struct KernelRun {
  workloads::NasResult result;
  std::vector<bench::PhaseDelta> phases;  // per-iteration metric deltas
};

KernelRun run_one(const platform::PlatformConfig& plat,
                  const std::string& kernel, bool hugepages,
                  bool want_phases) {
  core::ClusterConfig cfg;
  cfg.platform = plat;
  cfg.nodes = 2;
  cfg.ranks_per_node = 4;
  cfg.hugepage_library = hugepages;
  core::Cluster cluster(cfg);
  KernelRun run;
  workloads::NasScale s;
  // Per-iteration metric deltas, mpiP-style: the hook runs on rank 0 at
  // each iteration boundary, where a registry snapshot is race-free.
  bench::TelemetryScope scope(cluster.metrics());
  if (want_phases) {
    s.iter_hook = [&scope](int iter) {
      scope.phase("iter " + std::to_string(iter));
    };
  }
  run.result = workloads::run_nas(kernel, cluster, s);
  run.phases = scope.phases();
  return run;
}

struct KernelRecord {
  std::string kernel;
  double comm = 0.0;
  double other = 0.0;
  double overall = 0.0;
  bool verified = false;
  std::vector<bench::PhaseDelta> phases;
};

std::vector<KernelRecord> report(const platform::PlatformConfig& plat,
                                 bool want_phases) {
  std::printf("platform=%s (2 nodes x 4 ranks, class-scaled kernels)\n",
              plat.name.c_str());
  TextTable t({"kernel", "comm impr %", "other impr %", "overall impr %",
               "verified"});
  std::vector<KernelRecord> records;
  for (const char* kernel : {"cg", "ep", "is", "lu", "mg"}) {
    const KernelRun base = run_one(plat, kernel, false, false);
    const KernelRun huge = run_one(plat, kernel, true, want_phases);
    KernelRecord rec;
    rec.kernel = kernel;
    rec.comm = bench::pct_change(static_cast<double>(base.result.comm_avg),
                                 static_cast<double>(huge.result.comm_avg));
    rec.other =
        bench::pct_change(static_cast<double>(base.result.other_avg),
                          static_cast<double>(huge.result.other_avg));
    rec.overall = bench::pct_change(static_cast<double>(base.result.total),
                                    static_cast<double>(huge.result.total));
    rec.verified = base.result.verified && huge.result.verified;
    rec.phases = huge.phases;
    t.add_row(rec.kernel, rec.comm, rec.other, rec.overall,
              rec.verified ? "yes" : "NO");
    records.push_back(std::move(rec));
  }
  t.print();
  std::printf("\n");
  return records;
}

void write_json(
    const std::string& path,
    const std::vector<std::pair<std::string, std::vector<KernelRecord>>>&
        platforms) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fig6_nas\",\n  \"platforms\": {";
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    out << (p == 0 ? "\n" : ",\n") << "    \""
        << sim::Tracer::escaped(platforms[p].first) << "\": {";
    const auto& records = platforms[p].second;
    for (std::size_t k = 0; k < records.size(); ++k) {
      const KernelRecord& r = records[k];
      out << (k == 0 ? "\n" : ",\n") << "      \"" << r.kernel
          << "\": {\"comm_impr_pct\": " << r.comm
          << ", \"other_impr_pct\": " << r.other
          << ", \"overall_impr_pct\": " << r.overall << ", \"verified\": "
          << (r.verified ? "true" : "false") << ",\n        \"phases\": ";
      bench::write_phases_json(r.phases, out, "        ");
      out << "}";
    }
    out << "\n    }";
  }
  out << "\n  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  std::printf("FIG6: NAS kernel improvements with the hugepage library "
              "(positive = hugepages faster)\n\n");
  std::vector<std::pair<std::string, std::vector<KernelRecord>>> platforms;
  const bool want_phases = !json_path.empty();
  for (const auto& plat : {platform::opteron_pcie_infinihost(),
                           platform::systemp_gx_ehca()}) {
    platforms.emplace_back(plat.name, report(plat, want_phases));
  }
  std::printf("(paper: comm improvement > 8 %% except MG and IS; overall "
              "improvement for all kernels except IS)\n");
  if (!json_path.empty()) write_json(json_path, platforms);
  return 0;
}
