// FIG6 — "NAS benchmarks with hugepages" (paper Figure 6). For each
// kernel (CG, EP, IS, LU, MG) on 2 nodes x 4 processes: the improvement
// from preloading the hugepage library, split mpiP-style into
// communication improvement, other (computation) improvement, and overall
// improvement, on the AMD Opteron and IBM System p platforms.
//
// Paper shape targets: communication improvements > 8 % for most kernels
// (MG and IS below that); every kernel improves overall except IS; the
// improvements combine faster registration/translation handling on the
// adapter with prefetch-friendly physical contiguity on the CPU side.

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/workloads/nas.hpp"

using namespace ibp;

namespace {

workloads::NasResult run_one(const platform::PlatformConfig& plat,
                             const std::string& kernel, bool hugepages) {
  core::ClusterConfig cfg;
  cfg.platform = plat;
  cfg.nodes = 2;
  cfg.ranks_per_node = 4;
  cfg.hugepage_library = hugepages;
  core::Cluster cluster(cfg);
  return workloads::run_nas(kernel, cluster);
}

void report(const platform::PlatformConfig& plat) {
  std::printf("platform=%s (2 nodes x 4 ranks, class-scaled kernels)\n",
              plat.name.c_str());
  TextTable t({"kernel", "comm impr %", "other impr %", "overall impr %",
               "verified"});
  for (const char* kernel : {"cg", "ep", "is", "lu", "mg"}) {
    const workloads::NasResult base = run_one(plat, kernel, false);
    const workloads::NasResult huge = run_one(plat, kernel, true);
    const double comm = bench::pct_change(
        static_cast<double>(base.comm_avg), static_cast<double>(huge.comm_avg));
    const double other = bench::pct_change(
        static_cast<double>(base.other_avg),
        static_cast<double>(huge.other_avg));
    const double overall = bench::pct_change(
        static_cast<double>(base.total), static_cast<double>(huge.total));
    t.add_row(kernel, comm, other, overall,
              base.verified && huge.verified ? "yes" : "NO");
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("FIG6: NAS kernel improvements with the hugepage library "
              "(positive = hugepages faster)\n\n");
  report(platform::opteron_pcie_infinihost());
  report(platform::systemp_gx_ehca());
  std::printf("(paper: comm improvement > 8 %% except MG and IS; overall "
              "improvement for all kernels except IS)\n");
  return 0;
}
