// FIG3 — "Work request duration with different number of SGEs" (paper
// Figure 3). Send operations with 1/2/4/8 scatter-gather elements over a
// reliable connection on the IBM System p / eHCA platform; duration in
// time-base-register (TBR) ticks vs the per-SGE size.
//
// Paper shape targets: the 1-SGE curve is ~flat up to 512 B and then
// grows linearly; sending 4 SGEs of <=128 B costs only ~14 % more than
// one SGE of the same element size.

#include <cstdio>

#include "bench_common.hpp"

using namespace ibp;

int main() {
  const platform::PlatformConfig plat = platform::systemp_gx_ehca();
  const cpu::TimeBase tbr(plat.tbr_hz);

  std::printf("FIG3: work request duration (post+poll) in TBR ticks, "
              "platform=%s\n\n", plat.name.c_str());

  const std::uint32_t sge_counts[] = {1, 2, 4, 8};
  const std::uint32_t sizes[] = {1,   4,    16,   64,   128,
                                 256, 512, 1024, 2048, 4096};

  TextTable table({"sge_size", "1 SGE", "2 SGEs", "4 SGEs", "8 SGEs"});
  double one_sge_small = 0, four_sge_small = 0;
  int small_points = 0;

  for (std::uint32_t size : sizes) {
    std::vector<std::string> row;
    double ticks_by_count[4] = {};
    int ci = 0;
    for (std::uint32_t n : sge_counts) {
      bench::WrParams p;
      p.sges = n;
      p.sge_size = size;
      const bench::WrTiming t = bench::measure_send(plat, p);
      ticks_by_count[ci++] = static_cast<double>(tbr.to_ticks(t.total()));
    }
    table.add_row(bench::human_bytes(size), ticks_by_count[0],
                  ticks_by_count[1], ticks_by_count[2], ticks_by_count[3]);
    if (size <= 128) {
      one_sge_small += ticks_by_count[0];
      four_sge_small += ticks_by_count[2];
      ++small_points;
    }
  }
  table.print();

  const double overhead =
      (four_sge_small / small_points) / (one_sge_small / small_points) - 1.0;
  std::printf("\n<=128 B elements: 4 SGEs vs 1 SGE overhead = %.1f %% "
              "(paper: ~14 %%; message is 4x larger)\n",
              overhead * 100.0);
  return 0;
}
