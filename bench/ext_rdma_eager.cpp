// EXT-RDMA — extension: one-sided ring channels against the two-sided
// eager and hybrid UD tiers.
//
// Size sweep: half-round-trip latency of small eager messages. The ring
// sender RDMA-writes [header | payload | tail marker] into a persistent
// receiver-owned slab, so the receiver pays no post_recv and no recv-CQ
// poll on the hot path — it polls ring memory and the record is already
// placed. Two-sided eager pays the prepost + recv-CQE + bounce-copy
// chain; UD skips the ACK round but keeps the receive path. The sweep
// runs on small pages and on a hugepage-backed slab (the paper's
// placement story applied to the ring: fewer ATT entries under the
// slab, cheaper registration, steadier write latency).
//
// RPC closed loop: the response fast path (servers RDMA-write responses
// into client-owned ring slots) against the batched two-sided response
// path, uncontended closed loop, p50/p99 of the same workload.
//
// Deterministic: identical seeds produce byte-identical output (the CI
// rdma-smoke job runs this twice and diffs the JSON). The bench asserts
// its own acceptance floor — rdma-eager must beat two-sided eager on
// small messages and on RPC closed-loop p50 — and exits non-zero if the
// advantage ever regresses.
//
// Optional arguments:
//   --short       fewer iterations (CI smoke mode)
//   --json=PATH   also write results as JSON

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/rpc/rpc.hpp"

using namespace ibp;

namespace {

enum class Tier { TwoSided, RdmaEager, UdEager };

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::TwoSided: return "two-sided";
    case Tier::RdmaEager: return "rdma-eager";
    case Tier::UdEager: return "ud-eager";
  }
  return "?";
}

/// Half-round-trip latency of a ping-pong at `bytes`, averaged over the
/// measured iterations (after warmup), on rank 1's clock.
TimePs ping_pong(Tier tier, std::uint32_t bytes, bool hugepages,
                 int iters) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = hugepages;
  core::Cluster cluster(cfg);
  mpi::CommConfig mc;
  mc.rdma_eager = tier == Tier::RdmaEager;
  mc.ud_eager = tier == Tier::UdEager;
  const int warmup = 5;
  TimePs dt = 0;
  std::uint64_t ring_sent = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, mc);
    const VirtAddr buf = env.alloc(16 * kKiB);
    env.touch_stream(buf, 16 * kKiB);
    if (env.rank() == 0) {
      for (int i = 0; i < iters + warmup; ++i) {
        comm.send(buf, bytes, 1, i);
        comm.recv(buf, bytes, 1, 1000 + i);
      }
    } else {
      TimePs t0 = 0;
      for (int i = 0; i < iters + warmup; ++i) {
        if (i == warmup) t0 = env.now();
        comm.recv(buf, bytes, 0, i);
        comm.send(buf, bytes, 0, 1000 + i);
      }
      dt = (env.now() - t0) / (2 * static_cast<TimePs>(iters));
    }
    if (env.rank() == 0) ring_sent = comm.stats().rdma_eager_sent;
    comm.barrier();
  });
  if (tier == Tier::RdmaEager)
    IBP_CHECK(ring_sent > 0, "ring tier enabled but no message rode it");
  return dt;
}

struct RpcOut {
  loadgen::GenResult gen;
  rpc::ServerStats server;
  rpc::ClientStats client;
};

/// Uncontended closed loop, echo-style small responses; the only knob
/// under test is the response path (batched two-sided vs ring writes).
RpcOut run_rpc(bool ring, std::uint64_t requests, bool hugepages) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = hugepages;
  core::Cluster cluster(cfg);
  RpcOut out;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    rpc::RpcConfig rc;
    rc.rdma_response = ring;
    rc.max_payload = 256;  // right-size the slot rings to the workload
    rc.service_base = ns(200);
    rc.service_per_byte_ps = 0;
    if (env.rank() == 0) {
      rpc::RpcServer server(comm, {1}, rc);
      server.serve();
      out.server = server.stats();
      return;
    }
    rpc::RpcClient client(comm, 0, rc);
    loadgen::Workload w;
    w.request_bytes = 128;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 2;
    cc.requests = requests;
    cc.warmup = requests / 4;
    cc.seed = 11;
    out.gen = loadgen::run_closed_loop(client, w, cc);
    out.client = client.stats();
    client.close();
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  const int iters = short_mode ? 20 : 60;
  const std::uint64_t rpc_n = short_mode ? 1200 : 5000;

  std::printf("EXT-RDMA — one-sided ring channels vs two-sided/UD eager\n\n");

  const std::vector<std::uint32_t> sizes = {64, 256, 1024, 4096, 8192};
  struct Row {
    std::uint32_t bytes;
    TimePs two, ring, ud, ring_huge;
  };
  std::vector<Row> rows;
  std::printf("ping-pong half-round-trip latency (%d iters):\n", iters);
  TextTable t({"size", "two-sided [us]", "rdma-eager [us]", "ud-eager [us]",
               "ring huge [us]", "ring vs two-sided"});
  for (std::uint32_t s : sizes) {
    Row r;
    r.bytes = s;
    r.two = ping_pong(Tier::TwoSided, s, false, iters);
    r.ring = ping_pong(Tier::RdmaEager, s, false, iters);
    r.ud = ping_pong(Tier::UdEager, s, false, iters);
    r.ring_huge = ping_pong(Tier::RdmaEager, s, true, iters);
    char rel[32];
    std::snprintf(rel, sizeof rel, "%+.1f %%",
                  bench::pct_change(static_cast<double>(r.two),
                                    static_cast<double>(r.ring)));
    t.add_row(bench::human_bytes(s), ps_to_us(r.two), ps_to_us(r.ring),
              ps_to_us(r.ud), ps_to_us(r.ring_huge), std::string(rel));
    rows.push_back(r);
  }
  t.print();
  std::printf("\n(no post_recv and no recv-CQ poll on the ring hot path; "
              "the record is already placed when the poll finds its tail "
              "marker)\n\n");

  const RpcOut off = run_rpc(false, rpc_n, true);
  const RpcOut on = run_rpc(true, rpc_n, true);
  std::printf("RPC closed loop, 128 B echo, 2 workers, hugepage rings:\n");
  const auto rpc_row = [](const char* label, const RpcOut& r) {
    std::printf("  %-14s %6llu ok  %8.0f req/s  p50 %6.2f us  "
                "p99 %6.2f us  ring responses %llu  fallbacks %llu\n",
                label, static_cast<unsigned long long>(r.gen.ok),
                r.gen.achieved_rps(), r.gen.latency_ns.p50() / 1000.0,
                r.gen.latency_ns.p99() / 1000.0,
                static_cast<unsigned long long>(r.server.ring_responses),
                static_cast<unsigned long long>(r.server.ring_fallbacks));
  };
  rpc_row("batched", off);
  rpc_row("ring", on);
  const double p50_gain = on.gen.latency_ns.p50() > 0
                              ? off.gen.latency_ns.p50() /
                                    on.gen.latency_ns.p50()
                              : 0.0;
  std::printf("  response-ring p50 speedup: %.2fx\n\n", p50_gain);

  // Acceptance floor (ISSUE 10): the one-sided tier must actually win
  // where its mechanism says it should. A regression that erodes the
  // advantage fails the bench (and the CI rdma-smoke job) outright.
  bool ok = true;
  for (const Row& r : rows) {
    if (r.bytes > 1024) continue;  // small-message floor only
    if (r.ring >= r.two) {
      std::fprintf(stderr,
                   "FLOOR VIOLATION: rdma-eager %llu ps >= two-sided "
                   "%llu ps at %u B\n",
                   static_cast<unsigned long long>(r.ring),
                   static_cast<unsigned long long>(r.two), r.bytes);
      ok = false;
    }
    if (r.ring_huge > r.ring) {
      std::fprintf(stderr,
                   "FLOOR VIOLATION: hugepage ring slower than small-page "
                   "ring at %u B\n",
                   r.bytes);
      ok = false;
    }
  }
  if (on.gen.latency_ns.p50() >= off.gen.latency_ns.p50()) {
    std::fprintf(stderr,
                 "FLOOR VIOLATION: ring response p50 %.2f us >= batched "
                 "p50 %.2f us\n",
                 on.gen.latency_ns.p50() / 1000.0,
                 off.gen.latency_ns.p50() / 1000.0);
    ok = false;
  }
  std::printf("acceptance floor: %s\n", ok ? "pass" : "FAIL");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"ext_rdma_eager\",\n  \"iters\": " << iters
        << ",\n  \"pingpong\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << (i == 0 ? "\n" : ",\n") << "    {\"bytes\": " << r.bytes
          << ", \"two_sided_ps\": " << r.two << ", \"rdma_eager_ps\": "
          << r.ring << ", \"ud_eager_ps\": " << r.ud
          << ", \"rdma_eager_huge_ps\": " << r.ring_huge << "}";
    }
    char h0[32], h1[32];
    std::snprintf(h0, sizeof(h0), "0x%016llx",
                  static_cast<unsigned long long>(off.gen.trace_hash));
    std::snprintf(h1, sizeof(h1), "0x%016llx",
                  static_cast<unsigned long long>(on.gen.trace_hash));
    out << "\n  ],\n  \"rpc_closed\": {\n"
        << "    \"batched\": {\"ok\": " << off.gen.ok
        << ", \"achieved_rps\": "
        << static_cast<std::uint64_t>(off.gen.achieved_rps())
        << ", \"p50_us\": " << off.gen.latency_ns.p50() / 1000.0
        << ", \"p99_us\": " << off.gen.latency_ns.p99() / 1000.0
        << ", \"ring_responses\": " << off.server.ring_responses
        << ", \"trace_hash\": \"" << h0 << "\"},\n"
        << "    \"ring\": {\"ok\": " << on.gen.ok << ", \"achieved_rps\": "
        << static_cast<std::uint64_t>(on.gen.achieved_rps())
        << ", \"p50_us\": " << on.gen.latency_ns.p50() / 1000.0
        << ", \"p99_us\": " << on.gen.latency_ns.p99() / 1000.0
        << ", \"ring_responses\": " << on.server.ring_responses
        << ", \"ring_fallbacks\": " << on.server.ring_fallbacks
        << ", \"trace_hash\": \"" << h1 << "\"},\n"
        << "    \"p50_speedup\": " << p50_gain << "\n  },\n"
        << "  \"floor\": \"" << (ok ? "pass" : "fail") << "\"\n}\n";
  }
  return ok ? 0 : 1;
}
