// EXT-FAILOVER — extension: fabric failure recovery under a seeded
// server kill.
//
// A 4-server fabric carries closed-loop mixed traffic (latency-class
// echoes plus striped bulk reads) while a fault plan crashes one server
// rank mid-run. The client's health monitor has to notice (consecutive
// request timeouts), bump the shard map to an epoch excluding the dead
// server, adopt the orphaned in-flight work onto the survivors, and —
// in the brownout scenario — readmit the server once a probe answers.
//
// Three scenarios, one assertion set:
//   * baseline — health monitor armed, fault-free: the goodput yardstick
//     (and a false-positive check: zero failovers, zero timeouts),
//   * crash    — one of four servers killed permanently at ~30% of the
//     baseline span: goodput in the post-failover windows must recover
//     to >= 70% of the pre-fault average, no accepted Latency-class
//     request may be lost, and the recovery time is bounded,
//   * brownout — the same kill plus a recover directive at ~65%: the
//     probe path must readmit the server (epoch returns tenants home).
//
// The crash/recover times and the goodput window width derive from the
// measured baseline span, so the scenario adapts to the platform while
// staying fully deterministic: identical seeds produce byte-identical
// output (the CI failover-smoke job runs this twice and diffs the JSON).
//
// Optional arguments:
//   --short       fewer requests (CI smoke mode)
//   --json=PATH   also write results as JSON

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ibp/fabric/fabric.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/loadgen/loadgen.hpp"

using namespace ibp;

namespace {

constexpr std::uint32_t kServers = 4;
constexpr std::uint32_t kBulkBytes = 32 * kKiB;  // striped (threshold 8K)
constexpr int kVictim = 2;  // server rank (== node id) the plan kills
constexpr double kRecoverFloor = 0.70;   // post/pre goodput ratio bound
constexpr std::uint64_t kRecoveryBoundUs = 5000;  // virtual recovery time

struct ScenarioOut {
  std::string name;
  loadgen::GenResult gen;
  fabric::FabricClientStats fab;
  TimePs recovery_ps = 0;
  std::uint32_t epoch = 0;
  std::uint64_t discarded = 0;  // requests the crashed server black-holed
  std::uint64_t link_retries = 0;
};

fabric::FabricConfig fabric_config() {
  fabric::FabricConfig fc;
  fc.stripe_threshold = 8 * kKiB;
  fc.stripe_width = 3;
  // Health monitor: two consecutive request timeouts declare a server
  // dead. The timeout must clear the worst fault-free latency — which
  // here is the first-touch registration of the slot rings on each link
  // (~2.6 us p99 grows to ~2.6 ms on the very first requests) — or the
  // monitor false-positives (the baseline scenario asserts it never
  // fires fault-free).
  fc.fail_after = 2;
  fc.rpc.request_timeout = us(4000);
  fc.rpc.max_retries = 1;
  fc.probe_backoff = us(1000);
  fc.probe_backoff_max = us(8000);
  fc.degrade_outstanding = 4;  // shed bulk only under a real backlog
  return fc;
}

ScenarioOut run_scenario(const std::string& name, const fault::FaultPlan& plan,
                         std::uint64_t requests, TimePs window) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = kServers + 1;  // rank 0 is the client
  cfg.ranks_per_node = 1;
  cfg.fault = plan;
  core::Cluster cluster(cfg);

  ScenarioOut out;
  out.name = name;
  std::vector<std::uint64_t> discarded(cfg.nodes, 0);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mc.recovery = mpi::CommConfig::Recovery::Repost;
    mpi::Comm comm(env, mc);
    const fabric::FabricConfig fc = fabric_config();
    if (env.rank() != 0) {
      fabric::FabricServer server(comm, {0}, fc);
      server.serve();
      discarded[static_cast<std::size_t>(env.rank())] =
          server.stats().discarded;
      return;
    }
    std::vector<int> ranks;
    for (std::uint32_t s = 1; s <= kServers; ++s)
      ranks.push_back(static_cast<int>(s));
    fabric::FabricClient client(comm, ranks, fc);
    loadgen::Workload w;
    w.request_bytes = 64;
    w.response_bytes = 256;
    w.tenants = 8;
    w.bulk_fraction = 0.25;
    w.bulk_response_bytes = kBulkBytes;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 4;
    cc.requests = requests;
    cc.seed = 13;
    cc.window = window;
    out.gen = loadgen::run_closed_loop(client, w, cc);
    out.fab = client.stats();
    out.recovery_ps = client.recovery_time();
    out.epoch = client.shard_map().epoch();
    out.link_retries = client.link_stats().retries;
    client.close();
  });
  for (std::uint64_t d : discarded) out.discarded += d;
  return out;
}

/// Post-failover vs pre-fault goodput, from the windowed ok counts.
/// Pre = average of the full windows before the crash (skipping the
/// startup windows before the first completion, which are registration
/// transient, not steady state). Post = average of the windows after
/// detection could have completed (crash + fail_after * request_timeout
/// — during that span work aimed at the corpse is still waiting out its
/// deadline, which is the outage, not the recovery), final partial
/// window excluded. 0 when either side has no window.
double recovered_ratio(const ScenarioOut& s, TimePs crash_at, TimePs window) {
  const auto& ok = s.gen.window_ok;
  if (ok.size() < 3 || window == 0 || crash_at <= s.gen.start) return 0.0;
  const fabric::FabricConfig fc = fabric_config();
  // Window indices are relative to the generator's measurement start;
  // the fault plan speaks absolute virtual time.
  const TimePs crash_rel = crash_at - s.gen.start;
  const TimePs detected = crash_rel + fc.fail_after * fc.rpc.request_timeout;
  const std::size_t crash_w = static_cast<std::size_t>(crash_rel / window);
  const std::size_t post_w = static_cast<std::size_t>(detected / window) + 1;
  std::size_t first = 0;
  while (first < ok.size() && ok[first] == 0) ++first;
  double pre = 0, post = 0;
  std::size_t npre = 0, npost = 0;
  for (std::size_t i = first; i < ok.size(); ++i) {
    if (i < crash_w) {
      pre += static_cast<double>(ok[i]);
      ++npre;
    } else if (i >= post_w && i + 1 < ok.size()) {
      post += static_cast<double>(ok[i]);
      ++npost;
    }
  }
  if (npre == 0 || npost == 0 || pre <= 0.0) return 0.0;
  return (post / static_cast<double>(npost)) /
         (pre / static_cast<double>(npre));
}

void print_scenario(const ScenarioOut& s) {
  std::printf(
      "  %-9s %5llu ok  %3llu shed  %3llu lost  %2llu discarded  "
      "epoch %u  failovers %llu  rerouted %llu  readmits %llu  "
      "recovery %.1f us\n",
      s.name.c_str(), static_cast<unsigned long long>(s.gen.ok),
      static_cast<unsigned long long>(s.gen.shed),
      static_cast<unsigned long long>(s.gen.timed_out),
      static_cast<unsigned long long>(s.discarded), s.epoch,
      static_cast<unsigned long long>(s.fab.failovers),
      static_cast<unsigned long long>(s.fab.rerouted),
      static_cast<unsigned long long>(s.fab.readmissions),
      static_cast<double>(s.recovery_ps) / 1e6);
}

void json_scenario(std::ofstream& out, const ScenarioOut& s, double ratio) {
  char hash[32];
  std::snprintf(hash, sizeof(hash), "0x%016llx",
                static_cast<unsigned long long>(s.gen.trace_hash));
  out << "    {\"scenario\": \"" << s.name
      << "\", \"issued\": " << s.gen.issued << ", \"ok\": " << s.gen.ok
      << ", \"shed\": " << s.gen.shed << ", \"lost\": " << s.gen.timed_out
      << ", \"lost_latency\": " << s.gen.lost_latency
      << ", \"rejected\": " << s.gen.rejected << ",\n"
      << "     \"span_us\": " << s.gen.span / 1000000
      << ", \"p50_us\": " << s.gen.latency_ns.p50() / 1000.0
      << ", \"p99_us\": " << s.gen.latency_ns.p99() / 1000.0
      << ", \"epoch\": " << s.epoch
      << ", \"failovers\": " << s.fab.failovers
      << ", \"rerouted\": " << s.fab.rerouted
      << ", \"probes\": " << s.fab.probes
      << ", \"readmissions\": " << s.fab.readmissions << ",\n"
      << "     \"degraded_shed\": " << s.fab.degraded_shed
      << ", \"server_discarded\": " << s.discarded
      << ", \"link_retries\": " << s.link_retries
      << ", \"recovery_us\": " << s.recovery_ps / 1000000
      << ", \"recovered_ratio\": " << ratio << ",\n     \"window_ok\": [";
  for (std::size_t i = 0; i < s.gen.window_ok.size(); ++i)
    out << (i ? ", " : "") << s.gen.window_ok[i];
  out << "], \"window_lost\": [";
  for (std::size_t i = 0; i < s.gen.window_lost.size(); ++i)
    out << (i ? ", " : "") << s.gen.window_lost[i];
  out << "],\n     \"trace_hash\": \"" << hash << "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  const std::uint64_t requests = short_mode ? 600 : 1600;

  std::printf(
      "EXT-FAILOVER — health-monitored epoch handoff, %u servers, "
      "kill rank %d\n\n",
      kServers, kVictim);

  // Baseline paces the fault plan: crash at ~30% of the fault-free span,
  // recover at ~65%, goodput windows at 1/16 of it (all rounded to the
  // microsecond grid the fault DSL speaks).
  const fault::FaultPlan none;
  ScenarioOut base = run_scenario("baseline", none, requests, us(1));
  const TimePs span = base.gen.span;
  const TimePs window = us(std::max<std::uint64_t>(span / 16 / us(1), 1));
  const TimePs crash_at =
      us(std::max<std::uint64_t>((base.gen.start + span * 30 / 100) / us(1),
                                 1));
  const TimePs recover_at =
      us(std::max<std::uint64_t>((base.gen.start + span * 65 / 100) / us(1),
                                 2));
  // Re-run the baseline on the final window grid so its JSON is
  // comparable with the fault scenarios'.
  base = run_scenario("baseline", none, requests, window);

  fault::FaultPlan crash;
  crash.crashes.push_back({kVictim, crash_at});
  const ScenarioOut killed = run_scenario("crash", crash, requests, window);

  fault::FaultPlan brown = crash;
  brown.recoveries.push_back({kVictim, recover_at});
  const ScenarioOut browned = run_scenario("brownout", brown, requests,
                                           window);

  print_scenario(base);
  print_scenario(killed);
  print_scenario(browned);

  const double ratio = recovered_ratio(killed, crash_at, window);
  const double bratio = recovered_ratio(browned, crash_at, window);
  std::printf(
      "\n  crash at %.0f us, window %.0f us: goodput recovered to "
      "%.0f%% of pre-fault (brownout %.0f%%)\n",
      static_cast<double>(crash_at) / 1e6,
      static_cast<double>(window) / 1e6, ratio * 100.0, bratio * 100.0);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"ext_failover_sweep\",\n  \"servers\": "
        << kServers << ",\n  \"victim\": " << kVictim
        << ",\n  \"requests\": " << requests
        << ",\n  \"crash_at_us\": " << crash_at / 1000000
        << ",\n  \"recover_at_us\": " << recover_at / 1000000
        << ",\n  \"window_us\": " << window / 1000000
        << ",\n  \"scenarios\": [\n";
    json_scenario(out, base, 0.0);
    out << ",\n";
    json_scenario(out, killed, ratio);
    out << ",\n";
    json_scenario(out, browned, bratio);
    out << "\n  ]\n}\n";
  }

  int rc = 0;
  if (base.fab.failovers != 0 || base.gen.timed_out != 0) {
    std::fprintf(stderr,
                 "FAIL: baseline false positive (failovers %llu, lost "
                 "%llu)\n",
                 static_cast<unsigned long long>(base.fab.failovers),
                 static_cast<unsigned long long>(base.gen.timed_out));
    rc = 1;
  }
  if (killed.fab.failovers != 1) {
    std::fprintf(stderr, "FAIL: crash scenario declared %llu deaths != 1\n",
                 static_cast<unsigned long long>(killed.fab.failovers));
    rc = 1;
  }
  if (killed.gen.lost_latency != 0 || browned.gen.lost_latency != 0) {
    std::fprintf(stderr,
                 "FAIL: lost Latency-class requests (crash %llu, brownout "
                 "%llu)\n",
                 static_cast<unsigned long long>(killed.gen.lost_latency),
                 static_cast<unsigned long long>(browned.gen.lost_latency));
    rc = 1;
  }
  if (killed.recovery_ps == 0 ||
      killed.recovery_ps / 1000000 > kRecoveryBoundUs) {
    std::fprintf(stderr, "FAIL: recovery time %.1f us outside (0, %llu]\n",
                 static_cast<double>(killed.recovery_ps) / 1e6,
                 static_cast<unsigned long long>(kRecoveryBoundUs));
    rc = 1;
  }
  if (ratio < kRecoverFloor) {
    std::fprintf(stderr, "FAIL: goodput recovered to %.0f%% < %.0f%%\n",
                 ratio * 100.0, kRecoverFloor * 100.0);
    rc = 1;
  }
  if (browned.fab.readmissions != 1 || browned.epoch != 2) {
    std::fprintf(stderr,
                 "FAIL: brownout readmissions %llu (want 1), epoch %u "
                 "(want 2)\n",
                 static_cast<unsigned long long>(browned.fab.readmissions),
                 browned.epoch);
    rc = 1;
  }
  return rc;
}
