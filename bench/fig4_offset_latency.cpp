// FIG4 — "Work request duration with different offsets" (paper Figure 4).
// One-SGE sends of 8/16/32/64-byte buffers whose start address is shifted
// by `offset` inside the page; duration in TBR ticks.
//
// Paper shape targets: duration varies with offset by up to ~8 %, with
// the DMA path optimized for certain offsets (e.g. 64): buffers that stay
// inside one bus line / burst window transfer fastest.

#include <cstdio>

#include "bench_common.hpp"

using namespace ibp;

int main() {
  const platform::PlatformConfig plat = platform::systemp_gx_ehca();
  const cpu::TimeBase tbr(plat.tbr_hz);

  std::printf("FIG4: work request duration vs buffer offset, platform=%s\n\n",
              plat.name.c_str());

  const std::uint32_t sizes[] = {8, 16, 32, 64};
  TextTable t({"offset", "8 B", "16 B", "32 B", "64 B"});

  double worst = 0.0, best = 1e18;
  for (std::uint32_t offset = 0; offset <= 256; offset += 8) {
    double col[4];
    int ci = 0;
    for (std::uint32_t size : sizes) {
      bench::WrParams p;
      p.sge_size = size;
      p.offset = offset;
      const bench::WrTiming wt = bench::measure_send(plat, p);
      col[ci] = static_cast<double>(tbr.to_ticks(wt.total()));
      if (size == 64) {
        worst = std::max(worst, col[ci]);
        best = std::min(best, col[ci]);
      }
      ++ci;
    }
    t.add_row(static_cast<std::uint64_t>(offset), col[0], col[1], col[2],
              col[3]);
  }
  t.print();

  std::printf("\n64 B buffers: offset-induced spread = %.1f %% "
              "(paper: up to ~8 %%, optimum at aligned offsets)\n",
              (worst / best - 1.0) * 100.0);
  return 0;
}
