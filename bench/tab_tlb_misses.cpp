// TAB-TLB — the §5.2 PAPI observation: with the hugepage library, data-TLB
// misses *increase* dramatically (up to ~8x for EP) on the Opteron's
// asymmetric TLB (544 x 4 KB vs 8 x 2 MB entries) — except for LU, whose
// fused loops touch few enough operands to fit the 2 MB TLB. The runtime
// still improves (Figure 6) because thrash misses are served from cached
// page-table nodes while the prefetcher gains whole-hugepage streams.

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/workloads/nas.hpp"

using namespace ibp;

int main() {
  const platform::PlatformConfig plat = platform::opteron_pcie_infinihost();
  std::printf("TAB-TLB: data-TLB misses (summed over 8 ranks), "
              "platform=%s\n\n", plat.name.c_str());

  TextTable t({"kernel", "misses (4K pages)", "misses (hugepages)",
               "ratio", "paper"});
  for (const char* kernel : {"cg", "ep", "is", "lu", "mg"}) {
    core::ClusterConfig cfg;
    cfg.platform = plat;
    cfg.nodes = 2;
    cfg.ranks_per_node = 4;

    cfg.hugepage_library = false;
    core::Cluster base_cluster(cfg);
    const workloads::NasResult base =
        workloads::run_nas(kernel, base_cluster);

    cfg.hugepage_library = true;
    core::Cluster huge_cluster(cfg);
    const workloads::NasResult huge =
        workloads::run_nas(kernel, huge_cluster);

    char ratio[32];
    std::snprintf(ratio, sizeof ratio, "%.2fx",
                  static_cast<double>(huge.tlb_misses) /
                      static_cast<double>(std::max<std::uint64_t>(
                          base.tlb_misses, 1)));
    const char* expect =
        std::string(kernel) == "ep"   ? "up to 8x more"
        : std::string(kernel) == "lu" ? "no increase"
                                      : "increase";
    t.add_row(kernel, base.tlb_misses, huge.tlb_misses, std::string(ratio),
              expect);
  }
  t.print();
  return 0;
}
