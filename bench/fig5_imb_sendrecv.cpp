// FIG5 — "Intel MPI Benchmarks on AMD Opteron with Mellanox InfiniHost"
// (paper Figure 5). IMB SendRecv bandwidth over message size in four
// configurations: {small pages, hugepages} x {lazy deregistration off,
// on}.
//
// Paper shape targets:
//   * without lazy deregistration, hugepages dominate small pages by a
//     wide margin (registration collapses to ~1 %) and approach the
//     ~1750 MB/s peak for buffers > 4 MB;
//   * with lazy deregistration, small pages and hugepages are nearly
//     identical on this PCIe platform.

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/workloads/imb.hpp"

using namespace ibp;

namespace {

std::vector<workloads::ImbPoint> run_config(bool hugepages, bool lazy) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = hugepages;
  cfg.lazy_deregistration = lazy;
  cfg.hugepages_per_node = 512;
  core::Cluster cluster(cfg);
  workloads::ImbConfig icfg;
  icfg.sizes = workloads::imb_default_sizes();
  icfg.iterations = 10;
  return workloads::run_sendrecv(cluster, icfg);
}

}  // namespace

int main() {
  std::printf("FIG5: IMB SendRecv bandwidth [MB/s], platform=opteron "
              "(2 nodes x 1 rank)\n\n");

  const auto small_noreg = run_config(false, false);
  const auto huge_noreg = run_config(true, false);
  const auto small_lazy = run_config(false, true);
  const auto huge_lazy = run_config(true, true);

  TextTable t({"msg size", "small pages", "hugepages",
               "small lazy-dereg", "huge lazy-dereg"});
  for (std::size_t i = 0; i < small_noreg.size(); ++i)
    t.add_row(bench::human_bytes(small_noreg[i].bytes),
              small_noreg[i].mbytes_per_sec, huge_noreg[i].mbytes_per_sec,
              small_lazy[i].mbytes_per_sec, huge_lazy[i].mbytes_per_sec);
  t.print();

  const auto& back_h = huge_noreg.back();
  const auto& back_s = small_noreg.back();
  std::printf("\nno lazy dereg, 16 MB: hugepages %.0f MB/s vs small pages "
              "%.0f MB/s (%.1fx)\n",
              back_h.mbytes_per_sec, back_s.mbytes_per_sec,
              back_h.mbytes_per_sec / back_s.mbytes_per_sec);
  std::printf("lazy dereg, 16 MB: hugepages %.0f MB/s vs small pages %.0f "
              "MB/s (paper: nearly identical on PCIe)\n",
              huge_lazy.back().mbytes_per_sec,
              small_lazy.back().mbytes_per_sec);
  return 0;
}
