// FIG5 — "Intel MPI Benchmarks on AMD Opteron with Mellanox InfiniHost"
// (paper Figure 5). IMB SendRecv bandwidth over message size in four
// configurations: {small pages, hugepages} x {lazy deregistration off,
// on}.
//
// Paper shape targets:
//   * without lazy deregistration, hugepages dominate small pages by a
//     wide margin (registration collapses to ~1 %) and approach the
//     ~1750 MB/s peak for buffers > 4 MB;
//   * with lazy deregistration, small pages and hugepages are nearly
//     identical on this PCIe platform.

// Optional arguments (absent: the four-configuration table below, byte-
// identical across runs):
//   --placement=POLICY  policy-comparison mode: run the sweep with the
//                       named placement policy planning every buffer
//                       (hugepage library on, lazy deregistration off —
//                       the registration-sensitive configuration)
//   --short             fewer sizes/iterations (CI smoke mode)
//   --json=PATH         also write the measured points as JSON

#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "ibp/workloads/imb.hpp"

using namespace ibp;

namespace {

std::vector<workloads::ImbPoint> run_config(bool hugepages, bool lazy) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = hugepages;
  cfg.lazy_deregistration = lazy;
  cfg.hugepages_per_node = 512;
  core::Cluster cluster(cfg);
  workloads::ImbConfig icfg;
  icfg.sizes = workloads::imb_default_sizes();
  icfg.iterations = 10;
  return workloads::run_sendrecv(cluster, icfg);
}

struct PolicyRun {
  std::vector<workloads::ImbPoint> pts;
  std::vector<bench::PhaseDelta> phases;  // one per message size
  telemetry::MetricsSnapshot metrics;     // final registry snapshot
};

PolicyRun run_policy(const std::string& policy, bool short_mode) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  // The registration-sensitive configuration: every rendezvous buffer
  // pays registration unless the policy places it well.
  cfg.hugepage_library = true;
  cfg.lazy_deregistration = false;
  cfg.hugepages_per_node = 512;
  cfg.placement_policy = policy;
  core::Cluster cluster(cfg);
  workloads::ImbConfig icfg;
  icfg.sizes = short_mode
                   ? std::vector<std::uint64_t>{64 * kKiB, kMiB}
                   : workloads::imb_default_sizes();
  icfg.iterations = short_mode ? 3 : 10;

  PolicyRun run;
  // Per-size metric deltas, mpiP-style: the hook runs on rank 0 at each
  // size boundary, where a registry snapshot is race-free.
  bench::TelemetryScope scope(cluster.metrics());
  icfg.phase_hook = [&](std::size_t, std::uint64_t bytes) {
    scope.phase(bench::human_bytes(bytes));
  };
  run.pts = workloads::run_sendrecv(cluster, icfg);
  run.phases = scope.phases();
  run.metrics = cluster.metrics().snapshot();
  return run;
}

void write_json(const std::string& path, const std::string& placement,
                const PolicyRun& run) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"fig5_imb_sendrecv\",\n  \"placement\": \""
      << placement << "\",\n  \"points\": [\n";
  const auto& pts = run.pts;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    out << "    {\"bytes\": " << pts[i].bytes << ", \"mbytes_per_sec\": "
        << pts[i].mbytes_per_sec << "}" << (i + 1 < pts.size() ? "," : "")
        << "\n";
  }
  out << "  ],\n  \"phases\": ";
  bench::write_phases_json(run.phases, out, "  ");
  out << ",\n  \"metrics\": {";
  for (std::size_t i = 0; i < run.metrics.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \""
        << sim::Tracer::escaped(std::string(run.metrics.name(i)))
        << "\": " << run.metrics.value(i);
  }
  out << (run.metrics.size() != 0 ? "\n  }" : "}") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string placement, json_path;
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--placement=", 12) == 0) {
      placement = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: fig5_imb_sendrecv [--placement=POLICY] [--short] "
                   "[--json=PATH]\n");
      return 2;
    }
  }

  if (!placement.empty() || short_mode || !json_path.empty()) {
    if (placement.empty()) placement = "paper-default";
    if (placement::make_policy(placement) == nullptr) {
      std::fprintf(stderr, "unknown placement policy '%s' (known: %s)\n",
                   placement.c_str(),
                   placement::known_policy_names().c_str());
      return 2;
    }
    std::printf("FIG5 (policy mode): IMB SendRecv [MB/s], placement=%s, "
                "hugepage library on, lazy dereg off%s\n\n",
                placement.c_str(), short_mode ? ", short" : "");
    const PolicyRun run = run_policy(placement, short_mode);
    TextTable t({"msg size", "MB/s"});
    for (const auto& pt : run.pts)
      t.add_row(bench::human_bytes(pt.bytes), pt.mbytes_per_sec);
    t.print();
    if (!json_path.empty()) write_json(json_path, placement, run);
    return 0;
  }

  std::printf("FIG5: IMB SendRecv bandwidth [MB/s], platform=opteron "
              "(2 nodes x 1 rank)\n\n");

  const auto small_noreg = run_config(false, false);
  const auto huge_noreg = run_config(true, false);
  const auto small_lazy = run_config(false, true);
  const auto huge_lazy = run_config(true, true);

  TextTable t({"msg size", "small pages", "hugepages",
               "small lazy-dereg", "huge lazy-dereg"});
  for (std::size_t i = 0; i < small_noreg.size(); ++i)
    t.add_row(bench::human_bytes(small_noreg[i].bytes),
              small_noreg[i].mbytes_per_sec, huge_noreg[i].mbytes_per_sec,
              small_lazy[i].mbytes_per_sec, huge_lazy[i].mbytes_per_sec);
  t.print();

  const auto& back_h = huge_noreg.back();
  const auto& back_s = small_noreg.back();
  std::printf("\nno lazy dereg, 16 MB: hugepages %.0f MB/s vs small pages "
              "%.0f MB/s (%.1fx)\n",
              back_h.mbytes_per_sec, back_s.mbytes_per_sec,
              back_h.mbytes_per_sec / back_s.mbytes_per_sec);
  std::printf("lazy dereg, 16 MB: hugepages %.0f MB/s vs small pages %.0f "
              "MB/s (paper: nearly identical on PCIe)\n",
              huge_lazy.back().mbytes_per_sec,
              small_lazy.back().mbytes_per_sec);
  return 0;
}
