// EXT-FAULT — extension: IMB SendRecv bandwidth under an increasingly
// lossy link, small pages vs hugepages. Every dropped packet costs a
// retransmission timeout (exponential backoff from QpAttrs), so goodput
// degrades much faster than the raw loss rate; the placement gap from
// Figure 5 persists because registration/ATT costs are orthogonal to the
// wire losses. All runs are deterministic (seeded injector RNG streams).

// Optional arguments (absent: the small-vs-huge table below, byte-
// identical across runs):
//   --placement=POLICY  run the drop-rate sweep with the named placement
//                       policy planning every buffer (hugepage library on)
//   --short             fewer drop rates/iterations (CI smoke mode)
//   --json=PATH         also write the measured points as JSON

#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/workloads/imb.hpp"

using namespace ibp;

namespace {

struct SweepPoint {
  std::vector<workloads::ImbPoint> pts;
  std::uint64_t retransmits = 0;
  std::uint64_t dropped = 0;
  std::vector<bench::PhaseDelta> phases;  // per-size metric deltas
};

SweepPoint run(double drop, bool hugepages, const std::string& policy = "paper-default",
               int iters = 4) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = hugepages;
  cfg.placement_policy = policy;
  if (drop > 0.0) {
    fault::LinkFault lf;  // both directions of the 0<->1 link
    lf.drop_prob = drop;
    cfg.fault.links.push_back(lf);
  }
  core::Cluster cluster(cfg);

  workloads::ImbConfig icfg;
  icfg.sizes = {64 * kKiB, kMiB, 16 * kMiB};
  icfg.iterations = iters;
  icfg.warmup = 1;
  SweepPoint sp;
  bench::TelemetryScope scope(cluster.metrics());
  icfg.phase_hook = [&](std::size_t, std::uint64_t bytes) {
    scope.phase(bench::human_bytes(bytes));
  };
  sp.pts = workloads::run_sendrecv(cluster, icfg);
  sp.phases = scope.phases();
  for (int n = 0; n < cluster.nodes(); ++n)
    sp.retransmits += cluster.node(n).adapter.stats().retransmits;
  if (cluster.fault() != nullptr)
    sp.dropped = cluster.fault()->stats().packets_dropped;
  return sp;
}

void write_json(const std::string& path, const std::string& placement,
                const std::vector<double>& drops,
                const std::vector<SweepPoint>& sps) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"ext_fault_sweep\",\n  \"placement\": \""
      << placement << "\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < sps.size(); ++i) {
    out << "    {\"drop\": " << drops[i] << ", \"mbytes_per_sec_64k\": "
        << sps[i].pts[0].mbytes_per_sec << ", \"mbytes_per_sec_16m\": "
        << sps[i].pts[2].mbytes_per_sec << ", \"retransmits\": "
        << sps[i].retransmits << ",\n     \"phases\": ";
    bench::write_phases_json(sps[i].phases, out, "     ");
    out << "}" << (i + 1 < sps.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string placement, json_path;
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--placement=", 12) == 0) {
      placement = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: ext_fault_sweep [--placement=POLICY] [--short] "
                   "[--json=PATH]\n");
      return 2;
    }
  }

  if (!placement.empty() || short_mode || !json_path.empty()) {
    if (placement.empty()) placement = "paper-default";
    if (placement::make_policy(placement) == nullptr) {
      std::fprintf(stderr, "unknown placement policy '%s' (known: %s)\n",
                   placement.c_str(),
                   placement::known_policy_names().c_str());
      return 2;
    }
    std::printf("EXT-FAULT (policy mode): SendRecv bandwidth vs drop rate, "
                "placement=%s, hugepage library on%s\n\n",
                placement.c_str(), short_mode ? ", short" : "");
    const std::vector<double> drops =
        short_mode ? std::vector<double>{0.0, 0.01}
                   : std::vector<double>{0.0, 0.001, 0.01, 0.05};
    std::vector<SweepPoint> sps;
    TextTable pt({"drop rate", "64K MB/s", "1M MB/s", "16M MB/s",
                  "retransmits", "dropped"});
    for (double drop : drops) {
      sps.push_back(run(drop, true, placement, short_mode ? 2 : 4));
      const SweepPoint& sp = sps.back();
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.1f %%", drop * 100.0);
      pt.add_row(rate, sp.pts[0].mbytes_per_sec, sp.pts[1].mbytes_per_sec,
                 sp.pts[2].mbytes_per_sec, sp.retransmits, sp.dropped);
    }
    pt.print();
    if (!json_path.empty()) write_json(json_path, placement, drops, sps);
    return 0;
  }

  std::printf("EXT-FAULT: SendRecv bandwidth vs link drop rate "
              "(2 nodes, RC retransmission)\n\n");
  TextTable t({"drop rate", "pages", "64K MB/s", "1M MB/s", "16M MB/s",
               "retransmits", "dropped"});
  for (double drop : {0.0, 0.001, 0.01, 0.05}) {
    for (int huge = 0; huge < 2; ++huge) {
      const SweepPoint sp = run(drop, huge != 0);
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.1f %%", drop * 100.0);
      t.add_row(rate, huge ? "huge" : "small", sp.pts[0].mbytes_per_sec,
                sp.pts[1].mbytes_per_sec, sp.pts[2].mbytes_per_sec,
                sp.retransmits, sp.dropped);
    }
  }
  t.print();
  std::printf("\n(Each drop stalls the QP for the backoff timeout, so "
              "goodput falls superlinearly with the loss rate; the "
              "hugepage advantage is preserved under loss.)\n");
  return 0;
}
