// EXT-FAULT — extension: IMB SendRecv bandwidth under an increasingly
// lossy link, small pages vs hugepages. Every dropped packet costs a
// retransmission timeout (exponential backoff from QpAttrs), so goodput
// degrades much faster than the raw loss rate; the placement gap from
// Figure 5 persists because registration/ATT costs are orthogonal to the
// wire losses. All runs are deterministic (seeded injector RNG streams).

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/workloads/imb.hpp"

using namespace ibp;

namespace {

struct SweepPoint {
  std::vector<workloads::ImbPoint> pts;
  std::uint64_t retransmits = 0;
  std::uint64_t dropped = 0;
};

SweepPoint run(double drop, bool hugepages) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = hugepages;
  if (drop > 0.0) {
    fault::LinkFault lf;  // both directions of the 0<->1 link
    lf.drop_prob = drop;
    cfg.fault.links.push_back(lf);
  }
  core::Cluster cluster(cfg);

  workloads::ImbConfig icfg;
  icfg.sizes = {64 * kKiB, kMiB, 16 * kMiB};
  icfg.iterations = 4;
  icfg.warmup = 1;
  SweepPoint sp;
  sp.pts = workloads::run_sendrecv(cluster, icfg);
  for (int n = 0; n < cluster.nodes(); ++n)
    sp.retransmits += cluster.node(n).adapter.stats().retransmits;
  if (cluster.fault() != nullptr)
    sp.dropped = cluster.fault()->stats().packets_dropped;
  return sp;
}

}  // namespace

int main() {
  std::printf("EXT-FAULT: SendRecv bandwidth vs link drop rate "
              "(2 nodes, RC retransmission)\n\n");
  TextTable t({"drop rate", "pages", "64K MB/s", "1M MB/s", "16M MB/s",
               "retransmits", "dropped"});
  for (double drop : {0.0, 0.001, 0.01, 0.05}) {
    for (int huge = 0; huge < 2; ++huge) {
      const SweepPoint sp = run(drop, huge != 0);
      char rate[32];
      std::snprintf(rate, sizeof rate, "%.1f %%", drop * 100.0);
      t.add_row(rate, huge ? "huge" : "small", sp.pts[0].mbytes_per_sec,
                sp.pts[1].mbytes_per_sec, sp.pts[2].mbytes_per_sec,
                sp.retransmits, sp.dropped);
    }
  }
  t.print();
  std::printf("\n(Each drop stalls the QP for the backoff timeout, so "
              "goodput falls superlinearly with the loss rate; the "
              "hugepage advantage is preserved under loss.)\n");
  return 0;
}
