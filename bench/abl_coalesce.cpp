// ABL-COAL — ablation of the §3.2 #5 design choice: "The allocator does
// not coalesce free memory areas on free() calls. This avoids useless
// coalescing/splitting patterns, when applications allocate and
// deallocate buffers with the same size in a short time frame."
//
// Replays the same-size churn trace against the hugepage heap with
// coalescing off (the paper's design) and on (the ablation), reporting
// virtual-time cost and the coalesce/split churn counts.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ibp/hugepage/heap.hpp"
#include "ibp/workloads/alloc_trace.hpp"

using namespace ibp;

namespace {

struct Run {
  TimePs cost = 0;
  std::uint64_t splits = 0;
  std::uint64_t coalesces = 0;
  std::uint64_t scan_steps = 0;
};

Run replay(bool coalesce, const std::vector<workloads::TraceOp>& ops) {
  mem::PhysicalMemory phys(1 * kGiB, 512, 7);
  mem::HugeTlbFs fs(&phys, 512, 2);
  mem::AddressSpace space(&phys, &fs);
  hugepage::HugeHeapConfig cfg;
  cfg.coalesce_on_free = coalesce;
  hugepage::HugeHeap heap(space, fs, cfg);

  std::vector<VirtAddr> slots(workloads::trace_slot_count());
  Run r;
  for (const auto& op : ops) {
    if (op.kind == workloads::TraceOp::Kind::Malloc) {
      const auto res = heap.allocate(op.size);
      IBP_CHECK(res.addr != 0);
      slots[op.slot] = res.addr;
      r.cost += res.cost;
    } else {
      r.cost += heap.deallocate(slots[op.slot]).cost;
    }
  }
  heap.check_invariants();
  r.splits = heap.stats().splits;
  r.coalesces = heap.stats().coalesces;
  r.scan_steps = heap.stats().scan_steps;
  return r;
}

}  // namespace

int main() {
  std::printf("ABL-COAL: no-coalesce-on-free (paper design) vs eager "
              "coalescing, same-size churn trace\n\n");
  workloads::TraceConfig tcfg;
  tcfg.odd_fraction = 0.0;  // pure same-size churn, the targeted pattern
  const auto ops = workloads::make_abinit_trace(tcfg);

  const Run off = replay(false, ops);
  const Run on = replay(true, ops);

  TextTable t({"mode", "alloc+free cost [us]", "splits", "coalesces",
               "scan steps"});
  t.add_row("no coalesce (paper)", ps_to_us(off.cost), off.splits,
            off.coalesces, off.scan_steps);
  t.add_row("eager coalesce", ps_to_us(on.cost), on.splits, on.coalesces,
            on.scan_steps);
  t.print();
  std::printf("\nchurn avoided: %.1f %% cheaper without coalescing on this "
              "trace\n",
              (1.0 - static_cast<double>(off.cost) /
                         static_cast<double>(on.cost)) * 100.0);
  return 0;
}
