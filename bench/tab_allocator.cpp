// TAB-ALLOC — the §2/§3.2 allocator claims: on an Abinit-like
// allocation trace, the paper's hugepage allocator (address-ordered first
// fit, 4 KB chunks, external metadata, no coalescing on free) beats the
// libc-style general-purpose path (in-band headers, eager coalescing,
// mmap for large blocks) by up to ~10x, because same-size alloc/free
// churn makes the latter coalesce and re-split continuously — and every
// mmap-threshold allocation pays syscall + page-fault costs.
//
// Measured two ways: real host time of the allocator data structures
// (google-benchmark) and the simulator's virtual-time cost model.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "ibp/hugepage/library.hpp"
#include "ibp/mem/address_space.hpp"
#include "ibp/workloads/alloc_trace.hpp"

using namespace ibp;

namespace {

struct World {
  mem::PhysicalMemory phys{1 * kGiB, 512, 7};
  mem::HugeTlbFs fs{&phys, 512, 2};
  mem::AddressSpace space{&phys, &fs};
};

void replay(hugepage::Library& lib,
            const std::vector<workloads::TraceOp>& ops,
            std::vector<VirtAddr>& slots, TimePs* vcost) {
  for (const auto& op : ops) {
    if (op.kind == workloads::TraceOp::Kind::Malloc) {
      const auto r = lib.malloc(op.size);
      slots[op.slot] = r.addr;
      if (vcost) *vcost += r.cost;
    } else {
      const auto r = lib.free(slots[op.slot]);
      if (vcost) *vcost += r.cost;
    }
  }
}

hugepage::LibraryConfig lib_config(bool enabled) {
  hugepage::LibraryConfig cfg;
  cfg.enabled = enabled;
  return cfg;
}

void BM_HugepageLibrary(benchmark::State& state) {
  const auto ops = workloads::make_abinit_trace();
  std::vector<VirtAddr> slots(workloads::trace_slot_count());
  for (auto _ : state) {
    state.PauseTiming();
    World w;
    hugepage::Library lib(w.space, w.fs, lib_config(true));
    state.ResumeTiming();
    replay(lib, ops, slots, nullptr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.size()));
}
BENCHMARK(BM_HugepageLibrary);

void BM_LibcStyleBaseline(benchmark::State& state) {
  const auto ops = workloads::make_abinit_trace();
  std::vector<VirtAddr> slots(workloads::trace_slot_count());
  for (auto _ : state) {
    state.PauseTiming();
    World w;
    hugepage::Library lib(w.space, w.fs, lib_config(false));
    state.ResumeTiming();
    replay(lib, ops, slots, nullptr);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(ops.size()));
}
BENCHMARK(BM_LibcStyleBaseline);

}  // namespace

int main(int argc, char** argv) {
  // Virtual-time comparison (the simulator's allocator cost model).
  const auto ops = workloads::make_abinit_trace();
  std::printf("TAB-ALLOC: Abinit-like trace, %zu allocator operations\n\n",
              ops.size());
  TimePs huge_cost = 0, libc_cost = 0;
  std::uint64_t huge_steps = 0, libc_steps = 0, libc_coalesces = 0;
  {
    World w;
    hugepage::Library lib(w.space, w.fs, lib_config(true));
    std::vector<VirtAddr> slots(workloads::trace_slot_count());
    replay(lib, ops, slots, &huge_cost);
    huge_steps = lib.huge_heap().stats().scan_steps;
  }
  {
    World w;
    hugepage::Library lib(w.space, w.fs, lib_config(false));
    std::vector<VirtAddr> slots(workloads::trace_slot_count());
    replay(lib, ops, slots, &libc_cost);
    libc_steps = lib.libc_heap().stats().scan_steps;
    libc_coalesces = lib.libc_heap().stats().coalesces;
  }
  std::printf("virtual-time cost (includes OS work: faults, syscalls):\n"
              "  hugepage library %.1f us, libc-style %.1f us "
              "(%.1fx faster; paper: up to 10x)\n",
              ps_to_us(huge_cost), ps_to_us(libc_cost),
              static_cast<double>(libc_cost) /
                  static_cast<double>(huge_cost));
  std::printf("free-list scan steps: %llu vs %llu; libc coalesce ops: "
              "%llu\n\n",
              static_cast<unsigned long long>(huge_steps),
              static_cast<unsigned long long>(libc_steps),
              static_cast<unsigned long long>(libc_coalesces));

  // Host-side data-structure throughput (real time). This excludes the
  // simulated OS costs (page faults, mmap syscalls) that dominate the
  // virtual-time gap above; it characterizes the management layers only.
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
