// TAB-REG — the §5.1 registration-cost claim: registering a hugepage-
// backed buffer takes "down to 1 % of the time" of a 4 KB-backed buffer
// of the same size (fewer pages to pin, fewer translations to ship).
// Also shows the intermediate case the stock driver produces: hugepage
// pinning but pretend-4 KB translations.

#include <cstdio>

#include "bench_common.hpp"

using namespace ibp;

namespace {

TimePs measure_reg(const platform::PlatformConfig& plat,
                   mem::PageKind kind, bool patched_driver,
                   std::uint64_t bytes) {
  core::ClusterConfig cfg;
  cfg.platform = plat;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  cfg.hugepages_per_node = 2048;
  cfg.node_memory = 2 * kGiB;
  cfg.driver.hugepage_passthrough = patched_driver;
  core::Cluster cluster(cfg);
  TimePs cost = 0;
  cluster.run([&](core::RankEnv& env) {
    mem::Mapping& m = env.space().map(bytes, kind);
    const TimePs t0 = env.now();
    const verbs::Mr mr = env.verbs().reg_mr(m.va_base, bytes);
    cost = env.now() - t0;
    env.verbs().dereg_mr(mr);
  });
  return cost;
}

}  // namespace

int main() {
  const platform::PlatformConfig plat = platform::opteron_pcie_infinihost();
  std::printf("TAB-REG: memory registration cost [us], platform=%s\n\n",
              plat.name.c_str());

  TextTable t({"buffer", "4K pages", "hugepages (stock drv)",
               "hugepages (patched drv)", "patched vs 4K"});
  for (std::uint64_t bytes : {256 * kKiB, 1 * kMiB, 4 * kMiB, 16 * kMiB,
                              64 * kMiB}) {
    const TimePs small = measure_reg(plat, mem::PageKind::Small, true, bytes);
    const TimePs huge_stock =
        measure_reg(plat, mem::PageKind::Huge, false, bytes);
    const TimePs huge_patched =
        measure_reg(plat, mem::PageKind::Huge, true, bytes);
    char rel[32];
    std::snprintf(rel, sizeof rel, "%.2f %%",
                  100.0 * static_cast<double>(huge_patched) /
                      static_cast<double>(small));
    t.add_row(bench::human_bytes(bytes), ps_to_us(small),
              ps_to_us(huge_stock), ps_to_us(huge_patched),
              std::string(rel));
  }
  t.print();
  std::printf("\n(paper: hugepage registration down to ~1 %% of the 4 KB "
              "time)\n");
  return 0;
}
