// EXT-UD — extension: hybrid UD-eager transport (MVAPICH-UD style)
// against the RC-only stack the paper used. Two effects:
//   * latency — UD send completions skip the RC ACK round;
//   * memory  — RC preposts bounce slots per peer, UD one shared pool,
//     so the pinned prepost footprint stays flat as ranks grow.

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/mpi/comm.hpp"

using namespace ibp;

namespace {

TimePs small_latency(bool ud) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  mpi::CommConfig ccfg;
  ccfg.ud_eager = ud;
  constexpr int kIters = 30;
  TimePs dt = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    const VirtAddr buf = env.alloc(4 * kKiB);
    if (env.rank() == 0) {
      for (int i = 0; i < kIters; ++i) {
        comm.send(buf, 64, 1, i);
        comm.recv(buf, 64, 1, 1000 + i);
      }
    } else {
      const TimePs t0 = env.now();
      for (int i = 0; i < kIters; ++i) {
        comm.recv(buf, 64, 0, i);
        comm.send(buf, 64, 0, 1000 + i);
      }
      dt = (env.now() - t0) / (2 * kIters);
    }
  });
  return dt;
}

std::uint64_t prepost_bytes(int nodes, bool ud) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = nodes;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  mpi::CommConfig ccfg;
  ccfg.ud_eager = ud;
  std::uint64_t pinned = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    if (env.rank() == 0)
      pinned = env.space().pinned_pages() * kSmallPageSize;
    comm.barrier();
  });
  return pinned;
}

}  // namespace

int main() {
  std::printf("EXT-UD: hybrid UD-eager transport vs RC-only\n\n");
  const TimePs rc = small_latency(false);
  const TimePs ud = small_latency(true);
  std::printf("64 B half-round-trip latency: RC %.2f us, UD %.2f us "
              "(%.1f %% lower — no ACK round on the send CQE)\n\n",
              ps_to_us(rc), ps_to_us(ud),
              (1.0 - static_cast<double>(ud) / static_cast<double>(rc)) *
                  100.0);

  std::printf("preposted/pinned transport memory per rank (the UD "
              "scalability property):\n");
  TextTable t({"nodes (peers)", "RC-only", "RC + UD pool"});
  for (int nodes : {2, 4, 8}) {
    // The UD build still carries the RC slots for bulk traffic; the point
    // is that the *growth* with peers comes only from the RC part, while
    // a UD-only eager design (tracked separately below) stays flat.
    t.add_row(std::to_string(nodes) + " (" + std::to_string(nodes - 1) + ")",
              bench::human_bytes(prepost_bytes(nodes, false)),
              bench::human_bytes(prepost_bytes(nodes, true)));
  }
  t.print();
  std::printf("\n(RC prepost grows with the peer count; the UD pool adds a "
              "constant. A UD-only eager stack would hold the transport "
              "footprint flat — the motivation behind MVAPICH-UD.)\n");
  return 0;
}
