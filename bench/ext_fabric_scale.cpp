// EXT-FABRIC — extension: the sharded serving fabric scaled across
// server ranks.
//
// A FabricClient drives closed-loop bulk traffic whose responses exceed
// the stripe threshold, so every response is split into stripe-segment
// chunks fanned out over the server fleet and reassembled client-side.
// The per-byte serving cost (shard-arena reads, response staging, eager
// transport) lives on the server ranks' virtual timelines, so doubling
// the fleet parallelises it while the client pays only its reassembly
// pass — the multi-rail argument: many QPs carry one payload.
//
// Two sweeps and one contract:
//   * scale  — 1 -> 8 server ranks at a fixed stripe width, asserting
//     >= 2x bulk-response throughput at 4 servers vs 1,
//   * width  — stripe width 1 -> 4 on a fixed 4-server fleet,
//   * golden — a 1-server fabric carrying un-striped traffic must be
//     byte-identical (trace hash and span) to the plain RpcServer path.
//
// Deterministic: identical seeds produce byte-identical output (the CI
// fabric-smoke job runs this twice and diffs the JSON).
//
// Optional arguments:
//   --placement=POLICY      plan every buffer with the named policy
//                           (hugepage library on)
//   --shard-map=STRAT       hash | range | affinity (default hash)
//   --fault=SPEC            fault-plan DSL applied to the sweep runs
//                           (the golden pair always runs fault-free);
//                           a plan with crash directives arms the
//                           client health monitor
//   --fault-file=PATH       fault plan from a file (appended to --fault)
//   --recovery=MODE         failfast | repost transport recovery
//   --short                 fewer requests (CI smoke mode)
//   --json=PATH             also write results as JSON
//   --request-trace-out=PATH  enable per-request tracing; the file holds
//                           the last sweep run's JSONL stream

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ibp/fabric/fabric.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/telemetry/reqtrace.hpp"

using namespace ibp;

namespace {

constexpr std::uint32_t kBulkBytes = 64 * kKiB;  // striped response size

std::string g_trace_out;  // --request-trace-out (empty = tracing off)
fault::FaultPlan g_plan;  // --fault / --fault-file (sweep runs only)
bool g_repost = false;    // --recovery=repost

struct RunOut {
  loadgen::GenResult gen;
  fabric::FabricClientStats fab;
  rpc::ClientStats links;
  std::uint32_t servers = 0;
  std::uint32_t width = 0;
  std::uint32_t epoch = 0;
  double shed_total_metric = 0.0;

  double bulk_mbps() const {
    return gen.span > 0 ? static_cast<double>(fab.reassembled_bytes) * 1e12 /
                              static_cast<double>(gen.span) / 1e6
                        : 0.0;
  }
};

core::ClusterConfig cluster_config(int servers, const std::string& policy,
                                   bool faulted) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = servers + 1;  // rank 0 is the client
  cfg.ranks_per_node = 1;
  if (!policy.empty()) {
    cfg.placement_policy = policy;
    cfg.hugepage_library = true;
  }
  if (faulted) cfg.fault = g_plan;
  if (!g_trace_out.empty()) cfg.request_trace.enabled = true;
  return cfg;
}

fabric::FabricConfig fabric_config(std::uint32_t width,
                                   fabric::ShardStrategy strategy) {
  fabric::FabricConfig fc;
  fc.stripe_threshold = 8 * kKiB;
  fc.stripe_width = width;
  fc.shard_strategy = strategy;
  if (!g_plan.crashes.empty()) {
    // A crash directive arms the health monitor: requests that the dead
    // server black-holes must time out and fail over instead of hanging
    // the closed loop forever.
    fc.fail_after = 2;
    fc.rpc.request_timeout = us(4000);
    fc.rpc.max_retries = 1;
  }
  return fc;
}

/// Closed-loop bulk traffic against `servers` ranks, striped `width` wide.
RunOut run_fabric(std::uint32_t servers, std::uint32_t width,
                  std::uint64_t requests, fabric::ShardStrategy strategy,
                  const std::string& policy) {
  core::Cluster cluster(
      cluster_config(static_cast<int>(servers), policy, true));
  RunOut out;
  out.servers = servers;
  out.width = width;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    if (g_repost) mc.recovery = mpi::CommConfig::Recovery::Repost;
    mpi::Comm comm(env, mc);
    const fabric::FabricConfig fc = fabric_config(width, strategy);
    if (env.rank() != 0) {
      fabric::FabricServer server(comm, {0}, fc);
      server.serve();
      return;
    }
    std::vector<int> ranks;
    for (std::uint32_t s = 1; s <= servers; ++s)
      ranks.push_back(static_cast<int>(s));
    fabric::FabricClient client(comm, ranks, fc);
    loadgen::Workload w;
    w.request_bytes = 64;
    w.tenants = 8;
    w.bulk_fraction = 1.0;  // every request is a striped bulk read
    w.bulk_response_bytes = kBulkBytes;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 4;
    cc.requests = requests;
    cc.warmup = requests / 4;
    cc.seed = 13;
    out.gen = loadgen::run_closed_loop(client, w, cc);
    out.fab = client.stats();
    out.links = client.link_stats();
    out.epoch = client.shard_map().epoch();
    client.close();
  });
  out.shed_total_metric = cluster.metrics().value("rpc.shed_total");
  if (!g_trace_out.empty()) {
    // Overwrite each sweep point; the last run's stream wins (the golden
    // pair below does not touch the file).
    std::ofstream tout(g_trace_out);
    if (cluster.request_tracer() != nullptr)
      cluster.request_tracer()->write_jsonl(tout);
  }
  return out;
}

struct GoldenOut {
  loadgen::GenResult rpc;
  loadgen::GenResult fab;
};

/// Golden-equivalence: identical un-striped workload through the plain
/// RpcClient/RpcServer pair and through a 1-server fabric. The fabric
/// must be a transparent wrapper: same trace hash, same virtual span.
GoldenOut run_golden(std::uint64_t requests, const std::string& policy) {
  GoldenOut out;
  loadgen::Workload w;
  w.request_bytes = 128;
  w.response_bytes = 256;
  w.tenants = 4;
  loadgen::ClosedLoopConfig cc;
  cc.workers = 4;
  cc.requests = requests;
  cc.warmup = requests / 4;
  cc.seed = 17;

  {
    core::Cluster cluster(cluster_config(1, policy, false));
    cluster.run([&](core::RankEnv& env) {
      mpi::CommConfig mc;
      mc.sge_gather = true;
      mpi::Comm comm(env, mc);
      rpc::RpcConfig rc;  // = FabricConfig{}.rpc
      if (env.rank() != 0) {
        rpc::RpcServer server(comm, {0}, rc);
        server.serve();
        return;
      }
      rpc::RpcClient client(comm, 1, rc);
      out.rpc = loadgen::run_closed_loop(client, w, cc);
      client.close();
    });
  }
  {
    core::Cluster cluster(cluster_config(1, policy, false));
    cluster.run([&](core::RankEnv& env) {
      mpi::CommConfig mc;
      mc.sge_gather = true;
      mpi::Comm comm(env, mc);
      const fabric::FabricConfig fc;
      if (env.rank() != 0) {
        fabric::FabricServer server(comm, {0}, fc);
        server.serve();
        return;
      }
      fabric::FabricClient client(comm, {1}, fc);
      out.fab = loadgen::run_closed_loop(client, w, cc);
      client.close();
    });
  }
  return out;
}

void print_result(const RunOut& r) {
  std::printf(
      "  %u servers x%u  %6llu ok  %4llu shed  %7.1f MB/s  %8.0f req/s  "
      "p50 %8.1f us  p99 %8.1f us  %5llu skips\n",
      r.servers, r.width, static_cast<unsigned long long>(r.gen.ok),
      static_cast<unsigned long long>(r.gen.shed), r.bulk_mbps(),
      r.gen.achieved_rps(), r.gen.latency_ns.p50() / 1000.0,
      r.gen.latency_ns.p99() / 1000.0,
      static_cast<unsigned long long>(r.fab.adaptive_skips));
}

void json_result(std::ofstream& out, const RunOut& r, const char* indent) {
  char hash[32];
  std::snprintf(hash, sizeof(hash), "0x%016llx",
                static_cast<unsigned long long>(r.gen.trace_hash));
  out << indent << "{\"servers\": " << r.servers
      << ", \"width\": " << r.width << ", \"issued\": " << r.gen.issued
      << ", \"ok\": " << r.gen.ok << ", \"shed\": " << r.gen.shed
      << ", \"rejected\": " << r.gen.rejected << ",\n"
      << indent << " \"achieved_rps\": "
      << static_cast<std::uint64_t>(r.gen.achieved_rps())
      << ", \"bulk_mbps\": " << static_cast<std::uint64_t>(r.bulk_mbps())
      << ", \"p50_us\": " << r.gen.latency_ns.p50() / 1000.0
      << ", \"p95_us\": " << r.gen.latency_ns.p95() / 1000.0
      << ", \"p99_us\": " << r.gen.latency_ns.p99() / 1000.0 << ",\n"
      << indent << " \"stripes\": " << r.fab.stripes
      << ", \"segments\": " << r.fab.segments
      << ", \"reassembled_bytes\": " << r.fab.reassembled_bytes
      << ", \"adaptive_skips\": " << r.fab.adaptive_skips << ",\n"
      << indent << " \"shed_total\": "
      << static_cast<std::uint64_t>(r.shed_total_metric)
      << ", \"credit_stalls\": " << r.links.credit_stalls
      << ", \"qos_stalls\": " << r.links.qos_stalls
      << ", \"retries\": " << r.links.retries;
  if (!g_plan.empty()) {
    // Failover fields only appear on faulted runs, keeping the default
    // fault-free JSON byte-identical to what older runs produced.
    out << ",\n"
        << indent << " \"epoch\": " << r.epoch
        << ", \"failovers\": " << r.fab.failovers
        << ", \"rerouted\": " << r.fab.rerouted
        << ", \"lost\": " << r.gen.timed_out
        << ", \"readmissions\": " << r.fab.readmissions;
  }
  out << ", \"trace_hash\": \"" << hash << "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string placement, json_path, shard = "hash";
  std::string fault_spec, fault_file, recovery;
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--placement=", 12) == 0) {
      placement = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--shard-map=", 12) == 0) {
      shard = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--fault=", 8) == 0) {
      fault_spec = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--fault-file=", 13) == 0) {
      fault_file = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--recovery=", 11) == 0) {
      recovery = argv[i] + 11;
    } else if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--request-trace-out=", 20) == 0) {
      g_trace_out = argv[i] + 20;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  const auto strategy = fabric::shard_strategy_from_name(shard);
  if (!strategy.has_value()) {
    std::fprintf(stderr, "bad --shard-map (hash|range|affinity)\n");
    return 2;
  }
  if (!fault_file.empty()) {
    std::ifstream in(fault_file);
    if (!in) {
      std::fprintf(stderr, "cannot open fault file %s\n",
                   fault_file.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    if (!fault_spec.empty()) fault_spec += ';';
    fault_spec += ss.str();
  }
  if (!fault_spec.empty()) g_plan = fault::parse_fault_plan(fault_spec);
  if (!recovery.empty()) {
    if (recovery == "repost") {
      g_repost = true;
    } else if (recovery != "failfast") {
      std::fprintf(stderr, "bad --recovery (failfast|repost)\n");
      return 2;
    }
  }

  std::printf("EXT-FABRIC — sharded serving fabric, striped bulk reads%s\n\n",
              placement.empty() ? "" : (" [" + placement + "]").c_str());
  if (!g_plan.empty())
    std::printf("fault plan (sweeps only, golden stays clean): %s\n\n",
                fault::describe(g_plan).c_str());

  const std::uint64_t requests = short_mode ? 48 : 160;
  const std::uint32_t kWidth = 4;
  const std::vector<std::uint32_t> scale =
      short_mode ? std::vector<std::uint32_t>{1, 4}
                 : std::vector<std::uint32_t>{1, 2, 4, 8};
  const std::vector<std::uint32_t> widths =
      short_mode ? std::vector<std::uint32_t>{1, 4}
                 : std::vector<std::uint32_t>{1, 2, 4};

  std::printf("scale sweep (%u KiB bulk responses, stripe width %u):\n",
              kBulkBytes / 1024, kWidth);
  std::vector<RunOut> scale_runs;
  double mbps1 = 0, mbps4 = 0;
  for (std::uint32_t s : scale) {
    scale_runs.push_back(run_fabric(s, kWidth, requests, *strategy,
                                    placement));
    print_result(scale_runs.back());
    if (s == 1) mbps1 = scale_runs.back().bulk_mbps();
    if (s == 4) mbps4 = scale_runs.back().bulk_mbps();
  }
  const double scaling = mbps1 > 0 ? mbps4 / mbps1 : 0.0;
  std::printf("  4-server scaling: %.2fx\n\n", scaling);

  std::printf("width sweep (4 servers):\n");
  std::vector<RunOut> width_runs;
  for (std::uint32_t wd : widths) {
    width_runs.push_back(run_fabric(4, wd, requests, *strategy, placement));
    print_result(width_runs.back());
  }
  std::printf("\n");

  const GoldenOut golden = run_golden(requests, placement);
  const bool identical = golden.rpc.trace_hash == golden.fab.trace_hash &&
                         golden.rpc.span == golden.fab.span;
  std::printf("golden: rpc 0x%016llx  1-server fabric 0x%016llx  %s\n",
              static_cast<unsigned long long>(golden.rpc.trace_hash),
              static_cast<unsigned long long>(golden.fab.trace_hash),
              identical ? "identical" : "DIVERGED");

  const fabric::ShardMap map(4, *strategy);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    char digest[32];
    std::snprintf(digest, sizeof(digest), "0x%016llx",
                  static_cast<unsigned long long>(map.digest()));
    out << "{\n  \"bench\": \"ext_fabric_scale\",\n  \"placement\": \""
        << (placement.empty() ? "paper-default" : placement)
        << "\",\n  \"bulk_bytes\": " << kBulkBytes
        << ",\n  \"shard_map\": {\"strategy\": \""
        << fabric::shard_strategy_name(*strategy)
        << "\", \"epoch\": 0, \"digest\": \"" << digest << "\"},\n";
    out << "  \"scale\": [\n";
    for (std::size_t i = 0; i < scale_runs.size(); ++i) {
      json_result(out, scale_runs[i], "    ");
      out << (i + 1 < scale_runs.size() ? ",\n" : "\n");
    }
    out << "  ],\n  \"width\": [\n";
    for (std::size_t i = 0; i < width_runs.size(); ++i) {
      json_result(out, width_runs[i], "    ");
      out << (i + 1 < width_runs.size() ? ",\n" : "\n");
    }
    char rh[32], fh[32];
    std::snprintf(rh, sizeof(rh), "0x%016llx",
                  static_cast<unsigned long long>(golden.rpc.trace_hash));
    std::snprintf(fh, sizeof(fh), "0x%016llx",
                  static_cast<unsigned long long>(golden.fab.trace_hash));
    out << "  ],\n  \"scaling_4x\": " << scaling
        << ",\n  \"golden\": {\"rpc_trace\": \"" << rh
        << "\", \"fabric_trace\": \"" << fh << "\", \"identical\": "
        << (identical ? "true" : "false") << "}\n}\n";
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: 1-server fabric diverged from the RpcServer path\n");
    return 1;
  }
  // A seeded fault can legitimately destroy scaling (that is the point
  // of injecting it), so the perf floor only binds fault-free runs.
  if (g_plan.empty() && mbps1 > 0 && scaling < 2.0) {
    std::fprintf(stderr, "FAIL: 4-server scaling %.2fx < 2x\n", scaling);
    return 1;
  }
  return 0;
}
