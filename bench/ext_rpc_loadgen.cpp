// EXT-RPC — extension: the RPC serving layer measured with deterministic
// load generators.
//
// Open loop: 128 B requests offered well above capacity, batching on vs
// off. With batching, queued requests coalesce into one gather WR (SGE
// budget from the placement plan), amortising per-WR posting overhead on
// both sides — the §7 scatter/gather argument applied to serving instead
// of MPI datatypes. Off, every request pays its own WR.
//
// Closed loop: a worker pool against a small admission queue. Uncontended
// (few workers) vs 2x overload (workers far beyond saturation): admission
// control sheds the excess with Status::Overloaded, so the p99 of the
// *accepted* requests stays within a small multiple of the uncontended
// p99 instead of growing with the offered load.
//
// Deterministic: identical seeds produce byte-identical output (the CI
// rpc-smoke job runs this twice and diffs the JSON).
//
// Optional arguments:
//   --mode=open|closed|all  which experiment (default all)
//   --placement=POLICY      plan every buffer with the named policy
//                           (hugepage library on)
//   --short                 fewer requests (CI smoke mode)
//   --json=PATH             also write results as JSON
//   --request-trace-out=PATH  enable per-request tracing; the file holds
//                           the last run's exemplar/stage JSONL stream

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "bench_common.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/rpc/rpc.hpp"
#include "ibp/telemetry/reqtrace.hpp"

using namespace ibp;

namespace {

constexpr std::uint32_t kClosedQueueCap = 8;

std::string g_trace_out;  // --request-trace-out (empty = tracing off)

/// Overwrite the trace file with this run's stream; the last run wins,
/// matching how --metrics-out snapshots behave elsewhere.
void dump_request_trace(core::Cluster& cluster) {
  if (g_trace_out.empty()) return;
  std::ofstream out(g_trace_out);
  if (cluster.request_tracer() != nullptr)
    cluster.request_tracer()->write_jsonl(out);
}

struct RunOut {
  loadgen::GenResult gen;
  rpc::ServerStats server;
  rpc::ClientStats client;
  double req_per_wr = 0.0;
  double shed_metric = 0.0;  // cluster metric rpc.shed (latched probe)
  double shed_total_metric = 0.0;  // cluster metric rpc.shed_total
};

core::ClusterConfig cluster_config(const std::string& policy) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  if (!policy.empty()) {
    cfg.placement_policy = policy;
    cfg.hugepage_library = true;
  }
  if (!g_trace_out.empty()) cfg.request_trace.enabled = true;
  return cfg;
}

/// Open loop, offered above capacity: achieved req/s is the serving
/// capacity of the configuration.
RunOut run_open(bool batching, double rate, std::uint64_t requests,
                const std::string& policy) {
  core::Cluster cluster(cluster_config(policy));
  RunOut out;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    rpc::RpcConfig rc;
    rc.batching = batching;
    rc.max_payload = 256;  // right-size the slot rings to the workload
    // Light application work: the transport, not the handler, is the
    // bottleneck under measurement.
    rc.service_base = ns(200);
    rc.service_per_byte_ps = 0;
    if (env.rank() == 0) {
      rpc::RpcServer server(comm, {1}, rc);
      server.serve();
      out.server = server.stats();
      return;
    }
    rpc::RpcClient client(comm, 0, rc);
    loadgen::Workload w;
    w.request_bytes = 128;
    loadgen::OpenLoopConfig oc;
    oc.rate_rps = rate;
    oc.requests = requests;
    // Steady-state measurement: the warmup fills the client queue and
    // first-touches the slot rings, so the pin-down cache is hot before
    // the span starts.
    oc.warmup = requests / 2;
    oc.seed = 7;
    out.gen = loadgen::run_open_loop(client, w, oc);
    const rpc::ClientStats& cs = client.stats();
    out.req_per_wr = cs.batches != 0
                         ? static_cast<double>(cs.batched_requests) /
                               static_cast<double>(cs.batches)
                         : 0.0;
    out.client = cs;
    client.close();
  });
  out.shed_metric = cluster.metrics().value("rpc.shed");
  out.shed_total_metric = cluster.metrics().value("rpc.shed_total");
  dump_request_trace(cluster);
  return out;
}

RunOut run_closed(std::uint32_t workers, std::uint64_t requests,
                  const std::string& policy) {
  core::Cluster cluster(cluster_config(policy));
  RunOut out;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    rpc::RpcConfig rc;
    rc.max_payload = 256;      // right-size the slot rings to the workload
    rc.server_queue_cap = kClosedQueueCap;  // small queue: shed early
    if (env.rank() == 0) {
      rpc::RpcServer server(comm, {1}, rc);
      server.serve();
      out.server = server.stats();
      return;
    }
    rpc::RpcClient client(comm, 0, rc);
    loadgen::Workload w;
    w.request_bytes = 128;
    loadgen::ClosedLoopConfig cc;
    cc.workers = workers;
    cc.requests = requests;
    cc.warmup = requests / 4;
    cc.seed = 11;
    out.gen = loadgen::run_closed_loop(client, w, cc);
    const rpc::ClientStats& cs = client.stats();
    out.req_per_wr = cs.batches != 0
                         ? static_cast<double>(cs.batched_requests) /
                               static_cast<double>(cs.batches)
                         : 0.0;
    out.client = cs;
    client.close();
  });
  out.shed_metric = cluster.metrics().value("rpc.shed");
  out.shed_total_metric = cluster.metrics().value("rpc.shed_total");
  dump_request_trace(cluster);
  return out;
}

void print_result(const char* label, const RunOut& r) {
  std::printf(
      "  %-12s %8llu ok  %6llu shed  %6llu rej  %8.0f req/s  "
      "p50 %7.1f us  p99 %7.1f us  %5.1f req/WR\n",
      label, static_cast<unsigned long long>(r.gen.ok),
      static_cast<unsigned long long>(r.gen.shed),
      static_cast<unsigned long long>(r.gen.rejected), r.gen.achieved_rps(),
      r.gen.latency_ns.p50() / 1000.0, r.gen.latency_ns.p99() / 1000.0,
      r.req_per_wr);
}

void json_result(std::ofstream& out, const char* key, const RunOut& r,
                 const char* indent) {
  char hash[32];
  std::snprintf(hash, sizeof(hash), "0x%016llx",
                static_cast<unsigned long long>(r.gen.trace_hash));
  out << indent << "\"" << key << "\": {\"issued\": " << r.gen.issued
      << ", \"ok\": " << r.gen.ok << ", \"shed\": " << r.gen.shed
      << ", \"rejected\": " << r.gen.rejected << ",\n"
      << indent << "  \"achieved_rps\": " << static_cast<std::uint64_t>(
             r.gen.achieved_rps())
      << ", \"p50_us\": " << r.gen.latency_ns.p50() / 1000.0
      << ", \"p95_us\": " << r.gen.latency_ns.p95() / 1000.0
      << ", \"p99_us\": " << r.gen.latency_ns.p99() / 1000.0 << ",\n"
      << indent << "  \"req_per_wr\": " << r.req_per_wr
      << ", \"rpc_shed\": " << static_cast<std::uint64_t>(r.shed_metric)
      << ",\n"
      << indent
      << "  \"shed_total\": " << static_cast<std::uint64_t>(
             r.shed_total_metric)
      << ", \"credit_stalls\": " << r.client.credit_stalls
      << ", \"qos_stalls\": " << r.client.qos_stalls
      << ", \"retries\": " << r.client.retries
      << ", \"trace_hash\": \"" << hash << "\"}";
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "all", placement, json_path;
  bool short_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--mode=", 7) == 0) {
      mode = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--placement=", 12) == 0) {
      placement = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--short") == 0) {
      short_mode = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--request-trace-out=", 20) == 0) {
      g_trace_out = argv[i] + 20;
    } else {
      std::fprintf(stderr, "unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  const bool do_open = mode == "all" || mode == "open";
  const bool do_closed = mode == "all" || mode == "closed";
  if (!do_open && !do_closed) {
    std::fprintf(stderr, "bad --mode (open|closed|all)\n");
    return 2;
  }

  std::printf("EXT-RPC — serving layer under deterministic load%s\n\n",
              placement.empty() ? "" : (" [" + placement + "]").c_str());

  RunOut batched, unbatched, uncont, overload;
  const double rate = 8e6;  // far above capacity: measures capacity
  const std::uint64_t open_n = short_mode ? 1500 : 6000;
  const std::uint64_t closed_n = short_mode ? 1200 : 5000;
  const std::uint32_t w_base = 2, w_over = 32;

  if (do_open) {
    batched = run_open(true, rate, open_n, placement);
    unbatched = run_open(false, rate, open_n, placement);
    std::printf("open loop, 128 B requests offered at %.0fM req/s:\n",
                rate / 1e6);
    print_result("batched", batched);
    print_result("unbatched", unbatched);
    std::printf("  batching speedup: %.2fx\n\n",
                unbatched.gen.achieved_rps() > 0
                    ? batched.gen.achieved_rps() /
                          unbatched.gen.achieved_rps()
                    : 0.0);
  }
  if (do_closed) {
    uncont = run_closed(w_base, closed_n, placement);
    overload = run_closed(w_over, closed_n, placement);
    std::printf("closed loop, admission queue cap %u:\n", kClosedQueueCap);
    print_result("2 workers", uncont);
    print_result("32 workers", overload);
    std::printf("  accepted p99 under overload: %.2fx uncontended\n\n",
                uncont.gen.latency_ns.p99() > 0
                    ? overload.gen.latency_ns.p99() /
                          uncont.gen.latency_ns.p99()
                    : 0.0);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"ext_rpc_loadgen\",\n  \"mode\": \"" << mode
        << "\",\n  \"placement\": \""
        << (placement.empty() ? "paper-default" : placement) << "\"";
    if (do_open) {
      out << ",\n  \"open\": {\n    \"offered_rps\": "
          << static_cast<std::uint64_t>(rate) << ",\n";
      json_result(out, "batched", batched, "    ");
      out << ",\n";
      json_result(out, "unbatched", unbatched, "    ");
      out << ",\n    \"speedup\": "
          << (unbatched.gen.achieved_rps() > 0
                  ? batched.gen.achieved_rps() / unbatched.gen.achieved_rps()
                  : 0.0)
          << "\n  }";
    }
    if (do_closed) {
      out << ",\n  \"closed\": {\n    \"workers_uncontended\": " << w_base
          << ", \"workers_overload\": " << w_over << ",\n";
      json_result(out, "uncontended", uncont, "    ");
      out << ",\n";
      json_result(out, "overload", overload, "    ");
      out << ",\n    \"p99_ratio\": "
          << (uncont.gen.latency_ns.p99() > 0
                  ? overload.gen.latency_ns.p99() /
                        uncont.gen.latency_ns.p99()
                  : 0.0)
          << "\n  }";
    }
    out << "\n}\n";
  }
  return 0;
}
