// ABL-RNDV — rendezvous-protocol ablation (extension beyond the paper):
// the RDMA-write rendezvous the paper's MVAPICH used (RTS → CTS → write →
// FIN, two control round trips) versus an RDMA-read rendezvous (RTS
// advertises the sender's registered buffer; the receiver pulls and
// FINs — one hop fewer). The latency gap is one control-message flight,
// so it matters most just above the rendezvous threshold and washes out
// for bandwidth-bound sizes.

#include <cstdio>

#include "bench_common.hpp"
#include "ibp/mpi/comm.hpp"

using namespace ibp;

namespace {

TimePs measure(const platform::PlatformConfig& plat, bool read,
               std::uint64_t bytes) {
  core::ClusterConfig cfg;
  cfg.platform = plat;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  mpi::CommConfig ccfg;
  ccfg.rndv_read = read;
  constexpr int kIters = 20;
  constexpr int kWarmup = 3;

  TimePs dt = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    const VirtAddr buf = env.alloc(bytes);
    if (env.rank() == 0) {
      for (int i = 0; i < kIters + kWarmup; ++i) {
        comm.send(buf, bytes, 1, i);
        comm.recv(buf, 1, 1, 10000 + i);
      }
    } else {
      TimePs t0 = 0;
      for (int i = 0; i < kIters + kWarmup; ++i) {
        if (i == kWarmup) t0 = env.now();
        comm.recv(buf, bytes, 0, i);
        comm.send(buf, 1, 0, 10000 + i);
      }
      dt = (env.now() - t0) / kIters;
    }
  });
  return dt;
}

}  // namespace

int main() {
  std::printf("ABL-RNDV: RDMA-write vs RDMA-read rendezvous, round-trip "
              "per message [us]\n\n");
  for (const auto& plat : {platform::systemp_gx_ehca(),
                           platform::opteron_pcie_infinihost()}) {
    std::printf("platform=%s\n", plat.name.c_str());
    TextTable t({"msg size", "write rndv [us]", "read rndv [us]",
                 "read saves"});
    for (std::uint64_t bytes : {24 * kKiB, 64 * kKiB, 256 * kKiB,
                                1 * kMiB, 4 * kMiB}) {
      const TimePs w = measure(plat, false, bytes);
      const TimePs r = measure(plat, true, bytes);
      char rel[32];
      std::snprintf(rel, sizeof rel, "%.1f %%",
                    (1.0 - static_cast<double>(r) / static_cast<double>(w)) *
                        100.0);
      t.add_row(bench::human_bytes(bytes), ps_to_us(w), ps_to_us(r),
                std::string(rel));
    }
    t.print();
    std::printf("\n");
  }
  std::printf("(extension: the 2006 paper's stack used write rendezvous; "
              "read rendezvous trades one handshake hop for holding the "
              "sender's registration across the transfer)\n");
  return 0;
}
