// TAB-POST — §4 text findings about the posting cost: (a) the time to
// post a send work request is approximately constant from 1 byte to
// 512 KB (paper: 1300–1500 TBR ticks on System p), and (b) with multiple
// SGEs it grows sub-linearly (128 SGEs only ~3x one SGE).

#include <cstdio>

#include "bench_common.hpp"

using namespace ibp;

int main() {
  const platform::PlatformConfig plat = platform::systemp_gx_ehca();
  const cpu::TimeBase tbr(plat.tbr_hz);

  std::printf("TAB-POST: CPU-side post cost, platform=%s\n\n",
              plat.name.c_str());

  // (a) post cost vs message size, single SGE spanning multiple pages.
  {
    TextTable t({"message size", "post [TBR ticks]"});
    const std::uint64_t sizes[] = {1, 64, 1024, 16 * kKiB, 128 * kKiB,
                                   512 * kKiB};
    for (std::uint64_t bytes : sizes) {
      core::ClusterConfig cfg;
      cfg.platform = plat;
      cfg.nodes = 2;
      cfg.ranks_per_node = 1;
      core::Cluster cluster(cfg);
      TimePs post = 0;
      cluster.run([&](core::RankEnv& env) {
        auto& vctx = env.verbs();
        mem::Mapping& m =
            env.space().map(bytes + kSmallPageSize, mem::PageKind::Small);
        const verbs::Mr mr = vctx.reg_mr(m.va_base, m.length);
        auto q = vctx.wrap_qp(*env.state().qp_to[1 - env.rank()]);
        constexpr int kIters = 20;
        if (env.rank() == 1) {
          for (int i = 0; i < kIters; ++i) {
            hca::RecvWr wr;
            wr.sges = {{m.va_base, static_cast<std::uint32_t>(bytes),
                        mr.lkey}};
            vctx.post_recv(q, wr);
          }
          for (int i = 0; i < kIters; ++i) vctx.wait_recv();
          return;
        }
        RunningStats st;
        for (int i = 0; i < kIters; ++i) {
          hca::SendWr wr;
          wr.opcode = hca::Opcode::Send;
          wr.sges = {{m.va_base, static_cast<std::uint32_t>(bytes),
                      mr.lkey}};
          const TimePs t0 = env.now();
          vctx.post_send(q, wr);
          st.add(static_cast<double>(env.now() - t0));
          vctx.wait_send();
        }
        post = static_cast<TimePs>(st.mean());
      });
      t.add_row(bench::human_bytes(bytes),
                static_cast<double>(tbr.to_ticks(post)));
    }
    t.print();
    std::printf("(paper: approximately constant, 1300-1500 ticks)\n\n");
  }

  // (b) post cost vs number of SGEs.
  {
    TextTable t({"SGEs", "post [TBR ticks]", "vs 1 SGE"});
    double base = 0;
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
      bench::WrParams p;
      p.sges = n;
      p.sge_size = 64;
      const bench::WrTiming wt = bench::measure_send(plat, p);
      const double ticks = static_cast<double>(tbr.to_ticks(wt.post));
      if (n == 1) base = ticks;
      char rel[32];
      std::snprintf(rel, sizeof rel, "%.2fx", ticks / base);
      t.add_row(static_cast<std::uint64_t>(n), ticks, std::string(rel));
    }
    t.print();
    std::printf("(paper: 128 SGEs only ~3x the cost of 1 SGE)\n");
  }
  return 0;
}
