#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ibp/common/check.hpp"
#include "ibp/common/lru.hpp"
#include "ibp/common/rng.hpp"
#include "ibp/common/stats.hpp"
#include "ibp/common/table.hpp"
#include "ibp/common/types.hpp"

namespace ibp {
namespace {

TEST(Types, AlignHelpers) {
  EXPECT_EQ(align_up(0, 4096), 0u);
  EXPECT_EQ(align_up(1, 4096), 4096u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_down(4097, 4096), 4096u);
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
}

TEST(Types, PagesSpanned) {
  EXPECT_EQ(pages_spanned(0, 0, 4096), 0u);
  EXPECT_EQ(pages_spanned(0, 1, 4096), 1u);
  EXPECT_EQ(pages_spanned(0, 4096, 4096), 1u);
  EXPECT_EQ(pages_spanned(0, 4097, 4096), 2u);
  EXPECT_EQ(pages_spanned(4095, 2, 4096), 2u);
  EXPECT_EQ(pages_spanned(100, 8192, 4096), 3u);
}

TEST(Types, TimeUnits) {
  EXPECT_EQ(ns(1), 1000u);
  EXPECT_EQ(us(1), 1000000u);
  EXPECT_EQ(ms(1), 1000000000u);
  EXPECT_DOUBLE_EQ(ps_to_us(us(3)), 3.0);
}

TEST(Check, ThrowsWithMessage) {
  try {
    IBP_CHECK(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c.next_u64();
  }
  Rng a2(7), c2(8);
  EXPECT_NE(a2.next_u64(), c2.next_u64());
}

TEST(Rng, BoundedValuesInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, RoughlyUniform) {
  Rng rng(123);
  int buckets[10] = {};
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++buckets[rng.next_below(10)];
  for (int b = 0; b < 10; ++b) {
    EXPECT_GT(buckets[b], kN / 10 - kN / 50);
    EXPECT_LT(buckets[b], kN / 10 + kN / 50);
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng a(7);
  Rng b = a.fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all, a, b;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 100;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(RunningStats, MergeEmptyWithEmpty) {
  RunningStats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(RunningStats, MergeEmptyWithNonEmpty) {
  RunningStats empty, full;
  full.add(3.0);
  full.add(7.0);

  RunningStats a = empty;
  a.merge(full);  // empty ⊕ full adopts full verbatim
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);

  full.merge(empty);  // full ⊕ empty is a no-op
  EXPECT_EQ(full.count(), 2u);
  EXPECT_DOUBLE_EQ(full.mean(), 5.0);
  EXPECT_NEAR(full.variance(), 8.0, 1e-12);
}

TEST(RunningStats, MergeSingleSamples) {
  RunningStats a, b;
  a.add(2.0);
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_NEAR(a.variance(), 8.0, 1e-12);  // sample variance of {2, 6}
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
}

TEST(SampleSet, Quantiles) {
  SampleSet s;
  for (int i = 100; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.0, 1.0);
  EXPECT_NEAR(s.mean(), 50.5, 1e-12);
}

TEST(LruSet, EvictsLeastRecentlyUsed) {
  LruSet<int> lru(2);
  EXPECT_FALSE(lru.touch(1));
  EXPECT_FALSE(lru.touch(2));
  EXPECT_TRUE(lru.touch(1));   // 1 now MRU
  EXPECT_FALSE(lru.touch(3));  // evicts 2
  EXPECT_TRUE(lru.touch(1));
  EXPECT_FALSE(lru.touch(2));
  EXPECT_EQ(lru.size(), 2u);
}

TEST(LruSet, ZeroCapacityNeverHits) {
  LruSet<int> lru(0);
  EXPECT_FALSE(lru.touch(1));
  EXPECT_FALSE(lru.touch(1));
  EXPECT_EQ(lru.size(), 0u);
}

TEST(LruSet, EraseAndClear) {
  LruSet<int> lru(4);
  lru.touch(1);
  lru.touch(2);
  lru.erase(1);
  EXPECT_FALSE(lru.contains(1));
  EXPECT_TRUE(lru.contains(2));
  lru.clear();
  EXPECT_EQ(lru.size(), 0u);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row("x", 1.5);
  t.add_row("longer", 22.25);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("22.25"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row("only one"), SimError);
}


// ---------------------------------------------------------------------------
// LogHistogram: the serving-layer latency accumulator.

TEST(LogHistogram, EmptyReportsZero) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < 8; ++v) h.add(v);
  // Values below 2^3 land in unit buckets, so every quantile is exact.
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(1.0), 7.0);
  EXPECT_EQ(h.p50(), 3.0);
}

TEST(LogHistogram, QuantileErrorBoundedByEighth) {
  // One sub-bucket spans 1/8 of its octave, so the reported upper bound
  // exceeds the true value by at most 12.5 %.
  for (std::uint64_t v = 9; v < (1ull << 40); v = v * 3 + 7) {
    LogHistogram h;
    h.add(v);
    const double q = h.quantile(1.0);
    EXPECT_GE(q, static_cast<double>(v));
    EXPECT_LE(q, static_cast<double>(v) * 1.125 + 1.0) << "value " << v;
  }
}

TEST(LogHistogram, GoldenPercentilesUniform1To1000) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 1000u);
  // Nearest-rank p50 is sample 500 (bucket [480, 511]); p99 is sample
  // 990 (bucket [960, 1023]). quantile() reports bucket upper bounds.
  EXPECT_EQ(h.p50(), 511.0);
  EXPECT_EQ(h.p99(), 1023.0);
  EXPECT_EQ(h.stats().mean(), 500.5);
}

TEST(LogHistogram, MergeMatchesCombinedStream) {
  LogHistogram evens, odds, both;
  for (std::uint64_t v = 1; v <= 2000; ++v) {
    (v % 2 == 0 ? evens : odds).add(v);
    both.add(v);
  }
  evens.merge(odds);
  EXPECT_EQ(evens.count(), both.count());
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0})
    EXPECT_EQ(evens.quantile(q), both.quantile(q)) << "q=" << q;
  EXPECT_EQ(evens.stats().sum(), both.stats().sum());
}

TEST(LogHistogram, BucketRoundTrip) {
  for (std::uint64_t v : {0ull, 1ull, 7ull, 8ull, 9ull, 255ull, 256ull,
                          4095ull, 1ull << 20, (1ull << 63) + 5}) {
    const int b = LogHistogram::bucket_of(v);
    EXPECT_GE(LogHistogram::bucket_upper(b), v);
    EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_upper(b)), b);
  }
}

}  // namespace
}  // namespace ibp
