// UD (unreliable datagram) transport: adapter-level semantics and the
// hybrid UD-eager MPI path with cross-transport sequencing.

#include <gtest/gtest.h>

#include "ibp/hca/adapter.hpp"
#include "ibp/mpi/comm.hpp"

namespace ibp {
namespace {

TEST(UdQp, DatagramDeliversWithoutConnection) {
  mem::PhysicalMemory pm_a(16 * kMiB, 4, 1), pm_b(16 * kMiB, 4, 2);
  mem::HugeTlbFs fs_a(&pm_a, 4, 0), fs_b(&pm_b, 4, 0);
  mem::AddressSpace as_a(&pm_a, &fs_a), as_b(&pm_b, &fs_b);
  hca::Adapter a(0, hca::AdapterConfig{}), b(1, hca::AdapterConfig{});
  hca::CompletionQueue a_scq, a_rcq, b_scq, b_rcq;
  hca::QueuePair& qa = a.create_qp(&a_scq, &a_rcq, hca::QpType::UD);
  hca::QueuePair& qb = b.create_qp(&b_scq, &b_rcq, hca::QpType::UD);

  auto& ma = as_a.map(4096, mem::PageKind::Small);
  auto& mb = as_b.map(4096, mem::PageKind::Small);
  const auto ra = a.reg_mr(as_a, ma.va_base, 4096, kSmallPageSize);
  const auto rb = b.reg_mr(as_b, mb.va_base, 4096, kSmallPageSize);

  auto src = as_a.host_span(ma.va_base, 256);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i);

  hca::RecvWr rwr;
  rwr.sges = {{mb.va_base, 4096, rb.mr->lkey}};
  qb.post_recv(rwr, 0);

  hca::SendWr swr;
  swr.wr_id = 5;
  swr.sges = {{ma.va_base, 256, ra.mr->lkey}};
  swr.ud_dest = &qb;
  qa.post_send(swr, 0);

  const auto scqe = a_scq.poll(ms(10));
  ASSERT_TRUE(scqe);
  const auto rcqe = b_rcq.poll(ms(10));
  ASSERT_TRUE(rcqe);
  EXPECT_EQ(rcqe->byte_len, 256u);
  // Fire-and-forget: the sender CQE precedes full remote delivery (no ACK
  // round), unlike RC.
  EXPECT_LT(scqe->ready_time, rcqe->ready_time);
  auto dst = as_b.host_span(mb.va_base, 256);
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(i));
}

TEST(UdQp, RejectsOversizedAndRdma) {
  mem::PhysicalMemory pm(16 * kMiB, 4, 1);
  mem::HugeTlbFs fs(&pm, 4, 0);
  mem::AddressSpace as(&pm, &fs);
  hca::Adapter a(0, hca::AdapterConfig{});
  hca::CompletionQueue scq, rcq;
  hca::QueuePair& qa = a.create_qp(&scq, &rcq, hca::QpType::UD);
  hca::QueuePair& qb = a.create_qp(&scq, &rcq, hca::QpType::UD);
  auto& m = as.map(16 * kKiB, mem::PageKind::Small);
  const auto r = a.reg_mr(as, m.va_base, 16 * kKiB, kSmallPageSize);

  hca::SendWr wr;
  wr.sges = {{m.va_base, 8 * kKiB, r.mr->lkey}};  // > 1 MTU
  wr.ud_dest = &qb;
  EXPECT_THROW(qa.post_send(wr, 0), SimError);
  wr.sges = {{m.va_base, 256, r.mr->lkey}};
  wr.opcode = hca::Opcode::RdmaWrite;
  EXPECT_THROW(qa.post_send(wr, 0), SimError);
  EXPECT_THROW(qa.connect(&qb), SimError);
}

core::ClusterConfig topo(int nodes, int rpn) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = rpn;
  return cfg;
}

TEST(UdEager, SmallMessagesRideDatagrams) {
  core::Cluster cluster(topo(2, 1));
  mpi::CommConfig ccfg;
  ccfg.ud_eager = true;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    const VirtAddr buf = env.alloc(4 * kKiB);
    if (env.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(buf, 512, 1, i);
      EXPECT_EQ(comm.stats().ud_sent, 10u);
      EXPECT_EQ(comm.stats().eager_sent, 10u);
    } else {
      for (int i = 0; i < 10; ++i) comm.recv(buf, 512, 0, i);
    }
  });
}

TEST(UdEager, MixedTransportsKeepEnvelopeOrder) {
  // Interleave UD-sized and RC-sized messages on one envelope: sequence
  // numbers must prevent the faster datagrams from overtaking.
  core::Cluster cluster(topo(2, 1));
  mpi::CommConfig ccfg;
  ccfg.ud_eager = true;
  // A multi-MTU eager message (RC bounce, bulk lane) chased by datagrams
  // (UD, control lane): the datagrams physically arrive first and must
  // wait in the reorder buffer.
  const std::uint64_t sizes[] = {6 * kKiB, 64, 128, 6 * kKiB, 256, 1};
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    if (env.rank() == 0) {
      std::vector<mpi::Req> rs;
      for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const VirtAddr b = env.alloc(std::max<std::uint64_t>(sizes[i], 64));
        auto s = env.space().host_span(b, sizes[i]);
        std::fill(s.begin(), s.end(), static_cast<std::uint8_t>(i + 1));
        rs.push_back(comm.isend(b, sizes[i], 1, 9));
      }
      comm.waitall(rs);
    } else {
      for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const VirtAddr b = env.alloc(std::max<std::uint64_t>(sizes[i], 64));
        const mpi::RecvStatus st = comm.recv(b, sizes[i], 0, 9);
        ASSERT_EQ(st.len, sizes[i]) << "message " << i << " overtaken";
        if (sizes[i] > 0) {
          auto s = env.space().host_span(b, sizes[i]);
          ASSERT_EQ(s[0], static_cast<std::uint8_t>(i + 1));
        }
      }
      EXPECT_GT(comm.stats().reordered + 0u, 0u)
          << "this pattern should exercise the reorder buffer";
    }
  });
}

TEST(UdEager, NasKernelRunsOnHybridTransport) {
  core::Cluster cluster(topo(2, 4));
  // run_nas constructs its own Comm; emulate via direct kernel + config is
  // not exposed, so run a representative collective-heavy pattern instead.
  mpi::CommConfig ccfg;
  ccfg.ud_eager = true;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    const VirtAddr buf = env.alloc(64 * kKiB);
    for (int i = 0; i < 3; ++i) {
      comm.barrier();
      comm.bcast(buf, 4 * kKiB, i % comm.size());
      comm.allreduce<double>(buf, buf, 16, mpi::ReduceOp::Sum);
      comm.allgather(buf, 4 * kKiB, buf + 8 * kKiB);
    }
  });
}

TEST(UdEager, LowerSmallMessageLatencyThanRc) {
  // No ACK round: UD eager one-way latency beats RC eager.
  auto latency = [](bool ud) {
    core::Cluster cluster(topo(2, 1));
    mpi::CommConfig ccfg;
    ccfg.ud_eager = ud;
    TimePs dt = 0;
    cluster.run([&](core::RankEnv& env) {
      mpi::Comm comm(env, ccfg);
      const VirtAddr buf = env.alloc(4 * kKiB);
      constexpr int kIters = 20;
      if (env.rank() == 0) {
        for (int i = 0; i < kIters; ++i) {
          comm.send(buf, 64, 1, i);
          comm.recv(buf, 64, 1, 1000 + i);
        }
      } else {
        const TimePs t0 = env.now();
        for (int i = 0; i < kIters; ++i) {
          comm.recv(buf, 64, 0, i);
          comm.send(buf, 64, 0, 1000 + i);
        }
        dt = (env.now() - t0) / kIters;
      }
    });
    return dt;
  };
  const TimePs rc = latency(false);
  const TimePs ud = latency(true);
  EXPECT_LT(ud, rc);
}

}  // namespace
}  // namespace ibp
