#include "ibp/cpu/memory_system.hpp"

#include <gtest/gtest.h>

#include "ibp/cpu/perf.hpp"
#include "ibp/cpu/timebase.hpp"
#include "ibp/cpu/tlb.hpp"
#include "ibp/mem/address_space.hpp"

namespace ibp::cpu {
namespace {

TlbConfig small_tlb(std::uint32_t s, std::uint32_t h) {
  TlbConfig cfg;
  cfg.small_entries = s;
  cfg.huge_entries = h;
  cfg.walk_cost = ns(100);
  cfg.hot_walk_cost = ns(10);
  cfg.walk_cache_entries = 64;
  return cfg;
}

TEST(Tlb, HitAfterInsert) {
  Tlb tlb(small_tlb(4, 2));
  EXPECT_GT(tlb.access(0x1000, kSmallPageSize), 0u);  // compulsory miss
  EXPECT_EQ(tlb.access(0x1000, kSmallPageSize), 0u);  // hit
  EXPECT_EQ(tlb.stats().misses_small, 1u);
  EXPECT_EQ(tlb.stats().hits_small, 1u);
}

TEST(Tlb, LruEvictionAtCapacity) {
  Tlb tlb(small_tlb(2, 2));
  tlb.access(0x1000, kSmallPageSize);
  tlb.access(0x2000, kSmallPageSize);
  tlb.access(0x1000, kSmallPageSize);  // refresh 0x1000
  tlb.access(0x3000, kSmallPageSize);  // evicts 0x2000
  EXPECT_EQ(tlb.access(0x1000, kSmallPageSize), 0u);
  EXPECT_GT(tlb.access(0x2000, kSmallPageSize), 0u);
}

TEST(Tlb, SplitCapacitiesAreIndependent) {
  Tlb tlb(small_tlb(1, 1));
  tlb.access(0x1000, kSmallPageSize);
  tlb.access(0x200000, kHugePageSize);
  // Huge access must not have evicted the small entry.
  EXPECT_EQ(tlb.access(0x1000, kSmallPageSize), 0u);
  EXPECT_EQ(tlb.access(0x200000, kHugePageSize), 0u);
  EXPECT_EQ(tlb.stats().misses_huge, 1u);
}

TEST(Tlb, WalkCacheMakesRepeatMissesCheap) {
  // Capacity-1 TLB thrashing between two pages: after the cold walks, the
  // page-walk cache serves the translations at the hot cost.
  Tlb tlb(small_tlb(1, 1));
  const TimePs cold0 = tlb.access(0x1000, kSmallPageSize);
  const TimePs cold1 = tlb.access(0x2000, kSmallPageSize);
  EXPECT_EQ(cold0, ns(100));
  EXPECT_EQ(cold1, ns(100));
  const TimePs hot0 = tlb.access(0x1000, kSmallPageSize);  // miss, hot walk
  EXPECT_EQ(hot0, ns(10));
  EXPECT_EQ(tlb.stats().misses_small, 3u);  // misses still counted (PAPI)
}

TEST(Tlb, FlushClearsEverything) {
  Tlb tlb(small_tlb(8, 8));
  tlb.access(0x1000, kSmallPageSize);
  tlb.flush();
  EXPECT_EQ(tlb.access(0x1000, kSmallPageSize), ns(100));  // cold again
}

class MemSysTest : public ::testing::Test {
 protected:
  MemSysTest() : fs(&pm, 32, 0), as(&pm, &fs), tlb(cfg_tlb()), mem(cfg_mem(), &tlb) {}
  static TlbConfig cfg_tlb() { return small_tlb(544, 8); }
  static MemConfig cfg_mem() {
    MemConfig m;
    m.stream_bw_bytes_per_ns = 4.0;
    m.dram_latency = ns(100);
    m.cached_fraction = 0.0;
    return m;
  }
  mem::PhysicalMemory pm{256 * kMiB, 32, 5};
  mem::HugeTlbFs fs;
  mem::AddressSpace as;
  Tlb tlb;
  MemorySystem mem;
};

TEST_F(MemSysTest, StreamCostScalesWithLength) {
  auto& m = as.map(8 * kMiB, mem::PageKind::Small);
  const TimePs t1 = mem.stream(as, m.va_base, 1 * kMiB);
  tlb.flush();
  const TimePs t8 = mem.stream(as, m.va_base, 8 * kMiB);
  EXPECT_GT(t8, 6 * t1);
  EXPECT_LT(t8, 10 * t1);
}

TEST_F(MemSysTest, HugepageStreamIsFasterThanSmallPageStream) {
  // Same bytes; the small-page version re-ramps the prefetcher at every
  // scattered 4 KB frame.
  auto& s = as.map(8 * kMiB, mem::PageKind::Small);
  auto& h = as.map(8 * kMiB, mem::PageKind::Huge);
  const TimePs ts = mem.stream(as, s.va_base, 8 * kMiB);
  const TimePs th = mem.stream(as, h.va_base, 8 * kMiB);
  EXPECT_LT(th, ts);
  // 2048 small-page ramps vs ~4 hugepage ramps at 100 ns each.
  EXPECT_GT(ts - th, us(150));
}

TEST_F(MemSysTest, PrefetchRampsCounted) {
  auto& s = as.map(1 * kMiB, mem::PageKind::Small);
  mem.reset_stats();
  mem.stream(as, s.va_base, 1 * kMiB);
  EXPECT_EQ(mem.stats().prefetch_ramps, 256u);  // one per scattered frame
  auto& h = as.map(2 * kMiB, mem::PageKind::Huge);
  mem.reset_stats();
  mem.stream(as, h.va_base, 2 * kMiB);
  EXPECT_EQ(mem.stats().prefetch_ramps, 1u);
}

TEST_F(MemSysTest, InterleavedStreamsThrashHugeTlbWhenOverCapacity) {
  // 12 concurrent hugepage streams against 8 huge-TLB entries: far more
  // misses than the same sweep over small pages (544 entries) — the §5.2
  // inversion.
  constexpr int kStreams = 12;
  constexpr std::uint64_t kLen = 2 * kMiB;
  std::vector<MemorySystem::StreamRef> huge_refs, small_refs;
  for (int i = 0; i < kStreams; ++i) {
    huge_refs.push_back({as.map(kLen, mem::PageKind::Huge).va_base, kLen});
    small_refs.push_back({as.map(kLen, mem::PageKind::Small).va_base, kLen});
  }
  tlb.reset_stats();
  mem.interleaved_stream(as, huge_refs);
  const std::uint64_t huge_misses = tlb.stats().misses_huge;
  tlb.reset_stats();
  mem.interleaved_stream(as, small_refs);
  const std::uint64_t small_misses = tlb.stats().misses_small;
  EXPECT_GT(huge_misses, 4 * small_misses)
      << "huge=" << huge_misses << " small=" << small_misses;
}

TEST_F(MemSysTest, InterleavedStreamsFitWhenUnderCapacity) {
  // 4 hugepage streams fit the 8-entry TLB: only compulsory misses.
  std::vector<MemorySystem::StreamRef> refs;
  for (int i = 0; i < 4; ++i)
    refs.push_back({as.map(2 * kMiB, mem::PageKind::Huge).va_base, 2 * kMiB});
  tlb.reset_stats();
  mem.interleaved_stream(as, refs);
  EXPECT_EQ(tlb.stats().misses_huge, 4u);
}

TEST_F(MemSysTest, RandomAccessCostsLatencyPerTouch) {
  auto& m = as.map(16 * kMiB, mem::PageKind::Small);
  Rng rng(1);
  const TimePs t = mem.random_access(as, m.va_base, 16 * kMiB, 1000, rng);
  // >= 1000 DRAM latencies (plus walks).
  EXPECT_GE(t, 1000 * ns(100));
  EXPECT_EQ(mem.stats().random_accesses, 1000u);
}

TEST_F(MemSysTest, RandomOverHugeRangeBeatsSmallOnTlb) {
  // A multi-MB random working set: hugepages cover it with few entries.
  auto& s = as.map(8 * kMiB, mem::PageKind::Small);
  auto& h = as.map(8 * kMiB, mem::PageKind::Huge);
  Rng r1(7), r2(7);
  tlb.reset_stats();
  mem.random_access(as, s.va_base, 8 * kMiB, 5000, r1);
  const auto small_misses = tlb.stats().misses_small;
  tlb.reset_stats();
  mem.random_access(as, h.va_base, 8 * kMiB, 5000, r2);
  const auto huge_misses = tlb.stats().misses_huge;
  EXPECT_LT(huge_misses, small_misses / 10);
}

TEST_F(MemSysTest, ZeroLengthIsFree) {
  auto& m = as.map(4096, mem::PageKind::Small);
  EXPECT_EQ(mem.stream(as, m.va_base, 0), 0u);
  Rng rng(1);
  EXPECT_EQ(mem.random_access(as, m.va_base, 4096, 0, rng), 0u);
}

TEST(TimeBase, RoundTripConversion) {
  TimeBase tb(512e6);
  EXPECT_EQ(tb.to_ticks(us(1)), 512u);
  EXPECT_EQ(tb.to_ticks(0), 0u);
  const TimePs t = tb.to_ps(1000);
  EXPECT_NEAR(static_cast<double>(t), 1.953e6, 1e3);
}

TEST(PerfCounters, SnapshotDiff) {
  Tlb tlb(small_tlb(8, 8));
  MemConfig mc;
  MemorySystem ms(mc, &tlb);
  mem::PhysicalMemory pm(16 * kMiB, 4, 3);
  mem::HugeTlbFs fs(&pm, 4, 0);
  mem::AddressSpace as(&pm, &fs);
  auto& m = as.map(1 * kMiB, mem::PageKind::Small);

  const CounterSnapshot a = read_counters(ms);
  ms.stream(as, m.va_base, 1 * kMiB);
  const CounterSnapshot b = read_counters(ms);
  const CounterSnapshot d = b - a;
  EXPECT_EQ(d.stream_bytes, 1 * kMiB);
  EXPECT_GT(d.tlb_misses(), 0u);
}

TEST(MemCompute, ScalesWithOps) {
  EXPECT_EQ(MemorySystem::compute(4000, 4.0), us(1));
  EXPECT_EQ(MemorySystem::compute(0, 4.0), 0u);
}

}  // namespace
}  // namespace ibp::cpu
