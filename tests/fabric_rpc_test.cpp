// The sharded RPC serving fabric (ibp_fabric): shard-map determinism,
// stripe reassembly (in order, interleaved, and under fault-injected
// loss), and the golden-equivalence contract against bare ibp_rpc.

#include "ibp/fabric/fabric.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "ibp/core/cluster.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/rpc/rpc.hpp"

namespace ibp::fabric {
namespace {

/// `servers`+1 ranks on as many nodes: rank 0 runs `client_fn`, the rest
/// serve shards. A non-empty `fault_spec` also switches the transport to
/// Repost recovery so dropped packets retransmit instead of failing.
void with_fabric(
    std::uint32_t servers, const FabricConfig& fc,
    const std::function<void(FabricClient&, core::RankEnv&)>& client_fn,
    const std::string& fault_spec = "") {
  core::ClusterConfig cfg;
  cfg.nodes = static_cast<int>(servers) + 1;
  cfg.ranks_per_node = 1;
  if (!fault_spec.empty()) cfg.fault = fault::parse_fault_plan(fault_spec);
  core::Cluster cluster(cfg);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    if (!fault_spec.empty()) mc.recovery = mpi::CommConfig::Recovery::Repost;
    mpi::Comm comm(env, mc);
    if (env.rank() != 0) {
      FabricServer server(comm, {0}, fc);
      server.serve();
      return;
    }
    std::vector<int> ranks;
    for (std::uint32_t s = 1; s <= servers; ++s)
      ranks.push_back(static_cast<int>(s));
    FabricClient client(comm, ranks, fc);
    client_fn(client, env);
    client.close();
  });
}

void expect_stripe_payload(const rpc::Completion& c, std::uint32_t tenant) {
  ASSERT_EQ(c.status, rpc::Status::Ok);
  for (std::size_t off = 0; off < c.payload.size(); ++off) {
    ASSERT_EQ(c.payload[off], stripe_byte(c.id, tenant, off))
        << "byte " << off << " of stripe " << c.id;
  }
}

TEST(ShardMap, DeterministicAndEpochSensitive) {
  const ShardMap a(8, ShardStrategy::Hash, 42, 0);
  const ShardMap b(8, ShardStrategy::Hash, 42, 0);
  EXPECT_EQ(a.digest(), b.digest());
  for (std::uint32_t t = 0; t < 1000; ++t) EXPECT_EQ(a.home(t), b.home(t));

  const ShardMap bumped(8, ShardStrategy::Hash, 42, 1);
  EXPECT_NE(a.digest(), bumped.digest()) << "epoch bump must reshard";
  const ShardMap reseeded(8, ShardStrategy::Hash, 43, 0);
  EXPECT_NE(a.digest(), reseeded.digest());

  for (ShardStrategy s : {ShardStrategy::Hash, ShardStrategy::Range,
                          ShardStrategy::Affinity}) {
    const ShardMap m(5, s, 42, 0);
    for (std::uint32_t t = 0; t < 1000; ++t) ASSERT_LT(m.home(t), 5u);
    EXPECT_EQ(shard_strategy_from_name(shard_strategy_name(s)), s);
  }
  const ShardMap solo(1, ShardStrategy::Affinity);
  for (std::uint32_t t = 0; t < 64; ++t) EXPECT_EQ(solo.home(t), 0u);
}

TEST(ShardMap, RangeIsContiguousAndAffinityGroupsColocate) {
  const ShardMap range(4, ShardStrategy::Range, 42, 0);
  std::uint32_t prev = 0;
  for (std::uint32_t t = 0; t < 0x10000; ++t) {
    const std::uint32_t h = range.home(t);
    ASSERT_GE(h, prev) << "range homes must be monotone in the tenant id";
    prev = h;
  }

  const ShardMap aff(4, ShardStrategy::Affinity, 42, 0);
  for (std::uint32_t group = 0; group < 64; ++group) {
    const std::uint32_t head = aff.home(group << 4);
    for (std::uint32_t i = 1; i < 16; ++i)
      ASSERT_EQ(aff.home((group << 4) | i), head)
          << "tenant group " << group << " must share one server";
  }
}

TEST(ServingFabric, SmallRequestsPassThroughToHomeShard) {
  FabricConfig fc;
  with_fabric(3, fc, [&](FabricClient& c, core::RankEnv&) {
    const std::vector<std::uint8_t> msg{1, 2, 3};
    for (std::uint32_t t = 0; t < 12; ++t) {
      const std::uint64_t id = c.submit(msg, 0, rpc::Class::Latency, t);
      ASSERT_NE(id, 0u);
      const rpc::Completion& done = c.wait(id);
      EXPECT_EQ(done.status, rpc::Status::Ok);
      EXPECT_EQ(done.payload, msg);
    }
    EXPECT_EQ(c.stats().passthrough, 12u);
    EXPECT_EQ(c.stats().stripes, 0u);
    // Every link the map names for these tenants carried its share.
    for (std::uint32_t t = 0; t < 12; ++t)
      EXPECT_GT(c.link(c.shard_map().home(t)).stats().submitted, 0u);
  });
}

TEST(ServingFabric, StripedResponseReassemblesDeterministicPattern) {
  FabricConfig fc;
  with_fabric(4, fc, [&](FabricClient& c, core::RankEnv&) {
    const std::vector<std::uint8_t> msg{9};
    const std::uint32_t kBulk = 32 * kKiB;
    const std::uint64_t id = c.submit(msg, kBulk, rpc::Class::Bulk, 5);
    ASSERT_NE(id, 0u);
    const rpc::Completion& done = c.wait(id);
    ASSERT_EQ(done.payload.size(), kBulk);
    expect_stripe_payload(done, 5);
    EXPECT_EQ(c.stats().stripes, 1u);
    EXPECT_GE(c.stats().segments, kBulk / fc.rpc.max_payload);
    EXPECT_EQ(c.stats().reassembled_bytes, kBulk);
  });
}

TEST(ServingFabric, SingleServerStripingStillReassembles) {
  FabricConfig fc;
  with_fabric(1, fc, [&](FabricClient& c, core::RankEnv&) {
    const std::vector<std::uint8_t> msg{3};
    const std::uint64_t id = c.submit(msg, 16 * kKiB, rpc::Class::Bulk, 2);
    ASSERT_NE(id, 0u);
    const rpc::Completion& done = c.wait(id);
    ASSERT_EQ(done.payload.size(), 16 * kKiB);
    expect_stripe_payload(done, 2);
  });
}

TEST(ServingFabric, ConcurrentStripesInterleaveAcrossLinks) {
  // Several stripes in flight at once: segments of different stripes
  // complete out of order relative to submission, and the reassembly
  // window must route each to the right buffer.
  FabricConfig fc;
  fc.reassembly_window = 4;
  with_fabric(4, fc, [&](FabricClient& c, core::RankEnv&) {
    std::vector<std::uint64_t> ids;
    std::vector<std::uint32_t> tenants;
    for (std::uint32_t i = 0; i < 10; ++i) {
      const std::uint32_t tenant = i % 7;
      const std::uint64_t id =
          c.submit({}, 24 * kKiB, rpc::Class::Bulk, tenant);
      ASSERT_NE(id, 0u);
      ids.push_back(id);
      tenants.push_back(tenant);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const rpc::Completion& done = c.wait(ids[i]);
      ASSERT_EQ(done.payload.size(), 24 * kKiB);
      expect_stripe_payload(done, tenants[i]);
    }
    EXPECT_EQ(c.stats().stripes, 10u);
  });
}

TEST(ServingFabric, StripesSurviveFaultInjectedLoss) {
  // Packet loss under Repost recovery: the RC transport retransmits, so
  // every segment still lands and the assembled bytes stay exact.
  FabricConfig fc;
  with_fabric(
      4, fc,
      [&](FabricClient& c, core::RankEnv&) {
        std::vector<std::uint64_t> ids;
        for (std::uint32_t i = 0; i < 6; ++i) {
          const std::uint64_t id =
              c.submit({}, 16 * kKiB, rpc::Class::Bulk, i);
          ASSERT_NE(id, 0u);
          ids.push_back(id);
        }
        for (std::uint32_t i = 0; i < 6; ++i) {
          const rpc::Completion& done = c.wait(ids[i]);
          ASSERT_EQ(done.payload.size(), 16 * kKiB);
          expect_stripe_payload(done, i);
        }
      },
      "drop=*-*:0.02;seed=5");
}

TEST(ServingFabric, OneServerFabricMatchesBareRpcByteForByte) {
  // The golden-equivalence contract: an un-striped 1-server fabric is a
  // transparent wrapper — same completion trace hash, same virtual span.
  loadgen::Workload w;
  w.request_bytes = 128;
  w.response_bytes = 256;
  w.tenants = 4;
  loadgen::ClosedLoopConfig cc;
  cc.workers = 4;
  cc.requests = 60;
  cc.warmup = 12;
  cc.seed = 17;

  loadgen::GenResult bare;
  {
    core::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 1;
    core::Cluster cluster(cfg);
    cluster.run([&](core::RankEnv& env) {
      mpi::CommConfig mc;
      mc.sge_gather = true;
      mpi::Comm comm(env, mc);
      rpc::RpcConfig rc;
      if (env.rank() != 0) {
        rpc::RpcServer server(comm, {0}, rc);
        server.serve();
        return;
      }
      rpc::RpcClient client(comm, 1, rc);
      bare = loadgen::run_closed_loop(client, w, cc);
      client.close();
    });
  }
  loadgen::GenResult wrapped;
  with_fabric(1, {}, [&](FabricClient& c, core::RankEnv&) {
    wrapped = loadgen::run_closed_loop(c, w, cc);
  });
  EXPECT_EQ(bare.trace_hash, wrapped.trace_hash);
  EXPECT_EQ(bare.span, wrapped.span);
  EXPECT_EQ(bare.ok, wrapped.ok);
}

// ---------------------------------------------------------------------------
// Failure recovery

/// Like with_fabric, but servers count application executions of real
/// (non-probe) requests and report what the crashed process discarded,
/// and the hub's JSONL stream is captured when tracing is on — the
/// instrumentation the exactly-once assertions need.
struct FailoverOut {
  std::vector<std::uint64_t> served;     // handler executions, by rank
  std::vector<std::uint64_t> discarded;  // crash-discarded, by rank
  std::string trace_jsonl;
};

void with_failover_fabric(
    std::uint32_t servers, const FabricConfig& fc,
    const std::string& fault_spec,
    const std::function<void(FabricClient&, core::RankEnv&)>& client_fn,
    FailoverOut* out = nullptr, bool trace = false) {
  core::ClusterConfig cfg;
  cfg.nodes = static_cast<int>(servers) + 1;
  cfg.ranks_per_node = 1;
  if (!fault_spec.empty()) cfg.fault = fault::parse_fault_plan(fault_spec);
  if (trace) cfg.request_trace.enabled = true;
  core::Cluster cluster(cfg);
  std::vector<std::uint64_t> served(cfg.nodes, 0);
  std::vector<std::uint64_t> discarded(cfg.nodes, 0);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mc.recovery = mpi::CommConfig::Recovery::Repost;
    mpi::Comm comm(env, mc);
    if (env.rank() != 0) {
      const std::size_t me = static_cast<std::size_t>(env.rank());
      const rpc::Handler echo = rpc::default_handler();
      const rpc::Handler counting = [&served, me, &echo](
                                        const rpc::RequestView& rq,
                                        std::uint8_t* buf,
                                        std::uint32_t cap) {
        if (rq.payload_len > 0) ++served[me];  // health probes are empty
        return echo(rq, buf, cap);
      };
      FabricServer server(comm, {0}, fc, counting);
      server.serve();
      discarded[me] = server.stats().discarded;
      return;
    }
    std::vector<int> ranks;
    for (std::uint32_t s = 1; s <= servers; ++s)
      ranks.push_back(static_cast<int>(s));
    FabricClient client(comm, ranks, fc);
    client_fn(client, env);
    client.close();
  });
  if (out != nullptr) {
    out->served = served;
    out->discarded = discarded;
    if (trace && cluster.request_tracer() != nullptr) {
      std::ostringstream os;
      cluster.request_tracer()->write_jsonl(os);
      out->trace_jsonl = os.str();
    }
  }
}

FabricConfig failover_config() {
  FabricConfig fc;
  fc.fail_after = 2;
  // Above the first-touch warmup (~2 ms to the first completion), so a
  // slow cold server is never mistaken for a dead one.
  fc.rpc.request_timeout = us(4000);
  fc.rpc.max_retries = 0;
  fc.probe_backoff = us(1000);
  fc.probe_backoff_max = us(8000);
  return fc;
}

/// Largest "failovers" value in the hub's JSONL stream.
std::uint32_t max_traced_failovers(const std::string& jsonl) {
  std::uint32_t best = 0;
  const std::string key = "\"failovers\": ";
  for (std::size_t p = jsonl.find(key); p != std::string::npos;
       p = jsonl.find(key, p + key.size())) {
    best = std::max(best, static_cast<std::uint32_t>(std::atoi(
                              jsonl.c_str() + p + key.size())));
  }
  return best;
}

TEST(FabricFailover, CrashedServerFailsOverExactlyOnce) {
  // One of two servers dies mid-run. Every request must still complete
  // Ok — rerouted across the epoch bump — and the application handler
  // must run exactly once per request: the corpse discards what it
  // accepted but never served, the survivor executes the rerouted copy,
  // and link-level dedupe would drop any late original.
  const FabricConfig fc = failover_config();
  FailoverOut out;
  FabricClientStats stats;
  std::uint32_t epoch = 0;
  std::uint32_t total = 0;
  with_failover_fabric(
      2, fc, "crash=1@2500",
      [&](FabricClient& c, core::RankEnv&) {
        const std::vector<std::uint8_t> msg{1, 2, 3};
        const auto roundtrip = [&](std::uint32_t i) {
          const std::uint64_t id =
              c.submit(msg, 0, rpc::Class::Latency, i % 6);
          ASSERT_NE(id, 0u);
          const rpc::Completion& done = c.wait(id);
          ASSERT_EQ(done.status, rpc::Status::Ok)
              << "request " << i << " lost across the failover";
          ASSERT_EQ(done.payload, msg);
        };
        // Serve traffic through the crash until the monitor declares it.
        std::uint32_t n = 0;
        while (c.stats().failovers == 0) {
          ASSERT_LT(n, 1000u) << "failover never detected";
          roundtrip(n);
          if (testing::Test::HasFatalFailure()) return;
          ++n;
        }
        // A dozen more rides on the new epoch.
        for (std::uint32_t i = 0; i < 12; ++i, ++n) {
          roundtrip(n);
          if (testing::Test::HasFatalFailure()) return;
        }
        c.drain();
        total = n;
        stats = c.stats();
        epoch = c.shard_map().epoch();
        EXPECT_EQ(c.link_health(0), LinkHealth::Dead);
      },
      &out, /*trace=*/true);
  ASSERT_GT(total, 0u);
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_GE(stats.rerouted, 1u);
  EXPECT_EQ(epoch, 1u);
  // Exactly-once: total application executions equal completed requests.
  EXPECT_EQ(out.served[1] + out.served[2], total);
  EXPECT_GT(out.served[1], 0u) << "some requests ran before the crash";
  EXPECT_GT(out.discarded[1], 0u) << "the corpse must discard, not serve";
  // The hub recorded the failover hop(s) of the rerouted request.
  EXPECT_GE(max_traced_failovers(out.trace_jsonl), 1u);
}

TEST(FabricFailover, BrownoutReadmitsAfterRecovery) {
  FabricConfig fc = failover_config();
  fc.probe_backoff_max = us(4000);  // probe often enough to catch recovery
  FabricClientStats stats;
  std::uint32_t epoch = 0;
  std::array<LinkHealth, 2> health{};
  // Crash lands after warmup; detection needs two 4 ms losses (~10.5 ms);
  // the server recovers at 12 ms and the doubling probe finds it shortly
  // after. Traffic keeps flowing well past that so regular completions
  // can walk the readmitted link back to Healthy.
  with_failover_fabric(
      2, fc, "crash=1@2500; recover=1@12000",
      [&](FabricClient& c, core::RankEnv& env) {
        const std::vector<std::uint8_t> msg{7};
        std::uint32_t i = 0;
        while (env.now() < us(18000) || i < 60) {
          const std::uint64_t id =
              c.submit(msg, 0, rpc::Class::Latency, i % 6);
          ASSERT_NE(id, 0u);
          ASSERT_EQ(c.wait(id).status, rpc::Status::Ok);
          ++i;
        }
        c.drain();
        stats = c.stats();
        epoch = c.shard_map().epoch();
        health = {c.link_health(0), c.link_health(1)};
      });
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.readmissions, 1u);
  EXPECT_GT(stats.probes, 0u);
  EXPECT_EQ(epoch, 2u) << "exclude + readmit = two handoffs";
  EXPECT_EQ(health[0], LinkHealth::Healthy)
      << "post-readmission traffic must mark the link healthy again";
  EXPECT_EQ(health[1], LinkHealth::Healthy);
}

TEST(FabricFailover, StripedSegmentsRerouteAroundDeadServer) {
  // Bulk responses striped across three servers; one dies. The orphaned
  // segments must be adopted and re-issued on the survivors, and every
  // reassembled payload must still verify byte-for-byte.
  FabricConfig fc = failover_config();
  fc.stripe_width = 3;
  FabricClientStats stats;
  with_failover_fabric(
      3, fc, "crash=2@2500",
      [&](FabricClient& c, core::RankEnv&) {
        std::vector<std::uint64_t> ids;
        std::vector<std::uint32_t> tenants;
        for (std::uint32_t i = 0; i < 8; ++i) {
          const std::uint32_t tenant = i % 5;
          const std::uint64_t id =
              c.submit({}, 24 * kKiB, rpc::Class::Bulk, tenant);
          ASSERT_NE(id, 0u);
          ids.push_back(id);
          tenants.push_back(tenant);
          // Serial: each stripe completes (possibly after a segment
          // reroute) before the next is issued.
          const rpc::Completion& done = c.wait(id);
          ASSERT_EQ(done.status, rpc::Status::Ok);
          ASSERT_EQ(done.payload.size(), 24 * kKiB);
          expect_stripe_payload(done, tenant);
        }
        c.drain();
        stats = c.stats();
      });
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_GE(stats.rerouted, 1u) << "orphaned segments must be re-issued";
}

TEST(FabricFailover, DegradationShedsBulkWhileShortHanded) {
  FabricConfig fc = failover_config();
  fc.readmit = false;  // the kill is permanent; do not probe
  fc.degrade_outstanding = 1;
  FabricClientStats stats;
  with_failover_fabric(
      2, fc, "crash=1@50",
      [&](FabricClient& c, core::RankEnv&) {
        const std::vector<std::uint8_t> msg{4};
        // Drive until the health monitor declares the death.
        for (std::uint32_t i = 0; i < 40 && c.stats().failovers == 0;
             ++i) {
          const std::uint64_t id =
              c.submit(msg, 0, rpc::Class::Latency, i % 6);
          ASSERT_NE(id, 0u);
          (void)c.wait(id);
        }
        ASSERT_EQ(c.stats().failovers, 1u);
        EXPECT_EQ(c.link_health(0), LinkHealth::Dead);
        // Short-handed with work outstanding: Bulk sheds, Latency lands.
        const std::uint64_t lat = c.submit(msg, 0, rpc::Class::Latency, 1);
        ASSERT_NE(lat, 0u);
        const std::uint64_t bulk = c.submit(msg, 256, rpc::Class::Bulk, 2);
        ASSERT_NE(bulk, 0u);
        EXPECT_EQ(c.wait(bulk).status, rpc::Status::Overloaded)
            << "Bulk class must shed before Latency class degrades";
        EXPECT_EQ(c.wait(lat).status, rpc::Status::Ok);
        c.drain();
        stats = c.stats();
      });
  EXPECT_GE(stats.degraded_shed, 1u);
  EXPECT_EQ(stats.failovers, 1u);
}

TEST(ServingFabric, StripedClosedLoopReplayIsDeterministic) {
  loadgen::Workload w;
  w.request_bytes = 64;
  w.tenants = 8;
  w.bulk_fraction = 1.0;
  w.bulk_response_bytes = 32 * kKiB;
  loadgen::ClosedLoopConfig cc;
  cc.workers = 4;
  cc.requests = 24;
  cc.warmup = 6;
  cc.seed = 13;

  loadgen::GenResult runs[2];
  for (auto& run : runs) {
    with_fabric(4, {}, [&](FabricClient& c, core::RankEnv&) {
      run = loadgen::run_closed_loop(c, w, cc);
    });
  }
  EXPECT_EQ(runs[0].trace_hash, runs[1].trace_hash);
  EXPECT_EQ(runs[0].span, runs[1].span);
}

}  // namespace
}  // namespace ibp::fabric
