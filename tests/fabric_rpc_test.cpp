// The sharded RPC serving fabric (ibp_fabric): shard-map determinism,
// stripe reassembly (in order, interleaved, and under fault-injected
// loss), and the golden-equivalence contract against bare ibp_rpc.

#include "ibp/fabric/fabric.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "ibp/core/cluster.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/rpc/rpc.hpp"

namespace ibp::fabric {
namespace {

/// `servers`+1 ranks on as many nodes: rank 0 runs `client_fn`, the rest
/// serve shards. A non-empty `fault_spec` also switches the transport to
/// Repost recovery so dropped packets retransmit instead of failing.
void with_fabric(
    std::uint32_t servers, const FabricConfig& fc,
    const std::function<void(FabricClient&, core::RankEnv&)>& client_fn,
    const std::string& fault_spec = "") {
  core::ClusterConfig cfg;
  cfg.nodes = static_cast<int>(servers) + 1;
  cfg.ranks_per_node = 1;
  if (!fault_spec.empty()) cfg.fault = fault::parse_fault_plan(fault_spec);
  core::Cluster cluster(cfg);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    if (!fault_spec.empty()) mc.recovery = mpi::CommConfig::Recovery::Repost;
    mpi::Comm comm(env, mc);
    if (env.rank() != 0) {
      FabricServer server(comm, {0}, fc);
      server.serve();
      return;
    }
    std::vector<int> ranks;
    for (std::uint32_t s = 1; s <= servers; ++s)
      ranks.push_back(static_cast<int>(s));
    FabricClient client(comm, ranks, fc);
    client_fn(client, env);
    client.close();
  });
}

void expect_stripe_payload(const rpc::Completion& c, std::uint32_t tenant) {
  ASSERT_EQ(c.status, rpc::Status::Ok);
  for (std::size_t off = 0; off < c.payload.size(); ++off) {
    ASSERT_EQ(c.payload[off], stripe_byte(c.id, tenant, off))
        << "byte " << off << " of stripe " << c.id;
  }
}

TEST(ShardMap, DeterministicAndEpochSensitive) {
  const ShardMap a(8, ShardStrategy::Hash, 42, 0);
  const ShardMap b(8, ShardStrategy::Hash, 42, 0);
  EXPECT_EQ(a.digest(), b.digest());
  for (std::uint32_t t = 0; t < 1000; ++t) EXPECT_EQ(a.home(t), b.home(t));

  const ShardMap bumped(8, ShardStrategy::Hash, 42, 1);
  EXPECT_NE(a.digest(), bumped.digest()) << "epoch bump must reshard";
  const ShardMap reseeded(8, ShardStrategy::Hash, 43, 0);
  EXPECT_NE(a.digest(), reseeded.digest());

  for (ShardStrategy s : {ShardStrategy::Hash, ShardStrategy::Range,
                          ShardStrategy::Affinity}) {
    const ShardMap m(5, s, 42, 0);
    for (std::uint32_t t = 0; t < 1000; ++t) ASSERT_LT(m.home(t), 5u);
    EXPECT_EQ(shard_strategy_from_name(shard_strategy_name(s)), s);
  }
  const ShardMap solo(1, ShardStrategy::Affinity);
  for (std::uint32_t t = 0; t < 64; ++t) EXPECT_EQ(solo.home(t), 0u);
}

TEST(ShardMap, RangeIsContiguousAndAffinityGroupsColocate) {
  const ShardMap range(4, ShardStrategy::Range, 42, 0);
  std::uint32_t prev = 0;
  for (std::uint32_t t = 0; t < 0x10000; ++t) {
    const std::uint32_t h = range.home(t);
    ASSERT_GE(h, prev) << "range homes must be monotone in the tenant id";
    prev = h;
  }

  const ShardMap aff(4, ShardStrategy::Affinity, 42, 0);
  for (std::uint32_t group = 0; group < 64; ++group) {
    const std::uint32_t head = aff.home(group << 4);
    for (std::uint32_t i = 1; i < 16; ++i)
      ASSERT_EQ(aff.home((group << 4) | i), head)
          << "tenant group " << group << " must share one server";
  }
}

TEST(ServingFabric, SmallRequestsPassThroughToHomeShard) {
  FabricConfig fc;
  with_fabric(3, fc, [&](FabricClient& c, core::RankEnv&) {
    const std::vector<std::uint8_t> msg{1, 2, 3};
    for (std::uint32_t t = 0; t < 12; ++t) {
      const std::uint64_t id = c.submit(msg, 0, rpc::Class::Latency, t);
      ASSERT_NE(id, 0u);
      const rpc::Completion& done = c.wait(id);
      EXPECT_EQ(done.status, rpc::Status::Ok);
      EXPECT_EQ(done.payload, msg);
    }
    EXPECT_EQ(c.stats().passthrough, 12u);
    EXPECT_EQ(c.stats().stripes, 0u);
    // Every link the map names for these tenants carried its share.
    for (std::uint32_t t = 0; t < 12; ++t)
      EXPECT_GT(c.link(c.shard_map().home(t)).stats().submitted, 0u);
  });
}

TEST(ServingFabric, StripedResponseReassemblesDeterministicPattern) {
  FabricConfig fc;
  with_fabric(4, fc, [&](FabricClient& c, core::RankEnv&) {
    const std::vector<std::uint8_t> msg{9};
    const std::uint32_t kBulk = 32 * kKiB;
    const std::uint64_t id = c.submit(msg, kBulk, rpc::Class::Bulk, 5);
    ASSERT_NE(id, 0u);
    const rpc::Completion& done = c.wait(id);
    ASSERT_EQ(done.payload.size(), kBulk);
    expect_stripe_payload(done, 5);
    EXPECT_EQ(c.stats().stripes, 1u);
    EXPECT_GE(c.stats().segments, kBulk / fc.rpc.max_payload);
    EXPECT_EQ(c.stats().reassembled_bytes, kBulk);
  });
}

TEST(ServingFabric, SingleServerStripingStillReassembles) {
  FabricConfig fc;
  with_fabric(1, fc, [&](FabricClient& c, core::RankEnv&) {
    const std::vector<std::uint8_t> msg{3};
    const std::uint64_t id = c.submit(msg, 16 * kKiB, rpc::Class::Bulk, 2);
    ASSERT_NE(id, 0u);
    const rpc::Completion& done = c.wait(id);
    ASSERT_EQ(done.payload.size(), 16 * kKiB);
    expect_stripe_payload(done, 2);
  });
}

TEST(ServingFabric, ConcurrentStripesInterleaveAcrossLinks) {
  // Several stripes in flight at once: segments of different stripes
  // complete out of order relative to submission, and the reassembly
  // window must route each to the right buffer.
  FabricConfig fc;
  fc.reassembly_window = 4;
  with_fabric(4, fc, [&](FabricClient& c, core::RankEnv&) {
    std::vector<std::uint64_t> ids;
    std::vector<std::uint32_t> tenants;
    for (std::uint32_t i = 0; i < 10; ++i) {
      const std::uint32_t tenant = i % 7;
      const std::uint64_t id =
          c.submit({}, 24 * kKiB, rpc::Class::Bulk, tenant);
      ASSERT_NE(id, 0u);
      ids.push_back(id);
      tenants.push_back(tenant);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const rpc::Completion& done = c.wait(ids[i]);
      ASSERT_EQ(done.payload.size(), 24 * kKiB);
      expect_stripe_payload(done, tenants[i]);
    }
    EXPECT_EQ(c.stats().stripes, 10u);
  });
}

TEST(ServingFabric, StripesSurviveFaultInjectedLoss) {
  // Packet loss under Repost recovery: the RC transport retransmits, so
  // every segment still lands and the assembled bytes stay exact.
  FabricConfig fc;
  with_fabric(
      4, fc,
      [&](FabricClient& c, core::RankEnv&) {
        std::vector<std::uint64_t> ids;
        for (std::uint32_t i = 0; i < 6; ++i) {
          const std::uint64_t id =
              c.submit({}, 16 * kKiB, rpc::Class::Bulk, i);
          ASSERT_NE(id, 0u);
          ids.push_back(id);
        }
        for (std::uint32_t i = 0; i < 6; ++i) {
          const rpc::Completion& done = c.wait(ids[i]);
          ASSERT_EQ(done.payload.size(), 16 * kKiB);
          expect_stripe_payload(done, i);
        }
      },
      "drop=*-*:0.02;seed=5");
}

TEST(ServingFabric, OneServerFabricMatchesBareRpcByteForByte) {
  // The golden-equivalence contract: an un-striped 1-server fabric is a
  // transparent wrapper — same completion trace hash, same virtual span.
  loadgen::Workload w;
  w.request_bytes = 128;
  w.response_bytes = 256;
  w.tenants = 4;
  loadgen::ClosedLoopConfig cc;
  cc.workers = 4;
  cc.requests = 60;
  cc.warmup = 12;
  cc.seed = 17;

  loadgen::GenResult bare;
  {
    core::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 1;
    core::Cluster cluster(cfg);
    cluster.run([&](core::RankEnv& env) {
      mpi::CommConfig mc;
      mc.sge_gather = true;
      mpi::Comm comm(env, mc);
      rpc::RpcConfig rc;
      if (env.rank() != 0) {
        rpc::RpcServer server(comm, {0}, rc);
        server.serve();
        return;
      }
      rpc::RpcClient client(comm, 1, rc);
      bare = loadgen::run_closed_loop(client, w, cc);
      client.close();
    });
  }
  loadgen::GenResult wrapped;
  with_fabric(1, {}, [&](FabricClient& c, core::RankEnv&) {
    wrapped = loadgen::run_closed_loop(c, w, cc);
  });
  EXPECT_EQ(bare.trace_hash, wrapped.trace_hash);
  EXPECT_EQ(bare.span, wrapped.span);
  EXPECT_EQ(bare.ok, wrapped.ok);
}

TEST(ServingFabric, StripedClosedLoopReplayIsDeterministic) {
  loadgen::Workload w;
  w.request_bytes = 64;
  w.tenants = 8;
  w.bulk_fraction = 1.0;
  w.bulk_response_bytes = 32 * kKiB;
  loadgen::ClosedLoopConfig cc;
  cc.workers = 4;
  cc.requests = 24;
  cc.warmup = 6;
  cc.seed = 13;

  loadgen::GenResult runs[2];
  for (auto& run : runs) {
    with_fabric(4, {}, [&](FabricClient& c, core::RankEnv&) {
      run = loadgen::run_closed_loop(c, w, cc);
    });
  }
  EXPECT_EQ(runs[0].trace_hash, runs[1].trace_hash);
  EXPECT_EQ(runs[0].span, runs[1].span);
}

}  // namespace
}  // namespace ibp::fabric
