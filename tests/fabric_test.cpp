// Multi-stage fabric: cross-pod traffic shares core links; same-pod
// traffic does not; oversubscription slows cross-pod floods.

#include <gtest/gtest.h>

#include "ibp/fabric/fabric.hpp"
#include "ibp/hca/fabric.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/workloads/nas.hpp"

namespace ibp {
namespace {

TEST(Fabric, LeastLoadedLinkChosen) {
  hca::Fabric f(2, ns(100), ns(500));
  // Two simultaneous bulk transfers of 1 us: each takes its own link.
  const TimePs a = f.traverse(0, us(1), false);
  const TimePs b = f.traverse(0, us(1), false);
  EXPECT_EQ(a, us(1));
  EXPECT_EQ(b, us(1));
  // A third queues behind one of them.
  const TimePs c = f.traverse(0, us(1), false);
  EXPECT_EQ(c, us(2));
}

TEST(Fabric, ControlInterleavesWithBulk) {
  hca::Fabric f(1, ns(100), ns(500));
  f.traverse(0, us(100), false);  // long bulk transfer holds the link
  const TimePs ctrl = f.traverse(0, us(1), true);
  EXPECT_LT(ctrl, us(3)) << "control must not wait out the whole bulk";
}

core::ClusterConfig podded(int nodes, int pod_nodes, int core_links) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = 1;
  cfg.fabric_pod_nodes = pod_nodes;
  cfg.fabric_core_links = core_links;
  return cfg;
}

TimePs exchange_time(const core::ClusterConfig& cfg, int partner_stride) {
  core::Cluster cluster(cfg);
  TimePs dt = 0;
  constexpr std::uint64_t kLen = 1 * kMiB;
  const int n = cfg.nodes * cfg.ranks_per_node;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env);
    const VirtAddr a = env.alloc(kLen);
    const VirtAddr b = env.alloc(kLen);
    const int partner = env.rank() ^ partner_stride;
    if (partner >= n) return;
    comm.barrier();
    const TimePs t0 = env.now();
    for (int i = 0; i < 4; ++i)
      comm.sendrecv(a, kLen, partner, i, b, kLen, partner, i);
    if (env.rank() == 0) dt = env.now() - t0;
  });
  return dt;
}

TEST(Fabric, CrossPodSlowerThanSamePodUnderOversubscription) {
  // 4 nodes, 2 pods of 2, ONE core link: pairs 0-1 / 2-3 stay inside
  // their pods; pairs 0-2 / 1-3 share the single core link.
  const auto cfg = podded(4, 2, 1);
  const TimePs same_pod = exchange_time(cfg, 1);
  const TimePs cross_pod = exchange_time(cfg, 2);
  EXPECT_GT(cross_pod, same_pod * 3 / 2)
      << "two cross-pod flows over one core link must contend";
}

TEST(Fabric, MoreCoreLinksRestoreThroughput) {
  const TimePs one_link = exchange_time(podded(4, 2, 1), 2);
  const TimePs two_links = exchange_time(podded(4, 2, 2), 2);
  EXPECT_LT(two_links, one_link * 3 / 4)
      << "full bisection must beat 2:1 oversubscription";
}

TEST(Fabric, DisabledFabricMatchesCrossbar) {
  // fabric_pod_nodes = 0: behaviour identical to the classic wiring.
  core::ClusterConfig plain = podded(4, 0, 1);
  plain.fabric_pod_nodes = 0;
  core::ClusterConfig podded1 = podded(4, 4, 1);  // everyone in one pod
  EXPECT_EQ(exchange_time(plain, 2), exchange_time(podded1, 2))
      << "a single pod never touches the core links";
}

TEST(Fabric, NasRunsAcrossPods) {
  core::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.ranks_per_node = 2;
  cfg.fabric_pod_nodes = 2;
  cfg.fabric_core_links = 1;
  core::Cluster cluster(cfg);
  const auto r = workloads::run_nas("mg", cluster);
  EXPECT_TRUE(r.verified);
}

// Failover resharding contract: an epoch bump that excludes one server
// moves ONLY the tenants homed on it. Every strategy must satisfy it —
// before the fix the affinity strategy folded the epoch into its group
// hash and reshuffled every tenant on any bump.
TEST(Fabric, ShardMapExcludeRemapsMinimally) {
  for (fabric::ShardStrategy s :
       {fabric::ShardStrategy::Hash, fabric::ShardStrategy::Range,
        fabric::ShardStrategy::Affinity}) {
    const fabric::ShardMap before(4, s, 42, 0);
    fabric::ShardMap after(4, s, 42, 0);
    after.exclude(2);
    EXPECT_EQ(after.epoch(), 1u);
    EXPECT_EQ(after.alive(), 3u);
    EXPECT_NE(after.digest(), before.digest());
    for (std::uint32_t t = 0; t < 4096; ++t) {
      const std::uint32_t old_home = before.home(t);
      if (old_home != 2) {
        ASSERT_EQ(after.home(t), old_home)
            << fabric::shard_strategy_name(s) << " moved tenant " << t
            << " whose home survived the exclusion";
      } else {
        ASSERT_NE(after.home(t), 2u)
            << "tenant " << t << " still routed to the excluded server";
      }
    }

    // Readmission restores the original routing exactly (the epoch keeps
    // counting handoffs, so the digest still reflects the history).
    after.readmit(2);
    EXPECT_EQ(after.epoch(), 2u);
    EXPECT_EQ(after.alive(), 4u);
    for (std::uint32_t t = 0; t < 4096; ++t)
      ASSERT_EQ(after.home(t), before.home(t));

    // Displaced affinity groups must stay whole on their fallback server.
    if (s == fabric::ShardStrategy::Affinity) {
      fabric::ShardMap excl(4, s, 42, 0);
      excl.exclude(2);
      for (std::uint32_t group = 0; group < 64; ++group) {
        const std::uint32_t head = excl.home(group << 4);
        for (std::uint32_t i = 1; i < 16; ++i)
          ASSERT_EQ(excl.home((group << 4) | i), head)
              << "group " << group << " split by the exclusion";
      }
    }
  }
}

}  // namespace
}  // namespace ibp
