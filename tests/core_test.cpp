#include "ibp/core/cluster.hpp"

#include <gtest/gtest.h>

#include "ibp/core/shm.hpp"

namespace ibp::core {
namespace {

TEST(ShmChannel, DeliversAfterLatency) {
  ShmChannel ch(ShmConfig{2.0, ns(500)});
  std::vector<std::uint8_t> data{1, 2, 3, 4};
  const TimePs copy = ch.push(data, us(1));
  EXPECT_GT(copy, 0u);
  EXPECT_FALSE(ch.pop(us(1)).has_value()) << "not visible before latency";
  const TimePs ready = *ch.next_ready();
  EXPECT_GE(ready, us(1) + ns(500));
  const auto msg = ch.pop(ready);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(ch.depth(), 0u);
}

TEST(ShmChannel, FifoOrder) {
  ShmChannel ch(ShmConfig{2.0, ns(10)});
  for (std::uint8_t i = 0; i < 5; ++i) ch.push({i}, 0);
  for (std::uint8_t i = 0; i < 5; ++i) {
    const auto m = ch.pop(ms(1));
    ASSERT_TRUE(m);
    EXPECT_EQ(m->data[0], i);
  }
}

TEST(Cluster, WiringMatchesTopology) {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 3;
  Cluster cluster(cfg);
  ASSERT_EQ(cluster.nranks(), 6);
  for (int a = 0; a < 6; ++a) {
    const RankState& ra = cluster.rank(a);
    for (int b = 0; b < 6; ++b) {
      if (a == b) continue;
      const bool same_node = (a / 3) == (b / 3);
      if (same_node) {
        EXPECT_EQ(ra.qp_to[b], nullptr);
        EXPECT_NE(ra.shm_out[b], nullptr);
        EXPECT_NE(ra.shm_in[b], nullptr);
      } else {
        EXPECT_NE(ra.qp_to[b], nullptr);
        EXPECT_EQ(ra.shm_out[b], nullptr);
        // QPs are mutually connected.
        EXPECT_EQ(ra.qp_to[b]->peer(), cluster.rank(b).qp_to[a]);
      }
    }
  }
}

TEST(Cluster, RanksShareNodeAdapterAndHugetlbfs) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 2;
  cfg.hugepages_per_node = 8;
  cfg.hugepage_library = true;
  cfg.library.huge.min_map_bytes = 2 * kMiB;
  cfg.library.huge.lib_reserve_pages = 0;
  Cluster cluster(cfg);
  // Rank 0 drains the shared pool; rank 1's big malloc must fall back.
  cluster.run([&](RankEnv& env) {
    if (env.rank() == 0) {
      env.alloc(12 * kMiB);  // 6 of 8 pages (2 kernel-reserved)
    } else {
      env.sim().advance(us(100));  // run after rank 0
      const auto r = env.lib().malloc(8 * kMiB);
      EXPECT_NE(r.addr, 0u);
      EXPECT_FALSE(env.lib().in_hugepages(r.addr))
          << "shared pool must be exhausted by rank 0";
    }
  });
}

TEST(RankEnv, AllocRoutesThroughLibrary) {
  for (const bool huge : {false, true}) {
    ClusterConfig cfg;
    cfg.nodes = 1;
    cfg.ranks_per_node = 1;
    cfg.hugepage_library = huge;
    Cluster cluster(cfg);
    cluster.run([&](RankEnv& env) {
      const VirtAddr big = env.alloc(1 * kMiB);
      EXPECT_EQ(env.lib().in_hugepages(big), huge);
      const VirtAddr small = env.alloc(1024);
      EXPECT_FALSE(env.lib().in_hugepages(small));
      env.dealloc(big);
      env.dealloc(small);
    });
  }
}

TEST(RankEnv, DeallocInvalidatesRegistrations) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  Cluster cluster(cfg);
  cluster.run([](RankEnv& env) {
    const VirtAddr buf = env.alloc(1 * kMiB);
    env.rcache().acquire(buf, 64 * kKiB);
    EXPECT_GT(env.space().pinned_pages(), 0u);
    env.dealloc(buf);  // must invalidate the cached registration first
    EXPECT_EQ(env.space().pinned_pages(), 0u);
  });
}

TEST(RankEnv, ComputeAdvancesClock) {
  ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  Cluster cluster(cfg);
  cluster.run([](RankEnv& env) {
    const TimePs t0 = env.now();
    env.compute(44000);  // 44k ops at 4.4 ops/ns = 10 us
    EXPECT_EQ(env.now() - t0, us(10));
  });
}

TEST(Cluster, DeterministicMakespan) {
  auto run = [] {
    ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 2;
    Cluster cluster(cfg);
    cluster.run([](RankEnv& env) {
      const VirtAddr b = env.alloc(256 * kKiB);
      env.touch_stream(b, 256 * kKiB);
      env.touch_random(b, 256 * kKiB, 500);
      env.compute(100000);
    });
    return cluster.makespan();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace ibp::core
