#include "ibp/sim/engine.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <optional>
#include <tuple>
#include <vector>

namespace ibp::sim {
namespace {

TEST(Engine, SingleRankAdvances) {
  Engine eng(1);
  eng.run([](Context& ctx) {
    EXPECT_EQ(ctx.now(), 0u);
    ctx.advance(ns(100));
    EXPECT_EQ(ctx.now(), ns(100));
    ctx.advance(ns(50));
    EXPECT_EQ(ctx.now(), ns(150));
  });
  EXPECT_EQ(eng.final_time(0), ns(150));
  EXPECT_EQ(eng.makespan(), ns(150));
}

TEST(Engine, RanksExecuteInVirtualTimeOrder) {
  // Rank 0 advances in big steps, rank 1 in small ones; the observed
  // interleaving must be ordered by virtual time.
  Engine eng(2);
  std::vector<std::pair<TimePs, RankId>> trace;
  eng.run([&trace](Context& ctx) {
    const TimePs step = ctx.rank() == 0 ? ns(100) : ns(30);
    for (int i = 0; i < 5; ++i) {
      ctx.advance(step);
      trace.emplace_back(ctx.now(), ctx.rank());
    }
  });
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_LE(trace[i - 1].first, trace[i].first)
        << "out-of-order execution at step " << i;
}

TEST(Engine, TieBreaksByRankId) {
  Engine eng(3);
  std::vector<RankId> order;
  eng.run([&order](Context& ctx) {
    ctx.advance(ns(10));
    order.push_back(ctx.rank());
  });
  ASSERT_EQ(order.size(), 3u);
  // All ranks start at 0; rank 0 runs first, advances to 10, then rank 1
  // runs (0 < 10), etc. After the advance each logs in rank order.
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Engine, WaitUntilDeliversAtReadyTime) {
  Engine eng(2);
  struct Mailbox {
    bool full = false;
    TimePs at = 0;
  } box;

  eng.run([&box](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance(ns(500));
      box.full = true;
      box.at = ctx.now() + ns(100);  // "arrives" 100ns later
    } else {
      ctx.wait_until([&box]() -> std::optional<TimePs> {
        if (!box.full) return std::nullopt;
        return box.at;
      });
      EXPECT_EQ(ctx.now(), ns(600));
    }
  });
}

TEST(Engine, BlockedRankResumesNoEarlierThanItsOwnClock) {
  Engine eng(2);
  struct {
    bool ready = false;
  } flag;
  eng.run([&flag](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance(ns(10));
      flag.ready = true;
    } else {
      ctx.advance(ns(1000));  // already far ahead
      ctx.wait_until([&flag]() -> std::optional<TimePs> {
        if (!flag.ready) return std::nullopt;
        return ns(10);  // event happened long ago
      });
      EXPECT_EQ(ctx.now(), ns(1000));  // clock never goes backwards
    }
  });
}

TEST(Engine, DeadlockIsDetected) {
  Engine eng(2);
  EXPECT_THROW(
      eng.run([](Context& ctx) {
        ctx.wait_until([]() -> std::optional<TimePs> { return std::nullopt; });
      }),
      SimError);
}

TEST(Engine, RankErrorPropagates) {
  Engine eng(3);
  EXPECT_THROW(eng.run([](Context& ctx) {
    ctx.advance(ns(10));
    if (ctx.rank() == 1) throw SimError("rank 1 exploded");
  }),
               SimError);
}

TEST(Engine, MessagePingPong) {
  // Two ranks exchange a token through a shared queue with explicit
  // delivery times; final clocks must reflect the full chain.
  Engine eng(2);
  struct Msg {
    TimePs deliver;
    int hop;
  };
  std::deque<Msg> to0, to1;
  constexpr TimePs kLatency = ns(200);
  constexpr int kHops = 10;

  eng.run([&](Context& ctx) {
    auto& inbox = ctx.rank() == 0 ? to0 : to1;
    auto& outbox = ctx.rank() == 0 ? to1 : to0;
    if (ctx.rank() == 0) outbox.push_back({ctx.now() + kLatency, 1});
    for (;;) {
      ctx.wait_until([&inbox]() -> std::optional<TimePs> {
        if (inbox.empty()) return std::nullopt;
        return inbox.front().deliver;
      });
      const Msg m = inbox.front();
      inbox.pop_front();
      EXPECT_GE(ctx.now(), m.deliver);
      if (m.hop >= kHops) break;
      outbox.push_back({ctx.now() + kLatency, m.hop + 1});
      if (m.hop == kHops - 1) break;  // our last message is in flight
    }
  });
  // kHops hops of kLatency each; the last receiver's clock ends at 10x.
  EXPECT_EQ(eng.makespan(), kLatency * kHops);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Engine eng(4);
    std::vector<std::pair<TimePs, RankId>> trace;
    eng.run([&trace](Context& ctx) {
      for (int i = 0; i < 20; ++i) {
        ctx.advance(ns(static_cast<std::uint64_t>(
            (ctx.rank() * 37 + i * 13) % 97 + 1)));
        trace.emplace_back(ctx.now(), ctx.rank());
      }
    });
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(EngineTracks, SpawnRunsAndJoinSyncsClocks) {
  Engine eng(1);
  eng.run([](Context& ctx) {
    EXPECT_EQ(ctx.track(), 0);
    EXPECT_EQ(ctx.live_tracks(), 1);
    TimePs child_end = 0;
    const TrackId t = ctx.spawn_track([&child_end](Context& c) {
      EXPECT_EQ(c.track(), 1);
      c.advance(us(10));
      child_end = c.now();
    });
    EXPECT_EQ(t, 1);
    ctx.advance(us(1));
    ctx.join_track(t);
    // Joining pulls the parent forward to the child's final time.
    EXPECT_EQ(child_end, us(10));
    EXPECT_EQ(ctx.now(), us(10));
    EXPECT_EQ(ctx.live_tracks(), 1);
  });
  EXPECT_EQ(eng.makespan(), us(10));
}

TEST(EngineTracks, InterleaveOrderedByTimeRankThenTrack) {
  // Two ranks x three lanes, all advancing in equal steps: every
  // admission must be ordered by (time, rank, track).
  Engine eng(2);
  struct Ev {
    TimePs t;
    RankId r;
    TrackId k;
  };
  std::vector<Ev> trace;
  eng.run([&trace](Context& ctx) {
    auto lane = [&trace](Context& c) {
      for (int i = 0; i < 4; ++i) {
        c.advance(ns(100));
        trace.push_back({c.now(), c.rank(), c.track()});
      }
    };
    const TrackId a = ctx.spawn_track(lane);
    const TrackId b = ctx.spawn_track(lane);
    lane(ctx);
    ctx.join_track(a);
    ctx.join_track(b);
  });
  ASSERT_EQ(trace.size(), 24u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const Ev& p = trace[i - 1];
    const Ev& q = trace[i];
    const bool ordered =
        p.t < q.t || (p.t == q.t &&
                      (p.r < q.r || (p.r == q.r && p.k < q.k)));
    EXPECT_TRUE(ordered) << "admission " << i << " out of order: ("
                         << p.t << "," << p.r << "," << p.k << ") then ("
                         << q.t << "," << q.r << "," << q.k << ")";
  }
}

TEST(EngineTracks, WaitUntilWakesFromSiblingTrack) {
  Engine eng(1);
  eng.run([](Context& ctx) {
    TimePs ready = 0;
    const TrackId t = ctx.spawn_track([&ready](Context& c) {
      c.advance(us(7));
      ready = c.now();
    });
    ctx.wait_until([&ready]() -> std::optional<TimePs> {
      if (ready == 0) return std::nullopt;
      return ready;
    });
    EXPECT_EQ(ctx.now(), us(7));
    ctx.join_track(t);
  });
}

TEST(EngineTracks, FourTrackScheduleIsDeterministic) {
  // Same-seed double run at T=4: the full (time, rank, track) admission
  // trace must be identical between runs.
  auto run_once = [] {
    Engine eng(2);
    std::vector<std::tuple<TimePs, RankId, TrackId>> trace;
    eng.run([&trace](Context& ctx) {
      std::vector<TrackId> kids;
      for (int w = 0; w < 4; ++w) {
        kids.push_back(ctx.spawn_track([w](Context& c) {
          for (int i = 0; i < 8; ++i)
            c.advance(ns(static_cast<std::uint64_t>(
                (c.rank() * 61 + w * 17 + i * 13) % 83 + 1)));
        }));
      }
      for (int i = 0; i < 8; ++i) {
        ctx.advance(ns(50));
        trace.emplace_back(ctx.now(), ctx.rank(), ctx.track());
      }
      for (TrackId t : kids) ctx.join_track(t);
      trace.emplace_back(ctx.now(), ctx.rank(), ctx.track());
    });
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, SleepUntil) {
  Engine eng(1);
  eng.run([](Context& ctx) {
    ctx.sleep_until(us(5));
    EXPECT_EQ(ctx.now(), us(5));
    ctx.sleep_until(us(3));  // in the past: no-op
    EXPECT_EQ(ctx.now(), us(5));
  });
}

}  // namespace
}  // namespace ibp::sim
