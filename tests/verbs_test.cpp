#include "ibp/verbs/verbs.hpp"

#include <gtest/gtest.h>

#include "ibp/core/cluster.hpp"

namespace ibp::verbs {
namespace {

core::ClusterConfig two_singles(bool patched) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.driver.hugepage_passthrough = patched;
  return cfg;
}

TEST(Verbs, RegMrChargesTime) {
  core::Cluster cluster(two_singles(true));
  cluster.run([](core::RankEnv& env) {
    auto& m = env.space().map(1 * kMiB, mem::PageKind::Small);
    const TimePs t0 = env.now();
    const Mr mr = env.verbs().reg_mr(m.va_base, 1 * kMiB);
    EXPECT_GT(env.now(), t0);
    EXPECT_EQ(mr.length, 1 * kMiB);
    const TimePs t1 = env.now();
    env.verbs().dereg_mr(mr);
    EXPECT_GT(env.now(), t1);
  });
}

TEST(Verbs, DriverPatchControlsTranslationGranularity) {
  for (const bool patched : {false, true}) {
    core::Cluster cluster(two_singles(patched));
    cluster.run([&](core::RankEnv& env) {
      auto& m = env.space().map(4 * kMiB, mem::PageKind::Huge);
      env.verbs().reg_mr(m.va_base, 4 * kMiB);
      const auto& st = env.state().node->adapter.stats();
      if (patched) {
        EXPECT_EQ(st.translations_shipped, 2u);  // two 2 MB entries
      } else {
        EXPECT_EQ(st.translations_shipped, 1024u);  // pretend 4 KB pages
      }
      EXPECT_EQ(st.pages_pinned, 2u);  // pinning is per OS page either way
    });
  }
}

TEST(Verbs, HugepageRegistrationIsAboutOnePercent) {
  // The headline §5.1 number, asserted as a property.
  core::Cluster cluster(two_singles(true));
  cluster.run([](core::RankEnv& env) {
    auto& s = env.space().map(16 * kMiB, mem::PageKind::Small);
    auto& h = env.space().map(16 * kMiB, mem::PageKind::Huge);
    TimePs t0 = env.now();
    env.verbs().reg_mr(s.va_base, 16 * kMiB);
    const TimePs small_cost = env.now() - t0;
    t0 = env.now();
    env.verbs().reg_mr(h.va_base, 16 * kMiB);
    const TimePs huge_cost = env.now() - t0;
    const double ratio =
        static_cast<double>(huge_cost) / static_cast<double>(small_cost);
    EXPECT_LT(ratio, 0.02) << "expected ~1% (paper §5.1)";
    EXPECT_GT(ratio, 0.0005);
  });
}

TEST(Verbs, BlockingWaitFastForwardsVirtualTime) {
  core::Cluster cluster(two_singles(true));
  cluster.run([](core::RankEnv& env) {
    auto& m = env.space().map(64 * kKiB, mem::PageKind::Small);
    const Mr mr = env.verbs().reg_mr(m.va_base, 64 * kKiB);
    auto qp = env.verbs().wrap_qp(*env.state().qp_to[1 - env.rank()]);
    if (env.rank() == 0) {
      hca::SendWr wr;
      wr.sges = {{m.va_base, 32 * kKiB, mr.lkey}};
      env.verbs().post_send(qp, wr);
      const TimePs before = env.now();
      env.verbs().wait_send();
      // The wait must jump to the completion, not spin in small steps.
      EXPECT_GT(env.now(), before + us(10));
    } else {
      hca::RecvWr wr;
      wr.sges = {{m.va_base, static_cast<std::uint32_t>(64 * kKiB),
                  mr.lkey}};
      env.verbs().post_recv(qp, wr);
      const hca::Cqe cqe = env.verbs().wait_recv();
      EXPECT_EQ(cqe.byte_len, 32 * kKiB);
    }
  });
}

TEST(Verbs, PollCostsAreCharged) {
  core::Cluster cluster(two_singles(true));
  cluster.run([](core::RankEnv& env) {
    const TimePs t0 = env.now();
    EXPECT_FALSE(env.verbs().poll_send().has_value());
    EXPECT_GT(env.now(), t0);  // empty poll still costs a probe
  });
}

TEST(Verbs, RegUnmappedRangeThrows) {
  core::Cluster cluster(two_singles(true));
  EXPECT_THROW(cluster.run([](core::RankEnv& env) {
    env.verbs().reg_mr(0x123456, 4096);
  }),
               SimError);
}

}  // namespace
}  // namespace ibp::verbs
