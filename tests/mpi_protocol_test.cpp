// Parameterized protocol sweeps: payload integrity and ordering across
// the eager / rendezvous-copy / RDMA bands, transports (IB vs shm), and
// stress patterns (slot exhaustion, bidirectional floods, mixed sizes).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "ibp/mpi/comm.hpp"

namespace ibp::mpi {
namespace {

core::ClusterConfig topo(int nodes, int rpn) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = rpn;
  cfg.node_memory = 512 * kMiB;
  cfg.hugepages_per_node = 256;
  return cfg;
}

std::uint8_t pattern_at(std::uint64_t i, std::uint8_t seed) {
  return static_cast<std::uint8_t>(seed * 31 + i * 7 + (i >> 9));
}

void fill(core::RankEnv& env, VirtAddr va, std::uint64_t len,
          std::uint8_t seed) {
  auto s = env.space().host_span(va, len);
  for (std::uint64_t i = 0; i < len; ++i) s[i] = pattern_at(i, seed);
}

::testing::AssertionResult check(core::RankEnv& env, VirtAddr va,
                                 std::uint64_t len, std::uint8_t seed) {
  auto s = env.space().host_span(va, len);
  for (std::uint64_t i = 0; i < len; ++i)
    if (s[i] != pattern_at(i, seed))
      return ::testing::AssertionFailure()
             << "mismatch at byte " << i << " (len " << len << ")";
  return ::testing::AssertionSuccess();
}

// --- size sweep across every protocol band, both transports -------------

struct SweepParam {
  std::uint64_t bytes;
  bool intra_node;
};

class ProtocolSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolSweep, PayloadIntact) {
  const auto [bytes, intra] = GetParam();
  core::Cluster cluster(intra ? topo(1, 2) : topo(2, 1));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(std::max<std::uint64_t>(bytes, 64));
    if (env.rank() == 0) {
      fill(env, buf, bytes, 42);
      comm.send(buf, bytes, 1, 5);
    } else {
      const RecvStatus st = comm.recv(buf, bytes, 0, 5);
      EXPECT_EQ(st.len, bytes);
      EXPECT_TRUE(check(env, buf, bytes, 42));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ProtocolSweep,
    ::testing::Values(
        SweepParam{1, false}, SweepParam{64, false}, SweepParam{4095, false},
        SweepParam{8 * kKiB, false},        // eager boundary
        SweepParam{8 * kKiB + 1, false},    // first rendezvous-copy byte
        SweepParam{16 * kKiB, false},       // rendezvous-copy ceiling
        SweepParam{16 * kKiB + 1, false},   // first RDMA byte
        SweepParam{1 * kMiB, false}, SweepParam{7 * kMiB, false},
        SweepParam{1, true}, SweepParam{8 * kKiB + 1, true},
        SweepParam{1 * kMiB, true}),
    [](const auto& info) {
      return (info.param.intra_node ? std::string("shm_") : std::string("ib_")) +
             std::to_string(info.param.bytes) + "B";
    });

// --- ordering across protocol bands --------------------------------------

TEST(ProtocolOrdering, MixedSizesSameTagArriveInOrder) {
  // MPI non-overtaking must hold even when messages take different
  // protocol paths (a big rendezvous must not be overtaken by a later
  // eager message of the same envelope).
  core::Cluster cluster(topo(2, 1));
  const std::uint64_t sizes[] = {64 * kKiB, 128, 12 * kKiB, 1,
                                 300 * kKiB, 2 * kKiB};
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    if (env.rank() == 0) {
      std::vector<Req> rs;
      for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const VirtAddr b = env.alloc(std::max<std::uint64_t>(sizes[i], 64));
        fill(env, b, sizes[i], static_cast<std::uint8_t>(i));
        rs.push_back(comm.isend(b, sizes[i], 1, 9));
      }
      comm.waitall(rs);
    } else {
      env.sim().advance(ms(2));  // let several sends pile up unexpected
      for (std::size_t i = 0; i < std::size(sizes); ++i) {
        const VirtAddr b = env.alloc(std::max<std::uint64_t>(sizes[i], 64));
        const RecvStatus st = comm.recv(b, sizes[i], 0, 9);
        EXPECT_EQ(st.len, sizes[i]) << "message " << i << " out of order";
        EXPECT_TRUE(check(env, b, sizes[i], static_cast<std::uint8_t>(i)));
      }
    }
  });
}

TEST(ProtocolStress, SendSlotExhaustionResolves) {
  // Far more in-flight eager sends than bounce slots: take_send_slot must
  // recycle via completions without deadlock.
  core::Cluster cluster(topo(2, 1));
  constexpr int kMsgs = 300;  // > 64 send slots
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(4 * kKiB);
    if (env.rank() == 0) {
      std::vector<Req> rs;
      for (int i = 0; i < kMsgs; ++i)
        rs.push_back(comm.isend(buf, 2 * kKiB, 1, i));
      comm.waitall(rs);
    } else {
      for (int i = 0; i < kMsgs; ++i) comm.recv(buf, 2 * kKiB, 0, i);
    }
  });
}

TEST(ProtocolStress, BidirectionalRendezvousFlood) {
  // Both sides issue RDMA rendezvous simultaneously; control messages
  // interleave on the same QPs.
  core::Cluster cluster(topo(2, 1));
  constexpr int kMsgs = 20;
  constexpr std::uint64_t kLen = 200 * kKiB;
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const int other = 1 - env.rank();
    const VirtAddr sb = env.alloc(kLen);
    const VirtAddr rb = env.alloc(kLen);
    fill(env, sb, kLen, static_cast<std::uint8_t>(env.rank() + 1));
    for (int i = 0; i < kMsgs; ++i) {
      Req rr = comm.irecv(rb, kLen, other, i);
      Req sr = comm.isend(sb, kLen, other, i);
      comm.wait(sr);
      comm.wait(rr);
      EXPECT_TRUE(
          check(env, rb, kLen, static_cast<std::uint8_t>(other + 1)));
    }
  });
}

TEST(ProtocolStress, ManyToOneFanIn) {
  // 7 ranks flood rank 0 with mixed-protocol messages.
  core::Cluster cluster(topo(2, 4));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    constexpr std::uint64_t kBig = 100 * kKiB;
    const VirtAddr buf = env.alloc(kBig);
    if (env.rank() == 0) {
      int received = 0;
      for (int p = 1; p < 8; ++p)
        for (int m = 0; m < 3; ++m) {
          const RecvStatus st = comm.recv(buf, kBig, kAnySource, kAnyTag);
          EXPECT_TRUE(check(env, buf, st.len,
                            static_cast<std::uint8_t>(st.src)));
          ++received;
        }
      EXPECT_EQ(received, 21);
    } else {
      const std::uint64_t sizes[3] = {512, 10 * kKiB, 64 * kKiB};
      fill(env, buf, kBig, static_cast<std::uint8_t>(env.rank()));
      for (int m = 0; m < 3; ++m)
        comm.send(buf, sizes[m], 0, env.rank() * 10 + m);
    }
  });
}

TEST(ProtocolLatency, BandsStepUpAtThresholds) {
  // Crossing the eager threshold must cost a visible latency step (the
  // extra rendezvous round trip).
  core::Cluster cluster(topo(2, 1));
  TimePs at_eager = 0, above_eager = 0;
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(64 * kKiB);
    auto once = [&](std::uint64_t len) {
      if (env.rank() == 0) {
        comm.send(buf, len, 1, 1);
        comm.recv(buf, 1, 1, 2);
        return TimePs{0};
      }
      const TimePs t0 = env.now();
      comm.recv(buf, len, 0, 1);
      const TimePs dt = env.now() - t0;
      comm.send(buf, 1, 0, 2);
      return dt;
    };
    const TimePs a = once(8 * kKiB);
    const TimePs b = once(8 * kKiB + 64);
    if (env.rank() == 1) {
      at_eager = a;
      above_eager = b;
    }
  });
  EXPECT_GT(above_eager, at_eager)
      << "rendezvous handshake must add latency at the threshold";
}

TEST(Profiler, CategorizesOperations) {
  core::Cluster cluster(topo(2, 1));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(64 * kKiB);
    comm.barrier();
    const int other = 1 - env.rank();
    comm.sendrecv(buf, 1024, other, 1, buf, 1024, other, 1);
    comm.bcast(buf, 4096, 0);
    const auto& by_op = comm.profiler().by_op();
    EXPECT_TRUE(by_op.count("barrier"));
    EXPECT_TRUE(by_op.count("sendrecv"));
    EXPECT_TRUE(by_op.count("bcast"));
    // Nested p2p inside collectives must not be double counted.
    EXPECT_FALSE(by_op.count("isend"));
    TimePs sum = 0;
    for (const auto& [op, t] : by_op) sum += t;
    EXPECT_EQ(sum, comm.profiler().total());
  });
}

TEST(CommConfig, BadThresholdsRejected) {
  core::Cluster cluster(topo(2, 1));
  EXPECT_THROW(cluster.run([](core::RankEnv& env) {
    CommConfig cfg;
    cfg.eager_threshold = 32 * kKiB;  // above rndv_copy_max
    Comm comm(env, cfg);
  }),
               SimError);
}

}  // namespace
}  // namespace ibp::mpi

namespace ibp::mpi {
namespace {

TEST(CommStats, CountsPerProtocol) {
  core::Cluster cluster(topo(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(1 * kMiB);
    if (env.rank() == 0) {
      comm.send(buf, 100, 3, 1);          // eager (inter-node)
      comm.send(buf, 12 * kKiB, 3, 2);    // rendezvous copy
      comm.send(buf, 200 * kKiB, 3, 3);   // rendezvous RDMA
      comm.send(buf, 100, 1, 4);          // shm (same node)
      const auto& st = comm.stats();
      EXPECT_EQ(st.eager_sent, 1u);
      EXPECT_EQ(st.rndv_copy_sent, 1u);
      EXPECT_EQ(st.rndv_rdma_sent, 1u);
      EXPECT_EQ(st.rndv_rdma_bytes, 200 * kKiB);
      EXPECT_EQ(st.shm_sent, 1u);
    } else if (env.rank() == 3) {
      env.sim().advance(ms(1));  // force the eager one unexpected
      comm.recv(buf, 100, 0, 1);
      comm.recv(buf, 12 * kKiB, 0, 2);
      comm.recv(buf, 200 * kKiB, 0, 3);
      EXPECT_GE(comm.stats().unexpected_arrivals, 1u);
    } else if (env.rank() == 1) {
      comm.recv(buf, 100, 0, 4);
    }
  });
}

}  // namespace
}  // namespace ibp::mpi
