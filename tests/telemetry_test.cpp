#include "ibp/telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ibp/core/cluster.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/telemetry/sink.hpp"

namespace ibp::telemetry {
namespace {

TEST(MetricsRegistry, CountersAndOneShotAdds) {
  MetricsRegistry reg;
  Counter c = reg.counter("mpi.sends");
  c.add();
  c.add(2.5);
  reg.add("mpi.sends", 1.0);   // resolves to the same slot
  reg.add("hca.bytes", 42.0);  // creates a second slot
  EXPECT_DOUBLE_EQ(reg.value("mpi.sends"), 4.5);
  EXPECT_DOUBLE_EQ(reg.value("hca.bytes"), 42.0);
  EXPECT_DOUBLE_EQ(reg.value("unknown.metric"), 0.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, ProbesSumAndLatchOnRelease) {
  MetricsRegistry reg;
  double a = 10.0, b = 5.0;
  ProbeHandle ha = reg.probe("regcache.hits", [&] { return a; });
  {
    ProbeHandle hb = reg.probe("regcache.hits", [&] { return b; });
    EXPECT_DOUBLE_EQ(reg.value("regcache.hits"), 15.0);
    b = 7.0;
    EXPECT_DOUBLE_EQ(reg.value("regcache.hits"), 17.0);
  }  // hb released: its final 7.0 is latched into the slot base
  b = 1000.0;  // dead probe must not be read again
  EXPECT_DOUBLE_EQ(reg.value("regcache.hits"), 17.0);
  a = 12.0;  // live probe still tracks its source
  EXPECT_DOUBLE_EQ(reg.value("regcache.hits"), 19.0);
  ha.release();
  EXPECT_DOUBLE_EQ(reg.value("regcache.hits"), 19.0);
}

TEST(MetricsRegistry, SnapshotAndDiff) {
  MetricsRegistry reg;
  Counter c = reg.counter("a.x");
  reg.add("a.y", 1.0);
  c.add(3.0);

  const MetricsSnapshot before = reg.snapshot();
  EXPECT_DOUBLE_EQ(before.value_of("a.x"), 3.0);
  EXPECT_DOUBLE_EQ(before.value_of("a.y"), 1.0);
  EXPECT_DOUBLE_EQ(before.value_of("nope"), 0.0);

  c.add(2.0);
  reg.add("a.z", 9.0);  // new metric after the first snapshot
  const MetricsSnapshot after = reg.snapshot();

  const MetricsDelta d = diff(before, after);
  ASSERT_EQ(d.entries.size(), 2u);  // a.y unchanged, so absent
  EXPECT_DOUBLE_EQ(d.delta_of("a.x"), 2.0);
  EXPECT_DOUBLE_EQ(d.delta_of("a.z"), 9.0);
  EXPECT_DOUBLE_EQ(d.delta_of("a.y"), 0.0);

  // A snapshot outlives the registry that produced it.
  auto* heap_reg = new MetricsRegistry;
  heap_reg->add("gone.metric", 4.0);
  const MetricsSnapshot survivor = heap_reg->snapshot();
  delete heap_reg;
  EXPECT_DOUBLE_EQ(survivor.value_of("gone.metric"), 4.0);
}

TEST(MetricsRegistry, SinksSerializeSnapshotAndDelta) {
  MetricsRegistry reg;
  reg.add("mpi.sends", 3.0);
  reg.add("hca.bytes", 100.0);
  const MetricsSnapshot before = reg.snapshot();
  reg.add("mpi.sends", 2.0);
  const MetricsSnapshot after = reg.snapshot();

  RunTelemetry run;
  run.metrics = &after;
  run.metrics_filter = "mpi.";
  std::ostringstream js;
  MetricsJsonSink().write(run, js);
  EXPECT_EQ(js.str(), "{\n  \"mpi.sends\": 5\n}\n");

  std::ostringstream ds;
  write_delta_json(diff(before, after), ds);
  EXPECT_EQ(ds.str(),
            "{\n  \"mpi.sends\": {\"before\": 3, \"after\": 5, "
            "\"delta\": 2}\n}");
}

TEST(MetricsRegistry, AliasResolvesBothNamesToOneCounter) {
  MetricsRegistry reg;
  Counter c = reg.counter("hca.cq_poll_contention_ps");
  reg.alias("hca.cq_poll_contention", "hca.cq_poll_contention_ps");
  c.add(3.0);
  reg.add("hca.cq_poll_contention", 2.0);  // old dotted name, same slot
  EXPECT_DOUBLE_EQ(reg.value("hca.cq_poll_contention_ps"), 5.0);
  EXPECT_DOUBLE_EQ(reg.value("hca.cq_poll_contention"), 5.0);
  // One slot: snapshots carry the canonical name only, so JSON consumers
  // see no double counting.
  EXPECT_EQ(reg.size(), 1u);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap.name(0), "hca.cq_poll_contention_ps");
}

TEST(MetricsRegistry, HistogramProbesExportQuantiles) {
  MetricsRegistry reg;
  LogHistogram h;
  const auto probes = histogram_probes(reg, "rpc.latency", &h);
  EXPECT_EQ(probes.size(), 4u);
  EXPECT_DOUBLE_EQ(reg.value("rpc.latency.p99_us"), 0.0);
  for (std::uint64_t ns = 1000; ns <= 100000; ns += 1000)
    h.add(ns);  // 1..100 us, uniform
  // Nanosecond samples surface as microseconds, within the histogram's
  // <= 12.5 % bucket quantile error.
  EXPECT_NEAR(reg.value("rpc.latency.p50_us"), 50.0, 50.0 * 0.125);
  EXPECT_NEAR(reg.value("rpc.latency.p90_us"), 90.0, 90.0 * 0.125);
  EXPECT_NEAR(reg.value("rpc.latency.p99_us"), 99.0, 99.0 * 0.125);
  EXPECT_DOUBLE_EQ(reg.value("rpc.latency.max_us"), 100.0);  // exact max
}

core::ClusterConfig telemetry_cluster(int nodes, int rpn) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = rpn;
  cfg.hugepage_library = true;
  cfg.hugepages_per_node = 128;
  cfg.telemetry.enabled = true;
  return cfg;
}

void sendrecv_workload(core::RankEnv& env, int iters,
                       std::uint64_t bytes,
                       mpi::CommConfig ccfg = {}) {
  mpi::Comm comm(env, ccfg);
  const int other = 1 - env.rank();
  const VirtAddr sbuf = env.alloc(bytes);
  const VirtAddr rbuf = env.alloc(bytes);
  env.touch_stream(sbuf, bytes);
  for (int it = 0; it < iters; ++it)
    comm.sendrecv(sbuf, bytes, other, it, rbuf, bytes, other, it);
  comm.barrier();
}

TEST(Telemetry, SixSubsystemsLiveAfterSendrecv) {
  core::Cluster cluster(telemetry_cluster(2, 1));
  cluster.run([](core::RankEnv& env) {
    sendrecv_workload(env, 4, 256 * kKiB);
  });
  const MetricsSnapshot snap = cluster.metrics().snapshot();
  std::map<std::string, double> live;  // prefix -> sum of non-zero values
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const std::string_view n = snap.name(i);
    live[std::string(n.substr(0, n.find('.')))] += snap.value(i);
  }
  for (const char* sub :
       {"mpi", "hca", "regcache", "hugepage", "placement", "cpu"})
    EXPECT_GT(live[sub], 0.0) << "no live metrics under " << sub << ".";
  // A few paper-central metrics must be individually live.
  EXPECT_GT(snap.value_of("mpi.rendezvous_bytes"), 0.0);
  EXPECT_GT(snap.value_of("hca.bytes_tx"), 0.0);
  EXPECT_GT(snap.value_of("placement.plan_decisions"), 0.0);
}

TEST(Telemetry, CounterTracksSampleDeterministically) {
  auto run_once = [] {
    core::Cluster cluster(telemetry_cluster(2, 1));
    cluster.run([](core::RankEnv& env) {
      sendrecv_workload(env, 6, 128 * kKiB);
    });
    std::ostringstream os;
    for (const auto& e : cluster.tracer()->events()) {
      if (e.kind != sim::Tracer::Kind::Counter) continue;
      os << e.name << '@' << e.start << '=' << e.value << '\n';
    }
    return os.str();
  };
  const std::string first = run_once();
  EXPECT_FALSE(first.empty()) << "sampler produced no counter samples";
  EXPECT_EQ(first, run_once());
}

TEST(Telemetry, SamplingCategoriesFilterCounterTracks) {
  core::ClusterConfig cfg = telemetry_cluster(2, 1);
  cfg.telemetry.categories = {"mpi."};
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    sendrecv_workload(env, 4, 128 * kKiB);
  });
  std::size_t counters = 0;
  for (const auto& e : cluster.tracer()->events()) {
    if (e.kind != sim::Tracer::Kind::Counter) continue;
    ++counters;
    EXPECT_EQ(e.name.substr(0, 4), "mpi.") << e.name;
  }
  EXPECT_GT(counters, 0u);
}

TEST(Telemetry, FlowEventsPairOneToOneAcrossRetransmits) {
  core::ClusterConfig cfg = telemetry_cluster(2, 1);
  cfg.fault = fault::parse_fault_plan("drop=0-1:0.01;drop=1-0:0.01");
  core::Cluster cluster(cfg);
  std::vector<std::uint64_t> retransmits(2, 0);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig ccfg;
    ccfg.recovery = mpi::CommConfig::Recovery::Repost;
    mpi::Comm comm(env, ccfg);
    const int other = 1 - env.rank();
    const VirtAddr sbuf = env.alloc(64 * kKiB);
    const VirtAddr rbuf = env.alloc(64 * kKiB);
    for (int it = 0; it < 10; ++it)
      comm.sendrecv(sbuf, 64 * kKiB, other, it, rbuf, 64 * kKiB, other, it);
    retransmits[static_cast<std::size_t>(env.rank())] =
        comm.stats().retransmits;
  });
  // The lossy link must actually have exercised the retransmit path.
  EXPECT_GT(retransmits[0] + retransmits[1], 0u);

  // Every flow id opens exactly once ("s") and closes exactly once ("f"):
  // a retransmitted packet re-sends the wire data but must not re-open
  // the flow, and a dropped packet's delivery only ever ingests once.
  std::map<std::uint64_t, int> opens, closes;
  for (const auto& e : cluster.tracer()->events()) {
    if (e.kind == sim::Tracer::Kind::FlowStart) ++opens[e.flow_id];
    if (e.kind == sim::Tracer::Kind::FlowEnd) ++closes[e.flow_id];
  }
  EXPECT_GT(opens.size(), 0u);
  EXPECT_EQ(opens.size(), closes.size());
  for (const auto& [id, n] : opens) {
    EXPECT_EQ(n, 1) << "flow " << id << " opened " << n << " times";
    EXPECT_EQ(closes[id], 1) << "flow " << id << " closed "
                             << closes[id] << " times";
  }
}

/// PaperDefault with a tiny SGE budget: forces isend_gather to split.
class TinySgePolicy : public placement::PaperDefaultPolicy {
 public:
  std::string_view name() const override { return "tiny-sge-test"; }
  placement::BufferPlan plan(
      const placement::BufferRequest& req,
      const placement::PolicyContext& ctx) const override {
    placement::BufferPlan p = PaperDefaultPolicy::plan(req, ctx);
    p.max_sges = 3;  // header + two data SGEs per work request
    return p;
  }
};

TEST(Telemetry, GatherSplitsHonourPlanSgeCapAndCount) {
  core::Cluster cluster(telemetry_cluster(2, 1));
  std::uint64_t splits = 0;
  cluster.run([&](core::RankEnv& env) {
    env.placement().set_policy(std::make_unique<TinySgePolicy>());
    mpi::CommConfig ccfg;
    ccfg.sge_gather = true;
    mpi::Comm comm(env, ccfg);
    if (env.rank() == 0) {
      // Five pieces + header = 6 SGEs > cap 3: the tail must be staged.
      const VirtAddr b = env.alloc(4096);
      auto s = env.space().host_span(b, 4096);
      for (int i = 0; i < 4096; ++i)
        s[i] = static_cast<std::uint8_t>(i * 11);
      std::vector<mpi::Seg> segs;
      for (int i = 0; i < 5; ++i)
        segs.push_back({b + static_cast<std::uint64_t>(i) * 500, 500});
      comm.wait(comm.isend_gather(segs, 1, 7));
      splits = comm.stats().sge_splits;
    } else {
      const VirtAddr buf = env.alloc(4096);
      const mpi::RecvStatus st = comm.recv(buf, 2500, 0, 7);
      EXPECT_EQ(st.len, 2500u);
      // Payload must survive the split: the gathered pieces arrive in
      // order, bytewise identical to the source region's pieces.
      auto r = env.space().host_span(buf, 2500);
      for (int piece = 0; piece < 5; ++piece)
        for (int i = 0; i < 500; ++i)
          ASSERT_EQ(r[piece * 500 + i],
                    static_cast<std::uint8_t>((piece * 500 + i) * 11))
              << "piece " << piece << " offset " << i;
    }
    comm.barrier();
  });
  EXPECT_EQ(splits, 1u);
  EXPECT_DOUBLE_EQ(cluster.metrics().value("mpi.sge_splits"), 1.0);
}

TEST(Telemetry, DisabledTelemetryKeepsTracerOff) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    sendrecv_workload(env, 1, 4 * kKiB);
  });
  EXPECT_EQ(cluster.tracer(), nullptr);
  // The metrics plane itself stays usable (probes latch at teardown).
  EXPECT_GT(cluster.metrics().value("hca.sends_posted"), 0.0);
}

}  // namespace
}  // namespace ibp::telemetry
