#include "ibp/placement/placement.hpp"

#include <gtest/gtest.h>

#include "ibp/core/cluster.hpp"
#include "ibp/hugepage/library.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/workloads/imb.hpp"

namespace ibp::placement {
namespace {

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, ListsAllPolicies) {
  const auto& infos = registered_policies();
  ASSERT_GE(infos.size(), 4u);
  EXPECT_EQ(infos.front().name, "paper-default");
  for (const PolicyInfo& info : infos) {
    EXPECT_FALSE(info.description.empty());
    auto policy = make_policy(info.name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), info.name);
    EXPECT_NE(known_policy_names().find(std::string(info.name)),
              std::string::npos);
  }
}

TEST(Registry, UnknownNameIsNull) {
  EXPECT_EQ(make_policy("no-such-policy"), nullptr);
  EXPECT_EQ(make_policy(""), nullptr);
}

// ---------------------------------------------------------------------------
// Golden equivalence: PaperDefault reproduces the pre-engine hard-coded
// decisions — the hugepage library's 32 KB tier and 4 KB chunks, the MPI
// eager/rndv-copy/rndv-RDMA thresholds, the SGE-gather condition, and
// the lazy/deactivated registration split — for every size 1 B..16 MB.

TEST(PaperDefault, GoldenEquivalenceSweep) {
  PaperDefaultPolicy policy;
  for (int lg = 0; lg <= 24; ++lg) {
    for (std::uint64_t size : {std::uint64_t{1} << lg,
                               (std::uint64_t{1} << lg) + 1,
                               (std::uint64_t{1} << lg) - 1}) {
      if (size == 0 || size > 16 * kMiB) continue;
      for (bool huge_on : {false, true}) {
        for (bool sge_on : {false, true}) {
          for (bool lazy : {false, true}) {
            PolicyContext ctx;
            ctx.hugepages_enabled = huge_on;
            ctx.sge_gather_enabled = sge_on;
            ctx.lazy_dereg = lazy;
            const BufferPlan p = policy.plan({.size = size}, ctx);

            // hugepage::Library::malloc's exact routing condition.
            const bool want_huge = huge_on && size >= 32 * kKiB;
            EXPECT_EQ(p.backing, want_huge ? mem::PageKind::Huge
                                           : mem::PageKind::Small)
                << "size " << size;
            EXPECT_EQ(p.chunk, 4 * kKiB);
            EXPECT_EQ(p.alignment, 0u) << "paper-default adds no alignment";
            EXPECT_EQ(p.offset, 0u);

            // mpi::Comm::isend's exact protocol conditions.
            if (size <= 8 * kKiB) {
              EXPECT_EQ(p.protocol, Protocol::Eager) << "size " << size;
            } else if (size <= 16 * kKiB) {
              EXPECT_EQ(p.protocol, Protocol::RndvCopy) << "size " << size;
            } else {
              EXPECT_EQ(p.protocol, Protocol::RndvRdma) << "size " << size;
            }

            // Comm::send_typed's exact SGE-gather condition.
            EXPECT_EQ(p.sge_gather, sge_on && size <= 8 * kKiB);

            EXPECT_EQ(p.registration, lazy ? RegStrategy::LazyCache
                                           : RegStrategy::Deactivated);
          }
        }
      }
    }
  }
}

TEST(PaperDefault, HonoursConsumerOverriddenThresholds) {
  // Tests construct Comms/Libraries with custom thresholds; the policy
  // must decide against the context, not baked-in constants.
  PaperDefaultPolicy policy;
  PolicyContext ctx;
  ctx.hugepages_enabled = true;
  ctx.huge_threshold = 1 * kMiB;
  ctx.eager_threshold = 256;
  ctx.rndv_copy_max = 512;
  ctx.chunk = 8 * kKiB;
  EXPECT_EQ(policy.plan({.size = 512 * kKiB}, ctx).backing,
            mem::PageKind::Small);
  EXPECT_EQ(policy.plan({.size = 2 * kMiB}, ctx).backing,
            mem::PageKind::Huge);
  EXPECT_EQ(policy.plan({.size = 256}, ctx).protocol, Protocol::Eager);
  EXPECT_EQ(policy.plan({.size = 400}, ctx).protocol, Protocol::RndvCopy);
  EXPECT_EQ(policy.plan({.size = 600}, ctx).protocol, Protocol::RndvRdma);
  EXPECT_EQ(policy.plan({.size = 64}, ctx).chunk, 8 * kKiB);
}

TEST(PaperDefault, LibraryRoutingMatchesPlans) {
  // The library consulted through an engine must land every allocation
  // on the tier the plan promised.
  mem::PhysicalMemory phys(256 * kMiB, 64, 3);
  mem::HugeTlbFs fs(&phys, 64, 2);
  mem::AddressSpace space(&phys, &fs);
  PolicyContext ctx;
  ctx.hugepages_enabled = true;
  PlacementEngine engine(std::make_unique<PaperDefaultPolicy>(), ctx);
  hugepage::Library lib(space, fs, {}, &engine);

  for (std::uint64_t size : {std::uint64_t{64}, 4 * kKiB, 31 * kKiB,
                             32 * kKiB, 256 * kKiB, 4 * kMiB}) {
    const BufferPlan p = lib.plan_for(size, Role::WorkloadHeap);
    const auto r = lib.malloc(size);
    ASSERT_NE(r.addr, 0u);
    EXPECT_EQ(lib.in_hugepages(r.addr), p.backing == mem::PageKind::Huge)
        << "size " << size;
  }
  EXPECT_GT(engine.stats().plans, 0u);
  EXPECT_GT(engine.stats().huge_backed, 0u);
  EXPECT_GT(engine.stats().small_backed, 0u);
}

// ---------------------------------------------------------------------------
// Non-default policies

TEST(SmallPageBaseline, NeverUsesHugepages) {
  SmallPageBaselinePolicy policy;
  PolicyContext ctx;
  ctx.hugepages_enabled = true;
  for (std::uint64_t size : {4 * kKiB, 32 * kKiB, 16 * kMiB}) {
    EXPECT_EQ(policy.plan({.size = size}, ctx).backing,
              mem::PageKind::Small);
  }
}

TEST(AlignFirst, AlignsSubPageBuffers) {
  AlignFirstPolicy policy;
  PolicyContext ctx;
  ctx.hugepages_enabled = true;
  const BufferPlan small = policy.plan({.size = 256}, ctx);
  EXPECT_EQ(small.alignment, 64u);
  EXPECT_EQ(small.offset, 64u);
  // At or beyond a page the paper's default placement applies unchanged.
  const BufferPlan big = policy.plan({.size = 64 * kKiB}, ctx);
  EXPECT_EQ(big.alignment, 0u);
  EXPECT_EQ(big.backing, mem::PageKind::Huge);
}

TEST(EagerPin, PinsCommunicationSizedBuffers) {
  EagerPinPolicy policy;
  PolicyContext ctx;
  EXPECT_EQ(policy.plan({.size = 4 * kKiB}, ctx).registration,
            RegStrategy::LazyCache);
  EXPECT_EQ(policy.plan({.size = 64 * kKiB}, ctx).registration,
            RegStrategy::EagerPin);
}

// ---------------------------------------------------------------------------
// Adaptive: converges to hugepages for >= 32 KB buffers under a
// synthetic stat feed, even from a pessimistic prior.

TEST(Adaptive, ConvergesToHugepagesFromObservedStats) {
  AdaptivePolicy policy;
  PolicyContext ctx;
  ctx.hugepages_enabled = true;
  ctx.huge_threshold = 16 * kMiB;  // pessimistic prior: almost never huge

  for (std::uint64_t size : {32 * kKiB, 256 * kKiB, 4 * kMiB}) {
    EXPECT_EQ(policy.plan({.size = size}, ctx).backing,
              mem::PageKind::Small)
        << "prior should start on small pages for " << size;
  }

  // Synthetic feed shaped like CommStats/CacheStats deltas: hugepage
  // transfers are cheap (few misses), small-page transfers pay full
  // per-page registration.
  for (int i = 0; i < 8; ++i) {
    for (std::uint64_t size : {32 * kKiB, 256 * kKiB, 4 * kMiB}) {
      policy.observe({.size = size,
                      .backing = mem::PageKind::Small,
                      .cost = size * 40,
                      .cache_misses = size / kSmallPageSize});
      policy.observe({.size = size,
                      .backing = mem::PageKind::Huge,
                      .cost = size * 2,
                      .cache_misses = 1});
    }
  }

  for (std::uint64_t size : {32 * kKiB, 256 * kKiB, 4 * kMiB}) {
    EXPECT_EQ(policy.plan({.size = size}, ctx).backing, mem::PageKind::Huge)
        << "observed stats must flip " << size << " to hugepages";
    EXPECT_GT(policy.observed_cost(size, mem::PageKind::Small),
              policy.observed_cost(size, mem::PageKind::Huge));
  }

  // Unobserved sizes keep the prior.
  EXPECT_EQ(policy.plan({.size = 4 * kKiB}, ctx).backing,
            mem::PageKind::Small);
}

TEST(Adaptive, RepeatedAllocFailuresFallBackToSmallPages) {
  AdaptivePolicy policy;
  PolicyContext ctx;
  ctx.hugepages_enabled = true;
  EXPECT_EQ(policy.plan({.size = 1 * kMiB}, ctx).backing,
            mem::PageKind::Huge);
  for (int i = 0; i < 3; ++i) {
    policy.observe({.size = 1 * kMiB,
                    .backing = mem::PageKind::Huge,
                    .alloc_failed = true});
  }
  EXPECT_EQ(policy.plan({.size = 1 * kMiB}, ctx).backing,
            mem::PageKind::Small)
      << "an exhausted hugepage pool is not worth planning for";
}

// ---------------------------------------------------------------------------
// Engine: counters and feedback plumbing.

TEST(Engine, CountsDecisions) {
  PolicyContext ctx;
  ctx.hugepages_enabled = true;
  PlacementEngine engine(std::make_unique<PaperDefaultPolicy>(), ctx);
  engine.plan({.size = 1 * kKiB, .role = Role::EagerSend});
  engine.plan({.size = 64 * kKiB, .role = Role::Rendezvous});
  engine.plan({.size = 64 * kKiB, .role = Role::WorkloadHeap});
  engine.feed({.size = 64 * kKiB, .backing = mem::PageKind::Huge});

  const EngineStats& s = engine.stats();
  EXPECT_EQ(s.plans, 3u);
  EXPECT_EQ(s.by_role[static_cast<int>(Role::EagerSend)], 1u);
  EXPECT_EQ(s.by_role[static_cast<int>(Role::Rendezvous)], 1u);
  EXPECT_EQ(s.by_role[static_cast<int>(Role::WorkloadHeap)], 1u);
  EXPECT_EQ(s.by_protocol[static_cast<int>(Protocol::Eager)], 1u);
  EXPECT_EQ(s.by_protocol[static_cast<int>(Protocol::RndvRdma)], 2u);
  EXPECT_EQ(s.huge_backed, 2u);
  EXPECT_EQ(s.small_backed, 1u);
  EXPECT_EQ(s.feedbacks, 1u);
}

TEST(Engine, TracerLogsPlanDecisions) {
  sim::Tracer tracer;
  TimePs now = 1234;
  PlacementEngine engine(std::make_unique<PaperDefaultPolicy>(),
                         PolicyContext{});
  engine.set_tracer(&tracer, 0, [&now] { return now; });
  engine.plan({.size = 2 * kKiB, .role = Role::EagerSend});
  ASSERT_EQ(tracer.size(), 1u);
}

// ---------------------------------------------------------------------------
// RegCache strategy switching honours max_pinned_bytes across changes.

TEST(RegCacheStrategy, CapHoldsAcrossStrategySwitches) {
  core::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  cfg.regcache_capacity_bytes = 256 * kKiB;
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    auto& m = env.space().map(4 * kMiB, mem::PageKind::Small);
    regcache::RegCache& rc = env.rcache();
    EXPECT_EQ(rc.strategy(), RegStrategy::LazyCache);
    const std::uint64_t cap = rc.capacity();
    ASSERT_EQ(cap, 256 * kKiB);

    // Fill beyond the cap under LazyCache: LRU eviction keeps the bound.
    for (int i = 0; i < 8; ++i) {
      rc.release(rc.acquire(m.va_base + i * 128 * kKiB, 64 * kKiB));
      EXPECT_LE(rc.stats().pinned_bytes, cap);
    }
    EXPECT_GT(rc.stats().evictions, 0u);

    // Switch to EagerPin (still a caching mode): the bound keeps holding
    // for new acquisitions.
    rc.set_strategy(RegStrategy::EagerPin);
    for (int i = 8; i < 16; ++i) {
      rc.release(rc.acquire(m.va_base + i * 128 * kKiB, 64 * kKiB));
      EXPECT_LE(rc.stats().pinned_bytes, cap);
    }

    // Switch to Deactivated: idle cached registrations are retired at
    // once, so nothing stays pinned between transfers.
    rc.set_strategy(RegStrategy::Deactivated);
    EXPECT_EQ(rc.stats().pinned_bytes, 0u);
    EXPECT_EQ(rc.entries(), 0u);
    const verbs::Mr mr = rc.acquire(m.va_base, 64 * kKiB);
    rc.release(mr);
    EXPECT_EQ(rc.stats().pinned_bytes, 0u);

    // And back to LazyCache: caching resumes, cap still honoured.
    rc.set_strategy(RegStrategy::LazyCache);
    for (int i = 0; i < 8; ++i) {
      rc.release(rc.acquire(m.va_base + i * 128 * kKiB, 64 * kKiB));
      EXPECT_LE(rc.stats().pinned_bytes, cap);
    }
    EXPECT_GT(rc.entries(), 0u);
  });
}

TEST(RegCacheStrategy, SwitchUnderInFlightTransferRetiresOnRelease) {
  core::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    auto& m = env.space().map(1 * kMiB, mem::PageKind::Small);
    regcache::RegCache& rc = env.rcache();
    const verbs::Mr held = rc.acquire(m.va_base, 64 * kKiB);  // in flight
    rc.set_strategy(RegStrategy::Deactivated);
    // The reference-held registration survives the switch ...
    EXPECT_EQ(rc.entries(), 1u);
    // ... and is retired the moment its transfer releases it.
    rc.release(held);
    EXPECT_EQ(rc.entries(), 0u);
    EXPECT_EQ(rc.stats().pinned_bytes, 0u);
  });
}

// ---------------------------------------------------------------------------
// Cluster integration: policy selection by name, and the acceptance
// ordering — Adaptive beats SmallPageBaseline for >= 64 KB messages in
// the registration-sensitive IMB SendRecv configuration.

TEST(Cluster, RejectsUnknownPolicyName) {
  core::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  cfg.placement_policy = "definitely-not-a-policy";
  EXPECT_THROW(core::Cluster cluster(cfg), SimError);
}

std::vector<workloads::ImbPoint> run_fig5_policy(const std::string& policy) {
  core::ClusterConfig cfg;
  cfg.platform = platform::opteron_pcie_infinihost();
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.hugepage_library = true;
  cfg.lazy_deregistration = false;  // registration-sensitive configuration
  cfg.hugepages_per_node = 512;
  cfg.placement_policy = policy;
  core::Cluster cluster(cfg);
  workloads::ImbConfig icfg;
  icfg.sizes = {64 * kKiB, 1 * kMiB, 4 * kMiB};
  icfg.iterations = 3;
  return workloads::run_sendrecv(cluster, icfg);
}

TEST(Cluster, AdaptiveBeatsSmallPageBaselineAt64KAndUp) {
  const auto adaptive = run_fig5_policy("adaptive");
  const auto baseline = run_fig5_policy("small-page-baseline");
  ASSERT_EQ(adaptive.size(), baseline.size());
  for (std::size_t i = 0; i < adaptive.size(); ++i) {
    EXPECT_GT(adaptive[i].mbytes_per_sec, baseline[i].mbytes_per_sec)
        << "size " << adaptive[i].bytes;
  }
}

TEST(Cluster, PaperDefaultPolicyMatchesLegacyBehaviourBitExactly) {
  // The whole refactor is behaviour-preserving: a paper-default run must
  // produce the exact same bandwidth figures as the seed code did (the
  // same simulation, decision for decision).
  const auto a = run_fig5_policy("paper-default");
  const auto b = run_fig5_policy("paper-default");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].avg_time, b[i].avg_time) << "determinism violated";
  }
}

// ---------------------------------------------------------------------------
// Roles, per-role overrides, and the offset-sweep diagnostic

TEST(Roles, NamesRoundTrip) {
  const Role all[] = {Role::EagerSend,    Role::Rendezvous,
                      Role::RecvRing,    Role::WorkloadHeap,
                      Role::RpcRing,     Role::RpcResponse,
                      Role::RpcShard,    Role::StripeSegment,
                      Role::RingSlab,    Role::RingSlot};
  static_assert(sizeof(all) / sizeof(all[0]) == kRoleCount);
  for (Role r : all) {
    const auto back = role_from_name(role_name(r));
    ASSERT_TRUE(back.has_value()) << role_name(r);
    EXPECT_EQ(*back, r);
  }
  EXPECT_EQ(role_from_name("rpc-ring"), Role::RpcRing);
  EXPECT_EQ(role_from_name("rpc-response"), Role::RpcResponse);
  EXPECT_EQ(role_from_name("rpc-shard"), Role::RpcShard);
  EXPECT_EQ(role_from_name("stripe-segment"), Role::StripeSegment);
  EXPECT_EQ(role_from_name("ring-slab"), Role::RingSlab);
  EXPECT_EQ(role_from_name("ring-slot"), Role::RingSlot);
  EXPECT_FALSE(role_from_name("no-such-role").has_value());
  EXPECT_FALSE(role_from_name("").has_value());
}

TEST(Engine, RoleOverrideRoutesPlansAndLeavesOthersAlone) {
  PolicyContext ctx;
  ctx.hugepages_enabled = true;
  PlacementEngine engine(make_policy("paper-default"), ctx);
  engine.set_role_policy(Role::RpcRing, make_policy("small-page-baseline"));
  EXPECT_EQ(engine.policy_for(Role::RpcRing).name(), "small-page-baseline");
  EXPECT_EQ(engine.policy_for(Role::WorkloadHeap).name(), "paper-default");

  BufferRequest req;
  req.size = 1 * kMiB;  // far above the 32 KB huge-tier threshold
  req.role = Role::RpcRing;
  EXPECT_EQ(engine.plan(req).backing, mem::PageKind::Small)
      << "the override must decide the rpc-ring role";
  req.role = Role::WorkloadHeap;
  EXPECT_EQ(engine.plan(req).backing, mem::PageKind::Huge)
      << "other roles must keep the default policy";

  engine.set_role_policy(Role::RpcRing, nullptr);  // clear
  req.role = Role::RpcRing;
  EXPECT_EQ(engine.plan(req).backing, mem::PageKind::Huge);
}

TEST(OffsetSweep, WalksTheFigure4OffsetsForSubPageRequests) {
  auto policy = make_policy("offset-sweep");
  ASSERT_NE(policy, nullptr);
  PolicyContext ctx;
  BufferRequest req;
  req.size = 512;
  req.role = Role::EagerSend;
  const auto& offs = OffsetSweepPolicy::offsets();
  ASSERT_EQ(offs.size(), 33u);  // 0, 8, ..., 256
  for (std::size_t i = 0; i < 2 * offs.size(); ++i)
    EXPECT_EQ(policy->plan(req, ctx).offset, offs[i % offs.size()]) << i;
  // Page-sized and larger requests keep the paper-default plan.
  req.size = 4 * kKiB;
  EXPECT_EQ(policy->plan(req, ctx).offset, 0u);
}

TEST(OffsetSweep, IsDiagnosticNotPartOfTheBenchRegistry) {
  for (const PolicyInfo& info : registered_policies())
    EXPECT_NE(info.name, "offset-sweep");
  bool found = false;
  for (const PolicyInfo& info : diagnostic_policies())
    if (info.name == "offset-sweep") found = true;
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ibp::placement
