#include "ibp/mem/address_space.hpp"

#include <gtest/gtest.h>

#include <set>

#include "ibp/mem/physical.hpp"

namespace ibp::mem {
namespace {

TEST(PhysicalMemory, SmallFramesAreUniqueAndAligned) {
  PhysicalMemory pm(16 * kMiB, 4, 1);
  std::set<PhysAddr> seen;
  for (int i = 0; i < 4096; ++i) {
    const PhysAddr pa = pm.alloc_small_frame();
    EXPECT_EQ(pa % kSmallPageSize, 0u);
    EXPECT_TRUE(seen.insert(pa).second) << "duplicate frame";
  }
  EXPECT_EQ(pm.small_frames_free(), 0u);
  EXPECT_THROW(pm.alloc_small_frame(), SimError);
}

TEST(PhysicalMemory, SmallFramesAreScattered) {
  // The fragmentation shuffle must make successive frames non-adjacent
  // nearly always (this is what breaks the prefetcher on small pages).
  PhysicalMemory pm(64 * kMiB, 4, 99);
  PhysAddr prev = pm.alloc_small_frame();
  int adjacent = 0;
  for (int i = 0; i < 1000; ++i) {
    const PhysAddr pa = pm.alloc_small_frame();
    if (pa == prev + kSmallPageSize) ++adjacent;
    prev = pa;
  }
  EXPECT_LT(adjacent, 10);
}

TEST(PhysicalMemory, HugeFramesAreContiguousAscending) {
  PhysicalMemory pm(16 * kMiB, 8, 1);
  PhysAddr prev = pm.alloc_huge_frame();
  EXPECT_EQ(prev, pm.huge_region_base());
  for (int i = 1; i < 8; ++i) {
    const PhysAddr pa = pm.alloc_huge_frame();
    EXPECT_EQ(pa, prev + kHugePageSize) << "huge region must be contiguous";
    prev = pa;
  }
  EXPECT_THROW(pm.alloc_huge_frame(), SimError);
}

TEST(PhysicalMemory, FreeReturnsFrames) {
  PhysicalMemory pm(1 * kMiB, 2, 1);
  const PhysAddr a = pm.alloc_small_frame();
  const std::uint64_t before = pm.small_frames_free();
  pm.free_small_frame(a);
  EXPECT_EQ(pm.small_frames_free(), before + 1);
  const PhysAddr h = pm.alloc_huge_frame();
  pm.free_huge_frame(h);
  EXPECT_EQ(pm.huge_frames_free(), 2u);
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  PhysicalMemory pm{64 * kMiB, 16, 42};
  HugeTlbFs fs{&pm, 16, 2};
  AddressSpace as{&pm, &fs};
};

TEST_F(AddressSpaceTest, MapRoundsToPageSize) {
  Mapping& m = as.map(100, PageKind::Small);
  EXPECT_EQ(m.length, kSmallPageSize);
  EXPECT_EQ(m.npages(), 1u);
  Mapping& h = as.map(kHugePageSize + 1, PageKind::Huge);
  EXPECT_EQ(h.length, 2 * kHugePageSize);
}

TEST_F(AddressSpaceTest, RegionsAreDisjointByKind) {
  Mapping& s = as.map(4096, PageKind::Small);
  Mapping& h = as.map(kHugePageSize, PageKind::Huge);
  EXPECT_LT(s.va_base, kHugeRegionBase);
  EXPECT_GE(h.va_base, kHugeRegionBase);
}

TEST_F(AddressSpaceTest, TranslateWalksToTheRightFrame) {
  Mapping& m = as.map(4 * kSmallPageSize, PageKind::Small);
  for (std::uint64_t p = 0; p < 4; ++p) {
    const VirtAddr va = m.va_base + p * kSmallPageSize + 123;
    const Translation t = as.translate(va);
    EXPECT_EQ(t.page_pa, m.frames[p]);
    EXPECT_EQ(t.pa, m.frames[p] + 123);
    EXPECT_EQ(t.page_size, kSmallPageSize);
    EXPECT_EQ(t.page_va, m.va_base + p * kSmallPageSize);
  }
}

TEST_F(AddressSpaceTest, TranslateUnmappedThrows) {
  EXPECT_THROW(as.translate(0xdead0000), SimError);
  Mapping& m = as.map(4096, PageKind::Small);
  EXPECT_THROW(as.translate(m.va_base + m.length + 4096), SimError);
}

TEST_F(AddressSpaceTest, FindRespectsRangeBounds) {
  Mapping& m = as.map(2 * kSmallPageSize, PageKind::Small);
  EXPECT_EQ(as.find(m.va_base, m.length), &m);
  EXPECT_EQ(as.find(m.va_base + 1, m.length), nullptr);  // crosses the end
  EXPECT_EQ(as.find(m.va_base - 1, 1), nullptr);
}

TEST_F(AddressSpaceTest, PinUnpinCountsPages) {
  Mapping& m = as.map(8 * kSmallPageSize, PageKind::Small);
  // [page1+10, page4+5) spans pages 1..4.
  const std::uint64_t n =
      as.pin(m.va_base + kSmallPageSize + 10, 3 * kSmallPageSize);
  EXPECT_EQ(n, 4u);
  EXPECT_EQ(as.pinned_pages(), 4u);
  // Overlapping pin refcounts without double-counting.
  as.pin(m.va_base + kSmallPageSize, kSmallPageSize);
  EXPECT_EQ(as.pinned_pages(), 4u);
  as.unpin(m.va_base + kSmallPageSize, kSmallPageSize);
  EXPECT_EQ(as.pinned_pages(), 4u);
  as.unpin(m.va_base + kSmallPageSize + 10, 3 * kSmallPageSize);
  EXPECT_EQ(as.pinned_pages(), 0u);
}

TEST_F(AddressSpaceTest, UnpinWithoutPinThrows) {
  Mapping& m = as.map(kSmallPageSize, PageKind::Small);
  EXPECT_THROW(as.unpin(m.va_base, 64), SimError);
}

TEST_F(AddressSpaceTest, UnmapPinnedThrows) {
  Mapping& m = as.map(kSmallPageSize, PageKind::Small);
  as.pin(m.va_base, 64);
  EXPECT_THROW(as.unmap(m.va_base), SimError);
  as.unpin(m.va_base, 64);
  as.unmap(m.va_base);  // now fine
}

TEST_F(AddressSpaceTest, HostSpanReadsBackWrites) {
  Mapping& m = as.map(2 * kSmallPageSize, PageKind::Small);
  auto w = as.host_span(m.va_base + 100, 1000);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = static_cast<std::uint8_t>(i);
  auto r = as.host_span(m.va_base + 100, 1000);
  for (std::size_t i = 0; i < r.size(); ++i)
    ASSERT_EQ(r[i], static_cast<std::uint8_t>(i));
}

TEST_F(AddressSpaceTest, UnmapReleasesFrames) {
  const std::uint64_t before = pm.small_frames_free();
  Mapping& m = as.map(16 * kSmallPageSize, PageKind::Small);
  EXPECT_EQ(pm.small_frames_free(), before - 16);
  as.unmap(m.va_base);
  EXPECT_EQ(pm.small_frames_free(), before);
}

TEST_F(AddressSpaceTest, MappedBytesByKind) {
  as.map(3 * kSmallPageSize, PageKind::Small);
  as.map(2 * kHugePageSize, PageKind::Huge);
  EXPECT_EQ(as.mapped_bytes(PageKind::Small), 3 * kSmallPageSize);
  EXPECT_EQ(as.mapped_bytes(PageKind::Huge), 2 * kHugePageSize);
}

TEST_F(AddressSpaceTest, HugeMappingFramesAreContiguous) {
  Mapping& m = as.map(4 * kHugePageSize, PageKind::Huge);
  for (std::size_t i = 1; i < m.frames.size(); ++i)
    EXPECT_EQ(m.frames[i], m.frames[i - 1] + kHugePageSize);
}

TEST(HugeTlbFs, ReserveIsUntouchable) {
  PhysicalMemory pm(1 * kMiB, 10, 1);
  HugeTlbFs fs(&pm, 10, 3);
  EXPECT_EQ(fs.available(), 7u);
  auto frames = fs.acquire(7);
  EXPECT_EQ(fs.available(), 0u);
  EXPECT_THROW(fs.acquire(1), SimError);
  fs.release(frames);
  EXPECT_EQ(fs.available(), 7u);
  EXPECT_EQ(fs.used(), 0u);
}

TEST(HugeTlbFs, PoolCannotExceedPhysicalRegion) {
  PhysicalMemory pm(1 * kMiB, 4, 1);
  EXPECT_THROW(HugeTlbFs(&pm, 8, 0), SimError);
}

// Property: across any interleaving of maps/unmaps, every live mapping's
// frames stay disjoint.
TEST(AddressSpaceProperty, FramesNeverAlias) {
  PhysicalMemory pm(32 * kMiB, 8, 7);
  HugeTlbFs fs(&pm, 8, 0);
  AddressSpace as(&pm, &fs);
  Rng rng(2024);
  std::vector<VirtAddr> live;
  for (int step = 0; step < 300; ++step) {
    if (live.empty() || rng.next_double() < 0.6) {
      PageKind kind =
          rng.next_double() < 0.8 ? PageKind::Small : PageKind::Huge;
      std::uint64_t len =
          (rng.next_below(8) + 1) *
          (kind == PageKind::Small ? kSmallPageSize : kHugePageSize) / 2 + 1;
      if (kind == PageKind::Huge &&
          fs.available() < div_ceil(len, kHugePageSize)) {
        kind = PageKind::Small;
        len = kSmallPageSize;
      }
      live.push_back(as.map(len, kind).va_base);
    } else {
      const std::size_t i = rng.next_below(live.size());
      as.unmap(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    // Check frame disjointness over all live mappings.
    std::set<PhysAddr> frames;
    for (VirtAddr va : live) {
      const Mapping* m = as.find(va);
      ASSERT_NE(m, nullptr);
      for (PhysAddr pa : m->frames)
        ASSERT_TRUE(frames.insert(pa).second) << "frame aliased";
    }
  }
}

}  // namespace
}  // namespace ibp::mem
