#include "ibp/sim/tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ibp/mpi/comm.hpp"

namespace ibp {
namespace {

TEST(Tracer, WritesChromeTraceJson) {
  sim::Tracer t;
  t.add(0, "mpi", "send", us(10), us(5));
  t.add(1, "app", R"(phase "two")", us(20), us(1));
  t.mark(0, "app", "checkpoint", us(30));
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find(R"("ph": "X")"), std::string::npos);
  EXPECT_NE(out.find(R"("ph": "i")"), std::string::npos);
  EXPECT_NE(out.find(R"("ts": 10)"), std::string::npos);
  EXPECT_NE(out.find(R"("dur": 5)"), std::string::npos);
  EXPECT_NE(out.find(R"(\"two\")"), std::string::npos) << "quote escaping";
  // Balanced brackets and no trailing comma before the closing bracket.
  EXPECT_EQ(out.find("},\n]"), std::string::npos);
}

TEST(Tracer, RecordsMpiSpansWhenEnabled) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.enable_tracing = true;
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    mpi::Comm comm(env);
    const VirtAddr buf = env.alloc(64 * kKiB);
    const TimePs t0 = env.now();
    comm.barrier();
    const int other = 1 - env.rank();
    comm.sendrecv(buf, 32 * kKiB, other, 1, buf, 32 * kKiB, other, 1);
    env.trace("app", "exchange-phase", t0);
  });
  ASSERT_NE(cluster.tracer(), nullptr);
  EXPECT_GT(cluster.tracer()->size(), 4u);  // barriers + sendrecvs + spans
  std::ostringstream os;
  cluster.tracer()->write_json(os);
  EXPECT_NE(os.str().find("sendrecv"), std::string::npos);
  EXPECT_NE(os.str().find("exchange-phase"), std::string::npos);
}

TEST(Tracer, DisabledByDefaultCostsNothing) {
  core::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    env.trace("app", "ignored", 0);  // must be a safe no-op
  });
  EXPECT_EQ(cluster.tracer(), nullptr);
}

}  // namespace
}  // namespace ibp
