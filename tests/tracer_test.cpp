#include "ibp/sim/tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "ibp/mpi/comm.hpp"

namespace ibp {
namespace {

TEST(Tracer, WritesChromeTraceJson) {
  sim::Tracer t;
  t.add(0, "mpi", "send", us(10), us(5));
  t.add(1, "app", R"(phase "two")", us(20), us(1));
  t.mark(0, "app", "checkpoint", us(30));
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find(R"("ph": "X")"), std::string::npos);
  EXPECT_NE(out.find(R"("ph": "i")"), std::string::npos);
  EXPECT_NE(out.find(R"("ts": 10)"), std::string::npos);
  EXPECT_NE(out.find(R"("dur": 5)"), std::string::npos);
  EXPECT_NE(out.find(R"(\"two\")"), std::string::npos) << "quote escaping";
  // Balanced brackets and no trailing comma before the closing bracket.
  EXPECT_EQ(out.find("},\n]"), std::string::npos);
}

// Golden output: control characters must come out as \u00XX per RFC 8259,
// quotes and backslashes as two-character escapes — byte-for-byte.
TEST(Tracer, EscapesControlCharactersExactly) {
  EXPECT_EQ(sim::Tracer::escaped("plain"), "plain");
  EXPECT_EQ(sim::Tracer::escaped("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(sim::Tracer::escaped(std::string("\x00\x01", 2)),
            "\\u0000\\u0001");
  EXPECT_EQ(sim::Tracer::escaped("tab\there\nand\rthere\x1f!"),
            "tab\\u0009here\\u000aand\\u000dthere\\u001f!");

  sim::Tracer t;
  t.mark(0, "app", "weird\nname\x02", us(1));
  std::ostringstream os;
  t.write_json(os);
  EXPECT_EQ(os.str(),
            "[\n"
            "  {\"pid\": 1, \"tid\": 0, \"ph\": \"i\", \"cat\": \"app\", "
            "\"name\": \"weird\\u000aname\\u0002\", \"ts\": 1, "
            "\"s\": \"t\"}\n"
            "]\n");
}

TEST(Tracer, WritesCounterFlowAndMetadataRecords) {
  sim::Tracer t;
  t.set_process_name("proc");
  t.set_thread_name(0, "rank 0");
  t.counter("mpi.bytes", us(2), 42.5);
  t.flow_begin(0, "flow", "msg", us(3), 7);
  t.flow_end(1, "flow", "msg", us(4), 7);
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find(R"("ph": "M", "cat": "__metadata", "name": "process_name", "args": {"name": "proc"})"),
            std::string::npos);
  EXPECT_NE(out.find(R"("name": "thread_name", "args": {"name": "rank 0"})"),
            std::string::npos);
  EXPECT_NE(out.find(R"("ph": "C", "cat": "telemetry", "name": "mpi.bytes", "ts": 2, "args": {"value": 42.5})"),
            std::string::npos);
  EXPECT_NE(out.find(R"("ph": "s", "cat": "flow", "name": "msg", "ts": 3, "id": 7})"),
            std::string::npos);
  EXPECT_NE(out.find(R"("ph": "f", "cat": "flow", "name": "msg", "ts": 4, "id": 7, "bp": "e"})"),
            std::string::npos);
  // Metadata records precede ordinary events.
  EXPECT_LT(out.find(R"("ph": "M")"), out.find(R"("ph": "C")"));
}

// Async ("b"/"e") spans: nestable events Chrome pairs by category + id +
// name, the form the request-tracing hub emits one per stage span.
TEST(Tracer, WritesAsyncBeginEndRecords) {
  sim::Tracer t;
  t.async_begin(0, "request", "service", us(3), 9);
  t.async_end(0, "request", "service", us(5), 9);
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find(R"("ph": "b", "cat": "request", "name": "service", "ts": 3, "id": 9)"),
            std::string::npos);
  EXPECT_NE(out.find(R"("ph": "e", "cat": "request", "name": "service", "ts": 5, "id": 9)"),
            std::string::npos);
  EXPECT_LT(out.find(R"("ph": "b")"), out.find(R"("ph": "e")"));
}

TEST(Tracer, RecordsMpiSpansWhenEnabled) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.enable_tracing = true;
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    mpi::Comm comm(env);
    const VirtAddr buf = env.alloc(64 * kKiB);
    const TimePs t0 = env.now();
    comm.barrier();
    const int other = 1 - env.rank();
    comm.sendrecv(buf, 32 * kKiB, other, 1, buf, 32 * kKiB, other, 1);
    env.trace("app", "exchange-phase", t0);
  });
  ASSERT_NE(cluster.tracer(), nullptr);
  EXPECT_GT(cluster.tracer()->size(), 4u);  // barriers + sendrecvs + spans
  std::ostringstream os;
  cluster.tracer()->write_json(os);
  EXPECT_NE(os.str().find("sendrecv"), std::string::npos);
  EXPECT_NE(os.str().find("exchange-phase"), std::string::npos);
}

TEST(Tracer, DisabledByDefaultCostsNothing) {
  core::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    env.trace("app", "ignored", 0);  // must be a safe no-op
  });
  EXPECT_EQ(cluster.tracer(), nullptr);
}

}  // namespace
}  // namespace ibp
