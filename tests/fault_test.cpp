// Fault-injection & transport-reliability subsystem tests: deterministic
// injector schedules, the plan parser, RC retransmission / RNR backoff /
// QP error semantics at the adapter level, and MPI-level recovery on a
// lossy fabric.

#include "ibp/fault/fault.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ibp/core/cluster.hpp"
#include "ibp/hca/adapter.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/rpc/rpc.hpp"

namespace ibp {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::PacketVerdict;

// ---------------------------------------------------------------------------
// Plan parsing

TEST(FaultPlan, ParsesDirectives) {
  const FaultPlan plan = fault::parse_fault_plan(
      "drop=0-1:0.25; corrupt=*-2:0.5:10-20\n"
      "storm=1:100-*  # trailing comment\n"
      "qpkill=0:3:250; seed=99");
  ASSERT_EQ(plan.links.size(), 2u);
  EXPECT_EQ(plan.links[0].src, 0);
  EXPECT_EQ(plan.links[0].dst, 1);
  EXPECT_DOUBLE_EQ(plan.links[0].drop_prob, 0.25);
  EXPECT_EQ(plan.links[0].until, 0u);  // open-ended
  EXPECT_EQ(plan.links[1].src, fault::kAnyNode);
  EXPECT_EQ(plan.links[1].dst, 2);
  EXPECT_DOUBLE_EQ(plan.links[1].corrupt_prob, 0.5);
  EXPECT_EQ(plan.links[1].from, us(10));
  EXPECT_EQ(plan.links[1].until, us(20));
  ASSERT_EQ(plan.storms.size(), 1u);
  EXPECT_EQ(plan.storms[0].node, 1);
  EXPECT_EQ(plan.storms[0].from, us(100));
  EXPECT_EQ(plan.storms[0].until, 0u);
  ASSERT_EQ(plan.qp_errors.size(), 1u);
  EXPECT_EQ(plan.qp_errors[0].node, 0);
  EXPECT_EQ(plan.qp_errors[0].qp_num, 3u);
  EXPECT_EQ(plan.qp_errors[0].at, us(250));
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(fault::parse_fault_plan("  # just a comment ").empty());
}

TEST(FaultPlan, RejectsMalformed) {
  EXPECT_THROW(fault::parse_fault_plan("drop=0-1:1.5"), SimError);
  EXPECT_THROW(fault::parse_fault_plan("drop=0:0.5"), SimError);
  EXPECT_THROW(fault::parse_fault_plan("bogus=1"), SimError);
  EXPECT_THROW(fault::parse_fault_plan("storm=1:30-20"), SimError);
  EXPECT_THROW(fault::parse_fault_plan("no directive here"), SimError);
  EXPECT_THROW(fault::parse_fault_plan("crash=2"), SimError);
  EXPECT_THROW(fault::parse_fault_plan("recover=@100"), SimError);
}

TEST(FaultPlan, ParsesCrashAndRecoverDirectives) {
  const FaultPlan plan =
      fault::parse_fault_plan("crash=2@1500; recover=2@4000; crash=*:250");
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_EQ(plan.crashes[0].node, 2);
  EXPECT_EQ(plan.crashes[0].at, us(1500));
  EXPECT_EQ(plan.crashes[1].node, fault::kAnyNode);  // ':' separator too
  EXPECT_EQ(plan.crashes[1].at, us(250));
  ASSERT_EQ(plan.recoveries.size(), 1u);
  EXPECT_EQ(plan.recoveries[0].node, 2);
  EXPECT_EQ(plan.recoveries[0].at, us(4000));
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlan, CrashRecoverFormatRoundTrips) {
  // The canonical form lists every crash before any recover.
  const char* spec = "crash=2@1500; crash=*@9000; recover=2@4000";
  const FaultPlan parsed = fault::parse_fault_plan(spec);
  const std::string formatted = fault::format_fault_plan(parsed);
  EXPECT_EQ(formatted, spec) << "canonical form must be stable";
  // Parsing tolerates interleaving and ':' separators; formatting folds
  // them onto the same canonical spelling.
  EXPECT_EQ(fault::format_fault_plan(fault::parse_fault_plan(
                "crash=2:1500; recover=2:4000; crash=*:9000")),
            spec);
  // Fixed point: formatting the re-parsed plan changes nothing.
  EXPECT_EQ(fault::format_fault_plan(fault::parse_fault_plan(formatted)),
            formatted);
}

TEST(FaultInjectorTest, ServerCrashedWindows) {
  // crash@1000 .. recover@3000 .. crash@5000 (permanent).
  const FaultPlan plan = fault::parse_fault_plan(
      "crash=2@1000; recover=2@3000; crash=2@5000");
  const FaultInjector inj(plan, 7);
  EXPECT_TRUE(inj.has_crashes());
  EXPECT_FALSE(inj.server_crashed(2, us(999)));
  EXPECT_TRUE(inj.server_crashed(2, us(1000)));
  EXPECT_TRUE(inj.server_crashed(2, us(2999)));
  EXPECT_FALSE(inj.server_crashed(2, us(3000)));  // equal time = recovered
  EXPECT_FALSE(inj.server_crashed(2, us(4999)));
  EXPECT_TRUE(inj.server_crashed(2, us(5000)));
  EXPECT_TRUE(inj.server_crashed(2, us(1) << 32));  // permanent
  EXPECT_FALSE(inj.server_crashed(3, us(2000)));  // other nodes untouched

  const FaultInjector any(fault::parse_fault_plan("crash=*@100"), 7);
  EXPECT_TRUE(any.server_crashed(0, us(100)));
  EXPECT_TRUE(any.server_crashed(9, us(100)));
}

// ---------------------------------------------------------------------------
// Injector determinism

FaultPlan lossy_link_plan(double drop) {
  FaultPlan plan;
  fault::LinkFault lf;
  lf.src = 0;
  lf.dst = 1;
  lf.drop_prob = drop;
  plan.links.push_back(lf);
  return plan;
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  const FaultPlan plan = lossy_link_plan(0.3);
  FaultInjector i1(plan, 42), i2(plan, 42), i3(plan, 43);
  std::vector<PacketVerdict> v1, v2, v3;
  for (int k = 0; k < 500; ++k) {
    v1.push_back(i1.judge_packet(0, 1, ns(100 * k)));
    v2.push_back(i2.judge_packet(0, 1, ns(100 * k)));
    v3.push_back(i3.judge_packet(0, 1, ns(100 * k)));
  }
  EXPECT_EQ(v1, v2);
  EXPECT_NE(v1, v3);  // a different seed changes the schedule
  EXPECT_GT(i1.stats().packets_dropped, 50u);
  EXPECT_LT(i1.stats().packets_dropped, 450u);
  EXPECT_EQ(i1.stats().packets_judged, 500u);
}

TEST(FaultInjectorTest, LinkStreamsIndependentOfFirstUse) {
  FaultPlan plan;
  fault::LinkFault lf;  // any link
  lf.drop_prob = 0.5;
  plan.links.push_back(lf);
  FaultInjector i1(plan, 42), i2(plan, 42);
  // i2 exercises the reverse link first; the 0->1 stream must not shift.
  for (int k = 0; k < 17; ++k) (void)i2.judge_packet(1, 0, ns(k));
  for (int k = 0; k < 200; ++k)
    EXPECT_EQ(i1.judge_packet(0, 1, ns(k)), i2.judge_packet(0, 1, ns(k)));
}

TEST(FaultInjectorTest, BrownoutWindowGates) {
  FaultPlan plan = lossy_link_plan(1.0);
  plan.links[0].from = us(10);
  plan.links[0].until = us(20);
  FaultInjector inj(plan, 1);
  EXPECT_EQ(inj.judge_packet(0, 1, us(5)), PacketVerdict::Deliver);
  EXPECT_EQ(inj.judge_packet(0, 1, us(10)), PacketVerdict::Drop);
  EXPECT_EQ(inj.judge_packet(0, 1, us(19)), PacketVerdict::Drop);
  EXPECT_EQ(inj.judge_packet(0, 1, us(20)), PacketVerdict::Deliver);
  EXPECT_EQ(inj.judge_packet(1, 0, us(15)), PacketVerdict::Deliver);  // wrong link
}

// ---------------------------------------------------------------------------
// Adapter-level RC reliability

struct FaultedPair {
  explicit FaultedPair(FaultPlan plan, std::uint64_t seed = 7)
      : inj(std::move(plan), seed) {
    a.set_fault_injector(&inj);
    b.set_fault_injector(&inj);
    qa = &a.create_qp(&a_scq, &a_rcq);
    qb = &b.create_qp(&b_scq, &b_rcq);
    qa->connect(qb);
    qb->connect(qa);
    ma = &as_a.map(64 * kKiB, mem::PageKind::Small);
    mb = &as_b.map(64 * kKiB, mem::PageKind::Small);
    ra = a.reg_mr(as_a, ma->va_base, 64 * kKiB, kSmallPageSize).mr;
    rb = b.reg_mr(as_b, mb->va_base, 64 * kKiB, kSmallPageSize).mr;
  }

  void fill_payload(std::uint32_t len) {
    auto src = as_a.host_span(ma->va_base, len);
    for (std::uint32_t i = 0; i < len; ++i)
      src[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }

  hca::SendWr send_wr(std::uint64_t wr_id, std::uint32_t len) {
    hca::SendWr wr;
    wr.wr_id = wr_id;
    wr.opcode = hca::Opcode::Send;
    wr.sges = {{ma->va_base, len, ra->lkey}};
    return wr;
  }

  hca::RecvWr recv_wr(std::uint64_t wr_id) {
    hca::RecvWr wr;
    wr.wr_id = wr_id;
    wr.sges = {{mb->va_base, 64 * kKiB, rb->lkey}};
    return wr;
  }

  FaultInjector inj;
  mem::PhysicalMemory pm_a{64 * kMiB, 16, 1};
  mem::PhysicalMemory pm_b{64 * kMiB, 16, 2};
  mem::HugeTlbFs fs_a{&pm_a, 16, 0};
  mem::HugeTlbFs fs_b{&pm_b, 16, 0};
  mem::AddressSpace as_a{&pm_a, &fs_a};
  mem::AddressSpace as_b{&pm_b, &fs_b};
  hca::Adapter a{0, hca::AdapterConfig{}};
  hca::Adapter b{1, hca::AdapterConfig{}};
  hca::CompletionQueue a_scq, a_rcq, b_scq, b_rcq;
  hca::QueuePair* qa = nullptr;
  hca::QueuePair* qb = nullptr;
  const mem::Mapping* ma = nullptr;
  const mem::Mapping* mb = nullptr;
  const hca::MemoryRegion* ra = nullptr;
  const hca::MemoryRegion* rb = nullptr;
};

TEST(Reliability, RetryExhaustionYieldsErrorCqe) {
  // Total loss within the brownout window; healthy afterwards.
  FaultPlan plan = lossy_link_plan(1.0);
  plan.links[0].until = ms(1);
  FaultedPair t(std::move(plan));
  hca::QpAttrs attrs;
  attrs.retry_cnt = 2;
  attrs.retransmit_timeout = us(10);
  t.qa->set_attrs(attrs);
  t.fill_payload(4096);

  t.qb->post_recv(t.recv_wr(77), 0);
  t.qa->post_send(t.send_wr(55, 4096), 0);

  auto c = t.a_scq.poll(ms(100));
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->wr_id, 55u);
  EXPECT_EQ(c->status, hca::WcStatus::RetryExceeded);
  EXPECT_EQ(t.qa->state(), hca::QpState::Error);
  EXPECT_EQ(t.qa->qp_stats().retransmits, 2u);  // retry_cnt resends
  EXPECT_EQ(t.qa->qp_stats().pkts_dropped, 3u);
  EXPECT_EQ(t.qb->state(), hca::QpState::Ready);  // receiver unaffected

  // Posts on an errored QP flush immediately.
  t.qa->post_send(t.send_wr(56, 4096), ms(2));
  auto c2 = t.a_scq.poll(ms(100));
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->wr_id, 56u);
  EXPECT_EQ(c2->status, hca::WcStatus::WorkRequestFlushed);

  // ERR -> RESET -> RTS recycles the QP; after the brownout the send
  // lands in the still-posted receive.
  t.qa->reset();
  EXPECT_EQ(t.qa->state(), hca::QpState::Ready);
  t.qa->post_send(t.send_wr(57, 4096), ms(2));
  auto c3 = t.a_scq.poll(ms(100));
  ASSERT_TRUE(c3.has_value());
  EXPECT_EQ(c3->wr_id, 57u);
  EXPECT_EQ(c3->status, hca::WcStatus::Success);
  auto rc = t.b_rcq.poll(ms(100));
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->wr_id, 77u);
  EXPECT_EQ(rc->byte_len, 4096u);
}

TEST(Reliability, RnrNakResolvedByLatePostRecv) {
  FaultedPair t(FaultPlan{});  // injector attached, but a healthy plan
  hca::QpAttrs attrs;
  attrs.rnr_retry = 5;
  attrs.rnr_timeout = us(30);
  t.qa->set_attrs(attrs);
  t.fill_payload(4096);

  t.qa->post_send(t.send_wr(55, 4096), 0);
  EXPECT_EQ(t.qb->unmatched_inbound(), 1u);  // parked, RNR NAKed

  // A receive posted within the RNR budget rescues the message.
  t.qb->post_recv(t.recv_wr(77), us(50));
  auto rc = t.b_rcq.poll(ms(100));
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->wr_id, 77u);
  EXPECT_EQ(rc->status, hca::WcStatus::Success);
  EXPECT_EQ(rc->byte_len, 4096u);
  auto dst = t.as_b.host_span(t.mb->va_base, 4096);
  for (std::uint32_t i = 0; i < 4096; ++i)
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(i * 7 + 3));

  auto sc = t.a_scq.poll(ms(100));
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->wr_id, 55u);
  EXPECT_EQ(sc->status, hca::WcStatus::Success);
  EXPECT_GE(t.qa->qp_stats().rnr_naks, 1u);
  EXPECT_EQ(t.qa->state(), hca::QpState::Ready);
  // The provisional exhaustion CQE was cancelled: nothing else pollable.
  EXPECT_FALSE(t.a_scq.poll(ms(1000)).has_value());
}

TEST(Reliability, RnrExhaustionFailsTheSend) {
  FaultedPair t(FaultPlan{});
  hca::QpAttrs attrs;
  attrs.rnr_retry = 2;
  attrs.rnr_timeout = us(10);
  t.qa->set_attrs(attrs);
  t.fill_payload(512);

  t.qa->post_send(t.send_wr(55, 512), 0);
  auto sc = t.a_scq.poll(ms(100));
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->wr_id, 55u);
  EXPECT_EQ(sc->status, hca::WcStatus::RnrRetryExceeded);

  // A receive posted after the deadline cannot resurrect the message; it
  // stays posted for future traffic and the sender QP is errored.
  t.qb->post_recv(t.recv_wr(77), us(500));
  EXPECT_EQ(t.qa->state(), hca::QpState::Error);
  EXPECT_FALSE(t.b_rcq.poll(ms(100)).has_value());
  EXPECT_EQ(t.qb->recv_queue_depth(), 1u);
}

TEST(Reliability, AttStormChargesMisses) {
  FaultPlan storm_plan;
  fault::AttStorm storm;
  storm.node = 0;
  storm_plan.storms.push_back(storm);

  // Single-packet sends: DMA runs back to back with the wire instead of
  // pipelining under it, so the per-lookup miss cost is visible in the
  // completion time.
  auto run = [](FaultPlan plan) {
    FaultedPair t(std::move(plan));
    t.fill_payload(2048);
    // Warm-up send populates the ATT; in the healthy run the measured
    // send then hits, while the storm forces every lookup to miss.
    t.qb->post_recv(t.recv_wr(76), 0);
    t.qa->post_send(t.send_wr(54, 2048), 0);
    const auto warm = t.b_rcq.poll(ms(100));
    EXPECT_TRUE(warm.has_value());
    t.qb->post_recv(t.recv_wr(77), warm->ready_time);
    t.qa->post_send(t.send_wr(55, 2048), warm->ready_time);
    auto rc = t.b_rcq.poll(ms(100));
    EXPECT_TRUE(rc.has_value());
    return std::make_pair(t.a.stats().storm_att_misses,
                          rc->ready_time - warm->ready_time);
  };
  const auto [healthy_misses, healthy_done] = run(FaultPlan{});
  const auto [storm_misses, storm_done] = run(std::move(storm_plan));
  EXPECT_EQ(healthy_misses, 0u);
  EXPECT_GT(storm_misses, 0u);
  EXPECT_GT(storm_done, healthy_done);  // the thrash costs time
}

TEST(Reliability, InjectedQpErrorFlushesAndCascades) {
  const FaultPlan plan = fault::parse_fault_plan("qpkill=1:*:10");
  FaultedPair t(plan);
  t.fill_payload(4096);
  t.qb->post_recv(t.recv_wr(77), 0);
  t.qa->post_send(t.send_wr(55, 4096), us(20));

  auto rc = t.b_rcq.poll(ms(100));  // preposted receive flushed
  ASSERT_TRUE(rc.has_value());
  EXPECT_EQ(rc->wr_id, 77u);
  EXPECT_EQ(rc->status, hca::WcStatus::WorkRequestFlushed);
  auto sc = t.a_scq.poll(ms(100));  // sender NAKed into the error state
  ASSERT_TRUE(sc.has_value());
  EXPECT_EQ(sc->wr_id, 55u);
  EXPECT_EQ(sc->status, hca::WcStatus::RetryExceeded);
  EXPECT_EQ(t.qa->state(), hca::QpState::Error);
  EXPECT_EQ(t.qb->state(), hca::QpState::Error);
  EXPECT_EQ(t.inj.stats().qp_errors_fired, 1u);
}

// ---------------------------------------------------------------------------
// MPI level

TEST(MpiFault, LossySendRecvCompletesWithVerifiedPayload) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.fault = fault::parse_fault_plan("drop=0-1:0.01;drop=1-0:0.01");
  core::Cluster cluster(cfg);

  constexpr std::uint64_t kLen = 64 * kKiB;
  constexpr int kIters = 10;
  std::vector<std::uint64_t> retransmits(2, 0);
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env);
    const int me = env.rank();
    const int other = 1 - me;
    const VirtAddr sbuf = env.alloc(kLen);
    const VirtAddr rbuf = env.alloc(kLen);
    auto sb = env.space().host_span(sbuf, kLen);
    for (std::uint64_t i = 0; i < kLen; ++i)
      sb[i] = static_cast<std::uint8_t>(i * 13 + me);
    for (int it = 0; it < kIters; ++it) {
      comm.sendrecv(sbuf, kLen, other, it, rbuf, kLen, other, it);
      auto rb = env.space().host_span(rbuf, kLen);
      for (std::uint64_t i = 0; i < kLen; i += 997)
        ASSERT_EQ(rb[i], static_cast<std::uint8_t>(i * 13 + other));
    }
    retransmits[static_cast<std::size_t>(me)] = comm.stats().retransmits;
  });
  // 1 % loss over ~hundreds of packets: some retransmissions must have
  // happened, and every payload byte still arrived intact.
  EXPECT_GT(retransmits[0] + retransmits[1], 0u);
  EXPECT_EQ(cluster.fault()->stats().packets_dropped,
            retransmits[0] + retransmits[1]);
}

TEST(MpiFault, SameSeedSameVirtualTime) {
  auto run_once = [](std::uint64_t seed) {
    core::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.ranks_per_node = 1;
    cfg.seed = seed;
    cfg.fault = fault::parse_fault_plan("drop=*-*:0.02");
    core::Cluster cluster(cfg);
    cluster.run([&](core::RankEnv& env) {
      mpi::Comm comm(env);
      const int other = 1 - env.rank();
      const VirtAddr buf = env.alloc(256 * kKiB);
      env.touch_stream(buf, 256 * kKiB);
      for (int it = 0; it < 4; ++it)
        comm.sendrecv(buf, 128 * kKiB, other, it, buf + 128 * kKiB,
                      128 * kKiB, other, it);
    });
    return std::make_pair(cluster.makespan(),
                          cluster.fault()->stats().packets_dropped);
  };
  const auto r1 = run_once(11);
  const auto r2 = run_once(11);
  const auto r3 = run_once(12);
  EXPECT_EQ(r1, r2);  // bit-identical schedule and timing
  EXPECT_GT(r1.second, 0u);
  EXPECT_NE(r1.second, r3.second);  // reseeding moves the schedule
}

TEST(MpiFault, QpKillRecoveredByRepostPolicy) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.fault = fault::parse_fault_plan("qpkill=1:*:300");
  core::Cluster cluster(cfg);

  constexpr std::uint64_t kLen = 64 * kKiB;
  constexpr int kIters = 20;  // spans well past the kill at 300 us
  std::vector<std::uint64_t> recoveries(2, 0);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig ccfg;
    ccfg.recovery = mpi::CommConfig::Recovery::Repost;
    mpi::Comm comm(env, ccfg);
    const int me = env.rank();
    const int other = 1 - me;
    const VirtAddr sbuf = env.alloc(kLen);
    const VirtAddr rbuf = env.alloc(kLen);
    auto sb = env.space().host_span(sbuf, kLen);
    for (std::uint64_t i = 0; i < kLen; ++i)
      sb[i] = static_cast<std::uint8_t>(i * 31 + me);
    for (int it = 0; it < kIters; ++it) {
      comm.sendrecv(sbuf, kLen, other, it, rbuf, kLen, other, it);
      auto rb = env.space().host_span(rbuf, kLen);
      for (std::uint64_t i = 0; i < kLen; i += 499)
        ASSERT_EQ(rb[i], static_cast<std::uint8_t>(i * 31 + other));
    }
    recoveries[static_cast<std::size_t>(me)] = comm.stats().recoveries;
  });
  EXPECT_EQ(cluster.fault()->stats().qp_errors_fired, 1u);
  EXPECT_GT(recoveries[0] + recoveries[1], 0u);  // and the run completed
}

// A fatally lost one-sided write (retry budget exhausted) must place no
// bytes and record no monitor event: the ring replays the same record at
// the same offset after recovery, so a half-applied write would corrupt
// framing.
TEST(Reliability, FatalWriteLeavesMonitorAndMemoryUntouched) {
  FaultPlan plan = lossy_link_plan(1.0);  // total loss: every retry dies
  FaultedPair t(std::move(plan));
  hca::QpAttrs attrs;
  attrs.retry_cnt = 1;
  attrs.retransmit_timeout = us(10);
  t.qa->set_attrs(attrs);
  t.fill_payload(4096);

  hca::WriteMonitor mon;
  t.b.set_write_monitor(t.rb->lkey, &mon);
  auto dst = t.as_b.host_span(t.mb->va_base, 4096);
  std::fill(dst.begin(), dst.end(), static_cast<std::uint8_t>(0xee));

  hca::SendWr wr;
  wr.wr_id = 91;
  wr.opcode = hca::Opcode::RdmaWrite;
  wr.sges = {{t.ma->va_base, 4096, t.ra->lkey}};
  wr.remote_addr = t.mb->va_base;
  wr.rkey = t.rb->lkey;
  t.qa->post_send(wr, 0);

  const auto cqe = t.a_scq.poll(ms(100));
  ASSERT_TRUE(cqe.has_value());
  EXPECT_EQ(cqe->wr_id, 91u);
  EXPECT_EQ(cqe->status, hca::WcStatus::RetryExceeded);
  EXPECT_FALSE(mon.next_visible().has_value()) << "no event for a dead write";
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_EQ(dst[i], 0xee) << "no bytes placed for a dead write";
}

// ---------------------------------------------------------------------------
// rdma-eager (one-sided ring channel) x fault crossings

// Small messages ride the one-sided ring over a lossy link in both
// directions. Dropped RDMA writes must be retransmitted by the RC layer
// and the ring's credit accounting must survive the replays: every
// payload arrives intact, in order, and the run terminates (a lost or
// double-counted credit would wedge the sender at the credit wall).
TEST(MpiFault, RdmaEagerLossyRingRetransmitsAndKeepsCredit) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.fault = fault::parse_fault_plan("drop=0-1:0.03;drop=1-0:0.03");
  core::Cluster cluster(cfg);

  constexpr int kIters = 120;
  constexpr std::uint64_t kLen = 768;  // below eager_threshold: rides ring
  std::vector<mpi::CommStats> st(2);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.rdma_eager = true;
    mc.ring.slab_bytes = 8 * kKiB;  // wraps many times under replay
    mc.ring.max_record = 1024;
    mpi::Comm comm(env, mc);
    const int me = comm.rank();
    const int other = 1 - me;
    const VirtAddr sbuf = env.alloc(kLen);
    const VirtAddr rbuf = env.alloc(kLen);
    for (int it = 0; it < kIters; ++it) {
      auto sb = env.space().host_span(sbuf, kLen);
      for (std::uint64_t i = 0; i < kLen; ++i)
        sb[i] = static_cast<std::uint8_t>(i * 17 + it + me);
      comm.sendrecv(sbuf, kLen, other, it, rbuf, kLen, other, it);
      auto rb = env.space().host_span(rbuf, kLen);
      for (std::uint64_t i = 0; i < kLen; ++i)
        ASSERT_EQ(rb[i], static_cast<std::uint8_t>(i * 17 + it + other))
            << "iter " << it << " byte " << i;
    }
    comm.barrier();
    st[static_cast<std::size_t>(me)] = comm.stats();
  });
  EXPECT_GT(cluster.fault()->stats().packets_dropped, 0u);
  EXPECT_GT(st[0].retransmits + st[1].retransmits, 0u);
  for (int r = 0; r < 2; ++r) {
    EXPECT_GT(st[static_cast<std::size_t>(r)].rdma_eager_sent, 100u)
        << "rank " << r << ": traffic must actually ride the ring";
    EXPECT_GT(st[static_cast<std::size_t>(r)].rdma_credit_returns, 0u)
        << "rank " << r << ": credit flow survived the loss";
  }
}

// Corrupted (ICRC-failed) one-sided writes behave like drops: the ring
// payload is only made visible by the retransmitted copy, so receivers
// never parse a mangled record and framing stays consistent.
TEST(MpiFault, RdmaEagerCorruptedWritesReplayCleanly) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.fault = fault::parse_fault_plan("corrupt=*-*:0.03");
  core::Cluster cluster(cfg);

  constexpr int kIters = 80;
  constexpr std::uint64_t kLen = 1024;
  std::vector<mpi::CommStats> st(2);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.rdma_eager = true;
    mpi::Comm comm(env, mc);
    const int me = comm.rank();
    const int other = 1 - me;
    const VirtAddr sbuf = env.alloc(kLen);
    const VirtAddr rbuf = env.alloc(kLen);
    for (int it = 0; it < kIters; ++it) {
      auto sb = env.space().host_span(sbuf, kLen);
      for (std::uint64_t i = 0; i < kLen; ++i)
        sb[i] = static_cast<std::uint8_t>(i * 29 + it * 3 + me);
      comm.sendrecv(sbuf, kLen, other, it, rbuf, kLen, other, it);
      auto rb = env.space().host_span(rbuf, kLen);
      for (std::uint64_t i = 0; i < kLen; ++i)
        ASSERT_EQ(rb[i], static_cast<std::uint8_t>(i * 29 + it * 3 + other))
            << "iter " << it << " byte " << i;
    }
    comm.barrier();
    st[static_cast<std::size_t>(me)] = comm.stats();
  });
  EXPECT_GT(cluster.fault()->stats().packets_corrupted, 0u);
  EXPECT_GT(st[0].retransmits + st[1].retransmits, 0u);
  EXPECT_GT(st[0].rdma_eager_sent + st[1].rdma_eager_sent, 100u);
}

// The RPC response ring under a lossy server->client link: responses are
// RDMA-written into the client's ring, dropped writes replay, and every
// request still completes with the right payload while the ring tier
// stays engaged.
TEST(MpiFault, RpcResponseRingSurvivesLossyLink) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.fault = fault::parse_fault_plan("drop=0-1:0.02");
  core::Cluster cluster(cfg);

  rpc::RpcConfig rc;
  rc.rdma_response = true;
  rpc::ServerStats ss;
  rpc::ClientStats cs;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env);
    if (env.rank() == 0) {
      rpc::RpcServer server(comm, {1}, rc);
      server.serve();
      ss = server.stats();
      return;
    }
    rpc::RpcClient client(comm, 0, rc);
    std::vector<std::uint8_t> msg = {7, 6, 5, 4, 3, 2, 1};
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 48; ++i) ids.push_back(client.submit(msg));
    for (std::uint64_t id : ids) {
      const rpc::Completion& done = client.wait(id);
      ASSERT_EQ(done.status, rpc::Status::Ok);
      ASSERT_EQ(done.payload, msg);
    }
    client.close();
    cs = client.stats();
  });
  EXPECT_GT(cluster.fault()->stats().packets_dropped, 0u);
  EXPECT_GT(ss.ring_responses, 0u);
  EXPECT_EQ(cs.completed, 48u);
  EXPECT_GT(cs.ring_completions, 0u);
}

}  // namespace
}  // namespace ibp
