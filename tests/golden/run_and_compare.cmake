# Runs a bench with --short --json=<tmp> and byte-compares the JSON
# against a checked-in golden file. Used by the rpc_loadgen_t1_golden
# test to pin the T=1 / single-track output: the threading refactor must
# keep legacy single-threaded runs bit-identical.
#
# Arguments (via -D):
#   BIN     — bench executable
#   GOLDEN  — checked-in golden JSON
#   OUT     — scratch path for the run's JSON

execute_process(
  COMMAND ${BIN} --short --json=${OUT}
  RESULT_VARIABLE rc
  OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BIN} exited with ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "${OUT} differs from golden ${GOLDEN}: the single-track output "
          "is no longer byte-identical")
endif()
