// Typed (non-contiguous) transfers, waitany and the new collectives.

#include <gtest/gtest.h>

#include "ibp/mpi/comm.hpp"

namespace ibp::mpi {
namespace {

core::ClusterConfig topo(int nodes, int rpn) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = rpn;
  return cfg;
}

TEST(Datatype, Geometry) {
  const Datatype v = Datatype::vector(4, 16, 64);
  EXPECT_EQ(v.size(), 64u);
  EXPECT_EQ(v.extent(), 3 * 64 + 16u);
  EXPECT_FALSE(v.is_contiguous());
  const Datatype c = Datatype::contiguous(100);
  EXPECT_TRUE(c.is_contiguous());
  EXPECT_EQ(c.size(), 100u);
  EXPECT_EQ(c.extent(), 100u);
  EXPECT_THROW(Datatype::vector(2, 64, 32), SimError);  // overlap
}

TEST(Datatype, SegmentsMatchLayout) {
  const auto segs = Comm::type_segments(0x1000, Datatype::vector(3, 8, 32));
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].addr, 0x1000u);
  EXPECT_EQ(segs[1].addr, 0x1020u);
  EXPECT_EQ(segs[2].addr, 0x1040u);
  for (const auto& s : segs) EXPECT_EQ(s.len, 8u);
}

class TypedTransfer : public ::testing::TestWithParam<bool> {};  // sge_gather

TEST_P(TypedTransfer, MatrixColumnExchange) {
  // Send a column of a row-major matrix (classic strided datatype).
  core::Cluster cluster(topo(2, 1));
  CommConfig ccfg;
  ccfg.sge_gather = GetParam();
  constexpr std::uint64_t kRows = 32, kCols = 24;
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env, ccfg);
    const VirtAddr mat = env.alloc(kRows * kCols * 8);
    auto* m = env.host_ptr<double>(mat, kRows * kCols);
    const Datatype col = Datatype::vector(kRows, 8, kCols * 8);
    if (env.rank() == 0) {
      for (std::uint64_t r = 0; r < kRows; ++r)
        for (std::uint64_t c = 0; c < kCols; ++c)
          m[r * kCols + c] = static_cast<double>(r * 1000 + c);
      // Ship column 5.
      comm.send_typed(mat + 5 * 8, col, 1, 7);
    } else {
      for (std::uint64_t i = 0; i < kRows * kCols; ++i) m[i] = -1.0;
      // Land it in column 2.
      comm.recv_typed(mat + 2 * 8, col, 0, 7);
      for (std::uint64_t r = 0; r < kRows; ++r) {
        ASSERT_DOUBLE_EQ(m[r * kCols + 2], static_cast<double>(r * 1000 + 5));
        ASSERT_DOUBLE_EQ(m[r * kCols + 3], -1.0) << "neighbour clobbered";
      }
    }
  });
}

TEST_P(TypedTransfer, LargeTypedFallsBackToPack) {
  // Beyond the eager band the typed path must still deliver (pack route).
  core::Cluster cluster(topo(2, 1));
  CommConfig ccfg;
  ccfg.sge_gather = GetParam();
  const Datatype big = Datatype::vector(64, 2 * kKiB, 4 * kKiB);  // 128 KB
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env, ccfg);
    const VirtAddr buf = env.alloc(big.extent());
    if (env.rank() == 0) {
      auto s = env.space().host_span(buf, big.extent());
      for (std::uint64_t i = 0; i < s.size(); ++i)
        s[i] = static_cast<std::uint8_t>(i * 3);
      comm.send_typed(buf, big, 1, 1);
    } else {
      const RecvStatus st = comm.recv_typed(buf, big, 0, 1);
      EXPECT_EQ(st.len, big.size());
      // Block 10, byte 100 corresponds to source offset 10*4K+100.
      auto s = env.space().host_span(buf + 10 * 4 * kKiB + 100, 1);
      EXPECT_EQ(s[0], static_cast<std::uint8_t>((10 * 4 * kKiB + 100) * 3));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(GatherModes, TypedTransfer, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "sge" : "pack";
                         });

TEST(Waitany, ReturnsFirstCompleted) {
  core::Cluster cluster(topo(2, 1));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(1 * kMiB);
    if (env.rank() == 0) {
      env.sim().advance(us(500));
      comm.send(buf, 256, 1, 2);  // the small one goes out second but
      env.sim().advance(us(500));
      comm.send(buf, 512 * kKiB, 1, 1);  // ...the big one finishes later
    } else {
      std::vector<Req> rs{comm.irecv(buf, 512 * kKiB, 0, 1),
                          comm.irecv(buf + 600 * kKiB, 256, 0, 2)};
      const std::size_t first = comm.waitany(rs);
      EXPECT_EQ(first, 1u) << "small message must complete first";
      comm.wait(rs[0]);
    }
  });
}

TEST(ScatterGatherv, RoundTrip) {
  core::Cluster cluster(topo(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const int n = comm.size();
    const int me = env.rank();
    constexpr std::uint64_t kLen = 3000;
    const VirtAddr root_buf = env.alloc(kLen * 4);
    const VirtAddr mine = env.alloc(kLen);

    if (me == 0) {
      auto s = env.space().host_span(root_buf, kLen * 4);
      for (std::uint64_t i = 0; i < s.size(); ++i)
        s[i] = static_cast<std::uint8_t>(i / kLen + 10);
    }
    comm.scatter(root_buf, kLen, mine, 0);
    auto mine_s = env.space().host_span(mine, kLen);
    EXPECT_EQ(mine_s[0], me + 10);
    EXPECT_EQ(mine_s[kLen - 1], me + 10);

    // gatherv with per-rank counts (rank r returns r+1 bytes).
    std::vector<std::uint64_t> counts(n), displs(n);
    std::uint64_t off = 0;
    for (int p = 0; p < n; ++p) {
      counts[p] = static_cast<std::uint64_t>(p) + 1;
      displs[p] = off;
      off += counts[p];
    }
    const VirtAddr gbuf = env.alloc(64);
    comm.gatherv(mine, counts[me], gbuf, counts, displs, 0);
    if (me == 0) {
      auto g = env.space().host_span(gbuf, off);
      // Rank p contributed p+1 bytes of value p+10.
      EXPECT_EQ(g[0], 10);   // rank 0
      EXPECT_EQ(g[1], 11);   // rank 1 (2 bytes)
      EXPECT_EQ(g[2], 11);
      EXPECT_EQ(g[3], 12);   // rank 2 (3 bytes)
      EXPECT_EQ(g[6], 13);   // rank 3 (4 bytes)
    }
  });
}

}  // namespace
}  // namespace ibp::mpi

namespace ibp::mpi {
namespace {

TEST(ReduceScatterScan, ReduceScatterSplitsTheSum) {
  core::Cluster cluster(topo(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const int n = comm.size();
    constexpr std::uint64_t kPer = 33;
    const std::uint64_t total = kPer * static_cast<std::uint64_t>(n);
    const VirtAddr in = env.alloc(total * 8);
    const VirtAddr out = env.alloc(kPer * 8 + 64);
    auto* p = env.host_ptr<double>(in, total);
    for (std::uint64_t i = 0; i < total; ++i)
      p[i] = static_cast<double>(env.rank() + 1);
    comm.reduce_scatter<double>(in, out, kPer, ReduceOp::Sum);
    auto* q = env.host_ptr<double>(out, kPer);
    for (std::uint64_t i = 0; i < kPer; ++i)
      ASSERT_DOUBLE_EQ(q[i], 1 + 2 + 3 + 4);
  });
}

TEST(ReduceScatterScan, InclusiveScan) {
  core::Cluster cluster(topo(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr in = env.alloc(64);
    const VirtAddr out = env.alloc(64);
    *env.host_ptr<std::uint64_t>(in) =
        static_cast<std::uint64_t>(env.rank()) + 1;
    comm.scan<std::uint64_t>(in, out, 1, ReduceOp::Sum);
    // Rank r gets 1 + 2 + ... + (r+1).
    const std::uint64_t r = static_cast<std::uint64_t>(env.rank());
    EXPECT_EQ(*env.host_ptr<std::uint64_t>(out), (r + 1) * (r + 2) / 2);
  });
}

TEST(ReduceScatterScan, ScanMax) {
  core::Cluster cluster(topo(2, 1));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr in = env.alloc(64);
    const VirtAddr out = env.alloc(64);
    *env.host_ptr<double>(in) = env.rank() == 0 ? 9.0 : 3.0;
    comm.scan<double>(in, out, 1, ReduceOp::Max);
    EXPECT_DOUBLE_EQ(*env.host_ptr<double>(out), 9.0);
  });
}

}  // namespace
}  // namespace ibp::mpi
