#include "ibp/workloads/nas.hpp"

#include <gtest/gtest.h>

#include "ibp/workloads/imb.hpp"

namespace ibp::workloads {
namespace {

core::ClusterConfig paper_cluster(bool hugepages) {
  core::ClusterConfig cfg;  // 2 nodes x 4 ranks, Opteron — the §5.2 setup
  cfg.hugepage_library = hugepages;
  return cfg;
}

class NasKernels : public ::testing::TestWithParam<const char*> {};

TEST_P(NasKernels, VerifiesOnSmallPages) {
  core::Cluster cluster(paper_cluster(false));
  const NasResult r = run_nas(GetParam(), cluster);
  EXPECT_TRUE(r.verified) << r.name;
  EXPECT_GT(r.total, 0u);
  EXPECT_GT(r.comm_avg, 0u);
  EXPECT_LT(r.comm_avg, r.total);
}

TEST_P(NasKernels, VerifiesOnHugePages) {
  core::Cluster cluster(paper_cluster(true));
  const NasResult r = run_nas(GetParam(), cluster);
  EXPECT_TRUE(r.verified) << r.name;
}

TEST_P(NasKernels, PlacementDoesNotChangeNumericalResult) {
  core::Cluster small(paper_cluster(false));
  core::Cluster huge(paper_cluster(true));
  const NasResult a = run_nas(GetParam(), small);
  const NasResult b = run_nas(GetParam(), huge);
  EXPECT_DOUBLE_EQ(a.figure_of_merit, b.figure_of_merit) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NasKernels,
                         ::testing::Values("cg", "ep", "is", "lu", "mg",
                                           "ft"));

TEST(Imb, SendRecvBandwidthGrowsWithMessageSize) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  ImbConfig icfg;
  icfg.sizes = {4 * kKiB, 64 * kKiB, 1 * kMiB, 8 * kMiB};
  icfg.iterations = 5;
  const auto pts = run_sendrecv(cluster, icfg);
  ASSERT_EQ(pts.size(), 4u);
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_GT(pts[i].mbytes_per_sec, pts[i - 1].mbytes_per_sec);
  // Large-message bandwidth should approach (but not exceed) 2x link rate.
  EXPECT_GT(pts.back().mbytes_per_sec, 1000.0);
  EXPECT_LT(pts.back().mbytes_per_sec, 2000.0);
}

}  // namespace
}  // namespace ibp::workloads
