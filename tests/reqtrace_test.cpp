#include "ibp/telemetry/reqtrace.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ibp/core/cluster.hpp"
#include "ibp/fabric/fabric.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/rpc/rpc.hpp"
#include "ibp/sim/tracer.hpp"

namespace ibp::telemetry {
namespace {

core::ClusterConfig traced_cluster(int nodes) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = 1;
  cfg.request_trace.enabled = true;
  return cfg;
}

/// Closed-loop rpc run against a T-worker server; returns the generator
/// result, leaving the cluster (and its hub) alive in `cluster`.
loadgen::GenResult run_rpc_closed(core::Cluster& cluster,
                                  std::uint32_t server_workers,
                                  std::uint32_t gen_workers,
                                  std::uint64_t requests,
                                  std::uint64_t warmup) {
  loadgen::GenResult gen;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    rpc::RpcConfig rc;
    rc.max_payload = 256;
    rc.server_workers = server_workers;
    if (env.rank() == 0) {
      rpc::RpcServer server(comm, {1}, rc);
      server.serve();
      return;
    }
    rpc::RpcClient client(comm, 0, rc);
    loadgen::Workload w;
    w.request_bytes = 128;
    loadgen::ClosedLoopConfig cc;
    cc.workers = gen_workers;
    cc.requests = requests;
    cc.warmup = warmup;
    cc.seed = 11;
    gen = loadgen::run_closed_loop(client, w, cc);
    client.close();
  });
  return gen;
}

/// Closed-loop striped bulk traffic against `servers` fabric ranks.
loadgen::GenResult run_fabric_closed(core::Cluster& cluster, int servers,
                                     std::uint64_t requests) {
  loadgen::GenResult gen;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    fabric::FabricConfig fc;
    fc.stripe_width = static_cast<std::uint32_t>(servers);
    if (env.rank() != 0) {
      fabric::FabricServer server(comm, {0}, fc);
      server.serve();
      return;
    }
    std::vector<int> ranks;
    for (int s = 1; s <= servers; ++s) ranks.push_back(s);
    fabric::FabricClient client(comm, ranks, fc);
    loadgen::Workload w;
    w.request_bytes = 64;
    w.tenants = 4;
    w.bulk_fraction = 1.0;
    w.bulk_response_bytes = 64 * kKiB;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 4;
    cc.requests = requests;
    cc.warmup = requests / 4;
    cc.seed = 13;
    gen = loadgen::run_closed_loop(client, w, cc);
    client.close();
  });
  return gen;
}

// The tiling invariant: each exemplar's stage durations sum exactly to
// its end-to-end latency — queueing vs service vs transfer attribution
// never loses or double-counts a picosecond.
TEST(RequestTrace, RpcStageSpansTileLatencyExactly) {
  core::Cluster cluster(traced_cluster(2));
  const std::uint64_t requests = 600;
  const loadgen::GenResult gen =
      run_rpc_closed(cluster, 4, 8, requests, requests / 4);
  RequestTracer* hub = cluster.request_tracer();
  ASSERT_NE(hub, nullptr);
  // Warmup is muted: only steady-state requests enter the population.
  EXPECT_EQ(hub->finished(), requests);
  EXPECT_EQ(hub->live(), 0u);
  EXPECT_EQ(gen.ok + gen.shed + gen.rejected, requests);

  ASSERT_GT(hub->exemplar_count(), 0u);
  for (const auto& [trace, rec] : hub->exemplars()) {
    TimePs sum = 0;
    TimePs cursor = rec.t0;
    for (const SpanRec& s : rec.spans) {
      EXPECT_EQ(s.start, cursor) << "gap in trace " << trace;
      sum += s.end - s.start;
      cursor = s.end;
    }
    EXPECT_EQ(sum, rec.latency()) << "trace " << trace;
    EXPECT_EQ(cursor, rec.t_end) << "trace " << trace;
  }
  // Every steady-state request passed through the client queue; only
  // accepted ones were served.
  EXPECT_EQ(hub->stage_hist(Stage::ClientQueue).count(), requests);
  EXPECT_EQ(hub->stage_hist(Stage::Service).count(), gen.ok);
  EXPECT_EQ(hub->e2e_hist().count(), requests);
}

// The acceptance bound: on a 4-server T=4 closed-loop run the per-stage
// breakdown (sum over stages of count x mean) matches the end-to-end
// total within 12.5 %. The tiling is exact in ps, so the only slack is
// ps -> ns truncation when folding into the histograms.
TEST(RequestTrace, FabricBreakdownSumsToEndToEnd) {
  core::Cluster cluster(traced_cluster(5));
  const loadgen::GenResult gen = run_fabric_closed(cluster, 4, 120);
  RequestTracer* hub = cluster.request_tracer();
  ASSERT_NE(hub, nullptr);
  EXPECT_GT(gen.ok, 0u);
  // Striped traffic produced fabric-level parents with rpc children.
  EXPECT_GT(hub->stage_hist(Stage::StripeWait).count(), 0u);
  EXPECT_GT(hub->stage_hist(Stage::Fanout).count(), 0u);

  double stage_total = 0.0;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const LogHistogram& h = hub->stage_hist(static_cast<Stage>(i));
    stage_total += static_cast<double>(h.count()) * h.stats().mean();
  }
  const double e2e_total = static_cast<double>(hub->e2e_hist().count()) *
                           hub->e2e_hist().stats().mean();
  ASSERT_GT(e2e_total, 0.0);
  EXPECT_NEAR(stage_total / e2e_total, 1.0, 0.125);

  // Parent records reference their stripe segments, and every child
  // tiles its own latency too.
  bool saw_parent = false;
  for (const auto& [trace, rec] : hub->exemplars()) {
    if (!rec.children.empty()) saw_parent = true;
    TimePs sum = 0;
    for (const SpanRec& s : rec.spans) sum += s.end - s.start;
    EXPECT_EQ(sum, rec.latency()) << "trace " << trace;
  }
  EXPECT_TRUE(saw_parent) << "no striped parent survived tail sampling";
}

// Exemplar memory is a fixed ring: no matter how many requests finish,
// at most slowest_k + error_ring full records are retained.
TEST(RequestTrace, ExemplarMemoryBounded) {
  core::ClusterConfig cfg = traced_cluster(2);
  cfg.request_trace.slowest_k = 4;
  cfg.request_trace.error_ring = 2;
  core::Cluster cluster(cfg);
  const std::uint64_t requests = 800;
  (void)run_rpc_closed(cluster, 2, 8, requests, 0);
  RequestTracer* hub = cluster.request_tracer();
  ASSERT_NE(hub, nullptr);
  EXPECT_EQ(hub->finished(), requests);
  EXPECT_LE(hub->exemplar_count(), 4u + 2u);
  std::size_t slowest = 0;
  for (const auto& [trace, rec] : hub->exemplars())
    slowest += rec.in_slowest ? 1 : 0;
  EXPECT_EQ(slowest, 4u);
}

// Bit-inertness: tracing must not move a single event in virtual time.
// The same workload with the hub on and off produces the same request
// interleaving (trace hash), the same span, and the same makespan.
TEST(RequestTrace, TracingIsTimingInert) {
  loadgen::GenResult gen[2];
  TimePs makespan[2];
  for (int traced = 0; traced < 2; ++traced) {
    core::ClusterConfig cfg = traced_cluster(2);
    cfg.request_trace.enabled = traced != 0;
    core::Cluster cluster(cfg);
    gen[traced] = run_rpc_closed(cluster, 4, 8, 400, 100);
    makespan[traced] = cluster.makespan();
    EXPECT_EQ(cluster.request_tracer() != nullptr, traced != 0);
  }
  EXPECT_EQ(gen[0].trace_hash, gen[1].trace_hash);
  EXPECT_EQ(gen[0].span, gen[1].span);
  EXPECT_EQ(makespan[0], makespan[1]);
}

// The JSONL stream is byte-reproducible across identical runs.
TEST(RequestTrace, JsonlStreamIsDeterministic) {
  auto run_once = [] {
    core::Cluster cluster(traced_cluster(2));
    (void)run_rpc_closed(cluster, 4, 8, 300, 75);
    std::ostringstream os;
    cluster.request_tracer()->write_jsonl(os);
    return os.str();
  };
  const std::string first = run_once();
  EXPECT_NE(first.find("\"type\": \"meta\""), std::string::npos);
  EXPECT_NE(first.find("\"type\": \"request\""), std::string::npos);
  EXPECT_NE(first.find("\"type\": \"stages\""), std::string::npos);
  EXPECT_EQ(first, run_once());
}

// SLO burn counters: with an impossible latency target every steady-state
// completion burns one unit for its (tenant, class).
TEST(RequestTrace, SloBurnCountersFire) {
  core::ClusterConfig cfg = traced_cluster(2);
  cfg.request_trace.slo_latency = 1;  // 1 ps: everything misses
  cfg.request_trace.slo_bulk = 1;
  core::Cluster cluster(cfg);
  const std::uint64_t requests = 200;
  (void)run_rpc_closed(cluster, 2, 4, requests, 0);
  double burned = 0.0;
  const MetricsSnapshot snap = cluster.metrics().snapshot();
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const std::string name(snap.name(i));
    if (name.rfind("rpc.slo.", 0) == 0) burned += snap.value(i);
  }
  EXPECT_DOUBLE_EQ(burned, static_cast<double>(requests));
}

// Satellite: the renamed contention metric and its compatibility alias
// resolve to one counter after a real SharedLocked multi-worker run.
TEST(RequestTrace, ContentionMetricAliasResolvesToOneCounter) {
  core::Cluster cluster(traced_cluster(2));
  (void)run_rpc_closed(cluster, 4, 8, 400, 100);
  const double canonical =
      cluster.metrics().value("hca.cq_poll_contention_ps");
  EXPECT_GT(canonical, 0.0) << "SharedLocked T=4 produced no contention";
  EXPECT_DOUBLE_EQ(cluster.metrics().value("hca.cq_poll_contention"),
                   canonical);
  // The snapshot lists the canonical name once; the alias adds no row.
  const MetricsSnapshot snap = cluster.metrics().snapshot();
  std::size_t rows = 0;
  for (std::size_t i = 0; i < snap.size(); ++i)
    if (std::string(snap.name(i)).rfind("hca.cq_poll_contention", 0) == 0)
      ++rows;
  EXPECT_EQ(rows, 1u);
}

// The hub's quantile probes surface stage and end-to-end percentiles in
// the pull-metrics plane.
TEST(RequestTrace, LatencyQuantileProbesAreLive) {
  core::Cluster cluster(traced_cluster(2));
  (void)run_rpc_closed(cluster, 2, 4, 300, 0);
  EXPECT_GT(cluster.metrics().value("rpc.latency.p99_us"), 0.0);
  EXPECT_GE(cluster.metrics().value("rpc.latency.p99_us"),
            cluster.metrics().value("rpc.latency.p50_us"));
  EXPECT_GT(cluster.metrics().value("rpc.stage.service.p50_us"), 0.0);
  EXPECT_GT(cluster.metrics().value("rpc.trace.finished"), 0.0);
}

// Satellite: the flow-event pairing guarantee ("s"/"f" exactly once per
// flow id, retransmissions included) extends across the fabric stripe
// path, and the hub's Chrome async spans pair "b"/"e" one-to-one.
TEST(RequestTrace, FlowAndAsyncEventsPairAcrossFaultedStripes) {
  core::ClusterConfig cfg = traced_cluster(3);
  cfg.telemetry.enabled = true;
  cfg.fault = fault::parse_fault_plan("drop=*-*:0.02;seed=5");
  core::Cluster cluster(cfg);
  (void)run_fabric_closed(cluster, 2, 64);
  std::uint64_t retransmits = 0;
  for (int n = 0; n < cluster.nodes(); ++n)
    retransmits += cluster.node(n).adapter.stats().retransmits;
  EXPECT_GT(retransmits, 0u) << "fault plan exercised no retransmissions";

  std::map<std::uint64_t, int> opens, closes;
  std::map<std::pair<std::uint64_t, std::string>, int> abegin, aend;
  for (const auto& e : cluster.tracer()->events()) {
    switch (e.kind) {
      case sim::Tracer::Kind::FlowStart: ++opens[e.flow_id]; break;
      case sim::Tracer::Kind::FlowEnd: ++closes[e.flow_id]; break;
      case sim::Tracer::Kind::AsyncBegin:
        ++abegin[{e.flow_id, e.name}];
        break;
      case sim::Tracer::Kind::AsyncEnd:
        ++aend[{e.flow_id, e.name}];
        break;
      default: break;
    }
  }
  EXPECT_GT(opens.size(), 0u);
  EXPECT_EQ(opens.size(), closes.size());
  for (const auto& [id, n] : opens) {
    EXPECT_EQ(n, 1) << "flow " << id << " opened " << n << " times";
    EXPECT_EQ(closes[id], 1) << "flow " << id;
  }
  EXPECT_GT(abegin.size(), 0u) << "no async request spans emitted";
  EXPECT_EQ(abegin, aend);
}

}  // namespace
}  // namespace ibp::telemetry
