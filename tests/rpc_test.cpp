#include "ibp/rpc/rpc.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ibp/core/cluster.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/loadgen/loadgen.hpp"
#include "ibp/mpi/comm.hpp"

namespace ibp::rpc {
namespace {

/// Two ranks on two nodes: rank 0 serves, rank 1 runs `client_fn`.
void with_rpc(const RpcConfig& rc,
              const std::function<void(RpcClient&)>& client_fn,
              ServerStats* server_out = nullptr, Handler handler = {}) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    if (env.rank() == 0) {
      RpcServer server(comm, {1}, rc, handler);
      server.serve();
      if (server_out != nullptr) *server_out = server.stats();
      return;
    }
    RpcClient client(comm, 0, rc);
    client_fn(client);
    client.close();
  });
}

std::vector<std::uint8_t> bytes(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int x : v) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

TEST(Rpc, EchoRoundtrip) {
  with_rpc({}, [](RpcClient& c) {
    const auto msg = bytes({1, 2, 3, 4, 5});
    const std::uint64_t id = c.submit(msg);
    ASSERT_NE(id, 0u);
    const Completion& done = c.wait(id);
    EXPECT_EQ(done.status, Status::Ok);
    EXPECT_EQ(done.payload, msg);
    EXPECT_GT(done.latency, 0);
  });
}

TEST(Rpc, BatchingCoalescesRequestsIntoFewWrs) {
  RpcConfig rc;
  rc.max_batch_requests = 16;
  ClientStats stats;
  with_rpc(rc, [&](RpcClient& c) {
    const auto msg = bytes({7});
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 48; ++i) ids.push_back(c.submit(msg));
    for (std::uint64_t id : ids) c.wait(id);
    stats = c.stats();
  });
  EXPECT_EQ(stats.batched_requests, 48u);
  EXPECT_LE(stats.batches, 6u) << "48 queued requests should ride few WRs";
}

TEST(Rpc, UnbatchedSendsOneRequestPerWr) {
  RpcConfig rc;
  rc.batching = false;
  ClientStats stats;
  with_rpc(rc, [&](RpcClient& c) {
    const auto msg = bytes({7});
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 16; ++i) ids.push_back(c.submit(msg));
    for (std::uint64_t id : ids) c.wait(id);
    stats = c.stats();
  });
  EXPECT_EQ(stats.batches, 16u);
}

TEST(Rpc, CreditsBoundInflightRequests) {
  RpcConfig rc;
  rc.credits = 8;
  rc.client_queue_cap = 128;
  rc.service_base = us(20);  // slow server: the burst outruns credits
  ClientStats stats;
  with_rpc(rc, [&](RpcClient& c) {
    const auto msg = bytes({1});
    for (int i = 0; i < 64; ++i) ASSERT_NE(c.submit(msg), 0u);
    c.drain();
    stats = c.stats();
  });
  EXPECT_GT(stats.credit_stalls, 0u)
      << "a 64-deep burst against 8 credits must stall flushes";
  EXPECT_EQ(stats.completed, 64u);
}

TEST(Rpc, AdmissionControlShedsBeyondQueueCap) {
  RpcConfig rc;
  rc.server_queue_cap = 4;
  rc.service_base = us(50);  // requests pile up faster than they drain
  ServerStats server;
  ClientStats stats;
  std::uint64_t shed_completions = 0;
  with_rpc(
      rc,
      [&](RpcClient& c) {
        const auto msg = bytes({9});
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 32; ++i) ids.push_back(c.submit(msg));
        for (std::uint64_t id : ids) {
          if (c.wait(id).status == Status::Overloaded) ++shed_completions;
        }
        stats = c.stats();
      },
      &server);
  EXPECT_GT(server.shed, 0u);
  EXPECT_EQ(server.shed, shed_completions);
  EXPECT_EQ(stats.shed, shed_completions);
  EXPECT_EQ(server.requests_in, server.accepted + server.shed);
}

TEST(Rpc, LatencyClassServedBeforeBulk) {
  RpcConfig rc;
  rc.max_batch_requests = 16;
  std::vector<Class> order;
  Handler handler = [&order](const RequestView& rq, std::uint8_t* out,
                             std::uint32_t cap) {
    order.push_back(rq.cls);
    const std::uint32_t n = std::min(rq.payload_len, cap);
    std::memcpy(out, rq.payload, n);
    return n;
  };
  with_rpc(
      rc,
      [&](RpcClient& c) {
        const auto msg = bytes({3});
        // One batch carrying bulk first; the server must still serve the
        // latency class ahead of it once the batch is queued.
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 8; ++i)
          ids.push_back(c.submit(msg, 0, Class::Bulk));
        for (int i = 0; i < 8; ++i)
          ids.push_back(c.submit(msg, 0, Class::Latency));
        for (std::uint64_t id : ids) c.wait(id);
      },
      nullptr, handler);
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], Class::Latency)
        << "position " << i << " served before all latency drained";
}

TEST(Rpc, TenantsRoundRobinWithinClass) {
  RpcConfig rc;
  rc.max_batch_requests = 16;
  std::vector<std::uint32_t> order;
  Handler handler = [&order](const RequestView& rq, std::uint8_t* out,
                             std::uint32_t cap) {
    order.push_back(rq.tenant);
    const std::uint32_t n = std::min(rq.payload_len, cap);
    std::memcpy(out, rq.payload, n);
    return n;
  };
  with_rpc(
      rc,
      [&](RpcClient& c) {
        const auto msg = bytes({3});
        std::vector<std::uint64_t> ids;
        // Tenant 0 floods; tenant 1 trickles — one arrival batch.
        for (int i = 0; i < 12; ++i)
          ids.push_back(c.submit(msg, 0, Class::Latency, 0));
        for (int i = 0; i < 4; ++i)
          ids.push_back(c.submit(msg, 0, Class::Latency, 1));
        for (std::uint64_t id : ids) c.wait(id);
      },
      nullptr, handler);
  ASSERT_EQ(order.size(), 16u);
  // While both tenants are queued the service order alternates, so the
  // trickling tenant's 4 requests all complete within the first 8 slots.
  std::uint32_t tenant1_in_first8 = 0;
  for (int i = 0; i < 8; ++i)
    if (order[static_cast<std::size_t>(i)] == 1) ++tenant1_in_first8;
  EXPECT_EQ(tenant1_in_first8, 4u)
      << "round-robin must not let the flooding tenant starve the other";
}

TEST(Rpc, LargeResponseTakesRendezvousPath) {
  ServerStats server;
  ClientStats stats;
  with_rpc(
      {},
      [&](RpcClient& c) {
        const auto msg = bytes({0x5a});
        const std::uint64_t id = c.submit(msg, 64 * 1024);
        const Completion& done = c.wait(id);
        EXPECT_EQ(done.status, Status::Ok);
        ASSERT_EQ(done.payload.size(), 64u * 1024u);
        EXPECT_EQ(done.payload[0], 0x5a);  // echo then zero padding
        EXPECT_EQ(done.payload[1], 0);
        stats = c.stats();
      },
      &server);
  EXPECT_EQ(server.large_responses, 1u);
  EXPECT_EQ(stats.large_responses, 1u);
}

TEST(Rpc, ClientQueueCapRejectsLocally) {
  RpcConfig rc;
  rc.client_queue_cap = 4;
  rc.credits = 2;
  rc.service_base = us(50);
  ClientStats stats;
  with_rpc(rc, [&](RpcClient& c) {
    const auto msg = bytes({1});
    std::uint64_t rejected = 0;
    for (int i = 0; i < 32; ++i)
      if (c.submit(msg) == 0) ++rejected;
    EXPECT_GT(rejected, 0u);
    c.drain();
    stats = c.stats();
  });
  EXPECT_EQ(stats.rejected + stats.completed, 32u);
}

TEST(Rpc, QosCreditPoolBoundsBulkWithoutStarvingIt) {
  RpcConfig rc;
  rc.bulk_credits = 2;        // per-tenant Bulk pool: two in flight
  rc.service_base = us(20);   // slow server so the burst outruns the pool
  rc.client_queue_cap = 128;
  ClientStats stats;
  std::uint64_t ok = 0;
  with_rpc(rc, [&](RpcClient& c) {
    const auto msg = bytes({4});
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 24; ++i)
      ids.push_back(c.submit(msg, 0, Class::Bulk, /*tenant=*/7));
    for (int i = 0; i < 8; ++i)
      ids.push_back(c.submit(msg, 0, Class::Latency, /*tenant=*/7));
    for (std::uint64_t id : ids) {
      if (c.wait(id).status == Status::Ok) ++ok;
    }
    stats = c.stats();
  });
  EXPECT_GT(stats.qos_stalls, 0u)
      << "24 bulk requests against a 2-deep pool must stall the flush";
  EXPECT_EQ(ok, 32u) << "QoS throttles bulk, it never starves it";
}

TEST(Rpc, ZeroQosPoolsAreBitInert) {
  // latency_credits == bulk_credits == 0 (the default) must leave the
  // wire behaviour byte-identical to the pre-QoS client.
  const auto run = [](std::uint32_t bulk_credits) {
    RpcConfig rc;
    rc.bulk_credits = bulk_credits;
    loadgen::GenResult gen;
    with_rpc(rc, [&](RpcClient& c) {
      loadgen::Workload w;
      w.request_bytes = 128;
      w.bulk_fraction = 0.5;
      w.tenants = 3;
      loadgen::ClosedLoopConfig cc;
      cc.workers = 4;
      cc.requests = 120;
      cc.seed = 9;
      gen = loadgen::run_closed_loop(c, w, cc);
    });
    return gen;
  };
  const loadgen::GenResult off = run(0);
  const loadgen::GenResult wide = run(64);  // pool wider than the burst
  EXPECT_EQ(off.trace_hash, wide.trace_hash)
      << "an unconstraining pool must not perturb timing";
  EXPECT_EQ(off.span, wide.span);
}

TEST(Rpc, TimeoutRetriesRescueAndDeduplicate) {
  RpcConfig rc;
  rc.service_base = us(40);     // responses outlive the first deadline
  rc.request_timeout = us(30);  // ... so the tail retries at least once
  rc.max_retries = 4;
  const auto run = [&] {
    ClientStats stats;
    std::uint64_t ok = 0;
    with_rpc(rc, [&](RpcClient& c) {
      // Full-slot responses: one record per response batch, so arrivals
      // spread out in virtual time and the client wakes to find later
      // requests already past their deadlines (a single coalesced batch
      // would deliver everything before a timeout could be observed).
      const std::vector<std::uint8_t> msg(rc.max_payload, 6);
      std::vector<std::uint64_t> ids;
      for (int i = 0; i < 12; ++i) ids.push_back(c.submit(msg));
      for (std::uint64_t id : ids) {
        if (c.wait(id).status == Status::Ok) ++ok;
      }
      c.drain();
      stats = c.stats();
    });
    EXPECT_EQ(ok, 12u) << "the transport never loses, so retries all land";
    return stats;
  };
  const ClientStats a = run();
  EXPECT_GT(a.retries, 0u);
  EXPECT_GT(a.duplicates, 0u)
      << "the original response still arrives and must be dropped";
  const ClientStats b = run();
  EXPECT_EQ(a.retries, b.retries) << "retry schedule must be deterministic";
  EXPECT_EQ(a.duplicates, b.duplicates);
}

TEST(Rpc, ZeroTimeoutIsBitInert) {
  const auto run = [](TimePs timeout) {
    RpcConfig rc;
    rc.request_timeout = timeout;
    loadgen::GenResult gen;
    with_rpc(rc, [&](RpcClient& c) {
      loadgen::Workload w;
      w.request_bytes = 128;
      loadgen::ClosedLoopConfig cc;
      cc.workers = 4;
      cc.requests = 120;
      cc.seed = 3;
      gen = loadgen::run_closed_loop(c, w, cc);
    });
    return gen;
  };
  const loadgen::GenResult off = run(0);
  const loadgen::GenResult armed = run(ms(100));  // far beyond any latency
  EXPECT_EQ(off.trace_hash, armed.trace_hash)
      << "a never-firing timeout must not perturb the wire schedule";
  EXPECT_EQ(off.span, armed.span);
}

TEST(Rpc, ServerCrashFailsRequestsOverTimeout) {
  // The server's node dies mid-run: requests it accepted but never served
  // are discarded silently, and the client — out of retries — must
  // complete them locally as TimedOut instead of blocking forever.
  RpcConfig rc;
  // The deadline must clear the first-touch warmup (~2 ms before the
  // first response lands); service pacing then spreads the 40 requests
  // across the crash so both sides of it are populated.
  rc.request_timeout = us(4000);
  rc.max_retries = 1;
  rc.fail_timed_out = true;
  rc.service_base = us(100);
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.fault = fault::parse_fault_plan("crash=0@4000");  // server is rank 0
  core::Cluster cluster(cfg);
  ServerStats ss;
  ClientStats cs;
  std::uint64_t ok = 0, lost = 0;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mc.recovery = mpi::CommConfig::Recovery::Repost;
    mpi::Comm comm(env, mc);
    if (env.rank() == 0) {
      RpcServer server(comm, {1}, rc);
      server.serve();
      ss = server.stats();
      return;
    }
    RpcClient client(comm, 0, rc);
    const auto msg = bytes({1, 2, 3});
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 40; ++i) ids.push_back(client.submit(msg));
    for (std::uint64_t id : ids) {
      client.wait(id).status == Status::Ok ? ++ok : ++lost;
    }
    client.drain();
    cs = client.stats();
    client.close();
  });
  EXPECT_EQ(ok + lost, 40u);
  EXPECT_GT(ok, 0u) << "requests served before the crash still complete";
  EXPECT_GT(lost, 0u) << "requests the corpse swallowed must time out";
  EXPECT_EQ(cs.timed_out, lost);
  EXPECT_GT(ss.discarded, 0u);
}

TEST(Rpc, AbandonCompletesOutstandingAsTimedOut) {
  RpcConfig rc;
  rc.request_timeout = us(500);
  rc.fail_timed_out = true;
  rc.service_base = us(50);  // slow enough that everything is in flight
  ClientStats cs;
  with_rpc(rc, [&](RpcClient& c) {
    const auto msg = bytes({9});
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 6; ++i) ids.push_back(c.submit(msg));
    c.abandon();
    for (std::uint64_t id : ids)
      EXPECT_EQ(c.wait(id).status, Status::TimedOut)
          << "abandon must fail every queued and inflight request";
    c.drain();  // forgiven records: returns without the responses
    cs = c.stats();
  });
  EXPECT_EQ(cs.timed_out, 6u);
  EXPECT_EQ(cs.completed, 6u);
}

TEST(Rpc, LateResponseAfterRetryIsDeduplicated) {
  // Service latency sits beyond the request deadline, so the client
  // retransmits while the genuine response is still on its way. The
  // original completes the id; the retry's response must then hit the
  // duplicate path instead of re-completing it.
  RpcConfig rc;
  rc.service_base = us(60);
  rc.request_timeout = us(30);
  rc.max_retries = 2;
  const auto run = [&] {
    ClientStats stats;
    std::uint64_t ok = 0;
    with_rpc(rc, [&](RpcClient& c) {
      const std::vector<std::uint8_t> msg(rc.max_payload, 6);
      std::vector<std::uint64_t> ids;
      for (int i = 0; i < 12; ++i) ids.push_back(c.submit(msg));
      for (std::uint64_t id : ids)
        if (c.wait(id).status == Status::Ok) ++ok;
      c.drain();
      stats = c.stats();
    });
    EXPECT_EQ(ok, 12u) << "the race must stay invisible to the caller";
    return stats;
  };
  const ClientStats a = run();
  EXPECT_GT(a.retries, 0u);
  EXPECT_GT(a.duplicates, 0u)
      << "the late response still arrives and must be dropped";
  EXPECT_EQ(a.timed_out, 0u);
  const ClientStats b = run();
  EXPECT_EQ(a.retries, b.retries) << "the race must be deterministic";
  EXPECT_EQ(a.duplicates, b.duplicates);
}

// ---------------------------------------------------------------------------
// Load generators

loadgen::GenResult open_loop_result(std::uint64_t seed) {
  loadgen::GenResult gen;
  with_rpc({}, [&](RpcClient& c) {
    loadgen::Workload w;
    w.request_bytes = 64;
    w.tenants = 2;
    w.bulk_fraction = 0.25;
    loadgen::OpenLoopConfig oc;
    oc.rate_rps = 400e3;
    oc.requests = 300;
    oc.warmup = 50;
    oc.seed = seed;
    gen = loadgen::run_open_loop(c, w, oc);
  });
  return gen;
}

TEST(Loadgen, OpenLoopReplayIsDeterministic) {
  const loadgen::GenResult a = open_loop_result(21);
  const loadgen::GenResult b = open_loop_result(21);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.latency_ns.p99(), b.latency_ns.p99());
}

TEST(Loadgen, DifferentSeedsDiverge) {
  const loadgen::GenResult a = open_loop_result(21);
  const loadgen::GenResult b = open_loop_result(22);
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(Loadgen, ClosedLoopCompletesEveryBudgetedRequest) {
  loadgen::GenResult gen;
  with_rpc({}, [&](RpcClient& c) {
    loadgen::Workload w;
    w.request_bytes = 128;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 4;
    cc.requests = 200;
    cc.seed = 5;
    gen = loadgen::run_closed_loop(c, w, cc);
  });
  EXPECT_EQ(gen.ok + gen.shed, 200u)
      << "closed-loop workers retry rejects until the budget completes";
}

loadgen::GenResult tracked_closed_loop_result(std::uint64_t seed) {
  loadgen::GenResult gen;
  with_rpc({}, [&](RpcClient& c) {
    loadgen::Workload w;
    w.request_bytes = 128;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 4;
    cc.requests = 200;
    cc.think = us(2);
    cc.seed = seed;
    cc.tracked_workers = true;
    gen = loadgen::run_closed_loop(c, w, cc);
  });
  return gen;
}

TEST(Loadgen, TrackedWorkersCompleteEveryBudgetedRequest) {
  const loadgen::GenResult gen = tracked_closed_loop_result(5);
  EXPECT_EQ(gen.ok + gen.shed, 200u)
      << "tracked workers retry rejects until the budget completes";
  EXPECT_GT(gen.span, 0);
}

TEST(Loadgen, TrackedWorkersReplayIsDeterministic) {
  const loadgen::GenResult a = tracked_closed_loop_result(9);
  const loadgen::GenResult b = tracked_closed_loop_result(9);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.ok, b.ok);
}

TEST(Loadgen, TrackedWorkersOverlapThinkTime) {
  // Four tracked workers with 2us think should finish well before four
  // sequentialized ones would: the overlap is real virtual-time overlap.
  const loadgen::GenResult tracked = tracked_closed_loop_result(5);
  loadgen::GenResult legacy;
  with_rpc({}, [&](RpcClient& c) {
    loadgen::Workload w;
    w.request_bytes = 128;
    loadgen::ClosedLoopConfig cc;
    cc.workers = 4;
    cc.requests = 200;
    cc.think = us(2);
    cc.seed = 5;
    legacy = loadgen::run_closed_loop(c, w, cc);
  });
  ASSERT_GT(legacy.span, 0);
  // Both model the same concurrency; tracked must be in the same
  // ballpark (not serialized: 200 requests x 2us think alone would be
  // 400us if workers ran one after another).
  EXPECT_LT(tracked.span, 2 * legacy.span)
      << "tracked workers must genuinely overlap, not serialize";
}

TEST(Loadgen, OverloadP99StaysBoundedUnderShedding) {
  const auto run = [](std::uint32_t workers) {
    RpcConfig rc;
    rc.max_payload = 256;
    rc.server_queue_cap = 8;
    loadgen::GenResult gen;
    with_rpc(rc, [&](RpcClient& c) {
      loadgen::Workload w;
      w.request_bytes = 128;
      loadgen::ClosedLoopConfig cc;
      cc.workers = workers;
      cc.requests = 400;
      cc.warmup = 100;
      cc.seed = 11;
      gen = loadgen::run_closed_loop(c, w, cc);
    });
    return gen;
  };
  const loadgen::GenResult uncont = run(2);
  const loadgen::GenResult overload = run(32);
  EXPECT_GT(overload.shed, 0u) << "16x workers must trip admission control";
  ASSERT_GT(uncont.latency_ns.p99(), 0.0);
  // Without shedding the accepted p99 would scale with the worker ratio
  // (16x); with it the queue is capped at 8, so the p99 stays within a
  // small multiple (8x allows for histogram bucket granularity — the
  // tuned bench holds the paper-style < 5x bound).
  EXPECT_LT(overload.latency_ns.p99(), 8.0 * uncont.latency_ns.p99())
      << "shedding must keep accepted-request p99 bounded";
}

// --- dispatcher-fed worker pool -------------------------------------------

struct PoolResult {
  ServerStats server;
  ClientStats client;
  TimePs makespan = 0;
  TimePs qp_contention_ps = 0;
  std::uint64_t cq_poll_contention = 0;
};

/// Rank 0 serves `requests` echo requests with a worker pool; rank 1
/// submits them in bursts of `burst` and waits each burst out.
PoolResult run_pooled(std::uint32_t workers, hca::ShareMode mode,
                      int requests = 96, TimePs service = us(4),
                      int burst = 16) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  PoolResult out;
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    RpcConfig rc;
    rc.server_workers = workers;
    rc.share_mode = mode;
    rc.service_base = service;
    if (env.rank() == 0) {
      RpcServer server(comm, {1}, rc);
      server.serve();
      out.server = server.stats();
      const hca::AdapterStats& ad = env.state().node->adapter.stats();
      out.qp_contention_ps = ad.qp_contention_ps;
      out.cq_poll_contention = ad.cq_poll_contention;
      return;
    }
    RpcClient client(comm, 0, rc);
    const std::vector<std::uint8_t> msg(64, 7);
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < requests; ++i) {
      const std::uint64_t id = client.submit(msg);
      if (id != 0) ids.push_back(id);
      if (static_cast<int>(ids.size() % burst) == 0)
        for (std::uint64_t x : ids) client.wait(x);
    }
    for (std::uint64_t x : ids) client.wait(x);
    out.client = client.stats();
    client.close();
  });
  out.makespan = cluster.makespan();
  return out;
}

TEST(RpcWorkerPool, ServesEveryRequestInAllShareModes) {
  for (hca::ShareMode mode :
       {hca::ShareMode::SharedLocked, hca::ShareMode::PerThreadQp,
        hca::ShareMode::Dispatcher}) {
    const PoolResult r = run_pooled(4, mode);
    EXPECT_EQ(r.client.completed, 96u) << share_mode_name(mode);
    EXPECT_EQ(r.server.served, 96u) << share_mode_name(mode);
    EXPECT_EQ(r.client.shed, 0u) << share_mode_name(mode);
  }
}

TEST(RpcWorkerPool, WorkersOverlapServiceTime) {
  // Service-bound workload: 4 workers overlap the 4 us service windows
  // the inline server must serialize.
  const PoolResult inline_srv =
      run_pooled(0, hca::ShareMode::SharedLocked, 96, us(4));
  const PoolResult pooled =
      run_pooled(4, hca::ShareMode::PerThreadQp, 96, us(4));
  EXPECT_LT(pooled.makespan, inline_srv.makespan)
      << "a 4-worker pool must beat inline serving on service-bound load";
}

TEST(RpcWorkerPool, SharedLockedChargesContention) {
  const PoolResult r = run_pooled(4, hca::ShareMode::SharedLocked);
  EXPECT_GT(r.qp_contention_ps, 0) << "shared QPs under 4 workers must "
                                      "pay lock/cache-bounce time";
  const PoolResult inline_srv = run_pooled(0, hca::ShareMode::SharedLocked);
  EXPECT_EQ(inline_srv.qp_contention_ps, 0)
      << "the single-track inline server must never arbitrate";
}

TEST(RpcWorkerPool, PerThreadQpAvoidsArbitration) {
  const PoolResult r = run_pooled(4, hca::ShareMode::PerThreadQp);
  EXPECT_EQ(r.qp_contention_ps, 0);
  EXPECT_EQ(r.cq_poll_contention, 0u);
}

TEST(RpcWorkerPool, DeterministicAcrossRuns) {
  const PoolResult a = run_pooled(4, hca::ShareMode::SharedLocked);
  const PoolResult b = run_pooled(4, hca::ShareMode::SharedLocked);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.qp_contention_ps, b.qp_contention_ps);
  EXPECT_EQ(a.client.completed, b.client.completed);
  EXPECT_EQ(a.server.resp_batches, b.server.resp_batches);
}

}  // namespace
}  // namespace ibp::rpc
