#include "ibp/regcache/regcache.hpp"

#include <gtest/gtest.h>

#include "ibp/core/cluster.hpp"
#include "ibp/mpi/comm.hpp"

namespace ibp::regcache {
namespace {

void with_env(bool lazy, const std::function<void(core::RankEnv&)>& fn) {
  core::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  cfg.lazy_deregistration = lazy;
  core::Cluster cluster(cfg);
  cluster.run(fn);
}

TEST(RegCache, LazyHitsOnReuse) {
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(1 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    const verbs::Mr a = rc.acquire(m.va_base, 64 * kKiB);
    rc.release(a);
    const verbs::Mr b = rc.acquire(m.va_base, 64 * kKiB);
    EXPECT_EQ(a.lkey, b.lkey);
    EXPECT_EQ(rc.stats().hits, 1u);
    EXPECT_EQ(rc.stats().misses, 1u);
  });
}

TEST(RegCache, HullCoversNeighbouringBuffers) {
  // Registering the page-aligned hull makes a nearby buffer in the same
  // pages a cache hit.
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(1 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    rc.acquire(m.va_base + 100, 1000);
    const verbs::Mr b = rc.acquire(m.va_base + 2000, 500);  // same page
    (void)b;
    EXPECT_EQ(rc.stats().hits, 1u);
  });
}

TEST(RegCache, LazyKeepsMemoryPinned) {
  // The §1 drawback the paper discusses: pinned memory accumulates.
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(4 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    const verbs::Mr a = rc.acquire(m.va_base, 1 * kMiB);
    rc.release(a);
    EXPECT_GT(env.space().pinned_pages(), 0u)
        << "lazy release must keep pages pinned";
    EXPECT_GT(rc.stats().pinned_bytes, 0u);
  });
}

TEST(RegCache, NonLazyDeregistersOnRelease) {
  with_env(false, [](core::RankEnv& env) {
    auto& m = env.space().map(1 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    const verbs::Mr a = rc.acquire(m.va_base, 1 * kMiB);
    rc.release(a);
    EXPECT_EQ(env.space().pinned_pages(), 0u);
    // Every acquire re-registers.
    rc.acquire(m.va_base, 1 * kMiB);
    EXPECT_EQ(rc.stats().misses, 2u);
    EXPECT_EQ(rc.stats().hits, 0u);
  });
}

TEST(RegCache, NonLazyCostsFullRegistrationEachTime) {
  // The fig5 mechanism: without lazy dereg every use pays registration.
  with_env(false, [](core::RankEnv& env) {
    auto& m = env.space().map(4 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    const TimePs t0 = env.now();
    const verbs::Mr a = rc.acquire(m.va_base, 4 * kMiB);
    const TimePs first = env.now() - t0;
    rc.release(a);
    const TimePs t1 = env.now();
    const verbs::Mr b = rc.acquire(m.va_base, 4 * kMiB);
    const TimePs second = env.now() - t1;
    rc.release(b);
    EXPECT_GT(second, first / 2) << "second acquire must not be cached";
  });
}

TEST(RegCache, InvalidateDropsCoveredEntries) {
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(4 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    rc.acquire(m.va_base, 1 * kMiB);
    rc.acquire(m.va_base + 2 * kMiB, 1 * kMiB);
    EXPECT_EQ(rc.entries(), 2u);
    rc.invalidate(m.va_base, 1 * kMiB);
    EXPECT_EQ(rc.entries(), 1u);
    EXPECT_EQ(rc.stats().invalidations, 1u);
    // Freed region really is unpinned again.
    rc.invalidate(m.va_base + 2 * kMiB, 1 * kMiB);
    EXPECT_EQ(env.space().pinned_pages(), 0u);
  });
}

TEST(RegCache, InvalidateIgnoresNonOverlapping) {
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(4 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    rc.acquire(m.va_base, 64 * kKiB);
    rc.invalidate(m.va_base + 2 * kMiB, 64 * kKiB);
    EXPECT_EQ(rc.entries(), 1u);
    EXPECT_EQ(rc.stats().invalidations, 0u);
  });
}

TEST(RegCache, FlushUnpinsEverything) {
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(8 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    for (int i = 0; i < 4; ++i)
      rc.acquire(m.va_base + static_cast<std::uint64_t>(i) * 2 * kMiB,
                 1 * kMiB);
    rc.flush();
    EXPECT_EQ(rc.entries(), 0u);
    EXPECT_EQ(env.space().pinned_pages(), 0u);
  });
}

TEST(RegCache, PinnedBytesPeakTracksGrowth) {
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(8 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    rc.acquire(m.va_base, 2 * kMiB);
    rc.acquire(m.va_base + 4 * kMiB, 2 * kMiB);
    EXPECT_GE(rc.stats().pinned_bytes_peak, 4 * kMiB);
  });
}

}  // namespace
}  // namespace ibp::regcache

namespace ibp::regcache {
namespace {

void with_capped_env(std::uint64_t cap,
                     const std::function<void(core::RankEnv&)>& fn) {
  core::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.ranks_per_node = 1;
  cfg.lazy_deregistration = true;
  cfg.regcache_capacity_bytes = cap;
  core::Cluster cluster(cfg);
  cluster.run(fn);
}

TEST(RegCacheCapacity, EvictsLruWhenOverBound) {
  with_capped_env(2 * kMiB, [](core::RankEnv& env) {
    auto& m = env.space().map(8 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    // Three 1 MB regions: the third acquire must evict the first.
    const verbs::Mr a = rc.acquire(m.va_base, 1 * kMiB);
    rc.release(a);
    const verbs::Mr b = rc.acquire(m.va_base + 2 * kMiB, 1 * kMiB);
    rc.release(b);
    const verbs::Mr c = rc.acquire(m.va_base + 4 * kMiB, 1 * kMiB);
    rc.release(c);
    EXPECT_EQ(rc.stats().evictions, 1u);
    EXPECT_LE(rc.stats().pinned_bytes, 2 * kMiB);
    // The evicted (oldest) region misses again; the newest still hits.
    rc.release(rc.acquire(m.va_base + 4 * kMiB, 1 * kMiB));
    EXPECT_EQ(rc.stats().hits, 1u);
    rc.release(rc.acquire(m.va_base, 1 * kMiB));
    EXPECT_EQ(rc.stats().misses, 4u);
  });
}

TEST(RegCacheCapacity, BusyEntriesAreNotEvicted) {
  with_capped_env(2 * kMiB, [](core::RankEnv& env) {
    auto& m = env.space().map(8 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    // Hold both resident entries (simulating in-flight transfers).
    const verbs::Mr a = rc.acquire(m.va_base, 1 * kMiB);
    const verbs::Mr b = rc.acquire(m.va_base + 2 * kMiB, 1 * kMiB);
    // Over-capacity acquire: nothing evictable, bound exceeded briefly.
    const verbs::Mr c = rc.acquire(m.va_base + 4 * kMiB, 1 * kMiB);
    EXPECT_EQ(rc.stats().evictions, 0u);
    EXPECT_GT(rc.stats().pinned_bytes, 2 * kMiB);
    rc.release(a);
    rc.release(b);
    rc.release(c);
    // Now the next acquire can evict.
    rc.release(rc.acquire(m.va_base + 6 * kMiB, 1 * kMiB));
    EXPECT_GT(rc.stats().evictions, 0u);
  });
}

TEST(RegCacheCapacity, UnlimitedNeverEvicts) {
  with_capped_env(0, [](core::RankEnv& env) {
    auto& m = env.space().map(16 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    for (int i = 0; i < 8; ++i)
      rc.release(rc.acquire(m.va_base + static_cast<std::uint64_t>(i) * 2 * kMiB,
                            1 * kMiB));
    EXPECT_EQ(rc.stats().evictions, 0u);
    EXPECT_EQ(rc.entries(), 8u);
  });
}

TEST(RegCacheCapacity, EndToEndTransfersUnderTightBound) {
  // Full MPI rendezvous traffic with a cache smaller than one buffer:
  // every transfer re-registers, but nothing breaks mid-flight.
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.regcache_capacity_bytes = 256 * kKiB;
  core::Cluster cluster(cfg);
  cluster.run([](core::RankEnv& env) {
    mpi::Comm comm(env);
    constexpr std::uint64_t kLen = 1 * kMiB;
    // Cycle through more distinct buffers than the cache can hold.
    VirtAddr bufs[6];
    for (auto& b : bufs) b = env.alloc(kLen);
    const int other = 1 - env.rank();
    for (int round = 0; round < 3; ++round)
      for (int i = 0; i < 3; ++i)
        comm.sendrecv(bufs[i], kLen, other, i, bufs[3 + i], kLen, other, i);
    EXPECT_GT(env.rcache().stats().evictions, 0u);
    // The bound holds once transfers drain (one in-flight pair may exceed
    // it transiently).
    EXPECT_LE(env.rcache().stats().pinned_bytes, 2 * kMiB + 256 * kKiB);
  });
}

TEST(RegCache, SameBaseWiderHullRetiresNarrowerRegistration) {
  // Two acquires whose page-aligned hulls start at the same base but span
  // a different number of pages collide on the cache key; the wider
  // registration must supersede (not orphan) the narrower one, and both
  // must unwind cleanly on invalidate.
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(1 * kMiB, mem::PageKind::Small);
    RegCache& rc = env.rcache();
    const verbs::Mr narrow = rc.acquire(m.va_base + 64, 128);   // 1 page
    const verbs::Mr wide = rc.acquire(m.va_base + 64, 8 * kKiB);  // 3 pages
    EXPECT_EQ(rc.entries(), 1u);
    EXPECT_EQ(rc.stats().misses, 2u);
    rc.release(narrow);
    rc.release(wide);
    rc.invalidate(m.va_base, m.npages() * m.page_size());
    EXPECT_EQ(rc.entries(), 0u);
    EXPECT_EQ(rc.stats().pinned_bytes, 0u);
    EXPECT_EQ(env.space().pinned_pages(), 0u)
        << "a retired registration leaked its pin";
  });
}

TEST(RegCache, ShardedCacheHitsLikeSingleShard) {
  with_env(true, [](core::RankEnv& env) {
    auto& m1 = env.space().map(1 * kMiB, mem::PageKind::Small);
    auto& m2 = env.space().map(1 * kMiB, mem::PageKind::Small);
    RegCache rc(env.verbs(), RegCache::RegStrategy::LazyCache, 0, 4);
    EXPECT_EQ(rc.shards(), 4u);
    const verbs::Mr a = rc.acquire(m1.va_base, 64 * kKiB);
    const verbs::Mr b = rc.acquire(m2.va_base, 64 * kKiB);
    rc.release(a);
    rc.release(b);
    EXPECT_EQ(rc.acquire(m1.va_base, 64 * kKiB).lkey, a.lkey);
    EXPECT_EQ(rc.acquire(m2.va_base, 64 * kKiB).lkey, b.lkey);
    EXPECT_EQ(rc.stats().hits, 2u);
    EXPECT_EQ(rc.stats().misses, 2u);
    rc.flush();
  });
}

TEST(RegCache, ShardedCapacityEvictsGlobalLru) {
  with_env(true, [](core::RankEnv& env) {
    auto& m1 = env.space().map(2 * kMiB, mem::PageKind::Small);
    auto& m2 = env.space().map(2 * kMiB, mem::PageKind::Small);
    // Capacity for two 1 MiB registrations; the third acquire must evict
    // the least-recently-used idle entry regardless of which shard it
    // lives in.
    RegCache rc(env.verbs(), RegCache::RegStrategy::LazyCache, 2 * kMiB, 4);
    rc.release(rc.acquire(m1.va_base, 1 * kMiB));
    rc.release(rc.acquire(m2.va_base, 1 * kMiB));
    rc.release(rc.acquire(m1.va_base + 1 * kMiB, 1 * kMiB));
    EXPECT_EQ(rc.stats().evictions, 1u);
    EXPECT_LE(rc.stats().pinned_bytes, 2 * kMiB);
    // The m1-base entry was oldest; re-acquiring it must miss.
    rc.release(rc.acquire(m1.va_base, 1 * kMiB));
    EXPECT_EQ(rc.stats().misses, 4u);
    rc.flush();
  });
}

TEST(RegCache, DeactivatedSwitchRetiresInFlightOnRelease) {
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(1 * kMiB, mem::PageKind::Small);
    RegCache rc(env.verbs(), RegCache::RegStrategy::LazyCache);
    const verbs::Mr held = rc.acquire(m.va_base, 64 * kKiB);
    rc.set_strategy(RegCache::RegStrategy::Deactivated);
    EXPECT_EQ(rc.entries(), 1u) << "reference-held entries survive switch";
    // Flip back to caching before the transfer finishes: the doomed
    // generation must still retire at release.
    rc.set_strategy(RegCache::RegStrategy::LazyCache);
    rc.release(held);
    EXPECT_EQ(rc.entries(), 0u)
        << "generation retirement must fire despite the flip-back";
    EXPECT_EQ(rc.stats().retirements, 1u);
    EXPECT_EQ(rc.stats().pinned_bytes, 0u);
    // New registrations after the flip-back are a fresh generation.
    const verbs::Mr fresh = rc.acquire(m.va_base, 64 * kKiB);
    rc.release(fresh);
    EXPECT_EQ(rc.entries(), 1u) << "post-switch entries must stay cached";
    rc.flush();
  });
}

TEST(RegCache, DoomedEntryIsNotAHit) {
  with_env(true, [](core::RankEnv& env) {
    auto& m = env.space().map(1 * kMiB, mem::PageKind::Small);
    RegCache rc(env.verbs(), RegCache::RegStrategy::LazyCache);
    const verbs::Mr held = rc.acquire(m.va_base, 64 * kKiB);
    rc.set_strategy(RegCache::RegStrategy::Deactivated);
    rc.set_strategy(RegCache::RegStrategy::LazyCache);
    // The held entry still covers this range but is doomed — the acquire
    // must register afresh instead of extending the doomed pin.
    const verbs::Mr b = rc.acquire(m.va_base, 4 * kKiB);
    EXPECT_EQ(rc.stats().hits, 0u);
    EXPECT_EQ(rc.stats().misses, 2u);
    rc.release(held);
    rc.release(b);
    rc.flush();
  });
}

}  // namespace
}  // namespace ibp::regcache
