// Engine stress and scheduling-invariant tests: random communication
// graphs over shared queues must stay deterministic, causally ordered,
// and deadlock-free whenever a matching event eventually appears.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <vector>

#include "ibp/common/rng.hpp"
#include "ibp/sim/engine.hpp"

namespace ibp::sim {
namespace {

struct Mailboxes {
  explicit Mailboxes(int n) : q(static_cast<std::size_t>(n)) {}
  struct Msg {
    TimePs deliver;
    int payload;
  };
  std::vector<std::deque<Msg>> q;
};

TEST(EngineStress, RandomTrafficIsDeterministicAndCausal) {
  constexpr int kRanks = 8;
  constexpr int kMsgsPerRank = 40;
  constexpr TimePs kLatency = ns(700);

  auto run_once = [] {
    Engine eng(kRanks);
    Mailboxes mail(kRanks);
    std::vector<int> received_sum(kRanks, 0);
    std::vector<std::pair<TimePs, int>> trace;

    eng.run([&](Context& ctx) {
      Rng rng(1000 + static_cast<std::uint64_t>(ctx.rank()));
      int sent = 0, got = 0;
      // Each rank alternates sends to random peers with receives until it
      // has sent and received its quota (the global message count is
      // kRanks * kMsgsPerRank each way by symmetry of the send pattern —
      // every rank sends to rank (r+1)%n a fixed number of times).
      while (sent < kMsgsPerRank || got < kMsgsPerRank) {
        if (sent < kMsgsPerRank) {
          ctx.advance(ns(rng.next_in(50, 500)));
          const int dst = (ctx.rank() + 1) % kRanks;
          mail.q[dst].push_back({ctx.now() + kLatency, sent});
          ++sent;
        }
        if (got < kMsgsPerRank) {
          auto& inbox = mail.q[ctx.rank()];
          ctx.wait_until([&inbox]() -> std::optional<TimePs> {
            if (inbox.empty()) return std::nullopt;
            return inbox.front().deliver;
          });
          const auto m = inbox.front();
          inbox.pop_front();
          EXPECT_GE(ctx.now(), m.deliver) << "delivered before its time";
          received_sum[ctx.rank()] += m.payload;
          trace.emplace_back(ctx.now(), ctx.rank());
          ++got;
        }
      }
    });

    // Causality: the observation trace is sorted by virtual time.
    for (std::size_t i = 1; i < trace.size(); ++i)
      EXPECT_LE(trace[i - 1].first, trace[i].first);
    // Every rank got messages 0..kMsgsPerRank-1 exactly once.
    const int expect = kMsgsPerRank * (kMsgsPerRank - 1) / 2;
    for (int r = 0; r < kRanks; ++r) EXPECT_EQ(received_sum[r], expect);
    return std::make_pair(trace, eng.makespan());
  };

  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first) << "nondeterministic schedule";
  EXPECT_EQ(a.second, b.second);
}

TEST(EngineStress, ManyRanksBarrierChain) {
  constexpr int kRanks = 16;
  Engine eng(kRanks);
  // Dissemination-style barrier implemented on raw shared state.
  std::vector<std::map<int, TimePs>> flags(kRanks);
  eng.run([&](Context& ctx) {
    for (int round = 0; round < 20; ++round) {
      for (int k = 1; k < kRanks; k <<= 1) {
        const int dst = (ctx.rank() + k) % kRanks;
        const int key = round * 100 + k;
        flags[dst][key] = ctx.now() + ns(300);
        auto& mine = flags[ctx.rank()];
        ctx.wait_until([&mine, key]() -> std::optional<TimePs> {
          auto it = mine.find(key);
          if (it == mine.end()) return std::nullopt;
          return it->second;
        });
      }
      ctx.advance(ns(static_cast<std::uint64_t>(ctx.rank() + 1) * 10));
    }
  });
  EXPECT_GT(eng.makespan(), 0u);
}

TEST(EngineStress, FinishedRanksDoNotBlockOthers) {
  Engine eng(4);
  struct {
    bool flag = false;
  } shared;
  eng.run([&](Context& ctx) {
    if (ctx.rank() < 3) {
      ctx.advance(ns(10 * static_cast<std::uint64_t>(ctx.rank() + 1)));
      if (ctx.rank() == 2) shared.flag = true;
      return;  // finish early
    }
    ctx.wait_until([&]() -> std::optional<TimePs> {
      if (!shared.flag) return std::nullopt;
      return ns(30);
    });
    EXPECT_EQ(ctx.now(), ns(30));
  });
}

TEST(EngineStress, ZeroAdvanceYieldIsFair) {
  Engine eng(3);
  std::vector<int> order;
  eng.run([&](Context& ctx) {
    for (int i = 0; i < 3; ++i) {
      order.push_back(ctx.rank());
      ctx.yield();
    }
  });
  // At equal time, rank order round-robins deterministically: the zero
  // advance keeps time equal, so the lowest rank always resumes first and
  // runs to its next yield.
  ASSERT_EQ(order.size(), 9u);
  const std::vector<int> expect{0, 0, 0, 1, 1, 1, 2, 2, 2};
  EXPECT_EQ(order, expect);
}

}  // namespace
}  // namespace ibp::sim
