// Randomized MPI traffic checked against an oracle.
//
// Each trial builds a random program: every rank gets a deterministic
// schedule of sends (random sizes spanning all protocol bands, random
// destinations, tags drawn from a small set) and matching receives. The
// oracle is computed sequentially up front: for every (src, dst, tag)
// envelope, messages must arrive in post order carrying exactly the bytes
// the schedule assigned. Trials sweep topology, protocol knobs and
// placement.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ibp/mpi/comm.hpp"

namespace ibp::mpi {
namespace {

struct PlannedMsg {
  int src = 0;
  int dst = 0;
  int tag = 0;
  std::uint32_t seq = 0;  // global id; seeds the payload
  std::uint64_t bytes = 0;
};

struct Plan {
  std::vector<PlannedMsg> msgs;  // in global post order
  std::vector<std::vector<std::uint32_t>> sends;  // per rank: msg indices
  std::vector<std::vector<std::uint32_t>> recvs;  // per rank: msg indices
};

Plan make_plan(int nranks, std::uint64_t seed, int nmsgs) {
  Rng rng(seed);
  Plan p;
  p.sends.resize(static_cast<std::size_t>(nranks));
  p.recvs.resize(static_cast<std::size_t>(nranks));
  const std::uint64_t size_pool[] = {0,       1,        17,      1000,
                                     8192,    8193,     12000,   16384,
                                     16385,   50000,    200000};
  for (int i = 0; i < nmsgs; ++i) {
    PlannedMsg m;
    m.src = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    m.dst = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nranks)));
    if (m.dst == m.src) m.dst = (m.dst + 1) % nranks;
    m.tag = static_cast<int>(rng.next_below(3));
    m.seq = static_cast<std::uint32_t>(i);
    m.bytes = size_pool[rng.next_below(std::size(size_pool))];
    p.sends[static_cast<std::size_t>(m.src)].push_back(m.seq);
    p.recvs[static_cast<std::size_t>(m.dst)].push_back(m.seq);
    p.msgs.push_back(m);
  }
  return p;
}

std::uint8_t payload_byte(std::uint32_t seq, std::uint64_t i) {
  return static_cast<std::uint8_t>(seq * 37 + i * 11 + (i >> 8));
}

struct FuzzParam {
  int nodes;
  int rpn;
  bool hugepages;
  bool rndv_read;
  std::uint64_t seed;
  bool ud_eager = false;
  bool rdma_eager = false;
};

class MpiFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(MpiFuzz, RandomTrafficMatchesOracle) {
  const auto [nodes, rpn, hugepages, rndv_read, seed, ud_eager, rdma_eager] =
      GetParam();
  const int nranks = nodes * rpn;
  const Plan plan = make_plan(nranks, seed, 60);

  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = rpn;
  cfg.hugepage_library = hugepages;
  core::Cluster cluster(cfg);
  CommConfig ccfg;
  ccfg.rndv_read = rndv_read;
  ccfg.ud_eager = ud_eager;
  ccfg.rdma_eager = rdma_eager;

  cluster.run([&](core::RankEnv& env) {
    Comm comm(env, ccfg);
    const int me = env.rank();

    // Nonblocking receives posted up front, in the plan's global order —
    // for each envelope that order matches the senders' post order, so
    // non-overtaking guarantees the right pairing.
    struct Pending {
      Req req;
      const PlannedMsg* m;
      VirtAddr buf;
    };
    std::vector<Pending> pending;
    for (std::uint32_t seq : plan.recvs[static_cast<std::size_t>(me)]) {
      const PlannedMsg& m = plan.msgs[seq];
      const VirtAddr buf = env.alloc(std::max<std::uint64_t>(m.bytes, 64));
      pending.push_back(
          {comm.irecv(buf, m.bytes, m.src, m.tag), &m, buf});
    }

    // Sends, interleaved with a little compute jitter.
    for (std::uint32_t seq : plan.sends[static_cast<std::size_t>(me)]) {
      const PlannedMsg& m = plan.msgs[seq];
      const VirtAddr buf = env.alloc(std::max<std::uint64_t>(m.bytes, 64));
      auto s = env.space().host_span(buf, m.bytes);
      for (std::uint64_t i = 0; i < m.bytes; ++i)
        s[i] = payload_byte(m.seq, i);
      env.compute((m.seq % 7) * 1000);
      comm.send(buf, m.bytes, m.dst, m.tag);
    }

    // Drain and verify every receive against the oracle.
    for (auto& pnd : pending) {
      comm.wait(pnd.req);
      ASSERT_EQ(pnd.req->received, pnd.m->bytes);
      ASSERT_EQ(pnd.req->actual_src, pnd.m->src);
      auto s = env.space().host_span(pnd.buf, pnd.m->bytes);
      for (std::uint64_t i = 0; i < pnd.m->bytes; ++i)
        ASSERT_EQ(s[i], payload_byte(pnd.m->seq, i))
            << "msg " << pnd.m->seq << " byte " << i;
    }
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Trials, MpiFuzz,
    ::testing::Values(FuzzParam{2, 1, false, false, 1},
                      FuzzParam{2, 2, false, false, 2},
                      FuzzParam{2, 4, true, false, 3},
                      FuzzParam{2, 2, true, true, 4},
                      FuzzParam{1, 4, false, false, 5},
                      FuzzParam{2, 3, true, false, 6},
                      FuzzParam{2, 1, false, true, 7},
                      FuzzParam{3, 2, false, false, 8},
                      FuzzParam{2, 2, false, false, 9, true},
                      FuzzParam{2, 4, true, false, 10, true},
                      FuzzParam{2, 1, false, true, 11, true},
                      FuzzParam{3, 2, false, false, 12, true},
                      FuzzParam{2, 1, false, false, 13, false, true},
                      FuzzParam{2, 2, false, false, 14, false, true},
                      FuzzParam{2, 4, true, false, 15, false, true},
                      FuzzParam{3, 2, true, true, 16, false, true}),
    [](const auto& info) {
      const auto& p = info.param;
      return std::to_string(p.nodes) + "x" + std::to_string(p.rpn) +
             (p.hugepages ? "_huge" : "_small") +
             (p.rndv_read ? "_read" : "_write") +
             (p.ud_eager ? "_ud" : "") + (p.rdma_eager ? "_ring" : "") +
             "_s" + std::to_string(p.seed);
    });

}  // namespace
}  // namespace ibp::mpi
