#include "ibp/mpi/comm.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "ibp/core/cluster.hpp"

namespace ibp::mpi {
namespace {

core::ClusterConfig small_cluster(int nodes, int rpn) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = rpn;
  cfg.node_memory = 256 * kMiB;
  cfg.hugepages_per_node = 128;
  return cfg;
}

void fill_pattern(core::RankEnv& env, VirtAddr va, std::uint64_t len,
                  std::uint8_t seed) {
  auto s = env.space().host_span(va, len);
  for (std::uint64_t i = 0; i < len; ++i)
    s[i] = static_cast<std::uint8_t>(seed + i * 7);
}

bool check_pattern(core::RankEnv& env, VirtAddr va, std::uint64_t len,
                   std::uint8_t seed) {
  auto s = env.space().host_span(va, len);
  for (std::uint64_t i = 0; i < len; ++i)
    if (s[i] != static_cast<std::uint8_t>(seed + i * 7)) return false;
  return true;
}

/// Exercise one send/recv pair at `len` bytes between ranks 0 and 1 of the
/// given topology; checks payload integrity and returns the receiver's
/// elapsed time.
TimePs pingpong_once(int nodes, int rpn, std::uint64_t len) {
  core::Cluster cluster(small_cluster(nodes, rpn));
  TimePs elapsed = 0;
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    if (env.rank() == 0) {
      const VirtAddr buf = env.alloc(std::max<std::uint64_t>(len, 64));
      fill_pattern(env, buf, len, 3);
      comm.send(buf, len, 1, 42);
    } else if (env.rank() == 1) {
      const VirtAddr buf = env.alloc(std::max<std::uint64_t>(len, 64));
      const TimePs t0 = env.now();
      const RecvStatus st = comm.recv(buf, len, 0, 42);
      elapsed = env.now() - t0;
      EXPECT_EQ(st.len, len);
      EXPECT_EQ(st.src, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_TRUE(check_pattern(env, buf, len, 3));
    }
  });
  return elapsed;
}

TEST(MpiP2P, EagerInterNode) { EXPECT_GT(pingpong_once(2, 1, 1024), 0u); }
TEST(MpiP2P, EagerZeroBytes) { pingpong_once(2, 1, 0); }
TEST(MpiP2P, MediumRendezvousInterNode) {
  EXPECT_GT(pingpong_once(2, 1, 12 * kKiB), 0u);
}
TEST(MpiP2P, RdmaRendezvousInterNode) {
  EXPECT_GT(pingpong_once(2, 1, 256 * kKiB), 0u);
}
TEST(MpiP2P, EagerIntraNode) { EXPECT_GT(pingpong_once(1, 2, 1024), 0u); }
TEST(MpiP2P, LargeIntraNode) {
  EXPECT_GT(pingpong_once(1, 2, 256 * kKiB), 0u);
}

TEST(MpiP2P, ProtocolBandsOrderedByLatency) {
  // Larger messages must take longer within the same topology.
  const TimePs t_small = pingpong_once(2, 1, 512);
  const TimePs t_med = pingpong_once(2, 1, 12 * kKiB);
  const TimePs t_big = pingpong_once(2, 1, 1 * kMiB);
  EXPECT_LT(t_small, t_med);
  EXPECT_LT(t_med, t_big);
}

TEST(MpiP2P, UnexpectedMessagesMatchInOrder) {
  core::Cluster cluster(small_cluster(2, 1));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(4096);
    if (env.rank() == 0) {
      // Three sends with the same tag arrive before any recv is posted.
      for (int i = 0; i < 3; ++i) {
        auto s = env.space().host_span(buf, 8);
        std::memset(s.data(), 'a' + i, 8);
        comm.send(buf, 8, 1, 7);
      }
    } else {
      env.sim().advance(ms(1));  // guarantee the sends are unexpected
      for (int i = 0; i < 3; ++i) {
        comm.recv(buf, 8, 0, 7);
        auto s = env.space().host_span(buf, 8);
        EXPECT_EQ(s[0], 'a' + i) << "message " << i << " out of order";
      }
    }
  });
}

TEST(MpiP2P, AnySourceAnyTag) {
  core::Cluster cluster(small_cluster(2, 2));  // 4 ranks
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(4096);
    if (env.rank() != 0) {
      auto s = env.space().host_span(buf, 4);
      std::memset(s.data(), env.rank(), 4);
      comm.send(buf, 4, 0, 100 + env.rank());
    } else {
      bool seen[4] = {};
      for (int i = 0; i < 3; ++i) {
        const RecvStatus st = comm.recv(buf, 4, kAnySource, kAnyTag);
        EXPECT_EQ(st.tag, 100 + st.src);
        auto s = env.space().host_span(buf, 4);
        EXPECT_EQ(s[0], st.src);
        seen[st.src] = true;
      }
      EXPECT_TRUE(seen[1] && seen[2] && seen[3]);
    }
  });
}

TEST(MpiP2P, NonblockingOverlap) {
  core::Cluster cluster(small_cluster(2, 1));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    constexpr std::uint64_t kLen = 64 * kKiB;
    const VirtAddr a = env.alloc(kLen);
    const VirtAddr b = env.alloc(kLen);
    if (env.rank() == 0) {
      fill_pattern(env, a, kLen, 1);
      fill_pattern(env, b, kLen, 2);
      Req r1 = comm.isend(a, kLen, 1, 1);
      Req r2 = comm.isend(b, kLen, 1, 2);
      comm.wait(r1);
      comm.wait(r2);
    } else {
      Req r2 = comm.irecv(b, kLen, 0, 2);
      Req r1 = comm.irecv(a, kLen, 0, 1);
      std::vector<Req> rs{r1, r2};
      comm.waitall(rs);
      EXPECT_TRUE(check_pattern(env, a, kLen, 1));
      EXPECT_TRUE(check_pattern(env, b, kLen, 2));
    }
  });
}

TEST(MpiP2P, SendrecvExchangesBothDirections) {
  core::Cluster cluster(small_cluster(2, 1));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    constexpr std::uint64_t kLen = 2 * kKiB;
    const VirtAddr sb = env.alloc(kLen);
    const VirtAddr rb = env.alloc(kLen);
    const int other = 1 - env.rank();
    fill_pattern(env, sb, kLen, static_cast<std::uint8_t>(env.rank()));
    comm.sendrecv(sb, kLen, other, 5, rb, kLen, other, 5);
    EXPECT_TRUE(
        check_pattern(env, rb, kLen, static_cast<std::uint8_t>(other)));
  });
}

TEST(MpiP2P, TruncationIsFatal) {
  core::Cluster cluster(small_cluster(2, 1));
  EXPECT_THROW(cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(4096);
    if (env.rank() == 0) {
      comm.send(buf, 1024, 1, 1);
    } else {
      comm.recv(buf, 100, 0, 1);  // capacity < message
    }
  }),
               SimError);
}

TEST(MpiColl, Barrier) {
  core::Cluster cluster(small_cluster(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    // Stagger arrival; after the barrier all clocks must be >= the
    // latest arrival.
    env.sim().advance(us(static_cast<std::uint64_t>(env.rank()) * 100));
    comm.barrier();
    EXPECT_GE(env.now(), us(300));
  });
}

TEST(MpiColl, BcastFromEveryRoot) {
  core::Cluster cluster(small_cluster(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(4096);
    for (int root = 0; root < comm.size(); ++root) {
      if (env.rank() == root)
        fill_pattern(env, buf, 777, static_cast<std::uint8_t>(root));
      comm.bcast(buf, 777, root);
      EXPECT_TRUE(
          check_pattern(env, buf, 777, static_cast<std::uint8_t>(root)))
          << "root " << root;
    }
  });
}

TEST(MpiColl, AllreduceSumDoubles) {
  core::Cluster cluster(small_cluster(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    constexpr std::uint64_t kN = 257;
    const VirtAddr in = env.alloc(kN * sizeof(double));
    const VirtAddr out = env.alloc(kN * sizeof(double));
    auto* p = env.host_ptr<double>(in, kN);
    for (std::uint64_t i = 0; i < kN; ++i)
      p[i] = static_cast<double>(env.rank() + 1) * static_cast<double>(i);
    comm.allreduce<double>(in, out, kN, ReduceOp::Sum);
    auto* q = env.host_ptr<double>(out, kN);
    const double ranksum = 1 + 2 + 3 + 4;
    for (std::uint64_t i = 0; i < kN; ++i)
      ASSERT_DOUBLE_EQ(q[i], ranksum * static_cast<double>(i));
  });
}

TEST(MpiColl, AllreduceMaxU64) {
  core::Cluster cluster(small_cluster(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr in = env.alloc(64);
    const VirtAddr out = env.alloc(64);
    *env.host_ptr<std::uint64_t>(in) = 100 + env.rank();
    comm.allreduce<std::uint64_t>(in, out, 1, ReduceOp::Max);
    EXPECT_EQ(*env.host_ptr<std::uint64_t>(out), 103u);
  });
}

TEST(MpiColl, AllgatherRing) {
  core::Cluster cluster(small_cluster(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    constexpr std::uint64_t kLen = 512;
    const VirtAddr in = env.alloc(kLen);
    const VirtAddr out = env.alloc(kLen * 4);
    fill_pattern(env, in, kLen, static_cast<std::uint8_t>(env.rank() * 11));
    comm.allgather(in, kLen, out);
    for (int p = 0; p < 4; ++p)
      EXPECT_TRUE(check_pattern(env, out + p * kLen, kLen,
                                static_cast<std::uint8_t>(p * 11)))
          << "block " << p;
  });
}

TEST(MpiColl, AlltoallvVariableBlocks) {
  core::Cluster cluster(small_cluster(2, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const int n = comm.size();
    const int me = env.rank();
    // Rank r sends (r+1)*(c+1)*16 bytes to rank c.
    std::vector<std::uint64_t> scounts(n), sdispls(n), rcounts(n), rdispls(n);
    std::uint64_t soff = 0, roff = 0;
    for (int c = 0; c < n; ++c) {
      scounts[c] = static_cast<std::uint64_t>((me + 1) * (c + 1)) * 16;
      sdispls[c] = soff;
      soff += scounts[c];
      rcounts[c] = static_cast<std::uint64_t>((c + 1) * (me + 1)) * 16;
      rdispls[c] = roff;
      roff += rcounts[c];
    }
    const VirtAddr sbuf = env.alloc(soff);
    const VirtAddr rbuf = env.alloc(roff);
    for (int c = 0; c < n; ++c)
      fill_pattern(env, sbuf + sdispls[c], scounts[c],
                   static_cast<std::uint8_t>(me * 16 + c));
    comm.alltoallv(sbuf, scounts, sdispls, rbuf, rcounts, rdispls);
    for (int c = 0; c < n; ++c)
      EXPECT_TRUE(check_pattern(env, rbuf + rdispls[c], rcounts[c],
                                static_cast<std::uint8_t>(c * 16 + me)))
          << "from rank " << c;
  });
}

TEST(MpiGather, SgeGatherMatchesPackAndSend) {
  // Same payload, both paths; receiver must observe identical bytes.
  for (const bool sge : {false, true}) {
    CommConfig cfg;
    cfg.sge_gather = sge;
    core::Cluster cluster(small_cluster(2, 1));
    cluster.run([&](core::RankEnv& env) {
      Comm comm(env, cfg);
      const VirtAddr a = env.alloc(4096);
      const VirtAddr b = env.alloc(4096);
      const VirtAddr c = env.alloc(4096);
      if (env.rank() == 0) {
        fill_pattern(env, a, 100, 1);
        fill_pattern(env, b, 200, 2);
        fill_pattern(env, c, 300, 3);
        Req r = comm.isend_gather({{a, 100}, {b, 200}, {c, 300}}, 1, 9);
        comm.wait(r);
      } else {
        const VirtAddr buf = env.alloc(4096);
        const RecvStatus st = comm.recv(buf, 600, 0, 9);
        EXPECT_EQ(st.len, 600u);
        EXPECT_TRUE(check_pattern(env, buf, 100, 1));
        EXPECT_TRUE(check_pattern(env, buf + 100, 200, 2));
        EXPECT_TRUE(check_pattern(env, buf + 300, 300, 3));
      }
    });
  }
}

TEST(MpiProfiler, SplitsCommFromCompute) {
  core::Cluster cluster(small_cluster(2, 1));
  TimePs comm_time[2] = {};
  TimePs total_time[2] = {};
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr buf = env.alloc(64 * kKiB);
    env.compute(1000000);  // pure compute, must not count as comm
    const int other = 1 - env.rank();
    comm.sendrecv(buf, 32 * kKiB, other, 1, buf, 32 * kKiB, other, 1);
    comm_time[env.rank()] = comm.profiler().total();
    total_time[env.rank()] = env.now();
  });
  for (int r = 0; r < 2; ++r) {
    EXPECT_GT(comm_time[r], 0u);
    EXPECT_LT(comm_time[r], total_time[r]);
  }
}

TEST(MpiDeterminism, IdenticalRunsIdenticalClocks) {
  auto run_once = [] {
    core::Cluster cluster(small_cluster(2, 2));
    cluster.run([&](core::RankEnv& env) {
      Comm comm(env);
      const VirtAddr buf = env.alloc(128 * kKiB);
      for (int i = 0; i < 5; ++i) {
        comm.barrier();
        const int other = env.rank() ^ 1;
        comm.sendrecv(buf, 40 * kKiB, other, i, buf, 40 * kKiB, other, i);
      }
    });
    return cluster.makespan();
  };
  const TimePs a = run_once();
  const TimePs b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

}  // namespace
}  // namespace ibp::mpi
