// One-sided communication windows: put/get/atomics over RDMA and the
// intra-node shared-memory path, fence synchronization.

#include <gtest/gtest.h>

#include "ibp/mpi/window.hpp"

namespace ibp::mpi {
namespace {

core::ClusterConfig topo(int nodes, int rpn) {
  core::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = rpn;
  return cfg;
}

TEST(Window, PutGetAcrossNodes) {
  core::Cluster cluster(topo(2, 1));
  constexpr std::uint64_t kWin = 64 * kKiB;
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr win_buf = env.alloc(kWin);
    const VirtAddr scratch = env.alloc(kWin);
    auto w = env.space().host_span(win_buf, kWin);
    std::fill(w.begin(), w.end(),
              static_cast<std::uint8_t>(env.rank() + 1));
    Window win(comm, win_buf, kWin);

    if (env.rank() == 0) {
      // Write a pattern into rank 1's window...
      auto s = env.space().host_span(scratch, 1000);
      for (std::size_t i = 0; i < s.size(); ++i)
        s[i] = static_cast<std::uint8_t>(i * 5);
      win.put(scratch, 1000, 1, 4096);
    }
    win.fence();
    if (env.rank() == 1) {
      auto s = env.space().host_span(win_buf + 4096, 1000);
      for (std::size_t i = 0; i < s.size(); ++i)
        ASSERT_EQ(s[i], static_cast<std::uint8_t>(i * 5));
    }

    // ...and pull rank 1's untouched prefix back to rank 0.
    if (env.rank() == 0) {
      win.get(scratch, 512, 1, 0);
    }
    win.fence();
    if (env.rank() == 0) {
      auto s = env.space().host_span(scratch, 512);
      for (std::size_t i = 0; i < s.size(); ++i)
        ASSERT_EQ(s[i], 2) << "rank 1's window fill";
    }
    win.fence();
  });
}

TEST(Window, IntraNodePath) {
  core::Cluster cluster(topo(1, 2));
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr win_buf = env.alloc(4096);
    auto w = env.space().host_span(win_buf, 4096);
    std::fill(w.begin(), w.end(), static_cast<std::uint8_t>(0));
    Window win(comm, win_buf, 4096);
    if (env.rank() == 0) {
      const VirtAddr src = env.alloc(64);
      auto s = env.space().host_span(src, 64);
      std::fill(s.begin(), s.end(), static_cast<std::uint8_t>(0xAB));
      win.put(src, 64, 1, 128);
    }
    win.fence();
    if (env.rank() == 1) {
      EXPECT_EQ(env.space().host_span(win_buf + 128, 1)[0], 0xAB);
    }
    win.fence();
  });
}

TEST(Window, FetchAddAccumulatesAcrossRanks) {
  // Every rank atomically bumps a counter in rank 0's window; the sum and
  // the returned "old" values must form a permutation of partial sums.
  core::Cluster cluster(topo(2, 2));
  constexpr int kAddsPerRank = 5;
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr win_buf = env.alloc(4096);
    *env.host_ptr<std::uint64_t>(win_buf) = 0;
    Window win(comm, win_buf, 4096);
    win.fence();

    std::uint64_t last_seen = 0;
    for (int i = 0; i < kAddsPerRank; ++i) {
      const std::uint64_t old_val = win.fetch_add(0, 0, 1);
      EXPECT_GE(old_val, last_seen) << "atomic order went backwards";
      last_seen = old_val;
    }
    win.fence();
    if (env.rank() == 0) {
      EXPECT_EQ(*env.host_ptr<std::uint64_t>(win_buf),
                static_cast<std::uint64_t>(comm.size() * kAddsPerRank));
    }
    win.fence();
  });
}

TEST(Window, CompareSwapElectsOneWinner) {
  core::Cluster cluster(topo(2, 2));
  std::vector<int> winner;
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr win_buf = env.alloc(4096);
    *env.host_ptr<std::uint64_t>(win_buf) = 0;
    Window win(comm, win_buf, 4096);
    win.fence();
    // Everyone tries to claim slot 0 of rank 0's window with their id+1.
    const std::uint64_t old_val = win.compare_swap(
        0, 0, 0, static_cast<std::uint64_t>(env.rank()) + 1);
    if (old_val == 0) winner.push_back(env.rank());
    win.fence();
    if (env.rank() == 0) {
      const std::uint64_t v = *env.host_ptr<std::uint64_t>(win_buf);
      EXPECT_GE(v, 1u);
      EXPECT_LE(v, 4u);
    }
    win.fence();
  });
  EXPECT_EQ(winner.size(), 1u) << "exactly one CAS may win";
}

TEST(Window, TelemetryCountsOpsBytesAndFenceWaits) {
  core::Cluster cluster(topo(2, 1));
  WindowStats st[2];
  cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr win_buf = env.alloc(64 * kKiB);
    const VirtAddr scratch = env.alloc(64 * kKiB);
    Window win(comm, win_buf, 64 * kKiB);
    if (env.rank() == 0) {
      win.put(scratch, 1000, 1, 0);
      win.put(scratch, 24, 1, 4096);
      win.get(scratch, 512, 1, 8192);
      win.fetch_add(0, 16384, 1);
      win.compare_swap(0, 16384, 1, 2);
    }
    win.fence();
    st[env.rank()] = win.stats();
    win.fence();
  });
  EXPECT_EQ(st[0].puts, 2u);
  EXPECT_EQ(st[0].put_bytes, 1024u);
  EXPECT_EQ(st[0].gets, 1u);
  EXPECT_EQ(st[0].get_bytes, 512u);
  EXPECT_EQ(st[0].atomics, 2u);
  EXPECT_GT(st[0].fence_waits, 0u) << "the fence drained outstanding ops";
  EXPECT_EQ(st[1].puts, 0u) << "the passive target counts nothing";
  EXPECT_EQ(st[1].gets, 0u);
  EXPECT_EQ(st[1].atomics, 0u);
}

TEST(Window, OutOfRangeAccessThrows) {
  core::Cluster cluster(topo(2, 1));
  EXPECT_THROW(cluster.run([&](core::RankEnv& env) {
    Comm comm(env);
    const VirtAddr win_buf = env.alloc(4096);
    Window win(comm, win_buf, 4096);
    const VirtAddr src = env.alloc(8192);
    if (env.rank() == 0) win.put(src, 8192, 1, 0);  // larger than window
    win.fence();
  }),
               SimError);
}

TEST(Window, PlacementAffectsWindowRegistrationCost) {
  // The paper's registration story applies to RMA windows verbatim.
  TimePs costs[2];
  for (int huge = 0; huge < 2; ++huge) {
    core::ClusterConfig cfg = topo(2, 1);
    cfg.hugepage_library = huge != 0;
    core::Cluster cluster(cfg);
    TimePs dt = 0;
    cluster.run([&](core::RankEnv& env) {
      Comm comm(env);
      const VirtAddr buf = env.alloc(8 * kMiB);
      const TimePs t0 = env.now();
      Window win(comm, buf, 8 * kMiB);
      if (env.rank() == 0) dt = env.now() - t0;
      win.fence();
    });
    costs[huge] = dt;
  }
  EXPECT_LT(costs[1], costs[0] / 4)
      << "hugepage window creation must be far cheaper";
}

}  // namespace
}  // namespace ibp::mpi
