#include <gtest/gtest.h>

#include <map>

#include "ibp/workloads/alloc_trace.hpp"
#include "ibp/workloads/imb.hpp"
#include "ibp/workloads/nas.hpp"

namespace ibp::workloads {
namespace {

TEST(AllocTrace, BalancedAndSlotConsistent) {
  const TraceConfig cfg;
  const auto ops = make_abinit_trace(cfg);
  std::map<std::uint32_t, bool> live;
  std::uint64_t mallocs = 0, frees = 0;
  for (const auto& op : ops) {
    ASSERT_LT(op.slot, trace_slot_count(cfg));
    if (op.kind == TraceOp::Kind::Malloc) {
      ASSERT_FALSE(live[op.slot]) << "slot reused while live";
      ASSERT_GT(op.size, 0u);
      live[op.slot] = true;
      ++mallocs;
    } else {
      ASSERT_TRUE(live[op.slot]) << "free of dead slot";
      live[op.slot] = false;
      ++frees;
    }
  }
  EXPECT_EQ(mallocs, frees) << "trace must end with everything freed";
  for (const auto& [slot, alive] : live) EXPECT_FALSE(alive);
}

TEST(AllocTrace, DeterministicPerSeed) {
  const auto a = make_abinit_trace();
  const auto b = make_abinit_trace();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].slot, b[i].slot);
  }
}

TEST(AllocTrace, RecurringSizesDominate) {
  TraceConfig cfg;
  cfg.odd_fraction = 0.0;
  const auto ops = make_abinit_trace(cfg);
  std::map<std::uint64_t, int> size_freq;
  for (const auto& op : ops)
    if (op.kind == TraceOp::Kind::Malloc && op.size >= cfg.temp_min)
      ++size_freq[op.size];
  // With no odd sizes, only the recurring temp sizes (plus persistents).
  EXPECT_LE(size_freq.size(),
            static_cast<std::size_t>(cfg.recurring_sizes) + 3);
}

TEST(Imb, DefaultSizesAreFigure5Range) {
  const auto sizes = imb_default_sizes();
  EXPECT_EQ(sizes.front(), 4 * kKiB);
  EXPECT_EQ(sizes.back(), 16 * kMiB);
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
}

TEST(Imb, ReportsBidirectionalBandwidth) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  ImbConfig icfg;
  icfg.sizes = {1 * kMiB};
  icfg.iterations = 5;
  const auto pts = run_sendrecv(cluster, icfg);
  ASSERT_EQ(pts.size(), 1u);
  // IMB convention counts both directions; a single direction cannot
  // exceed the link, so the reported number may exceed 1x link bandwidth
  // but never 2x.
  const double link_mbs = 0.95 * 1000.0;
  EXPECT_GT(pts[0].mbytes_per_sec, link_mbs * 0.8);
  EXPECT_LT(pts[0].mbytes_per_sec, 2 * link_mbs);
}

TEST(Imb, MoreRanksStillWork) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  core::Cluster cluster(cfg);
  ImbConfig icfg;
  icfg.sizes = {64 * kKiB, 256 * kKiB};
  icfg.iterations = 3;
  const auto pts = run_sendrecv(cluster, icfg);
  EXPECT_GT(pts[0].mbytes_per_sec, 0.0);
  EXPECT_GT(pts[1].mbytes_per_sec, 0.0);
}

TEST(Nas, UnknownKernelThrows) {
  core::ClusterConfig cfg;
  core::Cluster cluster(cfg);
  EXPECT_THROW(run_nas("bt", cluster), SimError);
}

TEST(Nas, ResultFieldsArePopulated) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 2;
  core::Cluster cluster(cfg);
  const NasResult r = run_ep(cluster);
  EXPECT_EQ(r.name, "ep");
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.total, 0u);
  EXPECT_GT(r.comm_avg, 0u);
  EXPECT_GE(r.comm_max, r.comm_avg);
  EXPECT_EQ(r.other_avg, r.total - r.comm_avg);
  EXPECT_GT(r.tlb_misses, 0u);
}

}  // namespace
}  // namespace ibp::workloads

namespace ibp::workloads {
namespace {

TEST(ImbModes, PingPongLatencyOrdering) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  ImbConfig icfg;
  icfg.sizes = {8, 4 * kKiB, 64 * kKiB};
  icfg.iterations = 5;
  const auto pts = run_pingpong(cluster, icfg);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_LT(pts[0].avg_time, pts[1].avg_time);
  EXPECT_LT(pts[1].avg_time, pts[2].avg_time);
  // One-way 8 B latency lands in a plausible band (a few microseconds).
  EXPECT_GT(pts[0].avg_time, us(1));
  EXPECT_LT(pts[0].avg_time, us(20));
}

TEST(ImbModes, ExchangeCarriesFourMessagesPerRank) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  ImbConfig icfg;
  icfg.sizes = {256 * kKiB};
  icfg.iterations = 5;
  const auto pts = run_exchange(cluster, icfg);
  // Exchange reports ~2x the SendRecv figure at the same size (4 vs 2
  // messages counted over a similarly saturated link).
  EXPECT_GT(pts[0].mbytes_per_sec, 1000.0);
}

}  // namespace
}  // namespace ibp::workloads
