// RDMA-read support: adapter-level semantics and the rendezvous-read MPI
// protocol built on it.

#include <gtest/gtest.h>

#include "ibp/hca/adapter.hpp"
#include "ibp/mpi/comm.hpp"

namespace ibp {
namespace {

struct TwoNodes {
  TwoNodes() {
    qa = &a.create_qp(&a_scq, &a_rcq);
    qb = &b.create_qp(&b_scq, &b_rcq);
    qa->connect(qb);
    qb->connect(qa);
  }
  mem::PhysicalMemory pm_a{64 * kMiB, 16, 1};
  mem::PhysicalMemory pm_b{64 * kMiB, 16, 2};
  mem::HugeTlbFs fs_a{&pm_a, 16, 0};
  mem::HugeTlbFs fs_b{&pm_b, 16, 0};
  mem::AddressSpace as_a{&pm_a, &fs_a};
  mem::AddressSpace as_b{&pm_b, &fs_b};
  hca::Adapter a{0, hca::AdapterConfig{}};
  hca::Adapter b{1, hca::AdapterConfig{}};
  hca::CompletionQueue a_scq, a_rcq, b_scq, b_rcq;
  hca::QueuePair* qa = nullptr;
  hca::QueuePair* qb = nullptr;
};

TEST(RdmaRead, PullsRemoteBytes) {
  TwoNodes t;
  auto& ma = t.as_a.map(64 * kKiB, mem::PageKind::Small);
  auto& mb = t.as_b.map(64 * kKiB, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 64 * kKiB, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 64 * kKiB, kSmallPageSize);

  auto src = t.as_b.host_span(mb.va_base + 512, 32 * kKiB);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 7 + 1);

  hca::SendWr wr;
  wr.wr_id = 11;
  wr.opcode = hca::Opcode::RdmaRead;
  wr.sges = {{ma.va_base + 64, 32 * kKiB, ra.mr->lkey}};
  wr.remote_addr = mb.va_base + 512;
  wr.rkey = rb.mr->lkey;
  t.qa->post_send(wr, 0);

  const auto cqe = t.a_scq.poll(ms(100));
  ASSERT_TRUE(cqe);
  EXPECT_EQ(cqe->type, hca::CqeType::RdmaReadComplete);
  EXPECT_EQ(cqe->byte_len, 32 * kKiB);
  // The read must take at least a request trip plus the data stream.
  EXPECT_GT(cqe->ready_time, 2 * t.a.config().wire_latency);

  auto dst = t.as_a.host_span(ma.va_base + 64, 32 * kKiB);
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(i * 7 + 1));
  EXPECT_EQ(t.a.stats().rdma_reads_posted, 1u);
}

TEST(RdmaRead, ScattersAcrossLocalSges) {
  TwoNodes t;
  auto& ma = t.as_a.map(4 * kSmallPageSize, mem::PageKind::Small);
  auto& mb = t.as_b.map(4 * kSmallPageSize, mem::PageKind::Small);
  const auto ra =
      t.a.reg_mr(t.as_a, ma.va_base, 4 * kSmallPageSize, kSmallPageSize);
  const auto rb =
      t.b.reg_mr(t.as_b, mb.va_base, 4 * kSmallPageSize, kSmallPageSize);
  auto src = t.as_b.host_span(mb.va_base, 300);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i);

  hca::SendWr wr;
  wr.opcode = hca::Opcode::RdmaRead;
  wr.sges = {{ma.va_base, 100, ra.mr->lkey},
             {ma.va_base + kSmallPageSize, 200, ra.mr->lkey}};
  wr.remote_addr = mb.va_base;
  wr.rkey = rb.mr->lkey;
  t.qa->post_send(wr, 0);
  ASSERT_TRUE(t.a_scq.poll(ms(100)));
  EXPECT_EQ(t.as_a.host_span(ma.va_base, 100)[99], 99);
  EXPECT_EQ(t.as_a.host_span(ma.va_base + kSmallPageSize, 200)[0], 100);
}

TEST(RdmaRead, OutOfBoundsRemoteThrows) {
  TwoNodes t;
  auto& ma = t.as_a.map(4096, mem::PageKind::Small);
  auto& mb = t.as_b.map(4096, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 4096, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 1024, kSmallPageSize);
  hca::SendWr wr;
  wr.opcode = hca::Opcode::RdmaRead;
  wr.sges = {{ma.va_base, 4096, ra.mr->lkey}};
  wr.remote_addr = mb.va_base;
  wr.rkey = rb.mr->lkey;
  EXPECT_THROW(t.qa->post_send(wr, 0), SimError);
}

// ---------------------------------------------------------------------------
// Rendezvous-read protocol through the MPI layer

core::ClusterConfig two_singles(bool lazy = true) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.lazy_deregistration = lazy;
  return cfg;
}

class RndvRead : public ::testing::TestWithParam<bool> {};  // lazy dereg

TEST_P(RndvRead, LargeMessageIntegrity) {
  core::Cluster cluster(two_singles(GetParam()));
  mpi::CommConfig ccfg;
  ccfg.rndv_read = true;
  constexpr std::uint64_t kLen = 777 * kKiB;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    // Bounce buffers stay registered for the process lifetime; user
    // buffers must come and go.
    const std::uint64_t base_pins = env.space().pinned_pages();
    const VirtAddr buf = env.alloc(kLen);
    if (env.rank() == 0) {
      auto s = env.space().host_span(buf, kLen);
      for (std::uint64_t i = 0; i < kLen; ++i)
        s[i] = static_cast<std::uint8_t>(i * 13);
      comm.send(buf, kLen, 1, 3);
    } else {
      const mpi::RecvStatus st = comm.recv(buf, kLen, 0, 3);
      EXPECT_EQ(st.len, kLen);
      EXPECT_EQ(st.src, 0);
      auto s = env.space().host_span(buf, kLen);
      for (std::uint64_t i = 0; i < kLen; i += 997)
        ASSERT_EQ(s[i], static_cast<std::uint8_t>(i * 13));
    }
    // With lazy dereg off, user-buffer pins must all be gone again.
    if (!comm.rcache().lazy()) {
      EXPECT_EQ(env.space().pinned_pages(), base_pins)
          << "rank " << env.rank() << " leaked user-buffer pins";
    }
  });
}

INSTANTIATE_TEST_SUITE_P(LazyModes, RndvRead, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "lazy" : "eager_dereg";
                         });

TEST(RndvRead, UsesOneFewerControlHop) {
  // The read protocol (RTS -> read -> FIN) should beat the write protocol
  // (RTS -> CTS -> write -> FIN) on first-message latency.
  auto once = [](bool read) {
    core::Cluster cluster(two_singles());
    mpi::CommConfig ccfg;
    ccfg.rndv_read = read;
    TimePs dt = 0;
    constexpr std::uint64_t kLen = 64 * kKiB;
    cluster.run([&](core::RankEnv& env) {
      mpi::Comm comm(env, ccfg);
      const VirtAddr buf = env.alloc(kLen);
      // Warm up registrations so only the protocol differs.
      if (env.rank() == 0) {
        comm.send(buf, kLen, 1, 0);
        comm.barrier();
        comm.send(buf, kLen, 1, 1);
      } else {
        comm.recv(buf, kLen, 0, 0);
        comm.barrier();
        const TimePs t0 = env.now();
        comm.recv(buf, kLen, 0, 1);
        dt = env.now() - t0;
      }
    });
    return dt;
  };
  const TimePs write_lat = once(false);
  const TimePs read_lat = once(true);
  EXPECT_LT(read_lat, write_lat);
}

TEST(RndvRead, MixedWithWriteProtocolPeersWouldConflict) {
  // Same config on both ranks is required; this documents that the knob
  // is per-communicator and symmetric. (Both ranks read-mode: fine.)
  core::Cluster cluster(two_singles());
  mpi::CommConfig ccfg;
  ccfg.rndv_read = true;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, ccfg);
    const VirtAddr buf = env.alloc(256 * kKiB);
    const int other = 1 - env.rank();
    comm.sendrecv(buf, 200 * kKiB, other, 1, buf, 200 * kKiB, other, 1);
  });
}

}  // namespace
}  // namespace ibp
