// Integration tests asserting the paper's headline *shapes* as testable
// properties (EXPERIMENTS.md records the full numbers):
//
//   P1  post cost ~constant over message size, 1300-1500 TBR ticks (§4)
//   P2  128 SGEs cost ~3x one SGE to post (§4)
//   P3  4 SGEs of <=128 B cost only modestly more than 1 SGE (§4, ~14 %)
//   P4  offset changes WR duration by a bounded few percent (§4, <=8 %)
//   P5  hugepage registration ~1 % of 4 KB registration (§5.1)
//   P6  IMB w/o lazy dereg: hugepages beat small pages; with lazy dereg:
//       identical on the PCIe platform (§5.1)
//   P7  patched driver helps on PCI-X (~+6 %), not on PCIe (§5.1)
//   P8  NAS: every kernel verifies, comm improves with hugepages on
//       System p, EP's TLB misses blow up ~8x, LU's do not (§5.2)

#include <gtest/gtest.h>

#include "bench_common.hpp"
#include "ibp/workloads/imb.hpp"
#include "ibp/workloads/nas.hpp"

namespace ibp {
namespace {

using bench::WrParams;
using bench::WrTiming;

TEST(PaperP1, PostCostConstantInPaperBand) {
  const auto plat = platform::systemp_gx_ehca();
  const cpu::TimeBase tbr(plat.tbr_hz);
  std::uint64_t first = 0;
  for (std::uint32_t size : {1u, 512u, 4096u}) {
    WrParams p;
    p.sge_size = size;
    p.iterations = 10;
    const WrTiming t = bench::measure_send(plat, p);
    const std::uint64_t ticks = tbr.to_ticks(t.post);
    EXPECT_GE(ticks, 1300u);
    EXPECT_LE(ticks, 1500u);
    if (!first) first = ticks;
    EXPECT_EQ(ticks, first) << "post cost must not vary with size";
  }
}

TEST(PaperP2, Post128SgesAboutThreeTimesOne) {
  const auto plat = platform::systemp_gx_ehca();
  WrParams p1, p128;
  p1.iterations = p128.iterations = 10;
  p128.sges = 128;
  const double ratio =
      static_cast<double>(bench::measure_send(plat, p128).post) /
      static_cast<double>(bench::measure_send(plat, p1).post);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 3.5);
}

TEST(PaperP3, FourSmallSgesCostModestOverhead) {
  const auto plat = platform::systemp_gx_ehca();
  for (std::uint32_t size : {16u, 64u, 128u}) {
    WrParams p1, p4;
    p1.sge_size = p4.sge_size = size;
    p1.iterations = p4.iterations = 10;
    p4.sges = 4;
    const double overhead =
        static_cast<double>(bench::measure_send(plat, p4).total()) /
            static_cast<double>(bench::measure_send(plat, p1).total()) -
        1.0;
    EXPECT_GT(overhead, 0.02) << "size " << size;
    EXPECT_LT(overhead, 0.30) << "size " << size;  // paper: ~14 %
  }
}

TEST(PaperP4, OffsetSpreadBoundedFewPercent) {
  const auto plat = platform::systemp_gx_ehca();
  TimePs best = ~0ull, worst = 0;
  for (std::uint32_t offset : {0u, 8u, 32u, 60u, 64u, 100u, 127u, 128u}) {
    WrParams p;
    p.sge_size = 64;
    p.offset = offset;
    p.iterations = 10;
    const TimePs t = bench::measure_send(plat, p).total();
    best = std::min(best, t);
    worst = std::max(worst, t);
  }
  const double spread =
      static_cast<double>(worst) / static_cast<double>(best) - 1.0;
  EXPECT_GT(spread, 0.02);
  EXPECT_LT(spread, 0.10);  // paper: up to ~8 %
}

TEST(PaperP6, Fig5Ordering) {
  auto run = [](bool huge, bool lazy) {
    core::ClusterConfig cfg;
    cfg.platform = platform::opteron_pcie_infinihost();
    cfg.nodes = 2;
    cfg.ranks_per_node = 1;
    cfg.hugepage_library = huge;
    cfg.lazy_deregistration = lazy;
    core::Cluster cluster(cfg);
    workloads::ImbConfig icfg;
    icfg.sizes = {4 * kMiB};
    icfg.iterations = 5;
    return workloads::run_sendrecv(cluster, icfg)[0].mbytes_per_sec;
  };
  const double small_noreg = run(false, false);
  const double huge_noreg = run(true, false);
  const double small_lazy = run(false, true);
  const double huge_lazy = run(true, true);

  // Without lazy dereg, hugepages dominate clearly.
  EXPECT_GT(huge_noreg, small_noreg * 1.3);
  // Hugepages without the cache nearly reach the cached bandwidth.
  EXPECT_GT(huge_noreg, huge_lazy * 0.95);
  // With lazy dereg, placement is irrelevant on PCIe (±1 %).
  EXPECT_NEAR(huge_lazy / small_lazy, 1.0, 0.01);
  // Peak approaches the paper's ~1750 MB/s scale.
  EXPECT_GT(huge_lazy, 1500.0);
  EXPECT_LT(huge_lazy, 2100.0);
}

TEST(PaperP7, DriverPatchHelpsOnPcixOnly) {
  auto run = [](const platform::PlatformConfig& plat, bool patched) {
    core::ClusterConfig cfg;
    cfg.platform = plat;
    cfg.nodes = 2;
    cfg.ranks_per_node = 1;
    cfg.hugepage_library = true;
    cfg.driver.hugepage_passthrough = patched;
    core::Cluster cluster(cfg);
    workloads::ImbConfig icfg;
    icfg.sizes = {16 * kMiB};
    icfg.iterations = 5;
    return workloads::run_sendrecv(cluster, icfg)[0].mbytes_per_sec;
  };
  const double xeon_gain =
      run(platform::xeon_pcix_infinihost(), true) /
      run(platform::xeon_pcix_infinihost(), false) - 1.0;
  EXPECT_GT(xeon_gain, 0.02);
  EXPECT_LT(xeon_gain, 0.10);  // paper: up to ~6 %
  const double opteron_gain =
      run(platform::opteron_pcie_infinihost(), true) /
      run(platform::opteron_pcie_infinihost(), false) - 1.0;
  EXPECT_LT(std::abs(opteron_gain), 0.01);  // paper: no visible effect
}

TEST(PaperP8, NasTlbShapes) {
  auto tlb_misses = [](const char* kernel, bool huge) {
    core::ClusterConfig cfg;
    cfg.platform = platform::opteron_pcie_infinihost();
    cfg.nodes = 2;
    cfg.ranks_per_node = 4;
    cfg.hugepage_library = huge;
    core::Cluster cluster(cfg);
    const auto r = workloads::run_nas(kernel, cluster);
    EXPECT_TRUE(r.verified) << kernel;
    return r.tlb_misses;
  };
  // EP: misses increase dramatically (paper: up to 8x).
  const double ep_ratio = static_cast<double>(tlb_misses("ep", true)) /
                          static_cast<double>(tlb_misses("ep", false));
  EXPECT_GT(ep_ratio, 3.0);
  EXPECT_LT(ep_ratio, 16.0);
  // LU: the exception — no increase (paper: "except for LU").
  const double lu_ratio = static_cast<double>(tlb_misses("lu", true)) /
                          static_cast<double>(tlb_misses("lu", false));
  EXPECT_LE(lu_ratio, 1.05);
}

TEST(PaperP8, SystempCommImprovesWithHugepages) {
  auto comm_time = [](const char* kernel, bool huge) {
    core::ClusterConfig cfg;
    cfg.platform = platform::systemp_gx_ehca();
    cfg.nodes = 2;
    cfg.ranks_per_node = 4;
    cfg.hugepage_library = huge;
    core::Cluster cluster(cfg);
    return workloads::run_nas(kernel, cluster).comm_avg;
  };
  // LU: above the paper's 8 % line; MG below it but still positive-ish.
  const double lu_gain =
      1.0 - static_cast<double>(comm_time("lu", true)) /
                static_cast<double>(comm_time("lu", false));
  EXPECT_GT(lu_gain, 0.08);
  const double mg_gain =
      1.0 - static_cast<double>(comm_time("mg", true)) /
                static_cast<double>(comm_time("mg", false));
  EXPECT_GT(mg_gain, -0.02);
  EXPECT_LT(mg_gain, 0.08);
}

}  // namespace
}  // namespace ibp
