// One-sided ring channels (EXT-RDMA): the rdma-eager MPI tier and the
// RPC response fast path. Framing, wrap handling, credit backpressure
// with two-sided fallback, and stats engagement are all asserted here;
// randomized protocol crossings live in mpi_fuzz_test.cpp and the fault
// crossings in fault_test.cpp.

#include "ibp/ringchan/ringchan.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "ibp/core/cluster.hpp"
#include "ibp/mpi/comm.hpp"
#include "ibp/rpc/rpc.hpp"

namespace ibp {
namespace {

std::uint8_t pattern(std::uint64_t seq, std::uint64_t i) {
  return static_cast<std::uint8_t>(seq * 131 + i * 7 + 1);
}

void fill(core::RankEnv& env, VirtAddr buf, std::uint64_t seq,
          std::uint64_t len) {
  auto s = env.space().host_span(buf, len);
  for (std::uint64_t i = 0; i < len; ++i) s[i] = pattern(seq, i);
}

void check(core::RankEnv& env, VirtAddr buf, std::uint64_t seq,
           std::uint64_t len) {
  auto s = env.space().host_span(buf, len);
  for (std::uint64_t i = 0; i < len; ++i)
    ASSERT_EQ(s[i], pattern(seq, i)) << "msg " << seq << " byte " << i;
}

TEST(RingChanConfig, RecordFootprintIsAligned) {
  EXPECT_EQ(ringchan::record_bytes(0), 16u);
  EXPECT_EQ(ringchan::record_bytes(1), 24u);
  EXPECT_EQ(ringchan::record_bytes(8), 24u);
  EXPECT_EQ(ringchan::record_bytes(9), 32u);
}

// Small sends ride the ring in both directions and enough traffic flows
// to wrap the slab several times and force credit-return writes.
TEST(RingChanMpi, EagerTrafficRidesRingWithWrapAndCredit) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  mpi::CommConfig mc;
  mc.rdma_eager = true;
  mc.ring.slab_bytes = 16 * kKiB;  // 200 x 1 KiB wraps many times
  mpi::CommStats st[2];
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, mc);
    const int me = comm.rank();
    const int peer = 1 - me;
    const int n = 200;
    const std::uint64_t len = 1000;
    const VirtAddr rbuf = env.alloc(len);
    const VirtAddr sbuf = env.alloc(len);
    for (int i = 0; i < n; ++i) {
      // Ping-pong so neither side overruns its ring without progress.
      if (me == 0) {
        fill(env, sbuf, static_cast<std::uint64_t>(i), len);
        comm.send(sbuf, len, peer, 7);
        comm.recv(rbuf, len, peer, 7);
        check(env, rbuf, static_cast<std::uint64_t>(i) + 1000, len);
      } else {
        comm.recv(rbuf, len, peer, 7);
        check(env, rbuf, static_cast<std::uint64_t>(i), len);
        fill(env, sbuf, static_cast<std::uint64_t>(i) + 1000, len);
        comm.send(sbuf, len, peer, 7);
      }
    }
    comm.barrier();
    st[me] = comm.stats();
  });
  for (int r = 0; r < 2; ++r) {
    EXPECT_GT(st[r].rdma_eager_sent, 150u) << "rank " << r;
    EXPECT_GT(st[r].rdma_eager_bytes, 150'000u) << "rank " << r;
    EXPECT_GT(st[r].rdma_credit_returns, 0u) << "rank " << r;
  }
}

// A sender that outruns the receiver exhausts ring credit and falls back
// to the two-sided eager path; every payload still arrives intact and in
// order (the per-source sequence numbers absorb the mixed transports).
TEST(RingChanMpi, CreditExhaustionFallsBackToTwoSided) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  mpi::CommConfig mc;
  mc.rdma_eager = true;
  mc.ring.slab_bytes = 8 * kKiB;
  mc.ring.max_record = 1024;
  mpi::CommStats sender;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, mc);
    const int n = 30;
    const std::uint64_t len = 512;
    if (comm.rank() == 0) {
      const VirtAddr buf = env.alloc(static_cast<std::uint64_t>(n) * len);
      std::vector<mpi::Req> reqs;
      for (int i = 0; i < n; ++i) {
        const VirtAddr b = buf + static_cast<std::uint64_t>(i) * len;
        fill(env, b, static_cast<std::uint64_t>(i), len);
        reqs.push_back(comm.isend(b, len, 1, 3));
      }
      for (auto& r : reqs) comm.wait(r);
      sender = comm.stats();
    } else {
      env.compute(us(500));  // let the sender hit the credit wall
      const VirtAddr buf = env.alloc(len);
      for (int i = 0; i < n; ++i) {
        comm.recv(buf, len, 0, 3);
        check(env, buf, static_cast<std::uint64_t>(i), len);
      }
    }
    comm.barrier();
  });
  EXPECT_GT(sender.rdma_eager_sent, 0u);
  EXPECT_GT(sender.rdma_eager_fallbacks, 0u)
      << "an 8 KiB ring cannot hold 30 x 512 B records without credit";
}

// Messages above ring.max_record never touch the ring.
TEST(RingChanMpi, OversizedEagerStaysTwoSided) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  mpi::CommConfig mc;
  mc.rdma_eager = true;
  mc.ring.max_record = 256;
  mpi::CommStats sender;
  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, mc);
    const std::uint64_t len = 4096;  // eager, but > max_record
    const VirtAddr buf = env.alloc(len);
    if (comm.rank() == 0) {
      fill(env, buf, 1, len);
      comm.send(buf, len, 1, 0);
      sender = comm.stats();
    } else {
      comm.recv(buf, len, 0, 0);
      check(env, buf, 1, len);
    }
    comm.barrier();
  });
  EXPECT_EQ(sender.rdma_eager_sent, 0u);
  EXPECT_EQ(sender.rdma_eager_fallbacks, 0u)
      << "size gating is not a credit fallback";
}

/// Two ranks on two nodes: rank 0 serves, rank 1 runs `client_fn`.
void with_ring_rpc(const rpc::RpcConfig& rc,
                   const std::function<void(rpc::RpcClient&)>& client_fn,
                   rpc::ServerStats* server_out = nullptr,
                   rpc::ClientStats* client_out = nullptr) {
  core::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  core::Cluster cluster(cfg);
  cluster.run([&](core::RankEnv& env) {
    mpi::CommConfig mc;
    mc.sge_gather = true;
    mpi::Comm comm(env, mc);
    if (env.rank() == 0) {
      rpc::RpcServer server(comm, {1}, rc);
      server.serve();
      if (server_out != nullptr) *server_out = server.stats();
      return;
    }
    rpc::RpcClient client(comm, 0, rc);
    client_fn(client);
    client.close();
    if (client_out != nullptr) *client_out = client.stats();
  });
}

TEST(RingChanRpc, ResponsesRideTheRing) {
  rpc::RpcConfig rc;
  rc.rdma_response = true;
  rpc::ServerStats ss;
  rpc::ClientStats cs;
  with_ring_rpc(
      rc,
      [](rpc::RpcClient& c) {
        std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 32; ++i) ids.push_back(c.submit(msg));
        for (std::uint64_t id : ids) {
          const rpc::Completion& done = c.wait(id);
          EXPECT_EQ(done.status, rpc::Status::Ok);
          EXPECT_EQ(done.payload, msg);
        }
      },
      &ss, &cs);
  EXPECT_EQ(ss.ring_responses, 33u)
      << "32 echoes + the credit-descriptor control record";
  EXPECT_EQ(ss.ring_fallbacks, 0u);
  EXPECT_EQ(ss.resp_batches, 0u) << "no two-sided batch should be needed";
  EXPECT_EQ(cs.ring_completions, 33u);
  EXPECT_EQ(cs.completed, 32u) << "the control record is not a completion";
}

// A response ring too small for the offered burst runs out of credit;
// overflow responses fall back to the batched two-sided path and every
// request still completes.
TEST(RingChanRpc, RingBackpressureFallsBackToBatches) {
  rpc::RpcConfig rc;
  rc.rdma_response = true;
  rc.response_ring_bytes = 4 * kKiB;
  rc.credits = 64;
  rpc::ServerStats ss;
  rpc::ClientStats cs;
  with_ring_rpc(
      rc,
      [](rpc::RpcClient& c) {
        std::vector<std::uint64_t> ids;
        for (int i = 0; i < 64; ++i)
          ids.push_back(c.submit({}, /*response_cap=*/1024));
        ASSERT_EQ(ids.size(), 64u);
        for (std::uint64_t id : ids) {
          const rpc::Completion& done = c.wait(id);
          EXPECT_EQ(done.status, rpc::Status::Ok);
          EXPECT_EQ(done.payload.size(), 1024u);
        }
      },
      &ss, &cs);
  EXPECT_GT(ss.ring_responses, 0u);
  EXPECT_GT(ss.ring_fallbacks, 0u)
      << "a 4 KiB ring holds only ~3 outstanding 1 KiB responses";
  EXPECT_GT(ss.resp_batches, 0u);
  EXPECT_GT(cs.ring_completions, 0u);
  EXPECT_EQ(cs.completed, 64u);
  EXPECT_GT(cs.ring_credit_returns, 0u)
      << "draining 64 KiB of responses through a 4 KiB ring returns credit";
}

// Large responses announce through the ring; the body still travels
// out-of-band on its own tag.
TEST(RingChanRpc, LargeResponsesAnnounceViaRing) {
  rpc::RpcConfig rc;
  rc.rdma_response = true;
  rpc::ServerStats ss;
  rpc::ClientStats cs;
  with_ring_rpc(
      rc,
      [&](rpc::RpcClient& c) {
        const std::uint32_t want = 8 * kKiB;  // > max_payload (2 KiB)
        const std::uint64_t id = c.submit({}, want);
        const rpc::Completion& done = c.wait(id);
        EXPECT_EQ(done.status, rpc::Status::Ok);
        EXPECT_EQ(done.payload.size(), want);
      },
      &ss, &cs);
  EXPECT_EQ(ss.large_responses, 1u);
  EXPECT_EQ(cs.large_responses, 1u);
  EXPECT_GE(ss.ring_responses, 1u) << "the announce record rides the ring";
}

// rdma_response off must not construct rings, register ring probes or
// consume ring stats — the tier is bit-inert by default.
TEST(RingChanRpc, DisabledTierLeavesStatsUntouched) {
  rpc::ServerStats ss;
  rpc::ClientStats cs;
  with_ring_rpc(
      {},
      [](rpc::RpcClient& c) {
        const std::vector<std::uint8_t> msg = {9, 9};
        const std::uint64_t id = c.submit(msg);
        EXPECT_EQ(c.wait(id).status, rpc::Status::Ok);
      },
      &ss, &cs);
  EXPECT_EQ(ss.ring_responses, 0u);
  EXPECT_EQ(ss.ring_fallbacks, 0u);
  EXPECT_EQ(cs.ring_completions, 0u);
  EXPECT_EQ(cs.ring_credit_returns, 0u);
}

}  // namespace
}  // namespace ibp
