// Parameterized property sweep over the registration cost model: for any
// buffer size and page/driver combination, cost decomposes exactly into
// base + pin * npages + (build+ship) * ntrans, and the hugepage/4K cost
// ratio shrinks monotonically toward the paper's ~1 % as buffers grow.

#include <gtest/gtest.h>

#include "ibp/hca/adapter.hpp"
#include "ibp/platform/platform.hpp"

namespace ibp::hca {
namespace {

struct RegCase {
  std::uint64_t bytes;
  mem::PageKind kind;
  bool patched;  // ship native translations for hugepage mappings
};

class RegSweep : public ::testing::TestWithParam<RegCase> {};

TEST_P(RegSweep, CostDecomposesExactly) {
  const auto [bytes, kind, patched] = GetParam();
  const auto plat = platform::opteron_pcie_infinihost();
  mem::PhysicalMemory pm(512 * kMiB, 128, 3);
  mem::HugeTlbFs fs(&pm, 128, 0);
  mem::AddressSpace as(&pm, &fs);
  Adapter hca(0, plat.adapter);

  auto& m = as.map(bytes, kind);
  const std::uint64_t os_page = page_size_of(kind);
  const std::uint64_t trans_page =
      (kind == mem::PageKind::Huge && patched) ? kHugePageSize
                                               : kSmallPageSize;
  const auto r = hca.reg_mr(as, m.va_base, bytes, trans_page);

  const std::uint64_t npages = div_ceil(bytes, os_page);
  const std::uint64_t ntrans = div_ceil(bytes, trans_page);
  EXPECT_EQ(r.mr->npages, npages);
  EXPECT_EQ(r.mr->ntrans, ntrans);
  const auto& c = plat.adapter;
  EXPECT_EQ(r.cost, c.reg_base + npages * c.pin_per_page +
                        ntrans * (c.trans_build_per_entry +
                                  c.trans_ship_per_entry));

  // Deregistration symmetry: pages unpinned, cost model exact.
  const TimePs dereg = hca.dereg_mr(r.mr->lkey);
  EXPECT_EQ(dereg, c.dereg_base + npages * c.unpin_per_page);
  EXPECT_EQ(as.pinned_pages(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RegSweep,
    ::testing::Values(
        RegCase{4 * kKiB, mem::PageKind::Small, true},
        RegCase{64 * kKiB, mem::PageKind::Small, true},
        RegCase{1 * kMiB, mem::PageKind::Small, true},
        RegCase{16 * kMiB, mem::PageKind::Small, true},
        RegCase{2 * kMiB, mem::PageKind::Huge, true},
        RegCase{2 * kMiB, mem::PageKind::Huge, false},
        RegCase{16 * kMiB, mem::PageKind::Huge, true},
        RegCase{16 * kMiB, mem::PageKind::Huge, false},
        RegCase{100 * kMiB, mem::PageKind::Huge, true}),
    [](const auto& info) {
      return std::to_string(info.param.bytes / kKiB) + "KB_" +
             (info.param.kind == mem::PageKind::Huge ? "huge" : "small") +
             (info.param.patched ? "_patched" : "_stock");
    });

TEST(RegRatio, ShrinksTowardOnePercentWithSize) {
  const auto plat = platform::opteron_pcie_infinihost();
  mem::PhysicalMemory pm(1 * kGiB, 256, 3);
  mem::HugeTlbFs fs(&pm, 256, 0);
  mem::AddressSpace as(&pm, &fs);
  Adapter hca(0, plat.adapter);

  double prev_ratio = 1.0;
  for (std::uint64_t bytes = 2 * kMiB; bytes <= 128 * kMiB; bytes *= 2) {
    auto& ms = as.map(bytes, mem::PageKind::Small);
    auto& mh = as.map(bytes, mem::PageKind::Huge);
    const auto rs = hca.reg_mr(as, ms.va_base, bytes, kSmallPageSize);
    const auto rh = hca.reg_mr(as, mh.va_base, bytes, kHugePageSize);
    const double ratio =
        static_cast<double>(rh.cost) / static_cast<double>(rs.cost);
    EXPECT_LT(ratio, prev_ratio) << "ratio must shrink with size";
    prev_ratio = ratio;
    hca.dereg_mr(rs.mr->lkey);
    hca.dereg_mr(rh.mr->lkey);
    as.unmap(ms.va_base);
    as.unmap(mh.va_base);
  }
  EXPECT_LT(prev_ratio, 0.01) << "large buffers must reach the ~1 % regime";
}

}  // namespace
}  // namespace ibp::hca
