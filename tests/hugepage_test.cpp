#include "ibp/hugepage/library.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ibp/workloads/alloc_trace.hpp"

namespace ibp::hugepage {
namespace {

struct World {
  World(std::uint64_t huge_pages = 64, std::uint64_t reserve = 2)
      : pm(256 * kMiB, huge_pages, 11),
        fs(&pm, huge_pages, reserve),
        as(&pm, &fs) {}
  mem::PhysicalMemory pm;
  mem::HugeTlbFs fs;
  mem::AddressSpace as;
};

// --------------------------------------------------------------------------
// HugeHeap

TEST(HugeHeap, AllocatesChunkMultiples) {
  World w;
  HugeHeap heap(w.as, w.fs);
  const auto r = heap.allocate(100);
  EXPECT_NE(r.addr, 0u);
  EXPECT_EQ(heap.block_size(r.addr), 100u);
  // 4 KB chunk granularity (§3.2 #4).
  EXPECT_EQ(r.addr % (4 * kKiB), 0u);
  heap.check_invariants();
}

TEST(HugeHeap, BuffersShareHugepages) {
  World w;
  HugeHeap heap(w.as, w.fs);
  const auto a = heap.allocate(40 * kKiB);
  const auto b = heap.allocate(40 * kKiB);
  // Consecutive buffers land 40 KB apart inside one mapping — the
  // locality property libhugepagealloc lacks (§2).
  EXPECT_EQ(b.addr - a.addr, 40 * kKiB);
  EXPECT_EQ(heap.stats().regions_mapped, 1u);
}

TEST(HugeHeap, NoCoalesceOnFreeKeepsBlocksSplit) {
  World w;
  HugeHeap heap(w.as, w.fs);
  const auto a = heap.allocate(64 * kKiB);
  const auto b = heap.allocate(64 * kKiB);
  heap.deallocate(a.addr);
  heap.deallocate(b.addr);
  // Adjacent free blocks stay separate (§3.2 #5)...
  EXPECT_EQ(heap.free_blocks(), 3u);  // a, b, and the tail of the region
  // ...and same-size reuse gets the first (address-ordered) one back.
  const auto c = heap.allocate(64 * kKiB);
  EXPECT_EQ(c.addr, a.addr);
  heap.check_invariants();
}

TEST(HugeHeap, CoalesceModeMerges) {
  World w;
  HugeHeapConfig cfg;
  cfg.coalesce_on_free = true;
  HugeHeap heap(w.as, w.fs, cfg);
  const auto a = heap.allocate(64 * kKiB);
  const auto b = heap.allocate(64 * kKiB);
  heap.deallocate(a.addr);
  heap.deallocate(b.addr);
  EXPECT_EQ(heap.free_blocks(), 1u);
  EXPECT_GE(heap.stats().coalesces, 2u);
  heap.check_invariants();
}

TEST(HugeHeap, SplitsLargeFreeBlocks) {
  World w;
  HugeHeap heap(w.as, w.fs);
  const auto a = heap.allocate(100 * kKiB);
  heap.deallocate(a.addr);
  const auto b = heap.allocate(40 * kKiB);
  EXPECT_EQ(b.addr, a.addr);  // first fit reuses the front
  EXPECT_GE(heap.stats().splits, 1u);
  heap.check_invariants();
}

TEST(HugeHeap, GrowsByWholeHugepages) {
  World w;
  HugeHeap heap(w.as, w.fs);
  heap.allocate(40 * kKiB);
  EXPECT_EQ(heap.stats().bytes_mapped % kHugePageSize, 0u);
  // A request larger than the growth quantum maps what it needs.
  const auto big = heap.allocate(20 * kMiB);
  EXPECT_NE(big.addr, 0u);
  heap.check_invariants();
}

TEST(HugeHeap, RespectsLibraryReserve) {
  World w(/*huge_pages=*/10, /*kernel reserve=*/2);
  HugeHeapConfig cfg;
  cfg.lib_reserve_pages = 3;
  cfg.min_map_bytes = 2 * kMiB;
  HugeHeap heap(w.as, w.fs, cfg);
  // Available to the heap: 10 - 2 (kernel) - 3 (library) = 5 pages.
  const auto ok = heap.allocate(5 * kMiB);  // 3 pages
  EXPECT_NE(ok.addr, 0u);
  const auto too_big = heap.allocate(5 * kMiB);  // needs 3 more, only 2 left
  EXPECT_EQ(too_big.addr, 0u);
  EXPECT_EQ(heap.stats().failed_allocs, 1u);
  // The reserve is still intact for fork/COW.
  EXPECT_GE(w.fs.available(), 2u);
}

TEST(HugeHeap, DoubleFreeThrows) {
  World w;
  HugeHeap heap(w.as, w.fs);
  const auto a = heap.allocate(40 * kKiB);
  heap.deallocate(a.addr);
  EXPECT_THROW(heap.deallocate(a.addr), SimError);
}

TEST(HugeHeap, FitPolicies) {
  for (const FitPolicy fit :
       {FitPolicy::AddressOrderedFirstFit, FitPolicy::BestFit,
        FitPolicy::LifoFirstFit}) {
    World w;
    HugeHeapConfig cfg;
    cfg.fit = fit;
    HugeHeap heap(w.as, w.fs, cfg);
    // Free blocks of 64K, 40K, 64K; then allocate 40K.
    const auto a = heap.allocate(64 * kKiB);
    const auto pad1 = heap.allocate(4 * kKiB);
    const auto b = heap.allocate(40 * kKiB);
    const auto pad2 = heap.allocate(4 * kKiB);
    const auto c = heap.allocate(64 * kKiB);
    heap.deallocate(a.addr);
    heap.deallocate(b.addr);
    heap.deallocate(c.addr);
    const auto got = heap.allocate(40 * kKiB);
    if (fit == FitPolicy::AddressOrderedFirstFit) {
      EXPECT_EQ(got.addr, a.addr) << "first fit takes the lowest address";
    } else if (fit == FitPolicy::BestFit) {
      EXPECT_EQ(got.addr, b.addr) << "best fit takes the exact match";
    } else {
      EXPECT_EQ(got.addr, c.addr) << "LIFO takes the most recently freed";
    }
    heap.deallocate(got.addr);
    heap.deallocate(pad1.addr);
    heap.deallocate(pad2.addr);
    heap.check_invariants();
  }
}

// --------------------------------------------------------------------------
// LibcHeap

TEST(LibcHeap, AlignedPayloads) {
  World w;
  LibcHeap heap(w.as);
  for (std::uint64_t size : {1ull, 7ull, 16ull, 100ull, 4096ull}) {
    const auto r = heap.allocate(size);
    EXPECT_EQ(r.addr % 16, 0u);
    EXPECT_EQ(heap.block_size(r.addr), size);
  }
  heap.check_invariants();
}

TEST(LibcHeap, CoalescesOnFree) {
  World w;
  LibcHeap heap(w.as);
  const auto a = heap.allocate(1000);
  const auto b = heap.allocate(1000);
  const auto c = heap.allocate(1000);
  heap.deallocate(a.addr);
  heap.deallocate(c.addr);
  const auto blocks_before = heap.free_blocks();
  heap.deallocate(b.addr);  // merges with both neighbours
  EXPECT_EQ(heap.free_blocks(), blocks_before - 1);
  EXPECT_GE(heap.stats().coalesces, 2u);
  heap.check_invariants();
}

TEST(LibcHeap, MmapThresholdRoutesLargeBlocks) {
  World w;
  LibcHeap heap(w.as);
  const auto big = heap.allocate(1 * kMiB);
  EXPECT_NE(big.addr, 0u);
  // Dedicated mapping: address far from arena blocks.
  const auto small = heap.allocate(100);
  EXPECT_NE(heap.owns(big.addr), false);
  heap.deallocate(big.addr);
  heap.deallocate(small.addr);
  heap.check_invariants();
}

TEST(LibcHeap, DynamicMmapThresholdAdapts) {
  World w;
  LibcHeap heap(w.as);
  const std::uint64_t initial = heap.mmap_threshold();
  const auto a = heap.allocate(512 * kKiB);
  heap.deallocate(a.addr);
  EXPECT_GT(heap.mmap_threshold(), initial);
  EXPECT_GT(heap.mmap_threshold(), 512 * kKiB);
  // The same size now comes from the arena (no fresh mapping).
  const auto regions = heap.stats().regions_mapped;
  const auto b = heap.allocate(512 * kKiB);
  heap.deallocate(b.addr);
  EXPECT_LE(heap.stats().regions_mapped, regions + 1);  // arena growth only
  heap.check_invariants();
}

TEST(LibcHeap, ChurnCausesCoalesceSplitPattern) {
  // The Abinit pathology (§3.2 #5): same-size alloc/free churn makes the
  // coalescing allocator merge + split continuously.
  World w;
  LibcHeap heap(w.as);
  std::vector<VirtAddr> live;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 8; ++i) live.push_back(heap.allocate(3000).addr);
    for (VirtAddr a : live) heap.deallocate(a);
    live.clear();
  }
  EXPECT_GT(heap.stats().coalesces, 100u);
  EXPECT_GT(heap.stats().splits, 100u);
  heap.check_invariants();
}

// --------------------------------------------------------------------------
// Library (transparency layer)

TEST(Library, ThresholdRouting) {
  World w;
  Library lib(w.as, w.fs);
  const auto small = lib.malloc(31 * kKiB);
  const auto big = lib.malloc(32 * kKiB);
  EXPECT_FALSE(lib.in_hugepages(small.addr));
  EXPECT_TRUE(lib.in_hugepages(big.addr));
  EXPECT_EQ(lib.stats().libc_allocs, 1u);
  EXPECT_EQ(lib.stats().huge_allocs, 1u);
  lib.free(small.addr);
  lib.free(big.addr);
  lib.check_invariants();
}

TEST(Library, DisabledSendsEverythingToLibc) {
  World w;
  LibraryConfig cfg;
  cfg.enabled = false;
  Library lib(w.as, w.fs, cfg);
  const auto big = lib.malloc(8 * kMiB);
  EXPECT_FALSE(lib.in_hugepages(big.addr));
  EXPECT_EQ(w.fs.used(), 0u);
}

TEST(Library, FallsBackWhenPoolExhausted) {
  World w(/*huge_pages=*/6, /*reserve=*/0);
  LibraryConfig lcfg;
  lcfg.huge.min_map_bytes = 2 * kMiB;
  Library lib(w.as, w.fs, lcfg);
  // First big alloc eats most of the pool (4 of 6 pages usable after the
  // library's own reserve of 4).
  const auto a = lib.malloc(2 * kMiB);
  EXPECT_TRUE(lib.in_hugepages(a.addr));
  const auto b = lib.malloc(16 * kMiB);  // cannot fit: falls back
  EXPECT_NE(b.addr, 0u);
  EXPECT_FALSE(lib.in_hugepages(b.addr));
  EXPECT_EQ(lib.stats().fallback_allocs, 1u);
}

TEST(Library, FreeDispatchesToOwningHeap) {
  World w;
  Library lib(w.as, w.fs);
  std::vector<VirtAddr> addrs;
  for (int i = 0; i < 10; ++i) {
    addrs.push_back(lib.malloc(8 * kKiB).addr);
    addrs.push_back(lib.malloc(64 * kKiB).addr);
  }
  for (VirtAddr a : addrs) lib.free(a);
  lib.check_invariants();
  EXPECT_EQ(lib.huge_heap().stats().allocs,
            lib.huge_heap().stats().frees);
  EXPECT_EQ(lib.libc_heap().stats().allocs, lib.libc_heap().stats().frees);
}

// Property test: replay the Abinit trace at several configurations; the
// heap invariants must hold throughout, and data written to each live
// block must survive until its free.
class LibraryTraceProperty
    : public ::testing::TestWithParam<std::tuple<bool, FitPolicy, bool>> {};

TEST_P(LibraryTraceProperty, InvariantsAndDataIntegrity) {
  const auto [enabled, fit, coalesce] = GetParam();
  World w(256, 2);
  LibraryConfig cfg;
  cfg.enabled = enabled;
  cfg.huge.fit = fit;
  cfg.huge.coalesce_on_free = coalesce;
  Library lib(w.as, w.fs, cfg);

  workloads::TraceConfig tcfg;
  tcfg.iterations = 20;
  const auto ops = workloads::make_abinit_trace(tcfg);
  std::vector<VirtAddr> slots(workloads::trace_slot_count(tcfg));
  std::map<VirtAddr, std::uint8_t> tags;
  std::uint8_t next_tag = 1;

  for (const auto& op : ops) {
    if (op.kind == workloads::TraceOp::Kind::Malloc) {
      const auto r = lib.malloc(op.size);
      ASSERT_NE(r.addr, 0u);
      slots[op.slot] = r.addr;
      // Tag the first/last bytes; they must survive other ops.
      auto span = w.as.host_span(r.addr, op.size);
      span.front() = next_tag;
      span.back() = next_tag;
      tags[r.addr] = next_tag++;
    } else {
      const VirtAddr a = slots[op.slot];
      const std::uint64_t size = lib.block_size(a);
      auto span = w.as.host_span(a, size);
      ASSERT_EQ(span.front(), tags[a]) << "block header corrupted";
      ASSERT_EQ(span.back(), tags[a]) << "block tail corrupted";
      tags.erase(a);
      lib.free(a);
    }
    if (next_tag % 64 == 0) lib.check_invariants();
  }
  lib.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LibraryTraceProperty,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(FitPolicy::AddressOrderedFirstFit,
                                         FitPolicy::BestFit,
                                         FitPolicy::LifoFirstFit),
                       ::testing::Bool()));

}  // namespace
}  // namespace ibp::hugepage

namespace ibp::hugepage {
namespace {

TEST(LibraryCallocRealloc, CallocZeroes) {
  World w;
  Library lib(w.as, w.fs);
  const auto r = lib.calloc(1000, 64, w.as);  // 64 KB -> hugepages
  ASSERT_NE(r.addr, 0u);
  EXPECT_TRUE(lib.in_hugepages(r.addr));
  auto s = w.as.host_span(r.addr, 64000);
  for (std::size_t i = 0; i < s.size(); i += 97) ASSERT_EQ(s[i], 0);
  // Zeroing is charged.
  EXPECT_GT(r.cost, 64000u / 8);
  lib.free(r.addr);
  lib.check_invariants();
}

TEST(LibraryCallocRealloc, CallocOverflowThrows) {
  World w;
  Library lib(w.as, w.fs);
  EXPECT_THROW(lib.calloc(~0ull, 16, w.as), SimError);
}

TEST(LibraryCallocRealloc, ReallocPreservesPrefix) {
  World w;
  Library lib(w.as, w.fs);
  const auto a = lib.malloc(100 * kKiB);
  auto s = w.as.host_span(a.addr, 100 * kKiB);
  for (std::size_t i = 0; i < s.size(); ++i)
    s[i] = static_cast<std::uint8_t>(i * 31);
  const auto b = lib.realloc(a.addr, 400 * kKiB, w.as);
  ASSERT_NE(b.addr, 0u);
  auto d = w.as.host_span(b.addr, 100 * kKiB);
  for (std::size_t i = 0; i < d.size(); i += 41)
    ASSERT_EQ(d[i], static_cast<std::uint8_t>(i * 31));
  lib.free(b.addr);
  lib.check_invariants();
}

TEST(LibraryCallocRealloc, ReallocInPlaceWithinChunkRounding) {
  World w;
  Library lib(w.as, w.fs);
  const auto a = lib.malloc(62 * kKiB);  // rounds to 64 KB of chunks
  const auto b = lib.realloc(a.addr, 63 * kKiB, w.as);
  EXPECT_EQ(b.addr, a.addr) << "growth inside the rounding is in-place";
  const auto c = lib.realloc(b.addr, 500 * kKiB, w.as);
  EXPECT_NE(c.addr, a.addr);
  lib.free(c.addr);
  lib.check_invariants();
}

TEST(LibraryCallocRealloc, ReallocNullIsMalloc) {
  World w;
  Library lib(w.as, w.fs);
  const auto r = lib.realloc(0, 40 * kKiB, w.as);
  EXPECT_NE(r.addr, 0u);
  lib.free(r.addr);
}

}  // namespace
}  // namespace ibp::hugepage

namespace ibp::hugepage {
namespace {

TEST(HugeHeapCoalesceAll, MergesAdjacentFreeBlocks) {
  World w;
  HugeHeap heap(w.as, w.fs);
  std::vector<VirtAddr> blocks;
  for (int i = 0; i < 6; ++i) blocks.push_back(heap.allocate(64 * kKiB).addr);
  for (VirtAddr a : blocks) heap.deallocate(a);
  EXPECT_EQ(heap.free_blocks(), 7u);  // 6 fragments + region tail
  TimePs cost = 0;
  const std::uint64_t merges = heap.coalesce_all(&cost);
  EXPECT_EQ(merges, 6u);
  EXPECT_EQ(heap.free_blocks(), 1u);
  EXPECT_GT(cost, 0u);
  heap.check_invariants();
  // A big allocation now fits contiguously without growth.
  const auto big = heap.allocate(300 * kKiB);
  EXPECT_EQ(big.addr, blocks[0]);
}

TEST(HugeHeapCoalesceAll, StopsAtLiveBlocksAndRegionEdges) {
  World w;
  HugeHeap heap(w.as, w.fs);
  const auto a = heap.allocate(64 * kKiB);
  const auto live = heap.allocate(64 * kKiB);
  const auto b = heap.allocate(64 * kKiB);
  heap.deallocate(a.addr);
  heap.deallocate(b.addr);
  // Layout: [a free][live][b free][region tail]: only b+tail can merge.
  const std::uint64_t merges = heap.coalesce_all(nullptr);
  EXPECT_EQ(merges, 1u);
  EXPECT_EQ(heap.free_blocks(), 2u) << "a must stay split off by the live "
                                       "block";
  heap.deallocate(live.addr);
  heap.check_invariants();
}

}  // namespace
}  // namespace ibp::hugepage

namespace ibp::hugepage {
namespace {

class MemalignSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(MemalignSweep, PayloadAlignedAndIntact) {
  const auto [alignment, size] = GetParam();
  World w;
  Library lib(w.as, w.fs);
  // Perturb the heap first so aligned requests land mid-arena.
  const auto junk = lib.malloc(100);
  const auto r = lib.memalign(alignment, size);
  ASSERT_NE(r.addr, 0u);
  EXPECT_EQ(r.addr % alignment, 0u);
  auto s = w.as.host_span(r.addr, size);
  s.front() = 0x5A;
  s.back() = 0xA5;
  EXPECT_EQ(lib.block_size(r.addr), size);
  lib.free(r.addr);
  lib.free(junk.addr);
  lib.check_invariants();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MemalignSweep,
    ::testing::Combine(::testing::Values(16ull, 64ull, 256ull, 4096ull),
                       ::testing::Values(8ull, 100ull, 5000ull,
                                         64ull * kKiB)),
    [](const auto& info) {
      return "a" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Memalign, NeighboursSurviveAlignedCarving) {
  World w;
  Library lib(w.as, w.fs);
  const auto a = lib.malloc(100);
  auto sa = w.as.host_span(a.addr, 100);
  std::fill(sa.begin(), sa.end(), static_cast<std::uint8_t>(0x11));
  const auto b = lib.memalign(256, 1000);
  const auto c = lib.malloc(100);
  auto sc = w.as.host_span(c.addr, 100);
  std::fill(sc.begin(), sc.end(), static_cast<std::uint8_t>(0x33));
  EXPECT_EQ(b.addr % 256, 0u);
  EXPECT_EQ(w.as.host_span(a.addr, 1)[0], 0x11);
  EXPECT_EQ(w.as.host_span(c.addr, 1)[0], 0x33);
  lib.free(b.addr);
  lib.free(a.addr);
  lib.free(c.addr);
  lib.check_invariants();
}

}  // namespace
}  // namespace ibp::hugepage
