#include "ibp/hca/adapter.hpp"

#include <gtest/gtest.h>

#include "ibp/hca/completion_queue.hpp"

namespace ibp::hca {
namespace {

struct TwoNodes {
  TwoNodes() {
    qa = &a.create_qp(&a_scq, &a_rcq);
    qb = &b.create_qp(&b_scq, &b_rcq);
    qa->connect(qb);
    qb->connect(qa);
  }

  AdapterConfig cfg;
  mem::PhysicalMemory pm_a{64 * kMiB, 16, 1};
  mem::PhysicalMemory pm_b{64 * kMiB, 16, 2};
  mem::HugeTlbFs fs_a{&pm_a, 16, 0};
  mem::HugeTlbFs fs_b{&pm_b, 16, 0};
  mem::AddressSpace as_a{&pm_a, &fs_a};
  mem::AddressSpace as_b{&pm_b, &fs_b};
  Adapter a{0, AdapterConfig{}};
  Adapter b{1, AdapterConfig{}};
  CompletionQueue a_scq, a_rcq, b_scq, b_rcq;
  QueuePair* qa = nullptr;
  QueuePair* qb = nullptr;
};

TEST(CompletionQueue, OrdersByReadyTime) {
  CompletionQueue cq;
  Cqe c1, c2, c3;
  c1.wr_id = 1;
  c1.ready_time = ns(300);
  c2.wr_id = 2;
  c2.ready_time = ns(100);
  c3.wr_id = 3;
  c3.ready_time = ns(200);
  cq.push(c1);
  cq.push(c2);
  cq.push(c3);
  EXPECT_EQ(cq.next_ready(), ns(100));
  EXPECT_FALSE(cq.poll(ns(50)).has_value());
  EXPECT_EQ(cq.poll(ns(1000))->wr_id, 2u);
  EXPECT_EQ(cq.poll(ns(1000))->wr_id, 3u);
  EXPECT_EQ(cq.poll(ns(1000))->wr_id, 1u);
  EXPECT_FALSE(cq.next_ready().has_value());
}

TEST(CompletionQueue, StableForEqualTimes) {
  CompletionQueue cq;
  for (int i = 0; i < 5; ++i) {
    Cqe c;
    c.wr_id = static_cast<std::uint64_t>(i);
    c.ready_time = ns(100);
    cq.push(c);
  }
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(cq.poll(ns(100))->wr_id, static_cast<std::uint64_t>(i));
}

TEST(Registration, CostScalesWithPageCount) {
  TwoNodes t;
  auto& m4k = t.as_a.map(1 * kMiB, mem::PageKind::Small);
  auto& m2m = t.as_a.map(2 * kMiB, mem::PageKind::Huge);
  const auto r4k = t.a.reg_mr(t.as_a, m4k.va_base, 1 * kMiB, kSmallPageSize);
  const auto r2m_native =
      t.a.reg_mr(t.as_a, m2m.va_base, 2 * kMiB, kHugePageSize);
  // 256 pages pinned + 256 translations vs 1 + 1: order-of-magnitude gap.
  EXPECT_GT(r4k.cost, 10 * r2m_native.cost);
  EXPECT_EQ(r4k.mr->npages, 256u);
  EXPECT_EQ(r4k.mr->ntrans, 256u);
  EXPECT_EQ(r2m_native.mr->npages, 1u);
  EXPECT_EQ(r2m_native.mr->ntrans, 1u);
}

TEST(Registration, StockDriverShipsPretend4kTranslations) {
  TwoNodes t;
  auto& m = t.as_a.map(2 * kMiB, mem::PageKind::Huge);
  const auto r = t.a.reg_mr(t.as_a, m.va_base, 2 * kMiB, kSmallPageSize);
  EXPECT_EQ(r.mr->npages, 1u);     // pin per OS page
  EXPECT_EQ(r.mr->ntrans, 512u);   // but 4 KB entries to the NIC
}

TEST(Registration, PinsAndUnpinsPages) {
  TwoNodes t;
  auto& m = t.as_a.map(64 * kKiB, mem::PageKind::Small);
  const auto r = t.a.reg_mr(t.as_a, m.va_base, 64 * kKiB, kSmallPageSize);
  EXPECT_EQ(t.as_a.pinned_pages(), 16u);
  t.a.dereg_mr(r.mr->lkey);
  EXPECT_EQ(t.as_a.pinned_pages(), 0u);
}

TEST(Registration, UnknownDeregThrows) {
  TwoNodes t;
  EXPECT_THROW(t.a.dereg_mr(999), SimError);
}

TEST(SendRecv, MovesBytesAndCompletesInOrder) {
  TwoNodes t;
  auto& ma = t.as_a.map(64 * kKiB, mem::PageKind::Small);
  auto& mb = t.as_b.map(64 * kKiB, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 64 * kKiB, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 64 * kKiB, kSmallPageSize);

  auto src = t.as_a.host_span(ma.va_base, 4096);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 3);

  RecvWr rwr;
  rwr.wr_id = 77;
  rwr.sges = {{mb.va_base, 4096, rb.mr->lkey}};
  t.qb->post_recv(rwr, 0);

  SendWr swr;
  swr.wr_id = 55;
  swr.opcode = Opcode::Send;
  swr.has_imm = true;
  swr.imm = 0xabcd;
  swr.sges = {{ma.va_base, 4096, ra.mr->lkey}};
  t.qa->post_send(swr, 0);

  const auto scqe = t.a_scq.poll(ms(10));
  ASSERT_TRUE(scqe);
  EXPECT_EQ(scqe->wr_id, 55u);
  EXPECT_EQ(scqe->status, CqeStatus::Success);

  const auto rcqe = t.b_rcq.poll(ms(10));
  ASSERT_TRUE(rcqe);
  EXPECT_EQ(rcqe->wr_id, 77u);
  EXPECT_EQ(rcqe->byte_len, 4096u);
  EXPECT_TRUE(rcqe->has_imm);
  EXPECT_EQ(rcqe->imm, 0xabcdu);
  // Recv completes no earlier than the wire allows.
  EXPECT_GT(rcqe->ready_time, t.cfg.wire_latency);

  auto dst = t.as_b.host_span(mb.va_base, 4096);
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(i * 3));
}

TEST(SendRecv, LateRecvStillMatches) {
  TwoNodes t;
  auto& ma = t.as_a.map(4096, mem::PageKind::Small);
  auto& mb = t.as_b.map(4096, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 4096, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 4096, kSmallPageSize);

  SendWr swr;
  swr.sges = {{ma.va_base, 128, ra.mr->lkey}};
  t.qa->post_send(swr, 0);
  EXPECT_EQ(t.qb->unmatched_inbound(), 1u);

  RecvWr rwr;
  rwr.sges = {{mb.va_base, 4096, rb.mr->lkey}};
  t.qb->post_recv(rwr, ms(5));  // posted long after arrival
  const auto cqe = t.b_rcq.poll(ms(10));
  ASSERT_TRUE(cqe);
  // Completion waits for the post, not just the arrival.
  EXPECT_GE(cqe->ready_time, ms(5));
}

TEST(SendRecv, TruncationYieldsErrorCqe) {
  TwoNodes t;
  auto& ma = t.as_a.map(4096, mem::PageKind::Small);
  auto& mb = t.as_b.map(4096, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 4096, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 4096, kSmallPageSize);

  RecvWr rwr;
  rwr.sges = {{mb.va_base, 64, rb.mr->lkey}};
  t.qb->post_recv(rwr, 0);
  SendWr swr;
  swr.sges = {{ma.va_base, 1024, ra.mr->lkey}};
  t.qa->post_send(swr, 0);
  const auto cqe = t.b_rcq.poll(ms(10));
  ASSERT_TRUE(cqe);
  EXPECT_EQ(cqe->status, CqeStatus::LocalLengthError);
}

TEST(SendRecv, MultiSgeGatherScatter) {
  TwoNodes t;
  auto& ma = t.as_a.map(4 * kSmallPageSize, mem::PageKind::Small);
  auto& mb = t.as_b.map(4 * kSmallPageSize, mem::PageKind::Small);
  const auto ra =
      t.a.reg_mr(t.as_a, ma.va_base, 4 * kSmallPageSize, kSmallPageSize);
  const auto rb =
      t.b.reg_mr(t.as_b, mb.va_base, 4 * kSmallPageSize, kSmallPageSize);

  // Three source pieces, two destination pieces.
  for (int p = 0; p < 3; ++p) {
    auto s = t.as_a.host_span(ma.va_base + p * kSmallPageSize, 100);
    std::fill(s.begin(), s.end(), static_cast<std::uint8_t>('A' + p));
  }
  RecvWr rwr;
  rwr.sges = {{mb.va_base, 150, rb.mr->lkey},
              {mb.va_base + kSmallPageSize, 4096, rb.mr->lkey}};
  t.qb->post_recv(rwr, 0);
  SendWr swr;
  swr.sges = {{ma.va_base, 100, ra.mr->lkey},
              {ma.va_base + kSmallPageSize, 100, ra.mr->lkey},
              {ma.va_base + 2 * kSmallPageSize, 100, ra.mr->lkey}};
  t.qa->post_send(swr, 0);
  const auto cqe = t.b_rcq.poll(ms(10));
  ASSERT_TRUE(cqe);
  EXPECT_EQ(cqe->byte_len, 300u);
  // First 150 bytes land in SGE 0 (100xA + 50xB), rest in SGE 1.
  auto d0 = t.as_b.host_span(mb.va_base, 150);
  EXPECT_EQ(d0[0], 'A');
  EXPECT_EQ(d0[99], 'A');
  EXPECT_EQ(d0[100], 'B');
  EXPECT_EQ(d0[149], 'B');
  auto d1 = t.as_b.host_span(mb.va_base + kSmallPageSize, 150);
  EXPECT_EQ(d1[0], 'B');
  EXPECT_EQ(d1[49], 'B');
  EXPECT_EQ(d1[50], 'C');
  EXPECT_EQ(d1[149], 'C');
}

TEST(SendRecv, PostCostGrowsPerSge) {
  TwoNodes t;
  auto& ma = t.as_a.map(16 * kSmallPageSize, mem::PageKind::Small);
  const auto ra =
      t.a.reg_mr(t.as_a, ma.va_base, 16 * kSmallPageSize, kSmallPageSize);
  auto post_cost = [&](std::uint32_t nsges) {
    SendWr wr;
    for (std::uint32_t i = 0; i < nsges; ++i)
      wr.sges.push_back({ma.va_base + i * kSmallPageSize, 8, ra.mr->lkey});
    return t.qa->post_send(wr, 0);
  };
  const TimePs c1 = post_cost(1);
  const TimePs c8 = post_cost(8);
  EXPECT_EQ(c8 - c1, 7 * t.cfg.post_per_sge);
}

TEST(SendRecv, SgeOutsideRegionThrows) {
  TwoNodes t;
  auto& ma = t.as_a.map(4096, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 2048, kSmallPageSize);
  SendWr wr;
  wr.sges = {{ma.va_base + 2000, 100, ra.mr->lkey}};  // crosses region end
  EXPECT_THROW(t.qa->post_send(wr, 0), SimError);
  wr.sges = {{ma.va_base, 100, 424242}};  // unknown lkey
  EXPECT_THROW(t.qa->post_send(wr, 0), SimError);
}

TEST(RdmaWrite, PlacesBytesRemotely) {
  TwoNodes t;
  auto& ma = t.as_a.map(64 * kKiB, mem::PageKind::Small);
  auto& mb = t.as_b.map(64 * kKiB, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 64 * kKiB, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 64 * kKiB, kSmallPageSize);

  auto src = t.as_a.host_span(ma.va_base, 32 * kKiB);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i ^ (i >> 8));

  SendWr wr;
  wr.wr_id = 9;
  wr.opcode = Opcode::RdmaWrite;
  wr.sges = {{ma.va_base, 32 * kKiB, ra.mr->lkey}};
  wr.remote_addr = mb.va_base + 1024;
  wr.rkey = rb.mr->lkey;
  t.qa->post_send(wr, 0);

  const auto cqe = t.a_scq.poll(ms(10));
  ASSERT_TRUE(cqe);
  EXPECT_EQ(cqe->type, CqeType::RdmaWriteComplete);
  // No receiver-side CQE for one-sided ops.
  EXPECT_FALSE(t.b_rcq.poll(ms(10)).has_value());

  auto dst = t.as_b.host_span(mb.va_base + 1024, 32 * kKiB);
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(i ^ (i >> 8)));
}

TEST(RdmaWrite, MonitorGatesVisibilityAtArrival) {
  TwoNodes t;
  auto& ma = t.as_a.map(64 * kKiB, mem::PageKind::Small);
  auto& mb = t.as_b.map(64 * kKiB, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 64 * kKiB, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 64 * kKiB, kSmallPageSize);
  WriteMonitor mon;
  t.b.set_write_monitor(rb.mr->lkey, &mon);

  auto src = t.as_a.host_span(ma.va_base, 4096);
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = static_cast<std::uint8_t>(i * 5 + 1);
  SendWr wr;
  wr.opcode = Opcode::RdmaWrite;
  wr.sges = {{ma.va_base, 4096, ra.mr->lkey}};
  wr.remote_addr = mb.va_base + 512;
  wr.rkey = rb.mr->lkey;
  t.qa->post_send(wr, 0);

  // The event exists immediately (sim placement is eager) but is gated
  // behind the transfer's virtual arrival — a poll "before" sees nothing.
  const auto vis = mon.next_visible();
  ASSERT_TRUE(vis.has_value());
  EXPECT_GT(*vis, t.cfg.wire_latency);
  EXPECT_TRUE(mon.take_visible(*vis - 1).empty());
  const auto evs = mon.take_visible(*vis);
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].addr, mb.va_base + 512);
  EXPECT_EQ(evs[0].len, 4096u);
  EXPECT_FALSE(evs[0].has_imm);
  EXPECT_EQ(evs[0].visible_at, *vis);
  EXPECT_FALSE(mon.next_visible().has_value());
  auto dst = t.as_b.host_span(mb.va_base + 512, 4096);
  for (std::size_t i = 0; i < dst.size(); ++i)
    ASSERT_EQ(dst[i], static_cast<std::uint8_t>(i * 5 + 1));
}

TEST(RdmaWrite, WriteWithImmediateConsumesAReceive) {
  TwoNodes t;
  auto& ma = t.as_a.map(64 * kKiB, mem::PageKind::Small);
  auto& mb = t.as_b.map(64 * kKiB, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 64 * kKiB, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 64 * kKiB, kSmallPageSize);

  RecvWr rwr;
  rwr.wr_id = 70;
  rwr.sges = {{mb.va_base, 64, rb.mr->lkey}};
  t.qb->post_recv(rwr, 0);

  SendWr wr;
  wr.opcode = Opcode::RdmaWrite;
  wr.has_imm = true;
  wr.imm = 0x5151;
  wr.sges = {{ma.va_base, 2048, ra.mr->lkey}};
  wr.remote_addr = mb.va_base + 4096;
  wr.rkey = rb.mr->lkey;
  t.qa->post_send(wr, 0);

  const auto rcqe = t.b_rcq.poll(ms(10));
  ASSERT_TRUE(rcqe);
  EXPECT_EQ(rcqe->wr_id, 70u);
  EXPECT_TRUE(rcqe->has_imm);
  EXPECT_EQ(rcqe->imm, 0x5151u);
  // The receive reports the write length; the payload landed one-sided at
  // remote_addr, not in the consumed receive's scatter list.
  EXPECT_EQ(rcqe->byte_len, 2048u);
}

TEST(RdmaWrite, InlinePostPaysCpuCopyPerByte) {
  TwoNodes t;
  auto& ma = t.as_a.map(4096, mem::PageKind::Small);
  auto& mb = t.as_b.map(4096, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 4096, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 4096, kSmallPageSize);
  auto write_wr = [&](bool inl, std::uint32_t len) {
    SendWr wr;
    wr.opcode = Opcode::RdmaWrite;
    wr.inline_data = inl;
    wr.sges = {{ma.va_base, len, ra.mr->lkey}};
    wr.remote_addr = mb.va_base;
    wr.rkey = rb.mr->lkey;
    return wr;
  };
  t.qa->post_send(write_wr(false, 64), 0);  // warm the ATT
  const TimePs plain = t.qa->post_send(write_wr(false, 64), ms(1));
  const TimePs inl = t.qa->post_send(write_wr(true, 64), ms(2));
  EXPECT_EQ(inl - plain, 64 * t.cfg.post_inline_per_byte)
      << "the doorbell write carries the payload at a per-byte CPU cost";
  EXPECT_THROW(
      t.qa->post_send(write_wr(true, t.cfg.inline_max + 1), ms(3)),
      SimError);
}

TEST(RdmaWrite, OutOfBoundsRemoteThrows) {
  TwoNodes t;
  auto& ma = t.as_a.map(4096, mem::PageKind::Small);
  auto& mb = t.as_b.map(4096, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 4096, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 2048, kSmallPageSize);
  SendWr wr;
  wr.opcode = Opcode::RdmaWrite;
  wr.sges = {{ma.va_base, 4096, ra.mr->lkey}};
  wr.remote_addr = mb.va_base;  // 4096 bytes into a 2048-byte region
  wr.rkey = rb.mr->lkey;
  EXPECT_THROW(t.qa->post_send(wr, 0), SimError);
}

TEST(AttCache, TranslationReuseHitsAfterWarmup) {
  TwoNodes t;
  auto& ma = t.as_a.map(64 * kKiB, mem::PageKind::Small);
  auto& mb = t.as_b.map(64 * kKiB, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 64 * kKiB, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 64 * kKiB, kSmallPageSize);

  auto send_once = [&](TimePs now) {
    RecvWr rwr;
    rwr.sges = {{mb.va_base, 64 * kKiB, rb.mr->lkey}};
    t.qb->post_recv(rwr, now);
    SendWr swr;
    swr.sges = {{ma.va_base, 16 * kKiB, ra.mr->lkey}};
    t.qa->post_send(swr, now);
  };
  send_once(0);
  const std::uint64_t misses_first = t.a.stats().att_misses;
  EXPECT_GE(misses_first, 4u);  // 16 KB = 4 x 4 KB translations
  send_once(ms(1));
  EXPECT_EQ(t.a.stats().att_misses, misses_first)
      << "warm translations must hit";
  EXPECT_GT(t.a.stats().att_hits, 0u);
}

TEST(AttCache, HugeTranslationsCoverMoreBytesPerEntry) {
  TwoNodes t;
  auto& ma = t.as_a.map(8 * kMiB, mem::PageKind::Huge);
  auto& mb = t.as_b.map(8 * kMiB, mem::PageKind::Huge);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 8 * kMiB, kHugePageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 8 * kMiB, kHugePageSize);
  RecvWr rwr;
  rwr.sges = {{mb.va_base, static_cast<std::uint32_t>(8 * kMiB), rb.mr->lkey}};
  t.qb->post_recv(rwr, 0);
  SendWr swr;
  swr.sges = {{ma.va_base, static_cast<std::uint32_t>(8 * kMiB), ra.mr->lkey}};
  t.qa->post_send(swr, 0);
  // 8 MB with 2 MB translations: at most 4 sender-side entries touched.
  EXPECT_LE(t.a.stats().att_misses, 4u);
}

TEST(Timing, OffsetChangesSmallMessageCost) {
  // The fig4 mechanism at the adapter level: an 8-byte buffer at offset 60
  // spans two bus lines, at offset 0 only one.
  TwoNodes t;
  auto& ma = t.as_a.map(16 * kSmallPageSize, mem::PageKind::Small);
  const auto ra =
      t.a.reg_mr(t.as_a, ma.va_base, 16 * kSmallPageSize, kSmallPageSize);

  auto send_cost = [&](std::uint32_t offset, TimePs now) {
    SendWr wr;
    wr.sges = {{ma.va_base + offset, 8, ra.mr->lkey}};
    t.qa->post_send(wr, now);
    // Drain the send CQ; return the completion time relative to now.
    const auto cqe = t.a_scq.poll(now + ms(10));
    return cqe->ready_time - now;
  };
  send_cost(0, 0);  // warm the ATT so both probes hit
  const TimePs aligned = send_cost(0, ms(1));
  const TimePs split = send_cost(60, ms(2));
  EXPECT_GT(split, aligned);
}

TEST(Timing, LinkSerializesBackToBackSends) {
  TwoNodes t;
  auto& ma = t.as_a.map(1 * kMiB, mem::PageKind::Small);
  auto& mb = t.as_b.map(8 * kMiB, mem::PageKind::Small);
  const auto ra = t.a.reg_mr(t.as_a, ma.va_base, 1 * kMiB, kSmallPageSize);
  const auto rb = t.b.reg_mr(t.as_b, mb.va_base, 8 * kMiB, kSmallPageSize);
  for (int i = 0; i < 4; ++i) {
    RecvWr rwr;
    rwr.sges = {{mb.va_base + static_cast<std::uint64_t>(i) * kMiB,
                 static_cast<std::uint32_t>(kMiB), rb.mr->lkey}};
    t.qb->post_recv(rwr, 0);
  }
  for (int i = 0; i < 4; ++i) {
    SendWr swr;
    swr.wr_id = static_cast<std::uint64_t>(i);
    swr.sges = {{ma.va_base, static_cast<std::uint32_t>(kMiB), ra.mr->lkey}};
    t.qa->post_send(swr, 0);
  }
  // Completions must be spaced by at least the wire time of 1 MB.
  TimePs prev = 0;
  const TimePs min_gap = static_cast<TimePs>(
      1 * kMiB / t.cfg.link_bw_bytes_per_ns * 1e3);
  for (int i = 0; i < 4; ++i) {
    const auto cqe = t.a_scq.poll(ms(100));
    ASSERT_TRUE(cqe);
    if (i > 0) {
      EXPECT_GE(cqe->ready_time - prev, min_gap / 2);
    }
    prev = cqe->ready_time;
  }
}

TEST(QueuePair, UnconnectedSendThrows) {
  AdapterConfig cfg;
  Adapter a(0, cfg);
  CompletionQueue scq, rcq;
  QueuePair& qp = a.create_qp(&scq, &rcq);
  SendWr wr;
  EXPECT_THROW(qp.post_send(wr, 0), SimError);
}

}  // namespace
}  // namespace ibp::hca
