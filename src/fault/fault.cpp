#include "ibp/fault/fault.hpp"

#include <cctype>
#include <sstream>

#include "ibp/common/check.hpp"

namespace ibp::fault {

// ---------------------------------------------------------------------------
// FaultInjector

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)),
      seed_(plan_.seed != 0 ? plan_.seed : seed),
      qp_error_fired_(plan_.qp_errors.size(), false) {
  for (const auto& lf : plan_.links) {
    IBP_CHECK(lf.drop_prob >= 0.0 && lf.drop_prob <= 1.0,
              "drop probability out of [0,1]");
    IBP_CHECK(lf.corrupt_prob >= 0.0 && lf.corrupt_prob <= 1.0,
              "corruption probability out of [0,1]");
  }
}

Rng& FaultInjector::link_rng(NodeId src, NodeId dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
      static_cast<std::uint32_t>(dst);
  auto it = rngs_.find(key);
  if (it == rngs_.end()) {
    // splitmix over (seed, key) so the stream is independent of when the
    // link first carries traffic.
    std::uint64_t sm = seed_ ^ (key * 0x9e3779b97f4a7c15ull);
    it = rngs_.emplace(key, Rng(splitmix64(sm))).first;
  }
  return it->second;
}

PacketVerdict FaultInjector::judge_packet(NodeId src, NodeId dst,
                                          TimePs when) {
  ++stats_.packets_judged;
  // Independent faults compose: the packet survives each matching rule.
  double pass_drop = 1.0;
  double pass_corrupt = 1.0;
  bool any = false;
  for (const auto& lf : plan_.links) {
    if (!lf.matches(src, dst) || !lf.active(when)) continue;
    any = true;
    pass_drop *= 1.0 - lf.drop_prob;
    pass_corrupt *= 1.0 - lf.corrupt_prob;
  }
  if (!any) return PacketVerdict::Deliver;
  Rng& rng = link_rng(src, dst);
  if (pass_drop < 1.0 && rng.next_double() >= pass_drop) {
    ++stats_.packets_dropped;
    note("drop", src, when);
    return PacketVerdict::Drop;
  }
  if (pass_corrupt < 1.0 && rng.next_double() >= pass_corrupt) {
    ++stats_.packets_corrupted;
    note("corrupt", src, when);
    return PacketVerdict::Corrupt;
  }
  return PacketVerdict::Deliver;
}

bool FaultInjector::att_storm_active(NodeId node, TimePs when) const {
  for (const auto& s : plan_.storms)
    if (s.active(node, when)) return true;
  return false;
}

bool FaultInjector::qp_error_due(NodeId node, std::uint32_t qp_num,
                                 TimePs now) {
  for (std::size_t i = 0; i < plan_.qp_errors.size(); ++i) {
    const QpError& e = plan_.qp_errors[i];
    if (qp_error_fired_[i] || now < e.at) continue;
    if (e.node != kAnyNode && e.node != node) continue;
    if (e.qp_num != 0 && e.qp_num != qp_num) continue;
    qp_error_fired_[i] = true;
    ++stats_.qp_errors_fired;
    return true;
  }
  return false;
}

bool FaultInjector::server_crashed(NodeId node, TimePs when) const {
  // The node is crashed iff the latest crash event at or before `when` is
  // strictly later than the latest recover event at or before `when`.
  TimePs last_crash = 0;
  bool crashed_seen = false;
  for (const auto& e : plan_.crashes) {
    if ((e.node == kAnyNode || e.node == node) && e.at <= when &&
        (!crashed_seen || e.at > last_crash)) {
      last_crash = e.at;
      crashed_seen = true;
    }
  }
  if (!crashed_seen) return false;
  for (const auto& e : plan_.recoveries) {
    if ((e.node == kAnyNode || e.node == node) && e.at <= when &&
        e.at >= last_crash) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Plan parsing

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

NodeId parse_node(const std::string& tok) {
  if (tok == "*") return kAnyNode;
  IBP_CHECK(!tok.empty() && tok.find_first_not_of("0123456789") ==
                                std::string::npos,
            "fault plan: bad node id '" << tok << "'");
  return static_cast<NodeId>(std::stol(tok));
}

double parse_prob(const std::string& tok) {
  IBP_CHECK(!tok.empty(), "fault plan: missing probability");
  std::size_t pos = 0;
  const double p = std::stod(tok, &pos);
  IBP_CHECK(pos == tok.size() && p >= 0.0 && p <= 1.0,
            "fault plan: bad probability '" << tok << "'");
  return p;
}

/// "FROM-UNTIL" in microseconds; UNTIL may be '*' (open-ended).
void parse_window(const std::string& tok, TimePs* from, TimePs* until) {
  const auto parts = split(tok, '-');
  IBP_CHECK(parts.size() == 2, "fault plan: bad window '" << tok << "'");
  *from = us(static_cast<std::uint64_t>(std::stoull(parts[0])));
  *until = parts[1] == "*"
               ? 0
               : us(static_cast<std::uint64_t>(std::stoull(parts[1])));
  IBP_CHECK(*until == 0 || *until > *from,
            "fault plan: empty window '" << tok << "'");
}

void parse_link_fault(const std::string& value, bool corrupt,
                      FaultPlan* plan) {
  // SRC-DST:PROB[:FROM-UNTIL]
  const auto fields = split(value, ':');
  IBP_CHECK(fields.size() == 2 || fields.size() == 3,
            "fault plan: expected SRC-DST:PROB[:FROM-UNTIL], got '" << value
                                                                    << "'");
  const auto ends = split(fields[0], '-');
  IBP_CHECK(ends.size() == 2,
            "fault plan: bad link '" << fields[0] << "' (want SRC-DST)");
  LinkFault lf;
  lf.src = parse_node(ends[0]);
  lf.dst = parse_node(ends[1]);
  (corrupt ? lf.corrupt_prob : lf.drop_prob) = parse_prob(fields[1]);
  if (fields.size() == 3) parse_window(fields[2], &lf.from, &lf.until);
  plan->links.push_back(lf);
}

/// "NODE@AT" (microseconds; ':' accepted as a legacy separator).
ServerEvent parse_server_event(const std::string& key,
                               const std::string& value) {
  const char sep = value.find('@') != std::string::npos ? '@' : ':';
  const auto fields = split(value, sep);
  IBP_CHECK(fields.size() == 2,
            "fault plan: expected NODE@AT for '" << key << "', got '" << value
                                                 << "'");
  ServerEvent e;
  e.node = parse_node(fields[0]);
  e.at = us(static_cast<std::uint64_t>(std::stoull(fields[1])));
  return e;
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  std::string cleaned;
  bool comment = false;
  for (char c : spec) {
    if (c == '#') comment = true;
    if (c == '\n') {
      comment = false;
      cleaned.push_back(';');
      continue;
    }
    if (!comment) cleaned.push_back(c);
  }
  for (const std::string& raw : split(cleaned, ';')) {
    const std::string d = trim(raw);
    if (d.empty()) continue;
    const std::size_t eq = d.find('=');
    IBP_CHECK(eq != std::string::npos && eq > 0,
              "fault plan: directive '" << d << "' is not KEY=VALUE");
    const std::string key = trim(d.substr(0, eq));
    const std::string value = trim(d.substr(eq + 1));
    if (key == "drop" || key == "corrupt") {
      parse_link_fault(value, key == "corrupt", &plan);
    } else if (key == "storm") {
      // NODE:FROM-UNTIL
      const auto fields = split(value, ':');
      IBP_CHECK(fields.size() == 2,
                "fault plan: expected NODE:FROM-UNTIL, got '" << value << "'");
      AttStorm s;
      s.node = parse_node(fields[0]);
      parse_window(fields[1], &s.from, &s.until);
      plan.storms.push_back(s);
    } else if (key == "qpkill") {
      // NODE:QP:AT
      const auto fields = split(value, ':');
      IBP_CHECK(fields.size() == 3,
                "fault plan: expected NODE:QP:AT, got '" << value << "'");
      QpError e;
      e.node = parse_node(fields[0]);
      e.qp_num = fields[1] == "*"
                     ? 0
                     : static_cast<std::uint32_t>(std::stoul(fields[1]));
      e.at = us(static_cast<std::uint64_t>(std::stoull(fields[2])));
      plan.qp_errors.push_back(e);
    } else if (key == "crash") {
      plan.crashes.push_back(parse_server_event(key, value));
    } else if (key == "recover") {
      plan.recoveries.push_back(parse_server_event(key, value));
    } else if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(std::stoull(value));
    } else {
      IBP_FAIL("fault plan: unknown directive '" << key << "'");
    }
  }
  return plan;
}

std::string describe(const FaultPlan& plan) {
  std::ostringstream os;
  os << plan.links.size() << " link fault(s), " << plan.storms.size()
     << " ATT storm(s), " << plan.qp_errors.size() << " QP error(s)";
  if (!plan.crashes.empty() || !plan.recoveries.empty())
    os << ", " << plan.crashes.size() << " crash(es), "
       << plan.recoveries.size() << " recover(s)";
  if (plan.seed != 0) os << ", seed " << plan.seed;
  return os.str();
}

// ---------------------------------------------------------------------------
// Canonical plan formatting

namespace {

/// Shortest decimal form that parses back to exactly `p`.
std::string format_prob(double p) {
  for (int prec = 1; prec <= 17; ++prec) {
    std::ostringstream os;
    os.precision(prec);
    os << p;
    if (std::stod(os.str()) == p) return os.str();
  }
  IBP_FAIL("unreachable: 17 digits round-trip any double");
}

std::string format_node(NodeId n) {
  return n == kAnyNode ? "*" : std::to_string(n);
}

/// Times in the DSL are whole microseconds; reject anything finer.
std::uint64_t as_us(TimePs t) {
  IBP_CHECK(t % us(1) == 0,
            "fault plan: time " << t << " ps is not a whole microsecond");
  return static_cast<std::uint64_t>(t / us(1));
}

std::string format_window(TimePs from, TimePs until) {
  std::ostringstream os;
  os << as_us(from) << '-';
  if (until == 0)
    os << '*';
  else
    os << as_us(until);
  return os.str();
}

}  // namespace

std::string format_fault_plan(const FaultPlan& plan) {
  std::ostringstream os;
  const char* sep = "";
  auto next = [&]() {
    os << sep;
    sep = "; ";
  };
  for (const auto& lf : plan.links) {
    // A LinkFault carries both probabilities; emit one directive per
    // nonzero channel (both when both are set) so parse-back rebuilds the
    // same composed behavior. An all-zero fault round-trips as drop=0.
    const bool emit_drop = lf.drop_prob != 0.0 || lf.corrupt_prob == 0.0;
    for (int corrupt = 0; corrupt < 2; ++corrupt) {
      const double p = corrupt ? lf.corrupt_prob : lf.drop_prob;
      if (corrupt ? p == 0.0 : !emit_drop) continue;
      next();
      os << (corrupt ? "corrupt=" : "drop=") << format_node(lf.src) << '-'
         << format_node(lf.dst) << ':' << format_prob(p);
      if (lf.from != 0 || lf.until != 0)
        os << ':' << format_window(lf.from, lf.until);
    }
  }
  for (const auto& s : plan.storms) {
    next();
    os << "storm=" << format_node(s.node) << ':'
       << format_window(s.from, s.until);
  }
  for (const auto& e : plan.qp_errors) {
    next();
    os << "qpkill=" << format_node(e.node) << ':';
    if (e.qp_num == 0)
      os << '*';
    else
      os << e.qp_num;
    os << ':' << as_us(e.at);
  }
  for (const auto& e : plan.crashes) {
    next();
    os << "crash=" << format_node(e.node) << '@' << as_us(e.at);
  }
  for (const auto& e : plan.recoveries) {
    next();
    os << "recover=" << format_node(e.node) << '@' << as_us(e.at);
  }
  if (plan.seed != 0) {
    next();
    os << "seed=" << plan.seed;
  }
  return os.str();
}

}  // namespace ibp::fault
