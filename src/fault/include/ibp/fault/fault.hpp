#pragma once

// Deterministic fault-injection plane.
//
// A FaultPlan is a declarative description of everything that may go wrong
// during a run: per-link packet drop/corruption probabilities (optionally
// confined to a virtual-time window, modelling brownouts), per-adapter ATT
// miss storms (the translation cache behaves as if every lookup missed),
// and one-shot QP errors. A FaultInjector evaluates the plan with per-link
// xoshiro streams derived from a single seed, so a given (plan, seed) pair
// produces the identical packet-loss schedule on every run — faults are as
// bit-reproducible as the rest of the virtual-time simulation.
//
// The injector is passive: the HCA model asks it to judge each packet and
// reacts (retransmission, RNR backoff, QP error) according to RC
// semantics. Corrupted packets fail the ICRC at the receiver and are
// NAK'd, so timing-wise they behave like drops; they are only counted
// separately.

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ibp/common/rng.hpp"
#include "ibp/common/types.hpp"

namespace ibp::fault {

/// Wildcard node id: matches any adapter.
inline constexpr NodeId kAnyNode = -1;

/// Packet loss/corruption on the directed link src -> dst. A window with
/// until == 0 is open-ended; otherwise it covers [from, until).
struct LinkFault {
  NodeId src = kAnyNode;
  NodeId dst = kAnyNode;
  double drop_prob = 0.0;
  double corrupt_prob = 0.0;
  TimePs from = 0;
  TimePs until = 0;

  bool matches(NodeId s, NodeId d) const {
    return (src == kAnyNode || src == s) && (dst == kAnyNode || dst == d);
  }
  bool active(TimePs when) const {
    return when >= from && (until == 0 || when < until);
  }
};

/// ATT miss storm: while active, every translation lookup on `node`'s
/// adapter is charged as a miss (cache thrash, e.g. a competing workload).
struct AttStorm {
  NodeId node = kAnyNode;
  TimePs from = 0;
  TimePs until = 0;  // 0 = open-ended

  bool active(NodeId n, TimePs when) const {
    return (node == kAnyNode || node == n) && when >= from &&
           (until == 0 || when < until);
  }
};

/// One-shot QP failure: the first work-request processed on the matching
/// QP at virtual time >= `at` moves it to the error state.
struct QpError {
  NodeId node = kAnyNode;
  std::uint32_t qp_num = 0;  // 0 = any QP on the node (QP numbers start at 1)
  TimePs at = 0;
};

/// Server-process lifecycle event: at `at` the rank on `node` either
/// crashes (permanent QP kill: it stops serving and silently discards
/// every request record it ingests) or recovers (a brownout window ends
/// and it serves again). A node's state at time t is decided by the
/// latest crash/recover event at or before t; a bare crash with no
/// matching recover is permanent.
struct ServerEvent {
  NodeId node = kAnyNode;
  TimePs at = 0;
};

struct FaultPlan {
  std::vector<LinkFault> links;
  std::vector<AttStorm> storms;
  std::vector<QpError> qp_errors;
  std::vector<ServerEvent> crashes;
  std::vector<ServerEvent> recoveries;
  /// When nonzero, overrides the cluster seed for the injector's streams.
  std::uint64_t seed = 0;

  bool empty() const {
    return links.empty() && storms.empty() && qp_errors.empty() &&
           crashes.empty() && recoveries.empty();
  }
};

/// Parse a textual fault plan. Directives are separated by ';' or newlines;
/// '#' starts a comment running to end of line. Times are in microseconds
/// of virtual time; node ids may be '*' (any). Supported directives:
///
///   drop=SRC-DST:PROB[:FROM-UNTIL]     packet drop probability on a link
///   corrupt=SRC-DST:PROB[:FROM-UNTIL]  packet corruption probability
///   storm=NODE:FROM-UNTIL              ATT miss storm on an adapter
///   qpkill=NODE:QP:AT                  one-shot QP error (QP may be '*')
///   crash=NODE@AT                      permanent server kill at AT
///   recover=NODE@AT                    server rejoins at AT (ends a crash)
///   seed=N                             override the injector seed
///
/// An omitted window (or UNTIL of '*') is open-ended. Example:
///   "drop=0-1:0.01; storm=1:100-500; qpkill=0:*:250; crash=2@800"
FaultPlan parse_fault_plan(const std::string& spec);

/// One-line human summary ("2 link fault(s), 1 storm(s), ...").
std::string describe(const FaultPlan& plan);

/// Canonical textual form of a plan: parse_fault_plan(format_fault_plan(p))
/// rebuilds a behaviorally identical plan, and format_fault_plan is a
/// fixed point over parse (format(parse(format(p))) == format(p)).
/// Probabilities print with round-trip precision; a LinkFault carrying
/// both drop and corrupt splits into one directive per channel, which
/// composes to the same packet fate. Sub-microsecond times are not
/// representable in the DSL and are rejected.
std::string format_fault_plan(const FaultPlan& plan);

enum class PacketVerdict : std::uint8_t { Deliver, Drop, Corrupt };

struct FaultStats {
  std::uint64_t packets_judged = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t packets_corrupted = 0;
  std::uint64_t qp_errors_fired = 0;
};

class FaultInjector {
 public:
  /// `seed` feeds the per-link streams unless the plan overrides it.
  FaultInjector(FaultPlan plan, std::uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Fate of one packet crossing the directed link src -> dst at `when`.
  PacketVerdict judge_packet(NodeId src, NodeId dst, TimePs when);

  /// Is an ATT miss storm active on `node` at `when`?
  bool att_storm_active(NodeId node, TimePs when) const;

  /// Consume a pending one-shot QP error for (node, qp_num) due by `now`.
  /// Returns true at most once per plan entry.
  bool qp_error_due(NodeId node, std::uint32_t qp_num, TimePs now);

  /// Is the server process on `node` crashed at `when`? Decided by the
  /// latest matching crash/recover event at or before `when` (a crash and
  /// a recover at the same instant resolve to recovered). Pure query — no
  /// stream state, safe to call from any layer.
  bool server_crashed(NodeId node, TimePs when) const;

  /// Does the plan contain any crash directive at all? Lets the serving
  /// layers skip per-item checks on fault-free and crash-free plans.
  bool has_crashes() const { return !plan_.crashes.empty(); }

  /// Event sink for fault/retry tracing. `kind` is a static string such as
  /// "drop", "corrupt", "retransmit", "rnr_nak" or "qp_error"; `node` is
  /// the adapter observing the event. The transport layer also routes its
  /// retry events through here so a tracer sees one unified stream.
  using Observer =
      std::function<void(const char* kind, NodeId node, TimePs when)>;
  void set_observer(Observer obs) { observer_ = std::move(obs); }

  /// Emit an event to the observer (no-op when none is attached).
  void note(const char* kind, NodeId node, TimePs when) {
    if (observer_) observer_(kind, node, when);
  }

  const FaultStats& stats() const { return stats_; }
  const FaultPlan& plan() const { return plan_; }
  std::uint64_t seed() const { return seed_; }

 private:
  Rng& link_rng(NodeId src, NodeId dst);

  FaultPlan plan_;
  std::uint64_t seed_;
  FaultStats stats_;
  Observer observer_;
  // Per-directed-link streams, keyed (src << 32) | dst. Each stream's seed
  // depends only on (injector seed, link), never on creation order, so the
  // loss schedule of a link is a pure function of its packet sequence.
  std::unordered_map<std::uint64_t, Rng> rngs_;
  std::vector<bool> qp_error_fired_;
};

}  // namespace ibp::fault
