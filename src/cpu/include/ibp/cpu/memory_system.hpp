#pragma once

// CPU-side memory access cost model.
//
// Workload kernels describe their memory traffic as streams (sequential
// sweeps) and irregular accesses; the memory system charges virtual time
// for them and updates PAPI-style counters. Two placement-sensitive
// mechanisms are modelled:
//
//  * TLB reach — every distinct page touched costs a TLB lookup; the split
//    4 KB / 2 MB capacities (see tlb.hpp) decide hit rates.
//  * Prefetch streaming — the hardware prefetcher hides DRAM latency while
//    it is streaming a *physically contiguous* run of cache lines and must
//    re-ramp (one full DRAM latency) whenever the next page is physically
//    discontiguous. Small-page mappings are backed by scattered frames, so
//    streams re-ramp every 4 KB; hugepage mappings stream across 2 MB (or
//    further, when the hugeTLBfs handed out adjacent frames).
//
// This is deliberately a throughput model, not a cycle simulator: it keeps
// the quantities the paper's Figure 6 depends on (communication/computation
// split, TLB-miss deltas, contiguity benefit) while staying fast enough to
// run NAS-like kernels end to end.

#include <cstdint>
#include <span>

#include "ibp/common/types.hpp"
#include "ibp/cpu/tlb.hpp"
#include "ibp/mem/address_space.hpp"

namespace ibp::cpu {

struct MemConfig {
  std::uint64_t cacheline = 64;          // bytes
  double stream_bw_bytes_per_ns = 4.0;   // sustained DRAM stream bandwidth
  TimePs dram_latency = ns(90);          // random / ramp-up access latency
  TimePs l1_hit = ps(400);               // cheap re-touch cost (cached data)
  double cached_fraction = 0.0;          // fraction of traffic served by caches
};

struct MemStats {
  std::uint64_t stream_bytes = 0;
  std::uint64_t random_accesses = 0;
  std::uint64_t prefetch_ramps = 0;  // DRAM-latency stalls at run starts
};

class MemorySystem {
 public:
  MemorySystem(const MemConfig& cfg, Tlb* tlb) : cfg_(cfg), tlb_(tlb) {
    IBP_CHECK(tlb != nullptr);
  }

  /// Sequentially sweep [va, va+len) in `space` (read, write, or both —
  /// cost-identical in this model). Returns the virtual-time cost.
  TimePs stream(const mem::AddressSpace& space, VirtAddr va,
                std::uint64_t len);

  /// One contiguous operand of an interleaved loop.
  struct StreamRef {
    VirtAddr va = 0;
    std::uint64_t len = 0;
  };

  /// Sweep several arrays in lockstep, the way a fused loop body touches
  /// all its operands per index (e.g. r[i] = a[i]*x[i] + y[i]). The TLB
  /// sees the arrays' current pages interleaved at `quantum`-byte
  /// granularity, so more concurrent streams than TLB entries of the
  /// backing page size thrash — the mechanism that makes hugepage runs
  /// show *more* TLB misses on an 8-entry 2 MB TLB (§5.2).
  TimePs interleaved_stream(const mem::AddressSpace& space,
                            std::span<const StreamRef> refs,
                            std::uint64_t quantum = 512);

  /// `n` accesses at uniformly random offsets inside [va, va+len).
  /// `rng` supplies the offsets so runs stay deterministic.
  TimePs random_access(const mem::AddressSpace& space, VirtAddr va,
                       std::uint64_t len, std::uint64_t n, Rng& rng);

  /// Pure-compute cost helper: `ops` arithmetic operations at `ops_per_ns`.
  static TimePs compute(std::uint64_t ops, double ops_per_ns) {
    return static_cast<TimePs>(static_cast<double>(ops) / ops_per_ns * 1e3);
  }

  const MemStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  Tlb& tlb() { return *tlb_; }
  const Tlb& tlb() const { return *tlb_; }

 private:
  MemConfig cfg_;
  Tlb* tlb_;
  MemStats stats_;
};

}  // namespace ibp::cpu
