#pragma once

// PAPI-like performance counter façade.
//
// The paper instruments NAS runs with PAPI to read hardware counters
// (notably DTLB misses). This module offers the same read-the-counters
// workflow over the simulated CPU: snapshot, run, diff.

#include <cstdint>
#include <ostream>

#include "ibp/cpu/memory_system.hpp"
#include "ibp/cpu/tlb.hpp"

namespace ibp::cpu {

struct CounterSnapshot {
  std::uint64_t tlb_misses_small = 0;
  std::uint64_t tlb_misses_huge = 0;
  std::uint64_t tlb_hits = 0;
  std::uint64_t stream_bytes = 0;
  std::uint64_t random_accesses = 0;
  std::uint64_t prefetch_ramps = 0;

  std::uint64_t tlb_misses() const { return tlb_misses_small + tlb_misses_huge; }

  CounterSnapshot operator-(const CounterSnapshot& o) const {
    CounterSnapshot d;
    d.tlb_misses_small = tlb_misses_small - o.tlb_misses_small;
    d.tlb_misses_huge = tlb_misses_huge - o.tlb_misses_huge;
    d.tlb_hits = tlb_hits - o.tlb_hits;
    d.stream_bytes = stream_bytes - o.stream_bytes;
    d.random_accesses = random_accesses - o.random_accesses;
    d.prefetch_ramps = prefetch_ramps - o.prefetch_ramps;
    return d;
  }
};

inline CounterSnapshot read_counters(const MemorySystem& mem) {
  CounterSnapshot s;
  const auto& ms = mem.stats();
  s.stream_bytes = ms.stream_bytes;
  s.random_accesses = ms.random_accesses;
  s.prefetch_ramps = ms.prefetch_ramps;
  const auto& ts = mem.tlb().stats();
  s.tlb_misses_small = ts.misses_small;
  s.tlb_misses_huge = ts.misses_huge;
  s.tlb_hits = ts.hits();
  return s;
}

inline std::ostream& operator<<(std::ostream& os, const CounterSnapshot& s) {
  return os << "tlb_miss(4K)=" << s.tlb_misses_small
            << " tlb_miss(2M)=" << s.tlb_misses_huge
            << " tlb_hit=" << s.tlb_hits
            << " stream_bytes=" << s.stream_bytes
            << " random=" << s.random_accesses
            << " ramps=" << s.prefetch_ramps;
}

}  // namespace ibp::cpu
