#pragma once

// Split data-TLB model.
//
// Real CPUs of the paper's era dedicate separate translation entries to
// 4 KB and large pages, with wildly asymmetric capacities — the AMD
// Opteron the paper instruments has 544 four-KB entries (L1+L2 DTLB) but
// only 8 two-MB entries. This asymmetry is the mechanism behind the
// paper's §5.2 observation that hugepages *increase* TLB misses (up to 8×
// on EP) even while overall runtime improves. We model each half as a
// fully associative LRU array, which is optimistic but preserves the
// capacity cliff the paper depends on.

#include <cstdint>
#include <list>
#include <unordered_map>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"

namespace ibp::cpu {

struct TlbConfig {
  std::uint32_t small_entries = 544;  // 4 KB entries (Opteron L1+L2 DTLB)
  std::uint32_t huge_entries = 8;     // 2 MB entries
  TimePs walk_cost = ns(120);         // cold page-table walk on a miss
  /// The hardware walker caches page-table nodes: a TLB miss whose
  /// translation was walked recently costs far less than a cold walk.
  /// This is why a workload can show many times more TLB *misses* with
  /// hugepages (8-entry 2 MB TLB thrashing) while barely paying for them
  /// — the mechanism behind the paper's §5.2 observation.
  std::uint32_t walk_cache_entries = 4096;
  TimePs hot_walk_cost = ns(12);
};

struct TlbStats {
  std::uint64_t hits_small = 0;
  std::uint64_t misses_small = 0;
  std::uint64_t hits_huge = 0;
  std::uint64_t misses_huge = 0;

  std::uint64_t hits() const { return hits_small + hits_huge; }
  std::uint64_t misses() const { return misses_small + misses_huge; }
};

class Tlb {
 public:
  explicit Tlb(const TlbConfig& cfg)
      : cfg_(cfg),
        small_(cfg.small_entries),
        huge_(cfg.huge_entries),
        walk_cache_(cfg.walk_cache_entries) {}

  /// Look up the page containing `page_va` (already page-aligned by the
  /// caller) with the given page size; inserts on miss. Returns the time
  /// cost of the lookup: 0 on a hit, the hot-walk cost when the miss is
  /// served from cached page-table nodes, the full walk cost otherwise.
  TimePs access(VirtAddr page_va, std::uint64_t page_size) {
    const bool huge = page_size == kHugePageSize;
    Lru& lru = huge ? huge_ : small_;
    const bool hit = lru.touch(page_va);
    if (huge) {
      hit ? ++stats_.hits_huge : ++stats_.misses_huge;
    } else {
      hit ? ++stats_.hits_small : ++stats_.misses_small;
    }
    if (hit) return 0;
    const bool walked_recently = walk_cache_.touch(page_va);
    return walked_recently ? cfg_.hot_walk_cost : cfg_.walk_cost;
  }

  void flush() {
    small_.clear();
    huge_.clear();
    walk_cache_.clear();
  }

  const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }
  const TlbConfig& config() const { return cfg_; }

 private:
  /// Fully associative LRU set of page tags.
  class Lru {
   public:
    explicit Lru(std::uint32_t capacity) : capacity_(capacity) {}

    /// Returns true on hit; inserts (possibly evicting) on miss.
    bool touch(VirtAddr tag) {
      auto it = index_.find(tag);
      if (it != index_.end()) {
        order_.splice(order_.begin(), order_, it->second);
        return true;
      }
      if (capacity_ == 0) return false;  // degenerate: everything misses
      if (index_.size() == capacity_) {
        index_.erase(order_.back());
        order_.pop_back();
      }
      order_.push_front(tag);
      index_[tag] = order_.begin();
      return false;
    }

    void clear() {
      order_.clear();
      index_.clear();
    }

   private:
    std::uint32_t capacity_;
    std::list<VirtAddr> order_;
    std::unordered_map<VirtAddr, std::list<VirtAddr>::iterator> index_;
  };

  TlbConfig cfg_;
  Lru small_;
  Lru huge_;
  Lru walk_cache_;
  TlbStats stats_;
};

}  // namespace ibp::cpu
