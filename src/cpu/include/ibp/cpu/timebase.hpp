#pragma once

// Time-base register (TBR) conversion.
//
// The paper reports small-message costs in "TBR ticks" of the IBM System p
// time base (POWER's TB register). Internally everything is picoseconds;
// benches convert at the edge with the platform's TBR frequency.

#include <cstdint>

#include "ibp/common/types.hpp"

namespace ibp::cpu {

class TimeBase {
 public:
  explicit TimeBase(double tbr_hz) : tbr_hz_(tbr_hz) {}

  std::uint64_t to_ticks(TimePs t) const {
    return static_cast<std::uint64_t>(static_cast<double>(t) * 1e-12 *
                                      tbr_hz_);
  }

  TimePs to_ps(std::uint64_t ticks) const {
    return static_cast<TimePs>(static_cast<double>(ticks) / tbr_hz_ * 1e12);
  }

  double hz() const { return tbr_hz_; }

 private:
  double tbr_hz_;
};

}  // namespace ibp::cpu
