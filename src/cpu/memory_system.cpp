#include "ibp/cpu/memory_system.hpp"
#include <vector>
#include <algorithm>

namespace ibp::cpu {

TimePs MemorySystem::stream(const mem::AddressSpace& space, VirtAddr va,
                            std::uint64_t len) {
  if (len == 0) return 0;
  const mem::Mapping* m = space.find(va, len);
  IBP_CHECK(m != nullptr, "stream over unmapped range");

  const std::uint64_t psz = m->page_size();
  const std::uint64_t first_page = (va - m->va_base) / psz;
  const std::uint64_t last_page = (va + len - 1 - m->va_base) / psz;

  TimePs cost = 0;
  std::uint64_t ramps = 0;
  PhysAddr prev_frame_end = 0;
  bool have_prev = false;

  for (std::uint64_t p = first_page; p <= last_page; ++p) {
    cost += tlb_->access(m->va_base + p * psz, psz);
    const PhysAddr frame = m->frames[p];
    // The prefetcher keeps streaming only across physically adjacent
    // frames; any discontinuity costs one DRAM-latency re-ramp.
    if (!have_prev || frame != prev_frame_end) ++ramps;
    prev_frame_end = frame + psz;
    have_prev = true;
  }

  const double effective =
      static_cast<double>(len) * (1.0 - cfg_.cached_fraction);
  cost += static_cast<TimePs>(effective / cfg_.stream_bw_bytes_per_ns * 1e3);
  cost += ramps * cfg_.dram_latency;
  cost += static_cast<TimePs>(static_cast<double>(len) * cfg_.cached_fraction /
                              static_cast<double>(cfg_.cacheline)) *
          cfg_.l1_hit;

  stats_.stream_bytes += len;
  stats_.prefetch_ramps += ramps;
  return cost;
}

TimePs MemorySystem::interleaved_stream(const mem::AddressSpace& space,
                                        std::span<const StreamRef> refs,
                                        std::uint64_t quantum) {
  IBP_CHECK(quantum > 0);
  TimePs cost = 0;
  std::uint64_t max_len = 0;

  struct Op {
    const mem::Mapping* m;
    VirtAddr va;
    std::uint64_t len;
    std::uint64_t psz;
  };
  std::vector<Op> ops;
  ops.reserve(refs.size());
  for (const auto& r : refs) {
    if (r.len == 0) continue;
    const mem::Mapping* m = space.find(r.va, r.len);
    IBP_CHECK(m != nullptr, "interleaved_stream over unmapped range");
    ops.push_back({m, r.va, r.len, m->page_size()});
    max_len = std::max(max_len, r.len);
  }
  if (ops.empty()) return 0;

  // TLB traffic: each operand's current page, interleaved per quantum.
  for (std::uint64_t off = 0; off < max_len; off += quantum) {
    for (const Op& op : ops) {
      if (off >= op.len) continue;
      const VirtAddr a = op.va + off;
      const VirtAddr page_va =
          op.m->va_base + align_down(a - op.m->va_base, op.psz);
      cost += tlb_->access(page_va, op.psz);
    }
  }

  // Streaming bytes + prefetch ramps per operand (the data side behaves
  // like independent streams; the prefetcher tracks each separately).
  for (const Op& op : ops) {
    std::uint64_t ramps = 0;
    PhysAddr prev_end = 0;
    bool have_prev = false;
    const std::uint64_t first = (op.va - op.m->va_base) / op.psz;
    const std::uint64_t last = (op.va + op.len - 1 - op.m->va_base) / op.psz;
    for (std::uint64_t p = first; p <= last; ++p) {
      const PhysAddr frame = op.m->frames[p];
      if (!have_prev || frame != prev_end) ++ramps;
      prev_end = frame + op.psz;
      have_prev = true;
    }
    const double effective =
        static_cast<double>(op.len) * (1.0 - cfg_.cached_fraction);
    cost +=
        static_cast<TimePs>(effective / cfg_.stream_bw_bytes_per_ns * 1e3);
    cost += ramps * cfg_.dram_latency;
    cost += static_cast<TimePs>(static_cast<double>(op.len) *
                                cfg_.cached_fraction /
                                static_cast<double>(cfg_.cacheline)) *
            cfg_.l1_hit;
    stats_.stream_bytes += op.len;
    stats_.prefetch_ramps += ramps;
  }
  return cost;
}

TimePs MemorySystem::random_access(const mem::AddressSpace& space, VirtAddr va,
                                   std::uint64_t len, std::uint64_t n,
                                   Rng& rng) {
  if (n == 0) return 0;
  IBP_CHECK(len > 0, "random_access over empty range");
  const mem::Mapping* m = space.find(va, len);
  IBP_CHECK(m != nullptr, "random_access over unmapped range");
  const std::uint64_t psz = m->page_size();

  TimePs cost = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    const VirtAddr a = va + rng.next_below(len);
    const VirtAddr page_va = m->va_base + align_down(a - m->va_base, psz);
    cost += tlb_->access(page_va, psz);
    if (rng.next_double() < cfg_.cached_fraction) {
      cost += cfg_.l1_hit;
    } else {
      cost += cfg_.dram_latency;
    }
  }
  stats_.random_accesses += n;
  return cost;
}

}  // namespace ibp::cpu
