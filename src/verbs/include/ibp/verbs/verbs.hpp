#pragma once

// Verbs-style user API over the simulated HCA.
//
// A verbs::Context binds one simulated process (a sim rank) to its address
// space and its node's adapter, mirroring the ibv_* workflow:
//
//   reg_mr / dereg_mr        — memory registration (charged virtual time)
//   create_qp / connect      — RC queue pairs over per-context CQs
//   post_send / post_recv    — work requests with scatter/gather lists
//   poll_send / poll_recv    — non-blocking CQ polls
//   wait_send / wait_recv    — blocking polls that fast-forward virtual
//                              time to the completion instead of spinning
//
// The DriverConfig reproduces the paper's OpenIB patch: the stock driver
// reports 4 KB translations to the adapter even for hugepage-backed
// regions ("the kernel pretends 4 KB pages"); with hugepage_passthrough
// the native 2 MB translations are shipped, shrinking both the shipped
// entry count and the adapter's ATT footprint.

#include <cstdint>
#include <optional>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"
#include "ibp/hca/adapter.hpp"
#include "ibp/mem/address_space.hpp"
#include "ibp/sim/engine.hpp"

namespace ibp::verbs {

struct DriverConfig {
  /// The paper's OpenIB patch (sent to the list in August 2006): ship
  /// hugepage-sized translations for hugepage-backed regions instead of
  /// pretending 4 KB pages.
  bool hugepage_passthrough = false;
  /// RC reliability attributes applied to every QP this driver creates
  /// (retry_cnt, rnr_retry, timeouts). Only consulted when the cluster
  /// attaches a fault injector; a healthy fabric never retransmits.
  hca::QpAttrs qp;
};

/// Snapshot of a QP's state and reliability counters (query_qp).
struct QpInfo {
  hca::QpState state = hca::QpState::Ready;
  hca::QpAttrs attrs;
  hca::QpStats stats;
};

/// Registered-region handle.
struct Mr {
  std::uint32_t lkey = 0;
  std::uint32_t rkey = 0;  // == lkey in this simulation
  VirtAddr addr = 0;
  std::uint64_t length = 0;
};

class Context;

/// RC queue-pair handle bound to its owning verbs::Context's CQs.
class Qp {
 public:
  std::uint32_t qp_num() const { return qp_->qp_num(); }

  /// Connect two QPs (both directions).
  static void connect(Qp& a, Qp& b) {
    a.qp_->connect(b.qp_);
    b.qp_->connect(a.qp_);
  }

 private:
  friend class Context;
  explicit Qp(hca::QueuePair* qp) : qp_(qp) {}
  hca::QueuePair* qp_;
};

class Context {
 public:
  Context(sim::Context& sc, mem::AddressSpace& space, hca::Adapter& hca,
          DriverConfig drv = {})
      : sc_(&sc), space_(&space), hca_(&hca), drv_(drv) {
    send_cq_p_ = &own_send_cq_;
    recv_cq_p_ = &own_recv_cq_;
  }

  /// Bind to externally owned CQs (used when QPs were wired before the
  /// rank program started, e.g. by core::Cluster).
  Context(sim::Context& sc, mem::AddressSpace& space, hca::Adapter& hca,
          DriverConfig drv, hca::CompletionQueue* send_cq,
          hca::CompletionQueue* recv_cq)
      : sc_(&sc), space_(&space), hca_(&hca), drv_(drv) {
    IBP_CHECK(send_cq != nullptr && recv_cq != nullptr);
    send_cq_p_ = send_cq;
    recv_cq_p_ = recv_cq;
  }

  sim::Context& sim() { return *sc_; }
  mem::AddressSpace& space() { return *space_; }
  hca::Adapter& adapter() { return *hca_; }
  const DriverConfig& driver() const { return drv_; }

  /// Register a buffer; advances virtual time by the registration cost
  /// (pin + translate + ship, per the backing page size and driver mode).
  Mr reg_mr(VirtAddr addr, std::uint64_t len) {
    const mem::Mapping* m = space_->find(addr, len);
    IBP_CHECK(m != nullptr, "reg_mr over unmapped range");
    const std::uint64_t trans =
        (m->kind == mem::PageKind::Huge && drv_.hugepage_passthrough)
            ? kHugePageSize
            : kSmallPageSize;
    auto [mr, cost] = hca_->reg_mr(*space_, addr, len, trans);
    sc_->advance(cost);
    return Mr{mr->lkey, mr->lkey, addr, len};
  }

  void dereg_mr(const Mr& mr) { sc_->advance(hca_->dereg_mr(mr.lkey)); }

  /// Attach a visibility monitor to a registered region (nullptr
  /// detaches): inbound one-sided writes into it record events with their
  /// virtual arrival time, so a memory-polling receiver (ring channels)
  /// observes bytes no earlier than the wire delivered them.
  void set_write_monitor(const Mr& mr, hca::WriteMonitor* mon) {
    hca_->set_write_monitor(mr.lkey, mon);
  }

  Qp create_qp() {
    hca::QueuePair& qp = hca_->create_qp(send_cq_p_, recv_cq_p_);
    qp.set_attrs(drv_.qp);
    return Qp(&qp);
  }

  /// Wrap a QP created directly on the adapter (must target this
  /// context's CQs).
  Qp wrap_qp(hca::QueuePair& qp) { return Qp(&qp); }

  /// Enable the multi-thread QP/CQ arbitration model for this context.
  /// SharedLocked charges a lock-acquire plus a cache-bounce (when the
  /// previous holder was another track) per post/poll, and serializes the
  /// ops behind a virtual-time lock — but only while more than one sim
  /// track is alive on the rank. PerThreadQp and Dispatcher post
  /// uncontended here; their costs (multiplied footprint, hand-off) are
  /// paid by the layers that own them. Never calling this keeps the
  /// legacy single-thread timing bit-exact.
  void set_share_mode(hca::ShareMode m) {
    share_mode_ = m;
    arbitrate_ = true;
  }
  hca::ShareMode share_mode() const { return share_mode_; }

  /// State + reliability counters of a QP (ibv_query_qp equivalent).
  QpInfo query_qp(const Qp& qp) const {
    return QpInfo{qp.qp_->state(), qp.qp_->attrs(), qp.qp_->qp_stats()};
  }

  /// Recycle an errored QP back to a usable state (ERR→RESET→RTS).
  void reset_qp(Qp& qp) { qp.qp_->reset(); }

  void post_send(Qp& qp, const hca::SendWr& wr) {
    if (!contended()) {
      sc_->advance(qp.qp_->post_send(wr, sc_->now()));
      return;
    }
    auto& a = hca_->device_arb();
    TimePs extra = 0;
    const TimePs pre = lock_pre(a, &extra);
    const TimePs c = qp.qp_->post_send(wr, sc_->now() + pre);
    a.busy_until = sc_->now() + pre + c;
    hca_->note_qp_contention(extra);
    sc_->advance(pre + c);
  }

  void post_recv(Qp& qp, const hca::RecvWr& wr) {
    if (!contended()) {
      sc_->advance(qp.qp_->post_recv(wr, sc_->now()));
      return;
    }
    auto& a = hca_->device_arb();
    TimePs extra = 0;
    const TimePs pre = lock_pre(a, &extra);
    const TimePs c = qp.qp_->post_recv(wr, sc_->now() + pre);
    a.busy_until = sc_->now() + pre + c;
    hca_->note_qp_contention(extra);
    sc_->advance(pre + c);
  }

  /// Non-blocking poll; charges one poll probe.
  std::optional<hca::Cqe> poll_send() { return poll(*send_cq_p_); }
  std::optional<hca::Cqe> poll_recv() { return poll(*recv_cq_p_); }

  /// Blocking poll: fast-forwards virtual time to the next completion.
  hca::Cqe wait_send() { return wait(*send_cq_p_); }
  hca::Cqe wait_recv() { return wait(*recv_cq_p_); }

  hca::CompletionQueue& send_cq() { return *send_cq_p_; }
  hca::CompletionQueue& recv_cq() { return *recv_cq_p_; }

 private:
  /// SharedLocked arbitration applies only while several tracks are alive;
  /// otherwise (including every legacy single-thread program) posts and
  /// polls take the historical uncontended path.
  bool contended() const {
    return arbitrate_ && share_mode_ == hca::ShareMode::SharedLocked &&
           sc_->live_tracks() > 1;
  }

  /// Lock-acquire preamble for a shared QP/CQ: wait out the current
  /// holder, pay the acquire atomic, and bounce the cachelines when the
  /// previous holder was another lane. Returns the full preamble cost and
  /// stores the contended part (wait + bounce) in `*extra`.
  TimePs lock_pre(hca::ArbState& a, TimePs* extra) {
    const TimePs now = sc_->now();
    const TimePs wait = a.busy_until > now ? a.busy_until - now : 0;
    const int lane = sc_->track();
    const TimePs bounce = (a.last_lane >= 0 && a.last_lane != lane)
                              ? hca_->config().qp_cache_bounce
                              : 0;
    a.last_lane = lane;
    *extra = wait + bounce;
    return wait + hca_->config().qp_lock_acquire + bounce;
  }

  std::optional<hca::Cqe> poll(hca::CompletionQueue& cq) {
    if (!contended()) {
      auto c = cq.poll(sc_->now());
      sc_->advance(c ? hca_->config().poll_cqe : hca_->config().poll_empty);
      return c;
    }
    auto& a = hca_->device_arb();
    TimePs extra = 0;
    const TimePs pre = lock_pre(a, &extra);
    auto c = cq.poll(sc_->now() + pre);
    const TimePs cost =
        c ? hca_->config().poll_cqe : hca_->config().poll_empty;
    a.busy_until = sc_->now() + pre + cost;
    if (extra > 0) hca_->note_cq_contention(extra);
    sc_->advance(pre + cost);
    return c;
  }

  hca::Cqe wait(hca::CompletionQueue& cq) {
    // Identical cost sequence to the historical loop (probe, then either
    // consume or sleep until a CQE can be ready); routing the probe
    // through poll() adds the arbitration charges under contention.
    for (;;) {
      if (auto c = poll(cq)) return *c;
      sc_->wait_until([&cq] { return cq.next_ready(); });
    }
  }

  sim::Context* sc_;
  mem::AddressSpace* space_;
  hca::Adapter* hca_;
  DriverConfig drv_;
  hca::ShareMode share_mode_ = hca::ShareMode::SharedLocked;
  bool arbitrate_ = false;
  hca::CompletionQueue own_send_cq_;
  hca::CompletionQueue own_recv_cq_;
  hca::CompletionQueue* send_cq_p_ = nullptr;
  hca::CompletionQueue* recv_cq_p_ = nullptr;
};

}  // namespace ibp::verbs
