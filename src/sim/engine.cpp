#include "ibp/sim/engine.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace ibp::sim {
namespace {

/// Internal unwind signal used when the run is aborted by another rank's
/// error; never surfaced to the user.
struct AbortSignal {};

}  // namespace

TimePs Engine::now_of(RankId r) const {
  const auto& rk = ranks_[static_cast<std::size_t>(r)];
  return rk.tracks[static_cast<std::size_t>(rk.cur)]->time;
}

TrackId Engine::track_of(RankId r) const {
  return ranks_[static_cast<std::size_t>(r)].cur;
}

int Engine::live_tracks_of(RankId r) const {
  const auto& rk = ranks_[static_cast<std::size_t>(r)];
  int live = 0;
  for (const auto& ts : rk.tracks)
    if (ts->state != State::Finished) ++live;
  return live;
}

void Engine::run(const RankFn& fn) {
  std::vector<RankFn> fns(ranks_.size(), fn);
  run(fns);
}

void Engine::run(const std::vector<RankFn>& fns) {
  IBP_CHECK(fns.size() == ranks_.size(), "one program per rank required");
  for (const auto& rk : ranks_)
    IBP_CHECK(rk.tracks[0]->state == State::NotStarted,
              "Engine::run is single-use");

  for (auto& rk : ranks_) rk.tracks[0]->state = State::Runnable;

  std::vector<std::thread> threads;
  threads.reserve(ranks_.size());
  for (int r = 0; r < nranks(); ++r) {
    threads.emplace_back([this, r, &fns] {
      Context ctx(this, r);
      auto& ts = *ranks_[static_cast<std::size_t>(r)].tracks[0];
      try {
        {
          std::unique_lock<std::mutex> lock(mu_);
          await_turn(lock, r, 0);
        }
        fns[static_cast<std::size_t>(r)](ctx);
        std::unique_lock<std::mutex> lock(mu_);
        ts.state = State::Finished;
        ts.active = false;
        schedule_next(lock);
      } catch (const AbortSignal&) {
        // Another rank failed; just unwind quietly.
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        ts.state = State::Finished;
        ts.active = false;
        abort_all(lock, std::current_exception());
      }
    });
  }

  {
    // Kick off the first lane.
    std::unique_lock<std::mutex> lock(mu_);
    bool any_active = false;
    for (const auto& rk : ranks_)
      for (const auto& ts : rk.tracks) any_active |= ts->active;
    if (!any_active && !aborted_) schedule_next(lock);
  }

  for (auto& t : threads) t.join();

  // Reap spawned-track OS threads (they exit once their track finishes or
  // the run aborts; unjoined tracks are still driven by the scheduler
  // until every lane is done). Spawning can append to the track vectors
  // until the last lane exits, so rescan until no joinable thread is left.
  for (;;) {
    std::thread th;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (auto& rk : ranks_) {
        for (auto& ts : rk.tracks) {
          if (ts->thread.joinable()) {
            th = std::move(ts->thread);
            break;
          }
        }
        if (th.joinable()) break;
      }
    }
    if (!th.joinable()) break;
    th.join();
  }

  if (error_) std::rethrow_exception(error_);
}

void Engine::advance_rank(RankId r, TimePs dt) {
  auto& rk = ranks_[static_cast<std::size_t>(r)];
  std::unique_lock<std::mutex> lock(mu_);
  // During an abort, destructors on unwinding stacks may still call
  // advance(); the run is over, so let them through as no-ops.
  if (aborted_) return;
  const TrackId t = rk.cur;
  auto& ts = *rk.tracks[static_cast<std::size_t>(t)];
  IBP_CHECK(ts.active, "advance() outside of scheduled execution");
  ts.time += dt;
  ts.active = false;
  schedule_next(lock);
  await_turn(lock, r, t);
}

void Engine::yield_rank(RankId r) { advance_rank(r, 0); }

void Engine::wait_rank(RankId r,
                       const std::function<std::optional<TimePs>()>& pred) {
  auto& rk = ranks_[static_cast<std::size_t>(r)];
  std::unique_lock<std::mutex> lock(mu_);
  if (aborted_) return;
  const TrackId t = rk.cur;
  auto& ts = *rk.tracks[static_cast<std::size_t>(t)];
  IBP_CHECK(ts.active, "wait_until() outside of scheduled execution");
  ts.state = State::Blocked;
  ts.pred = pred;
  ts.active = false;
  schedule_next(lock);
  await_turn(lock, r, t);
  ts.pred = nullptr;
}

TrackId Engine::spawn_track(RankId r, std::function<void(Context&)> fn) {
  auto& rk = ranks_[static_cast<std::size_t>(r)];
  std::unique_lock<std::mutex> lock(mu_);
  if (aborted_) return -1;  // unwinding; the track will never run
  auto& parent = *rk.tracks[static_cast<std::size_t>(rk.cur)];
  IBP_CHECK(parent.active, "spawn_track() outside of scheduled execution");

  const TrackId id = static_cast<TrackId>(rk.tracks.size());
  rk.tracks.push_back(std::make_unique<TrackState>());
  auto& ts = *rk.tracks.back();
  ts.time = parent.time;
  ts.state = State::Runnable;
  // The spawner keeps its turn; the new track parks in await_turn until
  // the scheduler picks its (time, rank, track) key.
  ts.thread = std::thread(
      [this, r, id, fn = std::move(fn)] { track_body(r, id, fn); });
  return id;
}

void Engine::track_body(RankId r, TrackId t,
                        const std::function<void(Context&)>& fn) {
  Context ctx(this, r);
  TrackState* tsp = nullptr;
  {
    // The spawner is still running and may grow the track vector; fetch
    // the (heap-stable) TrackState under the lock.
    std::unique_lock<std::mutex> lock(mu_);
    tsp = ranks_[static_cast<std::size_t>(r)].tracks[
        static_cast<std::size_t>(t)].get();
  }
  auto& ts = *tsp;
  try {
    {
      std::unique_lock<std::mutex> lock(mu_);
      await_turn(lock, r, t);
    }
    fn(ctx);
    std::unique_lock<std::mutex> lock(mu_);
    ts.state = State::Finished;
    ts.active = false;
    schedule_next(lock);
  } catch (const AbortSignal&) {
    // Another lane failed; just unwind quietly.
  } catch (...) {
    std::unique_lock<std::mutex> lock(mu_);
    ts.state = State::Finished;
    ts.active = false;
    abort_all(lock, std::current_exception());
  }
}

void Engine::join_track(RankId r, TrackId t) {
  TrackState* ts = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto& rk = ranks_[static_cast<std::size_t>(r)];
    IBP_CHECK(t > 0 && t < static_cast<TrackId>(rk.tracks.size()),
              "join_track: no such spawned track");
    IBP_CHECK(t != rk.cur, "join_track: a track cannot join itself");
    ts = rk.tracks[static_cast<std::size_t>(t)].get();
  }
  wait_rank(r, [ts]() -> std::optional<TimePs> {
    if (ts->state != State::Finished) return std::nullopt;
    return ts->time;
  });
}

void Engine::schedule_next(std::unique_lock<std::mutex>& lock) {
  (void)lock;
  if (aborted_) return;

  // Candidate = every runnable lane at its clock, plus every blocked lane
  // whose predicate is ready, at max(clock, ready time). Choosing the
  // global minimum (time, rank, track) keeps execution in virtual-time
  // order, so no lane can later be affected by an event earlier than its
  // clock. The rank-major, track-minor scan with a strictly-less compare
  // realizes the (time, rank, track) tie-break.
  constexpr TimePs kInf = std::numeric_limits<TimePs>::max();
  TimePs best_time = kInf;
  int best_rank = -1;
  TrackId best_track = 0;
  bool best_blocked = false;
  TimePs best_ready = 0;
  bool any_unfinished = false;

  for (int r = 0; r < nranks(); ++r) {
    auto& rk = ranks_[static_cast<std::size_t>(r)];
    for (TrackId k = 0; k < static_cast<TrackId>(rk.tracks.size()); ++k) {
      auto& ts = *rk.tracks[static_cast<std::size_t>(k)];
      if (ts.state == State::Finished) continue;
      any_unfinished = true;
      if (ts.state == State::Runnable) {
        if (ts.time < best_time) {
          best_time = ts.time;
          best_rank = r;
          best_track = k;
          best_blocked = false;
        }
      } else if (ts.state == State::Blocked) {
        const auto ready = ts.pred();
        if (ready) {
          const TimePs t = std::max(ts.time, *ready);
          if (t < best_time) {
            best_time = t;
            best_rank = r;
            best_track = k;
            best_blocked = true;
            best_ready = t;
          }
        }
      }
    }
  }

  if (!any_unfinished) {
    // Run complete; Engine::run joins the exiting threads.
    return;
  }
  if (best_rank < 0) {
    abort_all(lock, std::make_exception_ptr(SimError(
                        "virtual-time deadlock: every unfinished rank is "
                        "blocked with no ready predicate")));
    return;
  }

  // The chosen (time, rank, track) key is the global frontier: no
  // unfinished lane can act earlier. Fire the sampler for every period
  // boundary the frontier just crossed while no lane is active.
  if (sampler_ && sample_period_ != 0) {
    while (next_sample_ <= best_time) {
      sampler_(next_sample_);
      next_sample_ += sample_period_;
    }
  }

  auto& rk = ranks_[static_cast<std::size_t>(best_rank)];
  auto& next = *rk.tracks[static_cast<std::size_t>(best_track)];
  if (best_blocked) {
    next.state = State::Runnable;
    next.time = best_ready;
  }
  rk.cur = best_track;
  next.active = true;
  next.cv.notify_one();
}

void Engine::await_turn(std::unique_lock<std::mutex>& lock, RankId r,
                        TrackId t) {
  auto& ts = *ranks_[static_cast<std::size_t>(r)].tracks[
      static_cast<std::size_t>(t)];
  ts.cv.wait(lock, [&] { return ts.active || aborted_; });
  if (aborted_) throw AbortSignal{};
}

void Engine::abort_all(std::unique_lock<std::mutex>& lock,
                       std::exception_ptr err) {
  (void)lock;
  if (!error_) error_ = std::move(err);
  aborted_ = true;
  for (auto& rk : ranks_)
    for (auto& ts : rk.tracks) ts->cv.notify_all();
}

}  // namespace ibp::sim
