#include "ibp/sim/engine.hpp"

#include <algorithm>
#include <limits>

namespace ibp::sim {
namespace {

/// Internal unwind signal used when the run is aborted by another rank's
/// error; never surfaced to the user.
struct AbortSignal {};

}  // namespace

TimePs Engine::now_of(RankId r) const {
  return ranks_[static_cast<std::size_t>(r)].time;
}

void Engine::run(const RankFn& fn) {
  std::vector<RankFn> fns(ranks_.size(), fn);
  run(fns);
}

void Engine::run(const std::vector<RankFn>& fns) {
  IBP_CHECK(fns.size() == ranks_.size(), "one program per rank required");
  for (const auto& rs : ranks_)
    IBP_CHECK(rs.state == State::NotStarted, "Engine::run is single-use");

  for (auto& rs : ranks_) rs.state = State::Runnable;

  std::vector<std::thread> threads;
  threads.reserve(ranks_.size());
  for (int r = 0; r < nranks(); ++r) {
    threads.emplace_back([this, r, &fns] {
      Context ctx(this, r);
      auto& rs = ranks_[static_cast<std::size_t>(r)];
      try {
        {
          std::unique_lock<std::mutex> lock(mu_);
          await_turn(lock, r);
        }
        fns[static_cast<std::size_t>(r)](ctx);
        std::unique_lock<std::mutex> lock(mu_);
        rs.state = State::Finished;
        rs.active = false;
        schedule_next(lock);
      } catch (const AbortSignal&) {
        // Another rank failed; just unwind quietly.
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        rs.state = State::Finished;
        rs.active = false;
        abort_all(lock, std::current_exception());
      }
    });
  }

  {
    // Kick off the first rank.
    std::unique_lock<std::mutex> lock(mu_);
    bool any_active = false;
    for (const auto& rs : ranks_) any_active |= rs.active;
    if (!any_active && !aborted_) schedule_next(lock);
  }

  for (auto& t : threads) t.join();
  if (error_) std::rethrow_exception(error_);
}

void Engine::advance_rank(RankId r, TimePs dt) {
  auto& rs = ranks_[static_cast<std::size_t>(r)];
  std::unique_lock<std::mutex> lock(mu_);
  // During an abort, destructors on unwinding stacks may still call
  // advance(); the run is over, so let them through as no-ops.
  if (aborted_) return;
  IBP_CHECK(rs.active, "advance() outside of scheduled execution");
  rs.time += dt;
  rs.active = false;
  schedule_next(lock);
  await_turn(lock, r);
}

void Engine::yield_rank(RankId r) { advance_rank(r, 0); }

void Engine::wait_rank(RankId r,
                       const std::function<std::optional<TimePs>()>& pred) {
  auto& rs = ranks_[static_cast<std::size_t>(r)];
  std::unique_lock<std::mutex> lock(mu_);
  if (aborted_) return;
  IBP_CHECK(rs.active, "wait_until() outside of scheduled execution");
  rs.state = State::Blocked;
  rs.pred = pred;
  rs.active = false;
  schedule_next(lock);
  await_turn(lock, r);
  rs.pred = nullptr;
}

void Engine::schedule_next(std::unique_lock<std::mutex>& lock) {
  (void)lock;
  if (aborted_) return;

  // Candidate = every runnable rank at its clock, plus every blocked rank
  // whose predicate is ready, at max(clock, ready time). Choosing the
  // global minimum (time, rank) keeps execution in virtual-time order, so
  // no rank can later be affected by an event earlier than its clock.
  constexpr TimePs kInf = std::numeric_limits<TimePs>::max();
  TimePs best_time = kInf;
  int best_rank = -1;
  bool best_blocked = false;
  TimePs best_ready = 0;
  bool any_unfinished = false;

  for (int r = 0; r < nranks(); ++r) {
    auto& rs = ranks_[static_cast<std::size_t>(r)];
    if (rs.state == State::Finished) continue;
    any_unfinished = true;
    if (rs.state == State::Runnable) {
      if (rs.time < best_time) {
        best_time = rs.time;
        best_rank = r;
        best_blocked = false;
      }
    } else if (rs.state == State::Blocked) {
      const auto ready = rs.pred();
      if (ready) {
        const TimePs t = std::max(rs.time, *ready);
        if (t < best_time) {
          best_time = t;
          best_rank = r;
          best_blocked = true;
          best_ready = t;
        }
      }
    }
  }

  if (!any_unfinished) {
    // Run complete; Engine::run joins the exiting threads.
    return;
  }
  if (best_rank < 0) {
    abort_all(lock, std::make_exception_ptr(SimError(
                        "virtual-time deadlock: every unfinished rank is "
                        "blocked with no ready predicate")));
    return;
  }

  // The chosen (time, rank) key is the global frontier: no unfinished
  // rank can act earlier. Fire the sampler for every period boundary the
  // frontier just crossed while no rank is active.
  if (sampler_ && sample_period_ != 0) {
    while (next_sample_ <= best_time) {
      sampler_(next_sample_);
      next_sample_ += sample_period_;
    }
  }

  auto& next = ranks_[static_cast<std::size_t>(best_rank)];
  if (best_blocked) {
    next.state = State::Runnable;
    next.time = best_ready;
  }
  next.active = true;
  next.cv.notify_one();
}

void Engine::await_turn(std::unique_lock<std::mutex>& lock, RankId r) {
  auto& rs = ranks_[static_cast<std::size_t>(r)];
  rs.cv.wait(lock, [&] { return rs.active || aborted_; });
  if (aborted_) throw AbortSignal{};
}

void Engine::abort_all(std::unique_lock<std::mutex>& lock,
                       std::exception_ptr err) {
  (void)lock;
  if (!error_) error_ = std::move(err);
  aborted_ = true;
  for (auto& rs : ranks_) rs.cv.notify_all();
}

}  // namespace ibp::sim
