#pragma once

// Virtual-time event tracing in Chrome trace-event format.
//
// Records named spans per rank and serializes them as a JSON array loadable
// by chrome://tracing / Perfetto ("X" complete events; timestamps in
// microseconds of *virtual* time, one thread lane per rank). Because the
// engine runs one rank at a time, no locking is needed.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "ibp/common/types.hpp"

namespace ibp::sim {

class Tracer {
 public:
  /// Record a completed span [start, start+duration) on `rank`'s lane.
  void add(RankId rank, std::string category, std::string name,
           TimePs start, TimePs duration) {
    events_.push_back(Event{rank, std::move(category), std::move(name),
                            start, duration});
  }

  /// Record an instantaneous marker.
  void mark(RankId rank, std::string category, std::string name,
            TimePs at) {
    add(rank, std::move(category), std::move(name), at, 0);
  }

  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Chrome trace-event JSON (the "JSON array" flavour).
  void write_json(std::ostream& os) const {
    os << "[\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const Event& e = events_[i];
      os << R"(  {"pid": 1, "tid": )" << e.rank << R"(, "ph": ")"
         << (e.duration == 0 ? 'i' : 'X') << R"(", "cat": ")" << e.category
         << R"(", "name": ")" << escaped(e.name) << R"(", "ts": )"
         << ps_to_us(e.start);
      if (e.duration != 0) os << R"(, "dur": )" << ps_to_us(e.duration);
      if (e.duration == 0) os << R"(, "s": "t")";
      os << "}" << (i + 1 < events_.size() ? "," : "") << "\n";
    }
    os << "]\n";
  }

 private:
  struct Event {
    RankId rank;
    std::string category;
    std::string name;
    TimePs start;
    TimePs duration;
  };

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
    }
    return out;
  }

  std::vector<Event> events_;
};

}  // namespace ibp::sim
