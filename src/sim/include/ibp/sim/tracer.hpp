#pragma once

// Virtual-time event tracing in Chrome trace-event format.
//
// Records the full Chrome trace model and serializes it as a JSON array
// loadable by chrome://tracing / Perfetto (timestamps in microseconds of
// *virtual* time, one thread lane per rank):
//
//   * "X" complete spans and "i" instant markers per rank lane;
//   * "C" counter tracks (sampled from the telemetry MetricsRegistry on a
//     virtual-time cadence by the sim engine);
//   * "s"/"f" flow events linking a send span to its matching recv span
//     across rank lanes (paired by category + name + id);
//   * "b"/"e" async spans (nestable events paired by category + id +
//     name) — stages of one logical request that hop between rank lanes
//     without the strict nesting "X" spans require;
//   * "M" metadata records naming the process and each rank's lane.
//
// Because the engine runs one rank at a time, no locking is needed.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "ibp/common/types.hpp"

namespace ibp::sim {

class Tracer {
 public:
  enum class Kind {
    Span, Instant, Counter, FlowStart, FlowEnd, AsyncBegin, AsyncEnd
  };

  struct Event {
    Kind kind = Kind::Span;
    RankId rank = 0;
    std::string category;
    std::string name;
    TimePs start = 0;
    TimePs duration = 0;      // Span only
    double value = 0.0;       // Counter only
    std::uint64_t flow_id = 0;  // FlowStart/FlowEnd/AsyncBegin/AsyncEnd
  };

  /// Record a completed span [start, start+duration) on `rank`'s lane
  /// (duration 0 records an instant marker).
  void add(RankId rank, std::string category, std::string name,
           TimePs start, TimePs duration) {
    Event e;
    e.kind = duration == 0 ? Kind::Instant : Kind::Span;
    e.rank = rank;
    e.category = std::move(category);
    e.name = std::move(name);
    e.start = start;
    e.duration = duration;
    events_.push_back(std::move(e));
  }

  /// Record an instantaneous marker.
  void mark(RankId rank, std::string category, std::string name,
            TimePs at) {
    add(rank, std::move(category), std::move(name), at, 0);
  }

  /// Record one sample of the counter track `name` at virtual time `at`.
  void counter(std::string name, TimePs at, double value) {
    Event e;
    e.kind = Kind::Counter;
    e.category = "telemetry";
    e.name = std::move(name);
    e.start = at;
    e.value = value;
    events_.push_back(std::move(e));
  }

  /// Open flow `id` at `at` on `rank`'s lane. The flow renders as an
  /// arrow to the matching flow_end with the same category, name and id.
  void flow_begin(RankId rank, std::string category, std::string name,
                  TimePs at, std::uint64_t id) {
    Event e;
    e.kind = Kind::FlowStart;
    e.rank = rank;
    e.category = std::move(category);
    e.name = std::move(name);
    e.start = at;
    e.flow_id = id;
    events_.push_back(std::move(e));
  }

  /// Close flow `id` at `at` on `rank`'s lane (binding point "enclosing
  /// slice", so the arrow lands on the span containing `at`).
  void flow_end(RankId rank, std::string category, std::string name,
                TimePs at, std::uint64_t id) {
    Event e;
    e.kind = Kind::FlowEnd;
    e.rank = rank;
    e.category = std::move(category);
    e.name = std::move(name);
    e.start = at;
    e.flow_id = id;
    events_.push_back(std::move(e));
  }

  /// Open async span `id` at `at` on `rank`'s lane. Chrome pairs it with
  /// the async_end carrying the same category, id and name, so one
  /// logical request renders as a stack of stage spans even when the
  /// stages land on different rank lanes.
  void async_begin(RankId rank, std::string category, std::string name,
                   TimePs at, std::uint64_t id) {
    Event e;
    e.kind = Kind::AsyncBegin;
    e.rank = rank;
    e.category = std::move(category);
    e.name = std::move(name);
    e.start = at;
    e.flow_id = id;
    events_.push_back(std::move(e));
  }

  /// Close async span `id` at `at` on `rank`'s lane.
  void async_end(RankId rank, std::string category, std::string name,
                 TimePs at, std::uint64_t id) {
    Event e;
    e.kind = Kind::AsyncEnd;
    e.rank = rank;
    e.category = std::move(category);
    e.name = std::move(name);
    e.start = at;
    e.flow_id = id;
    events_.push_back(std::move(e));
  }

  void set_process_name(std::string name) { process_name_ = std::move(name); }
  void set_thread_name(RankId rank, std::string name) {
    thread_names_[rank] = std::move(name);
  }

  std::size_t size() const { return events_.size(); }
  const std::vector<Event>& events() const { return events_; }
  void clear() {
    events_.clear();
    process_name_.clear();
    thread_names_.clear();
  }

  /// Chrome trace-event JSON (the "JSON array" flavour). Metadata records
  /// come first, then events in recording order.
  void write_json(std::ostream& os) const {
    os << "[\n";
    bool any = false;
    auto sep = [&] {
      if (any) os << ",\n";
      any = true;
    };
    if (!process_name_.empty()) {
      sep();
      os << R"(  {"pid": 1, "tid": 0, "ph": "M", "cat": "__metadata", )"
         << R"("name": "process_name", "args": {"name": ")"
         << escaped(process_name_) << R"("}})";
    }
    for (const auto& [rank, name] : thread_names_) {
      sep();
      os << R"(  {"pid": 1, "tid": )" << rank
         << R"(, "ph": "M", "cat": "__metadata", "name": "thread_name", )"
         << R"("args": {"name": ")" << escaped(name) << R"("}})";
    }
    for (const Event& e : events_) {
      sep();
      switch (e.kind) {
        case Kind::Span:
        case Kind::Instant:
          os << R"(  {"pid": 1, "tid": )" << e.rank << R"(, "ph": ")"
             << (e.kind == Kind::Instant ? 'i' : 'X') << R"(", "cat": ")"
             << escaped(e.category) << R"(", "name": ")" << escaped(e.name)
             << R"(", "ts": )" << ps_to_us(e.start);
          if (e.kind == Kind::Span)
            os << R"(, "dur": )" << ps_to_us(e.duration);
          else
            os << R"(, "s": "t")";
          os << "}";
          break;
        case Kind::Counter:
          os << R"(  {"pid": 1, "tid": 0, "ph": "C", "cat": ")"
             << escaped(e.category) << R"(", "name": ")" << escaped(e.name)
             << R"(", "ts": )" << ps_to_us(e.start)
             << R"(, "args": {"value": )" << e.value << "}}";
          break;
        case Kind::FlowStart:
        case Kind::FlowEnd:
          os << R"(  {"pid": 1, "tid": )" << e.rank << R"(, "ph": ")"
             << (e.kind == Kind::FlowStart ? 's' : 'f') << R"(", "cat": ")"
             << escaped(e.category) << R"(", "name": ")" << escaped(e.name)
             << R"(", "ts": )" << ps_to_us(e.start) << R"(, "id": )"
             << e.flow_id;
          if (e.kind == Kind::FlowEnd) os << R"(, "bp": "e")";
          os << "}";
          break;
        case Kind::AsyncBegin:
        case Kind::AsyncEnd:
          os << R"(  {"pid": 1, "tid": )" << e.rank << R"(, "ph": ")"
             << (e.kind == Kind::AsyncBegin ? 'b' : 'e') << R"(", "cat": ")"
             << escaped(e.category) << R"(", "name": ")" << escaped(e.name)
             << R"(", "ts": )" << ps_to_us(e.start) << R"(, "id": )"
             << e.flow_id << "}";
          break;
      }
    }
    os << (any ? "\n]\n" : "]\n");
  }

  /// JSON string escaping per RFC 8259: quote, backslash, and every
  /// control character below 0x20 (as \u00XX — never silently dropped).
  static std::string escaped(const std::string& s) {
    static const char* hex = "0123456789abcdef";
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      const auto u = static_cast<unsigned char>(c);
      if (c == '"' || c == '\\') {
        out.push_back('\\');
        out.push_back(c);
      } else if (u < 0x20) {
        out += "\\u00";
        out.push_back(hex[u >> 4]);
        out.push_back(hex[u & 0xf]);
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

 private:
  std::vector<Event> events_;
  std::string process_name_;
  std::map<RankId, std::string> thread_names_;
};

}  // namespace ibp::sim
