#pragma once

// Deterministic virtual-time execution engine.
//
// Each simulated rank runs its program on a dedicated OS thread, but the
// engine admits exactly one execution lane at a time: always the runnable
// lane with the smallest (virtual time, rank id, track id) key. Lanes
// consume virtual time via Context::advance() and block on conditions via
// Context::wait_until(), whose predicate reports the earliest virtual time
// the condition holds.
//
// A rank may model T application threads as *tracks*: TrackId-addressed
// virtual-time lanes spawned with Context::spawn_track() and awaited with
// Context::join_track(). Track 0 is the rank program itself. Tracks of one
// rank share all of the rank's simulation state (Context, adapters, comms)
// — safe because the engine still admits exactly one lane globally, in
// virtual-time order. With a single track per rank the schedule, and thus
// every trace and result, is bit-identical to the historical rank-only
// engine.
//
// Because execution is serialized in global virtual-time order, shared
// simulation state (queues, adapters, memory) needs no further locking and
// every run is bit-reproducible. If every unfinished lane is blocked with
// no predicate ready, the engine raises a deadlock error on all ranks.

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"

namespace ibp::sim {

class Engine;

/// Identifies one virtual-time lane within a rank. Track 0 is the rank's
/// main program; spawn_track() hands out 1, 2, ... in spawn order.
using TrackId = int;

/// Per-rank handle passed to rank programs; all engine interaction goes
/// through it. Valid only inside Engine::run(). Calls are routed to the
/// rank's *currently executing track*, so one Context (and anything built
/// on it — comms, verbs contexts) is transparently shared by all tracks
/// of the rank.
class Context {
 public:
  RankId rank() const { return rank_; }
  int nranks() const;

  /// Id of the track this call executes on (0 = the rank program).
  TrackId track() const;

  /// Number of unfinished tracks on this rank (>= 1 while running).
  int live_tracks() const;

  /// Trace lane for the calling track: rank for track 0 (legacy lanes),
  /// rank + track * nranks for spawned tracks — distinct Chrome-trace
  /// tids that never collide with another rank's lanes.
  int trace_lane() const;

  /// Current virtual time of this track.
  TimePs now() const;

  /// Consume `dt` of virtual time (compute, overheads). May hand control to
  /// another lane whose clock is behind.
  void advance(TimePs dt);

  /// Block until `pred` reports a ready time. The predicate returns
  /// std::nullopt while the condition is unsatisfied and the earliest
  /// virtual time at which it is satisfied once it is. On resumption this
  /// track's clock is max(current, ready time). Predicates are re-evaluated
  /// by the scheduler whenever any lane yields, so they must be cheap,
  /// side-effect free, and monotone (once ready, stay ready with a
  /// non-increasing ready time).
  void wait_until(const std::function<std::optional<TimePs>()>& pred);

  /// Sleep until absolute virtual time `t` (no-op if already past it).
  void sleep_until(TimePs t);

  /// Reschedule without consuming time (lets equal-time peers interleave
  /// deterministically by (rank, track) id).
  void yield();

  /// Start a new track on this rank at the caller's current virtual time.
  /// The track runs `fn` with this rank's Context; the caller keeps
  /// executing (the new track becomes schedulable at the next yield
  /// point). Returns the new track's id.
  TrackId spawn_track(std::function<void(Context&)> fn);

  /// Block until track `t` of this rank finishes; on resumption the
  /// caller's clock is max(its own clock, the track's final time).
  void join_track(TrackId t);

 private:
  friend class Engine;
  Context(Engine* eng, RankId rank) : eng_(eng), rank_(rank) {}
  Engine* eng_;
  RankId rank_;
};

class Engine {
 public:
  using RankFn = std::function<void(Context&)>;

  explicit Engine(int nranks) : ranks_(static_cast<std::size_t>(nranks)) {
    IBP_CHECK(nranks > 0, "engine needs at least one rank");
    for (auto& rk : ranks_) {
      rk.tracks.push_back(std::make_unique<TrackState>());
    }
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int nranks() const { return static_cast<int>(ranks_.size()); }

  /// Run `fn` on every rank to completion. Rethrows the first rank error.
  void run(const RankFn& fn);

  /// Run one distinct program per rank.
  void run(const std::vector<RankFn>& fns);

  /// Final virtual time of rank `r` after run() returned: the maximum
  /// final time across the rank's tracks (equal to the rank program's
  /// final time when every spawned track was joined).
  TimePs final_time(RankId r) const {
    const auto& rk = ranks_.at(static_cast<std::size_t>(r));
    TimePs m = 0;
    for (const auto& ts : rk.tracks) m = std::max(m, ts->time);
    return m;
  }

  /// Maximum final virtual time across ranks (the run's makespan).
  TimePs makespan() const {
    TimePs m = 0;
    for (int r = 0; r < nranks(); ++r) m = std::max(m, final_time(r));
    return m;
  }

  /// Install a virtual-time sampler: `fn(t)` fires whenever the global
  /// time frontier (the smallest virtual time any unfinished lane can
  /// still act at) crosses a multiple of `period`. The callback runs in
  /// the scheduling gap — no lane is active — so it may safely read any
  /// shared simulation state. Deterministic: the frontier sequence is a
  /// pure function of the rank programs. Call before run(); a period of
  /// 0 (or a null fn) disables sampling.
  void set_sampler(TimePs period, std::function<void(TimePs)> fn) {
    sample_period_ = period;
    sampler_ = std::move(fn);
    next_sample_ = 0;
  }

 private:
  friend class Context;

  enum class State { NotStarted, Runnable, Blocked, Finished };

  struct TrackState {
    TimePs time = 0;
    State state = State::NotStarted;
    std::function<std::optional<TimePs>()> pred;  // valid while Blocked
    std::condition_variable cv;
    bool active = false;   // this track's thread may run right now
    std::thread thread;    // spawned tracks only (track 0 joins in run())
  };

  struct RankState {
    // tracks[0] is the rank program; spawned tracks append. Entries are
    // never erased, so TrackIds stay valid for the whole run.
    std::vector<std::unique_ptr<TrackState>> tracks;
    TrackId cur = 0;  // track currently (or last) holding the rank's turn
  };

  TimePs now_of(RankId r) const;
  TrackId track_of(RankId r) const;
  int live_tracks_of(RankId r) const;
  void advance_rank(RankId r, TimePs dt);
  void wait_rank(RankId r, const std::function<std::optional<TimePs>()>& pred);
  void yield_rank(RankId r);
  TrackId spawn_track(RankId r, std::function<void(Context&)> fn);
  void join_track(RankId r, TrackId t);

  /// Body of a spawned track's OS thread.
  void track_body(RankId r, TrackId t, const std::function<void(Context&)>& fn);

  /// Pick and wake the next lane; caller holds mu_ and has already cleared
  /// its own `active` flag (or finished).
  void schedule_next(std::unique_lock<std::mutex>& lock);

  /// Wait (on the track's cv) until it is this track's turn or the run
  /// aborted.
  void await_turn(std::unique_lock<std::mutex>& lock, RankId r, TrackId t);

  void abort_all(std::unique_lock<std::mutex>& lock, std::exception_ptr err);

  std::vector<RankState> ranks_;
  std::mutex mu_;
  std::exception_ptr error_;
  bool aborted_ = false;

  TimePs sample_period_ = 0;
  std::function<void(TimePs)> sampler_;
  TimePs next_sample_ = 0;
};

inline int Context::nranks() const { return eng_->nranks(); }
inline TrackId Context::track() const { return eng_->track_of(rank_); }
inline int Context::live_tracks() const {
  return eng_->live_tracks_of(rank_);
}
inline int Context::trace_lane() const {
  const TrackId t = track();
  return t == 0 ? static_cast<int>(rank_)
                : static_cast<int>(rank_) + t * nranks();
}
inline TimePs Context::now() const { return eng_->now_of(rank_); }
inline void Context::advance(TimePs dt) { eng_->advance_rank(rank_, dt); }
inline void Context::wait_until(
    const std::function<std::optional<TimePs>()>& pred) {
  eng_->wait_rank(rank_, pred);
}
inline void Context::sleep_until(TimePs t) {
  if (t > now()) advance(t - now());
}
inline void Context::yield() { eng_->yield_rank(rank_); }
inline TrackId Context::spawn_track(std::function<void(Context&)> fn) {
  return eng_->spawn_track(rank_, std::move(fn));
}
inline void Context::join_track(TrackId t) { eng_->join_track(rank_, t); }

}  // namespace ibp::sim
