#pragma once

// Deterministic virtual-time execution engine.
//
// Each simulated rank runs its program on a dedicated OS thread, but the
// engine admits exactly one rank at a time: always the runnable rank with
// the smallest (virtual time, rank id) key. Ranks consume virtual time via
// Context::advance() and block on conditions via Context::wait_until(),
// whose predicate reports the earliest virtual time the condition holds.
//
// Because execution is serialized in global virtual-time order, shared
// simulation state (queues, adapters, memory) needs no further locking and
// every run is bit-reproducible. If every unfinished rank is blocked with
// no predicate ready, the engine raises a deadlock error on all ranks.

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"

namespace ibp::sim {

class Engine;

/// Per-rank handle passed to rank programs; all engine interaction goes
/// through it. Valid only inside Engine::run().
class Context {
 public:
  RankId rank() const { return rank_; }
  int nranks() const;

  /// Current virtual time of this rank.
  TimePs now() const;

  /// Consume `dt` of virtual time (compute, overheads). May hand control to
  /// another rank whose clock is behind.
  void advance(TimePs dt);

  /// Block until `pred` reports a ready time. The predicate returns
  /// std::nullopt while the condition is unsatisfied and the earliest
  /// virtual time at which it is satisfied once it is. On resumption this
  /// rank's clock is max(current, ready time). Predicates are re-evaluated
  /// by the scheduler whenever any rank yields, so they must be cheap,
  /// side-effect free, and monotone (once ready, stay ready with a
  /// non-increasing ready time).
  void wait_until(const std::function<std::optional<TimePs>()>& pred);

  /// Sleep until absolute virtual time `t` (no-op if already past it).
  void sleep_until(TimePs t);

  /// Reschedule without consuming time (lets equal-time peers interleave
  /// deterministically by rank id).
  void yield();

 private:
  friend class Engine;
  Context(Engine* eng, RankId rank) : eng_(eng), rank_(rank) {}
  Engine* eng_;
  RankId rank_;
};

class Engine {
 public:
  using RankFn = std::function<void(Context&)>;

  explicit Engine(int nranks) : ranks_(static_cast<std::size_t>(nranks)) {
    IBP_CHECK(nranks > 0, "engine needs at least one rank");
  }

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int nranks() const { return static_cast<int>(ranks_.size()); }

  /// Run `fn` on every rank to completion. Rethrows the first rank error.
  void run(const RankFn& fn);

  /// Run one distinct program per rank.
  void run(const std::vector<RankFn>& fns);

  /// Final virtual time of rank `r` after run() returned.
  TimePs final_time(RankId r) const {
    return ranks_.at(static_cast<std::size_t>(r)).time;
  }

  /// Maximum final virtual time across ranks (the run's makespan).
  TimePs makespan() const {
    TimePs m = 0;
    for (const auto& r : ranks_) m = std::max(m, r.time);
    return m;
  }

  /// Install a virtual-time sampler: `fn(t)` fires whenever the global
  /// time frontier (the smallest virtual time any unfinished rank can
  /// still act at) crosses a multiple of `period`. The callback runs in
  /// the scheduling gap — no rank is active — so it may safely read any
  /// shared simulation state. Deterministic: the frontier sequence is a
  /// pure function of the rank programs. Call before run(); a period of
  /// 0 (or a null fn) disables sampling.
  void set_sampler(TimePs period, std::function<void(TimePs)> fn) {
    sample_period_ = period;
    sampler_ = std::move(fn);
    next_sample_ = 0;
  }

 private:
  friend class Context;

  enum class State { NotStarted, Runnable, Blocked, Finished };

  struct RankState {
    TimePs time = 0;
    State state = State::NotStarted;
    std::function<std::optional<TimePs>()> pred;  // valid while Blocked
    std::condition_variable cv;
    bool active = false;  // this rank's thread may run right now
  };

  TimePs now_of(RankId r) const;
  void advance_rank(RankId r, TimePs dt);
  void wait_rank(RankId r, const std::function<std::optional<TimePs>()>& pred);
  void yield_rank(RankId r);

  /// Pick and wake the next rank; caller holds mu_ and has already cleared
  /// its own `active` flag (or finished).
  void schedule_next(std::unique_lock<std::mutex>& lock);

  /// Wait (on rank r's cv) until it is this rank's turn or the run aborted.
  void await_turn(std::unique_lock<std::mutex>& lock, RankId r);

  void abort_all(std::unique_lock<std::mutex>& lock, std::exception_ptr err);

  std::vector<RankState> ranks_;
  std::mutex mu_;
  std::exception_ptr error_;
  bool aborted_ = false;

  TimePs sample_period_ = 0;
  std::function<void(TimePs)> sampler_;
  TimePs next_sample_ = 0;
};

inline int Context::nranks() const { return eng_->nranks(); }
inline TimePs Context::now() const { return eng_->now_of(rank_); }
inline void Context::advance(TimePs dt) { eng_->advance_rank(rank_, dt); }
inline void Context::wait_until(
    const std::function<std::optional<TimePs>()>& pred) {
  eng_->wait_rank(rank_, pred);
}
inline void Context::sleep_until(TimePs t) {
  if (t > now()) advance(t - now());
}
inline void Context::yield() { eng_->yield_rank(rank_); }

}  // namespace ibp::sim
