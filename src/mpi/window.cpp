#include "ibp/mpi/window.hpp"

#include <cstring>

namespace ibp::mpi {

Window::Window(Comm& comm, VirtAddr base, std::uint64_t len)
    : comm_(&comm), base_(base), len_(len) {
  IBP_CHECK(len > 0, "empty window");
  core::RankEnv& env = comm_->env();
  local_mr_ = env.verbs().reg_mr(base, len);
  scratch_ = env.alloc(64);
  scratch_mr_ = env.verbs().reg_mr(scratch_, 8);

  // Exchange {base, rkey} pairs.
  const int n = comm_->size();
  const VirtAddr xchg = env.alloc(static_cast<std::uint64_t>(n) * 16 + 16);
  auto* mine = env.host_ptr<std::uint64_t>(xchg + static_cast<std::uint64_t>(n) * 16, 2);
  mine[0] = base;
  mine[1] = local_mr_.rkey;
  comm_->allgather(xchg + static_cast<std::uint64_t>(n) * 16, 16, xchg);
  bases_.resize(static_cast<std::size_t>(n));
  rkeys_.resize(static_cast<std::size_t>(n));
  auto* all = env.host_ptr<std::uint64_t>(xchg, static_cast<std::uint64_t>(n) * 2);
  for (int p = 0; p < n; ++p) {
    bases_[static_cast<std::size_t>(p)] = all[2 * p];
    rkeys_[static_cast<std::size_t>(p)] =
        static_cast<std::uint32_t>(all[2 * p + 1]);
  }
  env.dealloc(xchg);
  register_metrics();
}

void Window::register_metrics() {
  telemetry::MetricsRegistry& m = comm_->env().cluster().metrics();
  auto probe = [&](std::string_view name, std::function<double()> fn) {
    probes_.push_back(m.probe(name, std::move(fn)));
  };
  probe("mpi.window.puts", [this] { return double(stats_.puts); });
  probe("mpi.window.put_bytes", [this] { return double(stats_.put_bytes); });
  probe("mpi.window.gets", [this] { return double(stats_.gets); });
  probe("mpi.window.get_bytes", [this] { return double(stats_.get_bytes); });
  probe("mpi.window.atomics", [this] { return double(stats_.atomics); });
  probe("mpi.window.fence_waits",
        [this] { return double(stats_.fence_waits); });
}

Window::~Window() {
  // Collective teardown is the caller's job (fence before destruction);
  // locally drop the registrations.
  core::RankEnv& env = comm_->env();
  env.verbs().dereg_mr(scratch_mr_);
  env.verbs().dereg_mr(local_mr_);
  env.dealloc(scratch_);
}

hca::SendWr Window::make_rdma(int target, std::uint64_t target_off,
                              std::uint64_t len) const {
  IBP_CHECK(target_off + len <= len_, "access outside the window");
  hca::SendWr wr;
  wr.remote_addr = bases_[static_cast<std::size_t>(target)] + target_off;
  wr.rkey = rkeys_[static_cast<std::size_t>(target)];
  return wr;
}

void Window::post_tracked(int target, hca::SendWr wr) {
  core::RankEnv& env = comm_->env();
  auto r = std::make_shared<Request>();
  r->kind = Request::Kind::Send;
  wr.wr_id = comm_->next_wr_id_++;
  Comm::SendAction action;
  action.req = r;
  comm_->send_actions_.emplace(wr.wr_id, std::move(action));
  auto qp = env.verbs().wrap_qp(
      *env.state().qp_to[static_cast<std::size_t>(target)]);
  env.verbs().post_send(qp, wr);
  outstanding_.push_back(std::move(r));
}

void Window::put(VirtAddr local, std::uint64_t len, int target,
                 std::uint64_t target_off) {
  core::RankEnv& env = comm_->env();
  ++stats_.puts;
  stats_.put_bytes += len;
  if (target == comm_->rank() || comm_->same_node(target)) {
    // Shared-memory path: direct placement plus a copy-cost charge.
    core::RankState& tgt = env.cluster().rank(target);
    auto from = env.space().host_span(local, len);
    auto to = tgt.space.host_span(
        bases_[static_cast<std::size_t>(target)] + target_off, len);
    std::copy(from.begin(), from.end(), to.begin());
    env.touch_stream(local, len);
    env.sim().advance(comm_->flat_copy_cost(len));
    return;
  }
  const verbs::Mr mr = env.rcache().acquire(local, len);
  hca::SendWr wr = make_rdma(target, target_off, len);
  wr.opcode = hca::Opcode::RdmaWrite;
  wr.sges = {{local, static_cast<std::uint32_t>(len), mr.lkey}};
  post_tracked(target, std::move(wr));
  env.rcache().release(mr);
}

void Window::get(VirtAddr local, std::uint64_t len, int target,
                 std::uint64_t target_off) {
  core::RankEnv& env = comm_->env();
  ++stats_.gets;
  stats_.get_bytes += len;
  if (target == comm_->rank() || comm_->same_node(target)) {
    core::RankState& tgt = env.cluster().rank(target);
    auto from = tgt.space.host_span(
        bases_[static_cast<std::size_t>(target)] + target_off, len);
    auto to = env.space().host_span(local, len);
    std::copy(from.begin(), from.end(), to.begin());
    env.touch_stream(local, len);
    env.sim().advance(comm_->flat_copy_cost(len));
    return;
  }
  const verbs::Mr mr = env.rcache().acquire(local, len);
  hca::SendWr wr = make_rdma(target, target_off, len);
  wr.opcode = hca::Opcode::RdmaRead;
  wr.sges = {{local, static_cast<std::uint32_t>(len), mr.lkey}};
  post_tracked(target, std::move(wr));
  env.rcache().release(mr);
}

std::uint64_t Window::fetch_add(int target, std::uint64_t target_off,
                                std::uint64_t value) {
  core::RankEnv& env = comm_->env();
  ++stats_.atomics;
  IBP_CHECK(target_off % 8 == 0 && target_off + 8 <= len_,
            "atomic outside the window");
  if (target == comm_->rank() || comm_->same_node(target)) {
    core::RankState& tgt = env.cluster().rank(target);
    auto span = tgt.space.host_span(
        bases_[static_cast<std::size_t>(target)] + target_off, 8);
    std::uint64_t old_val;
    std::memcpy(&old_val, span.data(), 8);
    const std::uint64_t nv = old_val + value;
    std::memcpy(span.data(), &nv, 8);
    env.sim().advance(
        env.cluster().config().platform.shm_latency + ns(60));
    return old_val;
  }
  hca::SendWr wr = make_rdma(target, target_off, 8);
  wr.opcode = hca::Opcode::AtomicFetchAdd;
  wr.atomic_arg = value;
  wr.sges = {{scratch_, 8, scratch_mr_.lkey}};
  post_tracked(target, std::move(wr));
  comm_->wait(outstanding_.back());
  outstanding_.pop_back();
  return *env.host_ptr<std::uint64_t>(scratch_);
}

std::uint64_t Window::compare_swap(int target, std::uint64_t target_off,
                                   std::uint64_t expected,
                                   std::uint64_t desired) {
  core::RankEnv& env = comm_->env();
  ++stats_.atomics;
  IBP_CHECK(target_off % 8 == 0 && target_off + 8 <= len_,
            "atomic outside the window");
  if (target == comm_->rank() || comm_->same_node(target)) {
    core::RankState& tgt = env.cluster().rank(target);
    auto span = tgt.space.host_span(
        bases_[static_cast<std::size_t>(target)] + target_off, 8);
    std::uint64_t old_val;
    std::memcpy(&old_val, span.data(), 8);
    if (old_val == expected) std::memcpy(span.data(), &desired, 8);
    env.sim().advance(
        env.cluster().config().platform.shm_latency + ns(60));
    return old_val;
  }
  hca::SendWr wr = make_rdma(target, target_off, 8);
  wr.opcode = hca::Opcode::AtomicCmpSwap;
  wr.atomic_compare = expected;
  wr.atomic_arg = desired;
  wr.sges = {{scratch_, 8, scratch_mr_.lkey}};
  post_tracked(target, std::move(wr));
  comm_->wait(outstanding_.back());
  outstanding_.pop_back();
  return *env.host_ptr<std::uint64_t>(scratch_);
}

void Window::fence() {
  stats_.fence_waits += outstanding_.size();
  for (const Req& r : outstanding_) comm_->wait(r);
  outstanding_.clear();
  comm_->barrier();
}

}  // namespace ibp::mpi
