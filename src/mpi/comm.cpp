#include "ibp/mpi/comm.hpp"

#include <algorithm>
#include <cstring>

namespace ibp::mpi {

namespace {

/// Receive-CQE wr_id namespace for UD datagram slots.
constexpr std::uint64_t kUdWrBase = std::uint64_t{1} << 40;

/// Tag reserved for the ring-channel descriptor handshake. Above the
/// collective tag band (0x4000xxxx) and exchanged before any user
/// traffic exists, so it cannot collide.
constexpr int kRingHelloTag = 0x52494e47;

/// Smallest power of two >= n.
int ceil_pow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

Comm::Comm(core::RankEnv& env, CommConfig cfg) : env_(&env), cfg_(cfg) {
  IBP_CHECK(cfg_.eager_threshold <= cfg_.rndv_copy_max,
            "eager threshold must not exceed the rendezvous-copy ceiling");
  IBP_CHECK(cfg_.rndv_copy_max + kHeaderBytes <= cfg_.slot_bytes,
            "bounce slots too small for the rendezvous-copy ceiling");
  IBP_CHECK(!cfg_.ud_eager || env.cluster().fault() == nullptr,
            "ud_eager rides an unreliable datagram transport; disable it "
            "when a fault plan is active");
  IBP_CHECK(!(cfg_.rdma_eager && cfg_.ud_eager),
            "rdma_eager and ud_eager are mutually exclusive; valid protocol "
            "tiers: two-sided eager (default), ud_eager (hybrid UD "
            "datagrams), rdma_eager (one-sided ring channels)");

  const int n = size();
  peer_idx_.assign(static_cast<std::size_t>(n), ~0ull);
  core::RankState& st = env_->state();
  for (int p = 0; p < n; ++p) {
    if (st.qp_to[static_cast<std::size_t>(p)] != nullptr) {
      peer_idx_[static_cast<std::size_t>(p)] = ib_peers_.size();
      ib_peers_.push_back(p);
    }
  }

  if (!ib_peers_.empty()) {
    send_region_ = env_->alloc(cfg_.send_slots * cfg_.slot_bytes,
                               placement::Role::RecvRing);
    recv_region_ =
        env_->alloc(ib_peers_.size() * cfg_.recv_slots * cfg_.slot_bytes,
                    placement::Role::RecvRing);
    send_mr_ =
        env_->verbs().reg_mr(send_region_, cfg_.send_slots * cfg_.slot_bytes);
    recv_mr_ = env_->verbs().reg_mr(
        recv_region_, ib_peers_.size() * cfg_.recv_slots * cfg_.slot_bytes);

    for (std::size_t i = 0; i < ib_peers_.size(); ++i) {
      auto qp = env_->verbs().wrap_qp(
          *st.qp_to[static_cast<std::size_t>(ib_peers_[i])]);
      for (std::uint32_t s = 0; s < cfg_.recv_slots; ++s) {
        hca::RecvWr wr;
        wr.wr_id = i * cfg_.recv_slots + s;
        wr.sges = {{recv_slot_va(static_cast<int>(i), static_cast<int>(s)),
                    static_cast<std::uint32_t>(cfg_.slot_bytes),
                    recv_mr_.lkey}};
        env_->verbs().post_recv(qp, wr);
      }
    }
  }
  if (cfg_.ud_eager && !ib_peers_.empty()) {
    // One shared pool of MTU-sized datagram slots, independent of the
    // peer count — the UD scalability property.
    const auto mtu = env_->state().node->adapter.config().mtu;
    ud_region_ = env_->alloc(static_cast<std::uint64_t>(cfg_.recv_slots) *
                             mtu * 2);
    ud_mr_ = env_->verbs().reg_mr(
        ud_region_, static_cast<std::uint64_t>(cfg_.recv_slots) * mtu * 2);
    auto qp = env_->verbs().wrap_qp(*st.ud_qp);
    for (std::uint32_t s2 = 0; s2 < cfg_.recv_slots * 2; ++s2) {
      hca::RecvWr wr;
      wr.wr_id = kUdWrBase + s2;
      wr.sges = {{ud_region_ + static_cast<std::uint64_t>(s2) * mtu, mtu,
                  ud_mr_.lkey}};
      env_->verbs().post_recv(qp, wr);
    }
  }

  free_send_slots_.resize(cfg_.send_slots);
  for (std::uint32_t s = 0; s < cfg_.send_slots; ++s)
    free_send_slots_[s] = static_cast<int>(s);
  send_seq_.assign(static_cast<std::size_t>(n), 0);
  expect_seq_.assign(static_cast<std::size_t>(n), 0);

  register_metrics();

  if (cfg_.rdma_eager && !ib_peers_.empty()) setup_rings();
}

void Comm::setup_rings() {
  ring_rx_.reserve(ib_peers_.size());
  ring_tx_.reserve(ib_peers_.size());
  for (std::size_t i = 0; i < ib_peers_.size(); ++i) {
    ring_rx_.push_back(
        std::make_unique<ringchan::RingReceiver>(*env_, cfg_.ring));
    ring_tx_.push_back(
        std::make_unique<ringchan::RingSender>(*env_, cfg_.ring));
  }
  // Descriptor handshake: swap ChannelHello blobs with every IB peer
  // over the two-sided eager path (the rings are unusable — and
  // try_ring_send declines — until both halves are connected).
  constexpr std::uint64_t kHello = sizeof(ringchan::ChannelHello);
  const VirtAddr sbuf = env_->alloc(kHello * ib_peers_.size());
  const VirtAddr rbuf = env_->alloc(kHello * ib_peers_.size());
  std::vector<Req> reqs;
  reqs.reserve(ib_peers_.size() * 2);
  for (std::size_t i = 0; i < ib_peers_.size(); ++i) {
    ringchan::ChannelHello hello;
    hello.ring = ring_rx_[i]->descriptor();
    hello.credit = ring_tx_[i]->credit_descriptor();
    const VirtAddr s = sbuf + i * kHello;
    std::memcpy(env_->host_ptr<std::uint8_t>(s, kHello), &hello, kHello);
    reqs.push_back(
        irecv(rbuf + i * kHello, kHello, ib_peers_[i], kRingHelloTag));
    reqs.push_back(isend(s, kHello, ib_peers_[i], kRingHelloTag));
  }
  waitall(reqs);
  for (std::size_t i = 0; i < ib_peers_.size(); ++i) {
    ringchan::ChannelHello hello;
    std::memcpy(&hello, env_->host_ptr<std::uint8_t>(rbuf + i * kHello, kHello),
                kHello);
    ring_tx_[i]->connect(hello.ring);
    ring_rx_[i]->connect_credit(hello.credit);
  }
  env_->dealloc(rbuf);
  env_->dealloc(sbuf);
}

void Comm::register_metrics() {
  telemetry::MetricsRegistry& m = env_->cluster().metrics();
  auto probe = [&](std::string_view name, std::function<double()> fn) {
    probes_.push_back(m.probe(name, std::move(fn)));
  };
  probe("mpi.eager_sent", [this] { return double(stats_.eager_sent); });
  probe("mpi.eager_bytes", [this] { return double(stats_.eager_bytes); });
  probe("mpi.rndv_copy_sent",
        [this] { return double(stats_.rndv_copy_sent); });
  probe("mpi.rndv_copy_bytes",
        [this] { return double(stats_.rndv_copy_bytes); });
  probe("mpi.rndv_rdma_sent",
        [this] { return double(stats_.rndv_rdma_sent); });
  probe("mpi.rndv_rdma_bytes",
        [this] { return double(stats_.rndv_rdma_bytes); });
  probe("mpi.rendezvous_bytes", [this] {
    return double(stats_.rndv_copy_bytes + stats_.rndv_rdma_bytes);
  });
  probe("mpi.shm_sent", [this] { return double(stats_.shm_sent); });
  probe("mpi.shm_bytes", [this] { return double(stats_.shm_bytes); });
  probe("mpi.unexpected_arrivals",
        [this] { return double(stats_.unexpected_arrivals); });
  probe("mpi.gather_sends", [this] { return double(stats_.gather_sends); });
  probe("mpi.sge_splits", [this] { return double(stats_.sge_splits); });
  probe("mpi.ud_sent", [this] { return double(stats_.ud_sent); });
  if (cfg_.rdma_eager) {
    // Ring-tier probes are registered only when the tier is on, so the
    // metrics namespace (and every golden that snapshots it) is
    // untouched in the default configuration.
    probe("mpi.rdma_eager_sent",
          [this] { return double(stats_.rdma_eager_sent); });
    probe("mpi.rdma_eager_bytes",
          [this] { return double(stats_.rdma_eager_bytes); });
    probe("mpi.rdma_eager_fallbacks",
          [this] { return double(stats_.rdma_eager_fallbacks); });
    probe("mpi.rdma_credit_returns",
          [this] { return double(stats_.rdma_credit_returns); });
  }
  probe("mpi.reordered", [this] { return double(stats_.reordered); });
  probe("mpi.recoveries", [this] { return double(stats_.recoveries); });
  // stats() refreshes the QP-derived reliability fields on each read.
  probe("mpi.retransmits", [this] { return double(stats().retransmits); });
  probe("mpi.rnr_naks", [this] { return double(stats().rnr_naks); });
}

Comm::~Comm() {
  telemetry::MetricsRegistry& m = env_->cluster().metrics();
  for (const auto& [op, t] : prof_.by_op())
    m.add(std::string("mpi.time_us.").append(op), ps_to_us(t));
  m.add("mpi.time_us_total", ps_to_us(prof_.total()));
}

bool Comm::same_node(int peer) const {
  return env_->state().qp_to[static_cast<std::size_t>(peer)] == nullptr;
}

std::uint64_t Comm::peer_index(int peer) const {
  const std::uint64_t i = peer_idx_[static_cast<std::size_t>(peer)];
  IBP_CHECK(i != ~0ull, "rank " << peer << " is not an IB peer");
  return i;
}

VirtAddr Comm::send_slot_va(int slot) const {
  return send_region_ + static_cast<std::uint64_t>(slot) * cfg_.slot_bytes;
}

VirtAddr Comm::recv_slot_va(int peer_index, int slot) const {
  return recv_region_ +
         (static_cast<std::uint64_t>(peer_index) * cfg_.recv_slots +
          static_cast<std::uint64_t>(slot)) *
             cfg_.slot_bytes;
}

TimePs Comm::flat_copy_cost(std::uint64_t len) const {
  const double bw =
      env_->cluster().config().platform.mem.stream_bw_bytes_per_ns;
  return static_cast<TimePs>(static_cast<double>(len) / bw * 1e3);
}

placement::BufferPlan Comm::plan_message(std::uint64_t len,
                                         placement::Role role,
                                         std::uint32_t pieces) const {
  placement::PolicyContext ctx = env_->placement().context();
  ctx.eager_threshold = cfg_.eager_threshold;
  ctx.rndv_copy_max = cfg_.rndv_copy_max;
  ctx.sge_gather_enabled = cfg_.sge_gather;
  ctx.lazy_dereg = env_->rcache().lazy();
  return env_->placement().plan(
      {.size = len, .role = role, .pieces = pieces}, ctx);
}

verbs::Mr Comm::acquire_registration(VirtAddr addr, std::uint64_t len,
                                     placement::Role role) {
  const auto& cs = env_->rcache().stats();
  const std::uint64_t misses_before = cs.misses;
  const TimePs t0 = env_->now();
  const verbs::Mr mr = env_->rcache().acquire(addr, len);
  env_->placement().feed({.size = len,
                          .backing = env_->lib().in_hugepages(addr)
                                         ? mem::PageKind::Huge
                                         : mem::PageKind::Small,
                          .cost = env_->now() - t0,
                          .cache_misses = cs.misses - misses_before,
                          .role = role});
  return mr;
}

int Comm::take_send_slot() {
  for (;;) {
    if (!free_send_slots_.empty()) {
      const int s = free_send_slots_.back();
      free_send_slots_.pop_back();
      return s;
    }
    env_->sim().wait_until([this]() -> std::optional<TimePs> {
      // A slot freed by another track's progress is ready at the time
      // its send CQE was drained (the freeing event itself is gone).
      if (!free_send_slots_.empty()) return send_slot_free_t_;
      return earliest_event();
    });
    progress_once();
  }
}

void Comm::release_send_slot(int slot) {
  free_send_slots_.push_back(slot);
  send_slot_free_t_ = env_->now();
}

// ---------------------------------------------------------------------------
// Transport

void Comm::transport_send(int peer, const Header& hdr_in,
                          std::span<const std::uint8_t> payload,
                          SendAction action) {
  IBP_CHECK(peer != rank(), "transport_send to self");
  Header hdr = hdr_in;
  hdr.seq = send_seq_[static_cast<std::size_t>(peer)]++;
  if (sim::Tracer* tr = env_->cluster().tracer())
    tr->flow_begin(rank(), "flow", "msg", env_->now(),
                   flow_id(rank(), peer, hdr.seq));
  if (same_node(peer)) {
    std::vector<std::uint8_t> blob(kHeaderBytes + payload.size());
    store_header(blob.data(), hdr);
    std::copy(payload.begin(), payload.end(), blob.begin() + kHeaderBytes);
    core::ShmChannel* ch =
        env_->state().shm_out[static_cast<std::size_t>(peer)];
    env_->sim().advance(ch->push(std::move(blob), env_->now()));
    // No CQE on the shm path: the handoff is complete once copied in.
    IBP_CHECK(!action.rdma_fin, "rendezvous RDMA is IB-only");
    if (action.req) action.req->finish(env_->now());
    return;
  }

  const int slot = take_send_slot();
  auto sp =
      env_->space().host_span(send_slot_va(slot), kHeaderBytes + payload.size());
  store_header(sp.data(), hdr);
  if (!payload.empty()) {
    std::copy(payload.begin(), payload.end(), sp.begin() + kHeaderBytes);
    env_->sim().advance(flat_copy_cost(payload.size()));
  }

  hca::SendWr wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = hca::Opcode::Send;
  wr.sges = {{send_slot_va(slot),
              static_cast<std::uint32_t>(kHeaderBytes + payload.size()),
              send_mr_.lkey}};
  action.slot = slot;
  const bool fits_datagram =
      cfg_.ud_eager &&
      kHeaderBytes + payload.size() <=
          env_->state().node->adapter.config().mtu;
  if (fits_datagram) {
    ++stats_.ud_sent;
    wr.ud_dest = env_->cluster().rank(peer).ud_qp;
    send_actions_.emplace(wr.wr_id, std::move(action));
    auto qp = env_->verbs().wrap_qp(*env_->state().ud_qp);
    env_->verbs().post_send(qp, wr);
    return;
  }
  action.wr = wr;  // the bounce slot stays held, so the WR is replayable
  action.dest = peer;
  send_actions_.emplace(wr.wr_id, std::move(action));
  auto qp = env_->verbs().wrap_qp(
      *env_->state().qp_to[static_cast<std::size_t>(peer)]);
  env_->verbs().post_send(qp, wr);
}

void Comm::transport_send_sges(int peer, const Header& hdr_in,
                               const std::vector<Seg>& segs,
                               SendAction action) {
  IBP_CHECK(!same_node(peer), "SGE gather sends are IB-only");
  IBP_CHECK(env_->rcache().lazy() && env_->rcache().capacity() == 0,
            "SGE gather sends need an unbounded lazy registration cache "
            "(gathered buffers must stay registered until the CQE)");
  Header hdr = hdr_in;
  hdr.seq = send_seq_[static_cast<std::size_t>(peer)]++;
  if (sim::Tracer* tr = env_->cluster().tracer())
    tr->flow_begin(rank(), "flow", "msg", env_->now(),
                   flow_id(rank(), peer, hdr.seq));
  const int slot = take_send_slot();
  auto sp = env_->space().host_span(send_slot_va(slot), kHeaderBytes);
  store_header(sp.data(), hdr);

  hca::SendWr wr;
  wr.wr_id = next_wr_id_++;
  wr.opcode = hca::Opcode::Send;
  wr.sges.push_back({send_slot_va(slot),
                     static_cast<std::uint32_t>(kHeaderBytes),
                     send_mr_.lkey});
  for (const Seg& s : segs) {
    if (s.len == 0) continue;
    // Per-segment registrations feed the placement engine (role
    // eager-send), so adaptive policies see the gather path's true
    // registration profile, not just the rendezvous path's.
    const verbs::Mr mr =
        acquire_registration(s.addr, s.len, placement::Role::EagerSend);
    wr.sges.push_back(
        {s.addr, static_cast<std::uint32_t>(s.len), mr.lkey});
  }
  action.slot = slot;
  action.wr = wr;  // gathered buffers stay registered (lazy cache), so
  action.dest = peer;  // the WR is replayable
  send_actions_.emplace(wr.wr_id, std::move(action));
  auto qp = env_->verbs().wrap_qp(
      *env_->state().qp_to[static_cast<std::size_t>(peer)]);
  env_->verbs().post_send(qp, wr);
}

Req Comm::post_one_sided(int peer, hca::SendWr wr, bool tracked) {
  wr.wr_id = next_wr_id_++;
  SendAction action;
  action.wr = wr;  // ring staging bytes persist until credited: replayable
  action.dest = peer;
  Req r;
  if (tracked) {
    r = std::make_shared<Request>();
    r->kind = Request::Kind::Send;
    action.req = r;
  }
  send_actions_.emplace(wr.wr_id, action);
  auto qp = env_->verbs().wrap_qp(
      *env_->state().qp_to[static_cast<std::size_t>(peer)]);
  env_->verbs().post_send(qp, wr);
  return r;
}

bool Comm::try_ring_send(int dst, Header& hdr, VirtAddr buf,
                         std::uint64_t len) {
  if (ring_tx_.empty()) return false;
  ringchan::RingSender& tx = *ring_tx_[peer_index(dst)];
  if (!tx.connected()) return false;
  const std::uint64_t total = kHeaderBytes + len;
  if (total > cfg_.ring.max_record) return false;
  if (!tx.can_send(static_cast<std::uint32_t>(total))) {
    // Out of credit: sweep any credit writeback already visible before
    // giving up — but never block; the two-sided path is always open.
    tx.poll_credit(env_->now());
    if (!tx.can_send(static_cast<std::uint32_t>(total))) {
      ++stats_.rdma_eager_fallbacks;
      return false;
    }
  }
  hdr.seq = send_seq_[static_cast<std::size_t>(dst)]++;
  if (sim::Tracer* tr = env_->cluster().tracer())
    tr->flow_begin(rank(), "flow", "msg", env_->now(),
                   flow_id(rank(), dst, hdr.seq));
  ++stats_.rdma_eager_sent;
  stats_.rdma_eager_bytes += len;
  if (len) env_->touch_stream(buf, len);
  std::uint8_t hbytes[kHeaderBytes];
  store_header(hbytes, hdr);
  const std::uint8_t* p =
      len ? env_->space().host_span(buf, len).data() : nullptr;
  auto wrs = tx.prepare(hbytes, static_cast<std::uint32_t>(kHeaderBytes), p,
                        static_cast<std::uint32_t>(len));
  for (hca::SendWr& wr : wrs) post_one_sided(dst, std::move(wr));
  return true;
}

void Comm::poll_rings(bool* again) {
  // Reentrancy guard: a handler reached from ingest() below may call
  // back into progress_once(); a nested ring sweep would release
  // records out of oldest-first order.
  if (ring_rx_.empty() || ring_polling_) return;
  ring_polling_ = true;
  std::vector<ringchan::RingReceiver::Record> recs;
  for (std::size_t i = 0; i < ring_rx_.size(); ++i) {
    ringchan::RingReceiver& rx = *ring_rx_[i];
    recs.clear();
    rx.poll(env_->now(), recs);
    for (const auto& rec : recs) {
      auto bytes = env_->space().host_span(rec.payload, rec.len);
      const Header hdr = load_header(bytes.data());
      ingest(hdr, bytes.subspan(kHeaderBytes));
      rx.release(rec);
      *again = true;
    }
    if (rx.credit_due()) {
      post_one_sided(ib_peers_[i], rx.make_credit_wr());
      ++stats_.rdma_credit_returns;
    }
    ring_tx_[i]->poll_credit(env_->now());
  }
  ring_polling_ = false;
}

// ---------------------------------------------------------------------------
// Point-to-point

Req Comm::isend(VirtAddr buf, std::uint64_t len, int dst, int tag) {
  ProfScope prof(this, "isend");
  IBP_CHECK(dst >= 0 && dst < size(), "bad destination rank " << dst);
  auto r = std::make_shared<Request>();
  r->kind = Request::Kind::Send;
  r->id = next_req_id_++;
  r->buf = buf;
  r->len = len;
  r->peer = dst;
  r->tag = tag;

  Header hdr;
  hdr.src = rank();
  hdr.tag = tag;
  hdr.size = len;
  hdr.req = r->id;

  if (dst == rank()) {
    // Self message: loop straight through the matching engine.
    hdr.kind = static_cast<std::uint32_t>(MsgKind::Eager);
    auto payload = len ? env_->space().host_span(buf, len)
                       : std::span<const std::uint8_t>{};
    handle_msg(hdr, payload);
    r->finish(env_->now());
    return r;
  }

  if (same_node(dst)) {
    // Shared memory carries any size in one copy-in/copy-out hop.
    hdr.kind = static_cast<std::uint32_t>(MsgKind::Eager);
    ++stats_.shm_sent;
    stats_.shm_bytes += len;
    if (len) env_->touch_stream(buf, len);
    auto payload = len ? env_->space().host_span(buf, len)
                       : std::span<const std::uint8_t>{};
    transport_send(dst, hdr, payload, {});
    r->finish(env_->now());
    return r;
  }

  // The placement plan picks the protocol (PaperDefault reproduces the
  // MVAPICH eager/rndv-copy/rndv-RDMA thresholds exactly).
  const placement::BufferPlan plan =
      plan_message(len, placement::Role::EagerSend);
  if (plan.protocol == placement::Protocol::Eager) {
    hdr.kind = static_cast<std::uint32_t>(MsgKind::Eager);
    if (cfg_.rdma_eager && try_ring_send(dst, hdr, buf, len)) {
      // Ring writes complete locally once the record is staged.
      r->finish(env_->now());
      return r;
    }
    ++stats_.eager_sent;
    stats_.eager_bytes += len;
    if (len) env_->touch_stream(buf, len);
    auto payload = len ? env_->space().host_span(buf, len)
                       : std::span<const std::uint8_t>{};
    transport_send(dst, hdr, payload, {});
    // Eager sends complete locally once the payload left the user buffer.
    r->finish(env_->now());
    return r;
  }

  // Rendezvous. With the read protocol the RTS advertises the (already
  // registered) send buffer for the receiver to pull; otherwise the
  // receiver's CTS decides between the copy and RDMA-write paths.
  if (plan.protocol == placement::Protocol::RndvCopy) {
    ++stats_.rndv_copy_sent;
    stats_.rndv_copy_bytes += len;
  } else {
    ++stats_.rndv_rdma_sent;
    stats_.rndv_rdma_bytes += len;
  }
  hdr.kind = static_cast<std::uint32_t>(MsgKind::Rts);
  if (cfg_.rndv_read && plan.protocol == placement::Protocol::RndvRdma) {
    const verbs::Mr mr = acquire_registration(buf, len);
    r->mr = mr;
    r->holds_mr = true;
    hdr.raddr = buf;
    hdr.rkey = mr.rkey;
  }
  rndv_send_.emplace(r->id, r);
  r->state = Request::State::RtsSent;
  transport_send(dst, hdr, {}, {});
  return r;
}

Req Comm::isend_gather(const std::vector<Seg>& segs, int dst, int tag) {
  ProfScope prof(this, "isend_gather");
  std::uint64_t total = 0;
  for (const Seg& s : segs) total += s.len;
  IBP_CHECK(total <= cfg_.eager_threshold,
            "gathered sends use the eager path (total " << total << ")");

  const placement::BufferPlan plan = plan_message(
      total, placement::Role::EagerSend,
      static_cast<std::uint32_t>(segs.size()));
  // Sender-occupancy observation for the SGE-vs-pack decision: virtual
  // time from here to the WR being posted (pack copies + bounce copy, or
  // per-segment registrations + SGE posting).
  const TimePs op_t0 = env_->now();
  const auto feed_gather_cost = [&](bool gathered) {
    if (segs.size() < 2) return;  // contiguous; nothing to learn
    env_->placement().feed({.size = total,
                            .backing = env_->lib().in_hugepages(segs[0].addr)
                                           ? mem::PageKind::Huge
                                           : mem::PageKind::Small,
                            .cost = env_->now() - op_t0,
                            .role = placement::Role::EagerSend,
                            .pieces = static_cast<std::uint32_t>(segs.size()),
                            .gathered = gathered});
  };
  if (!plan.sge_gather || dst == rank() || same_node(dst)) {
    // Pack-and-send fallback: copy the pieces through a staging buffer.
    const VirtAddr stage = env_->alloc(std::max<std::uint64_t>(total, 64));
    pack(segs, stage);
    Req r = isend(stage, total, dst, tag);
    feed_gather_cost(false);
    wait(r);  // staging buffer is freed below, so finish the handoff
    env_->dealloc(stage);
    return r;
  }

  auto r = std::make_shared<Request>();
  r->kind = Request::Kind::Send;
  r->id = next_req_id_++;
  r->len = total;
  r->peer = dst;
  r->tag = tag;

  Header hdr;
  hdr.kind = static_cast<std::uint32_t>(MsgKind::Eager);
  hdr.src = rank();
  hdr.tag = tag;
  hdr.size = total;
  hdr.req = r->id;

  // Honour the plan's SGE budget (header SGE included): a gather with
  // more pieces keeps the first max_sges - 2 direct and packs the tail
  // into one staged segment, so the WR never exceeds the cap.
  std::vector<Seg> pieces;
  pieces.reserve(segs.size());
  for (const Seg& s : segs)
    if (s.len != 0) pieces.push_back(s);
  VirtAddr stage = 0;
  const std::size_t cap = std::max<std::uint32_t>(plan.max_sges, 2);
  if (pieces.size() + 1 > cap) {
    ++stats_.sge_splits;
    const std::size_t keep = cap - 2;
    std::uint64_t tail_bytes = 0;
    for (std::size_t i = keep; i < pieces.size(); ++i)
      tail_bytes += pieces[i].len;
    stage = env_->alloc(std::max<std::uint64_t>(tail_bytes, 64));
    const std::vector<Seg> tail(
        pieces.begin() + static_cast<std::ptrdiff_t>(keep), pieces.end());
    pack(tail, stage);
    pieces.resize(keep);
    pieces.push_back({stage, tail_bytes});
  }

  SendAction action;
  action.req = r;  // gathered user buffers are reusable at the CQE
  action.stage_buf = stage;
  ++stats_.gather_sends;
  transport_send_sges(dst, hdr, pieces, std::move(action));
  feed_gather_cost(true);
  return r;
}

Req Comm::irecv(VirtAddr buf, std::uint64_t cap, int src, int tag) {
  ProfScope prof(this, "irecv");
  auto r = std::make_shared<Request>();
  r->kind = Request::Kind::Recv;
  r->buf = buf;
  r->len = cap;
  r->peer = src;
  r->tag = tag;

  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (!match(r, it->hdr.src, it->hdr.tag)) continue;
    const Unexpected u = std::move(*it);
    unexpected_.erase(it);
    if (u.hdr.kind == static_cast<std::uint32_t>(MsgKind::Eager)) {
      complete_eager_recv(r, u.hdr, u.payload);
    } else {
      IBP_CHECK(u.hdr.kind == static_cast<std::uint32_t>(MsgKind::Rts));
      start_rndv_recv(r, u.hdr);
    }
    return r;
  }
  posted_.push_back(r);
  return r;
}

void Comm::wait(const Req& r) {
  ProfScope prof(this, "wait");
  progress_once();
  while (!r->done()) {
    // Multi-track rank: another track's progress may complete `r` while
    // this one is blocked — the completing event is then already drained,
    // so wait for done() itself, resuming at the recorded completion time.
    env_->sim().wait_until([this, &r]() -> std::optional<TimePs> {
      if (r->done()) return r->done_at;
      return earliest_event();
    });
    progress_once();
  }
}

void Comm::waitall(std::span<const Req> rs) {
  ProfScope prof(this, "waitall");
  for (const Req& r : rs) wait(r);
}

bool Comm::test(const Req& r) {
  ProfScope prof(this, "test");
  progress_once();
  return r->done();
}

void Comm::send(VirtAddr buf, std::uint64_t len, int dst, int tag) {
  ProfScope prof(this, "send");
  wait(isend(buf, len, dst, tag));
}

RecvStatus Comm::recv(VirtAddr buf, std::uint64_t cap, int src, int tag) {
  ProfScope prof(this, "recv");
  Req r = irecv(buf, cap, src, tag);
  wait(r);
  return {r->actual_src, r->actual_tag, r->received};
}

RecvStatus Comm::sendrecv(VirtAddr sbuf, std::uint64_t slen, int dst,
                          int stag, VirtAddr rbuf, std::uint64_t rcap,
                          int src, int rtag) {
  ProfScope prof(this, "sendrecv");
  Req rr = irecv(rbuf, rcap, src, rtag);
  Req sr = isend(sbuf, slen, dst, stag);
  wait(sr);
  wait(rr);
  return {rr->actual_src, rr->actual_tag, rr->received};
}

std::size_t Comm::waitany(std::span<const Req> rs) {
  ProfScope prof(this, "waitany");
  IBP_CHECK(!rs.empty(), "waitany on empty request set");
  for (;;) {
    progress_once();
    for (std::size_t i = 0; i < rs.size(); ++i)
      if (rs[i]->done()) return i;
    env_->sim().wait_until([this, rs]() -> std::optional<TimePs> {
      std::optional<TimePs> best;
      for (const Req& r : rs)
        if (r->done() && (!best || r->done_at < *best)) best = r->done_at;
      if (best) return best;  // completed by another track's progress
      return earliest_event();
    });
    progress_once();
  }
}

std::vector<Seg> Comm::type_segments(VirtAddr base, const Datatype& type) {
  std::vector<Seg> segs;
  segs.reserve(type.count);
  for (std::uint64_t b = 0; b < type.count; ++b)
    segs.push_back({base + b * type.stride, type.block_len});
  return segs;
}

void Comm::send_typed(VirtAddr base, const Datatype& type, int dst,
                      int tag) {
  ProfScope prof(this, "send_typed");
  if (type.is_contiguous()) {
    send(base, type.size(), dst, tag);
    return;
  }
  const auto segs = type_segments(base, type);
  const placement::BufferPlan plan = plan_message(
      type.size(), placement::Role::EagerSend,
      static_cast<std::uint32_t>(segs.size()));
  if (plan.sge_gather && dst != rank() && !same_node(dst)) {
    // §7: the NIC walks the datatype via its scatter/gather list.
    wait(isend_gather(segs, dst, tag));
    return;
  }
  const VirtAddr stage = env_->alloc(std::max<std::uint64_t>(type.size(), 64));
  pack(segs, stage);
  send(stage, type.size(), dst, tag);
  env_->dealloc(stage);
}

RecvStatus Comm::recv_typed(VirtAddr base, const Datatype& type, int src,
                            int tag) {
  ProfScope prof(this, "recv_typed");
  if (type.is_contiguous()) return recv(base, type.size(), src, tag);
  const VirtAddr stage = env_->alloc(std::max<std::uint64_t>(type.size(), 64));
  const RecvStatus st = recv(stage, type.size(), src, tag);
  unpack(stage, type_segments(base, type));
  env_->dealloc(stage);
  return st;
}

void Comm::pack(const std::vector<Seg>& segs, VirtAddr dst) {
  ProfScope prof(this, "pack");
  VirtAddr out = dst;
  for (const Seg& s : segs) {
    if (s.len == 0) continue;
    auto from = env_->space().host_span(s.addr, s.len);
    auto to = env_->space().host_span(out, s.len);
    std::copy(from.begin(), from.end(), to.begin());
    env_->touch_stream(s.addr, s.len);
    env_->sim().advance(flat_copy_cost(s.len));
    out += s.len;
  }
}

void Comm::unpack(VirtAddr src, const std::vector<Seg>& segs) {
  ProfScope prof(this, "unpack");
  VirtAddr in = src;
  for (const Seg& s : segs) {
    if (s.len == 0) continue;
    auto from = env_->space().host_span(in, s.len);
    auto to = env_->space().host_span(s.addr, s.len);
    std::copy(from.begin(), from.end(), to.begin());
    env_->touch_stream(s.addr, s.len);
    env_->sim().advance(flat_copy_cost(s.len));
    in += s.len;
  }
}

// ---------------------------------------------------------------------------
// Progress engine

std::optional<TimePs> Comm::earliest_event() const {
  std::optional<TimePs> best;
  auto consider = [&best](std::optional<TimePs> t) {
    if (t && (!best || *t < *best)) best = t;
  };
  core::RankState& st = env_->state();
  consider(st.send_cq.next_ready());
  consider(st.recv_cq.next_ready());
  for (int p = 0; p < env_->nranks(); ++p) {
    core::ShmChannel* ch = st.shm_in[static_cast<std::size_t>(p)];
    if (ch != nullptr) consider(ch->next_ready());
  }
  // Ring channels progress on memory visibility, not CQEs: the next
  // pending record write (receive side) or credit writeback (send side).
  for (const auto& rx : ring_rx_) consider(rx->next_visible());
  for (const auto& tx : ring_tx_) consider(tx->next_credit_visible());
  return best;
}

void Comm::progress_block() {
  env_->sim().wait_until([this] { return earliest_event(); });
  progress_once();
}

void Comm::progress_once() {
  bool again = true;
  while (again) {
    again = false;

    while (auto c = env_->verbs().poll_send()) {
      handle_send_cqe(*c);
      again = true;
    }

    while (auto c = env_->verbs().poll_recv()) {
      if (c->status != hca::WcStatus::Success) {
        handle_recv_error(*c);
        again = true;
        continue;
      }
      if (c->wr_id >= kUdWrBase) {
        // Datagram slot.
        const std::uint64_t slot = c->wr_id - kUdWrBase;
        const auto mtu = env_->state().node->adapter.config().mtu;
        const VirtAddr va = ud_region_ + slot * mtu;
        auto bytes = env_->space().host_span(va, c->byte_len);
        const Header hdr = load_header(bytes.data());
        ingest(hdr, bytes.subspan(kHeaderBytes));
        hca::RecvWr wr;
        wr.wr_id = c->wr_id;
        wr.sges = {{va, mtu, ud_mr_.lkey}};
        auto qp = env_->verbs().wrap_qp(*env_->state().ud_qp);
        env_->verbs().post_recv(qp, wr);
        again = true;
        continue;
      }
      const std::uint64_t pi = c->wr_id / cfg_.recv_slots;
      const std::uint64_t slot = c->wr_id % cfg_.recv_slots;
      const VirtAddr va =
          recv_slot_va(static_cast<int>(pi), static_cast<int>(slot));
      auto bytes = env_->space().host_span(va, c->byte_len);
      const Header hdr = load_header(bytes.data());
      ingest(hdr, bytes.subspan(kHeaderBytes));

      // Recycle the slot.
      hca::RecvWr wr;
      wr.wr_id = c->wr_id;
      wr.sges = {{va, static_cast<std::uint32_t>(cfg_.slot_bytes),
                  recv_mr_.lkey}};
      auto qp = env_->verbs().wrap_qp(
          *env_->state()
               .qp_to[static_cast<std::size_t>(ib_peers_[pi])]);
      env_->verbs().post_recv(qp, wr);
      again = true;
    }

    poll_rings(&again);

    core::RankState& st = env_->state();
    for (int p = 0; p < env_->nranks(); ++p) {
      core::ShmChannel* ch = st.shm_in[static_cast<std::size_t>(p)];
      if (ch == nullptr) continue;
      while (auto m = ch->pop(env_->now())) {
        const Header hdr = load_header(m->data.data());
        ingest(hdr, std::span<const std::uint8_t>(m->data).subspan(
                        kHeaderBytes));
        again = true;
      }
    }
  }
}

void Comm::ingest(const Header& hdr,
                  std::span<const std::uint8_t> payload) {
  const auto src = static_cast<std::size_t>(hdr.src);
  if (sim::Tracer* tr = env_->cluster().tracer())
    tr->flow_end(rank(), "flow", "msg", env_->now(),
                 flow_id(hdr.src, rank(), hdr.seq));
  if (hdr.seq != expect_seq_[src]) {
    // Early arrival (a faster transport overtook an earlier message):
    // stash it until its predecessors are in.
    ++stats_.reordered;
    reorder_.emplace(std::make_pair(hdr.src, hdr.seq),
                     Unexpected{hdr, {payload.begin(), payload.end()}});
    return;
  }
  handle_msg(hdr, payload);
  ++expect_seq_[src];
  for (;;) {
    auto it = reorder_.find({hdr.src, expect_seq_[src]});
    if (it == reorder_.end()) break;
    const Unexpected u = std::move(it->second);
    reorder_.erase(it);
    handle_msg(u.hdr, u.payload);
    ++expect_seq_[src];
  }
}

void Comm::handle_msg(const Header& hdr,
                      std::span<const std::uint8_t> payload) {
  switch (static_cast<MsgKind>(hdr.kind)) {
    case MsgKind::Eager: {
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (match(*it, hdr.src, hdr.tag)) {
          Req r = *it;
          posted_.erase(it);
          complete_eager_recv(r, hdr, payload);
          return;
        }
      }
      ++stats_.unexpected_arrivals;
      unexpected_.push_back(
          Unexpected{hdr, {payload.begin(), payload.end()}});
      return;
    }
    case MsgKind::Rts: {
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (match(*it, hdr.src, hdr.tag)) {
          Req r = *it;
          posted_.erase(it);
          start_rndv_recv(r, hdr);
          return;
        }
      }
      ++stats_.unexpected_arrivals;
      unexpected_.push_back(Unexpected{hdr, {}});
      return;
    }
    case MsgKind::Cts: {
      auto it = rndv_send_.find(hdr.req);
      IBP_CHECK(it != rndv_send_.end(), "CTS for unknown send request");
      Req r = it->second;
      rndv_send_.erase(it);
      if (hdr.raddr == 0) {
        // Medium path: ship the payload in-band.
        Header data;
        data.kind = static_cast<std::uint32_t>(MsgKind::RndvData);
        data.src = rank();
        data.tag = r->tag;
        data.size = r->len;
        data.req = r->id;
        env_->touch_stream(r->buf, r->len);
        SendAction action;
        action.req = r;
        r->state = Request::State::Writing;
        transport_send(r->peer, data,
                       env_->space().host_span(r->buf, r->len),
                       std::move(action));
      } else {
        // Large path: register the send buffer and RDMA-write the payload.
        const verbs::Mr mr = acquire_registration(r->buf, r->len);
        hca::SendWr wr;
        wr.wr_id = next_wr_id_++;
        wr.opcode = hca::Opcode::RdmaWrite;
        wr.sges = {{r->buf, static_cast<std::uint32_t>(r->len), mr.lkey}};
        wr.remote_addr = hdr.raddr;
        wr.rkey = hdr.rkey;
        SendAction action;
        action.req = r;
        action.rdma_fin = true;
        action.wr = wr;
        action.dest = r->peer;
        r->mr = mr;
        r->holds_mr = true;
        send_actions_.emplace(wr.wr_id, std::move(action));
        r->state = Request::State::Writing;
        auto qp = env_->verbs().wrap_qp(
            *env_->state().qp_to[static_cast<std::size_t>(r->peer)]);
        env_->verbs().post_send(qp, wr);
      }
      return;
    }
    case MsgKind::RndvData: {
      auto it = rndv_recv_.find({hdr.src, hdr.req});
      IBP_CHECK(it != rndv_recv_.end(), "RndvData for unknown recv");
      Req r = it->second;
      rndv_recv_.erase(it);
      complete_eager_recv(r, hdr, payload);
      return;
    }
    case MsgKind::Fin: {
      // Write protocol: the sender notifies the receiver, keyed by
      // (sender rank, sender request id).
      auto it = rndv_recv_.find({hdr.src, hdr.req});
      IBP_CHECK(it != rndv_recv_.end(), "FIN for unknown recv");
      Req r = it->second;
      rndv_recv_.erase(it);
      if (r->holds_mr) {
        env_->rcache().release(r->mr);
        r->holds_mr = false;
      }
      r->received = hdr.size;
      r->actual_src = hdr.src;
      r->actual_tag = hdr.tag;
      r->finish(env_->now());
      return;
    }
    case MsgKind::FinRead: {
      // Read protocol: the receiver notifies the sender, keyed by our own
      // request id (a separate kind — a write-FIN from the same rank with
      // a colliding id must not match here).
      auto sit = rndv_send_.find(hdr.req);
      IBP_CHECK(sit != rndv_send_.end(), "read-FIN for unknown send");
      Req r = sit->second;
      rndv_send_.erase(sit);
      if (r->holds_mr) {
        env_->rcache().release(r->mr);
        r->holds_mr = false;
      }
      r->finish(env_->now());
      return;
    }
  }
  IBP_FAIL("unhandled message kind " << hdr.kind);
}

void Comm::handle_send_cqe(const hca::Cqe& cqe) {
  auto it = send_actions_.find(cqe.wr_id);
  IBP_CHECK(it != send_actions_.end(), "send CQE with no action");
  SendAction action = std::move(it->second);
  send_actions_.erase(it);

  if (cqe.status != hca::WcStatus::Success) {
    IBP_CHECK(cfg_.recovery == CommConfig::Recovery::Repost &&
                  action.dest >= 0 &&
                  action.attempts < cfg_.max_send_retries,
              "transport send to rank "
                  << action.dest << " failed ("
                  << hca::wc_status_name(cqe.status) << ") after "
                  << action.attempts << " replay(s)");
    // Recycle the errored QP and replay the stored WR. The bounce slot
    // (or registered user buffer) is still held, so the payload is
    // intact; the recovery delay lets the peer — whose own QP end also
    // errored — drain its flushed completions and repost receives before
    // the replay arrives.
    ++action.attempts;
    recover_qp(action.dest);
    env_->sim().advance(cfg_.recovery_delay);
    hca::SendWr wr = action.wr;
    wr.wr_id = next_wr_id_++;
    const int dest = action.dest;
    send_actions_.emplace(wr.wr_id, std::move(action));
    auto qp = env_->verbs().wrap_qp(
        *env_->state().qp_to[static_cast<std::size_t>(dest)]);
    env_->verbs().post_send(qp, wr);
    return;
  }

  if (action.slot >= 0) release_send_slot(action.slot);
  if (action.stage_buf != 0) env_->dealloc(action.stage_buf);
  if (action.read_fin) {
    // The pull finished: the payload is in place; tell the sender its
    // buffer is reusable and complete the receive.
    Req r = action.req;
    if (r->holds_mr) {
      env_->rcache().release(r->mr);
      r->holds_mr = false;
    }
    Header fin;
    fin.kind = static_cast<std::uint32_t>(MsgKind::FinRead);
    fin.src = rank();
    fin.tag = r->actual_tag;
    fin.size = action.msg_size;
    fin.req = action.peer_req;
    r->received = action.msg_size;
    r->finish(env_->now());
    transport_send(action.peer_rank, fin, {}, {});
    return;
  }
  if (action.rdma_fin) {
    if (action.req->holds_mr) {
      // Figure 5 "deactivated" mode deregisters once the write completed.
      env_->rcache().release(action.req->mr);
      action.req->holds_mr = false;
    }
    Header fin;
    fin.kind = static_cast<std::uint32_t>(MsgKind::Fin);
    fin.src = rank();
    fin.tag = action.req->tag;
    fin.size = action.req->len;
    fin.req = action.req->id;
    const int dst = action.req->peer;
    action.req->finish(env_->now());
    transport_send(dst, fin, {}, {});
  } else if (action.req) {
    action.req->finish(env_->now());
  }
}

void Comm::handle_recv_error(const hca::Cqe& cqe) {
  IBP_CHECK(cfg_.recovery == CommConfig::Recovery::Repost &&
                cqe.wr_id < kUdWrBase,
            "transport receive completed in error ("
                << hca::wc_status_name(cqe.status) << ")");
  // A QP error flushed this preposted bounce slot: recycle the QP and
  // put the slot back. Messages that arrived while the QP was down were
  // either queued by the HCA (they match the reposted receives) or
  // errored back to the sender, which replays them.
  const std::uint64_t pi = cqe.wr_id / cfg_.recv_slots;
  const std::uint64_t slot = cqe.wr_id % cfg_.recv_slots;
  const int peer = ib_peers_[pi];
  recover_qp(peer);
  hca::RecvWr wr;
  wr.wr_id = cqe.wr_id;
  wr.sges = {{recv_slot_va(static_cast<int>(pi), static_cast<int>(slot)),
              static_cast<std::uint32_t>(cfg_.slot_bytes), recv_mr_.lkey}};
  auto qp = env_->verbs().wrap_qp(
      *env_->state().qp_to[static_cast<std::size_t>(peer)]);
  env_->verbs().post_recv(qp, wr);
}

void Comm::recover_qp(int peer) {
  hca::QueuePair* qp = env_->state().qp_to[static_cast<std::size_t>(peer)];
  if (qp == nullptr || qp->state() != hca::QpState::Error) return;
  qp->reset();
  ++stats_.recoveries;
}

const CommStats& Comm::stats() const {
  stats_.retransmits = 0;
  stats_.rnr_naks = 0;
  core::RankState& st = env_->state();
  auto add = [this](const hca::QueuePair* qp) {
    if (qp == nullptr) return;
    stats_.retransmits += qp->qp_stats().retransmits;
    stats_.rnr_naks += qp->qp_stats().rnr_naks;
  };
  for (const hca::QueuePair* qp : st.qp_to) add(qp);
  add(st.ud_qp);
  return stats_;
}

void Comm::complete_eager_recv(const Req& r, const Header& hdr,
                               std::span<const std::uint8_t> payload) {
  IBP_CHECK(hdr.size == payload.size(), "payload length mismatch");
  IBP_CHECK(payload.size() <= r->len,
            "message (" << payload.size() << " B) truncates receive buffer ("
                        << r->len << " B)");
  if (!payload.empty()) {
    auto dst = env_->space().host_span(r->buf, payload.size());
    std::copy(payload.begin(), payload.end(), dst.begin());
    env_->touch_stream(r->buf, payload.size());
    env_->sim().advance(flat_copy_cost(payload.size()));
  }
  r->received = payload.size();
  r->actual_src = hdr.src;
  r->actual_tag = hdr.tag;
  r->finish(env_->now());
}

void Comm::start_rndv_recv(const Req& r, const Header& hdr) {
  IBP_CHECK(hdr.size <= r->len, "rendezvous message truncates buffer");

  const placement::BufferPlan plan =
      plan_message(hdr.size, placement::Role::Rendezvous);
  if (hdr.raddr != 0 && plan.protocol == placement::Protocol::RndvRdma) {
    // Read protocol: pull the advertised sender buffer directly.
    const verbs::Mr mr = acquire_registration(r->buf, hdr.size);
    r->mr = mr;
    r->holds_mr = true;
    r->actual_src = hdr.src;
    r->actual_tag = hdr.tag;
    hca::SendWr wr;
    wr.wr_id = next_wr_id_++;
    wr.opcode = hca::Opcode::RdmaRead;
    wr.sges = {{r->buf, static_cast<std::uint32_t>(hdr.size), mr.lkey}};
    wr.remote_addr = hdr.raddr;
    wr.rkey = hdr.rkey;
    SendAction action;
    action.req = r;
    action.read_fin = true;
    action.peer_req = hdr.req;
    action.peer_rank = hdr.src;
    action.msg_size = hdr.size;
    action.wr = wr;
    action.dest = hdr.src;
    send_actions_.emplace(wr.wr_id, std::move(action));
    r->state = Request::State::CtsSent;
    auto qp = env_->verbs().wrap_qp(
        *env_->state().qp_to[static_cast<std::size_t>(hdr.src)]);
    env_->verbs().post_send(qp, wr);
    return;
  }

  Header cts;
  cts.kind = static_cast<std::uint32_t>(MsgKind::Cts);
  cts.src = rank();
  cts.tag = hdr.tag;
  cts.size = hdr.size;
  cts.req = hdr.req;
  if (plan.protocol == placement::Protocol::RndvRdma) {
    const verbs::Mr mr = acquire_registration(r->buf, hdr.size);
    cts.raddr = r->buf;
    cts.rkey = mr.rkey;
    r->mr = mr;
    r->holds_mr = true;
  }
  r->state = Request::State::CtsSent;
  rndv_recv_.emplace(std::make_pair(hdr.src, hdr.req), r);
  transport_send(hdr.src, cts, {}, {});
}

// ---------------------------------------------------------------------------
// Collectives

void Comm::barrier() {
  ProfScope prof(this, "barrier");
  const int n = size();
  const int me = rank();
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);
  for (int k = 1; k < n; k <<= 1) {
    const int dst = (me + k) % n;
    const int src = (me - k + n) % n;
    sendrecv(0, 0, dst, ctag, 0, 0, src, ctag);
  }
}

void Comm::bcast(VirtAddr buf, std::uint64_t len, int root) {
  ProfScope prof(this, "bcast");
  const int n = size();
  const int me = rank();
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);
  const int rel = (me - root + n) % n;

  if (rel != 0) {
    const int parent_rel = rel & (rel - 1);
    recv(buf, len, (parent_rel + root) % n, ctag);
  }
  const int lowbit = rel == 0 ? ceil_pow2(n) : (rel & -rel);
  for (int mask = lowbit >> 1; mask > 0; mask >>= 1) {
    const int child_rel = rel + mask;
    if (child_rel < n) send(buf, len, (child_rel + root) % n, ctag);
  }
}

void Comm::gather(VirtAddr sendbuf, std::uint64_t len, VirtAddr recvbuf,
                  int root) {
  ProfScope prof(this, "gather");
  const int n = size();
  const int me = rank();
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);
  if (me == root) {
    for (int p = 0; p < n; ++p) {
      const VirtAddr dst = recvbuf + static_cast<std::uint64_t>(p) * len;
      if (p == me) {
        if (len) {
          auto from = env_->space().host_span(sendbuf, len);
          auto to = env_->space().host_span(dst, len);
          std::copy(from.begin(), from.end(), to.begin());
          env_->touch_stream(dst, len);
        }
      } else {
        recv(dst, len, p, ctag);
      }
    }
  } else {
    send(sendbuf, len, root, ctag);
  }
}

void Comm::gatherv(VirtAddr sendbuf, std::uint64_t len, VirtAddr recvbuf,
                   std::span<const std::uint64_t> counts,
                   std::span<const std::uint64_t> displs, int root) {
  ProfScope prof(this, "gatherv");
  const int n = size();
  const int me = rank();
  IBP_CHECK(counts.size() == static_cast<std::size_t>(n) &&
            displs.size() == static_cast<std::size_t>(n));
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);
  if (me == root) {
    for (int p = 0; p < n; ++p) {
      const VirtAddr dst = recvbuf + displs[static_cast<std::size_t>(p)];
      const std::uint64_t cnt = counts[static_cast<std::size_t>(p)];
      if (p == me) {
        IBP_CHECK(len == cnt, "root contribution size mismatch");
        if (cnt) {
          auto from = env_->space().host_span(sendbuf, cnt);
          auto to = env_->space().host_span(dst, cnt);
          std::copy(from.begin(), from.end(), to.begin());
          env_->touch_stream(dst, cnt);
        }
      } else {
        recv(dst, cnt, p, ctag);
      }
    }
  } else {
    send(sendbuf, len, root, ctag);
  }
}

void Comm::scatter(VirtAddr sendbuf, std::uint64_t len, VirtAddr recvbuf,
                   int root) {
  ProfScope prof(this, "scatter");
  const int n = size();
  const int me = rank();
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);
  if (me == root) {
    for (int p = 0; p < n; ++p) {
      const VirtAddr src = sendbuf + static_cast<std::uint64_t>(p) * len;
      if (p == me) {
        if (len) {
          auto from = env_->space().host_span(src, len);
          auto to = env_->space().host_span(recvbuf, len);
          std::copy(from.begin(), from.end(), to.begin());
          env_->touch_stream(recvbuf, len);
        }
      } else {
        send(src, len, p, ctag);
      }
    }
  } else {
    recv(recvbuf, len, root, ctag);
  }
}

void Comm::allgather(VirtAddr sendbuf, std::uint64_t len, VirtAddr recvbuf) {
  ProfScope prof(this, "allgather");
  const int n = size();
  const int me = rank();
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);

  // Own block into place.
  if (len) {
    auto from = env_->space().host_span(sendbuf, len);
    auto to = env_->space().host_span(
        recvbuf + static_cast<std::uint64_t>(me) * len, len);
    std::copy(from.begin(), from.end(), to.begin());
    env_->touch_stream(recvbuf + static_cast<std::uint64_t>(me) * len, len);
  }

  if ((n & (n - 1)) == 0) {
    // Recursive doubling (MPICH's power-of-two algorithm): at step k the
    // partner is me ^ 2^k and both sides swap the 2^k blocks they hold.
    for (int dist = 1; dist < n; dist <<= 1) {
      const int partner = me ^ dist;
      const int my_base = me & ~(dist - 1);
      const int their_base = partner & ~(dist - 1);
      sendrecv(recvbuf + static_cast<std::uint64_t>(my_base) * len,
               static_cast<std::uint64_t>(dist) * len, partner, ctag,
               recvbuf + static_cast<std::uint64_t>(their_base) * len,
               static_cast<std::uint64_t>(dist) * len, partner, ctag);
    }
    return;
  }

  // Ring fallback: at step s, send the block received at step s-1.
  const int right = (me + 1) % n;
  const int left = (me - 1 + n) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int send_block = (me - s + n) % n;
    const int recv_block = (me - s - 1 + n) % n;
    sendrecv(recvbuf + static_cast<std::uint64_t>(send_block) * len, len,
             right, ctag,
             recvbuf + static_cast<std::uint64_t>(recv_block) * len, len,
             left, ctag);
  }
}

void Comm::alltoall(VirtAddr sendbuf, std::uint64_t len_per_rank,
                    VirtAddr recvbuf) {
  ProfScope prof(this, "alltoall");
  const int n = size();
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(n),
                                    len_per_rank);
  std::vector<std::uint64_t> displs(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p)
    displs[static_cast<std::size_t>(p)] =
        static_cast<std::uint64_t>(p) * len_per_rank;
  alltoallv(sendbuf, counts, displs, recvbuf, counts, displs);
}

void Comm::alltoallv(VirtAddr sendbuf, std::span<const std::uint64_t> scounts,
                     std::span<const std::uint64_t> sdispls, VirtAddr recvbuf,
                     std::span<const std::uint64_t> rcounts,
                     std::span<const std::uint64_t> rdispls) {
  ProfScope prof(this, "alltoallv");
  const int n = size();
  const int me = rank();
  IBP_CHECK(scounts.size() == static_cast<std::size_t>(n) &&
            rcounts.size() == static_cast<std::size_t>(n));
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);

  // Local block.
  const std::uint64_t self_len =
      std::min(scounts[static_cast<std::size_t>(me)],
               rcounts[static_cast<std::size_t>(me)]);
  if (self_len) {
    auto from = env_->space().host_span(
        sendbuf + sdispls[static_cast<std::size_t>(me)], self_len);
    auto to = env_->space().host_span(
        recvbuf + rdispls[static_cast<std::size_t>(me)], self_len);
    std::copy(from.begin(), from.end(), to.begin());
    env_->touch_stream(recvbuf + rdispls[static_cast<std::size_t>(me)],
                       self_len);
  }

  // Pairwise exchange, one partner per phase.
  for (int s = 1; s < n; ++s) {
    const int dst = (me + s) % n;
    const int src = (me - s + n) % n;
    sendrecv(sendbuf + sdispls[static_cast<std::size_t>(dst)],
             scounts[static_cast<std::size_t>(dst)], dst, ctag,
             recvbuf + rdispls[static_cast<std::size_t>(src)],
             rcounts[static_cast<std::size_t>(src)], src, ctag);
  }
}

}  // namespace ibp::mpi
