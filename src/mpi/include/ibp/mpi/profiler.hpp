#pragma once

// mpiP-like profiler: accounts virtual time spent inside MPI calls so
// benches can split application time into communication and computation,
// exactly as the paper does for Figure 6 ("we are able to distinguish
// between communication and computation time").

#include <cstdint>
#include <map>
#include <string>

#include "ibp/common/types.hpp"

namespace ibp::mpi {

class Profiler {
 public:
  void add(const char* op, TimePs t) {
    by_op_[op] += t;
    total_ += t;
  }

  TimePs total() const { return total_; }
  const std::map<std::string, TimePs>& by_op() const { return by_op_; }

  void reset() {
    by_op_.clear();
    total_ = 0;
  }

 private:
  std::map<std::string, TimePs> by_op_;
  TimePs total_ = 0;
};

}  // namespace ibp::mpi
