#pragma once

// mpiP-like profiler: accounts virtual time spent inside MPI calls so
// benches can split application time into communication and computation,
// exactly as the paper does for Figure 6 ("we are able to distinguish
// between communication and computation time").

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>

#include "ibp/common/types.hpp"

namespace ibp::mpi {

class Profiler {
 public:
  /// Account `t` to `op`. Keys are interned: the map is keyed by
  /// string_view into `owned_`, so the hot path (existing op) does a
  /// pure view lookup and allocates nothing; a std::string is built only
  /// the first time a new op name appears.
  void add(std::string_view op, TimePs t) {
    auto it = by_op_.find(op);
    if (it == by_op_.end()) {
      owned_.emplace_back(op);
      it = by_op_.emplace(owned_.back(), TimePs{0}).first;
    }
    it->second += t;
    total_ += t;
  }

  TimePs total() const { return total_; }
  const std::map<std::string_view, TimePs>& by_op() const { return by_op_; }

  void reset() {
    by_op_.clear();
    owned_.clear();
    total_ = 0;
  }

 private:
  // deque: growth never moves the strings the map's views point into.
  std::deque<std::string> owned_;
  std::map<std::string_view, TimePs> by_op_;
  TimePs total_ = 0;
};

}  // namespace ibp::mpi
