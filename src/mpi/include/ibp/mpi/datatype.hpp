#pragma once

// Non-contiguous datatypes (MPI_Type_vector semantics).
//
// The paper's §4/§7 point: "MPI_Pack() and MPI_Unpack() may be mapped
// directly to this InfiniBand interface" — a strided datatype's blocks
// are exactly a scatter/gather list. Datatype describes `count` blocks of
// `block_len` bytes placed `stride` bytes apart; Comm::send_typed routes
// it through the NIC's SGE list when it fits the eager path (and
// sge_gather is on) or through pack-and-send otherwise.

#include <cstdint>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"

namespace ibp::mpi {

struct Seg;  // from comm.hpp

struct Datatype {
  std::uint64_t count = 1;      // number of blocks
  std::uint64_t block_len = 0;  // bytes per block
  std::uint64_t stride = 0;     // bytes between block starts (>= block_len)

  static Datatype contiguous(std::uint64_t bytes) {
    return Datatype{1, bytes, bytes};
  }
  static Datatype vector(std::uint64_t count, std::uint64_t block_len,
                         std::uint64_t stride) {
    IBP_CHECK(stride >= block_len, "overlapping vector blocks");
    return Datatype{count, block_len, stride};
  }

  /// Packed size in bytes.
  std::uint64_t size() const { return count * block_len; }

  /// Footprint from the first to one past the last byte touched.
  std::uint64_t extent() const {
    if (count == 0 || block_len == 0) return 0;
    return (count - 1) * stride + block_len;
  }

  bool is_contiguous() const { return count <= 1 || stride == block_len; }
};

}  // namespace ibp::mpi
