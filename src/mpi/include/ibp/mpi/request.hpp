#pragma once

// Nonblocking communication requests.

#include <cstdint>
#include <memory>

#include "ibp/common/types.hpp"
#include "ibp/mpi/message.hpp"
#include "ibp/verbs/verbs.hpp"

namespace ibp::mpi {

struct Request {
  enum class Kind : std::uint8_t { Send, Recv };
  enum class State : std::uint8_t {
    Pending,    // posted, not yet progressed to completion
    RtsSent,    // rendezvous sender: waiting for CTS
    Writing,    // rendezvous sender: RDMA write in flight
    CtsSent,    // rendezvous receiver: waiting for data/FIN
    Done,
  };

  Kind kind = Kind::Send;
  State state = State::Pending;
  std::uint64_t id = 0;  // sender-side id used in rendezvous headers

  // Common
  VirtAddr buf = 0;
  std::uint64_t len = 0;  // send: bytes to send; recv: capacity
  std::int32_t peer = 0;  // send: dst; recv: src (or kAnySource)
  std::int32_t tag = 0;   // recv: may be kAnyTag

  // Rendezvous-RDMA registration held for the transfer's lifetime (only
  // deregistered at completion when lazy deregistration is off).
  verbs::Mr mr{};
  bool holds_mr = false;

  // Recv results
  std::uint64_t received = 0;
  std::int32_t actual_src = -1;
  std::int32_t actual_tag = -1;

  /// Virtual time the request completed. Blocking waits resume at this
  /// time when a *different* track of the same rank drained the
  /// completing event: the waiter's own predicate (earliest transport
  /// event) never fires for an event someone else already consumed.
  TimePs done_at = 0;

  void finish(TimePs t) {
    state = State::Done;
    done_at = t;
  }

  bool done() const { return state == State::Done; }
};

using Req = std::shared_ptr<Request>;

/// Completed-receive summary returned by blocking recv().
struct RecvStatus {
  std::int32_t src = -1;
  std::int32_t tag = -1;
  std::uint64_t len = 0;
};

}  // namespace ibp::mpi
