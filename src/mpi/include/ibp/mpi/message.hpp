#pragma once

// Wire protocol of the simpi transport.
//
// Every transport-level message starts with a fixed 48-byte header; eager
// payload follows in-band. Rendezvous exchanges RTS/CTS/FIN control
// messages and moves the payload either by RDMA write into the receiver's
// registered buffer (large path) or as an in-band RndvData message through
// bounce buffers (medium path).

#include <cstdint>
#include <cstring>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"

namespace ibp::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

enum class MsgKind : std::uint32_t {
  Eager = 1,     // header + payload in-band
  Rts = 2,       // rendezvous request-to-send
  Cts = 3,       // clear-to-send (raddr/rkey==0 selects the copy path)
  RndvData = 4,  // medium rendezvous payload in-band
  Fin = 5,       // write rendezvous: sender -> receiver, data placed
  FinRead = 6,   // read rendezvous: receiver -> sender, data pulled
};

struct Header {
  std::uint32_t kind = 0;
  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t rkey = 0;
  std::uint64_t size = 0;   // full payload size of the user message
  std::uint64_t req = 0;    // sender-side request id (rendezvous matching)
  std::uint64_t raddr = 0;  // CTS: receiver buffer address
  // Per (src, dst) flow sequence number: restores envelope order when
  // messages ride different transports (UD datagrams vs RC bounce/RDMA).
  std::uint32_t seq = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(Header) == 48);

inline constexpr std::uint64_t kHeaderBytes = sizeof(Header);

inline void store_header(std::uint8_t* dst, const Header& h) {
  std::memcpy(dst, &h, sizeof(Header));
}

inline Header load_header(const std::uint8_t* src) {
  Header h;
  std::memcpy(&h, src, sizeof(Header));
  IBP_CHECK(h.kind >= 1 && h.kind <= 6, "corrupt transport header");
  return h;
}

}  // namespace ibp::mpi
