#pragma once

// One-sided communication windows (MPI-2 RMA flavoured), an extension
// showcasing the data-placement machinery: a Window collectively exposes
// one buffer per rank; put/get map to RDMA write/read work requests (so
// window placement — hugepages vs small pages — hits the same
// registration/ATT mechanics the paper studies), and fetch_add maps to
// the HCA's 8-byte atomic. Synchronization is fence-based.
//
// Same-node targets have no HCA between them; their accesses go straight
// through shared memory with a copy-cost model, like MVAPICH's intra-node
// RMA path.

#include <cstdint>
#include <vector>

#include "ibp/mpi/comm.hpp"

namespace ibp::mpi {

/// One-sided traffic counters, exported to the cluster metrics registry
/// as mpi.window.* for the window's lifetime (latched at destruction).
struct WindowStats {
  std::uint64_t puts = 0;
  std::uint64_t put_bytes = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_bytes = 0;
  std::uint64_t atomics = 0;      // fetch_add + compare_swap
  std::uint64_t fence_waits = 0;  // outstanding ops drained by fence()
};

class Window {
 public:
  /// Collective: every rank exposes [base, base+len). Registers the local
  /// region and allgathers {base, rkey} from all ranks.
  Window(Comm& comm, VirtAddr base, std::uint64_t len);
  ~Window();

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  /// Write [local, local+len) into target's window at `target_off`.
  /// Completes locally at the next fence().
  void put(VirtAddr local, std::uint64_t len, int target,
           std::uint64_t target_off);

  /// Read target's window [target_off, target_off+len) into `local`.
  /// Data is usable after the next fence().
  void get(VirtAddr local, std::uint64_t len, int target,
           std::uint64_t target_off);

  /// Atomic 8-byte fetch-and-add on target's window; returns the value
  /// before the addition. Blocking (atomics order the caller anyway).
  std::uint64_t fetch_add(int target, std::uint64_t target_off,
                          std::uint64_t value);

  /// Atomic 8-byte compare-and-swap; returns the previous value.
  std::uint64_t compare_swap(int target, std::uint64_t target_off,
                             std::uint64_t expected, std::uint64_t desired);

  /// Complete all outstanding local operations and synchronize all ranks
  /// (MPI_Win_fence semantics).
  void fence();

  std::uint64_t size() const { return len_; }
  const WindowStats& stats() const { return stats_; }

 private:
  void register_metrics();
  hca::SendWr make_rdma(int target, std::uint64_t target_off,
                        std::uint64_t len) const;
  void post_tracked(int target, hca::SendWr wr);

  Comm* comm_;
  VirtAddr base_;
  std::uint64_t len_;
  verbs::Mr local_mr_{};
  VirtAddr scratch_ = 0;      // 8-byte atomic result landing zone
  verbs::Mr scratch_mr_{};
  std::vector<VirtAddr> bases_;        // per rank
  std::vector<std::uint32_t> rkeys_;   // per rank (0 for shm peers/self)
  std::vector<Req> outstanding_;
  WindowStats stats_;
  std::vector<telemetry::ProbeHandle> probes_;
};

}  // namespace ibp::mpi
