#pragma once

// simpi — an MPI-like point-to-point and collective layer over the
// simulated InfiniBand verbs (inter-node) and shared memory (intra-node),
// modelled on MVAPICH2 0.9.8's CH3 channel as the paper used it:
//
//   * eager protocol through preposted bounce buffers up to 8 KB,
//   * rendezvous with in-band copy for (8 KB, 16 KB],
//   * rendezvous with RDMA write above 16 KB — the only path that
//     registers *user* buffers, which is why the paper "only sees memory
//     registration effects for those buffers" (§5.1),
//   * registration managed by a pin-down cache (lazy deregistration),
//     toggleable per the paper's Figure 5 experiment,
//   * optional scatter/gather eager sends (one WR, header SGE + user
//     SGEs) — the paper's §7 future-work feature, implemented here and
//     compared against pack-and-send in bench/abl_sge_mpi.

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"
#include "ibp/core/cluster.hpp"
#include "ibp/mpi/datatype.hpp"
#include "ibp/mpi/message.hpp"
#include "ibp/mpi/profiler.hpp"
#include "ibp/mpi/request.hpp"
#include "ibp/ringchan/ringchan.hpp"

namespace ibp::mpi {

struct CommConfig {
  std::uint64_t eager_threshold = 8 * kKiB;
  std::uint64_t rndv_copy_max = 16 * kKiB;
  std::uint32_t recv_slots = 32;  // preposted recvs per inter-node peer
  std::uint32_t send_slots = 64;  // shared send bounce pool
  std::uint64_t slot_bytes = 16 * kKiB + 64;
  /// Route eligible eager sends through one WR with scatter/gather
  /// elements instead of packing into the bounce buffer (§7).
  bool sge_gather = false;
  /// Large-message rendezvous flavour: RDMA-write (RTS/CTS/write/FIN, the
  /// MVAPICH default the paper used) or RDMA-read (the RTS carries the
  /// sender's rkey and the receiver pulls — one handshake hop fewer).
  bool rndv_read = false;
  /// Hybrid UD transport: eager and control messages that fit one MTU
  /// ride a single connectionless UD QP (MVAPICH-UD style: prepost memory
  /// independent of peer count, no ACK round on the sender CQE); larger
  /// traffic stays on the RC paths. Sequence numbers restore envelope
  /// order across the mixed transports.
  bool ud_eager = false;
  /// One-sided ring channels (EXT-RDMA): eligible eager messages are
  /// framed into a persistent, receiver-owned ring slab the sender
  /// RDMA-writes — no preposted receive, no recv-CQ poll on the hot
  /// path; the receiver discovers arrivals by polling ring memory and
  /// returns credit by RDMA-writing its consumed-up-to counter into a
  /// sender-owned control word. Messages that exceed ring.max_record or
  /// find the ring out of credit fall back to the two-sided eager path
  /// (envelope order is restored by the per-source sequence numbers).
  /// Mutually exclusive with ud_eager.
  bool rdma_eager = false;
  /// Per-peer ring geometry used when rdma_eager is on.
  ringchan::RingConfig ring;
  /// What to do when the transport reports an error completion (only
  /// possible with a cluster fault plan; a healthy fabric never errors).
  enum class Recovery : std::uint8_t {
    FailFast,  // abort the run — errors are bugs on a healthy fabric
    Repost,    // reset the QP, repost flushed receives, replay the send
  };
  Recovery recovery = Recovery::FailFast;
  /// Repost policy: bound on MPI-level replays of one work request.
  std::uint32_t max_send_retries = 4;
  /// Repost policy: virtual time charged per replay (models connection
  /// re-establishment; also lets the peer drain its own flushed
  /// completions and repost its receives before the replay arrives).
  TimePs recovery_delay = us(100);
};

/// One contiguous piece of a gathered send.
struct Seg {
  VirtAddr addr = 0;
  std::uint64_t len = 0;
};

enum class ReduceOp : std::uint8_t { Sum, Max, Min };

/// Per-protocol traffic counters (observability; cheap to keep).
struct CommStats {
  std::uint64_t eager_sent = 0;
  std::uint64_t eager_bytes = 0;
  std::uint64_t rndv_copy_sent = 0;
  std::uint64_t rndv_copy_bytes = 0;
  std::uint64_t rndv_rdma_sent = 0;
  std::uint64_t rndv_rdma_bytes = 0;
  std::uint64_t shm_sent = 0;
  std::uint64_t shm_bytes = 0;
  std::uint64_t unexpected_arrivals = 0;
  std::uint64_t gather_sends = 0;
  std::uint64_t sge_splits = 0;  // gathers split to honour plan.max_sges
  std::uint64_t ud_sent = 0;
  std::uint64_t rdma_eager_sent = 0;   // messages placed via ring write
  std::uint64_t rdma_eager_bytes = 0;  // user payload bytes over the rings
  /// Ring-eligible sends pushed back to the two-sided path because the
  /// ring was out of credit at post time.
  std::uint64_t rdma_eager_fallbacks = 0;
  std::uint64_t rdma_credit_returns = 0;  // consumed-counter writebacks
  std::uint64_t reordered = 0;  // arrivals stashed for sequencing
  // Transport reliability (refreshed from the QP counters by stats()).
  std::uint64_t retransmits = 0;  // NIC-level packet retransmissions
  std::uint64_t rnr_naks = 0;     // receiver-not-ready backoff rounds
  std::uint64_t recoveries = 0;   // Repost-policy QP resets
};

class Window;

class Comm {
 public:
  /// Collective constructor: every rank must construct its Comm at the
  /// start of the rank program (buffers are allocated and registered,
  /// receives preposted).
  explicit Comm(core::RankEnv& env, CommConfig cfg = {});

  /// Flushes the profiler's per-op totals into the cluster metrics
  /// registry (mpi.time_us.<op>) and latches the traffic-counter probes.
  ~Comm();

  int rank() const { return env_->rank(); }
  int size() const { return env_->nranks(); }
  core::RankEnv& env() { return *env_; }
  Profiler& profiler() { return prof_; }
  const CommConfig& config() const { return cfg_; }

  // --- point to point -----------------------------------------------------
  Req isend(VirtAddr buf, std::uint64_t len, int dst, int tag);
  Req irecv(VirtAddr buf, std::uint64_t cap, int src, int tag);
  void wait(const Req& r);
  void waitall(std::span<const Req> rs);
  bool test(const Req& r);

  /// Wait for any request in `rs` to complete; returns its index.
  std::size_t waitany(std::span<const Req> rs);

  void send(VirtAddr buf, std::uint64_t len, int dst, int tag);
  RecvStatus recv(VirtAddr buf, std::uint64_t cap, int src, int tag);
  RecvStatus sendrecv(VirtAddr sbuf, std::uint64_t slen, int dst, int stag,
                      VirtAddr rbuf, std::uint64_t rcap, int src, int rtag);

  /// Gathered eager send: the message is the concatenation of `segs`
  /// (total must fit the eager path). With cfg.sge_gather the NIC gathers
  /// the pieces via SGEs; otherwise they are packed through the bounce
  /// buffer first.
  Req isend_gather(const std::vector<Seg>& segs, int dst, int tag);

  /// MPI_Pack / MPI_Unpack equivalents (CPU copies, charged).
  void pack(const std::vector<Seg>& segs, VirtAddr dst);
  void unpack(VirtAddr src, const std::vector<Seg>& segs);

  /// Typed (non-contiguous) transfers, MPI_Type_vector-style. Small typed
  /// sends map onto one SGE-list work request when cfg.sge_gather is on
  /// (§7); larger ones pack through a staging buffer. recv_typed receives
  /// the packed stream and scatters it into the datatype's blocks.
  void send_typed(VirtAddr base, const Datatype& type, int dst, int tag);
  RecvStatus recv_typed(VirtAddr base, const Datatype& type, int src,
                        int tag);

  /// The SGE list a typed buffer denotes.
  static std::vector<Seg> type_segments(VirtAddr base, const Datatype& type);

  // --- collectives ----------------------------------------------------------
  void barrier();
  void bcast(VirtAddr buf, std::uint64_t len, int root);
  void gather(VirtAddr sendbuf, std::uint64_t len, VirtAddr recvbuf, int root);
  void gatherv(VirtAddr sendbuf, std::uint64_t len, VirtAddr recvbuf,
               std::span<const std::uint64_t> counts,
               std::span<const std::uint64_t> displs, int root);
  void scatter(VirtAddr sendbuf, std::uint64_t len, VirtAddr recvbuf,
               int root);
  void allgather(VirtAddr sendbuf, std::uint64_t len, VirtAddr recvbuf);
  void alltoall(VirtAddr sendbuf, std::uint64_t len_per_rank, VirtAddr recvbuf);
  void alltoallv(VirtAddr sendbuf, std::span<const std::uint64_t> scounts,
                 std::span<const std::uint64_t> sdispls, VirtAddr recvbuf,
                 std::span<const std::uint64_t> rcounts,
                 std::span<const std::uint64_t> rdispls);

  template <typename T>
  void allreduce(VirtAddr sendbuf, VirtAddr recvbuf, std::uint64_t count,
                 ReduceOp op);
  /// Element-wise reduce of n*count elements, rank r keeping block r.
  template <typename T>
  void reduce_scatter(VirtAddr sendbuf, VirtAddr recvbuf,
                      std::uint64_t count_per_rank, ReduceOp op);
  /// Inclusive prefix reduction: rank r receives op over ranks 0..r.
  template <typename T>
  void scan(VirtAddr sendbuf, VirtAddr recvbuf, std::uint64_t count,
            ReduceOp op);
  template <typename T>
  void reduce(VirtAddr sendbuf, VirtAddr recvbuf, std::uint64_t count,
              ReduceOp op, int root);

  // --- internals exposed for tests -----------------------------------------
  std::size_t unexpected_depth() const { return unexpected_.size(); }
  std::size_t posted_depth() const { return posted_.size(); }
  regcache::RegCache& rcache() { return env_->rcache(); }
  /// Traffic counters. The transport-reliability fields (retransmits,
  /// rnr_naks) are pulled from the rank's QP counters on each call.
  const CommStats& stats() const;

 private:
  friend class Window;  // one-sided ops post through the same engine

  struct Unexpected {
    Header hdr;
    std::vector<std::uint8_t> payload;
  };

  struct SendAction {
    int slot = -1;   // bounce slot to release on CQE
    Req req;         // request to complete on CQE
    bool rdma_fin = false;  // write rendezvous: on CQE send FIN, complete
    bool read_fin = false;  // read rendezvous: on CQE notify the sender
    std::uint64_t peer_req = 0;  // read_fin: the sender's request id
    std::int32_t peer_rank = -1;
    std::uint64_t msg_size = 0;
    hca::SendWr wr;          // stored for Repost-policy replays
    std::int32_t dest = -1;  // peer the RC WR targeted (-1: not replayable)
    std::uint32_t attempts = 0;  // replays consumed so far
    // Staging block holding the tail of a gather split by plan.max_sges;
    // freed at the successful CQE (replays keep it intact).
    VirtAddr stage_buf = 0;
  };

  // Transport helpers.
  bool same_node(int peer) const;
  int take_send_slot();
  void release_send_slot(int slot);
  VirtAddr send_slot_va(int slot) const;
  VirtAddr recv_slot_va(int peer_index, int slot) const;

  /// Send header+payload to `peer` over the right transport. `payload`
  /// may be empty. `action` describes what happens at the send CQE
  /// (ignored for shm). Charges posting/copy time.
  void transport_send(int peer, const Header& hdr,
                      std::span<const std::uint8_t> payload,
                      SendAction action);

  /// Gathered transport send via SGE list (inter-node only).
  void transport_send_sges(int peer, const Header& hdr,
                           const std::vector<Seg>& segs, SendAction action);

  // Progress engine.
  void progress_once();
  void progress_block();
  std::optional<TimePs> earliest_event() const;

  // One-sided ring channels (cfg.rdma_eager).
  void setup_rings();
  /// Frame [mpi header | payload] into the peer's ring and post the
  /// write(s). Returns false — without consuming a sequence number —
  /// when the ring is not usable (unconnected, record too large, out of
  /// credit), in which case the caller falls back to two-sided eager.
  bool try_ring_send(int dst, Header& hdr, VirtAddr buf, std::uint64_t len);
  /// Parse newly visible ring records, return due credit, sweep credit
  /// writebacks. Sets `*again` when any record was ingested.
  void poll_rings(bool* again);

 public:
  /// Earliest virtual time at which an unconsumed transport event (ready
  /// CQE, shm arrival) exists, or nullopt. Side-effect free, so callers
  /// can compose it into sim wait_until predicates together with their
  /// own conditions (e.g. an RPC dispatcher sleeping for "next request
  /// batch OR a worker hand-off").
  std::optional<TimePs> earliest_event_time() const {
    return earliest_event();
  }

  /// Post a one-sided work request on the RC QP to `peer` under this
  /// Comm's send-CQE bookkeeping: the WR is stored for Repost-policy
  /// replays, and a success CQE simply retires it. The referenced local
  /// memory must stay valid until the CQE (ring staging slabs qualify —
  /// their bytes survive until the slab space is credited back). Used by
  /// the rdma-eager tier and by the RPC response fast path. With
  /// `tracked`, returns a Request that finishes at the success CQE
  /// (surviving Repost replays) so the caller can drain its one-sided
  /// writes; untracked posts return null and retire silently.
  Req post_one_sided(int peer, hca::SendWr wr, bool tracked = false);

 private:
  /// Sequencing front-end: delivers in per-source order, stashing early
  /// arrivals (mixed UD/RC transports may reorder).
  void ingest(const Header& hdr, std::span<const std::uint8_t> payload);
  void handle_msg(const Header& hdr, std::span<const std::uint8_t> payload);
  void handle_send_cqe(const hca::Cqe& cqe);
  /// Repost-policy path for a flushed preposted receive.
  void handle_recv_error(const hca::Cqe& cqe);
  /// Reset the QP to `peer` if a fault errored it (counts a recovery).
  void recover_qp(int peer);
  void complete_eager_recv(const Req& r, const Header& hdr,
                           std::span<const std::uint8_t> payload);
  void start_rndv_recv(const Req& r, const Header& hdr);
  bool match(const Req& r, std::int32_t src, std::int32_t tag) const {
    return (r->peer == kAnySource || r->peer == src) &&
           (r->tag == kAnyTag || r->tag == tag);
  }

  /// CPU copy cost of `len` bytes through a bounce buffer (flat model for
  /// the bounce side; the user-buffer side is charged placement-aware via
  /// MemorySystem::stream).
  TimePs flat_copy_cost(std::uint64_t len) const;

  /// Ask the rank's placement engine how to move `len` bytes. The context
  /// carries this Comm's tunables (tests override CommConfig thresholds),
  /// so the plan's protocol/SGE decisions are made against them.
  placement::BufferPlan plan_message(std::uint64_t len, placement::Role role,
                                     std::uint32_t pieces = 1) const;

  /// rcache().acquire plus an observation fed back to the placement
  /// engine: registration-cache misses and virtual-time cost for this
  /// buffer's backing tier. `role` labels the observation so per-role
  /// override policies receive their own feedback.
  verbs::Mr acquire_registration(
      VirtAddr addr, std::uint64_t len,
      placement::Role role = placement::Role::Rendezvous);

  std::uint64_t peer_index(int peer) const;  // dense index among IB peers

  /// Flow-event plumbing: a deterministic id shared by the send-side "s"
  /// and recv-side "f" records of one message (src, dst, seq).
  std::uint64_t flow_id(int src, int dst, std::uint32_t seq) const {
    return ((static_cast<std::uint64_t>(src) *
                 static_cast<std::uint64_t>(size()) +
             static_cast<std::uint64_t>(dst))
            << 32) |
           seq;
  }
  void register_metrics();

  template <typename T>
  static T apply_op(T a, T b, ReduceOp op) {
    switch (op) {
      case ReduceOp::Sum: return a + b;
      case ReduceOp::Max: return a > b ? a : b;
      case ReduceOp::Min: return a < b ? a : b;
    }
    IBP_FAIL("bad reduce op");
  }

  /// Accounts the outermost MPI call only, so collectives built on p2p
  /// are not double-counted in the profiler.
  struct ProfScope {
    Comm* c;
    const char* op;
    TimePs t0;
    ProfScope(Comm* comm, const char* name)
        : c(comm), op(name), t0(comm->env_->now()) {
      ++c->prof_depth_;
    }
    ~ProfScope() {
      if (--c->prof_depth_ == 0) {
        c->prof_.add(op, c->env_->now() - t0);
        if (sim::Tracer* tr = c->env_->cluster().tracer())
          tr->add(c->env_->rank(), "mpi", op, t0, c->env_->now() - t0);
      }
    }
  };

  core::RankEnv* env_;
  CommConfig cfg_;
  Profiler prof_;
  mutable CommStats stats_;  // stats() refreshes the QP-derived fields
  int prof_depth_ = 0;

  // Bounce buffers.
  VirtAddr send_region_ = 0;
  VirtAddr recv_region_ = 0;
  VirtAddr ud_region_ = 0;   // UD datagram landing slots (one pool)
  verbs::Mr send_mr_;
  verbs::Mr recv_mr_;
  verbs::Mr ud_mr_;
  std::vector<int> free_send_slots_;
  /// When the most recent slot was released (a blocked take_send_slot
  /// on another track resumes at this time; see Request::done_at).
  TimePs send_slot_free_t_ = 0;
  std::vector<int> ib_peers_;            // ranks reached via the HCA
  std::vector<std::uint64_t> peer_idx_;  // rank -> dense ib peer index

  // One-sided ring channels, dense-ib-peer indexed (empty unless
  // cfg.rdma_eager): ring_rx_[i] is the slab peer i writes into,
  // ring_tx_[i] the staging mirror + credit word for sends to peer i.
  std::vector<std::unique_ptr<ringchan::RingReceiver>> ring_rx_;
  std::vector<std::unique_ptr<ringchan::RingSender>> ring_tx_;
  bool ring_polling_ = false;  // reentrancy guard (progress re-entered
                               // from a handler keeps release order)

  // Matching.
  std::deque<Req> posted_;
  std::deque<Unexpected> unexpected_;
  std::map<std::pair<int, std::uint64_t>, Req> rndv_recv_;  // (src, req id)
  std::map<std::uint64_t, Req> rndv_send_;                  // req id
  std::map<std::uint64_t, SendAction> send_actions_;        // wr_id
  std::uint64_t next_req_id_ = 1;
  std::uint64_t next_wr_id_ = 1;
  std::uint64_t coll_seq_ = 0;

  // Flow sequencing (per peer rank).
  std::vector<std::uint32_t> send_seq_;
  std::vector<std::uint32_t> expect_seq_;
  std::map<std::pair<int, std::uint32_t>, Unexpected> reorder_;

  // Traffic-counter probes into the cluster metrics registry; released
  // (final values latched) when this Comm dies.
  std::vector<telemetry::ProbeHandle> probes_;
};

// ---------------------------------------------------------------------------
// Typed collectives

template <typename T>
void Comm::reduce(VirtAddr sendbuf, VirtAddr recvbuf, std::uint64_t count,
                  ReduceOp op, int root) {
  ProfScope prof(this, "reduce");
  const int n = size();
  const int me = rank();
  const std::uint64_t bytes = count * sizeof(T);
  const int rel = (me - root + n) % n;
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);

  // Scratch buffer for incoming partial results.
  const VirtAddr tmp = env_->alloc(std::max<std::uint64_t>(bytes, 64));
  if (recvbuf != sendbuf) {
    auto* s = env_->host_ptr<T>(sendbuf, count);
    auto* d = env_->host_ptr<T>(recvbuf, count);
    for (std::uint64_t i = 0; i < count; ++i) d[i] = s[i];
    env_->touch_stream(recvbuf, bytes);
  }

  // Binomial tree: children send partial results up.
  for (int dist = 1; dist < n; dist <<= 1) {
    if (rel & dist) {
      const int parent = (rel - dist + root + n) % n;
      send(recvbuf, bytes, parent, ctag);
      break;
    }
    const int child_rel = rel + dist;
    if (child_rel < n) {
      const int child = (child_rel + root) % n;
      recv(tmp, bytes, child, ctag);
      auto* d = env_->host_ptr<T>(recvbuf, count);
      auto* s = env_->host_ptr<T>(tmp, count);
      for (std::uint64_t i = 0; i < count; ++i)
        d[i] = apply_op(d[i], s[i], op);
      env_->compute(count);
      env_->touch_stream(recvbuf, bytes);
    }
  }
  env_->dealloc(tmp);
}

template <typename T>
void Comm::allreduce(VirtAddr sendbuf, VirtAddr recvbuf, std::uint64_t count,
                     ReduceOp op) {
  ProfScope prof(this, "allreduce");
  reduce<T>(sendbuf, recvbuf, count, op, 0);
  bcast(recvbuf, count * sizeof(T), 0);
}

template <typename T>
void Comm::reduce_scatter(VirtAddr sendbuf, VirtAddr recvbuf,
                          std::uint64_t count_per_rank, ReduceOp op) {
  ProfScope prof(this, "reduce_scatter");
  const int n = size();
  const std::uint64_t total = count_per_rank * static_cast<std::uint64_t>(n);
  const VirtAddr tmp = env_->alloc(
      std::max<std::uint64_t>(total * sizeof(T), 64));
  reduce<T>(sendbuf, tmp, total, op, 0);
  scatter(tmp, count_per_rank * sizeof(T), recvbuf, 0);
  env_->dealloc(tmp);
}

template <typename T>
void Comm::scan(VirtAddr sendbuf, VirtAddr recvbuf, std::uint64_t count,
                ReduceOp op) {
  ProfScope prof(this, "scan");
  const int me = rank();
  const std::uint64_t bytes = count * sizeof(T);
  const int ctag = 0x40000000 | static_cast<int>(coll_seq_++ & 0xFFFF);

  // Linear pipeline: receive the prefix from the left, fold own
  // contribution, pass to the right.
  if (recvbuf != sendbuf) {
    auto* s = env_->host_ptr<T>(sendbuf, count);
    auto* d = env_->host_ptr<T>(recvbuf, count);
    for (std::uint64_t i = 0; i < count; ++i) d[i] = s[i];
    env_->touch_stream(recvbuf, bytes);
  }
  if (me > 0) {
    const VirtAddr tmp = env_->alloc(std::max<std::uint64_t>(bytes, 64));
    recv(tmp, bytes, me - 1, ctag);
    auto* d = env_->host_ptr<T>(recvbuf, count);
    auto* p = env_->host_ptr<T>(tmp, count);
    for (std::uint64_t i = 0; i < count; ++i) d[i] = apply_op(p[i], d[i], op);
    env_->compute(count);
    env_->touch_stream(recvbuf, bytes);
    env_->dealloc(tmp);
  }
  if (me + 1 < size()) send(recvbuf, bytes, me + 1, ctag);
}

}  // namespace ibp::mpi
