#pragma once

// One-sided ring channels: the RDMA-write eager tier (EXT-RDMA).
//
// A channel is a persistent, receiver-owned, pre-registered ring slab the
// *sender* RDMA-writes framed records into. The receiver discovers
// arrivals by polling ring memory — no posted receive, no recv-CQ poll on
// the hot path — and returns flow-control credit by RDMA-writing its
// consumed-up-to counter into a sender-owned control word. This is the
// MPICH2-over-InfiniBand RDMA eager design (PAPERS.md) grown on top of
// the paper's placement machinery: slabs are planned as Role::RingSlab
// (hugepage residency, alignment) and control words as Role::RingSlot.
//
// Wire format — every frame is 8-byte aligned inside the slab:
//
//   record frame   [ head {u32 mark, u32 len} | payload (len, padded to 8)
//                  | tail {u32 mark, u32 0} ]     mark = kHeadMagic ^ seq32
//   wrap frame     [ {u32 mark, u32 0} ]          mark = kWrapMagic ^ seq32
//
// Invariants:
//  * Single writer per ring. Frames carry a dense sequence number; the
//    receiver derives the sender's head pointer from the frames it parses
//    (the head piggybacks on the record stream — no separate pointer
//    write).
//  * Tail-marker polling rule: a record is complete only when its tail
//    marker matches head's sequence; the head marker alone may be
//    visible while payload bytes are still in flight.
//  * Wrap handling: a record that does not fit the contiguous space
//    before the slab end is preceded by a wrap frame; the rest of the
//    slab is dead space (it still consumes credit) and the record starts
//    at offset 0.
//  * Credit is an absolute consumed-up-to byte counter, monotonically
//    increasing; re-writing an old or duplicate credit value is harmless,
//    which is what makes fault-plan replays of credit writes idempotent.
//
// In this simulation RDMA-write payloads land in target host memory at
// post time while their *virtual* arrival is later; the receiver
// therefore gates every parse step on an hca::WriteMonitor attached to
// the slab MR (and the sender gates credit reads on its control word's
// monitor). A write that dies in the fault injector places no bytes and
// records no event, so re-posting the same frame at the same offset is
// idempotent and ring-credit consistent.
//
// The channel owns no QPs and no CQs: prepare()/make_credit_wr() return
// hca::SendWr work requests; the owning transport (mpi::Comm, the RPC
// layers) assigns wr_ids, posts them on its own QP and routes completion
// or replay back. Small frames are marked inline (IBV_SEND_INLINE) so
// the HCA skips the sender-side DMA gather.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "ibp/common/types.hpp"
#include "ibp/core/cluster.hpp"
#include "ibp/hca/adapter.hpp"
#include "ibp/hca/types.hpp"
#include "ibp/verbs/verbs.hpp"

namespace ibp::ringchan {

inline constexpr std::uint32_t kHeadMagic = 0x52494e47;  // "RING"
inline constexpr std::uint32_t kWrapMagic = 0x57524150;  // "WRAP"
inline constexpr std::uint32_t kHeaderBytes = 8;         // {mark, len}
inline constexpr std::uint32_t kTailBytes = 8;           // {mark, 0}

constexpr std::uint64_t align8(std::uint64_t v) { return (v + 7) & ~7ull; }

/// Slab footprint of a record frame carrying `payload` bytes.
constexpr std::uint64_t record_bytes(std::uint64_t payload) {
  return kHeaderBytes + align8(payload) + kTailBytes;
}

struct RingConfig {
  std::uint64_t slab_bytes = 64 * kKiB;  // ring capacity (multiple of 8)
  std::uint32_t max_record = 8 * kKiB + 64;  // largest payload accepted
  /// Return credit once slab_bytes/credit_div have been consumed since
  /// the last credit write (amortizes the control-word writes).
  std::uint32_t credit_div = 4;
  bool inline_small = true;  // inline frames up to the HCA inline_max
};

/// Receiver-side slab coordinates, shipped to the sender out of band.
struct RingDescriptor {
  VirtAddr slab = 0;
  std::uint32_t rkey = 0;
  std::uint64_t bytes = 0;
};

/// Sender-side credit-word coordinates, shipped to the receiver.
struct CreditDescriptor {
  VirtAddr word = 0;
  std::uint32_t rkey = 0;
};

/// Both halves of a channel handshake (what each side publishes).
struct ChannelHello {
  RingDescriptor ring;      // my receive ring — write your records here
  CreditDescriptor credit;  // my send credit word — return credit here
};

/// Receiver half: owns the placement-planned ring slab and its write
/// monitor, parses frames in arrival order, and produces credit-return
/// work requests against the peer sender's control word.
class RingReceiver {
 public:
  RingReceiver(core::RankEnv& env, const RingConfig& cfg);
  ~RingReceiver();
  RingReceiver(const RingReceiver&) = delete;
  RingReceiver& operator=(const RingReceiver&) = delete;

  RingDescriptor descriptor() const {
    return RingDescriptor{slab_, mr_.rkey, cfg_.slab_bytes};
  }
  void connect_credit(const CreditDescriptor& cd) { credit_ = cd; }
  bool credit_connected() const { return credit_.word != 0; }

  struct Record {
    VirtAddr payload = 0;   // VA of the payload inside the slab
    std::uint32_t len = 0;  // payload bytes
    std::uint64_t seq = 0;  // frame sequence number
  };

  /// Consume write-visibility events at or before `now` and append every
  /// newly completed record. Record payload bytes stay valid until
  /// release(); records must be released oldest-first.
  void poll(TimePs now, std::vector<Record>& out);

  /// Earliest pending arrival, for the owner's blocking-wait predicate.
  std::optional<TimePs> next_visible() const { return mon_.next_visible(); }

  /// Done with the oldest un-released record: its slab footprint (plus
  /// any preceding wrap dead space) becomes creditable.
  void release(const Record& r);

  /// Enough consumed since the last credit write?
  bool credit_due() const {
    return credit_connected() &&
           consumed_ - credited_ >= cfg_.slab_bytes / cfg_.credit_div;
  }
  /// Work request RDMA-writing the consumed-up-to counter into the
  /// sender's control word. Marks the credit as returned; the owner posts
  /// (and on faults replays) the WR — stale replays are idempotent.
  hca::SendWr make_credit_wr();

  std::uint64_t consumed() const { return consumed_; }
  std::uint64_t credit_writes() const { return credit_writes_; }
  std::uint64_t records_seen() const { return records_; }

 private:
  struct Pending {
    std::uint64_t seq = 0;
    std::uint64_t footprint = 0;  // slab bytes freed when released
  };

  core::RankEnv* env_;
  RingConfig cfg_;
  VirtAddr slab_ = 0;
  verbs::Mr mr_;
  mem::PageKind backing_ = mem::PageKind::Small;
  hca::WriteMonitor mon_;
  CreditDescriptor credit_{};
  VirtAddr credit_src_ = 0;  // 8-byte staging slot for the credit value
  verbs::Mr credit_src_mr_;
  std::uint64_t frames_visible_ = 0;
  std::uint64_t frames_parsed_ = 0;
  std::uint64_t seq_ = 0;           // next expected frame sequence
  std::uint64_t parsed_ = 0;        // absolute slab bytes parsed
  std::uint64_t consumed_ = 0;      // absolute slab bytes released
  std::uint64_t credited_ = 0;      // last credit value written back
  std::uint64_t pending_skip_ = 0;  // wrap dead space awaiting a release
  std::uint64_t credit_writes_ = 0;
  std::uint64_t records_ = 0;
  std::deque<Pending> pending_;
};

/// Sender half: owns a staging slab that mirrors the remote ring
/// offset-for-offset (so a frame's bytes survive until its slab space is
/// credited back — what makes fault replays possible) plus the
/// credit-return control word the receiver writes into.
class RingSender {
 public:
  RingSender(core::RankEnv& env, const RingConfig& cfg);
  ~RingSender();
  RingSender(const RingSender&) = delete;
  RingSender& operator=(const RingSender&) = delete;

  CreditDescriptor credit_descriptor() const {
    return CreditDescriptor{word_, word_mr_.rkey};
  }
  void connect(const RingDescriptor& ring);
  bool connected() const { return ring_.slab != 0; }

  /// Would a record of `payload_len` bytes fit the ring right now?
  bool can_send(std::uint32_t payload_len) const;

  /// Frame [head | payload | tail] into the staging slab and return the
  /// work request(s) placing it — a wrap frame first when the record
  /// wraps. `a` and `b` are concatenated into the record payload (`b`
  /// may be empty); the CPU staging copy is charged to the caller's
  /// clock via touch_stream. The caller must have checked can_send().
  std::vector<hca::SendWr> prepare(const std::uint8_t* a, std::uint32_t alen,
                                   const std::uint8_t* b = nullptr,
                                   std::uint32_t blen = 0);

  /// Sweep newly visible credit writes and refresh the credit counter.
  void poll_credit(TimePs now);
  std::optional<TimePs> next_credit_visible() const {
    return mon_.next_visible();
  }

  std::uint64_t head() const { return head_; }
  std::uint64_t credit() const { return credit_seen_; }
  std::uint64_t outstanding() const { return head_ - credit_seen_; }
  std::uint64_t frames_sent() const { return seq_; }

 private:
  core::RankEnv* env_;
  RingConfig cfg_;
  RingDescriptor ring_{};
  VirtAddr staging_ = 0;
  verbs::Mr staging_mr_;
  VirtAddr word_ = 0;  // credit word, RDMA-written by the receiver
  verbs::Mr word_mr_;
  hca::WriteMonitor mon_;
  std::uint64_t head_ = 0;         // absolute bytes framed into the ring
  std::uint64_t credit_seen_ = 0;  // latest credit value observed
  std::uint64_t seq_ = 0;          // next frame sequence number
};

}  // namespace ibp::ringchan
