#include "ibp/ringchan/ringchan.hpp"

#include <cstring>

#include "ibp/common/check.hpp"

namespace ibp::ringchan {

namespace {

/// Geometry sanity shared by both halves: aligned slab, and the largest
/// record must leave at least one credit quantum of slack so a blocked
/// sender always implies a credit write is (or becomes) due.
void check_config(const RingConfig& cfg) {
  IBP_CHECK(cfg.slab_bytes % 8 == 0, "ring slab must be 8-byte aligned");
  IBP_CHECK(cfg.credit_div >= 2, "credit_div must be >= 2");
  IBP_CHECK(record_bytes(cfg.max_record) <=
                cfg.slab_bytes - cfg.slab_bytes / cfg.credit_div,
            "ring slab too small for max_record at this credit_div");
}

void store_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }

std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// RingReceiver

RingReceiver::RingReceiver(core::RankEnv& env, const RingConfig& cfg)
    : env_(&env), cfg_(cfg) {
  check_config(cfg_);
  slab_ = env.alloc(cfg_.slab_bytes, placement::Role::RingSlab);
  mr_ = env.verbs().reg_mr(slab_, cfg_.slab_bytes);
  env.verbs().set_write_monitor(mr_, &mon_);
  const mem::Mapping* m = env.space().find(slab_, cfg_.slab_bytes);
  if (m != nullptr) backing_ = m->kind;
  credit_src_ = env.alloc(8, placement::Role::RingSlot);
  credit_src_mr_ = env.verbs().reg_mr(credit_src_, 8);
  *env.host_ptr<std::uint64_t>(credit_src_) = 0;
}

RingReceiver::~RingReceiver() {
  env_->verbs().set_write_monitor(mr_, nullptr);
  env_->verbs().dereg_mr(credit_src_mr_);
  env_->verbs().dereg_mr(mr_);
  env_->dealloc(credit_src_);
  env_->dealloc(slab_);
}

void RingReceiver::poll(TimePs now, std::vector<Record>& out) {
  frames_visible_ += mon_.take_visible(now).size();
  while (frames_parsed_ < frames_visible_) {
    const std::uint64_t off = parsed_ % cfg_.slab_bytes;
    const std::uint8_t* head = env_->host_ptr<std::uint8_t>(slab_ + off, 8);
    const std::uint32_t mark = load_u32(head);
    const std::uint32_t len = load_u32(head + 4);
    const std::uint32_t s32 = static_cast<std::uint32_t>(seq_);
    if (mark == (kWrapMagic ^ s32)) {
      IBP_CHECK(len == 0, "wrap frame with nonzero length");
      pending_skip_ += cfg_.slab_bytes - off;
      parsed_ += cfg_.slab_bytes - off;
    } else {
      IBP_CHECK(mark == (kHeadMagic ^ s32),
                "ring framing violated at seq " << seq_);
      IBP_CHECK(len <= cfg_.max_record, "oversized ring record");
      const std::uint64_t need = record_bytes(len);
      IBP_CHECK(off + need <= cfg_.slab_bytes, "record crosses slab end");
      // Tail-marker rule: the record is complete only when the tail
      // carries the head's sequence.
      const std::uint8_t* tail =
          env_->host_ptr<std::uint8_t>(slab_ + off + kHeaderBytes +
                                           align8(len),
                                       kTailBytes);
      IBP_CHECK(load_u32(tail) == (kHeadMagic ^ s32),
                "ring tail marker missing at seq " << seq_);
      pending_.push_back(Pending{seq_, need + pending_skip_});
      pending_skip_ = 0;
      parsed_ += need;
      ++records_;
      out.push_back(Record{slab_ + off + kHeaderBytes, len, seq_});
    }
    ++seq_;
    ++frames_parsed_;
  }
}

void RingReceiver::release(const Record& r) {
  IBP_CHECK(!pending_.empty() && pending_.front().seq == r.seq,
            "ring records must be released oldest-first");
  consumed_ += pending_.front().footprint;
  pending_.pop_front();
  // Teach the placement engine what lived in the ring: per-record slot
  // residency feedback under Role::RingSlot (adaptive learns hugepage
  // ring residency the same way it learns SGE shaping).
  placement::Feedback fb;
  fb.size = r.len;
  fb.backing = backing_;
  fb.role = placement::Role::RingSlot;
  env_->placement().feed(fb);
}

hca::SendWr RingReceiver::make_credit_wr() {
  IBP_CHECK(credit_connected(), "credit target not connected");
  *env_->host_ptr<std::uint64_t>(credit_src_) = consumed_;
  hca::SendWr wr;
  wr.opcode = hca::Opcode::RdmaWrite;
  wr.sges = {{credit_src_, 8, credit_src_mr_.lkey}};
  wr.remote_addr = credit_.word;
  wr.rkey = credit_.rkey;
  wr.inline_data =
      cfg_.inline_small && 8 <= env_->verbs().adapter().config().inline_max;
  credited_ = consumed_;
  ++credit_writes_;
  return wr;
}

// ---------------------------------------------------------------------------
// RingSender

RingSender::RingSender(core::RankEnv& env, const RingConfig& cfg)
    : env_(&env), cfg_(cfg) {
  check_config(cfg_);
  staging_ = env.alloc(cfg_.slab_bytes, placement::Role::RingSlab);
  staging_mr_ = env.verbs().reg_mr(staging_, cfg_.slab_bytes);
  word_ = env.alloc(8, placement::Role::RingSlot);
  word_mr_ = env.verbs().reg_mr(word_, 8);
  env.verbs().set_write_monitor(word_mr_, &mon_);
  *env.host_ptr<std::uint64_t>(word_) = 0;
}

RingSender::~RingSender() {
  env_->verbs().set_write_monitor(word_mr_, nullptr);
  env_->verbs().dereg_mr(word_mr_);
  env_->verbs().dereg_mr(staging_mr_);
  env_->dealloc(word_);
  env_->dealloc(staging_);
}

void RingSender::connect(const RingDescriptor& ring) {
  IBP_CHECK(ring.slab != 0 && ring.bytes == cfg_.slab_bytes,
            "ring geometry mismatch (peer slab " << ring.bytes << " B, ours "
                                                 << cfg_.slab_bytes << " B)");
  ring_ = ring;
}

bool RingSender::can_send(std::uint32_t payload_len) const {
  if (!connected() || payload_len > cfg_.max_record) return false;
  const std::uint64_t need = record_bytes(payload_len);
  const std::uint64_t contig = cfg_.slab_bytes - head_ % cfg_.slab_bytes;
  const std::uint64_t advance = contig < need ? contig + need : need;
  return cfg_.slab_bytes - (head_ - credit_seen_) >= advance;
}

std::vector<hca::SendWr> RingSender::prepare(const std::uint8_t* a,
                                             std::uint32_t alen,
                                             const std::uint8_t* b,
                                             std::uint32_t blen) {
  const std::uint32_t len = alen + blen;
  IBP_CHECK(can_send(len), "prepare() without can_send()");
  const std::uint32_t inline_max = env_->verbs().adapter().config().inline_max;
  const bool want_inline = cfg_.inline_small;
  std::vector<hca::SendWr> wrs;

  std::uint64_t off = head_ % cfg_.slab_bytes;
  const std::uint64_t need = record_bytes(len);
  if (cfg_.slab_bytes - off < need) {
    // Wrap frame: 8 bytes at the current offset; the rest of the slab is
    // dead space the receiver skips (and credits) on parse.
    std::uint8_t* w = env_->host_ptr<std::uint8_t>(staging_ + off, 8);
    store_u32(w, kWrapMagic ^ static_cast<std::uint32_t>(seq_));
    store_u32(w + 4, 0);
    hca::SendWr wrap;
    wrap.opcode = hca::Opcode::RdmaWrite;
    wrap.sges = {{staging_ + off, 8, staging_mr_.lkey}};
    wrap.remote_addr = ring_.slab + off;
    wrap.rkey = ring_.rkey;
    wrap.inline_data = want_inline && 8 <= inline_max;
    wrs.push_back(std::move(wrap));
    head_ += cfg_.slab_bytes - off;
    ++seq_;
    off = 0;
  }

  // Record frame: head marker, payload (a then b, zero-padded to 8),
  // tail marker carrying the same sequence.
  std::uint8_t* p = env_->host_ptr<std::uint8_t>(staging_ + off, need);
  const std::uint32_t s32 = static_cast<std::uint32_t>(seq_);
  store_u32(p, kHeadMagic ^ s32);
  store_u32(p + 4, len);
  if (alen != 0) std::memcpy(p + kHeaderBytes, a, alen);
  if (blen != 0) std::memcpy(p + kHeaderBytes + alen, b, blen);
  std::memset(p + kHeaderBytes + len, 0, align8(len) - len);
  store_u32(p + kHeaderBytes + align8(len), kHeadMagic ^ s32);
  store_u32(p + kHeaderBytes + align8(len) + 4, 0);
  // The CPU staging copy is the price of the zero-post receive side;
  // charge it as a stream over the framed record.
  env_->touch_stream(staging_ + off, need);

  hca::SendWr wr;
  wr.opcode = hca::Opcode::RdmaWrite;
  wr.sges = {{staging_ + off, static_cast<std::uint32_t>(need),
              staging_mr_.lkey}};
  wr.remote_addr = ring_.slab + off;
  wr.rkey = ring_.rkey;
  wr.inline_data = want_inline && need <= inline_max;
  wrs.push_back(std::move(wr));
  head_ += need;
  ++seq_;
  return wrs;
}

void RingSender::poll_credit(TimePs now) {
  if (mon_.take_visible(now).empty()) return;
  const std::uint64_t v = *env_->host_ptr<std::uint64_t>(word_);
  IBP_CHECK(v >= credit_seen_ && v <= head_,
            "credit counter moved outside [seen, head]");
  credit_seen_ = v;
}

}  // namespace ibp::ringchan
