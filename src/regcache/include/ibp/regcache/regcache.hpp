#pragma once

// Pin-down cache (lazy deregistration), after Tezuka et al. [9] and the
// MPICH2-CH3-IB registration pool the paper references.
//
// acquire() returns a registration covering the requested range:
//   * cache hit  — an existing MR already covers it; no cost,
//   * cache miss — registers the page-aligned hull of the range (charging
//     full registration time) and caches it.
//
// release() is a no-op while lazy mode is on — memory stays pinned, which
// is exactly the drawback the paper discusses (§1: "memory remains
// allocated to the application during their whole runtime. This can lead
// to less available physical memory"). `max_pinned_bytes` bounds that
// drawback: when set, the least-recently-used cached registrations are
// evicted (deregistered) to make room — the middle ground between the
// paper's two measured configurations.
//
// With lazy mode off, acquire registers and release immediately
// deregisters (the paper's Figure 5 "deactivated" configuration).
//
// invalidate() must be called when a cached range is freed/unmapped (the
// classic pin-down-cache correctness hazard).

#include <cstdint>
#include <list>
#include <map>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"
#include "ibp/placement/placement.hpp"
#include "ibp/verbs/verbs.hpp"

namespace ibp::regcache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t releases = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t pinned_bytes = 0;       // currently cached
  std::uint64_t pinned_bytes_peak = 0;
};

class RegCache {
 public:
  using RegStrategy = placement::RegStrategy;

  /// `max_pinned_bytes` == 0 means unlimited (the classic lazy cache).
  RegCache(verbs::Context& vctx, RegStrategy strategy,
           std::uint64_t max_pinned_bytes = 0)
      : vctx_(&vctx), strategy_(strategy), capacity_(max_pinned_bytes) {}

  /// Legacy two-state constructor: lazy pin-down cache vs the Figure 5
  /// "deactivated" configuration.
  RegCache(verbs::Context& vctx, bool lazy,
           std::uint64_t max_pinned_bytes = 0)
      : RegCache(vctx,
                 lazy ? RegStrategy::LazyCache : RegStrategy::Deactivated,
                 max_pinned_bytes) {}

  ~RegCache() {
    // Leave MRs registered; the owning simulation tears the world down
    // wholesale. flush() exists for tests that need clean accounting.
  }

  /// Registration covering [addr, addr+len). While lazy, the returned
  /// registration is reference-held until the matching release(): an
  /// in-flight transfer can never lose its MR to capacity eviction.
  verbs::Mr acquire(VirtAddr addr, std::uint64_t len) {
    IBP_CHECK(len > 0, "acquire of empty range");
    if (caching()) {
      auto it = cache_.upper_bound(addr);
      if (it != cache_.begin()) {
        --it;
        Entry& e = it->second;
        if (addr >= e.mr.addr && addr + len <= e.mr.addr + e.mr.length) {
          ++stats_.hits;
          ++e.refs;
          lru_.splice(lru_.begin(), lru_, e.lru_pos);
          return e.mr;
        }
      }
    }
    ++stats_.misses;
    // Register the page-aligned hull so nearby buffers in the same pages
    // hit the cache later.
    const mem::Mapping* m = vctx_->space().find(addr, len);
    IBP_CHECK(m != nullptr, "acquire over unmapped range");
    const std::uint64_t psz = m->page_size();
    const VirtAddr lo = std::max(m->va_base, align_down(addr, psz));
    const VirtAddr hi =
        std::min(m->va_base + m->length, align_up(addr + len, psz));

    if (caching() && capacity_ != 0) {
      // Evict idle least-recently-used entries until the hull fits.
      // Reference-held entries are skipped — they belong to transfers
      // still in flight; if everything is busy the bound is exceeded
      // until those transfers finish.
      while (stats_.pinned_bytes + (hi - lo) > capacity_) {
        VirtAddr victim = 0;
        bool found = false;
        for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
          if (cache_.at(*it).refs == 0) {
            victim = *it;
            found = true;
            break;
          }
        }
        if (!found) break;
        evict(victim);
      }
    }

    verbs::Mr mr = vctx_->reg_mr(lo, hi - lo);
    if (caching()) {
      auto [it2, inserted] = cache_.emplace(mr.addr, Entry{mr, {}, 1, {}});
      if (inserted) {
        lru_.push_front(mr.addr);
        it2->second.lru_pos = lru_.begin();
      } else {
        // A narrower registration already starts at this page-aligned
        // hull base (the covering check above missed because it does
        // not reach addr+len). Keep the wider MR as the entry's face;
        // the superseded one may still back in-flight transfers, so it
        // is retired — deregistered with the entry, not before.
        Entry& e = it2->second;
        ++e.refs;
        if (mr.length >= e.mr.length) {
          e.retired.push_back(e.mr);
          e.mr = mr;
        } else {
          e.retired.push_back(mr);
        }
        lru_.splice(lru_.begin(), lru_, e.lru_pos);
      }
      stats_.pinned_bytes += mr.length;
      stats_.pinned_bytes_peak =
          std::max(stats_.pinned_bytes_peak, stats_.pinned_bytes);
    }
    return mr;
  }

  /// Done with a registration obtained from acquire(). Lazy mode drops
  /// the in-flight reference (the registration stays cached); otherwise
  /// the region is deregistered immediately.
  void release(const verbs::Mr& mr) {
    ++stats_.releases;
    auto it = cache_.find(mr.addr);
    if (it == cache_.end()) {
      // Never cached (deactivated-mode registration) or already dropped
      // by invalidate/evict; deregister only in the former case.
      if (!caching()) vctx_->dereg_mr(mr);
      return;
    }
    Entry& e = it->second;
    if (e.refs > 0) --e.refs;
    if (!caching() && e.refs == 0) {
      // The strategy switched to Deactivated while this transfer was in
      // flight: retire the cached registration now that it is idle.
      evict(it->first);
    }
  }

  /// Drop any cached registrations intersecting [addr, addr+len) — must be
  /// called before the memory is freed or unmapped.
  void invalidate(VirtAddr addr, std::uint64_t len) {
    if (cache_.empty()) return;
    auto it = cache_.lower_bound(addr);
    if (it != cache_.begin()) --it;
    while (it != cache_.end() && it->second.mr.addr < addr + len) {
      const verbs::Mr& mr = it->second.mr;
      if (mr.addr + mr.length > addr) {
        stats_.pinned_bytes -= mr.length;
        ++stats_.invalidations;
        lru_.erase(it->second.lru_pos);
        drop_retired(it->second);
        vctx_->dereg_mr(mr);
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Deregister everything (test teardown / accounting).
  void flush() {
    for (auto& [a, e] : cache_) {
      drop_retired(e);
      vctx_->dereg_mr(e.mr);
    }
    stats_.pinned_bytes = 0;
    cache_.clear();
    lru_.clear();
  }

  /// Switch registration strategies at run time (driven by a placement
  /// plan). Moving to Deactivated retires every idle cached registration
  /// immediately; reference-held entries are retired as their transfers
  /// release them. The `max_pinned_bytes` bound keeps applying across
  /// switches.
  void set_strategy(RegStrategy strategy) {
    strategy_ = strategy;
    if (caching()) return;
    for (auto it = cache_.begin(); it != cache_.end();) {
      VirtAddr key = it->first;
      ++it;
      if (cache_.at(key).refs == 0) evict(key);
    }
  }

  RegStrategy strategy() const { return strategy_; }
  /// True while registrations outlive their transfer (any caching mode).
  bool lazy() const { return caching(); }
  std::uint64_t capacity() const { return capacity_; }
  const CacheStats& stats() const { return stats_; }
  std::size_t entries() const { return cache_.size(); }

 private:
  struct Entry {
    verbs::Mr mr;
    std::list<VirtAddr>::iterator lru_pos;
    std::uint32_t refs = 0;  // in-flight transfers using this MR
    // Same-hull registrations this entry superseded; they may back
    // transfers still in flight, so they deregister with the entry.
    std::vector<verbs::Mr> retired;
  };

  void drop_retired(Entry& e) {
    for (const verbs::Mr& r : e.retired) {
      stats_.pinned_bytes -= r.length;
      vctx_->dereg_mr(r);
    }
    e.retired.clear();
  }

  void evict(VirtAddr key) {
    auto it = cache_.find(key);
    IBP_CHECK(it != cache_.end());
    stats_.pinned_bytes -= it->second.mr.length;
    ++stats_.evictions;
    lru_.erase(it->second.lru_pos);
    drop_retired(it->second);
    vctx_->dereg_mr(it->second.mr);
    cache_.erase(it);
  }

  bool caching() const { return strategy_ != RegStrategy::Deactivated; }

  verbs::Context* vctx_;
  RegStrategy strategy_;
  std::uint64_t capacity_;
  CacheStats stats_;
  std::map<VirtAddr, Entry> cache_;
  std::list<VirtAddr> lru_;  // front = most recently used
};

}  // namespace ibp::regcache
