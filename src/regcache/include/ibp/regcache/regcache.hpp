#pragma once

// Pin-down cache (lazy deregistration), after Tezuka et al. [9] and the
// MPICH2-CH3-IB registration pool the paper references.
//
// acquire() returns a registration covering the requested range:
//   * cache hit  — an existing MR already covers it; no cost,
//   * cache miss — registers the page-aligned hull of the range (charging
//     full registration time) and caches it.
//
// release() is a no-op while lazy mode is on — memory stays pinned, which
// is exactly the drawback the paper discusses (§1: "memory remains
// allocated to the application during their whole runtime. This can lead
// to less available physical memory"). `max_pinned_bytes` bounds that
// drawback: when set, the least-recently-used cached registrations are
// evicted (deregistered) to make room — the middle ground between the
// paper's two measured configurations.
//
// With lazy mode off, acquire registers and release immediately
// deregisters (the paper's Figure 5 "deactivated" configuration).
//
// invalidate() must be called when a cached range is freed/unmapped (the
// classic pin-down-cache correctness hazard).
//
// Sharding: with `shards` > 1 the cache index is split into buckets keyed
// by the owning mapping's base address, so concurrent server threads
// (sim tracks) touching disjoint heaps walk disjoint index structures —
// the shared-state refactor that makes the multi-threaded host model
// honest. Entries never span mappings (the hull is clamped to one), so a
// lookup probes exactly one shard. One shard (the default) is the legacy
// single-index cache, bit-exact with earlier runs.
//
// Generation-based retirement: switching strategy to Deactivated dooms
// every currently cached registration — the idle ones retire immediately,
// reference-held ones retire at their release(), *even if the strategy
// has flipped back to a caching mode by then*. Each entry is stamped with
// the generation it was created in; the switch raises the retirement
// floor above every existing stamp.

#include <cstdint>
#include <list>
#include <map>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"
#include "ibp/placement/placement.hpp"
#include "ibp/verbs/verbs.hpp"

namespace ibp::regcache {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t releases = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t evictions = 0;
  std::uint64_t retirements = 0;  // doomed entries retired at release()
  std::uint64_t pinned_bytes = 0;       // currently cached
  std::uint64_t pinned_bytes_peak = 0;
};

class RegCache {
 public:
  using RegStrategy = placement::RegStrategy;

  /// `max_pinned_bytes` == 0 means unlimited (the classic lazy cache).
  /// `shards` splits the cache index (see file comment); 1 = legacy.
  RegCache(verbs::Context& vctx, RegStrategy strategy,
           std::uint64_t max_pinned_bytes = 0, std::uint32_t shards = 1)
      : vctx_(&vctx), strategy_(strategy), capacity_(max_pinned_bytes) {
    IBP_CHECK(shards > 0, "regcache needs at least one shard");
    shards_.resize(shards);
  }

  /// Legacy two-state constructor: lazy pin-down cache vs the Figure 5
  /// "deactivated" configuration.
  RegCache(verbs::Context& vctx, bool lazy,
           std::uint64_t max_pinned_bytes = 0)
      : RegCache(vctx,
                 lazy ? RegStrategy::LazyCache : RegStrategy::Deactivated,
                 max_pinned_bytes) {}

  ~RegCache() {
    // Leave MRs registered; the owning simulation tears the world down
    // wholesale. flush() exists for tests that need clean accounting.
  }

  /// Registration covering [addr, addr+len). While lazy, the returned
  /// registration is reference-held until the matching release(): an
  /// in-flight transfer can never lose its MR to capacity eviction.
  verbs::Mr acquire(VirtAddr addr, std::uint64_t len) {
    IBP_CHECK(len > 0, "acquire of empty range");
    const mem::Mapping* m = vctx_->space().find(addr, len);
    IBP_CHECK(m != nullptr, "acquire over unmapped range");
    Shard& sh = shard_for(m->va_base);
    if (caching()) {
      auto it = sh.cache.upper_bound(addr);
      if (it != sh.cache.begin()) {
        --it;
        Entry& e = it->second;
        if (addr >= e.mr.addr && addr + len <= e.mr.addr + e.mr.length &&
            e.gen >= retire_floor_) {
          ++stats_.hits;
          ++e.refs;
          e.use = ++use_clock_;
          sh.lru.splice(sh.lru.begin(), sh.lru, e.lru_pos);
          return e.mr;
        }
      }
    }
    ++stats_.misses;
    // Register the page-aligned hull so nearby buffers in the same pages
    // hit the cache later.
    const std::uint64_t psz = m->page_size();
    const VirtAddr lo = std::max(m->va_base, align_down(addr, psz));
    const VirtAddr hi =
        std::min(m->va_base + m->length, align_up(addr + len, psz));

    if (caching() && capacity_ != 0) {
      // Evict idle least-recently-used entries until the hull fits.
      // Reference-held entries are skipped — they belong to transfers
      // still in flight; if everything is busy the bound is exceeded
      // until those transfers finish.
      while (stats_.pinned_bytes + (hi - lo) > capacity_) {
        if (!evict_lru_idle()) break;
      }
    }

    verbs::Mr mr = vctx_->reg_mr(lo, hi - lo);
    if (caching()) {
      auto [it2, inserted] =
          sh.cache.emplace(mr.addr, Entry{mr, {}, 1, gen_, 0, {}});
      Entry& e = it2->second;
      if (inserted) {
        sh.lru.push_front(mr.addr);
        e.lru_pos = sh.lru.begin();
      } else {
        // A narrower registration already starts at this page-aligned
        // hull base (the covering check above missed because it does
        // not reach addr+len). Keep the wider MR as the entry's face;
        // the superseded one may still back in-flight transfers, so it
        // is retired — deregistered with the entry, not before.
        ++e.refs;
        if (mr.length >= e.mr.length) {
          e.retired.push_back(e.mr);
          e.mr = mr;
        } else {
          e.retired.push_back(mr);
        }
        sh.lru.splice(sh.lru.begin(), sh.lru, e.lru_pos);
      }
      e.use = ++use_clock_;
      stats_.pinned_bytes += mr.length;
      stats_.pinned_bytes_peak =
          std::max(stats_.pinned_bytes_peak, stats_.pinned_bytes);
    }
    return mr;
  }

  /// Done with a registration obtained from acquire(). Lazy mode drops
  /// the in-flight reference (the registration stays cached); otherwise —
  /// or when the entry was doomed by a Deactivated switch — the region is
  /// deregistered once idle.
  void release(const verbs::Mr& mr) {
    ++stats_.releases;
    auto [sh, it] = locate(mr.addr);
    if (sh == nullptr) {
      // Never cached (deactivated-mode registration) or already dropped
      // by invalidate/evict; deregister only in the former case.
      if (!caching()) vctx_->dereg_mr(mr);
      return;
    }
    Entry& e = it->second;
    if (e.refs > 0) --e.refs;
    if (e.refs != 0) return;
    if (!caching()) {
      // The strategy switched to Deactivated while this transfer was in
      // flight: retire the cached registration now that it is idle.
      evict(*sh, it);
    } else if (e.gen < retire_floor_) {
      // Doomed by an earlier Deactivated switch; retire even though the
      // strategy has since flipped back to caching.
      ++stats_.retirements;
      evict(*sh, it);
    }
  }

  /// Drop any cached registrations intersecting [addr, addr+len) — must be
  /// called before the memory is freed or unmapped.
  void invalidate(VirtAddr addr, std::uint64_t len) {
    for (Shard& sh : shards_) {
      if (sh.cache.empty()) continue;
      auto it = sh.cache.lower_bound(addr);
      if (it != sh.cache.begin()) --it;
      while (it != sh.cache.end() && it->second.mr.addr < addr + len) {
        const verbs::Mr& mr = it->second.mr;
        if (mr.addr + mr.length > addr) {
          stats_.pinned_bytes -= mr.length;
          ++stats_.invalidations;
          sh.lru.erase(it->second.lru_pos);
          drop_retired(it->second);
          vctx_->dereg_mr(mr);
          it = sh.cache.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  /// Deregister everything (test teardown / accounting).
  void flush() {
    for (Shard& sh : shards_) {
      for (auto& [a, e] : sh.cache) {
        drop_retired(e);
        vctx_->dereg_mr(e.mr);
      }
      sh.cache.clear();
      sh.lru.clear();
    }
    stats_.pinned_bytes = 0;
  }

  /// Switch registration strategies at run time (driven by a placement
  /// plan). Moving to Deactivated dooms the current generation: idle
  /// cached registrations retire immediately, reference-held entries
  /// retire as their transfers release them — even if the strategy flips
  /// back to a caching mode first. The `max_pinned_bytes` bound keeps
  /// applying across switches.
  void set_strategy(RegStrategy strategy) {
    strategy_ = strategy;
    if (caching()) return;
    retire_floor_ = ++gen_;
    for (Shard& sh : shards_) {
      for (auto it = sh.cache.begin(); it != sh.cache.end();) {
        auto cur = it++;
        if (cur->second.refs == 0) evict(sh, cur);
      }
    }
  }

  RegStrategy strategy() const { return strategy_; }
  /// True while registrations outlive their transfer (any caching mode).
  bool lazy() const { return caching(); }
  std::uint64_t capacity() const { return capacity_; }
  std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  const CacheStats& stats() const { return stats_; }
  std::size_t entries() const {
    std::size_t n = 0;
    for (const Shard& sh : shards_) n += sh.cache.size();
    return n;
  }

 private:
  struct Entry {
    verbs::Mr mr;
    std::list<VirtAddr>::iterator lru_pos;
    std::uint32_t refs = 0;  // in-flight transfers using this MR
    std::uint64_t gen = 0;   // creation generation (retirement floor)
    std::uint64_t use = 0;   // global recency stamp (cross-shard LRU)
    // Same-hull registrations this entry superseded; they may back
    // transfers still in flight, so they deregister with the entry.
    std::vector<verbs::Mr> retired;
  };

  struct Shard {
    std::map<VirtAddr, Entry> cache;
    std::list<VirtAddr> lru;  // front = most recently used
  };

  Shard& shard_for(VirtAddr mapping_base) {
    // Mix the mapping base so adjacent mappings spread over shards.
    const std::uint64_t h = (mapping_base >> 12) * 0x9E3779B97F4A7C15ull;
    return shards_[h % shards_.size()];
  }

  /// Shard and iterator holding `key`, or {nullptr, {}} when uncached.
  std::pair<Shard*, std::map<VirtAddr, Entry>::iterator> locate(
      VirtAddr key) {
    for (Shard& sh : shards_) {
      auto it = sh.cache.find(key);
      if (it != sh.cache.end()) return {&sh, it};
    }
    return {nullptr, {}};
  }

  void drop_retired(Entry& e) {
    for (const verbs::Mr& r : e.retired) {
      stats_.pinned_bytes -= r.length;
      vctx_->dereg_mr(r);
    }
    e.retired.clear();
  }

  void evict(Shard& sh, std::map<VirtAddr, Entry>::iterator it) {
    stats_.pinned_bytes -= it->second.mr.length;
    ++stats_.evictions;
    sh.lru.erase(it->second.lru_pos);
    drop_retired(it->second);
    vctx_->dereg_mr(it->second.mr);
    sh.cache.erase(it);
  }

  /// Evict the globally least-recently-used idle entry; false when every
  /// cached entry is reference-held.
  bool evict_lru_idle() {
    Shard* best_sh = nullptr;
    VirtAddr best_key = 0;
    std::uint64_t best_use = ~std::uint64_t{0};
    for (Shard& sh : shards_) {
      // The LRU list is recency-ordered, so the rearmost idle entry is
      // this shard's candidate.
      for (auto it = sh.lru.rbegin(); it != sh.lru.rend(); ++it) {
        const Entry& e = sh.cache.at(*it);
        if (e.refs != 0) continue;
        if (e.use < best_use) {
          best_use = e.use;
          best_sh = &sh;
          best_key = *it;
        }
        break;
      }
    }
    if (best_sh == nullptr) return false;
    evict(*best_sh, best_sh->cache.find(best_key));
    return true;
  }

  bool caching() const { return strategy_ != RegStrategy::Deactivated; }

  verbs::Context* vctx_;
  RegStrategy strategy_;
  std::uint64_t capacity_;
  CacheStats stats_;
  std::vector<Shard> shards_;
  std::uint64_t gen_ = 0;
  std::uint64_t retire_floor_ = 0;  // entries with gen < floor are doomed
  std::uint64_t use_clock_ = 0;
};

}  // namespace ibp::regcache
