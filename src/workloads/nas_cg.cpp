// CG — conjugate gradient on a sparse symmetric positive-definite stencil
// matrix, 1D row decomposition. Per iteration: allgather of the search
// direction, a sparse matrix-vector product with strided/irregular gathers,
// two dot-product allreduces and three vector updates. Verified by the
// monotone decrease of the residual norm on an SPD system.

#include <cmath>
#include <vector>

#include "ibp/workloads/nas.hpp"

namespace ibp::workloads {
namespace {

// Symmetric stride stencil: row i couples with i +- each stride (mod n).
// Diagonal dominance (4.0 > 8 * 0.25) keeps the matrix SPD.
constexpr std::uint64_t kStrides[4] = {1, 2467, 17389, 99371};
constexpr double kOffDiag = -0.25;
constexpr int kIters = 8;

}  // namespace

NasResult run_cg(core::Cluster& cluster, NasScale s) {
  return detail::run_kernel(
      cluster, "cg", s.scale,
      [&s](core::RankEnv& env, mpi::Comm& comm, int scale,
         detail::Timer& timer) -> detail::KernelOutcome {
        const int nranks = env.nranks();
        const std::uint64_t n =
            (std::uint64_t{1} << 17) * static_cast<std::uint64_t>(scale);
        const std::uint64_t rows = n / static_cast<std::uint64_t>(nranks);
        const std::uint64_t lo = rows * static_cast<std::uint64_t>(env.rank());
        constexpr std::uint64_t kNnzPerRow = 9;

        // Arrays (allocated via the possibly-preloaded hugepage library).
        const VirtAddr vals_va = env.alloc(rows * kNnzPerRow * 8);
        const VirtAddr x_va = env.alloc(rows * 8);
        const VirtAddr r_va = env.alloc(rows * 8);
        const VirtAddr p_va = env.alloc(rows * 8);
        const VirtAddr q_va = env.alloc(rows * 8);
        const VirtAddr pfull_va = env.alloc(n * 8);
        const VirtAddr red_va = env.alloc(64);

        double* vals = env.host_ptr<double>(vals_va, rows * kNnzPerRow);
        double* x = env.host_ptr<double>(x_va, rows);
        double* r = env.host_ptr<double>(r_va, rows);
        double* p = env.host_ptr<double>(p_va, rows);
        double* q = env.host_ptr<double>(q_va, rows);
        double* pfull = env.host_ptr<double>(pfull_va, n);

        // A: diag with deterministic jitter, fixed off-diagonals.
        for (std::uint64_t i = 0; i < rows; ++i) {
          vals[i * kNnzPerRow] =
              4.0 + 0.01 * static_cast<double>((lo + i) % 7);
          for (std::uint64_t k = 1; k < kNnzPerRow; ++k)
            vals[i * kNnzPerRow + k] = kOffDiag;
        }
        env.touch_stream(vals_va, rows * kNnzPerRow * 8);

        // x0 = 0, b = 1 => r = p = b.
        for (std::uint64_t i = 0; i < rows; ++i) {
          x[i] = 0.0;
          r[i] = 1.0;
          p[i] = 1.0;
        }
        env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
            {x_va, rows * 8}, {r_va, rows * 8}, {p_va, rows * 8}});

        auto dot = [&](const double* a, const double* b) {
          double acc = 0;
          for (std::uint64_t i = 0; i < rows; ++i) acc += a[i] * b[i];
          env.compute(2 * rows);
          double* slot = env.host_ptr<double>(red_va);
          *slot = acc;
          comm.allreduce<double>(red_va, red_va, 1, mpi::ReduceOp::Sum);
          return *env.host_ptr<double>(red_va);
        };

        timer.start();
        double rho = dot(r, r);
        const double rho0 = rho;

        for (int iter = 0; iter < kIters; ++iter) {
          // Share the search direction.
          comm.allgather(p_va, rows * 8, pfull_va);

          // q = A p (strided gathers through the full vector).
          for (std::uint64_t i = 0; i < rows; ++i) {
            const std::uint64_t gi = lo + i;
            double acc = vals[i * kNnzPerRow] * pfull[gi];
            std::uint64_t k = 1;
            for (std::uint64_t stv : kStrides) {
              acc += vals[i * kNnzPerRow + k++] * pfull[(gi + stv) % n];
              acc += vals[i * kNnzPerRow + k++] * pfull[(gi + n - stv) % n];
            }
            q[i] = acc;
          }
          env.compute(2 * rows * kNnzPerRow);
          // Matrix stream + result stream + 8 stride streams through the
          // gathered vector: the fused loop's TLB working set.
          {
            std::vector<cpu::MemorySystem::StreamRef> refs{
                {vals_va, rows * kNnzPerRow * 8}, {q_va, rows * 8}};
            auto add_stride_ref = [&](std::uint64_t start_idx) {
              const VirtAddr va = pfull_va + (start_idx % n) * 8;
              const std::uint64_t room = pfull_va + n * 8 - va;
              refs.push_back({va, std::min(rows * 8, room)});
            };
            for (std::uint64_t stv : kStrides) {
              add_stride_ref(lo + stv);
              add_stride_ref(lo + n - stv);
            }
            env.touch_interleaved(refs);
            // Cache-unfriendly part of the gather (far columns).
            env.touch_random(pfull_va, n * 8, rows / 2);
          }

          const double pq = dot(p, q);
          const double alpha = rho / pq;
          for (std::uint64_t i = 0; i < rows; ++i) {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
          }
          env.compute(4 * rows);
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {x_va, rows * 8},
              {r_va, rows * 8},
              {p_va, rows * 8},
              {q_va, rows * 8}});

          const double rho_new = dot(r, r);
          const double beta = rho_new / rho;
          rho = rho_new;
          for (std::uint64_t i = 0; i < rows; ++i) p[i] = r[i] + beta * p[i];
          env.compute(2 * rows);
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {p_va, rows * 8}, {r_va, rows * 8}});
          if (env.rank() == 0 && s.iter_hook) s.iter_hook(iter);
        }

        detail::KernelOutcome out;
        out.verified = rho < rho0 && std::isfinite(rho) && rho > 0.0;
        out.fom = std::sqrt(rho);
        return out;
      });
}

}  // namespace ibp::workloads
