// LU — SSOR-style wavefront sweeps over a 3D grid with a 2D (x,y) pencil
// decomposition, like NAS LU: each k-plane of the lower sweep needs the
// west and north boundary lines of the same plane, producing long chains
// of small pipelined messages (hundreds of bytes — squarely in the eager
// band, which is why LU stresses per-message overheads rather than
// bandwidth). The upper sweep runs the opposite diagonal. Verified by the
// monotone decrease of the residual of a diagonally dominant system.
//
// LU is the paper's TLB exception: its fused loops touch few operand
// arrays, so even the 8-entry 2 MB TLB holds the working set and hugepage
// runs show *fewer* misses (§5.2).

#include <cmath>
#include <vector>

#include "ibp/workloads/nas.hpp"

namespace ibp::workloads {
namespace {

constexpr int kItersBase = 20;
constexpr double kOmega = 0.8;  // under-relaxed: |1-w| + 3w/4 < 1 (contraction)

}  // namespace

NasResult run_lu(core::Cluster& cluster, NasScale s) {
  return detail::run_kernel(
      cluster, "lu", s.scale,
      [&s](core::RankEnv& env, mpi::Comm& comm, int scale,
         detail::Timer& timer) -> detail::KernelOutcome {
        const int nranks = env.nranks();
        // Process grid: px * py == nranks, px >= py.
        int px = 1, py = 1;
        for (int d = 1; d * d <= nranks; ++d)
          if (nranks % d == 0) {
            py = d;
            px = nranks / d;
          }
        const int cx = env.rank() % px;  // column in the process grid
        const int cy = env.rank() / px;

        // Thin planes keep the wavefront latency-bound (per-plane compute
        // below one message latency), as in strongly-scaled LU runs.
        const std::uint64_t gx = 32, gy = 32;
        const std::uint64_t gz = 32 * static_cast<std::uint64_t>(scale);
        const std::uint64_t nx = gx / static_cast<std::uint64_t>(px);
        const std::uint64_t ny = gy / static_cast<std::uint64_t>(py);
        const std::uint64_t plane = nx * ny;

        const int west = cx > 0 ? env.rank() - 1 : -1;
        const int east = cx + 1 < px ? env.rank() + 1 : -1;
        const int north = cy > 0 ? env.rank() - px : -1;
        const int south = cy + 1 < py ? env.rank() + px : -1;

        // Field u and residual r, one value per point (the 5-vector of
        // real LU is folded into the flop charge).
        const VirtAddr u_va = env.alloc(plane * gz * 8);
        const VirtAddr r_va = env.alloc(plane * gz * 8);
        const VirtAddr wbuf_va = env.alloc(std::max<std::uint64_t>(ny * 8, 64));
        const VirtAddr nbuf_va = env.alloc(std::max<std::uint64_t>(nx * 8, 64));
        const VirtAddr red_va = env.alloc(64);

        double* u = env.host_ptr<double>(u_va, plane * gz);
        double* r = env.host_ptr<double>(r_va, plane * gz);
        double* wbuf = env.host_ptr<double>(wbuf_va, ny);
        double* nbuf = env.host_ptr<double>(nbuf_va, nx);

        auto idx = [=](std::uint64_t i, std::uint64_t j, std::uint64_t k) {
          return (k * ny + j) * nx + i;
        };

        // Initial guess 0, RHS shaped by global coordinates.
        for (std::uint64_t k = 0; k < gz; ++k)
          for (std::uint64_t j = 0; j < ny; ++j)
            for (std::uint64_t i = 0; i < nx; ++i) {
              u[idx(i, j, k)] = 0.0;
              const std::uint64_t gxi = cx * nx + i, gyj = cy * ny + j;
              r[idx(i, j, k)] =
                  1.0 + 0.001 * static_cast<double>((gxi + 3 * gyj + 7 * k) %
                                                    13);
            }
        env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
            {u_va, plane * gz * 8}, {r_va, plane * gz * 8}});

        // Both sweeps are contractions (|1-w| + 3w/4 < 1), so the iterate
        // increment ||u_it - u_{it-1}|| decreases geometrically; that is
        // the verified quantity.
        timer.start();
        const int iters = kItersBase;
        double first_delta = 0.0, last_delta = 0.0;

        for (int it = 0; it < iters; ++it) {
          double delta2 = 0.0;
          // Lower sweep: dependencies from west (i-1) and north (j-1),
          // pipelined plane by plane.
          for (std::uint64_t k = 0; k < gz; ++k) {
            if (west >= 0) comm.recv(wbuf_va, ny * 8, west, 1000 + it);
            if (north >= 0) comm.recv(nbuf_va, nx * 8, north, 2000 + it);
            for (std::uint64_t j = 0; j < ny; ++j)
              for (std::uint64_t i = 0; i < nx; ++i) {
                const double uw =
                    i > 0 ? u[idx(i - 1, j, k)] : (west >= 0 ? wbuf[j] : 0.0);
                const double un =
                    j > 0 ? u[idx(i, j - 1, k)] : (north >= 0 ? nbuf[i] : 0.0);
                const double ub = k > 0 ? u[idx(i, j, k - 1)] : 0.0;
                const double prev = u[idx(i, j, k)];
                u[idx(i, j, k)] =
                    (1.0 - kOmega) * prev +
                    kOmega * 0.25 * (r[idx(i, j, k)] + uw + un + ub);
                const double d = u[idx(i, j, k)] - prev;
                delta2 += d * d;
              }
            env.compute(9 * plane);
            env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
                {u_va + k * plane * 8, plane * 8},
                {r_va + k * plane * 8, plane * 8}});
            if (east >= 0) {
              for (std::uint64_t j = 0; j < ny; ++j)
                wbuf[j] = u[idx(nx - 1, j, k)];
              comm.send(wbuf_va, ny * 8, east, 1000 + it);
            }
            if (south >= 0) {
              for (std::uint64_t i = 0; i < nx; ++i)
                nbuf[i] = u[idx(i, ny - 1, k)];
              comm.send(nbuf_va, nx * 8, south, 2000 + it);
            }
          }

          // Upper sweep: opposite diagonal (east/south feed west/north).
          for (std::uint64_t kk = gz; kk-- > 0;) {
            if (east >= 0) comm.recv(wbuf_va, ny * 8, east, 3000 + it);
            if (south >= 0) comm.recv(nbuf_va, nx * 8, south, 4000 + it);
            for (std::uint64_t j = ny; j-- > 0;)
              for (std::uint64_t i = nx; i-- > 0;) {
                const double ue = i + 1 < nx
                                      ? u[idx(i + 1, j, kk)]
                                      : (east >= 0 ? wbuf[j] : 0.0);
                const double us = j + 1 < ny
                                      ? u[idx(i, j + 1, kk)]
                                      : (south >= 0 ? nbuf[i] : 0.0);
                const double ut = kk + 1 < gz ? u[idx(i, j, kk + 1)] : 0.0;
                const double prev = u[idx(i, j, kk)];
                u[idx(i, j, kk)] =
                    (1.0 - kOmega) * prev +
                    kOmega * 0.25 * (r[idx(i, j, kk)] + ue + us + ut);
                const double d = u[idx(i, j, kk)] - prev;
                delta2 += d * d;
              }
            env.compute(9 * plane);
            env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
                {u_va + kk * plane * 8, plane * 8},
                {r_va + kk * plane * 8, plane * 8}});
            if (west >= 0) {
              for (std::uint64_t j = 0; j < ny; ++j)
                wbuf[j] = u[idx(0, j, kk)];
              comm.send(wbuf_va, ny * 8, west, 3000 + it);
            }
            if (north >= 0) {
              for (std::uint64_t i = 0; i < nx; ++i)
                nbuf[i] = u[idx(i, 0, kk)];
              comm.send(nbuf_va, nx * 8, north, 4000 + it);
            }
          }

          *env.host_ptr<double>(red_va) = delta2;
          comm.allreduce<double>(red_va, red_va, 1, mpi::ReduceOp::Sum);
          const double delta = std::sqrt(*env.host_ptr<double>(red_va));
          if (it == 0) first_delta = delta;
          last_delta = delta;
          if (env.rank() == 0 && s.iter_hook) s.iter_hook(it);
        }

        detail::KernelOutcome out;
        out.verified =
            std::isfinite(last_delta) && last_delta < 0.5 * first_delta;
        out.fom = last_delta;
        return out;
      });
}

}  // namespace ibp::workloads
