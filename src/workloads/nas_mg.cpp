// MG — V-cycle multigrid on a 3D grid, 1D-decomposed along z. Each level
// performs Jacobi-style relaxations whose halo exchanges shrink with the
// grid (finest level ≈ tens of KB — rendezvous/RDMA; coarse levels — a
// few KB, eager), plus restriction/prolongation transfers and an
// allreduce per cycle for the residual norm. The stencil loop touches
// three z-planes of the field plus the RHS and the output per point —
// many concurrent streams, the hugepage-TLB pressure pattern of §5.2.
// Verified by the decrease of the residual norm across V-cycles.

#include <cmath>
#include <vector>

#include "ibp/workloads/nas.hpp"

namespace ibp::workloads {
namespace {

constexpr int kLevels = 4;
constexpr int kCycles = 4;
constexpr int kPreSmooth = 2;
constexpr int kPostSmooth = 1;

struct Level {
  std::uint64_t nx = 0, ny = 0, nz = 0;  // local extents (nz = global/ranks)
  VirtAddr u = 0, r = 0, tmp = 0;
  VirtAddr halo_lo = 0, halo_hi = 0;  // one plane each
  std::uint64_t plane_bytes() const { return nx * ny * 8; }
  std::uint64_t points() const { return nx * ny * nz; }
};

}  // namespace

NasResult run_mg(core::Cluster& cluster, NasScale s) {
  return detail::run_kernel(
      cluster, "mg", s.scale,
      [&s](core::RankEnv& env, mpi::Comm& comm, int scale,
         detail::Timer& timer) -> detail::KernelOutcome {
        const int nranks = env.nranks();
        const int me = env.rank();
        const int up = me + 1 < nranks ? me + 1 : -1;
        const int dn = me > 0 ? me - 1 : -1;

        // Finest grid: 64 x 64 x (8*scale per rank).
        std::vector<Level> lv(kLevels);
        for (int l = 0; l < kLevels; ++l) {
          Level& L = lv[l];
          L.nx = 64ull >> l;
          L.ny = 64ull >> l;
          const std::uint64_t gz =
              (64ull * static_cast<std::uint64_t>(scale)) >> l;
          L.nz = std::max<std::uint64_t>(
              gz / static_cast<std::uint64_t>(nranks), 2);
          L.u = env.alloc(L.points() * 8);
          L.r = env.alloc(L.points() * 8);
          L.tmp = env.alloc(L.points() * 8);
          L.halo_lo = env.alloc(std::max<std::uint64_t>(L.plane_bytes(), 64));
          L.halo_hi = env.alloc(std::max<std::uint64_t>(L.plane_bytes(), 64));
        }
        const VirtAddr red_va = env.alloc(64);

        auto at = [](const Level& L, std::uint64_t i, std::uint64_t j,
                     std::uint64_t k) { return (k * L.ny + j) * L.nx + i; };

        // RHS on the finest level: deterministic point sources.
        {
          Level& L = lv[0];
          double* r = env.host_ptr<double>(L.r, L.points());
          double* u = env.host_ptr<double>(L.u, L.points());
          for (std::uint64_t n = 0; n < L.points(); ++n) {
            u[n] = 0.0;
            r[n] = ((n * 2654435761ull + static_cast<std::uint64_t>(me)) %
                    97) == 0
                       ? 1.0
                       : 0.0;
          }
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {L.u, L.points() * 8}, {L.r, L.points() * 8}});
        }

        // Exchange z halos of `field` at level L into halo_lo / halo_hi.
        auto exchange_halo = [&](Level& L, VirtAddr field, int tag) {
          double* f = env.host_ptr<double>(field, L.points());
          double* hlo = env.host_ptr<double>(L.halo_lo, L.nx * L.ny);
          double* hhi = env.host_ptr<double>(L.halo_hi, L.nx * L.ny);
          // Boundary-plane copies into the send staging (reuses tmp).
          double* stage = env.host_ptr<double>(L.tmp, L.points());
          mpi::Req reqs[4];
          int nreq = 0;
          if (dn >= 0) reqs[nreq++] = comm.irecv(L.halo_lo, L.plane_bytes(), dn, tag);
          if (up >= 0) reqs[nreq++] = comm.irecv(L.halo_hi, L.plane_bytes(), up, tag);
          if (up >= 0) {
            for (std::uint64_t n = 0; n < L.nx * L.ny; ++n)
              stage[n] = f[at(L, 0, 0, L.nz - 1) + n];
            reqs[nreq++] = comm.isend(L.tmp, L.plane_bytes(), up, tag);
          }
          if (dn >= 0) {
            for (std::uint64_t n = 0; n < L.nx * L.ny; ++n)
              stage[L.nx * L.ny + n] = f[n];
            reqs[nreq++] = comm.isend(L.tmp + L.plane_bytes(),
                                      L.plane_bytes(), dn, tag);
          }
          for (int q = 0; q < nreq; ++q) comm.wait(reqs[q]);
          if (dn < 0)
            for (std::uint64_t n = 0; n < L.nx * L.ny; ++n) hlo[n] = 0.0;
          if (up < 0)
            for (std::uint64_t n = 0; n < L.nx * L.ny; ++n) hhi[n] = 0.0;
          env.touch_stream(L.halo_lo, L.plane_bytes());
          env.touch_stream(L.halo_hi, L.plane_bytes());
        };

        // Damped-Jacobi smoothing of 4u - (6 neighbours)/2 = r.
        auto smooth = [&](Level& L, int sweeps, int tag) {
          for (int sw = 0; sw < sweeps; ++sw) {
            exchange_halo(L, L.u, tag);
            double* u = env.host_ptr<double>(L.u, L.points());
            double* r = env.host_ptr<double>(L.r, L.points());
            double* t = env.host_ptr<double>(L.tmp, L.points());
            double* hlo = env.host_ptr<double>(L.halo_lo, L.nx * L.ny);
            double* hhi = env.host_ptr<double>(L.halo_hi, L.nx * L.ny);
            for (std::uint64_t k = 0; k < L.nz; ++k)
              for (std::uint64_t j = 0; j < L.ny; ++j)
                for (std::uint64_t i = 0; i < L.nx; ++i) {
                  const double uw = i ? u[at(L, i - 1, j, k)] : 0.0;
                  const double ue = i + 1 < L.nx ? u[at(L, i + 1, j, k)] : 0.0;
                  const double un = j ? u[at(L, i, j - 1, k)] : 0.0;
                  const double us = j + 1 < L.ny ? u[at(L, i, j + 1, k)] : 0.0;
                  const double ub =
                      k ? u[at(L, i, j, k - 1)] : hlo[j * L.nx + i];
                  const double ut = k + 1 < L.nz ? u[at(L, i, j, k + 1)]
                                                 : hhi[j * L.nx + i];
                  const double nb = 0.5 * (uw + ue + un + us + ub + ut);
                  t[at(L, i, j, k)] =
                      0.4 * u[at(L, i, j, k)] + 0.6 * 0.25 * (r[at(L, i, j, k)] + nb);
                }
            std::swap(L.u, L.tmp);
            env.compute(12 * L.points());
            // 3 z-plane input streams + rhs + output: 5+ concurrent
            // streams through hugepage-backed arrays.
            env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
                {L.u, L.points() * 8},
                {L.r, L.points() * 8},
                {L.tmp, L.points() * 8}});
          }
        };

        auto residual_norm = [&](Level& L, int tag) {
          exchange_halo(L, L.u, tag);
          double* u = env.host_ptr<double>(L.u, L.points());
          double* r = env.host_ptr<double>(L.r, L.points());
          double* hlo = env.host_ptr<double>(L.halo_lo, L.nx * L.ny);
          double* hhi = env.host_ptr<double>(L.halo_hi, L.nx * L.ny);
          double acc = 0;
          for (std::uint64_t k = 0; k < L.nz; ++k)
            for (std::uint64_t j = 0; j < L.ny; ++j)
              for (std::uint64_t i = 0; i < L.nx; ++i) {
                const double uw = i ? u[at(L, i - 1, j, k)] : 0.0;
                const double ue = i + 1 < L.nx ? u[at(L, i + 1, j, k)] : 0.0;
                const double un = j ? u[at(L, i, j - 1, k)] : 0.0;
                const double us = j + 1 < L.ny ? u[at(L, i, j + 1, k)] : 0.0;
                const double ub = k ? u[at(L, i, j, k - 1)] : hlo[j * L.nx + i];
                const double ut = k + 1 < L.nz ? u[at(L, i, j, k + 1)]
                                               : hhi[j * L.nx + i];
                const double res = r[at(L, i, j, k)] - 4.0 * u[at(L, i, j, k)] +
                                   0.5 * (uw + ue + un + us + ub + ut);
                acc += res * res;
              }
          env.compute(12 * L.points());
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {L.u, L.points() * 8}, {L.r, L.points() * 8}});
          *env.host_ptr<double>(red_va) = acc;
          comm.allreduce<double>(red_va, red_va, 1, mpi::ReduceOp::Sum);
          return std::sqrt(*env.host_ptr<double>(red_va));
        };

        // Restrict the fine residual to the coarse RHS (injection) and
        // prolong the coarse correction back (piecewise-constant).
        auto restrict_to = [&](Level& F, Level& C, int tag) {
          residual_norm(F, tag);  // refresh halos; cheap revisit
          double* uf = env.host_ptr<double>(F.u, F.points());
          double* rf = env.host_ptr<double>(F.r, F.points());
          double* rc = env.host_ptr<double>(C.r, C.points());
          double* uc = env.host_ptr<double>(C.u, C.points());
          for (std::uint64_t k = 0; k < C.nz; ++k)
            for (std::uint64_t j = 0; j < C.ny; ++j)
              for (std::uint64_t i = 0; i < C.nx; ++i) {
                const std::uint64_t fi = std::min(2 * i, F.nx - 1);
                const std::uint64_t fj = std::min(2 * j, F.ny - 1);
                const std::uint64_t fk = std::min(2 * k, F.nz - 1);
                rc[at(C, i, j, k)] = rf[at(F, fi, fj, fk)] -
                                     4.0 * uf[at(F, fi, fj, fk)];
                uc[at(C, i, j, k)] = 0.0;
              }
          env.compute(4 * C.points());
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {F.r, F.points() * 8}, {C.r, C.points() * 8},
              {C.u, C.points() * 8}});
        };

        auto prolong_from = [&](Level& F, Level& C) {
          double* uf = env.host_ptr<double>(F.u, F.points());
          double* uc = env.host_ptr<double>(C.u, C.points());
          for (std::uint64_t k = 0; k < F.nz; ++k)
            for (std::uint64_t j = 0; j < F.ny; ++j)
              for (std::uint64_t i = 0; i < F.nx; ++i) {
                const std::uint64_t ci = std::min(i / 2, C.nx - 1);
                const std::uint64_t cj = std::min(j / 2, C.ny - 1);
                const std::uint64_t ck = std::min(k / 2, C.nz - 1);
                uf[at(F, i, j, k)] += 0.5 * uc[at(C, ci, cj, ck)];
              }
          env.compute(2 * F.points());
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {F.u, F.points() * 8}, {C.u, C.points() * 8}});
        };

        timer.start();
        const double res0 = residual_norm(lv[0], 9000);
        int tag = 0;
        for (int cyc = 0; cyc < kCycles; ++cyc) {
          for (int l = 0; l < kLevels - 1; ++l) {
            smooth(lv[l], kPreSmooth, tag += 10);
            restrict_to(lv[l], lv[l + 1], tag += 10);
          }
          smooth(lv[kLevels - 1], kPreSmooth + kPostSmooth, tag += 10);
          for (int l = kLevels - 1; l-- > 0;) {
            prolong_from(lv[l], lv[l + 1]);
            smooth(lv[l], kPostSmooth, tag += 10);
          }
          if (env.rank() == 0 && s.iter_hook) s.iter_hook(cyc);
        }
        const double res1 = residual_norm(lv[0], 9990);

        detail::KernelOutcome out;
        out.verified = std::isfinite(res1) && res1 < res0;
        out.fom = res1;
        return out;
      });
}

}  // namespace ibp::workloads
