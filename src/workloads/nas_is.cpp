// IS — bucketed integer sort. Per iteration: local histogram into 1024
// distribution buckets (random scatter), an allreduce of the bucket
// counts, an alltoallv redistributing the keys so rank r receives the
// r-th quantile, and a local counting sort of the received keys. Verified
// by (a) global key conservation (checksum allreduce) and (b) local
// sortedness plus cross-rank boundary ordering.

#include <algorithm>
#include <vector>

#include "ibp/workloads/nas.hpp"

namespace ibp::workloads {
namespace {

constexpr std::uint64_t kKeyBits = 19;                  // keys in [0, 2^19)
constexpr std::uint64_t kRange = 1ull << kKeyBits;
constexpr std::uint64_t kBuckets = 1024;                // distribution buckets
constexpr std::uint64_t kBucketShift = kKeyBits - 10;   // key -> bucket
constexpr int kIters = 4;

}  // namespace

NasResult run_is(core::Cluster& cluster, NasScale s) {
  return detail::run_kernel(
      cluster, "is", s.scale,
      [&s](core::RankEnv& env, mpi::Comm& comm, int scale,
         detail::Timer& timer) -> detail::KernelOutcome {
        const int nranks = env.nranks();
        const int me = env.rank();
        const std::uint64_t nkeys =
            (std::uint64_t{1} << 18) * static_cast<std::uint64_t>(scale);

        const VirtAddr keys_va = env.alloc(nkeys * 4);
        const VirtAddr recv_va = env.alloc(nkeys * 4 * 2);  // imbalance room
        const VirtAddr out_va = env.alloc(nkeys * 4 * 2);
        const VirtAddr cnt_va = env.alloc(kBuckets * 8 + 64);
        const VirtAddr gcnt_va = env.alloc(kBuckets * 8 + 64);
        const VirtAddr sum_va = env.alloc(64);

        auto* keys = env.host_ptr<std::uint32_t>(keys_va, nkeys);
        for (std::uint64_t i = 0; i < nkeys; ++i)
          keys[i] = static_cast<std::uint32_t>(env.rng().next_below(kRange));
        env.touch_stream(keys_va, nkeys * 4);

        std::uint64_t local_sum = 0;
        for (std::uint64_t i = 0; i < nkeys; ++i) local_sum += keys[i];
        *env.host_ptr<std::uint64_t>(sum_va) = local_sum;
        comm.allreduce<std::uint64_t>(sum_va, sum_va, 1, mpi::ReduceOp::Sum);
        const std::uint64_t expect_sum =
            *env.host_ptr<std::uint64_t>(sum_va);

        bool ok = true;
        std::uint64_t got = 0;
        auto* recv = env.host_ptr<std::uint32_t>(recv_va, nkeys * 2);
        auto* out = env.host_ptr<std::uint32_t>(out_va, nkeys * 2);

        timer.start();
        for (int iter = 0; iter < kIters; ++iter) {
          // 1. Local histogram (random scatter into the bucket counters).
          auto* cnt = env.host_ptr<std::uint64_t>(cnt_va, kBuckets);
          std::fill_n(cnt, kBuckets, 0);
          for (std::uint64_t i = 0; i < nkeys; ++i)
            ++cnt[keys[i] >> kBucketShift];
          env.compute(2 * nkeys);
          env.touch_stream(keys_va, nkeys * 4);
          env.touch_random(cnt_va, kBuckets * 8, nkeys / 16);

          // 2. Global bucket counts.
          comm.allreduce<std::uint64_t>(cnt_va, gcnt_va, kBuckets,
                                        mpi::ReduceOp::Sum);
          auto* gcnt = env.host_ptr<std::uint64_t>(gcnt_va, kBuckets);

          // 3. Assign contiguous bucket spans to ranks (~equal keys).
          const std::uint64_t total_keys =
              nkeys * static_cast<std::uint64_t>(nranks);
          std::vector<int> bucket_owner(kBuckets);
          {
            std::uint64_t acc = 0;
            for (std::uint64_t b = 0; b < kBuckets; ++b) {
              bucket_owner[b] = std::min<int>(
                  nranks - 1,
                  static_cast<int>(acc * static_cast<std::uint64_t>(nranks) /
                                   std::max<std::uint64_t>(total_keys, 1)));
              acc += gcnt[b];
            }
            env.compute(kBuckets * 4);
          }

          // 4. Pack keys by destination rank, then exchange.
          std::vector<std::uint64_t> scounts(nranks, 0), sdispls(nranks, 0);
          for (std::uint64_t i = 0; i < nkeys; ++i)
            scounts[bucket_owner[keys[i] >> kBucketShift]] += 4;
          for (int p = 1; p < nranks; ++p)
            sdispls[p] = sdispls[p - 1] + scounts[p - 1];
          {
            std::vector<std::uint64_t> cursor = sdispls;
            auto* staged = env.host_ptr<std::uint32_t>(out_va, nkeys);
            for (std::uint64_t i = 0; i < nkeys; ++i) {
              const int dstr = bucket_owner[keys[i] >> kBucketShift];
              staged[cursor[dstr] / 4] = keys[i];
              cursor[dstr] += 4;
            }
            env.compute(3 * nkeys);
            // Scatter through per-destination cursors: many concurrent
            // write streams through the staging buffer.
            env.touch_stream(keys_va, nkeys * 4);
            env.touch_random(out_va, nkeys * 4, nkeys / 16);
          }
          std::vector<std::uint64_t> rcounts(nranks, 0), rdispls(nranks, 0);
          {
            // Exchange counts first (tiny alltoall of 8-byte counters).
            const VirtAddr cex_va = env.alloc(
                static_cast<std::uint64_t>(nranks) * 8 * 2 + 64);
            auto* cs = env.host_ptr<std::uint64_t>(cex_va, nranks);
            for (int p = 0; p < nranks; ++p) cs[p] = scounts[p];
            comm.alltoall(cex_va, 8,
                          cex_va + static_cast<std::uint64_t>(nranks) * 8);
            auto* cr = env.host_ptr<std::uint64_t>(
                cex_va + static_cast<std::uint64_t>(nranks) * 8, nranks);
            for (int p = 0; p < nranks; ++p) rcounts[p] = cr[p];
            env.dealloc(cex_va);
          }
          for (int p = 1; p < nranks; ++p)
            rdispls[p] = rdispls[p - 1] + rcounts[p - 1];
          got = rdispls[nranks - 1] + rcounts[nranks - 1];
          IBP_CHECK(got <= nkeys * 2 * 4, "receive imbalance overflow");
          comm.alltoallv(out_va, scounts, sdispls, recv_va, rcounts,
                         rdispls);
          got /= 4;

          // 5. Local counting sort of the received keys.
          std::uint32_t kmin = ~0u, kmax = 0;
          for (std::uint64_t i = 0; i < got; ++i) {
            kmin = std::min(kmin, recv[i]);
            kmax = std::max(kmax, recv[i]);
          }
          const std::uint64_t span =
              got ? static_cast<std::uint64_t>(kmax - kmin) + 1 : 1;
          std::vector<std::uint64_t> hist(span, 0);
          for (std::uint64_t i = 0; i < got; ++i) ++hist[recv[i] - kmin];
          std::uint64_t pos = 0;
          for (std::uint64_t v = 0; v < span; ++v)
            for (std::uint64_t c = 0; c < hist[v]; ++c)
              out[pos++] = kmin + static_cast<std::uint32_t>(v);
          env.compute(6 * got + span);
          env.touch_stream(recv_va, got * 4);
          env.touch_random(out_va, std::max<std::uint64_t>(got * 4, 64),
                           got / 16);

          // Verify sortedness + conservation this iteration.
          for (std::uint64_t i = 1; i < pos; ++i)
            ok = ok && out[i - 1] <= out[i];
          std::uint64_t check = 0;
          for (std::uint64_t i = 0; i < pos; ++i) check += out[i];
          *env.host_ptr<std::uint64_t>(sum_va) = check;
          comm.allreduce<std::uint64_t>(sum_va, sum_va, 1,
                                        mpi::ReduceOp::Sum);
          ok = ok && *env.host_ptr<std::uint64_t>(sum_va) == expect_sum;

          // Boundary order across ranks: my max <= right neighbour's min.
          if (nranks > 1) {
            const VirtAddr b_va = env.alloc(64);
            auto* b = env.host_ptr<std::uint32_t>(b_va);
            *b = got ? out[pos - 1] : 0;
            const int right = (me + 1) % nranks;
            const int left = (me - 1 + nranks) % nranks;
            const VirtAddr nb_va = env.alloc(64);
            comm.sendrecv(b_va, 4, right, 99, nb_va, 4, left, 99);
            if (me != 0 && got) {
              const std::uint32_t left_max =
                  *env.host_ptr<std::uint32_t>(nb_va);
              ok = ok && left_max <= out[0];
            }
            env.dealloc(b_va);
            env.dealloc(nb_va);
          }
          if (env.rank() == 0 && s.iter_hook) s.iter_hook(iter);
        }

        detail::KernelOutcome out_res;
        out_res.verified = ok;
        out_res.fom = static_cast<double>(expect_sum % 1000000007ull);
        return out_res;
      });
}

}  // namespace ibp::workloads
