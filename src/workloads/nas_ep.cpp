// EP — embarrassingly parallel Gaussian-pair generation (Marsaglia polar
// method), tabulated into annulus bins, with one tiny allreduce at the
// end. Memory side: per batch the kernel streams its sample chunk and
// touches a set of hot spots spread across a large BSS-like region — the
// access pattern whose hot-page count sits between the 2 MB TLB capacity
// (8 on Opteron) and the 4 KB TLB capacity (544), producing the paper's
// ~8x TLB-miss blowup under hugepages while the streaming side still
// gains from physical contiguity (§5.2).

#include <cmath>
#include <vector>

#include "ibp/workloads/nas.hpp"

namespace ibp::workloads {
namespace {

constexpr std::uint64_t kBins = 10;
constexpr std::uint64_t kBatch = 4096;          // samples per batch
constexpr std::uint64_t kBssBytes = 100 * kMiB;  // BSS-like region
constexpr std::uint64_t kHotSpots = 580;        // just over 544 4 KB entries
constexpr std::uint64_t kHotRegions = 48;       // >> 8 2 MB entries
constexpr std::uint64_t kHotTouchesPerBatch = 32;

}  // namespace

NasResult run_ep(core::Cluster& cluster, NasScale s) {
  return detail::run_kernel(
      cluster, "ep", s.scale,
      [&s](core::RankEnv& env, mpi::Comm& comm, int scale,
         detail::Timer& timer) -> detail::KernelOutcome {
        const std::uint64_t samples =
            (std::uint64_t{1} << 19) * static_cast<std::uint64_t>(scale);

        const VirtAddr chunk_va = env.alloc(kBatch * 2 * 8);
        const VirtAddr bss_va = env.alloc(kBssBytes);
        const VirtAddr red_va = env.alloc(kBins * 8 + 64);

        double* chunk = env.host_ptr<double>(chunk_va, kBatch * 2);
        std::uint64_t bins[kBins] = {};
        double sx = 0.0, sy = 0.0;
        std::uint64_t accepted = 0;

        const std::uint64_t spot_stride = kBssBytes / kHotRegions;
        const std::uint64_t spots_per_region =
            (kHotSpots + kHotRegions - 1) / kHotRegions;

        timer.start();
        for (std::uint64_t done = 0; done < samples; done += kBatch) {
          const std::uint64_t m = std::min(kBatch, samples - done);
          // Generate the uniform pairs for this batch (real RNG work).
          for (std::uint64_t i = 0; i < 2 * m; ++i)
            chunk[i] = 2.0 * env.rng().next_double() - 1.0;
          env.touch_stream(chunk_va, m * 2 * 8);
          env.compute(m * 12);

          // Polar rejection + tabulation.
          for (std::uint64_t i = 0; i < m; ++i) {
            const double u1 = chunk[2 * i];
            const double u2 = chunk[2 * i + 1];
            const double t = u1 * u1 + u2 * u2;
            if (t > 1.0 || t == 0.0) continue;
            const double f = std::sqrt(-2.0 * std::log(t) / t);
            const double gx = u1 * f;
            const double gy = u2 * f;
            const auto bin = static_cast<std::uint64_t>(
                std::min(std::fabs(gx) > std::fabs(gy) ? std::fabs(gx)
                                                       : std::fabs(gy),
                         9.0));
            ++bins[bin];
            sx += gx;
            sy += gy;
            ++accepted;
          }
          env.compute(m * 22);

          // Hot-spot traffic across the BSS-like region.
          for (std::uint64_t t = 0; t < kHotTouchesPerBatch; ++t) {
            const std::uint64_t spot = env.rng().next_below(kHotSpots);
            const std::uint64_t region = spot / spots_per_region;
            const std::uint64_t within = spot % spots_per_region;
            const VirtAddr va = bss_va + region * spot_stride +
                                within * (spot_stride / spots_per_region);
            env.touch_random(va, 64, 1);
          }
          if (env.rank() == 0 && s.iter_hook)
            s.iter_hook(static_cast<int>(done / kBatch));
        }

        // Reduce the tabulated counts and Gaussian sums.
        auto* red = env.host_ptr<std::uint64_t>(red_va, kBins);
        for (std::uint64_t b = 0; b < kBins; ++b) red[b] = bins[b];
        comm.allreduce<std::uint64_t>(red_va, red_va, kBins,
                                      mpi::ReduceOp::Sum);
        std::uint64_t total = 0;
        for (std::uint64_t b = 0; b < kBins; ++b) total += red[b];

        auto* sums = env.host_ptr<double>(red_va);
        *sums = sx;
        comm.allreduce<double>(red_va, red_va, 1, mpi::ReduceOp::Sum);
        const double gsx = *env.host_ptr<double>(red_va);
        *sums = sy;
        comm.allreduce<double>(red_va, red_va, 1, mpi::ReduceOp::Sum);

        detail::KernelOutcome out;
        // Polar acceptance ratio is pi/4; verify within loose bounds and
        // that the global tabulation matches every rank's acceptances.
        const double ratio =
            static_cast<double>(total) /
            (static_cast<double>(samples) * env.nranks());
        out.verified = ratio > 0.75 && ratio < 0.82 && accepted > 0;
        out.fom = gsx;
        return out;
      });
}

}  // namespace ibp::workloads
