// FT — 3D FFT kernel (extension beyond the paper's five: NAS FT is the
// classic alltoall-dominated workload, a natural sixth point for the
// placement study). Slab decomposition in z; each iteration runs local
// FFTs along x and y, a global x<->z transpose (pack + alltoall + unpack
// — the bandwidth-heavy part), the third-dimension FFT, a spectral
// damping step, and the full inverse transform. Verified by round-
// tripping: the inverse must reproduce the input field to ~1e-8.

#include <cmath>
#include <complex>
#include <vector>

#include "ibp/workloads/nas.hpp"

namespace ibp::workloads {
namespace {

constexpr std::uint64_t kN = 32;  // grid edge (kN^3 complex points)
constexpr int kIters = 3;

using Cx = std::complex<double>;

/// Iterative radix-2 Cooley-Tukey, in place. n must be a power of two.
void fft1d(Cx* a, std::uint64_t n, bool inverse) {
  for (std::uint64_t i = 1, j = 0; i < n; ++i) {
    std::uint64_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::uint64_t len = 2; len <= n; len <<= 1) {
    const double ang =
        (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const Cx wl(std::cos(ang), std::sin(ang));
    for (std::uint64_t i = 0; i < n; i += len) {
      Cx w(1.0);
      for (std::uint64_t k = 0; k < len / 2; ++k) {
        const Cx u = a[i + k];
        const Cx v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wl;
      }
    }
  }
  if (inverse)
    for (std::uint64_t i = 0; i < n; ++i) a[i] /= static_cast<double>(n);
}

}  // namespace

NasResult run_ft(core::Cluster& cluster, NasScale s) {
  return detail::run_kernel(
      cluster, "ft", s.scale,
      [&s](core::RankEnv& env, mpi::Comm& comm, int scale,
         detail::Timer& timer) -> detail::KernelOutcome {
        const auto nranks = static_cast<std::uint64_t>(env.nranks());
        const std::uint64_t n = kN * static_cast<std::uint64_t>(scale);
        IBP_CHECK(n % nranks == 0, "grid must divide over ranks");
        const std::uint64_t nz = n / nranks;    // local slab thickness
        const std::uint64_t slab = n * n * nz;  // local points
        const std::uint64_t bytes = slab * sizeof(Cx);
        const std::uint64_t block = nz * n * nz;  // points per peer block

        VirtAddr u_va = env.alloc(bytes);    // working slab
        VirtAddr t_va = env.alloc(bytes);    // pack/unpack staging
        const VirtAddr ref_va = env.alloc(bytes);
        Cx* u = env.host_ptr<Cx>(u_va, slab);
        Cx* t = env.host_ptr<Cx>(t_va, slab);
        Cx* ref = env.host_ptr<Cx>(ref_va, slab);

        // Local layout: A[x][y][z_local], x fastest.
        auto at = [&](std::uint64_t x, std::uint64_t y, std::uint64_t z) {
          return (z * n + y) * n + x;
        };

        // Deterministic pseudo-random initial field.
        for (std::uint64_t i = 0; i < slab; ++i) {
          const std::uint64_t g =
              i * 2862933555777941757ull +
              static_cast<std::uint64_t>(env.rank()) * 88172645463325252ull;
          u[i] = Cx(static_cast<double>(g >> 40) / 16777216.0,
                    static_cast<double>((g >> 16) & 0xFFFFFF) / 16777216.0);
          ref[i] = u[i];
        }
        env.touch_stream(u_va, bytes);

        // Global involutive transpose B[x][y][z] = A[z][y][x].
        // Block to peer d: x in [d*nz,(d+1)*nz), all y, local z, stored as
        // ((z*n)+y)*nz + x_local. The receiver scatters sender s's block
        // to B[s*nz + z_sender][y][x_local].
        auto transpose = [&] {
          for (std::uint64_t d = 0; d < nranks; ++d)
            for (std::uint64_t z = 0; z < nz; ++z)
              for (std::uint64_t y = 0; y < n; ++y)
                for (std::uint64_t xl = 0; xl < nz; ++xl)
                  t[d * block + (z * n + y) * nz + xl] =
                      u[at(d * nz + xl, y, z)];
          env.compute(2 * slab);
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {u_va, bytes}, {t_va, bytes}});

          comm.alltoall(t_va, block * sizeof(Cx), u_va);

          // Unpack the received blocks into the transposed layout.
          for (std::uint64_t src = 0; src < nranks; ++src)
            for (std::uint64_t z = 0; z < nz; ++z)
              for (std::uint64_t y = 0; y < n; ++y)
                for (std::uint64_t xl = 0; xl < nz; ++xl)
                  t[at(src * nz + z, y, xl)] =
                      u[src * block + (z * n + y) * nz + xl];
          env.compute(2 * slab);
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {u_va, bytes}, {t_va, bytes}});
          std::swap(u_va, t_va);
          std::swap(u, t);
        };

        auto fft_x = [&](bool inverse) {
          for (std::uint64_t z = 0; z < nz; ++z)
            for (std::uint64_t y = 0; y < n; ++y)
              fft1d(&u[at(0, y, z)], n, inverse);
          env.compute(5 * slab * 5);
          env.touch_stream(u_va, bytes);
        };
        std::vector<Cx> scratch(n);
        auto fft_y = [&](bool inverse) {
          for (std::uint64_t z = 0; z < nz; ++z)
            for (std::uint64_t x = 0; x < n; ++x) {
              for (std::uint64_t y = 0; y < n; ++y)
                scratch[y] = u[at(x, y, z)];
              fft1d(scratch.data(), n, inverse);
              for (std::uint64_t y = 0; y < n; ++y)
                u[at(x, y, z)] = scratch[y];
            }
          env.compute(5 * slab * 5);
          env.touch_interleaved(std::vector<cpu::MemorySystem::StreamRef>{
              {u_va, bytes}, {t_va, bytes}});
        };

        timer.start();
        bool ok = true;
        double checksum = 0.0;
        for (int it = 0; it < kIters; ++it) {
          // Forward 3D FFT: x, y locally; z via transpose (z becomes x).
          fft_x(false);
          fft_y(false);
          transpose();
          fft_x(false);
          // Spectral damping (deterministic, exactly invertible).
          for (std::uint64_t i = 0; i < slab; ++i)
            u[i] *= 1.0 - 1e-6 * static_cast<double>(i % 97);
          env.compute(2 * slab);
          env.touch_stream(u_va, bytes);
          checksum += std::abs(u[static_cast<std::uint64_t>(it) % slab]);
          for (std::uint64_t i = 0; i < slab; ++i)
            u[i] /= 1.0 - 1e-6 * static_cast<double>(i % 97);
          // Inverse.
          fft_x(true);
          transpose();
          fft_y(true);
          fft_x(true);
          if (env.rank() == 0 && s.iter_hook) s.iter_hook(it);
        }

        double err = 0.0;
        for (std::uint64_t i = 0; i < slab; i += 17)
          err = std::max(err, std::abs(u[i] - ref[i]));
        const VirtAddr red = env.alloc(64);
        *env.host_ptr<double>(red) = err;
        comm.allreduce<double>(red, red, 1, mpi::ReduceOp::Max);
        ok = *env.host_ptr<double>(red) < 1e-8;

        detail::KernelOutcome out;
        out.verified = ok;
        out.fom = checksum;
        return out;
      });
}

}  // namespace ibp::workloads
