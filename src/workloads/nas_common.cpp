#include "ibp/workloads/nas.hpp"

#include <algorithm>

namespace ibp::workloads::detail {

NasResult run_kernel(core::Cluster& cluster, const std::string& name,
                     int scale, const KernelBody& body) {
  const int n = cluster.nranks();
  std::vector<TimePs> comm(static_cast<std::size_t>(n), 0);
  std::vector<TimePs> elapsed(static_cast<std::size_t>(n), 0);
  std::vector<KernelOutcome> outcome(static_cast<std::size_t>(n));

  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm_layer(env);
    Timer timer(env, comm_layer);
    outcome[static_cast<std::size_t>(env.rank())] =
        body(env, comm_layer, scale, timer);
    IBP_CHECK(timer.started(), "kernel body never started its timer");
    comm_layer.barrier();
    comm[static_cast<std::size_t>(env.rank())] =
        comm_layer.profiler().total() - timer.comm0();
    elapsed[static_cast<std::size_t>(env.rank())] = env.now() - timer.t0();
  });

  NasResult r;
  r.name = name;
  r.total = *std::max_element(elapsed.begin(), elapsed.end());
  TimePs sum = 0;
  for (TimePs c : comm) {
    sum += c;
    r.comm_max = std::max(r.comm_max, c);
  }
  r.comm_avg = sum / static_cast<std::uint64_t>(n);
  r.other_avg = r.total > r.comm_avg ? r.total - r.comm_avg : 0;

  r.verified = true;
  for (int p = 0; p < n; ++p) {
    r.verified = r.verified && outcome[static_cast<std::size_t>(p)].verified;
    const auto& ts = cluster.rank(p).tlb.stats();
    r.tlb_misses_small += ts.misses_small;
    r.tlb_misses_huge += ts.misses_huge;
  }
  r.tlb_misses = r.tlb_misses_small + r.tlb_misses_huge;
  r.figure_of_merit = outcome[0].fom;
  return r;
}

}  // namespace ibp::workloads::detail

namespace ibp::workloads {

NasResult run_nas(const std::string& name, core::Cluster& cluster,
                  NasScale s) {
  if (name == "cg") return run_cg(cluster, s);
  if (name == "ep") return run_ep(cluster, s);
  if (name == "is") return run_is(cluster, s);
  if (name == "lu") return run_lu(cluster, s);
  if (name == "mg") return run_mg(cluster, s);
  if (name == "ft") return run_ft(cluster, s);
  IBP_FAIL("unknown NAS kernel '" << name << "'");
}

}  // namespace ibp::workloads
