#pragma once

// NAS-Parallel-Benchmarks-like kernels (§5.2).
//
// Five kernels with the communication patterns and memory behaviour of
// their NAS namesakes, scaled down to simulator-friendly sizes but doing
// *real* computation with verified results:
//
//   CG — conjugate gradient on a sparse SPD stencil matrix; irregular
//        gathers, per-iteration allgather + dot-product allreduces.
//   EP — embarrassingly parallel Gaussian-pair tabulation; almost no
//        communication, hot-spot memory traffic across many regions.
//   IS — bucketed integer sort; histogram scatter, large alltoallv.
//   LU — SSOR-style wavefront sweeps on a 2D-decomposed 3D grid; many
//        small pipelined boundary messages.
//   MG — V-cycle multigrid on a 1D-decomposed 3D grid; halo exchanges
//        with sizes shrinking per level.
//
// Each kernel returns the mpiP-style communication/computation split and
// PAPI-style TLB counters, which bench/fig6_nas turns into the paper's
// Figure 6 bars and bench/tab_tlb_misses into the §5.2 TLB table.

#include <cstdint>
#include <functional>
#include <string>

#include "ibp/common/types.hpp"
#include "ibp/core/cluster.hpp"
#include "ibp/mpi/comm.hpp"

namespace ibp::workloads {

struct NasResult {
  std::string name;
  TimePs total = 0;       // run makespan
  TimePs comm_avg = 0;    // mean over ranks of time inside MPI calls
  TimePs comm_max = 0;
  TimePs other_avg = 0;   // total - comm (computation & allocator)
  std::uint64_t tlb_misses = 0;        // summed over ranks
  std::uint64_t tlb_misses_small = 0;
  std::uint64_t tlb_misses_huge = 0;
  bool verified = false;
  double figure_of_merit = 0.0;  // deterministic kernel checksum
};

/// Problem-size multiplier. scale=1 keeps every kernel under ~1 s of host
/// time; the communication/computation ratio is calibrated at scale=1.
struct NasScale {
  int scale = 1;
  /// Per-iteration phase hook (like ImbConfig::phase_hook): invoked on
  /// rank 0 only, at the end of every iteration of the kernel's timed
  /// main loop (EP: every sample batch), with the 0-based iteration
  /// index. The call itself consumes no virtual time, so a registry
  /// snapshot taken inside it is race-free and the run is bit-identical
  /// whether or not a hook is installed. Null by default.
  std::function<void(int)> iter_hook;
};

NasResult run_cg(core::Cluster& cluster, NasScale s = {});
NasResult run_ep(core::Cluster& cluster, NasScale s = {});
NasResult run_is(core::Cluster& cluster, NasScale s = {});
NasResult run_lu(core::Cluster& cluster, NasScale s = {});
NasResult run_mg(core::Cluster& cluster, NasScale s = {});
/// Extension (not in the paper's evaluation): alltoall-dominated 3D FFT.
NasResult run_ft(core::Cluster& cluster, NasScale s = {});

/// Run by name ("cg", "ep", "is", "lu", "mg", "ft").
NasResult run_nas(const std::string& name, core::Cluster& cluster,
                  NasScale s = {});

namespace detail {

/// Per-rank outcome a kernel body reports back to the harness.
struct KernelOutcome {
  bool verified = false;
  double fom = 0.0;
};

/// Marks the start of the timed region. Kernels call start() exactly once
/// after allocating and initializing their data (the paper's runs last
/// minutes, so one-time setup is negligible there; at simulator scale it
/// must be excluded explicitly).
class Timer {
 public:
  Timer(core::RankEnv& env, mpi::Comm& comm) : env_(&env), comm_(&comm) {}
  void start() {
    comm_->barrier();
    env_->state().tlb.reset_stats();
    env_->state().memsys.reset_stats();
    comm0_ = comm_->profiler().total();
    t0_ = env_->now();
    started_ = true;
  }
  bool started() const { return started_; }
  TimePs t0() const { return t0_; }
  TimePs comm0() const { return comm0_; }

 private:
  core::RankEnv* env_;
  mpi::Comm* comm_;
  TimePs t0_ = 0;
  TimePs comm0_ = 0;
  bool started_ = false;
};

using KernelBody = std::function<KernelOutcome(core::RankEnv&, mpi::Comm&,
                                               int scale, Timer& timer)>;

/// Shared harness: runs `body` on every rank, then reduces profiler and
/// TLB data into a NasResult.
NasResult run_kernel(core::Cluster& cluster, const std::string& name,
                     int scale, const KernelBody& body);

}  // namespace detail
}  // namespace ibp::workloads
