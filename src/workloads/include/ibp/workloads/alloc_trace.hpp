#pragma once

// Abinit-like allocation trace (§2/§3.2).
//
// The paper measured allocation speedups of up to 10x over the libc path
// for instrumented applications like Abinit, which "raised a thrashing
// behaviour into the libc memory allocator": plane-wave codes repeatedly
// allocate and free same-sized wavefunction/work arrays inside their SCF
// loop, making a coalescing allocator merge blocks on every free only to
// split them again on the next same-sized malloc. This generator
// reproduces that pattern:
//
//   * a base set of long-lived arrays (allocated once),
//   * an SCF-style loop: per iteration, a burst of temporary arrays drawn
//     from a small set of recurring sizes, freed in reverse order before
//     the next burst,
//   * occasional odd-sized allocations to keep the free list non-trivial.

#include <cstdint>
#include <vector>

#include "ibp/common/rng.hpp"
#include "ibp/common/types.hpp"

namespace ibp::workloads {

struct TraceOp {
  enum class Kind : std::uint8_t { Malloc, Free };
  Kind kind = Kind::Malloc;
  std::uint64_t size = 0;   // Malloc: bytes
  std::uint32_t slot = 0;   // logical handle: Free releases this slot
};

struct TraceConfig {
  std::uint32_t persistent_arrays = 12;
  std::uint64_t persistent_bytes = 6 * kMiB;
  std::uint32_t iterations = 60;       // SCF loop count
  std::uint32_t burst = 24;            // temporaries per iteration
  std::uint32_t recurring_sizes = 6;   // distinct temp sizes
  std::uint64_t temp_min = 48 * kKiB;  // above the 32 KB hugepage threshold
  std::uint64_t temp_max = 2 * kMiB;
  double odd_fraction = 0.1;           // odd-sized allocations
  std::uint64_t seed = 1234;
};

/// Deterministic trace of Malloc/Free ops; slots are dense indices into a
/// live-pointer table of size trace_slot_count().
std::vector<TraceOp> make_abinit_trace(const TraceConfig& cfg = {});

/// Number of live-pointer slots a trace needs.
std::uint32_t trace_slot_count(const TraceConfig& cfg = {});

}  // namespace ibp::workloads
