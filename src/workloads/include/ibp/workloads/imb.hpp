#pragma once

// Intel-MPI-Benchmarks-like SendRecv microbenchmark (§5.1).
//
// IMB SendRecv forms a periodic chain: every rank receives from its left
// neighbour while sending to its right neighbour, and the reported
// bandwidth counts bytes in both directions. The paper runs it in two
// configurations: lazy deregistration on (pure transfer time) and off
// (transfer + registration each iteration); buffers are placed either by
// libc (small pages) or by the preloaded hugepage library.

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "ibp/common/types.hpp"
#include "ibp/core/cluster.hpp"
#include "ibp/mpi/comm.hpp"

namespace ibp::workloads {

struct ImbPoint {
  std::uint64_t bytes = 0;
  TimePs avg_time = 0;          // per-iteration time on the slowest rank
  double mbytes_per_sec = 0.0;  // IMB convention: 2 * bytes / time
};

struct ImbConfig {
  std::vector<std::uint64_t> sizes;  // message sizes to sweep
  int iterations = 20;               // timed iterations per size
  int warmup = 2;
  /// Reallocate the message buffer for every size (fresh pages each time,
  /// like IMB's default off-cache mode combined with an allocating app).
  bool fresh_buffers = true;
  /// MPI layer configuration (protocol thresholds, recovery policy —
  /// relevant when the cluster runs under a fault plan).
  mpi::CommConfig comm;
  /// Invoked by rank 0 after each size finishes (past the closing
  /// barrier, before the next size's buffers are touched). Runs while
  /// rank 0 is the scheduled rank, so it may safely read the cluster's
  /// metrics registry — benches use it to snapshot per-phase deltas.
  std::function<void(std::size_t size_index, std::uint64_t bytes)> phase_hook;
};

/// Default size sweep 4 KB … 16 MB (powers of two), as in Figure 5.
std::vector<std::uint64_t> imb_default_sizes();

/// Run SendRecv on the given cluster (uses all its ranks). The cluster's
/// configuration decides page placement, driver mode and lazy
/// deregistration.
std::vector<ImbPoint> run_sendrecv(core::Cluster& cluster,
                                   const ImbConfig& cfg);

/// IMB PingPong between ranks 0 and 1: avg_time is the one-way latency
/// (half the round trip); bandwidth counts one direction.
std::vector<ImbPoint> run_pingpong(core::Cluster& cluster,
                                   const ImbConfig& cfg);

/// IMB Exchange: every rank exchanges with both chain neighbours per
/// iteration (4 messages per rank); bandwidth counts all four.
std::vector<ImbPoint> run_exchange(core::Cluster& cluster,
                                   const ImbConfig& cfg);

}  // namespace ibp::workloads
