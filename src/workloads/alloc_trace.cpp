#include "ibp/workloads/alloc_trace.hpp"

#include "ibp/common/check.hpp"

namespace ibp::workloads {

std::uint32_t trace_slot_count(const TraceConfig& cfg) {
  return cfg.persistent_arrays + cfg.burst;
}

std::vector<TraceOp> make_abinit_trace(const TraceConfig& cfg) {
  IBP_CHECK(cfg.recurring_sizes > 0 && cfg.burst > 0);
  Rng rng(cfg.seed);
  std::vector<TraceOp> ops;
  ops.reserve(cfg.persistent_arrays +
              static_cast<std::size_t>(cfg.iterations) * cfg.burst * 2);

  // Long-lived arrays (wavefunctions, densities).
  for (std::uint32_t i = 0; i < cfg.persistent_arrays; ++i) {
    TraceOp op;
    op.kind = TraceOp::Kind::Malloc;
    op.size = cfg.persistent_bytes / cfg.persistent_arrays +
              (i % 3) * 64 * kKiB;
    op.slot = i;
    ops.push_back(op);
  }

  // The recurring temporary sizes an SCF loop cycles through.
  std::vector<std::uint64_t> sizes;
  for (std::uint32_t s = 0; s < cfg.recurring_sizes; ++s)
    sizes.push_back(cfg.temp_min +
                    rng.next_below(cfg.temp_max - cfg.temp_min + 1));

  for (std::uint32_t it = 0; it < cfg.iterations; ++it) {
    // Allocation burst.
    for (std::uint32_t b = 0; b < cfg.burst; ++b) {
      TraceOp op;
      op.kind = TraceOp::Kind::Malloc;
      if (rng.next_double() < cfg.odd_fraction) {
        op.size = cfg.temp_min + rng.next_below(cfg.temp_max - cfg.temp_min);
      } else {
        // Same sizes every iteration — the coalesce/split churn driver.
        op.size = sizes[b % sizes.size()];
      }
      op.slot = cfg.persistent_arrays + b;
      ops.push_back(op);
    }
    // LIFO release, as Fortran work-array stacks do.
    for (std::uint32_t b = cfg.burst; b-- > 0;) {
      TraceOp op;
      op.kind = TraceOp::Kind::Free;
      op.slot = cfg.persistent_arrays + b;
      ops.push_back(op);
    }
  }

  // Tear down the persistent arrays.
  for (std::uint32_t i = 0; i < cfg.persistent_arrays; ++i) {
    TraceOp op;
    op.kind = TraceOp::Kind::Free;
    op.slot = i;
    ops.push_back(op);
  }
  return ops;
}

}  // namespace ibp::workloads
