#include "ibp/workloads/imb.hpp"

#include <algorithm>

#include "ibp/mpi/comm.hpp"

namespace ibp::workloads {

std::vector<std::uint64_t> imb_default_sizes() {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 4 * kKiB; s <= 16 * kMiB; s <<= 1)
    sizes.push_back(s);
  return sizes;
}

std::vector<ImbPoint> run_sendrecv(core::Cluster& cluster,
                                   const ImbConfig& cfg) {
  const int n = cluster.nranks();
  IBP_CHECK(n >= 2, "SendRecv needs at least two ranks");
  std::vector<ImbPoint> results(cfg.sizes.size());
  // Per-size, per-rank elapsed time; reduced after the run.
  std::vector<std::vector<TimePs>> elapsed(
      cfg.sizes.size(), std::vector<TimePs>(static_cast<std::size_t>(n), 0));

  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, cfg.comm);
    const int right = (env.rank() + 1) % n;
    const int left = (env.rank() - 1 + n) % n;

    VirtAddr sbuf = 0, rbuf = 0;
    std::uint64_t cur_cap = 0;
    auto ensure_buffers = [&](std::uint64_t bytes) {
      if (!cfg.fresh_buffers && cur_cap >= bytes) return;
      if (sbuf != 0) {
        env.dealloc(sbuf);
        env.dealloc(rbuf);
      }
      sbuf = env.alloc(bytes);
      rbuf = env.alloc(bytes);
      cur_cap = bytes;
      // First touch, as a real benchmark would when initializing.
      env.touch_stream(sbuf, bytes);
      env.touch_stream(rbuf, bytes);
    };

    for (std::size_t si = 0; si < cfg.sizes.size(); ++si) {
      const std::uint64_t bytes = std::max<std::uint64_t>(cfg.sizes[si], 64);
      ensure_buffers(bytes);
      for (int w = 0; w < cfg.warmup; ++w)
        comm.sendrecv(sbuf, cfg.sizes[si], right, 0, rbuf, cfg.sizes[si],
                      left, 0);
      comm.barrier();
      const TimePs t0 = env.now();
      for (int it = 0; it < cfg.iterations; ++it)
        comm.sendrecv(sbuf, cfg.sizes[si], right, 0, rbuf, cfg.sizes[si],
                      left, 0);
      comm.barrier();
      elapsed[si][static_cast<std::size_t>(env.rank())] = env.now() - t0;
      if (cfg.phase_hook && env.rank() == 0) cfg.phase_hook(si, cfg.sizes[si]);
    }
    if (sbuf != 0) {
      env.dealloc(sbuf);
      env.dealloc(rbuf);
    }
  });

  for (std::size_t si = 0; si < cfg.sizes.size(); ++si) {
    const TimePs worst =
        *std::max_element(elapsed[si].begin(), elapsed[si].end());
    ImbPoint& p = results[si];
    p.bytes = cfg.sizes[si];
    p.avg_time = worst / static_cast<std::uint64_t>(cfg.iterations);
    if (p.avg_time > 0)
      p.mbytes_per_sec = 2.0 * static_cast<double>(p.bytes) /
                         (static_cast<double>(p.avg_time) * 1e-12) / 1e6;
    }
  return results;
}

std::vector<ImbPoint> run_pingpong(core::Cluster& cluster,
                                   const ImbConfig& cfg) {
  IBP_CHECK(cluster.nranks() >= 2, "PingPong needs two ranks");
  std::vector<ImbPoint> results(cfg.sizes.size());
  std::vector<TimePs> elapsed(cfg.sizes.size(), 0);

  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, cfg.comm);
    if (env.rank() > 1) return;  // spectators, as in IMB
    const int other = 1 - env.rank();
    VirtAddr buf = 0;
    std::uint64_t cap = 0;
    for (std::size_t si = 0; si < cfg.sizes.size(); ++si) {
      const std::uint64_t bytes = cfg.sizes[si];
      if (cfg.fresh_buffers || cap < bytes) {
        if (buf != 0) env.dealloc(buf);
        cap = std::max<std::uint64_t>(bytes, 64);
        buf = env.alloc(cap);
        env.touch_stream(buf, cap);
      }
      auto round = [&] {
        if (env.rank() == 0) {
          comm.send(buf, bytes, other, 0);
          comm.recv(buf, bytes, other, 0);
        } else {
          comm.recv(buf, bytes, other, 0);
          comm.send(buf, bytes, other, 0);
        }
      };
      for (int w = 0; w < cfg.warmup; ++w) round();
      const TimePs t0 = env.now();
      for (int it = 0; it < cfg.iterations; ++it) round();
      if (env.rank() == 0) {
        elapsed[si] = env.now() - t0;
        if (cfg.phase_hook) cfg.phase_hook(si, bytes);
      }
    }
    if (buf != 0) env.dealloc(buf);
  });

  for (std::size_t si = 0; si < cfg.sizes.size(); ++si) {
    ImbPoint& p = results[si];
    p.bytes = cfg.sizes[si];
    p.avg_time =
        elapsed[si] / (2ull * static_cast<std::uint64_t>(cfg.iterations));
    if (p.avg_time > 0)
      p.mbytes_per_sec = static_cast<double>(p.bytes) /
                         (static_cast<double>(p.avg_time) * 1e-12) / 1e6;
  }
  return results;
}

std::vector<ImbPoint> run_exchange(core::Cluster& cluster,
                                   const ImbConfig& cfg) {
  const int n = cluster.nranks();
  IBP_CHECK(n >= 2, "Exchange needs at least two ranks");
  std::vector<ImbPoint> results(cfg.sizes.size());
  std::vector<std::vector<TimePs>> elapsed(
      cfg.sizes.size(), std::vector<TimePs>(static_cast<std::size_t>(n), 0));

  cluster.run([&](core::RankEnv& env) {
    mpi::Comm comm(env, cfg.comm);
    const int right = (env.rank() + 1) % n;
    const int left = (env.rank() - 1 + n) % n;
    VirtAddr sbuf = 0, rbuf = 0;
    std::uint64_t cap = 0;
    for (std::size_t si = 0; si < cfg.sizes.size(); ++si) {
      const std::uint64_t bytes = cfg.sizes[si];
      if (cfg.fresh_buffers || cap < bytes) {
        if (sbuf != 0) {
          env.dealloc(sbuf);
          env.dealloc(rbuf);
        }
        cap = std::max<std::uint64_t>(bytes, 64);
        sbuf = env.alloc(cap * 2);
        rbuf = env.alloc(cap * 2);
        env.touch_stream(sbuf, cap * 2);
        env.touch_stream(rbuf, cap * 2);
      }
      auto round = [&] {
        mpi::Req rs[4] = {
            comm.irecv(rbuf, bytes, left, 0),
            comm.irecv(rbuf + cap, bytes, right, 1),
            comm.isend(sbuf, bytes, left, 1),
            comm.isend(sbuf + cap, bytes, right, 0),
        };
        for (auto& r : rs) comm.wait(r);
      };
      for (int w = 0; w < cfg.warmup; ++w) round();
      comm.barrier();
      const TimePs t0 = env.now();
      for (int it = 0; it < cfg.iterations; ++it) round();
      comm.barrier();
      elapsed[si][static_cast<std::size_t>(env.rank())] = env.now() - t0;
      if (cfg.phase_hook && env.rank() == 0) cfg.phase_hook(si, bytes);
    }
    if (sbuf != 0) {
      env.dealloc(sbuf);
      env.dealloc(rbuf);
    }
  });

  for (std::size_t si = 0; si < cfg.sizes.size(); ++si) {
    const TimePs worst =
        *std::max_element(elapsed[si].begin(), elapsed[si].end());
    ImbPoint& p = results[si];
    p.bytes = cfg.sizes[si];
    p.avg_time = worst / static_cast<std::uint64_t>(cfg.iterations);
    if (p.avg_time > 0)
      p.mbytes_per_sec = 4.0 * static_cast<double>(p.bytes) /
                         (static_cast<double>(p.avg_time) * 1e-12) / 1e6;
  }
  return results;
}

}  // namespace ibp::workloads
