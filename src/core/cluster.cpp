#include "ibp/core/cluster.hpp"

namespace ibp::core {

RankEnv::RankEnv(Cluster& cluster, sim::Context& sc, RankState& st)
    : cluster_(&cluster),
      sc_(&sc),
      st_(&st),
      vctx_(sc, st.space, st.node->adapter, cluster.config().driver,
            &st.send_cq, &st.recv_cq),
      rcache_(vctx_,
              // The plan's registration strategy for a representative
              // rendezvous buffer picks the cache mode (PaperDefault maps
              // lazy_deregistration to LazyCache/Deactivated exactly).
              st.placement
                  ->plan({.size = 64 * kKiB,
                          .role = placement::Role::Rendezvous})
                  .registration,
              cluster.config().regcache_capacity_bytes) {
  if (sim::Tracer* t = cluster.tracer()) {
    st.placement->set_tracer(t, st.id, [this] { return sc_->now(); });
  }
}

int RankEnv::nranks() const { return cluster_->nranks(); }

void RankEnv::compute(std::uint64_t ops) {
  sc_->advance(
      cpu::MemorySystem::compute(ops, cluster_->config().platform.ops_per_ns));
}

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg), engine_(cfg.nodes * cfg.ranks_per_node) {
  IBP_CHECK(cfg_.nodes >= 1 && cfg_.ranks_per_node >= 1);
  const int nranks = cfg_.nodes * cfg_.ranks_per_node;

  Rng seeder(cfg_.seed);
  for (int n = 0; n < cfg_.nodes; ++n)
    nodes_.push_back(std::make_unique<Node>(cfg_, n, seeder.next_u64()));

  if (!cfg_.fault.empty()) {
    fault_ = std::make_unique<fault::FaultInjector>(cfg_.fault, cfg_.seed);
    if (cfg_.enable_tracing) {
      // Fault/retry events land on the owning node's tracer lane.
      fault_->set_observer([this](const char* kind, NodeId node, TimePs at) {
        tracer_.mark(node, "fault", kind, at);
      });
    }
    for (auto& nd : nodes_) nd->adapter.set_fault_injector(fault_.get());
  }

  if (cfg_.fabric_pod_nodes > 0) {
    fabric_ = std::make_unique<hca::Fabric>(
        cfg_.fabric_core_links, cfg_.fabric_hop_latency,
        // Arbitration quantum = one MTU at the platform link rate.
        static_cast<TimePs>(static_cast<double>(cfg_.platform.adapter.mtu) /
                            cfg_.platform.adapter.link_bw_bytes_per_ns *
                            1e3) +
            cfg_.platform.adapter.pkt_overhead);
    for (int n = 0; n < cfg_.nodes; ++n)
      nodes_[static_cast<std::size_t>(n)]->adapter.attach_fabric(
          fabric_.get(), n / cfg_.fabric_pod_nodes);
  }

  for (int r = 0; r < nranks; ++r) {
    Node& nd = *nodes_[static_cast<std::size_t>(r / cfg_.ranks_per_node)];
    ranks_.push_back(std::make_unique<RankState>(nd, cfg_, r));
    RankState& rs = *ranks_.back();
    rs.ud_qp = &nd.adapter.create_qp(&rs.send_cq, &rs.recv_cq,
                                     hca::QpType::UD);
    rs.ud_qp->set_attrs(cfg_.driver.qp);
  }

  // Wiring. Inter-node pairs get an RC QP pair; same-node pairs get a
  // shared-memory channel per direction.
  shm_.resize(static_cast<std::size_t>(nranks));
  for (auto& row : shm_) row.resize(static_cast<std::size_t>(nranks));
  ShmConfig shm_cfg{cfg_.platform.shm_bw_bytes_per_ns, cfg_.platform.shm_latency};

  for (int a = 0; a < nranks; ++a) {
    RankState& ra = *ranks_[static_cast<std::size_t>(a)];
    ra.qp_to.assign(static_cast<std::size_t>(nranks), nullptr);
    ra.shm_out.assign(static_cast<std::size_t>(nranks), nullptr);
    ra.shm_in.assign(static_cast<std::size_t>(nranks), nullptr);
  }
  for (int a = 0; a < nranks; ++a) {
    RankState& ra = *ranks_[static_cast<std::size_t>(a)];
    for (int b = a + 1; b < nranks; ++b) {
      RankState& rb = *ranks_[static_cast<std::size_t>(b)];
      if (ra.node == rb.node) {
        shm_[a][b] = std::make_unique<ShmChannel>(shm_cfg);
        shm_[b][a] = std::make_unique<ShmChannel>(shm_cfg);
        ra.shm_out[static_cast<std::size_t>(b)] = shm_[a][b].get();
        rb.shm_in[static_cast<std::size_t>(a)] = shm_[a][b].get();
        rb.shm_out[static_cast<std::size_t>(a)] = shm_[b][a].get();
        ra.shm_in[static_cast<std::size_t>(b)] = shm_[b][a].get();
      } else {
        hca::QueuePair& qa =
            ra.node->adapter.create_qp(&ra.send_cq, &ra.recv_cq);
        hca::QueuePair& qb =
            rb.node->adapter.create_qp(&rb.send_cq, &rb.recv_cq);
        qa.set_attrs(cfg_.driver.qp);
        qb.set_attrs(cfg_.driver.qp);
        qa.connect(&qb);
        qb.connect(&qa);
        ra.qp_to[static_cast<std::size_t>(b)] = &qa;
        rb.qp_to[static_cast<std::size_t>(a)] = &qb;
      }
    }
  }
}

void Cluster::run(const std::function<void(RankEnv&)>& fn) {
  engine_.run([this, &fn](sim::Context& sc) {
    RankEnv env(*this, sc, rank(sc.rank()));
    fn(env);
  });
}

}  // namespace ibp::core
