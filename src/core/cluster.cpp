#include "ibp/core/cluster.hpp"

namespace ibp::core {

RankEnv::RankEnv(Cluster& cluster, sim::Context& sc, RankState& st)
    : cluster_(&cluster),
      sc_(&sc),
      st_(&st),
      vctx_(sc, st.space, st.node->adapter, cluster.config().driver,
            &st.send_cq, &st.recv_cq),
      rcache_(vctx_,
              // The plan's registration strategy for a representative
              // rendezvous buffer picks the cache mode (PaperDefault maps
              // lazy_deregistration to LazyCache/Deactivated exactly).
              st.placement
                  ->plan({.size = 64 * kKiB,
                          .role = placement::Role::Rendezvous})
                  .registration,
              cluster.config().regcache_capacity_bytes) {
  if (sim::Tracer* t = cluster.tracer()) {
    st.placement->set_tracer(t, st.id, [this] { return sc_->now(); });
  }
  // Pin-down cache counters: per-run probes (this env dies with the rank
  // program; the handles latch the final values into the registry).
  telemetry::MetricsRegistry& m = cluster.metrics();
  const regcache::RegCache* rc = &rcache_;
  auto probe = [&](std::string_view name, std::function<double()> fn) {
    probes_.push_back(m.probe(name, std::move(fn)));
  };
  probe("regcache.hits", [rc] { return double(rc->stats().hits); });
  probe("regcache.misses", [rc] { return double(rc->stats().misses); });
  probe("regcache.releases", [rc] { return double(rc->stats().releases); });
  probe("regcache.invalidations",
        [rc] { return double(rc->stats().invalidations); });
  probe("regcache.evictions", [rc] { return double(rc->stats().evictions); });
  probe("regcache.pinned_bytes_peak",
        [rc] { return double(rc->stats().pinned_bytes_peak); });
}

int RankEnv::nranks() const { return cluster_->nranks(); }

void RankEnv::compute(std::uint64_t ops) {
  sc_->advance(
      cpu::MemorySystem::compute(ops, cluster_->config().platform.ops_per_ns));
}

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg), engine_(cfg.nodes * cfg.ranks_per_node) {
  IBP_CHECK(cfg_.nodes >= 1 && cfg_.ranks_per_node >= 1);
  const int nranks = cfg_.nodes * cfg_.ranks_per_node;

  Rng seeder(cfg_.seed);
  for (int n = 0; n < cfg_.nodes; ++n)
    nodes_.push_back(std::make_unique<Node>(cfg_, n, seeder.next_u64()));

  if (!cfg_.fault.empty()) {
    fault_ = std::make_unique<fault::FaultInjector>(cfg_.fault, cfg_.seed);
    if (cfg_.enable_tracing) {
      // Fault/retry events land on the owning node's tracer lane.
      fault_->set_observer([this](const char* kind, NodeId node, TimePs at) {
        tracer_.mark(node, "fault", kind, at);
      });
    }
    for (auto& nd : nodes_) nd->adapter.set_fault_injector(fault_.get());
  }

  if (cfg_.request_trace.enabled)
    reqtrace_ = std::make_unique<telemetry::RequestTracer>(
        cfg_.request_trace, &metrics_, tracer());

  if (cfg_.fabric_pod_nodes > 0) {
    fabric_ = std::make_unique<hca::Fabric>(
        cfg_.fabric_core_links, cfg_.fabric_hop_latency,
        // Arbitration quantum = one MTU at the platform link rate.
        static_cast<TimePs>(static_cast<double>(cfg_.platform.adapter.mtu) /
                            cfg_.platform.adapter.link_bw_bytes_per_ns *
                            1e3) +
            cfg_.platform.adapter.pkt_overhead);
    for (int n = 0; n < cfg_.nodes; ++n)
      nodes_[static_cast<std::size_t>(n)]->adapter.attach_fabric(
          fabric_.get(), n / cfg_.fabric_pod_nodes);
  }

  for (int r = 0; r < nranks; ++r) {
    Node& nd = *nodes_[static_cast<std::size_t>(r / cfg_.ranks_per_node)];
    ranks_.push_back(std::make_unique<RankState>(nd, cfg_, r));
    RankState& rs = *ranks_.back();
    rs.ud_qp = &nd.adapter.create_qp(&rs.send_cq, &rs.recv_cq,
                                     hca::QpType::UD);
    rs.ud_qp->set_attrs(cfg_.driver.qp);
  }

  // Wiring. Inter-node pairs get an RC QP pair; same-node pairs get a
  // shared-memory channel per direction.
  shm_.resize(static_cast<std::size_t>(nranks));
  for (auto& row : shm_) row.resize(static_cast<std::size_t>(nranks));
  ShmConfig shm_cfg{cfg_.platform.shm_bw_bytes_per_ns, cfg_.platform.shm_latency};

  for (int a = 0; a < nranks; ++a) {
    RankState& ra = *ranks_[static_cast<std::size_t>(a)];
    ra.qp_to.assign(static_cast<std::size_t>(nranks), nullptr);
    ra.shm_out.assign(static_cast<std::size_t>(nranks), nullptr);
    ra.shm_in.assign(static_cast<std::size_t>(nranks), nullptr);
  }
  for (int a = 0; a < nranks; ++a) {
    RankState& ra = *ranks_[static_cast<std::size_t>(a)];
    for (int b = a + 1; b < nranks; ++b) {
      RankState& rb = *ranks_[static_cast<std::size_t>(b)];
      if (ra.node == rb.node) {
        shm_[a][b] = std::make_unique<ShmChannel>(shm_cfg);
        shm_[b][a] = std::make_unique<ShmChannel>(shm_cfg);
        ra.shm_out[static_cast<std::size_t>(b)] = shm_[a][b].get();
        rb.shm_in[static_cast<std::size_t>(a)] = shm_[a][b].get();
        rb.shm_out[static_cast<std::size_t>(a)] = shm_[b][a].get();
        ra.shm_in[static_cast<std::size_t>(b)] = shm_[b][a].get();
      } else {
        hca::QueuePair& qa =
            ra.node->adapter.create_qp(&ra.send_cq, &ra.recv_cq);
        hca::QueuePair& qb =
            rb.node->adapter.create_qp(&rb.send_cq, &rb.recv_cq);
        qa.set_attrs(cfg_.driver.qp);
        qb.set_attrs(cfg_.driver.qp);
        qa.connect(&qb);
        qb.connect(&qa);
        ra.qp_to[static_cast<std::size_t>(b)] = &qa;
        rb.qp_to[static_cast<std::size_t>(a)] = &qb;
      }
    }
  }

  register_probes();
  if (sim::Tracer* t = tracer()) {
    t->set_process_name("ibplace simulated cluster");
    for (int r = 0; r < nranks; ++r)
      t->set_thread_name(r, "rank " + std::to_string(r));
  }
  install_sampler();
}

void Cluster::register_probes() {
  auto probe = [&](std::string_view name, std::function<double()> fn) {
    probes_.push_back(metrics_.probe(name, std::move(fn)));
  };

  // Adapter counters, summed across the cluster's HCAs.
  for (const auto& ndp : nodes_) {
    const Node* nd = ndp.get();
    const auto s = [nd]() -> const hca::AdapterStats& {
      return nd->adapter.stats();
    };
    probe("hca.sends_posted", [s] { return double(s().sends_posted); });
    probe("hca.recvs_posted", [s] { return double(s().recvs_posted); });
    probe("hca.rdma_writes_posted",
          [s] { return double(s().rdma_writes_posted); });
    probe("hca.rdma_reads_posted",
          [s] { return double(s().rdma_reads_posted); });
    probe("hca.bytes_tx", [s] { return double(s().bytes_tx); });
    probe("hca.att_hits", [s] { return double(s().att_hits); });
    probe("hca.att_misses", [s] { return double(s().att_misses); });
    probe("hca.mr_registered", [s] { return double(s().mr_registered); });
    probe("hca.mr_deregistered", [s] { return double(s().mr_deregistered); });
    probe("hca.pages_pinned", [s] { return double(s().pages_pinned); });
    probe("hca.translations_shipped",
          [s] { return double(s().translations_shipped); });
    probe("hca.reg_time_us", [s] { return ps_to_us(s().reg_time_total); });
    probe("hca.pkts_dropped", [s] { return double(s().pkts_dropped); });
    probe("hca.retransmits", [s] { return double(s().retransmits); });
    probe("hca.rnr_naks", [s] { return double(s().rnr_naks); });
    probe("hca.qp_errors", [s] { return double(s().qp_errors); });
  }

  // Per-rank CPU, allocator and placement counters, summed across ranks.
  for (const auto& rkp : ranks_) {
    const RankState* rs = rkp.get();
    probe("cpu.dtlb_hits", [rs] { return double(rs->tlb.stats().hits()); });
    probe("cpu.dtlb_misses",
          [rs] { return double(rs->tlb.stats().misses()); });
    probe("cpu.dtlb_misses_small",
          [rs] { return double(rs->tlb.stats().misses_small); });
    probe("cpu.dtlb_misses_huge",
          [rs] { return double(rs->tlb.stats().misses_huge); });
    probe("cpu.stream_bytes",
          [rs] { return double(rs->memsys.stats().stream_bytes); });
    probe("cpu.random_accesses",
          [rs] { return double(rs->memsys.stats().random_accesses); });
    probe("cpu.prefetch_ramps",
          [rs] { return double(rs->memsys.stats().prefetch_ramps); });

    probe("hugepage.huge_allocs",
          [rs] { return double(rs->lib.stats().huge_allocs); });
    probe("hugepage.libc_allocs",
          [rs] { return double(rs->lib.stats().libc_allocs); });
    probe("hugepage.fallback_allocs",
          [rs] { return double(rs->lib.stats().fallback_allocs); });
    hugepage::Library* lib = &rkp->lib;
    probe("hugepage.heap_bytes_mapped",
          [lib] { return double(lib->huge_heap().stats().bytes_mapped); });
    probe("hugepage.heap_bytes_live_peak",
          [lib] { return double(lib->huge_heap().stats().bytes_live_peak); });

    probe("placement.plan_decisions",
          [rs] { return double(rs->placement->stats().plans); });
    probe("placement.huge_backed",
          [rs] { return double(rs->placement->stats().huge_backed); });
    probe("placement.small_backed",
          [rs] { return double(rs->placement->stats().small_backed); });
    probe("placement.sge_plans",
          [rs] { return double(rs->placement->stats().sge_plans); });
    probe("placement.aligned_plans",
          [rs] { return double(rs->placement->stats().aligned_plans); });
    probe("placement.feedbacks",
          [rs] { return double(rs->placement->stats().feedbacks); });
  }

  if (fault_ != nullptr) {
    const fault::FaultInjector* fi = fault_.get();
    probe("fault.packets_judged",
          [fi] { return double(fi->stats().packets_judged); });
    probe("fault.drops", [fi] { return double(fi->stats().packets_dropped); });
    probe("fault.corrupts",
          [fi] { return double(fi->stats().packets_corrupted); });
    probe("fault.qp_errors_fired",
          [fi] { return double(fi->stats().qp_errors_fired); });
  }
}

void Cluster::install_sampler() {
  if (!cfg_.telemetry.enabled || cfg_.telemetry.sampling_period == 0) return;
  // Counter tracks: on each period boundary of the engine's virtual-time
  // frontier, emit every selected metric whose value changed since its
  // last sample (tracks begin at their first non-zero value).
  auto last = std::make_shared<std::vector<double>>();
  engine_.set_sampler(
      cfg_.telemetry.sampling_period, [this, last](TimePs t) {
        for (std::size_t i = 0; i < metrics_.size(); ++i) {
          const std::string_view name = metrics_.name(i);
          if (!cfg_.telemetry.categories.empty()) {
            bool hit = false;
            for (const std::string& prefix : cfg_.telemetry.categories)
              hit |= name.substr(0, prefix.size()) == prefix;
            if (!hit) continue;
          }
          if (i >= last->size()) last->resize(metrics_.size(), 0.0);
          const double v = metrics_.value_at(i);
          if (v == (*last)[i]) continue;
          (*last)[i] = v;
          tracer_.counter(std::string(name), t, v);
        }
      });
}

void Cluster::run(const std::function<void(RankEnv&)>& fn) {
  engine_.run([this, &fn](sim::Context& sc) {
    RankEnv env(*this, sc, rank(sc.rank()));
    fn(env);
  });
}

}  // namespace ibp::core
