#pragma once

// Intra-node shared-memory transport (MVAPICH-style): ranks on the same
// node exchange messages through a copy-in/copy-out channel instead of the
// HCA. One ShmChannel carries one direction of one rank pair.

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "ibp/common/types.hpp"

namespace ibp::core {

struct ShmConfig {
  double bw_bytes_per_ns = 2.5;  // copy bandwidth through the segment
  TimePs latency = ns(350);      // queue signalling latency
};

struct ShmMsg {
  std::vector<std::uint8_t> data;
  TimePs avail = 0;  // virtual time the message becomes visible
};

class ShmChannel {
 public:
  explicit ShmChannel(ShmConfig cfg) : cfg_(cfg) {}

  /// Sender-side: enqueue `data` at time `now`; returns the sender's copy
  /// cost (copy-in to the shared segment).
  TimePs push(std::vector<std::uint8_t> data, TimePs now) {
    const TimePs copy = copy_cost(data.size());
    ShmMsg msg;
    msg.avail = now + copy + cfg_.latency;
    msg.data = std::move(data);
    q_.push_back(std::move(msg));
    return copy;
  }

  /// Earliest visible message time, if any (wait predicate).
  std::optional<TimePs> next_ready() const {
    if (q_.empty()) return std::nullopt;
    return q_.front().avail;
  }

  /// Pop the head message if visible at `now`.
  std::optional<ShmMsg> pop(TimePs now) {
    if (q_.empty() || q_.front().avail > now) return std::nullopt;
    ShmMsg m = std::move(q_.front());
    q_.pop_front();
    return m;
  }

  /// Receiver-side copy-out cost for `bytes`.
  TimePs copy_cost(std::uint64_t bytes) const {
    return static_cast<TimePs>(static_cast<double>(bytes) /
                               cfg_.bw_bytes_per_ns * 1e3);
  }

  std::size_t depth() const { return q_.size(); }

 private:
  ShmConfig cfg_;
  std::deque<ShmMsg> q_;
};

}  // namespace ibp::core
