#pragma once

// The simulated cluster: nodes with physical memory, hugeTLBfs pools and
// HCAs; ranks with address spaces, CPUs and (optionally preloaded)
// hugepage libraries; full RC QP wiring between ranks on different nodes
// and shared-memory channels inside a node.
//
// This is the public entry point a downstream user builds experiments on:
//
//   core::ClusterConfig cfg;
//   cfg.hugepage_library = true;          // "LD_PRELOAD" the paper's lib
//   core::Cluster cluster(cfg);
//   cluster.run([&](core::RankEnv& env) { ... });

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ibp/common/rng.hpp"
#include "ibp/common/types.hpp"
#include "ibp/core/shm.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/cpu/memory_system.hpp"
#include "ibp/cpu/tlb.hpp"
#include "ibp/hca/adapter.hpp"
#include "ibp/hugepage/library.hpp"
#include "ibp/mem/address_space.hpp"
#include "ibp/placement/placement.hpp"
#include "ibp/platform/platform.hpp"
#include "ibp/regcache/regcache.hpp"
#include "ibp/sim/engine.hpp"
#include "ibp/sim/tracer.hpp"
#include "ibp/telemetry/registry.hpp"
#include "ibp/telemetry/reqtrace.hpp"
#include "ibp/verbs/verbs.hpp"

namespace ibp::core {

struct ClusterConfig {
  platform::PlatformConfig platform = platform::opteron_pcie_infinihost();
  int nodes = 2;
  int ranks_per_node = 4;
  std::uint64_t node_memory = 2 * kGiB;    // small-page RAM per node
  std::uint64_t hugepages_per_node = 768;  // 1.5 GB pool per node
  std::uint64_t hugetlb_fork_reserve = 2;  // kernel-side reserve
  /// Preload the paper's hugepage library (large allocations land in
  /// hugepages transparently). false = baseline (libc everywhere).
  bool hugepage_library = false;
  /// MPI-level lazy deregistration (pin-down cache).
  bool lazy_deregistration = true;
  /// Placement policy (ibp::placement registry name) every rank plans
  /// buffer placement with. "paper-default" reproduces the paper's
  /// published strategy bit-exactly; see `ibplace --list-policies`.
  std::string placement_policy = "paper-default";
  /// Per-role policy overrides: (role name, policy name) pairs installed
  /// on every rank's engine, e.g. {"rpc-ring", "paper-default"} while
  /// `placement_policy` is "adaptive". Roles not listed use
  /// `placement_policy`. Role names: see placement::role_name.
  std::vector<std::pair<std::string, std::string>> placement_role_policies;
  /// Bound on memory the pin-down cache may keep registered (0 =
  /// unlimited, the configuration the paper measured; a finite bound
  /// evicts LRU registrations and mitigates the §1 pinned-memory
  /// drawback at the price of re-registrations).
  std::uint64_t regcache_capacity_bytes = 0;
  /// The paper's OpenIB driver patch: ship native hugepage translations.
  verbs::DriverConfig driver{.hugepage_passthrough = true, .qp = {}};
  hugepage::LibraryConfig library;  // threshold / fit policy / costs
  /// Record MPI-call and user spans into Cluster::tracer() (Chrome
  /// trace-event JSON via Tracer::write_json).
  bool enable_tracing = false;
  /// Telemetry plane: with `telemetry.enabled` the cluster samples its
  /// MetricsRegistry into tracer counter tracks on `sampling_period`
  /// virtual-time cadence (categories filter by metric-name prefix) and
  /// the tracer is available even without `enable_tracing`. Off (the
  /// default), no sampling happens and runs are byte-identical to a
  /// telemetry-free build; Cluster::metrics() stays usable either way.
  telemetry::TelemetryConfig telemetry;
  /// Per-request tracing hub (ibp/telemetry/reqtrace.hpp). Off (the
  /// default), the cluster creates no hub and the serving stack is
  /// bit-inert — no wire flag, no extra state, byte-identical outputs.
  telemetry::RequestTraceConfig request_trace;
  /// Fat-tree style fabric: nodes are grouped into pods of this many
  /// nodes; cross-pod traffic shares `fabric_core_links` core links
  /// (oversubscription = pod uplink demand / core capacity). 0 disables
  /// the fabric stage (single switch, the paper's 2-node setup).
  int fabric_pod_nodes = 0;
  int fabric_core_links = 1;
  TimePs fabric_hop_latency = ns(450);
  /// Fault plan evaluated by a cluster-owned FaultInjector (seeded from
  /// `seed` unless the plan carries its own). An empty plan attaches no
  /// injector, leaving the legacy always-healthy transport untouched.
  fault::FaultPlan fault;
  std::uint64_t seed = 42;
};

class Cluster;

/// Everything one node owns.
struct Node {
  Node(const ClusterConfig& cfg, NodeId id, std::uint64_t seed)
      : id(id),
        phys(cfg.node_memory, cfg.hugepages_per_node, seed),
        hugetlbfs(&phys, cfg.hugepages_per_node, cfg.hugetlb_fork_reserve),
        adapter(id, cfg.platform.adapter) {}

  NodeId id;
  mem::PhysicalMemory phys;
  mem::HugeTlbFs hugetlbfs;
  hca::Adapter adapter;
};

/// Static per-rank state (exists before and after the run).
struct RankState {
  RankState(Node& n, const ClusterConfig& cfg, RankId id)
      : id(id),
        node(&n),
        space(&n.phys, &n.hugetlbfs),
        tlb(cfg.platform.tlb),
        memsys(cfg.platform.mem, &tlb),
        placement([&] {
          auto policy = placement::make_policy(cfg.placement_policy);
          IBP_CHECK(policy != nullptr,
                    "unknown placement policy '" << cfg.placement_policy
                    << "' (known: " << placement::known_policy_names()
                    << ")");
          placement::PolicyContext ctx;
          ctx.huge_threshold = cfg.library.threshold;
          ctx.chunk = cfg.library.huge.chunk;
          ctx.hugepages_enabled = cfg.hugepage_library;
          ctx.lazy_dereg = cfg.lazy_deregistration;
          auto engine = std::make_unique<placement::PlacementEngine>(
              std::move(policy), ctx);
          for (const auto& [role_name, policy_name] :
               cfg.placement_role_policies) {
            const auto role = placement::role_from_name(role_name);
            IBP_CHECK(role.has_value(),
                      "unknown placement role '" << role_name << "'");
            auto override_policy = placement::make_policy(policy_name);
            IBP_CHECK(override_policy != nullptr,
                      "unknown placement policy '" << policy_name
                      << "' for role '" << role_name << "' (known: "
                      << placement::known_policy_names() << ")");
            engine->set_role_policy(*role, std::move(override_policy));
          }
          return engine;
        }()),
        lib(space, n.hugetlbfs,
            [&] {
              hugepage::LibraryConfig lc = cfg.library;
              lc.enabled = cfg.hugepage_library;
              return lc;
            }(),
            placement.get()),
        rng(cfg.seed * 0x9e3779b9ull + static_cast<std::uint64_t>(id) + 1) {}

  RankId id;
  Node* node;
  mem::AddressSpace space;
  cpu::Tlb tlb;
  cpu::MemorySystem memsys;
  // The rank's placement engine; constructed before `lib`, which plans
  // its chunking through it.
  std::unique_ptr<placement::PlacementEngine> placement;
  hugepage::Library lib;
  Rng rng;
  hca::CompletionQueue send_cq;
  hca::CompletionQueue recv_cq;
  // Connectionless UD endpoint (datagram eager transport).
  hca::QueuePair* ud_qp = nullptr;
  // Wiring, indexed by peer rank. Exactly one of qp_to / shm_out is set
  // for every peer != self.
  std::vector<hca::QueuePair*> qp_to;
  std::vector<ShmChannel*> shm_out;  // this rank -> peer
  std::vector<ShmChannel*> shm_in;   // peer -> this rank
};

/// Per-rank runtime environment handed to rank programs by Cluster::run.
class RankEnv {
 public:
  RankEnv(Cluster& cluster, sim::Context& sc, RankState& st);

  RankId rank() const { return st_->id; }
  int nranks() const;
  NodeId node() const { return st_->node->id; }

  sim::Context& sim() { return *sc_; }
  RankState& state() { return *st_; }
  Cluster& cluster() { return *cluster_; }
  verbs::Context& verbs() { return vctx_; }
  regcache::RegCache& rcache() { return rcache_; }
  placement::PlacementEngine& placement() { return *st_->placement; }
  mem::AddressSpace& space() { return st_->space; }
  hugepage::Library& lib() { return st_->lib; }
  cpu::MemorySystem& memsys() { return st_->memsys; }
  Rng& rng() { return st_->rng; }

  TimePs now() const { return sc_->now(); }

  /// Allocate through the (possibly preloaded) hugepage library, charging
  /// allocator time. `role` tells the placement policy what the buffer is
  /// for; under an eager-pin plan the block is registered here and now,
  /// so no later transfer pays registration inline.
  VirtAddr alloc(std::uint64_t size,
                 placement::Role role = placement::Role::WorkloadHeap) {
    auto r = st_->lib.malloc(size, role);
    sc_->advance(r.cost);
    IBP_CHECK(r.addr != 0, "allocation failed");
    if (size > 0 &&
        rcache_.strategy() == placement::RegStrategy::EagerPin &&
        st_->lib.plan_for(size, role).registration ==
            placement::RegStrategy::EagerPin) {
      // Pre-pin: the registration stays cached (refs drop to zero), so
      // transfers over this block always hit the pin-down cache.
      rcache_.release(rcache_.acquire(r.addr, size));
    }
    return r.addr;
  }

  void dealloc(VirtAddr addr) {
    // Drop stale registrations before the block can be reused.
    rcache_.invalidate(addr, st_->lib.block_size(addr));
    sc_->advance(st_->lib.free(addr).cost);
  }

  /// Charge a sequential sweep over [va, va+len) (compute-side traffic).
  void touch_stream(VirtAddr va, std::uint64_t len) {
    sc_->advance(st_->memsys.stream(st_->space, va, len));
  }

  /// Charge `n` random accesses inside [va, va+len).
  void touch_random(VirtAddr va, std::uint64_t len, std::uint64_t n) {
    sc_->advance(st_->memsys.random_access(st_->space, va, len, n, st_->rng));
  }

  /// Charge a fused loop sweeping several operands in lockstep.
  void touch_interleaved(std::span<const cpu::MemorySystem::StreamRef> refs,
                         std::uint64_t quantum = 512) {
    sc_->advance(st_->memsys.interleaved_stream(st_->space, refs, quantum));
  }

  /// Charge `ops` arithmetic operations.
  void compute(std::uint64_t ops);

  /// Record a user span into the cluster tracer (no-op when tracing is
  /// off). Pass the span's virtual start time.
  void trace(const char* category, const char* name, TimePs start);

  template <typename T>
  T* host_ptr(VirtAddr va, std::uint64_t count = 1) {
    return st_->space.host_ptr<T>(va, count);
  }

 private:
  Cluster* cluster_;
  sim::Context* sc_;
  RankState* st_;
  verbs::Context vctx_;
  regcache::RegCache rcache_;
  // Declared after rcache_: released (final values latched into the
  // cluster registry) before the cache they read goes away.
  std::vector<telemetry::ProbeHandle> probes_;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);

  int nranks() const { return static_cast<int>(ranks_.size()); }
  int nodes() const { return static_cast<int>(nodes_.size()); }
  const ClusterConfig& config() const { return cfg_; }

  RankState& rank(RankId r) { return *ranks_.at(static_cast<std::size_t>(r)); }
  Node& node(NodeId n) { return *nodes_.at(static_cast<std::size_t>(n)); }
  sim::Engine& engine() { return engine_; }

  /// Populated when config().enable_tracing or config().telemetry.enabled
  /// asks for it; null otherwise.
  sim::Tracer* tracer() {
    return cfg_.enable_tracing || cfg_.telemetry.enabled ? &tracer_
                                                         : nullptr;
  }

  /// The cluster-wide metrics plane. Subsystems publish via probes (see
  /// ibp/telemetry/registry.hpp); always live, costs nothing unless read.
  telemetry::MetricsRegistry& metrics() { return metrics_; }

  /// The fault injector driving config().fault, or null for a healthy
  /// fabric. Shared by every adapter in the cluster.
  fault::FaultInjector* fault() { return fault_.get(); }

  /// The per-request tracing hub, or null when config().request_trace is
  /// disabled. Shared by every RpcClient/RpcServer/FabricClient built on
  /// this cluster.
  telemetry::RequestTracer* request_tracer() { return reqtrace_.get(); }

  /// Run one program on every rank (single-use, like sim::Engine).
  void run(const std::function<void(RankEnv&)>& fn);

  /// Makespan of the completed run.
  TimePs makespan() const { return engine_.makespan(); }
  TimePs rank_time(RankId r) const { return engine_.final_time(r); }

 private:
  void register_probes();
  void install_sampler();

  ClusterConfig cfg_;
  // Declared before the subsystems that publish into it, so snapshots
  // stay valid for the whole teardown.
  telemetry::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<RankState>> ranks_;
  // Ordered-pair shm channels: shm_[from][to] for same-node pairs.
  std::vector<std::vector<std::unique_ptr<ShmChannel>>> shm_;
  sim::Engine engine_;
  sim::Tracer tracer_;
  std::unique_ptr<hca::Fabric> fabric_;
  std::unique_ptr<fault::FaultInjector> fault_;
  std::unique_ptr<telemetry::RequestTracer> reqtrace_;
  // Last member: released first, latching every live probe's final value
  // while the subsystems it reads are still alive.
  std::vector<telemetry::ProbeHandle> probes_;
};

inline void RankEnv::trace(const char* category, const char* name,
                           TimePs start) {
  if (sim::Tracer* t = cluster_->tracer())
    t->add(rank(), category, name, start, now() - start);
}

}  // namespace ibp::core
