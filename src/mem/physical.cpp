#include "ibp/mem/physical.hpp"

#include <algorithm>

namespace ibp::mem {

PhysicalMemory::PhysicalMemory(std::uint64_t total_bytes,
                               std::uint64_t huge_pages, std::uint64_t seed) {
  IBP_CHECK(total_bytes % kSmallPageSize == 0,
            "small-page RAM must be 4 KB aligned");
  small_total_ = total_bytes / kSmallPageSize;
  huge_total_ = huge_pages;

  // Small frames occupy [0, total_bytes); the hugepage region sits above.
  small_free_.reserve(small_total_);
  for (std::uint64_t i = 0; i < small_total_; ++i)
    small_free_.push_back(i * kSmallPageSize);

  // Fisher–Yates shuffle so that successive allocations land on scattered
  // frames, emulating steady-state fragmentation.
  Rng rng(seed ^ 0x5eedf00dull);
  for (std::uint64_t i = small_total_; i > 1; --i) {
    const std::uint64_t j = rng.next_below(i);
    std::swap(small_free_[i - 1], small_free_[j]);
  }

  huge_base_ = align_up(total_bytes, kHugePageSize);
  huge_free_.reserve(huge_total_);
  // Push descending so that pop_back() hands out ascending, contiguous PAs.
  for (std::uint64_t i = huge_total_; i > 0; --i)
    huge_free_.push_back(huge_base_ + (i - 1) * kHugePageSize);
}

PhysAddr PhysicalMemory::alloc_small_frame() {
  IBP_CHECK(!small_free_.empty(), "out of simulated small-page memory");
  const PhysAddr pa = small_free_.back();
  small_free_.pop_back();
  return pa;
}

void PhysicalMemory::free_small_frame(PhysAddr pa) {
  IBP_CHECK(pa % kSmallPageSize == 0 && pa < small_total_ * kSmallPageSize,
            "bad small frame " << pa);
  small_free_.push_back(pa);
}

PhysAddr PhysicalMemory::alloc_huge_frame() {
  IBP_CHECK(!huge_free_.empty(), "out of simulated hugepage memory");
  const PhysAddr pa = huge_free_.back();
  huge_free_.pop_back();
  return pa;
}

void PhysicalMemory::free_huge_frame(PhysAddr pa) {
  IBP_CHECK(pa >= huge_base_ && (pa - huge_base_) % kHugePageSize == 0 &&
                (pa - huge_base_) / kHugePageSize < huge_total_,
            "bad huge frame " << pa);
  huge_free_.push_back(pa);
}

}  // namespace ibp::mem
