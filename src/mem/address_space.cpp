#include "ibp/mem/address_space.hpp"

namespace ibp::mem {

AddressSpace::~AddressSpace() {
  // Return frames; pins are intentionally not enforced at teardown so a
  // failing test can destroy the world without cascading errors.
  for (auto& [base, m] : mappings_) {
    if (m->kind == PageKind::Huge && hugetlbfs_ != nullptr) {
      hugetlbfs_->release(m->frames);
    } else {
      for (PhysAddr pa : m->frames) {
        if (m->kind == PageKind::Small)
          phys_->free_small_frame(pa);
        else
          phys_->free_huge_frame(pa);
      }
    }
  }
}

Mapping& AddressSpace::map(std::uint64_t length, PageKind kind) {
  IBP_CHECK(length > 0, "zero-length mapping");
  const std::uint64_t psz = page_size_of(kind);
  const std::uint64_t rounded = align_up(length, psz);
  const std::uint64_t npages = rounded / psz;

  auto m = std::make_unique<Mapping>();
  m->length = rounded;
  m->kind = kind;
  m->pins.assign(npages, 0);
  m->backing.assign(rounded, 0);

  if (kind == PageKind::Small) {
    m->va_base = next_small_;
    next_small_ += rounded + psz;  // guard page gap
    m->frames.reserve(npages);
    for (std::uint64_t i = 0; i < npages; ++i)
      m->frames.push_back(phys_->alloc_small_frame());
  } else {
    IBP_CHECK(hugetlbfs_ != nullptr,
              "hugepage mapping without a hugeTLBfs mount");
    m->va_base = next_huge_;
    next_huge_ += rounded + psz;
    m->frames = hugetlbfs_->acquire(npages);
  }

  auto [it, inserted] = mappings_.emplace(m->va_base, std::move(m));
  IBP_CHECK(inserted);
  return *it->second;
}

void AddressSpace::unmap(VirtAddr va_base) {
  auto it = mappings_.find(va_base);
  IBP_CHECK(it != mappings_.end(), "unmap of unknown mapping " << va_base);
  Mapping& m = *it->second;
  for (std::uint32_t p : m.pins)
    IBP_CHECK(p == 0, "unmap of a pinned mapping va=" << va_base
        << " len=" << (m.npages() * m.page_size()));
  if (m.kind == PageKind::Huge) {
    hugetlbfs_->release(m.frames);
  } else {
    for (PhysAddr pa : m.frames) phys_->free_small_frame(pa);
  }
  mappings_.erase(it);
}

Mapping* AddressSpace::find(VirtAddr va, std::uint64_t len) {
  auto it = mappings_.upper_bound(va);
  if (it == mappings_.begin()) return nullptr;
  --it;
  Mapping* m = it->second.get();
  return m->contains(va, len) ? m : nullptr;
}

const Mapping* AddressSpace::find(VirtAddr va, std::uint64_t len) const {
  return const_cast<AddressSpace*>(this)->find(va, len);
}

Translation AddressSpace::translate(VirtAddr va) const {
  const Mapping* m = find(va);
  IBP_CHECK(m != nullptr, "translate of unmapped address " << std::hex << va);
  const std::uint64_t psz = m->page_size();
  const std::uint64_t page = (va - m->va_base) / psz;
  const std::uint64_t off = (va - m->va_base) % psz;
  Translation t;
  t.page_pa = m->frames[page];
  t.pa = t.page_pa + off;
  t.page_size = psz;
  t.page_va = m->va_base + page * psz;
  return t;
}

std::uint64_t AddressSpace::pin(VirtAddr va, std::uint64_t len) {
  Mapping* m = find(va, len);
  IBP_CHECK(m != nullptr, "pin of unmapped range");
  const std::uint64_t psz = m->page_size();
  const std::uint64_t first = (va - m->va_base) / psz;
  const std::uint64_t last = (va + len - 1 - m->va_base) / psz;
  for (std::uint64_t p = first; p <= last; ++p) {
    if (m->pins[p]++ == 0) ++pinned_pages_;
  }
  return last - first + 1;
}

std::uint64_t AddressSpace::unpin(VirtAddr va, std::uint64_t len) {
  Mapping* m = find(va, len);
  IBP_CHECK(m != nullptr, "unpin of unmapped range");
  const std::uint64_t psz = m->page_size();
  const std::uint64_t first = (va - m->va_base) / psz;
  const std::uint64_t last = (va + len - 1 - m->va_base) / psz;
  for (std::uint64_t p = first; p <= last; ++p) {
    IBP_CHECK(m->pins[p] > 0, "unpin of unpinned page");
    if (--m->pins[p] == 0) --pinned_pages_;
  }
  return last - first + 1;
}

std::span<std::uint8_t> AddressSpace::host_span(VirtAddr va,
                                                std::uint64_t len) {
  Mapping* m = find(va, len);
  IBP_CHECK(m != nullptr, "host_span of unmapped range va=" << std::hex << va
                                                            << " len=" << std::dec << len);
  return {m->backing.data() + (va - m->va_base), len};
}

std::span<const std::uint8_t> AddressSpace::host_span(
    VirtAddr va, std::uint64_t len) const {
  return const_cast<AddressSpace*>(this)->host_span(va, len);
}

std::uint64_t AddressSpace::mapped_bytes(PageKind kind) const {
  std::uint64_t total = 0;
  for (const auto& [base, m] : mappings_)
    if (m->kind == kind) total += m->length;
  return total;
}

Mapping& AddressSpace::mapping_at(VirtAddr va_base) {
  auto it = mappings_.find(va_base);
  IBP_CHECK(it != mappings_.end());
  return *it->second;
}

std::vector<PhysAddr> HugeTlbFs::acquire(std::uint64_t n) {
  IBP_CHECK(n <= available(),
            "hugeTLBfs pool exhausted: want " << n << ", available "
                                              << available());
  std::vector<PhysAddr> frames;
  frames.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i)
    frames.push_back(phys_->alloc_huge_frame());
  used_ += n;
  return frames;
}

void HugeTlbFs::release(const std::vector<PhysAddr>& frames) {
  IBP_CHECK(frames.size() <= used_);
  for (PhysAddr pa : frames) phys_->free_huge_frame(pa);
  used_ -= frames.size();
}

}  // namespace ibp::mem
