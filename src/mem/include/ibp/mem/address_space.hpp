#pragma once

// Per-rank simulated virtual address space.
//
// A mapping is a contiguous virtual range backed by frames of one page
// size. Host backing for each mapping is a single contiguous allocation so
// workloads get real pointers for computation, while the translation model
// (page tables, pinning, NIC translations) operates on the simulated
// frames. Small and huge mappings live in disjoint virtual regions so a
// bare virtual address identifies its page size.

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"
#include "ibp/mem/physical.hpp"

namespace ibp::mem {

enum class PageKind : std::uint8_t { Small, Huge };

constexpr std::uint64_t page_size_of(PageKind k) {
  return k == PageKind::Small ? kSmallPageSize : kHugePageSize;
}

/// Virtual region bases. Anything at/above kHugeRegionBase is hugepage
/// backed; the gap makes accidental cross-mapping arithmetic loud.
inline constexpr VirtAddr kSmallRegionBase = 0x0000'1000'0000'0000ull;
inline constexpr VirtAddr kHugeRegionBase = 0x0000'2000'0000'0000ull;

struct Mapping {
  VirtAddr va_base = 0;
  std::uint64_t length = 0;  // bytes, multiple of page size
  PageKind kind = PageKind::Small;
  std::vector<PhysAddr> frames;      // one per page
  std::vector<std::uint32_t> pins;   // pin count per page
  std::vector<std::uint8_t> backing; // host data, contiguous

  std::uint64_t page_size() const { return page_size_of(kind); }
  std::uint64_t npages() const { return frames.size(); }
  bool contains(VirtAddr va, std::uint64_t len) const {
    return va >= va_base && len <= length && va - va_base <= length - len;
  }
};

/// Result of a single-address translation.
struct Translation {
  PhysAddr pa = 0;
  std::uint64_t page_size = 0;
  PhysAddr page_pa = 0;   // base PA of the containing page
  VirtAddr page_va = 0;   // base VA of the containing page
};

class HugeTlbFs;

class AddressSpace {
 public:
  /// `hugetlbfs` may be null for spaces that never map hugepages.
  AddressSpace(PhysicalMemory* phys, HugeTlbFs* hugetlbfs)
      : phys_(phys), hugetlbfs_(hugetlbfs) {
    IBP_CHECK(phys != nullptr);
  }

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;
  ~AddressSpace();

  /// Map `length` bytes (rounded up to the page size). Throws SimError if
  /// physical (or hugeTLBfs) memory is exhausted.
  Mapping& map(std::uint64_t length, PageKind kind);

  /// Unmap the mapping starting exactly at `va_base`. All pages must be
  /// unpinned.
  void unmap(VirtAddr va_base);

  /// Mapping containing [va, va+len), or null.
  Mapping* find(VirtAddr va, std::uint64_t len = 1);
  const Mapping* find(VirtAddr va, std::uint64_t len = 1) const;

  /// Translate one virtual address. Throws on unmapped addresses.
  Translation translate(VirtAddr va) const;

  /// Pin/unpin every page covering [va, va+len) (registration model).
  /// Returns the number of pages affected.
  std::uint64_t pin(VirtAddr va, std::uint64_t len);
  std::uint64_t unpin(VirtAddr va, std::uint64_t len);

  /// Host bytes for [va, va+len); the range must lie in one mapping.
  std::span<std::uint8_t> host_span(VirtAddr va, std::uint64_t len);
  std::span<const std::uint8_t> host_span(VirtAddr va,
                                          std::uint64_t len) const;

  /// Typed host pointer at `va` (convenience for workloads).
  template <typename T>
  T* host_ptr(VirtAddr va, std::uint64_t count = 1) {
    auto s = host_span(va, sizeof(T) * count);
    return reinterpret_cast<T*>(s.data());
  }

  std::uint64_t mapped_bytes(PageKind kind) const;
  std::uint64_t mapping_count() const { return mappings_.size(); }
  std::uint64_t pinned_pages() const { return pinned_pages_; }

 private:
  Mapping& mapping_at(VirtAddr va_base);

  PhysicalMemory* phys_;
  HugeTlbFs* hugetlbfs_;
  VirtAddr next_small_ = kSmallRegionBase;
  VirtAddr next_huge_ = kHugeRegionBase;
  std::uint64_t pinned_pages_ = 0;
  // Keyed by va_base; mappings never overlap.
  std::map<VirtAddr, std::unique_ptr<Mapping>> mappings_;
};

/// Global (per-node) hugepage pool, mirroring Linux hugeTLBfs accounting:
/// a fixed number of hugepages is reserved at "boot"; mappings draw from
/// the pool and a configurable reserve is kept back for fork/COW headroom.
class HugeTlbFs {
 public:
  HugeTlbFs(PhysicalMemory* phys, std::uint64_t pool_pages,
            std::uint64_t fork_reserve_pages)
      : phys_(phys),
        pool_pages_(pool_pages),
        fork_reserve_(fork_reserve_pages) {
    IBP_CHECK(phys != nullptr);
    IBP_CHECK(pool_pages <= phys->huge_frames_total(),
              "hugeTLBfs pool larger than physical hugepage region");
    IBP_CHECK(fork_reserve_pages <= pool_pages,
              "fork reserve exceeds the pool");
  }

  /// Pages a new mapping may still draw (pool minus used minus reserve).
  std::uint64_t available() const {
    const std::uint64_t committed = used_ + fork_reserve_;
    return committed >= pool_pages_ ? 0 : pool_pages_ - committed;
  }

  std::uint64_t used() const { return used_; }
  std::uint64_t pool_size() const { return pool_pages_; }
  std::uint64_t fork_reserve() const { return fork_reserve_; }

  /// Draw `n` hugepage frames. Throws SimError if it would eat into the
  /// fork reserve.
  std::vector<PhysAddr> acquire(std::uint64_t n);
  void release(const std::vector<PhysAddr>& frames);

 private:
  PhysicalMemory* phys_;
  std::uint64_t pool_pages_;
  std::uint64_t fork_reserve_;
  std::uint64_t used_ = 0;
};

}  // namespace ibp::mem
