#pragma once

// Simulated physical memory.
//
// The simulator distinguishes *simulated physical addresses* (what page
// tables, the NIC's translation table, and the DMA engine see) from *host
// backing memory* (real bytes the workloads compute on). Simulated PAs
// drive the timing/translation model; host backing carries data.
//
// Small (4 KB) frames are handed out in a pseudo-randomly permuted order to
// emulate the frame fragmentation of a long-running OS: virtually
// contiguous small pages are physically scattered. Huge (2 MB) frames come
// from a physically contiguous reserved region, exactly like Linux
// hugeTLBfs boot-time reservation. This difference is what the CPU
// prefetcher and NIC ATT models key on.

#include <cstdint>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/rng.hpp"
#include "ibp/common/types.hpp"

namespace ibp::mem {

class PhysicalMemory {
 public:
  /// `total_bytes` of small-page RAM plus a dedicated hugepage region of
  /// `huge_pages` 2 MB frames. `seed` drives the fragmentation permutation.
  PhysicalMemory(std::uint64_t total_bytes, std::uint64_t huge_pages,
                 std::uint64_t seed);

  /// Allocate one 4 KB frame; returns its simulated physical address.
  PhysAddr alloc_small_frame();
  void free_small_frame(PhysAddr pa);

  /// Allocate one 2 MB frame (physically contiguous, 2 MB aligned).
  PhysAddr alloc_huge_frame();
  void free_huge_frame(PhysAddr pa);

  std::uint64_t small_frames_total() const { return small_total_; }
  std::uint64_t small_frames_free() const { return small_free_.size(); }
  std::uint64_t huge_frames_total() const { return huge_total_; }
  std::uint64_t huge_frames_free() const { return huge_free_.size(); }

  /// Base of the hugepage region (useful for tests asserting contiguity).
  PhysAddr huge_region_base() const { return huge_base_; }

 private:
  std::uint64_t small_total_;
  std::uint64_t huge_total_;
  PhysAddr huge_base_;
  std::vector<PhysAddr> small_free_;  // permuted; popped from the back
  std::vector<PhysAddr> huge_free_;   // ascending; popped from the back
};

}  // namespace ibp::mem
