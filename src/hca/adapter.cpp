#include "ibp/hca/adapter.hpp"

#include <algorithm>
#include <cstring>
#include <initializer_list>

namespace ibp::hca {

// ---------------------------------------------------------------------------
// Memory registration

Adapter::RegResult Adapter::reg_mr(mem::AddressSpace& space, VirtAddr addr,
                                   std::uint64_t len,
                                   std::uint64_t trans_page_size) {
  IBP_CHECK(len > 0, "cannot register an empty region");
  const mem::Mapping* m = space.find(addr, len);
  IBP_CHECK(m != nullptr, "reg_mr over unmapped range");
  const std::uint64_t os_page = m->page_size();
  IBP_CHECK(trans_page_size == kSmallPageSize || trans_page_size == os_page,
            "translation granularity must be 4 KB or the native page size");

  // Step 1 of the paper's registration pipeline: pin every OS page.
  const std::uint64_t npages = space.pin(addr, len);

  auto mr = std::make_unique<MemoryRegion>();
  mr->lkey = next_key_++;
  mr->addr = addr;
  mr->length = len;
  mr->space = &space;
  mr->os_page_size = os_page;
  mr->trans_page_size = trans_page_size;
  mr->npages = npages;
  // Steps 2+3: translate at the shipped granularity and push to the NIC.
  mr->ntrans = pages_spanned(addr, len, trans_page_size);

  const TimePs cost =
      cfg_.reg_base + npages * cfg_.pin_per_page +
      mr->ntrans * (cfg_.trans_build_per_entry + cfg_.trans_ship_per_entry);

  stats_.mr_registered += 1;
  stats_.pages_pinned += npages;
  stats_.translations_shipped += mr->ntrans;
  stats_.reg_time_total += cost;

  const MemoryRegion* raw = mr.get();
  mrs_.emplace(raw->lkey, std::move(mr));
  return {raw, cost};
}

TimePs Adapter::dereg_mr(std::uint32_t lkey) {
  auto it = mrs_.find(lkey);
  IBP_CHECK(it != mrs_.end(), "dereg of unknown lkey " << lkey);
  MemoryRegion& mr = *it->second;
  mr.space->unpin(mr.addr, mr.length);
  const TimePs cost = cfg_.dereg_base + mr.npages * cfg_.unpin_per_page;
  stats_.mr_deregistered += 1;
  mrs_.erase(it);
  return cost;
}

const MemoryRegion* Adapter::find_mr(std::uint32_t key) const {
  auto it = mrs_.find(key);
  return it == mrs_.end() ? nullptr : it->second.get();
}

QueuePair& Adapter::create_qp(CompletionQueue* send_cq,
                              CompletionQueue* recv_cq, QpType type) {
  IBP_CHECK(send_cq != nullptr && recv_cq != nullptr);
  qps_.emplace_back(std::unique_ptr<QueuePair>(
      new QueuePair(this, next_qp_++, send_cq, recv_cq, type)));
  return *qps_.back();
}

// ---------------------------------------------------------------------------
// Cost helpers

std::vector<const MemoryRegion*> Adapter::validate_sges(
    const std::vector<Sge>& sges) {
  std::vector<const MemoryRegion*> mrs;
  mrs.reserve(sges.size());
  for (const auto& s : sges) {
    const MemoryRegion* mr = find_mr(s.lkey);
    IBP_CHECK(mr != nullptr, "SGE references unknown lkey " << s.lkey);
    IBP_CHECK(s.length == 0 || mr->contains(s.addr, s.length),
              "SGE outside its memory region");
    mrs.push_back(mr);
  }
  return mrs;
}

Adapter::DmaCost Adapter::dma_sge_cost(const MemoryRegion& mr, VirtAddr addr,
                                       std::uint32_t len, TimePs now) {
  DmaCost cost;
  if (len == 0) return cost;

  // Bus-line reads: a buffer shifted inside its line spans extra lines,
  // and reads straddling a burst boundary pay a reopen penalty. This is
  // the mechanism behind the paper's Figure 4 offset sensitivity.
  const std::uint64_t line = cfg_.bus_line;
  const std::uint64_t lines = (addr % line + len + line - 1) / line;
  cost.stream += lines * cfg_.dma_per_line;
  const std::uint64_t burst = cfg_.bus_burst;
  const std::uint64_t crossings = (addr + len - 1) / burst - addr / burst;
  cost.stalls += crossings * cfg_.burst_cross_penalty;

  // ATT: every distinct translation entry the transfer touches. During an
  // injected miss storm the cache is being thrashed by a competing agent:
  // every lookup is charged as a miss and bypasses the LRU (its resident
  // entries are stale by the time the storm passes anyway).
  const bool storm = fault_ != nullptr && fault_->att_storm_active(node_, now);
  const std::uint64_t first =
      (align_down(addr, mr.trans_page_size) -
       align_down(mr.addr, mr.trans_page_size)) /
      mr.trans_page_size;
  const std::uint64_t count = pages_spanned(addr, len, mr.trans_page_size);
  if (storm) {
    stats_.att_misses += count;
    stats_.storm_att_misses += count;
    cost.stalls += count * cfg_.att_miss;
    return cost;
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(mr.lkey) << 32) | (first + i);
    if (att_.touch(key)) {
      ++stats_.att_hits;
      cost.stalls += cfg_.att_lookup;
    } else {
      ++stats_.att_misses;
      cost.stalls += cfg_.att_miss;
    }
  }
  return cost;
}

TimePs Adapter::wire_time(std::uint64_t bytes) const {
  const std::uint64_t packets = std::max<std::uint64_t>(
      1, div_ceil(bytes, cfg_.mtu));
  return static_cast<TimePs>(static_cast<double>(bytes) /
                             cfg_.link_bw_bytes_per_ns * 1e3) +
         packets * cfg_.pkt_overhead;
}

TimePs Adapter::mtu_time() const {
  return static_cast<TimePs>(static_cast<double>(cfg_.mtu) /
                             cfg_.link_bw_bytes_per_ns * 1e3) +
         cfg_.pkt_overhead;
}

namespace {
TimePs acquire_lane(TimePs ready, TimePs duration, bool ctrl, TimePs quantum,
                    TimePs& bulk_busy, TimePs& ctrl_busy) {
  if (ctrl) {
    TimePs start = std::max(ready, ctrl_busy);
    // VL arbitration: wait out at most one in-flight packet of bulk data.
    if (bulk_busy > start) start += quantum;
    ctrl_busy = start + duration;
    // Interleaved control traffic steals bulk bandwidth.
    if (bulk_busy > start) bulk_busy += duration;
    return start + duration;
  }
  const TimePs start = std::max(ready, bulk_busy);
  bulk_busy = start + duration;
  return bulk_busy;
}
}  // namespace

TimePs Adapter::acquire_tx(TimePs ready, TimePs duration, bool ctrl) {
  return acquire_lane(ready, duration, ctrl, mtu_time(), tx_bulk_busy_,
                      tx_ctrl_busy_);
}

TimePs Adapter::acquire_rx(TimePs first_byte, TimePs duration, bool ctrl) {
  return acquire_lane(first_byte, duration, ctrl, mtu_time(), rx_bulk_busy_,
                      rx_ctrl_busy_);
}

// ---------------------------------------------------------------------------
// QueuePair — reliability machinery
//
// All of this is inert unless a fault injector is attached to the posting
// adapter: a healthy fabric never consults the injector, so the legacy
// timing model (and every existing trace) is reproduced bit-exactly.

CqeType QueuePair::send_cqe_type(Opcode op) {
  switch (op) {
    case Opcode::Send: return CqeType::SendComplete;
    case Opcode::RdmaWrite: return CqeType::RdmaWriteComplete;
    case Opcode::RdmaRead: return CqeType::RdmaReadComplete;
    case Opcode::AtomicFetchAdd:
    case Opcode::AtomicCmpSwap: return CqeType::AtomicComplete;
  }
  return CqeType::SendComplete;
}

TimePs QueuePair::retransmit_backoff(std::uint32_t attempt) const {
  // Exponential backoff, capped at 16x the base timeout (IB's timeout
  // field is similarly bounded in practice).
  return attrs_.retransmit_timeout << std::min<std::uint32_t>(attempt, 4);
}

// Walk the packet train of one transfer through the injector. Every lost
// (dropped or ICRC-corrupted) packet costs the sender one timeout at the
// current backoff level plus a resend; a packet that stays lost after
// retry_cnt resends is fatal. The whole train is judged inside the posting
// rank's turn — consistent with the synchronous timing model, the lane
// stays reserved across the timeouts (an approximation that overcharges
// neighbours only while a link is actively lossy).
QueuePair::LossModel QueuePair::judge_packets(std::uint64_t npkts,
                                              TimePs start, NodeId src_node,
                                              NodeId dst_node) {
  LossModel out;
  fault::FaultInjector* inj = adapter_->fault_;
  if (inj == nullptr) return out;
  const TimePs pkt = adapter_->mtu_time();
  TimePs t = start;
  for (std::uint64_t i = 0; i < npkts; ++i) {
    for (std::uint32_t attempt = 0;; ++attempt) {
      const fault::PacketVerdict v = inj->judge_packet(src_node, dst_node, t);
      if (v == fault::PacketVerdict::Deliver) break;
      v == fault::PacketVerdict::Drop ? ++out.dropped : ++out.corrupted;
      if (attempt >= attrs_.retry_cnt) {
        out.fatal = true;
        out.fail_time = t + retransmit_backoff(attempt);
        return out;
      }
      const TimePs wait = retransmit_backoff(attempt) + pkt;
      out.extra += wait;
      t += wait;
      ++out.retransmits;
      inj->note("retransmit", src_node, t);
    }
    t += pkt;
  }
  return out;
}

void QueuePair::account_loss(const LossModel& loss) {
  qp_stats_.retransmits += loss.retransmits;
  qp_stats_.pkts_dropped += loss.dropped;
  qp_stats_.pkts_corrupted += loss.corrupted;
  AdapterStats& s = adapter_->stats_;
  s.retransmits += loss.retransmits;
  s.pkts_dropped += loss.dropped;
  s.pkts_corrupted += loss.corrupted;
}

void QueuePair::check_injected_error(TimePs now) {
  if (state_ == QpState::Ready && adapter_->fault_ != nullptr &&
      adapter_->fault_->qp_error_due(adapter_->node_, qp_num_, now))
    enter_error(now);
}

void QueuePair::enter_error(TimePs now) {
  if (state_ == QpState::Error) return;
  state_ = QpState::Error;
  ++adapter_->stats_.qp_errors;
  if (adapter_->fault_ != nullptr)
    adapter_->fault_->note("qp_error", adapter_->node_, now);
  const TimePs ready = now + adapter_->cfg_.cqe_write;
  for (const auto& pr : recv_queue_) {
    Cqe c;
    c.wr_id = pr.wr.wr_id;
    c.type = CqeType::RecvComplete;
    c.status = WcStatus::WorkRequestFlushed;
    c.qp_num = qp_num_;
    c.ready_time = ready;
    recv_cq_->push(c);
  }
  recv_queue_.clear();
  // Queued inbound messages whose senders track an RNR deadline keep that
  // deadline: a post-reset receive can still rescue them. Senders with an
  // unbounded RNR budget would wait on a dead QP forever — fail them like
  // an exhausted retry instead of hanging the engine.
  for (auto it = inbound_.begin(); it != inbound_.end();) {
    if (it->src_qp != nullptr && !it->rnr_cqe_scheduled) {
      Cqe c;
      c.wr_id = it->send_wr_id;
      c.type = CqeType::SendComplete;
      c.status = WcStatus::RetryExceeded;
      c.qp_num = it->src_qp->qp_num_;
      c.ready_time = ready;
      it->src_qp->send_cq_->push(c);
      it->src_qp->enter_error(now);
      it = inbound_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---------------------------------------------------------------------------
// QueuePair

TimePs QueuePair::post_send(const SendWr& wr, TimePs now) {
  check_injected_error(now);
  if (state_ == QpState::Error) {
    // Error-state QPs complete every new WR immediately as flushed.
    Cqe cqe;
    cqe.wr_id = wr.wr_id;
    cqe.type = send_cqe_type(wr.opcode);
    cqe.status = WcStatus::WorkRequestFlushed;
    cqe.qp_num = qp_num_;
    cqe.ready_time = now + adapter_->cfg_.cqe_write;
    send_cq_->push(cqe);
    return adapter_->cfg_.post_base;
  }
  QueuePair* dst = peer_;
  if (type_ == QpType::UD) {
    // Connectionless: Send only, one MTU max, destination per WR.
    IBP_CHECK(wr.opcode == Opcode::Send, "UD supports Send only");
    IBP_CHECK(wr.ud_dest != nullptr && wr.ud_dest->type_ == QpType::UD,
              "UD send needs a UD destination");
    dst = wr.ud_dest;
    IBP_CHECK(wr.total_length() <= adapter_->cfg_.mtu,
              "UD datagrams are limited to one MTU");
  } else {
    IBP_CHECK(peer_ != nullptr, "post_send on an unconnected QP");
  }
  if (wr.opcode == Opcode::RdmaRead) return post_rdma_read(wr, now);
  if (wr.opcode == Opcode::AtomicFetchAdd ||
      wr.opcode == Opcode::AtomicCmpSwap)
    return post_atomic(wr, now);
  Adapter& hca = *adapter_;
  const AdapterConfig& cfg = hca.cfg_;
  const auto mrs = hca.validate_sges(wr.sges);
  const std::uint64_t bytes = wr.total_length();
  const bool inline_post = wr.inline_data;
  IBP_CHECK(!inline_post || bytes <= cfg.inline_max,
            "inline WR of " << bytes << " bytes exceeds inline_max "
                            << cfg.inline_max);

  // CPU side: build the WQE, ring the doorbell. Roughly constant; each
  // extra SGE adds a small increment (paper §4: 128 SGEs ≈ 3× one SGE).
  // Inline data is copied into the WQE here, at a per-byte cost.
  const std::uint64_t nsges = std::max<std::size_t>(wr.sges.size(), 1);
  TimePs cpu_cost = cfg.post_base + (nsges - 1) * cfg.post_per_sge;
  if (inline_post) cpu_cost += bytes * cfg.post_inline_per_byte;

  // NIC side: fetch the WQE, set up one DMA descriptor per SGE, then
  // gather the payload. Payload gather pipelines with wire streaming, so
  // the transfer takes max(dma, wire). An inline WR carries its payload
  // in the WQE itself: no descriptors, no gather, no sender-side ATT.
  const TimePs nic_start = std::max(now + cpu_cost, nic_busy_until_);
  TimePs dma = 0;
  if (!inline_post)
    for (std::size_t i = 0; i < wr.sges.size(); ++i)
      dma += hca.dma_sge_cost(*mrs[i], wr.sges[i].addr, wr.sges[i].length,
                              nic_start)
                 .total();
  const TimePs nic_proc =
      cfg.wqe_fetch + (inline_post ? 0 : wr.sges.size() * cfg.dma_setup);

  // One-sided placement also runs the *remote* DMA engine (bus writes +
  // ATT traffic on the receiving adapter); it pipelines with the wire the
  // same way the local gather does.
  TimePs remote_dma = 0;
  Adapter& rhca = *dst->adapter_;
  const MemoryRegion* rmr = nullptr;
  if (wr.opcode == Opcode::RdmaWrite) {
    rmr = rhca.find_mr(wr.rkey);
    IBP_CHECK(rmr != nullptr, "RDMA write with unknown rkey " << wr.rkey);
    IBP_CHECK(bytes == 0 || rmr->contains(wr.remote_addr, bytes),
              "RDMA write outside the remote region");
    if (bytes != 0)
      remote_dma = rhca.dma_sge_cost(*rmr, wr.remote_addr,
                                     static_cast<std::uint32_t>(bytes),
                                     nic_start)
                       .total();
  }

  // Multi-packet transfers pipeline payload gather, wire streaming and
  // remote placement; a single-packet message runs them back to back.
  TimePs transfer =
      bytes > cfg.mtu
          ? std::max({dma, hca.wire_time(bytes), remote_dma})
          : dma + hca.wire_time(bytes) + remote_dma;

  // RC reliability: judge the packet train against the fault plan. Lost
  // packets stretch the transfer by their timeout + resend; an exhausted
  // per-packet retry budget fails the WR and errors the QP instead of
  // delivering anything.
  const bool reliable = type_ == QpType::RC && hca.fault_ != nullptr;
  if (reliable) {
    const std::uint64_t npkts =
        std::max<std::uint64_t>(1, div_ceil(bytes, cfg.mtu));
    const LossModel loss =
        judge_packets(npkts, nic_start + nic_proc, hca.node_, rhca.node_);
    account_loss(loss);
    if (loss.fatal) {
      nic_busy_until_ = loss.fail_time;
      Cqe cqe;
      cqe.wr_id = wr.wr_id;
      cqe.type = send_cqe_type(wr.opcode);
      cqe.status = WcStatus::RetryExceeded;
      cqe.qp_num = qp_num_;
      cqe.ready_time = loss.fail_time + cfg.cqe_write;
      send_cq_->push(cqe);
      enter_error(loss.fail_time);
      return cpu_cost;
    }
    transfer += loss.extra;
  }

  const bool ctrl = bytes <= cfg.mtu;
  const TimePs tx_end = hca.acquire_tx(nic_start + nic_proc, transfer, ctrl);
  nic_busy_until_ = tx_end;

  // Stage payload bytes (gather from sender memory now; the sender may
  // reuse its buffer after polling the completion).
  StagedMsg msg;
  msg.data.reserve(bytes);
  for (std::size_t i = 0; i < wr.sges.size(); ++i) {
    const auto& s = wr.sges[i];
    if (s.length == 0) continue;
    auto src = mrs[i]->space->host_span(s.addr, s.length);
    msg.data.insert(msg.data.end(), src.begin(), src.end());
  }
  msg.has_imm = wr.has_imm;
  msg.imm = wr.imm;

  TimePs leaf_out = tx_end;
  TimePs extra_latency = cfg.wire_latency;
  if (hca.fabric_ != nullptr && hca.fabric_ == rhca.fabric_ &&
      hca.pod_ != rhca.pod_) {
    // Cross-pod: the transfer also occupies a shared core link.
    leaf_out = hca.fabric_->traverse(tx_end - transfer, transfer, ctrl);
    extra_latency += hca.fabric_->hop_latency();
  }
  const TimePs first_byte = leaf_out - transfer + extra_latency;
  const TimePs arrival = rhca.acquire_rx(first_byte, transfer, ctrl);
  msg.arrival = arrival;

  hca.stats_.bytes_tx += bytes;

  // UD is unreliable: a lost datagram simply never arrives — no
  // retransmission, and the sender's "on the wire" CQE is unaffected.
  bool ud_lost = false;
  if (type_ == QpType::UD && hca.fault_ != nullptr) {
    const fault::PacketVerdict v =
        hca.fault_->judge_packet(hca.node_, rhca.node_, nic_start + nic_proc);
    if (v != fault::PacketVerdict::Deliver) {
      ud_lost = true;
      v == fault::PacketVerdict::Drop ? ++qp_stats_.pkts_dropped
                                      : ++qp_stats_.pkts_corrupted;
      v == fault::PacketVerdict::Drop ? ++hca.stats_.pkts_dropped
                                      : ++hca.stats_.pkts_corrupted;
    }
  }

  // Reliable Send completions are ACK-gated: the CQE is generated at match
  // time (try_match), after any RNR backoff the receiver imposes.
  const bool defer_cqe = reliable && wr.opcode == Opcode::Send;
  if (defer_cqe) {
    msg.src_qp = this;
    msg.send_wr_id = wr.wr_id;
    // Retries fire at arrival + k*rnr_timeout for k = 1..rnr_retry; a
    // receive posted by the last retry rescues the message.
    if (attrs_.rnr_retry < 7)  // 7 = retry forever (IB convention)
      msg.rnr_deadline = msg.arrival + static_cast<TimePs>(attrs_.rnr_retry) *
                                           attrs_.rnr_timeout;
  }

  if (wr.opcode == Opcode::Send) {
    hca.stats_.sends_posted += 1;
    if (!ud_lost) dst->deliver(std::move(msg));
  } else {
    hca.stats_.rdma_writes_posted += 1;
    if (bytes != 0) {
      auto placed = rmr->space->host_span(wr.remote_addr, bytes);
      std::copy(msg.data.begin(), msg.data.end(), placed.begin());
    }
    // A monitored target learns when the write becomes visible in virtual
    // time (fatally lost writes return above: no bytes, no event).
    if (rmr->monitor != nullptr)
      rmr->monitor->push({wr.remote_addr, static_cast<std::uint32_t>(bytes),
                          wr.has_imm, wr.imm, msg.arrival});
    if (wr.has_imm) {
      // Write-with-immediate: the payload is already placed; a posted
      // receive at the peer is consumed to surface the immediate.
      msg.write_imm = true;
      msg.write_len = static_cast<std::uint32_t>(bytes);
      msg.data.clear();
      dst->deliver(std::move(msg));
    }
  }

  // RC send completion is visible after the remote HCA acknowledged; UD
  // is fire-and-forget — the CQE means "on the wire", no ACK round.
  if (!defer_cqe) {
    Cqe cqe;
    cqe.wr_id = wr.wr_id;
    cqe.type = wr.opcode == Opcode::Send ? CqeType::SendComplete
                                         : CqeType::RdmaWriteComplete;
    cqe.byte_len = static_cast<std::uint32_t>(bytes);
    cqe.qp_num = qp_num_;
    cqe.ready_time = type_ == QpType::UD
                         ? tx_end + cfg.cqe_write
                         : msg.arrival + cfg.ack_latency + cfg.cqe_write;
    send_cq_->push(cqe);
  }

  return cpu_cost;
}

TimePs QueuePair::post_rdma_read(const SendWr& wr, TimePs now) {
  Adapter& hca = *adapter_;
  const AdapterConfig& cfg = hca.cfg_;
  Adapter& rhca = *peer_->adapter_;
  const auto mrs = hca.validate_sges(wr.sges);  // local *destination* SGEs
  const std::uint64_t bytes = wr.total_length();

  const MemoryRegion* rmr = rhca.find_mr(wr.rkey);
  IBP_CHECK(rmr != nullptr, "RDMA read with unknown rkey " << wr.rkey);
  IBP_CHECK(bytes == 0 || rmr->contains(wr.remote_addr, bytes),
            "RDMA read outside the remote region");

  const std::uint64_t nsges = std::max<std::size_t>(wr.sges.size(), 1);
  const TimePs cpu_cost = cfg.post_base + (nsges - 1) * cfg.post_per_sge;
  const TimePs nic_start = std::max(now + cpu_cost, nic_busy_until_);
  const TimePs nic_proc = cfg.wqe_fetch + wr.sges.size() * cfg.dma_setup;

  // 1. The read *request* travels as one control packet. A lost request is
  //    retried by the requester like any lost data packet.
  const bool reliable = hca.fault_ != nullptr;
  TimePs req_send = nic_start + nic_proc;
  if (reliable) {
    const LossModel loss =
        judge_packets(1, req_send, hca.node_, rhca.node_);
    account_loss(loss);
    if (loss.fatal) {
      nic_busy_until_ = loss.fail_time;
      Cqe cqe;
      cqe.wr_id = wr.wr_id;
      cqe.type = CqeType::RdmaReadComplete;
      cqe.status = WcStatus::RetryExceeded;
      cqe.qp_num = qp_num_;
      cqe.ready_time = loss.fail_time + cfg.cqe_write;
      send_cq_->push(cqe);
      enter_error(loss.fail_time);
      return cpu_cost;
    }
    req_send += loss.extra;
  }
  const TimePs req_dur = hca.wire_time(0);
  const TimePs req_end = hca.acquire_tx(req_send, req_dur, /*ctrl=*/true);
  const TimePs req_arrival =
      rhca.acquire_rx(req_end - req_dur + cfg.wire_latency, req_dur, true);

  // 2. The remote HCA reads its memory and streams the response; the
  //    local HCA places the data. Remote source gather, wire and local
  //    scatter pipeline for multi-packet responses.
  TimePs remote_dma = 0;
  if (bytes != 0)
    remote_dma = rhca.dma_sge_cost(*rmr, wr.remote_addr,
                                   static_cast<std::uint32_t>(bytes),
                                   req_arrival)
                     .total();
  TimePs local_dma = 0;
  for (std::size_t i = 0; i < wr.sges.size(); ++i)
    local_dma += hca.dma_sge_cost(*mrs[i], wr.sges[i].addr, wr.sges[i].length,
                                  req_arrival)
                     .total();

  const bool ctrl = bytes <= cfg.mtu;
  TimePs transfer =
      bytes > cfg.mtu
          ? std::max({remote_dma, hca.wire_time(bytes), local_dma})
          : remote_dma + hca.wire_time(bytes) + local_dma;

  // Response packets cross the reverse link; the requester times out and
  // re-requests the missing stretch, so losses charge *this* QP's budget.
  if (reliable) {
    const std::uint64_t npkts =
        std::max<std::uint64_t>(1, div_ceil(bytes, cfg.mtu));
    const LossModel loss = judge_packets(
        npkts, req_arrival + rhca.cfg_.wqe_fetch, rhca.node_, hca.node_);
    account_loss(loss);
    if (loss.fatal) {
      nic_busy_until_ = req_end;
      Cqe cqe;
      cqe.wr_id = wr.wr_id;
      cqe.type = CqeType::RdmaReadComplete;
      cqe.status = WcStatus::RetryExceeded;
      cqe.qp_num = qp_num_;
      cqe.ready_time = loss.fail_time + cfg.cqe_write;
      send_cq_->push(cqe);
      enter_error(loss.fail_time);
      return cpu_cost;
    }
    transfer += loss.extra;
  }

  // The response consumes the remote transmit and local receive lanes.
  const TimePs resp_end = rhca.acquire_tx(
      req_arrival + rhca.cfg_.wqe_fetch, transfer, ctrl);
  const TimePs arrival = hca.acquire_rx(
      resp_end - transfer + cfg.wire_latency, transfer, ctrl);

  // Move the bytes (remote source -> local destination SGEs).
  if (bytes != 0) {
    auto src = rmr->space->host_span(wr.remote_addr, bytes);
    std::uint64_t off = 0;
    for (std::size_t i = 0; i < wr.sges.size(); ++i) {
      const auto& sge = wr.sges[i];
      if (sge.length == 0) continue;
      auto dst = mrs[i]->space->host_span(sge.addr, sge.length);
      std::copy_n(src.begin() + static_cast<std::ptrdiff_t>(off), sge.length,
                  dst.begin());
      off += sge.length;
    }
  }

  rhca.stats_.bytes_tx += bytes;
  hca.stats_.rdma_reads_posted += 1;
  nic_busy_until_ = req_end;

  // The read response *is* the completion; no extra ACK round.
  Cqe cqe;
  cqe.wr_id = wr.wr_id;
  cqe.type = CqeType::RdmaReadComplete;
  cqe.byte_len = static_cast<std::uint32_t>(bytes);
  cqe.qp_num = qp_num_;
  cqe.ready_time = arrival + cfg.cqe_write;
  send_cq_->push(cqe);
  return cpu_cost;
}

TimePs QueuePair::post_atomic(const SendWr& wr, TimePs now) {
  Adapter& hca = *adapter_;
  const AdapterConfig& cfg = hca.cfg_;
  Adapter& rhca = *peer_->adapter_;
  // The single local SGE receives the 8-byte original value.
  IBP_CHECK(wr.sges.size() == 1 && wr.sges[0].length == 8,
            "atomics return exactly 8 bytes");
  const auto mrs = hca.validate_sges(wr.sges);
  IBP_CHECK(wr.remote_addr % 8 == 0, "atomic target must be 8-byte aligned");
  const MemoryRegion* rmr = rhca.find_mr(wr.rkey);
  IBP_CHECK(rmr != nullptr, "atomic with unknown rkey " << wr.rkey);
  IBP_CHECK(rmr->contains(wr.remote_addr, 8),
            "atomic outside the remote region");

  const TimePs cpu_cost = cfg.post_base;
  const TimePs nic_start = std::max(now + cpu_cost, nic_busy_until_);
  const TimePs nic_proc = cfg.wqe_fetch + cfg.dma_setup;

  // Request packet out, read-modify-write at the remote HCA, 8-byte
  // response back — all control-class traffic.
  const TimePs req_dur = hca.wire_time(8);
  const TimePs req_end = hca.acquire_tx(nic_start + nic_proc, req_dur, true);
  const TimePs req_arrival =
      rhca.acquire_rx(req_end - req_dur + cfg.wire_latency, req_dur, true);
  const TimePs exec_done =
      req_arrival + rhca.cfg_.atomic_exec +
      rhca.dma_sge_cost(*rmr, wr.remote_addr, 8, req_arrival).total();
  const TimePs resp_end = rhca.acquire_tx(exec_done, req_dur, true);
  const TimePs arrival =
      hca.acquire_rx(resp_end - req_dur + cfg.wire_latency, req_dur, true);

  // Execute the read-modify-write (virtual-time-ordered, hence atomic).
  auto target = rmr->space->host_span(wr.remote_addr, 8);
  std::uint64_t old_val;
  std::memcpy(&old_val, target.data(), 8);
  std::uint64_t new_val = old_val;
  if (wr.opcode == Opcode::AtomicFetchAdd) {
    new_val = old_val + wr.atomic_arg;
  } else if (old_val == wr.atomic_compare) {
    new_val = wr.atomic_arg;
  }
  std::memcpy(target.data(), &new_val, 8);
  auto result = mrs[0]->space->host_span(wr.sges[0].addr, 8);
  std::memcpy(result.data(), &old_val, 8);

  hca.stats_.atomics_posted += 1;
  nic_busy_until_ = req_end;

  Cqe cqe;
  cqe.wr_id = wr.wr_id;
  cqe.type = CqeType::AtomicComplete;
  cqe.byte_len = 8;
  cqe.qp_num = qp_num_;
  cqe.ready_time = arrival + cfg.cqe_write;
  send_cq_->push(cqe);
  return cpu_cost;
}

TimePs QueuePair::post_recv(const RecvWr& wr, TimePs now) {
  check_injected_error(now);
  Adapter& hca = *adapter_;
  const AdapterConfig& cfg = hca.cfg_;
  if (state_ == QpState::Error) {
    Cqe cqe;
    cqe.wr_id = wr.wr_id;
    cqe.type = CqeType::RecvComplete;
    cqe.status = WcStatus::WorkRequestFlushed;
    cqe.qp_num = qp_num_;
    cqe.ready_time = now + cfg.cqe_write;
    recv_cq_->push(cqe);
    return cfg.post_recv_base;
  }
  hca.validate_sges(wr.sges);
  hca.stats_.recvs_posted += 1;

  const std::uint64_t nsges = std::max<std::size_t>(wr.sges.size(), 1);
  const TimePs cpu_cost = cfg.post_recv_base + (nsges - 1) * cfg.post_per_sge;

  recv_queue_.push_back(PostedRecv{wr, now + cpu_cost});
  try_match();
  return cpu_cost;
}

void QueuePair::deliver(StagedMsg msg) {
  // A passive receiver still notices an injected one-shot error when
  // traffic reaches it.
  check_injected_error(msg.arrival);
  if (state_ == QpState::Error) {
    if (msg.src_qp != nullptr) {
      // The receiver NAKs everything in the error state; the sender's
      // retries can never succeed.
      Cqe cqe;
      cqe.wr_id = msg.send_wr_id;
      cqe.type = CqeType::SendComplete;
      cqe.status = WcStatus::RetryExceeded;
      cqe.qp_num = msg.src_qp->qp_num_;
      cqe.ready_time = msg.arrival + adapter_->cfg_.cqe_write;
      msg.src_qp->send_cq_->push(cqe);
      msg.src_qp->enter_error(msg.arrival);
    }
    return;  // UD datagrams to a dead QP vanish silently
  }
  if (msg.src_qp != nullptr && recv_queue_.empty() && msg.rnr_deadline != 0) {
    // No receive posted: the receiver returns RNR NAKs until one shows up.
    // Schedule the sender's exhaustion CQE at the deadline now — a receive
    // posted in time cancels it (the engine runs ranks in virtual-time
    // order, so any rescuing post_recv executes before the sender's clock
    // can reach the deadline).
    Cqe cqe;
    cqe.wr_id = msg.send_wr_id;
    cqe.type = CqeType::SendComplete;
    cqe.status = WcStatus::RnrRetryExceeded;
    cqe.qp_num = msg.src_qp->qp_num_;
    cqe.ready_time = msg.rnr_deadline;
    msg.src_qp->send_cq_->push(cqe);
    msg.rnr_cqe_scheduled = true;
  }
  inbound_.push_back(std::move(msg));
  try_match();
}

void QueuePair::try_match() {
  Adapter& hca = *adapter_;
  const AdapterConfig& cfg = hca.cfg_;
  while (!inbound_.empty() && !recv_queue_.empty()) {
    StagedMsg msg = std::move(inbound_.front());
    inbound_.pop_front();
    PostedRecv pr = std::move(recv_queue_.front());
    recv_queue_.pop_front();

    // Reliable delivery: resolve the RNR episode this message went
    // through, if any. `delivered` is when the (re)sent message finally
    // lands in a posted receive.
    TimePs delivered = std::max(msg.arrival, pr.post_time);
    if (msg.src_qp != nullptr) {
      if (msg.rnr_deadline != 0 && pr.post_time > msg.rnr_deadline) {
        // The receive came after the sender's last RNR retry: the
        // exhaustion CQE stands (or is created now), the message is gone,
        // and the receive stays posted for future traffic.
        if (!msg.rnr_cqe_scheduled) {
          Cqe cqe;
          cqe.wr_id = msg.send_wr_id;
          cqe.type = CqeType::SendComplete;
          cqe.status = WcStatus::RnrRetryExceeded;
          cqe.qp_num = msg.src_qp->qp_num_;
          cqe.ready_time = msg.rnr_deadline;
          msg.src_qp->send_cq_->push(cqe);
        }
        msg.src_qp->enter_error(msg.rnr_deadline);
        recv_queue_.push_front(std::move(pr));
        continue;
      }
      delivered = msg.arrival;
      if (pr.post_time > msg.arrival) {
        // One RNR NAK + resend per backoff round until the receive shows.
        const TimePs rnr = msg.src_qp->attrs_.rnr_timeout;
        const std::uint64_t rounds = div_ceil(pr.post_time - msg.arrival, rnr);
        delivered = msg.arrival + rounds * rnr;
        msg.src_qp->qp_stats_.rnr_naks += rounds;
        hca.stats_.rnr_naks += rounds;
        if (hca.fault_ != nullptr)
          hca.fault_->note("rnr_nak", hca.node_, pr.post_time);
      }
      if (msg.rnr_cqe_scheduled)
        msg.src_qp->send_cq_->cancel(msg.send_wr_id,
                                     WcStatus::RnrRetryExceeded);
    }

    Cqe cqe;
    cqe.wr_id = pr.wr.wr_id;
    cqe.type = CqeType::RecvComplete;
    cqe.qp_num = qp_num_;
    cqe.has_imm = msg.has_imm;
    cqe.imm = msg.imm;
    // Write-with-immediate placed its payload one-sided; the receive
    // reports the write length but scatters nothing (msg.data is empty).
    cqe.byte_len = msg.write_imm
                       ? msg.write_len
                       : static_cast<std::uint32_t>(msg.data.size());

    if (msg.data.size() > pr.wr.total_length()) {
      // Real RC would move the QP to error state; a per-WR error CQE keeps
      // the simulation testable without modelling QP teardown.
      cqe.status = WcStatus::LocalLengthError;
      cqe.ready_time = delivered + cfg.cqe_write;
      recv_cq_->push(cqe);
      if (msg.src_qp != nullptr) {
        // The receiver's HCA NAKs the oversized message.
        Cqe scqe;
        scqe.wr_id = msg.send_wr_id;
        scqe.type = CqeType::SendComplete;
        scqe.status = WcStatus::RemoteError;
        scqe.qp_num = msg.src_qp->qp_num_;
        scqe.ready_time = delivered + cfg.ack_latency + cfg.cqe_write;
        msg.src_qp->send_cq_->push(scqe);
      }
      continue;
    }

    // Scatter the payload. Placement overlaps with packet reception; what
    // remains visible is per-SGE setup plus receive-side ATT traffic.
    // Those stalls occupy the (per-adapter, shared) receive engine, so
    // concurrent inbound traffic from other QPs queues behind them.
    TimePs scatter = 0;
    std::uint64_t off = 0;
    for (const auto& s : pr.wr.sges) {
      if (off >= msg.data.size()) break;
      const std::uint64_t chunk =
          std::min<std::uint64_t>(s.length, msg.data.size() - off);
      if (chunk == 0) continue;
      const MemoryRegion* mr = hca.find_mr(s.lkey);
      IBP_CHECK(mr != nullptr);  // validated at post_recv
      auto dst = mr->space->host_span(s.addr, chunk);
      std::copy_n(msg.data.begin() + static_cast<std::ptrdiff_t>(off),
                  chunk, dst.begin());
      scatter += cfg.dma_setup +
                 hca.dma_sge_cost(*mr, s.addr,
                                  static_cast<std::uint32_t>(chunk), delivered)
                     .stalls;
      off += chunk;
    }

    cqe.ready_time = hca.acquire_rx(delivered, scatter,
                                    msg.data.size() <= cfg.mtu) +
                     cfg.cqe_write;
    recv_cq_->push(cqe);

    if (msg.src_qp != nullptr) {
      // ACK-gated sender completion, delayed by the RNR rounds above.
      const AdapterConfig& scfg = msg.src_qp->adapter_->cfg_;
      Cqe scqe;
      scqe.wr_id = msg.send_wr_id;
      scqe.type = CqeType::SendComplete;
      scqe.byte_len = static_cast<std::uint32_t>(msg.data.size());
      scqe.qp_num = msg.src_qp->qp_num_;
      scqe.ready_time = delivered + scfg.ack_latency + scfg.cqe_write;
      msg.src_qp->send_cq_->push(scqe);
    }
  }
}

}  // namespace ibp::hca
