#pragma once

// Completion queue: CQEs become visible at their ready_time.
//
// CQEs are kept ordered by ready time (ties broken by insertion order) so
// that polling at virtual time `now` returns completions in the order the
// hardware would have made them visible.

#include <cstdint>
#include <deque>
#include <optional>

#include "ibp/common/check.hpp"
#include "ibp/hca/config.hpp"
#include "ibp/hca/types.hpp"

namespace ibp::hca {

class CompletionQueue {
 public:
  /// Insert keeping ready_time order (stable for equal times).
  void push(Cqe cqe) {
    auto it = entries_.end();
    while (it != entries_.begin()) {
      auto prev = it;
      --prev;
      if (prev->ready_time <= cqe.ready_time) break;
      it = prev;
    }
    entries_.insert(it, cqe);
  }

  /// Pop the first CQE visible at `now`, if any.
  std::optional<Cqe> poll(TimePs now) {
    if (entries_.empty() || entries_.front().ready_time > now)
      return std::nullopt;
    Cqe c = entries_.front();
    entries_.pop_front();
    return c;
  }

  /// Withdraw the pending CQE matching (wr_id, status). Used to cancel a
  /// provisionally scheduled error completion — e.g. an RNR-exhaustion CQE
  /// rescued by a receive posted before the deadline. Returns whether a
  /// matching entry was removed.
  bool cancel(std::uint64_t wr_id, WcStatus status) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->wr_id == wr_id && it->status == status) {
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Ready time of the earliest pending CQE (for scheduler wait
  /// predicates), or nullopt when empty.
  std::optional<TimePs> next_ready() const {
    if (entries_.empty()) return std::nullopt;
    return entries_.front().ready_time;
  }

  std::size_t depth() const { return entries_.size(); }

  /// Virtual-time lock state for SharedLocked multi-thread arbitration.
  ArbState& arb() { return arb_; }

 private:
  std::deque<Cqe> entries_;
  ArbState arb_;
};

}  // namespace ibp::hca
