#pragma once

// Simulated InfiniBand host channel adapter (HCA).
//
// One Adapter models one physical HCA (per node): its memory-region table,
// its on-chip address-translation-table (ATT) cache, its DMA engine, and
// its link to the fabric. QueuePairs are reliable-connected (RC) endpoints
// created on an adapter and wired directly to a peer QP.
//
// Everything is computed synchronously inside the posting rank's turn:
// the adapter derives completion timestamps from its cost model and link /
// QP busy-tracking, stages payload bytes, and pushes CQEs that become
// pollable at their ready time. Because the engine executes ranks in
// global virtual-time order, writing receiver host memory at staging time
// is safe for any program that reads only after observing the completion.

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/lru.hpp"
#include "ibp/common/types.hpp"
#include "ibp/hca/completion_queue.hpp"
#include "ibp/hca/config.hpp"
#include "ibp/hca/fabric.hpp"
#include "ibp/hca/types.hpp"
#include "ibp/mem/address_space.hpp"

namespace ibp::hca {

class Adapter;

/// A registered memory region. lkey doubles as rkey.
struct MemoryRegion {
  std::uint32_t lkey = 0;
  VirtAddr addr = 0;
  std::uint64_t length = 0;
  mem::AddressSpace* space = nullptr;
  std::uint64_t os_page_size = 0;     // page size of the backing mapping
  std::uint64_t trans_page_size = 0;  // granularity shipped to the NIC
  std::uint64_t npages = 0;           // OS pages pinned
  std::uint64_t ntrans = 0;           // translation entries shipped

  bool contains(VirtAddr a, std::uint64_t len) const {
    return a >= addr && len <= length && a - addr <= length - len;
  }
};

enum class QpType : std::uint8_t { RC, UD };

class QueuePair {
 public:
  std::uint32_t qp_num() const { return qp_num_; }
  Adapter& adapter() { return *adapter_; }
  QpType type() const { return type_; }

  /// Wire this QP to its RC peer (both directions must be connected).
  void connect(QueuePair* peer) {
    IBP_CHECK(type_ == QpType::RC, "UD QPs are connectionless");
    IBP_CHECK(peer != nullptr && peer != this);
    peer_ = peer;
  }
  QueuePair* peer() { return peer_; }

  /// Post a send-side work request at virtual time `now`. Returns the
  /// CPU-side cost the caller must advance() by; all NIC/wire/completion
  /// timing is recorded in the CQs.
  TimePs post_send(const SendWr& wr, TimePs now);

  /// Post a receive work request at `now`; returns CPU-side cost.
  TimePs post_recv(const RecvWr& wr, TimePs now);

  CompletionQueue& send_cq() { return *send_cq_; }
  CompletionQueue& recv_cq() { return *recv_cq_; }

  /// Receive WRs currently waiting for inbound messages.
  std::size_t recv_queue_depth() const { return recv_queue_.size(); }
  /// Inbound messages waiting for a receive WR (RNR condition in real IB).
  std::size_t unmatched_inbound() const { return inbound_.size(); }

 private:
  friend class Adapter;
  QueuePair(Adapter* adapter, std::uint32_t num, CompletionQueue* scq,
            CompletionQueue* rcq, QpType type)
      : adapter_(adapter),
        qp_num_(num),
        send_cq_(scq),
        recv_cq_(rcq),
        type_(type) {}

  struct StagedMsg {
    std::vector<std::uint8_t> data;
    TimePs arrival = 0;  // fully received at the peer HCA
    bool has_imm = false;
    std::uint32_t imm = 0;
  };

  struct PostedRecv {
    RecvWr wr;
    TimePs post_time = 0;
  };

  TimePs post_rdma_read(const SendWr& wr, TimePs now);
  TimePs post_atomic(const SendWr& wr, TimePs now);
  void deliver(StagedMsg msg);
  void try_match();

  Adapter* adapter_;
  std::uint32_t qp_num_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  QpType type_ = QpType::RC;
  QueuePair* peer_ = nullptr;
  TimePs nic_busy_until_ = 0;  // per-QP in-order WQE processing
  std::deque<PostedRecv> recv_queue_;
  std::deque<StagedMsg> inbound_;
};

class Adapter {
 public:
  Adapter(NodeId node, const AdapterConfig& cfg)
      : node_(node), cfg_(cfg), att_(cfg.att_entries) {}

  Adapter(const Adapter&) = delete;
  Adapter& operator=(const Adapter&) = delete;

  NodeId node() const { return node_; }
  const AdapterConfig& config() const { return cfg_; }

  /// Attach this adapter to a multi-stage fabric as a member of `pod`.
  /// Unattached adapters (or same-pod peers) see a single-switch fabric.
  void attach_fabric(Fabric* fabric, int pod) {
    fabric_ = fabric;
    pod_ = pod;
  }
  int pod() const { return pod_; }
  Fabric* fabric() { return fabric_; }
  const AdapterStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Register [addr, addr+len) of `space`. `trans_page_size` is the
  /// granularity of the translations shipped to the NIC — the stock driver
  /// passes 4 KB even for hugepage mappings; the paper's patched driver
  /// passes the native page size. Must not exceed the OS page size of the
  /// backing mapping. Returns the MR and the registration cost.
  struct RegResult {
    const MemoryRegion* mr;
    TimePs cost;
  };
  RegResult reg_mr(mem::AddressSpace& space, VirtAddr addr, std::uint64_t len,
                   std::uint64_t trans_page_size);

  /// Deregister; returns the deregistration cost.
  TimePs dereg_mr(std::uint32_t lkey);

  const MemoryRegion* find_mr(std::uint32_t key) const;

  QueuePair& create_qp(CompletionQueue* send_cq, CompletionQueue* recv_cq,
                       QpType type = QpType::RC);

  std::uint64_t att_capacity() const { return att_.capacity(); }

 private:
  friend class QueuePair;

  /// Validate that each SGE lies in a registered MR; returns the MRs.
  std::vector<const MemoryRegion*> validate_sges(const std::vector<Sge>& sges);

  /// DMA-engine cost of moving one SGE across the host bus, split into the
  /// streaming part (bus-line reads, which pipeline with the wire) and the
  /// stall part (ATT lookups/misses and burst-boundary penalties, which do
  /// not).
  struct DmaCost {
    TimePs stream = 0;
    TimePs stalls = 0;
    TimePs total() const { return stream + stalls; }
  };
  DmaCost dma_sge_cost(const MemoryRegion& mr, VirtAddr addr,
                       std::uint32_t len);

  /// Wire time for `bytes` on the link (streaming + packetization).
  TimePs wire_time(std::uint64_t bytes) const;

  /// Transmission time of one MTU (the link's arbitration quantum).
  TimePs mtu_time() const;

  /// Reserve the transmit link from `ready` for `duration`. Single-packet
  /// ("control-class") messages interleave with bulk transfers at MTU
  /// granularity — IB virtual-lane arbitration — so they wait at most one
  /// packet, not an entire in-flight message; bulk transfers queue FIFO
  /// and are stretched by interleaved control traffic. Returns the end
  /// time of the transfer.
  TimePs acquire_tx(TimePs ready, TimePs duration, bool ctrl);
  /// Same, for the receive side.
  TimePs acquire_rx(TimePs first_byte, TimePs duration, bool ctrl);

  NodeId node_;
  AdapterConfig cfg_;
  Fabric* fabric_ = nullptr;
  int pod_ = 0;
  AdapterStats stats_;
  LruSet<std::uint64_t> att_;  // key: (lkey << 32) | translation index
  std::uint32_t next_key_ = 1;
  std::uint32_t next_qp_ = 1;
  TimePs tx_bulk_busy_ = 0;
  TimePs tx_ctrl_busy_ = 0;
  TimePs rx_bulk_busy_ = 0;
  TimePs rx_ctrl_busy_ = 0;
  std::unordered_map<std::uint32_t, std::unique_ptr<MemoryRegion>> mrs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

}  // namespace ibp::hca
