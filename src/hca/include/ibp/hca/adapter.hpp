#pragma once

// Simulated InfiniBand host channel adapter (HCA).
//
// One Adapter models one physical HCA (per node): its memory-region table,
// its on-chip address-translation-table (ATT) cache, its DMA engine, and
// its link to the fabric. QueuePairs are reliable-connected (RC) endpoints
// created on an adapter and wired directly to a peer QP.
//
// Everything is computed synchronously inside the posting rank's turn:
// the adapter derives completion timestamps from its cost model and link /
// QP busy-tracking, stages payload bytes, and pushes CQEs that become
// pollable at their ready time. Because the engine executes ranks in
// global virtual-time order, writing receiver host memory at staging time
// is safe for any program that reads only after observing the completion.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/lru.hpp"
#include "ibp/common/types.hpp"
#include "ibp/fault/fault.hpp"
#include "ibp/hca/completion_queue.hpp"
#include "ibp/hca/config.hpp"
#include "ibp/hca/fabric.hpp"
#include "ibp/hca/types.hpp"
#include "ibp/mem/address_space.hpp"

namespace ibp::hca {

class Adapter;

/// Visibility gate for one-sided writes into a monitored memory region.
///
/// The simulation stages RDMA-write payload bytes into the target host
/// memory synchronously at post time, while the transfer's virtual arrival
/// is later. A two-sided receiver never notices (it reads only after its
/// completion), but a memory-*polling* receiver — a ring channel that
/// discovers records by inspecting ring bytes, with no posted receive —
/// would read the future. Attaching a WriteMonitor to the target MR closes
/// the gap: every successful inbound RDMA write records an event carrying
/// its virtual arrival time, and the poller consumes events only once
/// `now` has reached them, then reads the (already placed) real bytes.
///
/// A write that dies fatally in the fault injector (retry budget
/// exhausted) copies nothing and records nothing, so replaying the same
/// record at the same ring offset is idempotent.
class WriteMonitor {
 public:
  struct Event {
    VirtAddr addr = 0;
    std::uint32_t len = 0;
    bool has_imm = false;
    std::uint32_t imm = 0;
    TimePs visible_at = 0;  // transfer's virtual arrival at this adapter
  };

  /// Record one completed inbound write (insertion keeps visibility
  /// order; a single writer produces monotone arrivals already).
  void push(const Event& e) {
    auto it = events_.end();
    while (it != events_.begin() && (it - 1)->visible_at > e.visible_at) --it;
    events_.insert(it, e);
  }

  /// Earliest pending visibility time, if any — feeds the owner's
  /// blocking-wait predicate so the engine can sleep until it.
  std::optional<TimePs> next_visible() const {
    if (events_.empty()) return std::nullopt;
    return events_.front().visible_at;
  }

  /// Pop every event visible at or before `now`, oldest first.
  std::vector<Event> take_visible(TimePs now) {
    std::vector<Event> out;
    while (!events_.empty() && events_.front().visible_at <= now) {
      out.push_back(events_.front());
      events_.pop_front();
    }
    return out;
  }

  std::size_t pending() const { return events_.size(); }

 private:
  std::deque<Event> events_;
};

/// A registered memory region. lkey doubles as rkey.
struct MemoryRegion {
  std::uint32_t lkey = 0;
  VirtAddr addr = 0;
  std::uint64_t length = 0;
  mem::AddressSpace* space = nullptr;
  std::uint64_t os_page_size = 0;     // page size of the backing mapping
  std::uint64_t trans_page_size = 0;  // granularity shipped to the NIC
  std::uint64_t npages = 0;           // OS pages pinned
  std::uint64_t ntrans = 0;           // translation entries shipped
  WriteMonitor* monitor = nullptr;    // visibility gate for one-sided writes

  bool contains(VirtAddr a, std::uint64_t len) const {
    return a >= addr && len <= length && a - addr <= length - len;
  }
};

enum class QpType : std::uint8_t { RC, UD };

/// QP lifecycle, collapsed to the two states the model distinguishes.
/// (Real verbs walk RESET→INIT→RTR→RTS; connect() stands in for that.)
enum class QpState : std::uint8_t { Ready, Error };

class QueuePair {
 public:
  std::uint32_t qp_num() const { return qp_num_; }
  Adapter& adapter() { return *adapter_; }
  QpType type() const { return type_; }
  QpState state() const { return state_; }

  /// RC reliability attributes (modify_qp equivalent). Consulted only when
  /// the adapter has a fault injector attached.
  void set_attrs(const QpAttrs& attrs) { attrs_ = attrs; }
  const QpAttrs& attrs() const { return attrs_; }
  const QpStats& qp_stats() const { return qp_stats_; }

  /// Recycle an errored QP back to Ready (ERR→RESET→RTS shortcut).
  /// Receives flushed on the way into the error state stay flushed;
  /// inbound messages from still-retransmitting senders remain queued and
  /// match against receives posted after the reset.
  void reset() { state_ = QpState::Ready; }

  /// Wire this QP to its RC peer (both directions must be connected).
  void connect(QueuePair* peer) {
    IBP_CHECK(type_ == QpType::RC, "UD QPs are connectionless");
    IBP_CHECK(peer != nullptr && peer != this);
    peer_ = peer;
  }
  QueuePair* peer() { return peer_; }

  /// Post a send-side work request at virtual time `now`. Returns the
  /// CPU-side cost the caller must advance() by; all NIC/wire/completion
  /// timing is recorded in the CQs.
  TimePs post_send(const SendWr& wr, TimePs now);

  /// Post a receive work request at `now`; returns CPU-side cost.
  TimePs post_recv(const RecvWr& wr, TimePs now);

  CompletionQueue& send_cq() { return *send_cq_; }
  CompletionQueue& recv_cq() { return *recv_cq_; }

  /// Receive WRs currently waiting for inbound messages.
  std::size_t recv_queue_depth() const { return recv_queue_.size(); }
  /// Inbound messages waiting for a receive WR (RNR condition in real IB).
  std::size_t unmatched_inbound() const { return inbound_.size(); }

  /// Virtual-time lock state for SharedLocked multi-thread arbitration.
  ArbState& arb() { return arb_; }

 private:
  friend class Adapter;
  QueuePair(Adapter* adapter, std::uint32_t num, CompletionQueue* scq,
            CompletionQueue* rcq, QpType type)
      : adapter_(adapter),
        qp_num_(num),
        send_cq_(scq),
        recv_cq_(rcq),
        type_(type) {}

  struct StagedMsg {
    std::vector<std::uint8_t> data;
    TimePs arrival = 0;  // fully received at the peer HCA
    bool has_imm = false;
    std::uint32_t imm = 0;
    // Write-with-immediate: the payload was already placed one-sided; the
    // matched receive completes with the immediate and byte_len only —
    // nothing is scattered through its SGEs.
    bool write_imm = false;
    std::uint32_t write_len = 0;
    // Reliable (ACK-gated) delivery, set when the sending adapter has a
    // fault injector: the sender's CQE is generated at match time, after
    // any RNR backoff rounds.
    QueuePair* src_qp = nullptr;
    std::uint64_t send_wr_id = 0;
    TimePs rnr_deadline = 0;  // 0 = unbounded RNR retries
    // A provisional RnrRetryExceeded CQE sits in the sender's CQ at
    // rnr_deadline; cancelled if a receive rescues the message in time.
    bool rnr_cqe_scheduled = false;
  };

  struct PostedRecv {
    RecvWr wr;
    TimePs post_time = 0;
  };

  /// Packet-loss outcome of pushing `npkts` MTUs through the injector.
  struct LossModel {
    TimePs extra = 0;  // transfer time added by timeouts + resends
    std::uint64_t retransmits = 0;
    std::uint64_t dropped = 0;
    std::uint64_t corrupted = 0;
    bool fatal = false;     // some packet exhausted retry_cnt
    TimePs fail_time = 0;   // when the final timeout expired
  };

  TimePs post_rdma_read(const SendWr& wr, TimePs now);
  TimePs post_atomic(const SendWr& wr, TimePs now);
  void deliver(StagedMsg msg);
  void try_match();
  LossModel judge_packets(std::uint64_t npkts, TimePs start, NodeId src_node,
                          NodeId dst_node);
  TimePs retransmit_backoff(std::uint32_t attempt) const;
  void account_loss(const LossModel& loss);
  /// Fire a pending injected one-shot QP error, if any.
  void check_injected_error(TimePs now);
  /// Move to the error state: flush posted receives, fail senders whose
  /// queued messages can no longer complete.
  void enter_error(TimePs now);
  /// Completion type reported for a flushed/failed send-side WR.
  static CqeType send_cqe_type(Opcode op);

  Adapter* adapter_;
  std::uint32_t qp_num_;
  CompletionQueue* send_cq_;
  CompletionQueue* recv_cq_;
  QpType type_ = QpType::RC;
  QpState state_ = QpState::Ready;
  QpAttrs attrs_;
  QpStats qp_stats_;
  QueuePair* peer_ = nullptr;
  ArbState arb_;               // host-side QP lock (SharedLocked mode)
  TimePs nic_busy_until_ = 0;  // per-QP in-order WQE processing
  std::deque<PostedRecv> recv_queue_;
  std::deque<StagedMsg> inbound_;
};

class Adapter {
 public:
  Adapter(NodeId node, const AdapterConfig& cfg)
      : node_(node), cfg_(cfg), att_(cfg.att_entries) {}

  Adapter(const Adapter&) = delete;
  Adapter& operator=(const Adapter&) = delete;

  NodeId node() const { return node_; }
  const AdapterConfig& config() const { return cfg_; }

  /// Attach this adapter to a multi-stage fabric as a member of `pod`.
  /// Unattached adapters (or same-pod peers) see a single-switch fabric.
  void attach_fabric(Fabric* fabric, int pod) {
    fabric_ = fabric;
    pod_ = pod;
  }
  int pod() const { return pod_; }
  Fabric* fabric() { return fabric_; }
  const AdapterStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Device-level lock state for SharedLocked arbitration. One lock
  /// serializes every post and poll on the adapter regardless of which
  /// QP/CQ it lands on — the libibverbs thread-safe-context model, where
  /// the shared doorbell page and context lock are what threads fight
  /// over, not the individual queue.
  ArbState& device_arb() { return device_arb_; }

  /// Account lock-wait/cache-bounce time charged for a shared-QP post.
  void note_qp_contention(TimePs extra) { stats_.qp_contention_ps += extra; }
  /// Account one CQ poll that found the CQ lock busy (or bounced).
  void note_cq_contention(TimePs extra) {
    stats_.qp_contention_ps += extra;
    ++stats_.cq_poll_contention;
  }

  /// Attach the cluster's fault injector (nullptr detaches). With an
  /// injector attached, RC QPs run the full reliability protocol
  /// (per-packet loss judging, retransmission, RNR backoff, error state);
  /// without one, the legacy always-healthy fast path is taken unchanged.
  void set_fault_injector(fault::FaultInjector* inj) { fault_ = inj; }
  fault::FaultInjector* fault_injector() { return fault_; }

  /// Register [addr, addr+len) of `space`. `trans_page_size` is the
  /// granularity of the translations shipped to the NIC — the stock driver
  /// passes 4 KB even for hugepage mappings; the paper's patched driver
  /// passes the native page size. Must not exceed the OS page size of the
  /// backing mapping. Returns the MR and the registration cost.
  struct RegResult {
    const MemoryRegion* mr;
    TimePs cost;
  };
  RegResult reg_mr(mem::AddressSpace& space, VirtAddr addr, std::uint64_t len,
                   std::uint64_t trans_page_size);

  /// Deregister; returns the deregistration cost.
  TimePs dereg_mr(std::uint32_t lkey);

  const MemoryRegion* find_mr(std::uint32_t key) const;

  /// Attach a write monitor to a registered region (nullptr detaches).
  /// Inbound RDMA writes landing in the region record visibility events.
  void set_write_monitor(std::uint32_t lkey, WriteMonitor* mon) {
    auto it = mrs_.find(lkey);
    IBP_CHECK(it != mrs_.end(), "write monitor on unknown lkey " << lkey);
    it->second->monitor = mon;
  }

  QueuePair& create_qp(CompletionQueue* send_cq, CompletionQueue* recv_cq,
                       QpType type = QpType::RC);

  std::uint64_t att_capacity() const { return att_.capacity(); }

 private:
  friend class QueuePair;

  /// Validate that each SGE lies in a registered MR; returns the MRs.
  std::vector<const MemoryRegion*> validate_sges(const std::vector<Sge>& sges);

  /// DMA-engine cost of moving one SGE across the host bus, split into the
  /// streaming part (bus-line reads, which pipeline with the wire) and the
  /// stall part (ATT lookups/misses and burst-boundary penalties, which do
  /// not).
  struct DmaCost {
    TimePs stream = 0;
    TimePs stalls = 0;
    TimePs total() const { return stream + stalls; }
  };
  /// `now` lets an active ATT-miss storm turn every lookup into a miss.
  DmaCost dma_sge_cost(const MemoryRegion& mr, VirtAddr addr,
                       std::uint32_t len, TimePs now);

  /// Wire time for `bytes` on the link (streaming + packetization).
  TimePs wire_time(std::uint64_t bytes) const;

  /// Transmission time of one MTU (the link's arbitration quantum).
  TimePs mtu_time() const;

  /// Reserve the transmit link from `ready` for `duration`. Single-packet
  /// ("control-class") messages interleave with bulk transfers at MTU
  /// granularity — IB virtual-lane arbitration — so they wait at most one
  /// packet, not an entire in-flight message; bulk transfers queue FIFO
  /// and are stretched by interleaved control traffic. Returns the end
  /// time of the transfer.
  TimePs acquire_tx(TimePs ready, TimePs duration, bool ctrl);
  /// Same, for the receive side.
  TimePs acquire_rx(TimePs first_byte, TimePs duration, bool ctrl);

  NodeId node_;
  AdapterConfig cfg_;
  Fabric* fabric_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  int pod_ = 0;
  AdapterStats stats_;
  ArbState device_arb_;
  LruSet<std::uint64_t> att_;  // key: (lkey << 32) | translation index
  std::uint32_t next_key_ = 1;
  std::uint32_t next_qp_ = 1;
  TimePs tx_bulk_busy_ = 0;
  TimePs tx_ctrl_busy_ = 0;
  TimePs rx_bulk_busy_ = 0;
  TimePs rx_ctrl_busy_ = 0;
  std::unordered_map<std::uint32_t, std::unique_ptr<MemoryRegion>> mrs_;
  std::vector<std::unique_ptr<QueuePair>> qps_;
};

}  // namespace ibp::hca
