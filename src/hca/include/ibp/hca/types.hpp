#pragma once

// Wire-level and work-request types of the simulated InfiniBand adapter.

#include <cstdint>
#include <vector>

#include "ibp/common/types.hpp"

namespace ibp::hca {

/// Scatter-gather element: one contiguous piece of a work request.
struct Sge {
  VirtAddr addr = 0;
  std::uint32_t length = 0;
  std::uint32_t lkey = 0;
};

enum class Opcode : std::uint8_t {
  Send,            // two-sided: consumed by a posted receive at the peer
  RdmaWrite,       // one-sided: placed directly into the peer's memory
  RdmaRead,        // one-sided: pulled from the peer's memory
  AtomicFetchAdd,  // one-sided 8-byte fetch-and-add; old value returned
  AtomicCmpSwap,   // one-sided 8-byte compare-and-swap; old value returned
};

class QueuePair;

struct SendWr {
  std::uint64_t wr_id = 0;
  Opcode opcode = Opcode::Send;
  std::vector<Sge> sges;  // RDMA read: the *destination* of the pulled data
  // UD only: the datagram's destination (address-handle equivalent).
  QueuePair* ud_dest = nullptr;
  // RDMA write/read only:
  VirtAddr remote_addr = 0;
  std::uint32_t rkey = 0;
  // Atomics: the operand (add value / swap value) and CAS compare value.
  std::uint64_t atomic_arg = 0;
  std::uint64_t atomic_compare = 0;
  // Optional 32-bit immediate delivered with the message (used by the MPI
  // layer to tag eager packets without touching payload bytes). On an
  // RdmaWrite this selects write-with-immediate semantics: the payload is
  // placed one-sided, but a posted receive at the peer is consumed and
  // completes with the immediate (byte_len = write length, nothing
  // scattered through the receive SGEs).
  bool has_imm = false;
  std::uint32_t imm = 0;
  // Inline the payload into the WQE (IBV_SEND_INLINE): the NIC skips the
  // per-SGE DMA gather — no descriptor setup, no sender-side ATT traffic —
  // and the CPU pays a per-byte copy at post time instead. Only valid up
  // to AdapterConfig::inline_max bytes.
  bool inline_data = false;

  std::uint64_t total_length() const {
    std::uint64_t n = 0;
    for (const auto& s : sges) n += s.length;
    return n;
  }
};

struct RecvWr {
  std::uint64_t wr_id = 0;
  std::vector<Sge> sges;

  std::uint64_t total_length() const {
    std::uint64_t n = 0;
    for (const auto& s : sges) n += s.length;
    return n;
  }
};

enum class CqeType : std::uint8_t {
  SendComplete,
  RecvComplete,
  RdmaWriteComplete,
  RdmaReadComplete,
  AtomicComplete,
};
/// Work-completion status (ibv_wc_status equivalent).
enum class WcStatus : std::uint8_t {
  Success,
  LocalLengthError,    // inbound message truncated by the receive WR
  RetryExceeded,       // transport retry budget exhausted (lost packets)
  RnrRetryExceeded,    // receiver never posted a receive within the budget
  WorkRequestFlushed,  // WR drained while the QP sat in the error state
  RemoteError,         // peer NAK'd the request (e.g. length violation)
};
/// Historical name, kept for call sites predating the reliability model.
using CqeStatus = WcStatus;

inline const char* wc_status_name(WcStatus s) {
  switch (s) {
    case WcStatus::Success: return "success";
    case WcStatus::LocalLengthError: return "local-length-error";
    case WcStatus::RetryExceeded: return "retry-exceeded";
    case WcStatus::RnrRetryExceeded: return "rnr-retry-exceeded";
    case WcStatus::WorkRequestFlushed: return "work-request-flushed";
    case WcStatus::RemoteError: return "remote-error";
  }
  return "unknown";
}

struct Cqe {
  std::uint64_t wr_id = 0;
  CqeType type = CqeType::SendComplete;
  WcStatus status = WcStatus::Success;
  std::uint32_t byte_len = 0;
  bool has_imm = false;
  std::uint32_t imm = 0;
  std::uint32_t qp_num = 0;     // local QP this completion belongs to
  TimePs ready_time = 0;        // virtual time the CQE becomes pollable
};

}  // namespace ibp::hca
