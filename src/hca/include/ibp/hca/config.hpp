#pragma once

// Adapter cost-model parameters.
//
// One send work request is charged as
//
//   post  = post_base + (nsges-1) * post_per_sge          (CPU, §4: ~constant)
//   nic   = wqe_fetch + Σ_sge dma_setup
//   dma   = Σ_sge lines(addr,len) * dma_per_line  + att_misses * att_miss
//   wire  = bytes / link_bw + packets(bytes) * pkt_overhead
//   tx    = nic + max(dma, wire)                          (fetch pipelines with wire)
//   cqe   = ack latency + cqe_write; poll costs poll_cqe / poll_empty
//
// and registration as
//
//   reg = reg_base + npages * pin_per_page
//       + ntrans * (trans_build_per_entry + trans_ship_per_entry)
//
// where npages follows the mapping's OS page size and ntrans the driver's
// translation granularity (the paper's OpenIB patch switches the latter
// from pretend-4 KB to the native hugepage size).

#include <cstdint>
#include <string_view>

#include "ibp/common/types.hpp"

namespace ibp::hca {

struct AdapterConfig {
  // --- CPU-side posting/polling ---
  TimePs post_base = ns(2600);       // WQE build + doorbell
  TimePs post_per_sge = ns(40);      // additional SGE in the WQE
  TimePs post_recv_base = ns(900);   // receive WQE build + doorbell
  TimePs poll_cqe = ns(120);         // successful poll of one CQE
  TimePs poll_empty = ns(60);        // unsuccessful poll probe

  // --- inline sends (IBV_SEND_INLINE) ---
  // Payload copied into the WQE at post time: the CPU pays per-byte copy
  // cost, the NIC skips per-SGE DMA setup and the sender-side gather/ATT
  // path entirely. The era's adapters took ~a quarter KB of inline data.
  std::uint32_t inline_max = 256;     // bytes accepted inline per WR
  TimePs post_inline_per_byte = 500;  // 0.5 ns per inlined byte (CPU copy)

  // --- NIC work-request processing ---
  TimePs wqe_fetch = ns(350);        // NIC fetches the WQE across the bus
  TimePs dma_setup = ns(110);        // per-SGE DMA descriptor setup
  TimePs cqe_write = ns(180);        // NIC writes the CQE to host memory
  TimePs ack_latency = ns(250);      // RC ACK turnaround credited to send CQE

  // --- host-bus DMA ---
  std::uint32_t bus_line = 64;       // DMA read granularity (bytes)
  std::uint32_t bus_burst = 128;     // burst boundary; crossing costs extra
  TimePs dma_per_line = ns(16);      // one bus-line read
  TimePs burst_cross_penalty = ns(24);  // read straddles a burst boundary

  // --- adapter address-translation table (ATT) ---
  std::uint64_t att_entries = 1024;  // cached translation entries
  TimePs att_lookup = ns(6);         // hit
  TimePs att_miss = ns(350);         // fetch translation from host memory

  // --- link ---
  double link_bw_bytes_per_ns = 1.9; // ~ 4x SDR payload after encoding
  std::uint32_t mtu = 2048;
  TimePs pkt_overhead = ns(80);      // per-MTU packetization
  TimePs wire_latency = ns(600);     // propagation + switch

  // --- atomics ---
  TimePs atomic_exec = ns(120);  // remote HCA read-modify-write

  // --- multi-thread QP/CQ arbitration ---
  // Charged only when a verbs::Context has ShareMode::SharedLocked enabled
  // and more than one sim track is alive on the rank; single-threaded
  // ranks never see these costs.
  TimePs qp_lock_acquire = ns(60);    // uncontended lock/doorbell atomic
  TimePs qp_cache_bounce = ns(420);   // QP/CQ cachelines migrate to a new core

  // --- memory registration / deregistration ---
  TimePs reg_base = us(5);
  TimePs pin_per_page = ns(700);           // get_user_pages per OS page
  TimePs trans_build_per_entry = ns(45);   // build one translation entry
  TimePs trans_ship_per_entry = ns(55);    // ship one entry to the NIC
  TimePs dereg_base = us(3);
  TimePs unpin_per_page = ns(300);
};

/// RC reliability attributes (ibv_qp_attr subset). Only consulted when a
/// fault injector is attached to the adapter; a healthy fabric never
/// retransmits, so the legacy timing model is untouched without one.
struct QpAttrs {
  std::uint8_t retry_cnt = 7;   // transport retries per lost packet
  std::uint8_t rnr_retry = 7;   // RNR NAK retries; 7 = infinite (IB spec)
  TimePs retransmit_timeout = us(60);  // first loss-detection timeout;
                                       // doubles per retry, capped at 16x
  TimePs rnr_timeout = us(20);         // receiver-not-ready backoff interval
};

/// Per-QP reliability counters (surfaced through verbs::Context::query_qp
/// and aggregated into mpi::CommStats).
struct QpStats {
  std::uint64_t retransmits = 0;     // packets resent after drop/corruption
  std::uint64_t pkts_dropped = 0;
  std::uint64_t pkts_corrupted = 0;  // ICRC failures (NAK'd like drops)
  std::uint64_t rnr_naks = 0;        // RNR backoff rounds this QP suffered
};

/// How a rank's application threads (sim tracks) share its QPs/CQs.
enum class ShareMode : std::uint8_t {
  SharedLocked,  // one QP/CQ set behind a lock: acquire + cache-bounce per
                 // post/poll, fully serialized under contention
  PerThreadQp,   // per-thread QPs/rings: uncontended posts, but connection
                 // and registration footprint multiplied by T
  Dispatcher,    // every post funneled through one dispatcher track at a
                 // hand-off cost; the QP sees a single lane
};

inline const char* share_mode_name(ShareMode m) {
  switch (m) {
    case ShareMode::SharedLocked: return "shared-locked";
    case ShareMode::PerThreadQp: return "per-thread-qp";
    case ShareMode::Dispatcher: return "dispatcher";
  }
  return "?";
}

/// Parse a kebab-case share-mode name ("shared-locked", "per-thread-qp",
/// "dispatcher"); returns false on an unknown name.
inline bool share_mode_from_name(std::string_view name, ShareMode* out) {
  for (ShareMode m : {ShareMode::SharedLocked, ShareMode::PerThreadQp,
                      ShareMode::Dispatcher}) {
    if (name == share_mode_name(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

/// Virtual-time lock state of one shared QP or CQ: the lock is held until
/// `busy_until`, and `last_lane` detects cacheline migration between
/// application threads (sim trace lanes).
struct ArbState {
  TimePs busy_until = 0;
  int last_lane = -1;
};

struct AdapterStats {
  std::uint64_t sends_posted = 0;
  std::uint64_t recvs_posted = 0;
  std::uint64_t rdma_writes_posted = 0;
  std::uint64_t rdma_reads_posted = 0;
  std::uint64_t atomics_posted = 0;
  std::uint64_t bytes_tx = 0;
  std::uint64_t att_hits = 0;
  std::uint64_t att_misses = 0;
  std::uint64_t mr_registered = 0;
  std::uint64_t mr_deregistered = 0;
  std::uint64_t pages_pinned = 0;
  std::uint64_t translations_shipped = 0;
  TimePs reg_time_total = 0;
  // Fault-plane counters (all zero on a healthy fabric).
  std::uint64_t pkts_dropped = 0;
  std::uint64_t pkts_corrupted = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rnr_naks = 0;
  std::uint64_t qp_errors = 0;
  std::uint64_t storm_att_misses = 0;  // ATT misses forced by a storm
  // Multi-thread arbitration counters (zero unless a SharedLocked
  // verbs::Context ran with >1 live track).
  TimePs qp_contention_ps = 0;          // lock-wait + cache-bounce ps charged
  std::uint64_t cq_poll_contention = 0;  // CQ polls that hit the lock busy
};

}  // namespace ibp::hca
