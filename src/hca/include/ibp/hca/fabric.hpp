#pragma once

// Multi-stage fabric model.
//
// Adapters attach to leaf switches ("pods"); traffic between adapters in
// the same pod only crosses the leaf (already captured by the per-adapter
// tx/rx lanes). Traffic between pods additionally traverses a shared pool
// of core links — the classic fat-tree oversubscription bottleneck. Each
// core link carries the same two-lane (bulk/control) arbitration as the
// adapter links; a transfer reserves the least-loaded core link.

#include <cstdint>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/types.hpp"

namespace ibp::hca {

class Fabric {
 public:
  /// `core_links` parallel links between pods; `hop_latency` is the extra
  /// switch hop (leaf-core-leaf instead of leaf only).
  Fabric(int core_links, TimePs hop_latency, TimePs arbitration_quantum)
      : hop_latency_(hop_latency),
        quantum_(arbitration_quantum),
        links_(static_cast<std::size_t>(core_links)) {
    IBP_CHECK(core_links >= 1, "fabric needs at least one core link");
  }

  TimePs hop_latency() const { return hop_latency_; }
  int core_links() const { return static_cast<int>(links_.size()); }

  /// Reserve a core link for `duration` starting no earlier than `ready`;
  /// returns the traversal end time. Control-class traffic interleaves at
  /// the arbitration quantum like on the adapter links.
  TimePs traverse(TimePs ready, TimePs duration, bool ctrl) {
    // Least-loaded link (deterministic tie-break by index).
    std::size_t best = 0;
    for (std::size_t i = 1; i < links_.size(); ++i) {
      const TimePs bi = ctrl ? links_[i].ctrl_busy : links_[i].bulk_busy;
      const TimePs bb = ctrl ? links_[best].ctrl_busy
                             : links_[best].bulk_busy;
      if (bi < bb) best = i;
    }
    Link& l = links_[best];
    if (ctrl) {
      TimePs start = std::max(ready, l.ctrl_busy);
      if (l.bulk_busy > start) start += quantum_;
      l.ctrl_busy = start + duration;
      if (l.bulk_busy > start) l.bulk_busy += duration;
      return start + duration;
    }
    const TimePs start = std::max(ready, l.bulk_busy);
    l.bulk_busy = start + duration;
    return l.bulk_busy;
  }

  /// Total bulk-lane busy time across links (observability for tests).
  TimePs total_bulk_busy() const {
    TimePs t = 0;
    for (const Link& l : links_) t += l.bulk_busy;
    return t;
  }

 private:
  struct Link {
    TimePs bulk_busy = 0;
    TimePs ctrl_busy = 0;
  };

  TimePs hop_latency_;
  TimePs quantum_;
  std::vector<Link> links_;
};

}  // namespace ibp::hca
