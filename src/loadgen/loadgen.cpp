#include "ibp/loadgen/loadgen.hpp"

#include <cmath>
#include <map>
#include <set>
#include <vector>

#include "ibp/common/check.hpp"
#include "ibp/common/rng.hpp"
#include "ibp/core/cluster.hpp"

namespace ibp::loadgen {

namespace {

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001b3ull;
  }
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;

std::vector<std::uint8_t> make_payload(const Workload& w,
                                       std::uint64_t seed) {
  std::vector<std::uint8_t> p(w.request_bytes);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::uint8_t>(seed * 131 + i * 7 + 1);
  return p;
}

std::uint32_t response_size(const Workload& w, rpc::Class cls) {
  return cls == rpc::Class::Bulk && w.bulk_response_bytes != 0
             ? w.bulk_response_bytes
             : w.response_bytes;
}

/// Mute the request-tracing hub for the duration of a warmup sub-run, so
/// tail exemplars and stage histograms describe steady state only. No-op
/// (and bit-inert) when tracing is disabled.
template <typename Client>
class WarmupMute {
 public:
  explicit WarmupMute(Client& client)
      : hub_(client.comm().env().cluster().request_tracer()) {
    if (hub_ != nullptr) hub_->set_muted(true);
  }
  ~WarmupMute() {
    if (hub_ != nullptr) hub_->set_muted(false);
  }

 private:
  telemetry::RequestTracer* hub_;
};

void record(GenResult& res, const rpc::Completion& c) {
  fnv_mix(res.trace_hash, c.id);
  fnv_mix(res.trace_hash, static_cast<std::uint64_t>(c.status));
  fnv_mix(res.trace_hash, static_cast<std::uint64_t>(c.latency));
  if (c.status == rpc::Status::Ok) {
    ++res.ok;
    res.latency_ns.add(static_cast<std::uint64_t>(c.latency / 1000));
  } else if (c.status == rpc::Status::TimedOut) {
    ++res.timed_out;
  } else {
    ++res.shed;
  }
}

/// Bucket a completion into its goodput window (window == 0: off).
void bucket(GenResult& res, const rpc::Completion& c, TimePs window,
            TimePs start, TimePs now) {
  if (window == 0) return;
  const auto w = static_cast<std::size_t>((now - start) / window);
  if (res.window_ok.size() <= w) {
    res.window_ok.resize(w + 1, 0);
    res.window_lost.resize(w + 1, 0);
  }
  if (c.status == rpc::Status::Ok) ++res.window_ok[w];
  else if (c.status == rpc::Status::TimedOut) ++res.window_lost[w];
}

// The drivers are client-type generic: FabricClient mirrors RpcClient's
// submit/poll/take_completions/drain surface (and its config() returns
// the per-link RpcConfig), so one implementation drives both the
// single-server path and the sharded fleet.

template <typename Client>
GenResult open_loop(Client& client, const Workload& w,
                    const OpenLoopConfig& cfg) {
  IBP_CHECK(cfg.rate_rps > 0.0, "open loop needs a positive rate");
  if (cfg.warmup > 0) {
    OpenLoopConfig wcfg = cfg;
    wcfg.requests = cfg.warmup;
    wcfg.warmup = 0;
    const WarmupMute<Client> mute(client);
    (void)open_loop(client, w, wcfg);  // drains before returning
  }
  core::RankEnv& env = client.comm().env();
  sim::Context& sc = env.sim();
  Rng rng(cfg.seed);
  GenResult res;
  res.trace_hash = kFnvBasis;
  const std::vector<std::uint8_t> payload = make_payload(w, cfg.seed);

  const TimePs start = env.now();
  // Arrival schedule marches forward in virtual time independent of
  // completions; when the client rank is behind (an earlier submit or
  // poll blocked it), sleep_until is a no-op and the backlog drains at
  // full speed — open-loop semantics, no coordinated omission.
  double next = static_cast<double>(start);
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    sc.sleep_until(static_cast<TimePs>(next));
    const rpc::Class cls = rng.next_double() < w.bulk_fraction
                               ? rpc::Class::Bulk
                               : rpc::Class::Latency;
    const std::uint32_t tenant =
        w.tenants > 1 ? static_cast<std::uint32_t>(rng.next_below(w.tenants))
                      : 0;
    ++res.issued;
    if (client.submit(payload, response_size(w, cls), cls, tenant) == 0)
      ++res.rejected;
    client.poll();
    for (const rpc::Completion& c : client.take_completions())
      record(res, c);
    const double u = rng.next_double();
    next += -std::log1p(-u) / cfg.rate_rps * 1e12;  // Poisson interarrival
  }
  client.drain();
  for (const rpc::Completion& c : client.take_completions()) record(res, c);
  res.span = env.now() - start;
  res.start = start;
  return res;
}

template <typename Client>
GenResult closed_loop(Client& client, const Workload& w,
                      const ClosedLoopConfig& cfg) {
  IBP_CHECK(cfg.workers > 0, "closed loop needs at least one worker");
  if (cfg.warmup > 0) {
    ClosedLoopConfig wcfg = cfg;
    wcfg.requests = cfg.warmup;
    wcfg.warmup = 0;
    const WarmupMute<Client> mute(client);
    (void)closed_loop(client, w, wcfg);  // drains before returning
  }
  core::RankEnv& env = client.comm().env();
  sim::Context& sc = env.sim();
  Rng rng(cfg.seed);
  GenResult res;
  res.trace_hash = kFnvBasis;
  const std::vector<std::uint8_t> payload = make_payload(w, cfg.seed);

  std::vector<std::uint64_t> budget(cfg.workers,
                                    cfg.requests / cfg.workers);
  for (std::uint64_t i = 0; i < cfg.requests % cfg.workers; ++i)
    ++budget[i];

  const TimePs start = env.now();
  // Workers are state machines sharing the one client rank: ready set
  // ordered by (wake time, worker), outstanding ids mapped back to the
  // worker that issued them.
  std::set<std::pair<TimePs, std::uint32_t>> ready;
  std::map<std::uint64_t, std::pair<std::uint32_t, rpc::Class>> owner;
  for (std::uint32_t wk = 0; wk < cfg.workers; ++wk)
    if (budget[wk] > 0) ready.insert({start, wk});

  const auto submit_one = [&](std::uint32_t wk) {
    const rpc::Class cls = rng.next_double() < w.bulk_fraction
                               ? rpc::Class::Bulk
                               : rpc::Class::Latency;
    const std::uint32_t tenant =
        w.tenants > 1 ? static_cast<std::uint32_t>(rng.next_below(w.tenants))
                      : 0;
    ++res.issued;
    --budget[wk];
    const std::uint64_t id =
        client.submit(payload, response_size(w, cls), cls, tenant);
    if (id == 0) {
      // Local queue full: the worker backs off one flush window and
      // retries (closed-loop workers never abandon their budget).
      ++res.rejected;
      ++budget[wk];
      ready.insert({env.now() + client.config().flush_timeout, wk});
    } else {
      owner.emplace(id, std::make_pair(wk, cls));
    }
  };

  while (!ready.empty() || !owner.empty()) {
    // Launch every worker whose wake time has arrived.
    while (!ready.empty() && ready.begin()->first <= env.now()) {
      const std::uint32_t wk = ready.begin()->second;
      ready.erase(ready.begin());
      submit_one(wk);
    }
    if (owner.empty()) {
      if (ready.empty()) break;
      sc.sleep_until(ready.begin()->first);
      continue;
    }
    client.wait_some();
    for (const rpc::Completion& c : client.take_completions()) {
      record(res, c);
      bucket(res, c, cfg.window, start, env.now());
      const auto it = owner.find(c.id);
      IBP_CHECK(it != owner.end(), "completion for unknown worker");
      const auto [wk, cls] = it->second;
      if (c.status == rpc::Status::TimedOut && cls == rpc::Class::Latency)
        ++res.lost_latency;
      owner.erase(it);
      if (budget[wk] > 0) ready.insert({env.now() + cfg.think, wk});
    }
  }
  client.drain();
  res.span = env.now() - start;
  res.start = start;
  return res;
}

/// Closed loop with honest workers: each worker is a sim track running
/// its own submit -> wait -> think cycle, so worker concurrency is real
/// virtual-time overlap instead of a multiplexed state machine. The
/// calling track runs the client's poll loop (RpcClient state is shared
/// by all tracks of the rank; the engine serializes them in global
/// virtual-time order, so no locking is needed — only the discipline
/// that blocking ingest stays on this one track).
GenResult closed_loop_tracked(rpc::RpcClient& client, const Workload& w,
                              const ClosedLoopConfig& cfg) {
  IBP_CHECK(cfg.workers > 0, "closed loop needs at least one worker");
  if (cfg.warmup > 0) {
    ClosedLoopConfig wcfg = cfg;
    wcfg.requests = cfg.warmup;
    wcfg.warmup = 0;
    const WarmupMute<rpc::RpcClient> mute(client);
    (void)closed_loop_tracked(client, w, wcfg);  // drains before returning
  }
  core::RankEnv& env = client.comm().env();
  sim::Context& sc = env.sim();
  Rng rng(cfg.seed);
  GenResult res;
  res.trace_hash = kFnvBasis;
  const std::vector<std::uint8_t> payload = make_payload(w, cfg.seed);

  std::vector<std::uint64_t> budget(cfg.workers,
                                    cfg.requests / cfg.workers);
  for (std::uint64_t i = 0; i < cfg.requests % cfg.workers; ++i)
    ++budget[i];

  const TimePs start = env.now();
  std::uint32_t live = 0;
  TimePs worker_event = 0;  // earliest unacknowledged submit/finish signal

  const auto worker_fn = [&](std::uint32_t wk, sim::Context& wsc) {
    while (budget[wk] > 0) {
      const rpc::Class cls = rng.next_double() < w.bulk_fraction
                                 ? rpc::Class::Bulk
                                 : rpc::Class::Latency;
      const std::uint32_t tenant =
          w.tenants > 1
              ? static_cast<std::uint32_t>(rng.next_below(w.tenants))
              : 0;
      ++res.issued;
      const TimePs t0 = env.now();
      const std::uint64_t id =
          client.submit(payload, response_size(w, cls), cls, tenant);
      if (id == 0) {
        // Local queue full: back off one flush window and retry
        // (closed-loop workers never abandon their budget).
        ++res.rejected;
        wsc.advance(client.config().flush_timeout);
        continue;
      }
      --budget[wk];
      if (worker_event == 0) worker_event = env.now();
      wsc.wait_until([&client, id, t0]() -> std::optional<TimePs> {
        const rpc::Completion* c = client.find_completion(id);
        if (c == nullptr) return std::nullopt;
        return t0 + c->latency;
      });
      if (cfg.think > 0) wsc.advance(cfg.think);
    }
    --live;
    if (worker_event == 0) worker_event = env.now();
  };

  std::vector<sim::TrackId> tracks;
  tracks.reserve(cfg.workers);
  for (std::uint32_t wk = 0; wk < cfg.workers; ++wk) {
    if (budget[wk] == 0) continue;
    ++live;
    tracks.push_back(sc.spawn_track(
        [&, wk](sim::Context& wsc) { worker_fn(wk, wsc); }));
  }

  // Poll loop: this track owns every blocking ingest. It wakes when a
  // response can arrive or when a worker signals (a fresh submit that
  // may need flushing, or its own exit).
  while (live > 0) {
    for (const rpc::Completion& c : client.take_completions()) record(res, c);
    worker_event = 0;
    if (client.outstanding() > 0) {
      client.wait_some();
      continue;
    }
    sc.wait_until([&]() -> std::optional<TimePs> {
      if (worker_event != 0) return worker_event;
      return std::nullopt;
    });
  }
  for (const sim::TrackId t : tracks) sc.join_track(t);
  for (const rpc::Completion& c : client.take_completions()) record(res, c);
  client.drain();
  res.span = env.now() - start;
  res.start = start;
  return res;
}

}  // namespace

GenResult run_open_loop(rpc::RpcClient& client, const Workload& w,
                        const OpenLoopConfig& cfg) {
  return open_loop(client, w, cfg);
}

GenResult run_open_loop(fabric::FabricClient& client, const Workload& w,
                        const OpenLoopConfig& cfg) {
  return open_loop(client, w, cfg);
}

GenResult run_closed_loop(rpc::RpcClient& client, const Workload& w,
                          const ClosedLoopConfig& cfg) {
  if (cfg.tracked_workers) return closed_loop_tracked(client, w, cfg);
  return closed_loop(client, w, cfg);
}

GenResult run_closed_loop(fabric::FabricClient& client, const Workload& w,
                          const ClosedLoopConfig& cfg) {
  IBP_CHECK(!cfg.tracked_workers,
            "tracked workers need a single-link RpcClient");
  return closed_loop(client, w, cfg);
}

}  // namespace ibp::loadgen
