#pragma once

// ibp_loadgen — deterministic load generators for the RPC serving layer.
//
// Two standard shapes:
//
//   * open loop — arrivals are a Poisson process in *virtual* time
//     (interarrival = -ln(1-U)/rate drawn from a seeded Rng); the
//     generator submits on schedule whether or not earlier requests
//     completed, so queueing delay and shed rates are visible instead
//     of being absorbed by the generator (the coordinated-omission trap
//     closed-loop measurement falls into),
//   * closed loop — a fixed set of workers, each submit -> wait ->
//     think -> repeat; offered load adapts to service capacity.
//
// Both record Ok-completion latency into a fixed-bucket log-scale
// histogram (LogHistogram, <= 12.5 % quantile error) and fold
// the completion trace (id, status, latency) into an FNV-1a hash:
// identical seeds and configs must produce identical hashes, which is
// what the rpc-smoke CI job asserts by diffing two runs byte-for-byte.

#include <cstdint>

#include "ibp/common/stats.hpp"
#include "ibp/common/types.hpp"
#include "ibp/fabric/fabric.hpp"
#include "ibp/rpc/rpc.hpp"

namespace ibp::loadgen {

struct Workload {
  std::uint32_t request_bytes = 128;
  /// Response size the server is asked for (0 = echo-sized).
  std::uint32_t response_bytes = 0;
  std::uint32_t tenants = 1;
  /// Per-request probability of Class::Bulk (else Class::Latency).
  double bulk_fraction = 0.0;
  /// Response size for Bulk-class requests (0 = same as response_bytes).
  /// Against a FabricClient, sizes above the stripe threshold exercise
  /// the striped multi-server path.
  std::uint32_t bulk_response_bytes = 0;
};

struct OpenLoopConfig {
  double rate_rps = 500e3;  // offered load, requests per virtual second
  std::uint64_t requests = 2000;
  /// Unmeasured requests issued (and drained) first. Serving steady
  /// state is what the generator measures; without warmup the span is
  /// dominated by one-time costs — above all first-touch registration
  /// of the slot rings, the very cost the pin-down cache amortises.
  std::uint64_t warmup = 0;
  std::uint64_t seed = 1;
};

struct ClosedLoopConfig {
  std::uint32_t workers = 8;
  TimePs think = 0;  // virtual-time pause between completion and resubmit
  std::uint64_t requests = 2000;  // total across all workers
  std::uint64_t warmup = 0;       // unmeasured requests issued first
  std::uint64_t seed = 1;
  /// Spawn each worker as a real sim track (sim::Context::spawn_track)
  /// instead of multiplexing worker state machines on the calling track:
  /// submit/wait/think cycles overlap honestly in virtual time while the
  /// calling track runs the client's poll loop. Off (the default) is the
  /// legacy single-track state machine, bit-exact with earlier runs.
  /// RpcClient only; FabricClient rejects it.
  bool tracked_workers = false;
  /// Bucket completions into goodput windows of this virtual-time width
  /// (GenResult::window_ok / window_lost), locating a failure and the
  /// recovery in time. 0 (the default) keeps the result window-free —
  /// pure bookkeeping either way, bit-inert on the run itself.
  TimePs window = 0;
};

struct GenResult {
  std::uint64_t issued = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;       // completed with Status::Overloaded
  std::uint64_t timed_out = 0;  // completed with Status::TimedOut (lost)
  /// Lost requests that were Latency class — the count the failover
  /// bench asserts is zero (closed loop only; open loop leaves it 0).
  std::uint64_t lost_latency = 0;
  std::uint64_t rejected = 0;  // client queue full at submit
  TimePs span = 0;             // first submit to last completion drained
  /// Absolute virtual time of the first measured submit — the origin of
  /// the goodput windows, letting callers map absolute event times (a
  /// fault plan's crash directive) onto window indices.
  TimePs start = 0;
  LogHistogram latency_ns;  // Ok completions only
  std::uint64_t trace_hash = 0;     // FNV-1a over (id, status, latency)
  /// Per-window completion counts (ClosedLoopConfig::window > 0 only):
  /// index i covers virtual time [start + i*window, start + (i+1)*window).
  std::vector<std::uint64_t> window_ok;
  std::vector<std::uint64_t> window_lost;  // TimedOut completions

  double achieved_rps() const {
    return span > 0 ? static_cast<double>(ok) * 1e12 /
                          static_cast<double>(span)
                    : 0.0;
  }
};

/// Drive `client` with a Poisson arrival schedule, then drain.
GenResult run_open_loop(rpc::RpcClient& client, const Workload& w,
                        const OpenLoopConfig& cfg);
GenResult run_open_loop(fabric::FabricClient& client, const Workload& w,
                        const OpenLoopConfig& cfg);

/// Drive `client` with a fixed worker pool, then drain.
GenResult run_closed_loop(rpc::RpcClient& client, const Workload& w,
                          const ClosedLoopConfig& cfg);
GenResult run_closed_loop(fabric::FabricClient& client, const Workload& w,
                          const ClosedLoopConfig& cfg);

}  // namespace ibp::loadgen
