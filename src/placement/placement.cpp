#include "ibp/placement/placement.hpp"

#include <sstream>

#include "ibp/common/check.hpp"

namespace ibp::placement {

namespace {

const char* backing_name(mem::PageKind k) {
  return k == mem::PageKind::Huge ? "huge" : "small";
}

}  // namespace

const char* role_name(Role r) {
  switch (r) {
    case Role::EagerSend: return "eager-send";
    case Role::Rendezvous: return "rendezvous";
    case Role::RecvRing: return "recv-ring";
    case Role::WorkloadHeap: return "workload-heap";
    case Role::RpcRing: return "rpc-ring";
    case Role::RpcResponse: return "rpc-response";
    case Role::RpcShard: return "rpc-shard";
    case Role::StripeSegment: return "stripe-segment";
    case Role::RingSlab: return "ring-slab";
    case Role::RingSlot: return "ring-slot";
  }
  return "?";
}

std::string known_role_names() {
  std::string out;
  for (int i = 0; i < kRoleCount; ++i) {
    if (!out.empty()) out += ", ";
    out += role_name(static_cast<Role>(i));
  }
  return out;
}

std::optional<Role> role_from_name(std::string_view name) {
  for (int i = 0; i < kRoleCount; ++i) {
    const Role r = static_cast<Role>(i);
    if (name == role_name(r)) return r;
  }
  return std::nullopt;
}

const char* reg_strategy_name(RegStrategy s) {
  switch (s) {
    case RegStrategy::EagerPin: return "eager-pin";
    case RegStrategy::LazyCache: return "lazy-cache";
    case RegStrategy::Deactivated: return "deactivated";
  }
  return "?";
}

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::Eager: return "eager";
    case Protocol::RndvCopy: return "rndv-copy";
    case Protocol::RndvRdma: return "rndv-rdma";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// PaperDefault

std::string_view PaperDefaultPolicy::description() const {
  return "the paper's published strategy: hugepages >= 32 KB, 4 KB chunks, "
         "eager/rndv thresholds, lazy pin-down cache";
}

BufferPlan PaperDefaultPolicy::plan(const BufferRequest& req,
                                    const PolicyContext& ctx) const {
  BufferPlan p;
  // Backing tier: mirrors hugepage::Library::malloc exactly — the library
  // serves from the hugepage heap iff preloaded and size >= threshold.
  p.backing = (ctx.hugepages_enabled && req.size >= ctx.huge_threshold)
                  ? mem::PageKind::Huge
                  : mem::PageKind::Small;
  p.alignment = 0;  // allocator default (chunk-granular carve)
  p.offset = 0;
  p.chunk = ctx.chunk;
  // Protocol: mirrors mpi::Comm::isend exactly.
  if (req.size <= ctx.eager_threshold) {
    p.protocol = Protocol::Eager;
  } else if (req.size <= ctx.rndv_copy_max) {
    p.protocol = Protocol::RndvCopy;
  } else {
    p.protocol = Protocol::RndvRdma;
  }
  // SGE gathering: mirrors Comm::send_typed — gather whenever the feature
  // is on and the message fits the eager path (even single-piece sends).
  p.sge_gather = ctx.sge_gather_enabled && req.size <= ctx.eager_threshold;
  p.registration =
      ctx.lazy_dereg ? RegStrategy::LazyCache : RegStrategy::Deactivated;
  return p;
}

// ---------------------------------------------------------------------------
// SmallPageBaseline

std::string_view SmallPageBaselinePolicy::description() const {
  return "the paper's baseline: everything on 4 KB pages, no hugepage tier";
}

BufferPlan SmallPageBaselinePolicy::plan(const BufferRequest& req,
                                         const PolicyContext& ctx) const {
  PolicyContext base = ctx;
  base.hugepages_enabled = false;
  return PaperDefaultPolicy::plan(req, base);
}

// ---------------------------------------------------------------------------
// AlignFirst

std::string_view AlignFirstPolicy::description() const {
  return "paper-default plus 64-byte aligned placement at the Fig. 4 fast "
         "offset for sub-page buffers";
}

BufferPlan AlignFirstPolicy::plan(const BufferRequest& req,
                                  const PolicyContext& ctx) const {
  BufferPlan p = PaperDefaultPolicy::plan(req, ctx);
  // Fig. 4: throughput for small WRs depends on the buffer's intra-page
  // offset; 64-byte-aligned starts hit the adapter's burst fast path.
  if (req.size < kSmallPageSize) {
    p.alignment = 64;
    p.offset = 64;
  }
  return p;
}

// ---------------------------------------------------------------------------
// EagerPin

std::string_view EagerPinPolicy::description() const {
  return "paper-default plus allocation-time pinning of buffers at or above "
         "the eager threshold";
}

BufferPlan EagerPinPolicy::plan(const BufferRequest& req,
                                const PolicyContext& ctx) const {
  BufferPlan p = PaperDefaultPolicy::plan(req, ctx);
  if (req.size >= ctx.eager_threshold) p.registration = RegStrategy::EagerPin;
  return p;
}

// ---------------------------------------------------------------------------
// Adaptive

std::string_view AdaptivePolicy::description() const {
  return "starts from the paper's prior, then flips per-size backing from "
         "observed cost/cache feedback";
}

int AdaptivePolicy::bucket_of(std::uint64_t size) {
  int b = 0;
  while (size > 1 && b < kBuckets - 1) {
    size >>= 1;
    ++b;
  }
  return b;
}

BufferPlan AdaptivePolicy::plan(const BufferRequest& req,
                                const PolicyContext& ctx) const {
  PaperDefaultPolicy base;
  BufferPlan p = base.plan(req, ctx);

  // SGE-vs-pack: once both movement styles of a non-contiguous size have
  // accumulated several observations, pick the cheaper per byte instead
  // of the prior's blanket "gather whatever fits eager". Gathering stays
  // gated on the feature being available at all.
  if (ctx.sge_gather_enabled && req.pieces > 1) {
    const Bucket& gb = buckets_[bucket_of(req.size)];
    if (gb.gather_n >= 4 && gb.pack_n >= 4)
      p.sge_gather = gb.gather_cost <= gb.pack_cost &&
                     req.size <= ctx.eager_threshold;
  }

  if (!ctx.hugepages_enabled) return p;  // no hugepage tier to choose

  const Bucket& b = buckets_[bucket_of(req.size)];
  // A hugepage tier that keeps failing allocation is not worth planning
  // for — fall back to small pages for this size.
  if (b.huge_failures >= 3) {
    p.backing = mem::PageKind::Small;
    return p;
  }
  if (b.small_n > 0 && b.huge_n > 0) {
    // Both backings observed: pick the cheaper per byte.
    p.backing = (b.huge_cost <= b.small_cost) ? mem::PageKind::Huge
                                              : mem::PageKind::Small;
  } else if (b.huge_n > 0 || b.small_n > 0) {
    // One backing observed. Keep the prior unless the observed side is
    // the prior itself — then there is nothing to compare yet.
    // Additionally: if only hugepages were observed for a size the prior
    // would put on small pages (or vice versa), trust the observation
    // direction once it has accumulated several samples at low cost.
    if (b.huge_n >= 4 && b.small_n == 0 && p.backing == mem::PageKind::Small) {
      p.backing = mem::PageKind::Huge;
    } else if (b.small_n >= 4 && b.huge_n == 0 &&
               p.backing == mem::PageKind::Huge) {
      p.backing = mem::PageKind::Small;
    }
  }
  return p;
}

void AdaptivePolicy::observe(const Feedback& fb) {
  Bucket& b = buckets_[bucket_of(fb.size)];
  if (fb.alloc_failed && fb.backing == mem::PageKind::Huge) {
    ++b.huge_failures;
    return;
  }
  const double bytes = fb.size ? static_cast<double>(fb.size) : 1.0;
  // Registration-cache misses are the dominant hidden cost the paper's
  // §5.1 numbers expose; weight them into the per-byte figure.
  const double per_byte =
      (static_cast<double>(fb.cost) +
       static_cast<double>(fb.cache_misses) * 1000.0) /
      bytes;
  constexpr double kAlpha = 0.25;  // EWMA smoothing
  if (fb.pieces > 1) {
    // Non-contiguous movement observation: learn the SGE-vs-pack cost
    // (fed by mpi::Comm's gather path) instead of the backing cost.
    if (fb.gathered) {
      b.gather_cost = b.gather_n == 0
                          ? per_byte
                          : b.gather_cost + kAlpha * (per_byte - b.gather_cost);
      ++b.gather_n;
    } else {
      b.pack_cost = b.pack_n == 0
                        ? per_byte
                        : b.pack_cost + kAlpha * (per_byte - b.pack_cost);
      ++b.pack_n;
    }
    return;
  }
  if (fb.backing == mem::PageKind::Huge) {
    b.huge_cost = b.huge_n == 0
                      ? per_byte
                      : b.huge_cost + kAlpha * (per_byte - b.huge_cost);
    ++b.huge_n;
  } else {
    b.small_cost = b.small_n == 0
                       ? per_byte
                       : b.small_cost + kAlpha * (per_byte - b.small_cost);
    ++b.small_n;
  }
}

double AdaptivePolicy::observed_cost(std::uint64_t size,
                                     mem::PageKind backing) const {
  const Bucket& b = buckets_[bucket_of(size)];
  if (backing == mem::PageKind::Huge) {
    return b.huge_n ? b.huge_cost : -1.0;
  }
  return b.small_n ? b.small_cost : -1.0;
}

double AdaptivePolicy::observed_gather_cost(std::uint64_t size,
                                            bool gathered) const {
  const Bucket& b = buckets_[bucket_of(size)];
  if (gathered) return b.gather_n ? b.gather_cost : -1.0;
  return b.pack_n ? b.pack_cost : -1.0;
}

// ---------------------------------------------------------------------------
// OffsetSweep (diagnostic)

std::string_view OffsetSweepPolicy::description() const {
  return "diagnostic: walks the Fig. 4 intra-page offsets (0..256 step 8) "
         "deterministically, for calibrating new platform configs";
}

const std::vector<std::uint64_t>& OffsetSweepPolicy::offsets() {
  static const std::vector<std::uint64_t> kOffsets = [] {
    std::vector<std::uint64_t> v;
    for (std::uint64_t off = 0; off <= 256; off += 8) v.push_back(off);
    return v;
  }();
  return kOffsets;
}

BufferPlan OffsetSweepPolicy::plan(const BufferRequest& req,
                                   const PolicyContext& ctx) const {
  BufferPlan p = PaperDefaultPolicy::plan(req, ctx);
  // Only sub-page WR buffers have a meaningful intra-page offset; larger
  // requests keep the paper-default plan so the sweep never perturbs the
  // bulk placement under test.
  if (req.size < kSmallPageSize) {
    p.offset = offsets()[next_ % offsets().size()];
    ++next_;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Registry

namespace {

template <typename P>
std::unique_ptr<Policy> make_impl() {
  return std::make_unique<P>();
}

}  // namespace

const std::vector<PolicyInfo>& registered_policies() {
  static const std::vector<PolicyInfo> kPolicies = [] {
    std::vector<PolicyInfo> v;
    auto add = [&v](auto tag) {
      using P = decltype(tag);
      P probe;
      v.push_back({probe.name(), probe.description(), &make_impl<P>});
    };
    add(PaperDefaultPolicy{});
    add(SmallPageBaselinePolicy{});
    add(AlignFirstPolicy{});
    add(EagerPinPolicy{});
    add(AdaptivePolicy{});
    return v;
  }();
  return kPolicies;
}

const std::vector<PolicyInfo>& diagnostic_policies() {
  static const std::vector<PolicyInfo> kPolicies = [] {
    std::vector<PolicyInfo> v;
    OffsetSweepPolicy probe;
    v.push_back({probe.name(), probe.description(),
                 &make_impl<OffsetSweepPolicy>});
    return v;
  }();
  return kPolicies;
}

std::unique_ptr<Policy> make_policy(std::string_view name) {
  for (const PolicyInfo& info : registered_policies()) {
    if (info.name == name) return info.make();
  }
  for (const PolicyInfo& info : diagnostic_policies()) {
    if (info.name == name) return info.make();
  }
  return nullptr;
}

std::string known_policy_names() {
  std::string out;
  for (const PolicyInfo& info : registered_policies()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  for (const PolicyInfo& info : diagnostic_policies()) {
    if (!out.empty()) out += ", ";
    out += info.name;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Engine

PlacementEngine::PlacementEngine(std::unique_ptr<Policy> policy,
                                 PolicyContext ctx)
    : policy_(std::move(policy)), ctx_(ctx) {
  IBP_CHECK(policy_ != nullptr, "PlacementEngine needs a policy");
}

BufferPlan PlacementEngine::plan(const BufferRequest& req,
                                 const PolicyContext& ctx) {
  Policy& pol = policy_for(req.role);
  BufferPlan p = pol.plan(req, ctx);
  ++stats_.plans;
  ++stats_.by_role[static_cast<int>(req.role)];
  ++stats_.by_protocol[static_cast<int>(p.protocol)];
  if (p.backing == mem::PageKind::Huge) {
    ++stats_.huge_backed;
  } else {
    ++stats_.small_backed;
  }
  if (p.sge_gather) ++stats_.sge_plans;
  if (p.alignment > 0) ++stats_.aligned_plans;
  if (tracer_ && clock_) {
    std::ostringstream name;
    name << pol.name() << ' ' << role_name(req.role) << ' ' << req.size
         << "B -> " << backing_name(p.backing) << '/'
         << protocol_name(p.protocol) << '/'
         << reg_strategy_name(p.registration);
    tracer_->mark(rank_, "placement", name.str(), clock_());
  }
  return p;
}

void PlacementEngine::feed(const Feedback& fb) {
  ++stats_.feedbacks;
  policy_for(fb.role).observe(fb);
}

void PlacementEngine::set_policy(std::unique_ptr<Policy> policy) {
  IBP_CHECK(policy != nullptr, "PlacementEngine needs a policy");
  policy_ = std::move(policy);
}

void PlacementEngine::set_role_policy(Role role,
                                      std::unique_ptr<Policy> policy) {
  role_policies_[static_cast<int>(role)] = std::move(policy);
}

Policy& PlacementEngine::policy_for(Role role) {
  Policy* p = role_policies_[static_cast<int>(role)].get();
  return p != nullptr ? *p : *policy_;
}

void PlacementEngine::set_tracer(sim::Tracer* tracer, RankId rank,
                                 std::function<TimePs()> clock) {
  tracer_ = tracer;
  rank_ = rank;
  clock_ = std::move(clock);
}

}  // namespace ibp::placement
