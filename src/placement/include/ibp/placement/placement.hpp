#pragma once

// Unified placement-policy engine.
//
// The paper's thesis is that *data placement strategy* — hugepage vs 4 KB
// backing (§3), intra-page offset and alignment (§4), SGE aggregation
// (§4/§7), registration behaviour (§5.1) — drives InfiniBand
// communication performance. Before this layer existed those decisions
// were hard-coded in five places (the 32 KB tier threshold in the
// hugepage library, the eager/rendezvous/sge branches in mpi::Comm, the
// lazy-pin flag in regcache, ad-hoc knobs in the ablation benches). The
// PlacementEngine consolidates them: given a buffer request (size, role,
// datatype layout) it returns a BufferPlan — backing page size,
// alignment/offset, chunking, SGE layout, registration strategy — behind
// a pluggable Policy interface, the way MPICH2-over-InfiniBand keeps its
// protocol/registration choices in one tunable layer.
//
// Policies:
//   * PaperDefault       — exactly the paper's published behaviour
//                          (bit-exact with the pre-engine code paths),
//   * SmallPageBaseline  — never uses hugepages (the paper's baseline),
//   * AlignFirst         — PaperDefault + 64-byte aligned placement for
//                          small buffers (the Figure 4 offset strategy),
//   * EagerPin           — PaperDefault + allocation-time pinning of
//                          communication-sized buffers,
//   * Adaptive           — starts from the paper's prior and refines
//                          per-size decisions from observed stats fed
//                          back by the MPI layer (CommStats/CacheStats).

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ibp/common/types.hpp"
#include "ibp/mem/address_space.hpp"
#include "ibp/sim/tracer.hpp"

namespace ibp::placement {

/// What the requested buffer (or message) is for.
enum class Role : std::uint8_t {
  EagerSend,     // outbound point-to-point message
  Rendezvous,    // large-transfer user buffer (RDMA source/target)
  RecvRing,      // preposted bounce/recv-ring slabs
  WorkloadHeap,  // ordinary application allocation
  RpcRing,       // RPC request/response staging rings (ibp::rpc)
  RpcResponse,   // RPC response payload buffers (eager or rendezvous)
  RpcShard,      // per-shard resident data a fabric server serves from
  StripeSegment, // striped bulk-response segments / reassembly buffers
  RingSlab,      // persistent one-sided ring slabs (RDMA-written records)
  RingSlot,      // per-record ring residency / credit-word control slots
};
inline constexpr int kRoleCount = 10;

/// How a buffer's memory registration is managed.
enum class RegStrategy : std::uint8_t {
  EagerPin,     // register at allocation time, keep pinned
  LazyCache,    // pin-down cache with lazy deregistration (Tezuka et al.)
  Deactivated,  // register per transfer, deregister at completion
};

/// Message protocol for a send of a given size.
enum class Protocol : std::uint8_t { Eager, RndvCopy, RndvRdma };
inline constexpr int kProtocolCount = 3;

const char* role_name(Role r);
const char* reg_strategy_name(RegStrategy s);
const char* protocol_name(Protocol p);

/// Inverse of role_name (for config parsing); nullopt for unknown names.
std::optional<Role> role_from_name(std::string_view name);

/// Comma-separated list of every role name (for error messages).
std::string known_role_names();

/// One buffer/message the consumer layers are about to place.
struct BufferRequest {
  std::uint64_t size = 0;
  Role role = Role::WorkloadHeap;
  /// Non-contiguous datatype layout: number of contiguous pieces the
  /// buffer denotes (1 = contiguous).
  std::uint32_t pieces = 1;
};

/// The engine's answer: where the bytes go and how they move.
struct BufferPlan {
  /// Backing page-size tier for the buffer's memory.
  mem::PageKind backing = mem::PageKind::Small;
  /// Required start alignment (0 = allocator default). The heap honours
  /// this via its aligned-allocation path.
  std::uint64_t alignment = 0;
  /// Preferred intra-page offset for WR buffers (§4; advisory — consumed
  /// by work-request layout, not by the heap).
  std::uint64_t offset = 0;
  /// Heap carving granularity (the paper's 4 KB chunks, §3.2 #4).
  std::uint64_t chunk = 4 * kKiB;
  /// Protocol for message-role requests.
  Protocol protocol = Protocol::Eager;
  /// Gather non-contiguous pieces with one SGE-list work request (§7)
  /// instead of packing through a bounce buffer.
  bool sge_gather = false;
  /// Cap on SGEs per work request when gathering.
  std::uint32_t max_sges = 128;
  /// Registration strategy for the buffer.
  RegStrategy registration = RegStrategy::LazyCache;
};

/// The tunables of the consumer layers a policy decides against. A policy
/// may reproduce them exactly (PaperDefault) or override them.
struct PolicyContext {
  std::uint64_t huge_threshold = 32 * kKiB;  // §3.2 #1 tier threshold
  std::uint64_t chunk = 4 * kKiB;            // §3.2 #4 carve granularity
  std::uint64_t eager_threshold = 8 * kKiB;  // MVAPICH eager ceiling
  std::uint64_t rndv_copy_max = 16 * kKiB;   // rendezvous-copy ceiling
  bool hugepages_enabled = false;  // hugepage library preloaded
  bool sge_gather_enabled = false; // SGE gather sends available
  bool lazy_dereg = true;          // pin-down cache active
};

/// One observation fed back into an adaptive policy (sourced from
/// CommStats/CacheStats deltas around a placement-sensitive operation).
struct Feedback {
  std::uint64_t size = 0;                    // buffer/message size
  mem::PageKind backing = mem::PageKind::Small;
  TimePs cost = 0;                           // observed placement cost
  std::uint64_t cache_misses = 0;            // registration-cache misses
  bool alloc_failed = false;                 // hugepage pool exhausted
  /// Which role the observed buffer served (routes the observation to
  /// that role's override policy when one is installed).
  Role role = Role::WorkloadHeap;
  /// Non-contiguous ops: number of pieces the operation moved (1 =
  /// contiguous) and whether the NIC gathered them via one SGE-list WR
  /// (true) or the CPU packed them through a staging buffer (false).
  /// Lets adaptive policies learn the SGE-vs-pack decision, not just the
  /// backing page size.
  std::uint32_t pieces = 1;
  bool gathered = false;
};

/// Pluggable placement policy.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual BufferPlan plan(const BufferRequest& req,
                          const PolicyContext& ctx) const = 0;
  /// Observed-stat feedback; stateless policies ignore it.
  virtual void observe(const Feedback&) {}
};

/// The paper's exact behaviour: hugepages at/above the 32 KB threshold
/// when the library is preloaded, 4 KB chunks, eager <= 8 KB, rendezvous
/// copy <= 16 KB, RDMA above, lazy pin-down caching when enabled. Plans
/// are bit-exact with the pre-engine hard-coded branches.
class PaperDefaultPolicy : public Policy {
 public:
  std::string_view name() const override { return "paper-default"; }
  std::string_view description() const override;
  BufferPlan plan(const BufferRequest& req,
                  const PolicyContext& ctx) const override;
};

/// Everything on 4 KB pages — the paper's measured baseline.
class SmallPageBaselinePolicy : public PaperDefaultPolicy {
 public:
  std::string_view name() const override { return "small-page-baseline"; }
  std::string_view description() const override;
  BufferPlan plan(const BufferRequest& req,
                  const PolicyContext& ctx) const override;
};

/// PaperDefault plus the §4 aligned-placement strategy: small buffers
/// start 64-byte aligned at the DMA-friendly offset (Figure 4's fast
/// offset), so gathered work requests hit the adapter's burst fast path.
class AlignFirstPolicy : public PaperDefaultPolicy {
 public:
  std::string_view name() const override { return "align-first"; }
  std::string_view description() const override;
  BufferPlan plan(const BufferRequest& req,
                  const PolicyContext& ctx) const override;
};

/// PaperDefault plus allocation-time pinning: buffers big enough to be
/// sent (>= eager threshold) are registered when allocated, so no
/// transfer ever pays first-touch registration inline.
class EagerPinPolicy : public PaperDefaultPolicy {
 public:
  std::string_view name() const override { return "eager-pin"; }
  std::string_view description() const override;
  BufferPlan plan(const BufferRequest& req,
                  const PolicyContext& ctx) const override;
};

/// Learns per-size placement from observed stats. Starts from the
/// paper's prior (hugepages at/above the context threshold) and flips a
/// size bucket whenever fed observations show the other backing cheaper
/// per byte; repeated hugepage-pool exhaustion pushes a bucket back to
/// small pages.
class AdaptivePolicy : public Policy {
 public:
  std::string_view name() const override { return "adaptive"; }
  std::string_view description() const override;
  BufferPlan plan(const BufferRequest& req,
                  const PolicyContext& ctx) const override;
  void observe(const Feedback& fb) override;

  /// Observed mean cost-per-byte for one (size-bucket, backing), or -1.
  double observed_cost(std::uint64_t size, mem::PageKind backing) const;

  /// Observed mean cost-per-byte for non-contiguous ops moved via NIC
  /// gather (`gathered` true) or CPU pack (`false`) in `size`'s bucket,
  /// or -1 with no observations.
  double observed_gather_cost(std::uint64_t size, bool gathered) const;

 private:
  struct Bucket {
    double small_cost = 0;  // EWMA cost per byte on small pages
    double huge_cost = 0;   // EWMA cost per byte on hugepages
    std::uint32_t small_n = 0;
    std::uint32_t huge_n = 0;
    std::uint32_t huge_failures = 0;  // pool-exhausted allocations
    // SGE-vs-pack learning (fed by the mpi gather path, §7).
    double gather_cost = 0;  // EWMA cost per byte, NIC SGE gather
    double pack_cost = 0;    // EWMA cost per byte, CPU pack-and-send
    std::uint32_t gather_n = 0;
    std::uint32_t pack_n = 0;
  };
  static constexpr int kBuckets = 41;  // log2 size buckets, 1 B .. 1 TB
  static int bucket_of(std::uint64_t size);
  Bucket buckets_[kBuckets];
};

/// Diagnostic policy for calibrating a new platform configuration: walks
/// the Figure 4 intra-page offsets (0, 8, ..., 256 — the paper's sweep)
/// deterministically, one offset per successive plan, so a fixed request
/// stream probes every offset in order. Not part of the bench sweep
/// registry; resolve it by name ("offset-sweep").
class OffsetSweepPolicy : public PaperDefaultPolicy {
 public:
  std::string_view name() const override { return "offset-sweep"; }
  std::string_view description() const override;
  BufferPlan plan(const BufferRequest& req,
                  const PolicyContext& ctx) const override;

  /// The deterministic offset sequence the policy cycles through.
  static const std::vector<std::uint64_t>& offsets();

 private:
  mutable std::size_t next_ = 0;  // cycles through offsets()
};

// ---------------------------------------------------------------------------
// Registry

struct PolicyInfo {
  std::string_view name;
  std::string_view description;
  std::unique_ptr<Policy> (*make)();
};

/// All built-in policies, in registration order. Benches sweep exactly
/// this list; diagnostic policies live in diagnostic_policies() so adding
/// one never perturbs existing sweep outputs.
const std::vector<PolicyInfo>& registered_policies();

/// Diagnostic/calibration policies (resolvable by make_policy but kept
/// out of the bench sweeps): currently `offset-sweep`.
const std::vector<PolicyInfo>& diagnostic_policies();

/// Instantiate a policy by registry or diagnostic name; nullptr for an
/// unknown name.
std::unique_ptr<Policy> make_policy(std::string_view name);

/// Comma-separated registry names (for error messages / usage text).
std::string known_policy_names();

// ---------------------------------------------------------------------------
// Engine

/// Per-policy decision counters (observability; cheap to keep).
struct EngineStats {
  std::uint64_t plans = 0;
  std::uint64_t by_role[kRoleCount] = {};
  std::uint64_t by_protocol[kProtocolCount] = {};
  std::uint64_t huge_backed = 0;
  std::uint64_t small_backed = 0;
  std::uint64_t sge_plans = 0;
  std::uint64_t aligned_plans = 0;  // plans demanding extra alignment
  std::uint64_t feedbacks = 0;
};

/// One engine per rank: owns the policy, the default context (built from
/// the cluster configuration), decision counters, and the optional tracer
/// hook that logs every plan decision.
class PlacementEngine {
 public:
  PlacementEngine(std::unique_ptr<Policy> policy, PolicyContext ctx);

  /// Plan against the engine's default context.
  BufferPlan plan(const BufferRequest& req) { return plan(req, ctx_); }

  /// Plan against a caller-refined context (e.g. mpi::Comm substitutes
  /// its own protocol thresholds).
  BufferPlan plan(const BufferRequest& req, const PolicyContext& ctx);

  /// Feed an observation to the policy deciding `fb.role` (and count it).
  void feed(const Feedback& fb);

  /// Replace the default policy in place, keeping context, counters and
  /// every outstanding pointer to the engine valid (e.g.
  /// hugepage::Library's). Role overrides are unaffected.
  void set_policy(std::unique_ptr<Policy> policy);

  /// Install (or, with nullptr, clear) a per-role policy override: plans
  /// and feedback for `role` route to it instead of the default policy,
  /// so e.g. the RPC ring can use `paper-default` while the workload heap
  /// learns with `adaptive`.
  void set_role_policy(Role role, std::unique_ptr<Policy> policy);

  /// The policy currently deciding `role` (an override or the default).
  Policy& policy_for(Role role);

  const PolicyContext& context() const { return ctx_; }
  Policy& policy() { return *policy_; }
  const Policy& policy() const { return *policy_; }
  const EngineStats& stats() const { return stats_; }

  /// Log each plan decision as an instantaneous tracer mark (category
  /// "placement") on `rank`'s lane, timestamped by `clock`.
  void set_tracer(sim::Tracer* tracer, RankId rank,
                  std::function<TimePs()> clock);

 private:
  std::unique_ptr<Policy> policy_;
  std::unique_ptr<Policy> role_policies_[kRoleCount];  // nullptr = default
  PolicyContext ctx_;
  EngineStats stats_;
  sim::Tracer* tracer_ = nullptr;
  RankId rank_ = 0;
  std::function<TimePs()> clock_;
};

}  // namespace ibp::placement
