#include "ibp/telemetry/registry.hpp"

#include <algorithm>

namespace ibp::telemetry {

MetricsRegistry::MetricsRegistry()
    : names_(std::make_shared<std::deque<std::string>>()) {}

std::size_t MetricsRegistry::resolve(std::string_view name) {
  if (auto it = index_.find(name); it != index_.end()) return it->second;
  const std::size_t slot = slots_.size();
  names_->emplace_back(name);
  slots_.emplace_back();
  index_.emplace(std::string(name), slot);
  return slot;
}

Counter MetricsRegistry::counter(std::string_view name) {
  return Counter(this, resolve(name));
}

void MetricsRegistry::add(std::string_view name, double delta) {
  slots_[resolve(name)].base += delta;
}

void MetricsRegistry::alias(std::string_view alias_name,
                            std::string_view name) {
  const std::size_t slot = resolve(name);
  const auto [it, fresh] = index_.emplace(std::string(alias_name), slot);
  IBP_CHECK(fresh || it->second == slot,
            "metric alias '" << alias_name
                             << "' already names a different metric");
}

ProbeHandle MetricsRegistry::probe(std::string_view name,
                                   std::function<double()> fn) {
  const std::size_t slot = resolve(name);
  const std::uint64_t id = next_probe_id_++;
  slots_[slot].probes.push_back(Probe{id, std::move(fn)});
  return ProbeHandle(this, slot, id);
}

void MetricsRegistry::latch(std::size_t slot, std::uint64_t probe_id) {
  auto& probes = slots_[slot].probes;
  auto it = std::find_if(probes.begin(), probes.end(),
                         [&](const Probe& p) { return p.id == probe_id; });
  if (it != probes.end()) {
    slots_[slot].base += it->fn();
    probes.erase(it);
  }
}

double MetricsRegistry::value_at(std::size_t slot) const {
  const Slot& s = slots_[slot];
  double v = s.base;
  for (const Probe& p : s.probes) v += p.fn();
  return v;
}

double MetricsRegistry::value(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0.0 : value_at(it->second);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.names_ = names_;
  snap.values_.resize(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i)
    snap.values_[i] = value_at(i);
  return snap;
}

double MetricsSnapshot::value_of(std::string_view name) const {
  for (std::size_t i = 0; i < values_.size(); ++i)
    if ((*names_)[i] == name) return values_[i];
  return 0.0;
}

MetricsDelta diff(const MetricsSnapshot& before, const MetricsSnapshot& after) {
  MetricsDelta d;
  d.names = after.names_;
  for (std::size_t i = 0; i < after.size(); ++i) {
    const double b = i < before.size() ? before.value(i) : 0.0;
    const double a = after.value(i);
    if (a != b) d.entries.push_back({after.name(i), b, a});
  }
  return d;
}

double MetricsDelta::delta_of(std::string_view name) const {
  for (const Entry& e : entries)
    if (e.name == name) return e.delta();
  return 0.0;
}

std::vector<ProbeHandle> histogram_probes(MetricsRegistry& m,
                                          const std::string& prefix,
                                          const LogHistogram* hist) {
  std::vector<ProbeHandle> out;
  out.reserve(4);
  out.push_back(
      m.probe(prefix + ".p50_us", [hist] { return hist->p50() / 1000.0; }));
  out.push_back(
      m.probe(prefix + ".p90_us", [hist] { return hist->p90() / 1000.0; }));
  out.push_back(
      m.probe(prefix + ".p99_us", [hist] { return hist->p99() / 1000.0; }));
  out.push_back(m.probe(prefix + ".max_us",
                        [hist] { return hist->stats().max() / 1000.0; }));
  return out;
}

}  // namespace ibp::telemetry
