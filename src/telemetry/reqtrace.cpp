#include "ibp/telemetry/reqtrace.hpp"

#include <cstdio>
#include <ostream>
#include <utility>

#include "ibp/common/check.hpp"
#include "ibp/sim/tracer.hpp"

namespace ibp::telemetry {

namespace {

const char* kStageNames[kStageCount] = {
    "client_queue", "net_request", "server_queue", "service",
    "net_response", "fanout",      "stripe_wait",  "reassembly",
};

const char* status_name(std::uint8_t s) {
  switch (s) {
    case 0: return "ok";
    case 1: return "overloaded";
    case 2: return "timed_out";
    default: return "error";
  }
}

/// The summary fields of one histogram (nanosecond samples, microsecond
/// reporting), without the surrounding braces so callers can prepend
/// their own fields. Fixed %.3f formatting keeps the stream
/// byte-reproducible.
void json_hist_fields(std::ostream& os, const LogHistogram& h) {
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "\"count\": %llu, \"mean_us\": %.3f, \"p50_us\": %.3f, "
                "\"p90_us\": %.3f, \"p99_us\": %.3f, \"max_us\": %.3f",
                static_cast<unsigned long long>(h.count()),
                h.stats().mean() / 1000.0, h.p50() / 1000.0,
                h.p90() / 1000.0, h.p99() / 1000.0,
                h.stats().max() / 1000.0);
  os << buf;
}

}  // namespace

const char* stage_name(Stage s) {
  const auto i = static_cast<std::size_t>(s);
  IBP_CHECK(i < kStageCount, "bad stage");
  return kStageNames[i];
}

RequestTracer::RequestTracer(const RequestTraceConfig& cfg,
                             MetricsRegistry* metrics, sim::Tracer* tracer)
    : cfg_(cfg), metrics_(metrics), tracer_(tracer) {
  if (metrics_ == nullptr) return;
  MetricsRegistry& m = *metrics_;
  probes_.push_back(
      m.probe("rpc.trace.finished", [this] { return double(finished_); }));
  probes_.push_back(m.probe("rpc.trace.exemplars", [this] {
    return double(exemplars_.size());
  }));
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string pre =
        std::string("rpc.stage.") + kStageNames[i];
    for (auto& p : histogram_probes(m, pre, &stage_hist_[i]))
      probes_.push_back(std::move(p));
  }
  // The hub is a single per-cluster publisher, so the unqualified names
  // are safe (no cross-rank percentile summing).
  for (auto& p : histogram_probes(m, "rpc.latency", &e2e_))
    probes_.push_back(std::move(p));
  for (auto& p : histogram_probes(m, "rpc.stage.lock_arbitration", &arb_))
    probes_.push_back(std::move(p));
}

RequestRecord* RequestTracer::find_live(std::uint64_t trace) {
  if (trace == 0) return nullptr;
  const auto it = live_.find(trace);
  return it == live_.end() ? nullptr : &it->second;
}

std::uint64_t RequestTracer::begin(RankId origin, std::uint32_t tenant,
                                   std::uint8_t cls, TimePs t0,
                                   std::uint64_t parent) {
  if (muted_) return 0;
  const std::uint64_t trace = next_trace_++;
  RequestRecord rec;
  rec.trace = trace;
  rec.parent = parent;
  rec.origin = origin;
  rec.tenant = tenant;
  rec.cls = cls;
  rec.t0 = t0;
  rec.cursor = t0;
  live_.emplace(trace, std::move(rec));
  return trace;
}

void RequestTracer::bind_wire(std::uint64_t trace, RankId src, RankId dst,
                              std::uint64_t rpc_id) {
  RequestRecord* rec = find_live(trace);
  if (rec == nullptr) return;
  const std::array<std::uint64_t, 3> key{static_cast<std::uint64_t>(src),
                                         static_cast<std::uint64_t>(dst),
                                         rpc_id};
  wire_[key] = trace;
  rec->wire = key;
  rec->wire_bound = true;
}

std::uint64_t RequestTracer::wire_trace(RankId src, RankId dst,
                                        std::uint64_t rpc_id) const {
  const std::array<std::uint64_t, 3> key{static_cast<std::uint64_t>(src),
                                         static_cast<std::uint64_t>(dst),
                                         rpc_id};
  const auto it = wire_.find(key);
  return it == wire_.end() ? 0 : it->second;
}

void RequestTracer::adopt(std::uint64_t child, std::uint64_t parent,
                          std::uint16_t seg_index) {
  RequestRecord* c = find_live(child);
  if (c != nullptr) {
    c->parent = parent;
    c->seg_index = seg_index;
  }
  RequestRecord* p = find_live(parent);
  if (p != nullptr) p->children.push_back(child);
}

void RequestTracer::stage_mark(std::uint64_t trace, Stage stage, RankId rank,
                               TimePs t) {
  RequestRecord* rec = find_live(trace);
  if (rec == nullptr) return;
  // A retransmit's duplicate server pass replays stages the first copy
  // already recorded; first wins, so the tiling stays intact.
  for (const SpanRec& s : rec->spans)
    if (s.stage == stage) return;
  if (t < rec->cursor) return;
  rec->spans.push_back({stage, rank, rec->cursor, t});
  rec->cursor = t;
}

void RequestTracer::add_arbitration(std::uint64_t trace, TimePs ps) {
  RequestRecord* rec = find_live(trace);
  if (rec != nullptr) rec->arbitration_ps += ps;
}

void RequestTracer::retry(std::uint64_t trace) {
  RequestRecord* rec = find_live(trace);
  if (rec != nullptr) ++rec->retries;
}

void RequestTracer::failover(std::uint64_t trace) {
  RequestRecord* rec = find_live(trace);
  if (rec != nullptr) ++rec->failover_hops;
}

Counter& RequestTracer::slo_counter(std::uint32_t tenant, std::uint8_t cls) {
  const auto key = std::make_pair(tenant, cls);
  const auto it = slo_.find(key);
  if (it != slo_.end()) return it->second;
  const std::string name = "rpc.slo.t" + std::to_string(tenant) +
                           (cls == 0 ? ".latency_burn" : ".bulk_burn");
  return slo_.emplace(key, metrics_->counter(name)).first->second;
}

void RequestTracer::emit_async(const RequestRecord& rec) {
  if (tracer_ == nullptr) return;
  for (const SpanRec& s : rec.spans) {
    tracer_->async_begin(s.rank, "request", stage_name(s.stage), s.start,
                         rec.trace);
    tracer_->async_end(s.rank, "request", stage_name(s.stage), s.end,
                       rec.trace);
  }
}

void RequestTracer::end(std::uint64_t trace, std::uint8_t status, TimePs t) {
  const auto it = live_.find(trace);
  if (trace == 0 || it == live_.end()) return;
  RequestRecord rec = std::move(it->second);
  live_.erase(it);
  if (rec.wire_bound) {
    const auto w = wire_.find(rec.wire);
    if (w != wire_.end() && w->second == rec.trace) wire_.erase(w);
    rec.wire_bound = false;
  }
  rec.t_end = t;
  rec.status = status;
  ++finished_;

  bool served = false;
  for (const SpanRec& s : rec.spans) {
    stage_hist_[static_cast<std::size_t>(s.stage)].add(
        static_cast<std::uint64_t>((s.end - s.start) / 1000));  // ps -> ns
    served = served || s.stage == Stage::Service;
  }
  e2e_.add(static_cast<std::uint64_t>(rec.latency() / 1000));
  if (served)
    arb_.add(static_cast<std::uint64_t>(rec.arbitration_ps / 1000));
  if (metrics_ != nullptr) {
    const TimePs target = rec.cls == 0 ? cfg_.slo_latency : cfg_.slo_bulk;
    if (status != 0 || rec.latency() > target)
      slo_counter(rec.tenant, rec.cls).add(1.0);
  }
  emit_async(rec);
  const bool is_error = status != 0 || rec.retries > 0 || rec.failover_hops > 0;
  retain_or_fold(std::move(rec), is_error);
}

void RequestTracer::drop_if_unreferenced(std::uint64_t trace) {
  const auto it = exemplars_.find(trace);
  if (it != exemplars_.end() && !it->second.in_slowest &&
      !it->second.in_errors)
    exemplars_.erase(it);
}

void RequestTracer::retain_or_fold(RequestRecord&& rec, bool is_error) {
  const std::uint64_t trace = rec.trace;
  const TimePs lat = rec.latency();
  bool keep = false;
  if (cfg_.slowest_k > 0) {
    if (slowest_.size() < cfg_.slowest_k) {
      rec.in_slowest = true;
      slowest_.emplace(lat, trace);
      keep = true;
    } else if (lat > slowest_.begin()->first) {
      // Strictly-greater replacement: ties keep the incumbent, so the
      // set is deterministic and bounded at exactly slowest_k.
      const std::uint64_t evicted = slowest_.begin()->second;
      slowest_.erase(slowest_.begin());
      const auto ev = exemplars_.find(evicted);
      if (ev != exemplars_.end()) {
        ev->second.in_slowest = false;
        drop_if_unreferenced(evicted);
      }
      rec.in_slowest = true;
      slowest_.emplace(lat, trace);
      keep = true;
    }
  }
  if (is_error && cfg_.error_ring > 0) {
    if (errors_.size() >= cfg_.error_ring) {
      const std::uint64_t old = errors_.front();
      errors_.pop_front();
      const auto ev = exemplars_.find(old);
      if (ev != exemplars_.end()) {
        ev->second.in_errors = false;
        drop_if_unreferenced(old);
      }
    }
    rec.in_errors = true;
    errors_.push_back(trace);
    keep = true;
  }
  if (keep) exemplars_.emplace(trace, std::move(rec));
}

void RequestTracer::write_jsonl(std::ostream& os) const {
  os << "{\"type\": \"meta\", \"requests\": " << finished_
     << ", \"slowest_k\": " << cfg_.slowest_k
     << ", \"error_ring\": " << cfg_.error_ring << "}\n";
  for (const auto& [trace, r] : exemplars_) {
    os << "{\"type\": \"request\", \"trace\": " << trace
       << ", \"parent\": " << r.parent
       << ", \"seg_index\": " << r.seg_index << ", \"origin\": " << r.origin
       << ", \"tenant\": " << r.tenant << ", \"cls\": \""
       << (r.cls == 0 ? "latency" : "bulk") << "\", \"status\": \""
       << status_name(r.status) << "\", \"retries\": " << r.retries
       << ", \"failovers\": " << r.failover_hops << ", \"exemplar\": \""
       << (r.in_slowest && r.in_errors
               ? "slowest+error"
               : r.in_slowest ? "slowest" : "error")
       << "\", \"t0_ps\": " << r.t0 << ", \"latency_ps\": " << r.latency()
       << ", \"arbitration_ps\": " << r.arbitration_ps
       << ", \"children\": [";
    for (std::size_t i = 0; i < r.children.size(); ++i)
      os << (i == 0 ? "" : ", ") << r.children[i];
    os << "], \"spans\": [";
    for (std::size_t i = 0; i < r.spans.size(); ++i) {
      const SpanRec& s = r.spans[i];
      os << (i == 0 ? "" : ", ") << "{\"stage\": \"" << stage_name(s.stage)
         << "\", \"rank\": " << s.rank << ", \"start_ps\": " << s.start
         << ", \"dur_ps\": " << (s.end - s.start) << "}";
    }
    os << "]}\n";
  }
  os << "{\"type\": \"stages\", \"requests\": " << finished_
     << ", \"e2e\": {";
  json_hist_fields(os, e2e_);
  os << "}, \"arbitration\": {";
  json_hist_fields(os, arb_);
  os << "}, \"stages\": [";
  for (std::size_t i = 0; i < kStageCount; ++i) {
    os << (i == 0 ? "" : ", ") << "{\"stage\": \"" << kStageNames[i]
       << "\", ";
    json_hist_fields(os, stage_hist_[i]);
    os << "}";
  }
  os << "]}\n";
}

}  // namespace ibp::telemetry
